// btsc-sweepd — the fault-tolerant sweep service (see
// src/service/sweepd.hpp for the crash-only design).
//
//   btsc-sweepd --jobs-dir DIR --job-file jobs.jsonl          # batch/CI
//   btsc-sweepd --jobs-dir DIR --socket /tmp/btsc.sock        # daemon
//
// Jobs are one flat JSON object per line, e.g.:
//   {"id": "f8-a", "scenario": "fig08", "quick": true, "threads": 2}
//
// On SIGTERM/SIGINT the service drains: stops accepting, finishes and
// journals in-flight replications, exits 0. After SIGKILL, restarting
// with the same --jobs-dir resumes every incomplete job through its
// journal — committed replications are never re-run and final artifacts
// are byte-identical to an uninterrupted run.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>

#include "runner/warmup_store.hpp"
#include "service/sweepd.hpp"

namespace {

std::atomic<bool> g_terminate{false};

void on_signal(int) { g_terminate.store(true, std::memory_order_relaxed); }

void print_usage() {
  std::printf(
      "usage: btsc-sweepd --jobs-dir DIR (--job-file FILE | --socket PATH)\n"
      "\n"
      "options:\n"
      "  --jobs-dir DIR      job state directory: .job specs, journals,\n"
      "                      artifacts, quarantine/error reports (required)\n"
      "  --job-file FILE     batch mode: submit every JSONL job in FILE,\n"
      "                      run to completion, print a summary line\n"
      "  --socket PATH       serve line-delimited JSON requests on a\n"
      "                      Unix-domain socket (ops: submit, status,\n"
      "                      drain, ping) until drained\n"
      "  --workers N         concurrent jobs (default 1; each job also\n"
      "                      runs its own sweep threads)\n"
      "  --queue-limit N     reject submissions beyond N queued jobs\n"
      "                      (default 16)\n"
      "  --cache-budget B    LRU byte budget over the shared warm-up\n"
      "                      checkpoint cache (default 0 = unbounded)\n"
      "  --checkpoint-dir D  warm-up cache directory (default\n"
      "                      <jobs-dir>/checkpoints)\n"
      "\n"
      "With neither --job-file nor --socket, recovered jobs (if any) are\n"
      "run to completion and the service exits.\n"
      "\n"
      "SIGTERM/SIGINT drain gracefully (in-flight replications finish and\n"
      "journal; exit 0). SIGKILL is safe: restart = resume.\n");
}

bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0' || s[0] == '-') return false;
  out = static_cast<std::uint64_t>(v);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  btsc::service::ServiceConfig cfg;
  std::string job_file;
  std::string socket_path;
  for (int i = 1; i < argc; ++i) {
    const auto is = [&](const char* flag) {
      return std::strcmp(argv[i], flag) == 0;
    };
    if (is("--help") || is("-h")) {
      print_usage();
      return 0;
    }
    if (is("--jobs-dir") && i + 1 < argc) {
      cfg.jobs_dir = argv[++i];
    } else if (is("--job-file") && i + 1 < argc) {
      job_file = argv[++i];
    } else if (is("--socket") && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (is("--checkpoint-dir") && i + 1 < argc) {
      cfg.checkpoint_dir = argv[++i];
    } else if (is("--workers") && i + 1 < argc) {
      std::uint64_t v = 0;
      if (!parse_u64(argv[++i], v) || v == 0 || v > 1024) {
        std::fprintf(stderr, "btsc-sweepd: bad --workers value\n");
        return 2;
      }
      cfg.workers = static_cast<int>(v);
    } else if (is("--queue-limit") && i + 1 < argc) {
      std::uint64_t v = 0;
      if (!parse_u64(argv[++i], v) || v == 0) {
        std::fprintf(stderr, "btsc-sweepd: bad --queue-limit value\n");
        return 2;
      }
      cfg.queue_limit = static_cast<std::size_t>(v);
    } else if (is("--cache-budget") && i + 1 < argc) {
      if (!parse_u64(argv[++i], cfg.cache_budget_bytes)) {
        std::fprintf(stderr, "btsc-sweepd: bad --cache-budget value\n");
        return 2;
      }
    } else {
      std::fprintf(stderr, "btsc-sweepd: unknown option %s\n", argv[i]);
      print_usage();
      return 2;
    }
  }
  if (cfg.jobs_dir.empty()) {
    print_usage();
    return 2;
  }
  cfg.terminate = &g_terminate;

  // Graceful drain on request-to-terminate; SIGKILL intentionally has no
  // handler — the crash-only recovery path covers it.
  std::signal(SIGTERM, &on_signal);
  std::signal(SIGINT, &on_signal);
  // A client vanishing mid-reply must not kill the service.
  std::signal(SIGPIPE, SIG_IGN);

  const auto t0 = std::chrono::steady_clock::now();
  try {
    btsc::service::SweepService svc(cfg);
    const std::size_t recovered = svc.recover();
    if (recovered > 0) {
      std::cout << "btsc-sweepd: resuming " << recovered
                << " incomplete job(s) from " << cfg.jobs_dir << "\n";
    }
    svc.start();

    std::size_t rejected = 0;
    if (!job_file.empty()) {
      std::ifstream in(job_file);
      if (!in) {
        std::fprintf(stderr, "btsc-sweepd: cannot open %s\n",
                     job_file.c_str());
        return 2;
      }
      std::string line;
      std::size_t line_no = 0;
      while (std::getline(in, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#') continue;
        std::string err;
        try {
          err = svc.submit(btsc::service::parse_job_line(line));
        } catch (const btsc::service::JobError& e) {
          err = e.what();
        }
        if (!err.empty()) {
          // "duplicate job id" covers jobs recover() already picked up —
          // resubmitting the same batch file after a crash is the normal
          // restart flow, so that rejection is informational.
          std::cerr << "btsc-sweepd: " << job_file << ":" << line_no << ": "
                    << err << "\n";
          if (err.find("duplicate job id") == std::string::npos &&
              err.find("already has a completed artifact") ==
                  std::string::npos) {
            ++rejected;
          }
        }
      }
    }

    if (!socket_path.empty()) {
      std::cout << "btsc-sweepd: listening on " << socket_path << "\n";
      svc.serve(socket_path);  // returns once draining
    }
    svc.wait_idle();
    svc.drain();
    svc.shutdown();

    std::size_t done = 0, quarantined = 0, failed = 0, queued = 0;
    for (const auto& st : svc.status()) {
      switch (st.state) {
        case btsc::service::JobState::kDone: ++done; break;
        case btsc::service::JobState::kQuarantined: ++quarantined; break;
        case btsc::service::JobState::kFailed: ++failed; break;
        default: ++queued; break;
      }
    }
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const auto warm = btsc::runner::warmup_store_stats();
    const bool drained = g_terminate.load(std::memory_order_relaxed);
    // Machine-readable summary (bench/run_benches parses this line).
    std::printf(
        "{\"event\": \"batch\", \"jobs\": %zu, \"done\": %zu, "
        "\"quarantined\": %zu, \"failed\": %zu, \"incomplete\": %zu, "
        "\"rejected\": %zu, \"wall_s\": %.6f, \"warmup_hits\": %llu, "
        "\"warmup_misses\": %llu, \"drained\": %s}\n",
        done + quarantined + failed + queued, done, quarantined, failed,
        queued, rejected, wall,
        static_cast<unsigned long long>(warm.hits),
        static_cast<unsigned long long>(warm.misses),
        drained ? "true" : "false");
    // A drain is a SUCCESSFUL exit: incomplete jobs resume next start.
    if (drained) return 0;
    return (failed > 0 || rejected > 0) ? 1 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "btsc-sweepd: %s\n", e.what());
    return 1;
  }
}
