// btsc-sweep — unified CLI over the scenario registry: reproduce any
// Monte-Carlo figure of the paper from one binary, sharded across a
// thread pool with bitwise-deterministic results at any thread count.
//
//   btsc-sweep --list
//   btsc-sweep --fig 8 --threads 8 --out fig08.json
//   btsc-sweep --scenario throughput --quick --csv
//
// Shared knobs (see core::BenchArgs): --seeds/--replications N, --quick,
// --threads N (0 = hardware), --csv, --json, --out FILE (.json/.csv
// suffix selects the format), --base-seed S, --max-points N.
#include <cstdio>
#include <cstring>
#include <string>

#include "runner/scenarios.hpp"

namespace {

void print_usage() {
  std::printf(
      "usage: btsc-sweep (--list | --fig N | --scenario ID) [options]\n"
      "\n"
      "options:\n"
      "  --list               list registered scenarios and exit\n"
      "  --fig N              run the scenario reproducing paper figure N\n"
      "  --scenario ID        run a scenario by id (see --list)\n"
      "  --threads N          worker threads (default 1; 0 = hardware)\n"
      "  --seeds N            replications per point (0 = scenario default)\n"
      "  --replications N     alias for --seeds\n"
      "  --quick              reduced replications and windows\n"
      "  --base-seed S        root of the deterministic seed derivation\n"
      "  --max-points N       keep only the first N sweep points\n"
      "  --csv | --json       output format (default: text table)\n"
      "  --out FILE           write to FILE (.json/.csv picks the format)\n"
      "  --no-burst           per-bit PHY reference transport (bit-identical\n"
      "                       results; swap-safety escape hatch)\n"
      "  --checkpoint-warmup  fork each replication from a per-point warm-up\n"
      "                       snapshot (bitwise equal to --cold-warmup)\n"
      "  --cold-warmup        staged replications, warm-up re-run every time\n"
      "                       (reference semantics of --checkpoint-warmup)\n"
      "  --checkpoint-dir DIR spill/load the per-point warm-up snapshots as\n"
      "                       durable checkpoint files (with\n"
      "                       --checkpoint-warmup)\n"
      "  --journal FILE       fsync each completed replication to an\n"
      "                       append-only journal (crash-safe progress)\n"
      "  --resume             skip replications already in --journal FILE;\n"
      "                       output is byte-identical to an uninterrupted\n"
      "                       run (kernel telemetry aside)\n"
      "  --rep-timeout S      per-replication deadline in seconds; overruns\n"
      "                       are quarantined, the sweep completes\n"
      "  --max-retries N      retry a throwing replication N times (with\n"
      "                       backoff) before quarantining it\n"
      "  --keep-going         quarantine failing replications instead of\n"
      "                       aborting the sweep (exit code 3 if any)\n"
      "  --quarantine-out F   write the JSON quarantine report to F\n");
}

void print_list() {
  std::printf("%-12s %-5s %s\n", "id", "fig", "summary");
  for (const auto& s : btsc::runner::scenarios()) {
    std::printf("%-12s %-5s %s\n", s.id.c_str(),
                s.figure.empty() ? "-" : s.figure.c_str(),
                s.summary.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string id;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--list") == 0) {
      print_list();
      return 0;
    }
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      print_usage();
      return 0;
    }
    if ((std::strcmp(argv[i], "--fig") == 0 ||
         std::strcmp(argv[i], "--scenario") == 0) &&
        i + 1 < argc) {
      id = argv[++i];
    }
  }
  if (id.empty()) {
    print_usage();
    return 2;
  }
  return btsc::runner::run_scenario_main(id, argc, argv);
}
