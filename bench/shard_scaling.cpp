// Shard-scaling probe for the conservative parallel kernel.
//
// Runs the two-piconet coexistence scenario with rf_delay > 0 (the
// configuration where the partition planner actually shards: one
// piconet per Environment, rf_delay as the lockstep lookahead) and
// reports wall-clock plus a result digest as one JSON object, so
// bench/run_benches can compose a shard_scaling block into
// BENCH_kernel.json and byte-verify that shard/lane counts do not
// change results.
//
//   shard_scaling [--shards N] [--lanes N] [--rf-delay-us U]
//                 [--seconds S] [--seed K]
//
// The digest folds every deterministic observable (medium counters,
// per-device link stats) with FNV-1a; equal digests across runs mean
// equal histories. Note the fused single-shard run (--shards 1) uses
// different RNG streams than a sharded run by design (one root stream
// vs per-shard derived streams), so its digest differs: it is the
// wall-clock reference, while determinism is verified between sharded
// configurations (shards 2 vs 4-clamped, lanes 1 vs 2).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/coexistence.hpp"
#include "core/traffic.hpp"

namespace {

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xFF;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t digest(btsc::core::TwoPiconets& net) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = fnv1a(h, net.collision_samples());
  for (int s = 0; s < net.num_shards(); ++s) {
    auto& ch = net.shard_channel(s);
    h = fnv1a(h, ch.bits_driven());
    h = fnv1a(h, ch.bits_flipped());
    h = fnv1a(h, ch.remote_bits());
    h = fnv1a(h, ch.remote_flips());
  }
  for (int p = 0; p < 2; ++p) {
    for (auto* dev : {&net.master(p), &net.slave(p)}) {
      const auto& st = dev->lc().stats();
      h = fnv1a(h, st.data_tx);
      h = fnv1a(h, st.data_rx_ok);
      h = fnv1a(h, st.retransmissions);
      h = fnv1a(h, st.poll_tx);
      h = fnv1a(h, st.null_tx);
    }
  }
  h = fnv1a(h, net.now().as_ns());
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  int shards = 1;
  int lanes = 0;
  long rf_delay_us = 10;
  long seconds = 2;
  std::uint64_t seed = 21;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](long fallback) {
      return i + 1 < argc ? std::strtol(argv[++i], nullptr, 10) : fallback;
    };
    if (std::strcmp(argv[i], "--shards") == 0) shards = (int)next(shards);
    else if (std::strcmp(argv[i], "--lanes") == 0) lanes = (int)next(lanes);
    else if (std::strcmp(argv[i], "--rf-delay-us") == 0)
      rf_delay_us = next(rf_delay_us);
    else if (std::strcmp(argv[i], "--seconds") == 0) seconds = next(seconds);
    else if (std::strcmp(argv[i], "--seed") == 0)
      seed = (std::uint64_t)next((long)seed);
  }

  btsc::core::CoexistenceConfig cfg;
  cfg.seed = seed;
  cfg.rf_delay = btsc::sim::SimTime::us((std::uint64_t)rf_delay_us);
  cfg.shards = shards;
  cfg.lanes = lanes;
  btsc::core::TwoPiconets net(cfg);
  if (!net.create(0) || !net.create(1)) {
    std::fprintf(stderr, "error: piconet creation failed (rf_delay too "
                         "large for receiver sync?)\n");
    return 1;
  }
  btsc::core::PeriodicTrafficSource t0(net.master(0), 1, 8, 9);
  btsc::core::PeriodicTrafficSource t1(net.master(1), 1, 8, 9);

  const auto t_start = std::chrono::steady_clock::now();
  net.run(btsc::sim::SimTime::sec((std::uint64_t)seconds));
  const auto t_end = std::chrono::steady_clock::now();
  const double wall =
      std::chrono::duration<double>(t_end - t_start).count();

  std::printf("{\"shards_requested\": %d, \"shards\": %d, \"lanes\": %d, "
              "\"rf_delay_us\": %ld, \"sim_seconds\": %ld, "
              "\"wall_s\": %.6f, \"digest\": \"%016llx\"}\n",
              shards, net.num_shards(),
              lanes > 0 ? lanes : net.num_shards(), rf_delay_us, seconds,
              wall, (unsigned long long)digest(net));
  return 0;
}
