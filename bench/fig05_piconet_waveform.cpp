// Fig. 5 — Waveforms for the creation of a piconet with a master and
// three slaves.
//
// Reproduces the paper's scenario: all devices try to connect at the same
// time; the master inquires, collects all three FHS responses, then pages
// the slaves one by one. Produces
//   * fig05.vcd             -- the enable_rx_RF / enable_tx_RF waveforms
//                              (open in GTKWave; the paper's Fig. 5),
//   * an ASCII RX-activity strip per device (10 ms per character),
//   * a per-phase summary.
//
// The paper's qualitative observations to check in the output: slaves not
// yet in the piconet keep their receiver always active (solid strip);
// once joined, the receiver opens only at slot starts (sparse strip).
#include <cstdio>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "core/system.hpp"

using namespace btsc;
using namespace btsc::sim::literals;

namespace {

/// Samples each device's RX enable every 10 ms into a character strip.
class ActivityStrip {
 public:
  ActivityStrip(core::BluetoothSystem& sys) : sys_(sys) { sample(); }

  void sample() {
    auto mark = [](baseband::Device& d) {
      if (d.radio().tx_busy()) return '#';
      return d.radio().rx_enabled() ? '=' : '.';
    };
    strips_.resize(static_cast<std::size_t>(sys_.num_slaves()) + 1);
    strips_[0].push_back(mark(sys_.master()));
    for (int i = 0; i < sys_.num_slaves(); ++i) {
      strips_[static_cast<std::size_t>(i) + 1].push_back(mark(sys_.slave(i)));
    }
    sys_.env().schedule(sim::SimTime::ms(10), [this] { sample(); });
  }

  void print() const {
    static const char* names[] = {"master", "slave1", "slave2", "slave3"};
    for (std::size_t i = 0; i < strips_.size(); ++i) {
      std::printf("%-7s |%s|\n", names[i], strips_[i].c_str());
    }
  }

 private:
  core::BluetoothSystem& sys_;
  std::vector<std::string> strips_;
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = core::BenchArgs::parse(argc, argv);
  core::Report report(
      "Fig. 5: piconet creation waveforms (master + 3 slaves); '='=RX on, "
      "'#'=TX, '.'=RF off; one column = 10 ms",
      args.csv);

  core::SystemConfig sc;
  sc.num_slaves = 3;
  sc.seed = 2026;
  sc.lc.inquiry_timeout_slots = 65000;
  sc.lc.page_timeout_slots = 16384;
  sc.vcd_path = "fig05.vcd";
  core::BluetoothSystem sys(sc);
  ActivityStrip strip(sys);

  const auto inquiry = sys.run_inquiry();
  report.note("inquiry: " + std::string(inquiry.success ? "ok" : "FAILED") +
              " after " + std::to_string(inquiry.slots) + " slots (found " +
              std::to_string(sys.master().lc().discovered().size()) +
              " devices)");
  // All slaves now wait in page scan (receiver always active -- the
  // paper's "not already in the piconet" observation); the master pages
  // them one at a time. To make the always-on stretch visible, linger a
  // while between pages.
  for (int i = 0; i < 3; ++i) sys.slave(i).lc().enable_page_scan();
  sys.run(100_ms);
  for (int i = 0; i < 3 && inquiry.success; ++i) {
    const auto page = sys.run_page(i);
    report.note("page slave" + std::to_string(i + 1) + ": " +
                (page.success ? "ok" : "FAILED") + " after " +
                std::to_string(page.slots) + " slots (LT_ADDR " +
                std::to_string(sys.lt_addr_of(i)) + ")");
    sys.run(100_ms);
  }
  // Connected phase: observe the slot-gated receivers of joined slaves.
  sys.run(500_ms);
  strip.print();

  for (int i = 0; i < 3; ++i) {
    auto& r = sys.slave(i).radio();
    const double dur = sys.env().now().as_sec();
    std::printf(
        "# slave%d lifetime RX duty %.1f%%, TX duty %.2f%% (joined slaves "
        "drop to slot-start listening)\n",
        i + 1, 100.0 * r.rx_on_time().as_sec() / dur,
        100.0 * r.tx_on_time().as_sec() / dur);
  }
  sys.finish_trace();
  std::printf("# waveform written to fig05.vcd\n");
  return 0;
}
