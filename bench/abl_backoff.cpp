// Ablation — the inquiry random backoff window.
//
// DESIGN.md identifies the mandatory 0..1023-slot backoff between the two
// inquiry IDs as the dominant term in the ~1556-slot inquiry mean. This
// bench sweeps the backoff ceiling and reports the noiseless inquiry mean
// and success probability against the paper's 1.28 s timeout, isolating
// that design choice.
//
// Thin wrapper over the "backoff" scenario; `btsc-sweep --scenario
// backoff` runs the same sweep with the same flags.
#include "runner/scenarios.hpp"

int main(int argc, char** argv) {
  return btsc::runner::run_scenario_main("backoff", argc, argv);
}
