// Ablation — the inquiry random backoff window.
//
// DESIGN.md identifies the mandatory 0..1023-slot backoff between the two
// inquiry IDs as the dominant term in the ~1556-slot inquiry mean. This
// bench sweeps the backoff ceiling and reports the noiseless inquiry mean
// and success probability against the paper's 1.28 s timeout, isolating
// that design choice.
#include "core/report.hpp"
#include "core/system.hpp"
#include "stats/accumulator.hpp"

int main(int argc, char** argv) {
  using namespace btsc;
  const auto args = core::BenchArgs::parse(argc, argv);
  core::Report report(
      "Ablation: inquiry backoff ceiling vs mean inquiry time and success "
      "probability (noiseless, 1.28 s timeout; spec ceiling is 1023)",
      args.csv);
  report.columns({"backoff_max", "mean_TS", "ok", "runs"});

  const int seeds = args.seeds > 0 ? args.seeds : (args.quick ? 8 : 30);
  for (std::uint32_t backoff : {0u, 127u, 255u, 511u, 1023u, 2047u}) {
    stats::Accumulator mean;
    stats::RatioCounter ok;
    for (int s = 0; s < seeds; ++s) {
      core::SystemConfig sc;
      sc.num_slaves = 1;
      sc.seed = 500 + static_cast<std::uint64_t>(s);
      sc.lc.inquiry_backoff_max_slots = backoff;
      const auto r = [&] {
        core::BluetoothSystem sys(sc);
        return sys.run_inquiry();
      }();
      ok.add(r.success);
      if (r.success) mean.add(static_cast<double>(r.slots));
    }
    report.row({static_cast<double>(backoff), mean.mean(),
                static_cast<double>(ok.successes()),
                static_cast<double>(ok.trials())});
  }
  report.note("larger ceilings push completions past the timeout: the "
              "backoff trades collision avoidance against discovery time");
  return 0;
}
