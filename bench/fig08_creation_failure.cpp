// Fig. 8 — Probability of failure in the creation of a piconet: separate
// curves for the inquiry and page phases versus BER, with the paper's
// 1.28 s timeout for both phases.
//
// Paper reference: inquiry failure grows gently (~20-45%); page failure
// explodes beyond BER 1/50 and paging is essentially impossible at 1/30
// -- "the bottleneck is therefore the page phase".
//
// Thin wrapper over the "fig08" scenario; `btsc-sweep --fig 8` runs the
// same sweep with the same flags.
#include "runner/scenarios.hpp"

int main(int argc, char** argv) {
  return btsc::runner::run_scenario_main("fig08", argc, argv);
}
