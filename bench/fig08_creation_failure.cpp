// Fig. 8 — Probability of failure in the creation of a piconet: separate
// curves for the inquiry and page phases versus BER, with the paper's
// 1.28 s timeout for both phases.
//
// Paper reference: inquiry failure grows gently (~20-45%); page failure
// explodes beyond BER 1/50 and paging is essentially impossible at 1/30
// -- "the bottleneck is therefore the page phase".
#include "core/experiments.hpp"
#include "core/report.hpp"

int main(int argc, char** argv) {
  using namespace btsc;
  const auto args = core::BenchArgs::parse(argc, argv);
  core::Report report(
      "Fig. 8: piconet creation failure probability vs BER (inquiry and "
      "page curves; paper: page >95% failure beyond 1/40)",
      args.csv);
  report.columns({"1/BER", "inq_fail", "inq_lo", "inq_hi", "page_fail",
                  "page_lo", "page_hi"});

  core::CreationConfig cfg;
  cfg.seeds = args.seeds > 0 ? args.seeds : (args.quick ? 10 : 40);

  const double bers[] = {1.0 / 100, 1.0 / 90, 1.0 / 80, 1.0 / 70,
                         1.0 / 60,  1.0 / 50, 1.0 / 40, 1.0 / 30};
  for (double ber : bers) {
    const auto p = core::run_creation_point(ber, cfg);
    const auto [ilo, ihi] = p.inquiry_ok.wilson95();
    const auto [plo, phi] = p.page_ok.wilson95();
    report.row({1.0 / ber, 1.0 - p.inquiry_ok.ratio(), 1.0 - ihi, 1.0 - ilo,
                1.0 - p.page_ok.ratio(), 1.0 - phi, 1.0 - plo});
  }
  report.note(
      "page failure is conditional on inquiry success; both phases must "
      "succeed to create the piconet");
  return 0;
}
