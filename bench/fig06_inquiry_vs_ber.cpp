// Fig. 6 — Mean number of time slots required to complete the inquiry
// phase as a function of the channel BER.
//
// Paper reference points: ~1556 slots in the noiseless channel, slowly
// rising towards ~1800 slots at BER 1/30 (ID packets are the least
// noise-sensitive, so the increase is modest). Means are over successful
// runs, with the paper's 1.28 s (2048 slot) timeout.
//
// Thin wrapper over the "fig06" scenario; `btsc-sweep --fig 6` runs the
// same sweep with the same flags.
#include "runner/scenarios.hpp"

int main(int argc, char** argv) {
  return btsc::runner::run_scenario_main("fig06", argc, argv);
}
