// Fig. 6 — Mean number of time slots required to complete the inquiry
// phase as a function of the channel BER.
//
// Paper reference points: ~1556 slots in the noiseless channel, slowly
// rising towards ~1800 slots at BER 1/30 (ID packets are the least
// noise-sensitive, so the increase is modest). Means are over successful
// runs, with the paper's 1.28 s (2048 slot) timeout.
#include <cstdio>

#include "core/experiments.hpp"
#include "core/report.hpp"

int main(int argc, char** argv) {
  using namespace btsc;
  const auto args = core::BenchArgs::parse(argc, argv);
  core::Report report(
      "Fig. 6: mean slots to complete INQUIRY vs BER (paper: 1556 @ no "
      "noise, ~1800 @ 1/30; successful runs, 1.28 s timeout)",
      args.csv);
  report.columns({"1/BER", "mean_TS", "ci95_TS", "runs_ok", "runs"});

  core::CreationConfig cfg;
  cfg.seeds = args.seeds > 0 ? args.seeds : (args.quick ? 8 : 40);

  const double bers[] = {0.0,      1.0 / 100, 1.0 / 90, 1.0 / 80, 1.0 / 70,
                         1.0 / 60, 1.0 / 50,  1.0 / 40, 1.0 / 30};
  for (double ber : bers) {
    const auto p = core::run_creation_point(ber, cfg);
    report.row({ber > 0 ? 1.0 / ber : 0.0, p.inquiry_slots.mean(),
                p.inquiry_slots.ci95_half_width(),
                static_cast<double>(p.inquiry_ok.successes()),
                static_cast<double>(p.inquiry_ok.trials())});
  }
  report.note("1/BER = 0 denotes the noiseless channel");
  return 0;
}
