// Fig. 10 — RF activity of the master (TX and RX) as a function of the
// channel duty cycle (fraction of master transmit slots carrying data).
//
// Paper reference: both curves grow linearly from the origin up to ~0.3%
// (TX) at 2% duty, with the TX curve above the RX curve (the master
// enables its receiver only in the slot following its own transmission,
// per the polling scheme).
//
// Thin wrapper over the "fig10" scenario; `btsc-sweep --fig 10` runs the
// same sweep with the same flags.
#include "runner/scenarios.hpp"

int main(int argc, char** argv) {
  return btsc::runner::run_scenario_main("fig10", argc, argv);
}
