// Fig. 10 — RF activity of the master (TX and RX) as a function of the
// channel duty cycle (fraction of master transmit slots carrying data).
//
// Paper reference: both curves grow linearly from the origin up to ~0.3%
// (TX) at 2% duty, with the TX curve above the RX curve (the master
// enables its receiver only in the slot following its own transmission,
// per the polling scheme).
#include "core/experiments.hpp"
#include "core/report.hpp"

int main(int argc, char** argv) {
  using namespace btsc;
  const auto args = core::BenchArgs::parse(argc, argv);
  core::Report report(
      "Fig. 10: master RF activity vs duty cycle (paper: linear, TX above "
      "RX, ~0.3% TX at 2% duty with short DM1 packets)",
      args.csv);
  report.columns({"duty_%", "tx_%", "rx_%", "total_%", "messages"});

  core::MasterActivityConfig cfg;
  cfg.measure_slots = args.quick ? 8000 : 40000;

  const double duties[] = {0.0,   0.0025, 0.005, 0.0075, 0.01,
                           0.0125, 0.015,  0.0175, 0.02};
  for (double duty : duties) {
    const auto row = core::run_master_activity(duty, cfg);
    report.row({100.0 * duty, 100.0 * row.master.tx_fraction,
                100.0 * row.master.rx_fraction,
                100.0 * row.master.total(),
                static_cast<double>(row.messages)});
  }
  report.note("payload: 1-byte DM1 (186 us on air), poll interval 4000 "
              "slots to isolate traffic-driven activity");
  return 0;
}
