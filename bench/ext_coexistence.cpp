// Extension — piconet coexistence interference.
//
// The paper's channel resolver models packet collisions "when two or
// more piconets coexist" (its Fig. 2); the quantitative consequences are
// the subject of its references [3]-[5]. This bench measures the goodput
// of one saturated ACL link while a second, independent piconet ramps
// its offered load on the same 79-channel medium, reporting goodput,
// retransmission counts and observed collision samples.
//
// Thin wrapper over the "coexistence" scenario; `btsc-sweep --scenario
// coexistence` runs the same sweep with the same flags.
#include "runner/scenarios.hpp"

int main(int argc, char** argv) {
  return btsc::runner::run_scenario_main("coexistence", argc, argv);
}
