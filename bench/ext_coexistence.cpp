// Extension — piconet coexistence interference.
//
// The paper's channel resolver models packet collisions "when two or
// more piconets coexist" (its Fig. 2); the quantitative consequences are
// the subject of its references [3]-[5]. This bench measures the goodput
// of one saturated ACL link while a second, independent piconet ramps
// its offered load on the same 79-channel medium, reporting goodput,
// retransmission counts and observed collision samples.
#include <memory>

#include "core/coexistence.hpp"
#include "core/report.hpp"
#include "core/traffic.hpp"

int main(int argc, char** argv) {
  using namespace btsc;
  const auto args = core::BenchArgs::parse(argc, argv);
  core::Report report(
      "Extension: victim-link goodput vs neighbour piconet load (DM1 "
      "traffic; independent hop sequences overlap on ~1/79 of slots)",
      args.csv);
  report.columns({"nbr_period", "goodput_kbps", "retx", "collisions"});

  // Neighbour data period in slots; 0 = neighbour silent.
  const std::uint32_t loads[] = {0, 64, 16, 8, 4, 2};
  const sim::SimTime window =
      baseband::kSlotDuration * (args.quick ? 8000u : 24000u);

  for (std::uint32_t period : loads) {
    core::CoexistenceConfig cfg;
    cfg.seed = 2030;
    core::TwoPiconets net(cfg);
    if (!net.create(0) || !net.create(1)) {
      report.note("piconet creation failed (unexpected)");
      return 1;
    }
    std::uint64_t victim_bytes = 0;
    lm::LinkManager::Events ev;
    ev.user_data = [&](std::uint8_t, std::vector<std::uint8_t> d) {
      victim_bytes += d.size();
    };
    net.slave_lm(0).set_events(std::move(ev));

    core::SaturatingTrafficSource victim(net.master(0), 1, 17);
    std::unique_ptr<core::PeriodicTrafficSource> neighbour;
    if (period > 0) {
      neighbour = std::make_unique<core::PeriodicTrafficSource>(
          net.master(1), 1, period, 17);
    }
    const auto retx0 = net.master(0).lc().stats().retransmissions;
    const auto coll0 = net.channel().collision_samples();
    net.run(window);
    report.row({static_cast<double>(period),
                static_cast<double>(victim_bytes * 8) / window.as_sec() /
                    1000.0,
                static_cast<double>(
                    net.master(0).lc().stats().retransmissions - retx0),
                static_cast<double>(net.channel().collision_samples() -
                                    coll0)});
  }
  report.note("nbr_period = neighbour's data period in slots (0 = "
              "silent); smaller period = heavier interference");
  return 0;
}
