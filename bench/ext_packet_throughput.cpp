// Extension — effect of the packet type (DH1/3/5, DM1/3/5) on throughput
// in the presence of noise.
//
// The paper lists this trade-off as one of the analyses its model was
// built for (Section 2): unprotected DH packets maximise goodput on a
// clean channel, while FEC-protected DM packets win once the BER rises;
// longer packets amplify both effects. The full type x BER matrix is one
// sweep, so every cell shards across the thread pool at once.
//
// Thin wrapper over the "throughput" scenario; `btsc-sweep --scenario
// throughput` runs the same sweep with the same flags.
#include "runner/scenarios.hpp"

int main(int argc, char** argv) {
  return btsc::runner::run_scenario_main("throughput", argc, argv);
}
