// Extension — effect of the packet type (DH1/3/5, DM1/3/5) on throughput
// in the presence of noise.
//
// The paper lists this trade-off as one of the analyses its model was
// built for (Section 2): unprotected DH packets maximise goodput on a
// clean channel, while FEC-protected DM packets win once the BER rises;
// longer packets amplify both effects. This bench prints the full
// type x BER matrix, exposing the crossovers.
#include "baseband/packet.hpp"
#include "core/experiments.hpp"
#include "core/report.hpp"

int main(int argc, char** argv) {
  using namespace btsc;
  using baseband::PacketType;
  const auto args = core::BenchArgs::parse(argc, argv);
  core::Report report(
      "Extension: ACL goodput (kb/s) per packet type vs BER (saturated "
      "master->slave link with 1-bit ARQ)",
      args.csv);
  report.columns({"1/BER", "DM1", "DH1", "DM3", "DH3", "DM5", "DH5"});

  core::ThroughputConfig cfg;
  cfg.measure_slots = args.quick ? 3000 : 8000;

  const PacketType types[] = {PacketType::kDm1, PacketType::kDh1,
                              PacketType::kDm3, PacketType::kDh3,
                              PacketType::kDm5, PacketType::kDh5};
  const double bers[] = {0.0,       1.0 / 5000, 1.0 / 1000,
                         1.0 / 500, 1.0 / 200,  1.0 / 100};
  for (double ber : bers) {
    std::vector<double> row = {ber > 0 ? 1.0 / ber : 0.0};
    for (PacketType t : types) {
      row.push_back(core::run_throughput(t, ber, cfg).goodput_kbps);
    }
    report.row(row);
  }
  report.note("expected shape: clean-channel ceilings DH5 723 / DM5 478 "
              "kb/s; DM types overtake DH as BER grows; short packets "
              "degrade most gracefully");
  return 0;
}
