// Fig. 9 — Waveforms with slaves 2 and 3 placed in sniff mode.
//
// Reproduces the paper's scenario on a 4-device piconet: after creation,
// the Link Manager negotiates sniff mode for slaves 2 and 3 (short sniff
// interval so the gating is visible). Writes fig09.vcd and prints an
// ASCII RX strip sampled every 2 slots: the sniffing slaves' enable_rx_RF
// pulses only at their sniff anchors, while slave 1 keeps listening at
// every slot start.
#include <cstdio>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "core/system.hpp"

using namespace btsc;
using namespace btsc::sim::literals;

int main(int argc, char** argv) {
  const auto args = core::BenchArgs::parse(argc, argv);
  core::Report report(
      "Fig. 9: slave2/slave3 in sniff mode (Tsniff = 16 slots, attempt 1); "
      "strip: one column per slot, '=' RX on at slot start, '.' off",
      args.csv);

  core::SystemConfig sc;
  sc.num_slaves = 3;
  sc.seed = 99;
  sc.lc.inquiry_timeout_slots = 65000;
  sc.lc.page_timeout_slots = 16384;
  sc.vcd_path = "fig09.vcd";
  core::BluetoothSystem sys(sc);
  if (!sys.create_piconet()) {
    report.note("piconet creation failed (unexpected)");
    return 1;
  }
  sys.run(100_ms);

  // Negotiate sniff over LMP for slaves 2 and 3.
  sys.master_lm().request_sniff(sys.lt_addr_of(1), 16, 0, 1);
  sys.master_lm().request_sniff(sys.lt_addr_of(2), 16, 8, 1);
  sys.run(200_ms);

  // Sample each slave's RX enable shortly after each even-slot start.
  std::vector<std::string> strips(3);
  for (int slot = 0; slot < 96; slot += 2) {
    sys.env().schedule(sim::SimTime::us(40) +
                           baseband::kSlotDuration * static_cast<std::uint64_t>(slot),
                       [&sys, &strips] {
                         for (int i = 0; i < 3; ++i) {
                           strips[static_cast<std::size_t>(i)].push_back(
                               sys.slave(i).radio().rx_enabled() ? '=' : '.');
                         }
                       });
  }
  sys.run(baseband::kSlotDuration * 100);
  for (int i = 0; i < 3; ++i) {
    std::printf("slave%d (%s) |%s|\n", i + 1,
                to_string(sys.slave(i).lc().slave_mode()),
                strips[static_cast<std::size_t>(i)].c_str());
  }

  // Quantify: RX duty over one second in each mode.
  for (int i = 0; i < 3; ++i) sys.slave(i).radio().reset_activity();
  sys.run(1_sec);
  for (int i = 0; i < 3; ++i) {
    std::printf("# slave%d RX duty over 1 s: %.2f%%\n", i + 1,
                100.0 * sys.slave(i).radio().rx_on_time().as_sec());
  }
  sys.finish_trace();
  std::printf("# waveform written to fig09.vcd\n");
  return 0;
}
