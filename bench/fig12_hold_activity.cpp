// Fig. 12 — RF activity (TX+RX) of the slave as a function of the hold
// time, hold mode vs staying active on an idle link.
//
// Paper reference: the active line is flat at 2.6% (slot-start listening
// only); the hold curve decreases with Thold and crosses the active line
// around Thold ~ 120 slots -- below that, the resynchronisation cost
// after every hold outweighs the radio-off saving.
#include "core/experiments.hpp"
#include "core/report.hpp"

int main(int argc, char** argv) {
  using namespace btsc;
  const auto args = core::BenchArgs::parse(argc, argv);
  core::Report report(
      "Fig. 12: slave RF activity vs Thold, hold vs active (paper: active "
      "flat 2.6%, crossover ~120 slots)",
      args.csv);
  report.columns({"Thold", "active_%", "hold_%"});

  core::HoldActivityConfig cfg;
  cfg.min_measure_slots = args.quick ? 8000 : 30000;

  const auto active = core::run_hold_activity(std::nullopt, cfg);
  for (std::uint32_t thold :
       {40u, 80u, 120u, 160u, 200u, 400u, 600u, 800u, 1000u}) {
    const auto hold = core::run_hold_activity(thold, cfg);
    report.row({static_cast<double>(thold), 100.0 * active.slave.total(),
                100.0 * hold.slave.total()});
  }
  report.note("hold cycles repeat back to back with an 8-slot gap; the "
              "resync cost is ~2.5 slots of full listening per cycle");
  return 0;
}
