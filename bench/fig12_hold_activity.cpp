// Fig. 12 — RF activity (TX+RX) of the slave as a function of the hold
// time, hold mode vs staying active on an idle link.
//
// Paper reference: the active line is flat at 2.6% (slot-start listening
// only); the hold curve decreases with Thold and crosses the active line
// around Thold ~ 120 slots -- below that, the resynchronisation cost
// after every hold outweighs the radio-off saving.
//
// Thin wrapper over the "fig12" scenario; `btsc-sweep --fig 12` runs the
// same sweep with the same flags.
#include "runner/scenarios.hpp"

int main(int argc, char** argv) {
  return btsc::runner::run_scenario_main("fig12", argc, argv);
}
