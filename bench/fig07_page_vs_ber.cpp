// Fig. 7 — Mean number of time slots required to complete the page phase
// as a function of the channel BER.
//
// Paper reference points: ~17 slots without noise (the devices are
// already synchronised by the inquiry clock estimate); completion becomes
// impossible beyond BER ~1/30. Means are over successful runs. This
// model's page response dialogue is single-shot (see DESIGN.md), so the
// mean stays near the noiseless value while the success count collapses
// with BER -- the failure behaviour itself is Fig. 8.
#include "core/experiments.hpp"
#include "core/report.hpp"

int main(int argc, char** argv) {
  using namespace btsc;
  const auto args = core::BenchArgs::parse(argc, argv);
  core::Report report(
      "Fig. 7: mean slots to complete PAGE vs BER (paper: 17 @ no noise; "
      "impossible beyond ~1/30)",
      args.csv);
  report.columns({"1/BER", "mean_TS", "ci95_TS", "runs_ok", "attempted"});

  core::CreationConfig cfg;
  cfg.seeds = args.seeds > 0 ? args.seeds : (args.quick ? 8 : 40);

  const double bers[] = {0.0,      1.0 / 100, 1.0 / 90, 1.0 / 80, 1.0 / 70,
                         1.0 / 60, 1.0 / 50,  1.0 / 40, 1.0 / 30};
  for (double ber : bers) {
    const auto p = core::run_creation_point(ber, cfg);
    report.row({ber > 0 ? 1.0 / ber : 0.0, p.page_slots.mean(),
                p.page_slots.ci95_half_width(),
                static_cast<double>(p.page_ok.successes()),
                static_cast<double>(p.page_ok.trials())});
  }
  report.note("page is attempted only after a successful inquiry");
  return 0;
}
