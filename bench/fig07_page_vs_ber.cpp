// Fig. 7 — Mean number of time slots required to complete the page phase
// as a function of the channel BER.
//
// Paper reference points: ~17 slots without noise (the devices are
// already synchronised by the inquiry clock estimate); completion becomes
// impossible beyond BER ~1/30. Means are over successful runs.
//
// Thin wrapper over the "fig07" scenario; `btsc-sweep --fig 7` runs the
// same sweep with the same flags.
#include "runner/scenarios.hpp"

int main(int argc, char** argv) {
  return btsc::runner::run_scenario_main("fig07", argc, argv);
}
