// Ablation / micro-benchmarks of the baseband codecs (google-benchmark).
//
// Quantifies the per-packet cost of the pure-function substrate: hop
// selection, sync-word generation and correlation, FEC, CRC/HEC and
// whitening. These dominate the simulator's per-bit work, so their cost
// directly sets the clock-cycles-per-second figure of bench_kernel.
#include <benchmark/benchmark.h>

#include "baseband/access_code.hpp"
#include "baseband/address.hpp"
#include "baseband/crc.hpp"
#include "baseband/fec.hpp"
#include "baseband/hec.hpp"
#include "baseband/hop.hpp"
#include "baseband/packet.hpp"
#include "baseband/whitening.hpp"
#include "sim/rng.hpp"

namespace {

using namespace btsc;
using namespace btsc::baseband;

void BM_HopSelection(benchmark::State& state) {
  HopInput in;
  in.address = BdAddr(0x2A96EF, 0x5B, 1).hop_address();
  in.mode = HopMode::kConnection;
  std::uint32_t clk = 0;
  for (auto _ : state) {
    in.clock = clk;
    clk += 2;
    benchmark::DoNotOptimize(hop_frequency(in));
  }
}
BENCHMARK(BM_HopSelection);

void BM_SyncWordGeneration(benchmark::State& state) {
  std::uint32_t lap = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sync_word(lap));
    lap = (lap + 0x1057) & 0xFFFFFF;
  }
}
BENCHMARK(BM_SyncWordGeneration);

void BM_CorrelatorPush(benchmark::State& state) {
  const auto sw = sync_word(kGiacLap);
  Correlator corr(sw);
  sim::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(corr.push(rng.bernoulli(0.5)));
  }
}
BENCHMARK(BM_CorrelatorPush);

void BM_Fec23EncodeDm1(benchmark::State& state) {
  sim::BitVector body(160);  // full DM1 body incl. CRC
  for (auto _ : state) {
    benchmark::DoNotOptimize(fec23_encode(body));
  }
}
BENCHMARK(BM_Fec23EncodeDm1);

void BM_Fec23DecodeDm1(benchmark::State& state) {
  const auto coded = fec23_encode(sim::BitVector(160));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fec23_decode(coded));
  }
}
BENCHMARK(BM_Fec23DecodeDm1);

void BM_Crc16Dh5Payload(benchmark::State& state) {
  std::vector<std::uint8_t> payload(339, 0x5A);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc16_compute(payload, 0x47));
  }
}
BENCHMARK(BM_Crc16Dh5Payload);

void BM_HecHeader(benchmark::State& state) {
  std::uint16_t header = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hec_compute10(header, 0x47));
    ++header;
  }
}
BENCHMARK(BM_HecHeader);

void BM_WhitenDh5(benchmark::State& state) {
  sim::BitVector payload(2744);
  for (auto _ : state) {
    Whitener w(0x55);
    w.apply(payload);
    benchmark::DoNotOptimize(payload);
  }
}
BENCHMARK(BM_WhitenDh5);

void BM_ComposeDm1(benchmark::State& state) {
  PacketHeader h;
  h.type = PacketType::kDm1;
  const auto body = build_acl_body(PacketType::kDm1, kLlidStart, true,
                                   std::vector<std::uint8_t>(17, 1));
  LinkParams params;
  params.whiten_init = 0x55;
  for (auto _ : state) {
    benchmark::DoNotOptimize(compose_after_access_code(h, body, params));
  }
}
BENCHMARK(BM_ComposeDm1);

}  // namespace

BENCHMARK_MAIN();
