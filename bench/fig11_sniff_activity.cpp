// Fig. 11 — RF activity (TX+RX) of the slave as a function of Tsniff,
// active mode vs sniff mode, with the master transmitting data every 100
// slots.
//
// Paper reference: the active curve is flat (~4.2%); the sniff curve
// decreases with Tsniff, crossing the active line around Tsniff ~ 30 and
// saving ~30% at Tsniff = 100 (the largest interval that loses no
// packets given the 100-slot data period).
//
// Thin wrapper over the "fig11" scenario; `btsc-sweep --fig 11` runs the
// same sweep with the same flags.
#include "runner/scenarios.hpp"

int main(int argc, char** argv) {
  return btsc::runner::run_scenario_main("fig11", argc, argv);
}
