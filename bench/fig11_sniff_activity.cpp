// Fig. 11 — RF activity (TX+RX) of the slave as a function of
// Tsniff, active mode vs sniff mode, with the master transmitting data
// every 100 slots.
//
// Paper reference: the active curve is flat (~4.2%); the sniff curve
// decreases with Tsniff, crossing the active line around Tsniff ~ 30 and
// saving ~30% at Tsniff = 100 (the largest interval that loses no
// packets given the 100-slot data period).
#include "core/experiments.hpp"
#include "core/report.hpp"

int main(int argc, char** argv) {
  using namespace btsc;
  const auto args = core::BenchArgs::parse(argc, argv);
  core::Report report(
      "Fig. 11: slave RF activity vs Tsniff, active vs sniff (master data "
      "every 100 slots; paper: crossover ~30, saving at 100)",
      args.csv);
  report.columns({"Tsniff", "active_%", "sniff_%"});

  core::SniffActivityConfig cfg;
  cfg.measure_slots = args.quick ? 8000 : 30000;

  const auto active = core::run_sniff_activity(std::nullopt, cfg);
  for (std::uint32_t tsniff : {10u, 20u, 30u, 40u, 50u, 60u, 80u, 100u}) {
    const auto sniff = core::run_sniff_activity(tsniff, cfg);
    report.row({static_cast<double>(tsniff), 100.0 * active.slave.total(),
                100.0 * sniff.slave.total()});
  }
  report.note("active slave: slot-start carrier sensing + data reception "
              "+ ACKs + poll traffic");
  return 0;
}
