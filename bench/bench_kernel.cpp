// Simulator performance (google-benchmark).
//
// The paper reports its SystemC model simulating the 0.48 s four-device
// creation scenario in 10'47" of CPU time -- 747 Bluetooth clock cycles
// (1 MHz symbol clock) per wall-clock second. This bench measures the
// same figure for this kernel, plus the raw scheduler throughput and the
// schedule/cancel churn the baseband state machines generate.
//
// The main() emits a "btsc_build_type" entry into the benchmark JSON
// context: the build type the btsc library itself was compiled with.
// google-benchmark's own "library_build_type" describes libbenchmark
// (the distro ships a debug build of it), which says nothing about the
// numbers measured here -- bench/run_benches keys off btsc_build_type
// and refuses to record baselines from non-Release trees.
#include <benchmark/benchmark.h>

#include <functional>
#include <vector>

#include "baseband/access_code.hpp"
#include "baseband/bt_clock.hpp"
#include "baseband/packet.hpp"
#include "baseband/receiver.hpp"
#include "core/experiments.hpp"
#include "core/system.hpp"
#include "phy/channel.hpp"
#include "sim/clock.hpp"
#include "sim/environment.hpp"

namespace {

using namespace btsc;
using namespace btsc::sim::literals;

/// The paper's scenario: 4 devices, 0.48 s of simulated time during
/// piconet creation. Reports simulated 1 MHz clock cycles per second.
/// `burst` selects the word-packed burst transport (the default) or the
/// one-event-per-bit reference path -- the pair measures exactly what
/// the PHY batching buys on the headline scenario.
void paper_scenario(benchmark::State& state, bool burst) {
  for (auto _ : state) {
    core::SystemConfig sc;
    sc.num_slaves = 3;
    sc.seed = 7;
    sc.lc.inquiry_timeout_slots = 65000;
    core::BluetoothSystem sys(sc);
    sys.channel().set_burst_transport_enabled(burst);
    // Start the creation (inquiry + scans) and run 0.48 s of sim time.
    for (int i = 0; i < 3; ++i) sys.slave(i).lc().enable_inquiry_scan();
    sys.master().lc().enable_inquiry();
    sys.run(480_ms);
    benchmark::DoNotOptimize(sys.env().process_activations());
  }
  // 0.48 s at 1 MHz = 480000 simulated clock cycles per iteration.
  state.counters["sim_clock_cycles_per_s"] = benchmark::Counter(
      480e3 * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

void BM_PaperScenario480ms(benchmark::State& state) {
  paper_scenario(state, /*burst=*/true);
}
BENCHMARK(BM_PaperScenario480ms)->Unit(benchmark::kMillisecond);

void BM_PaperScenario480msPerBit(benchmark::State& state) {
  paper_scenario(state, /*burst=*/false);
}
BENCHMARK(BM_PaperScenario480msPerBit)->Unit(benchmark::kMillisecond);

/// The same creation scenario on a noisy channel (BER 1/60, mid-range
/// on the paper's Fig. 6-8 sweeps). On the burst side every packet
/// rides a masked run: the whole error pattern is pre-drawn with
/// Rng::fill_error_mask and XORed in at word granularity. The per-bit
/// side draws one Bernoulli per transmitted bit. The pair measures
/// exactly what the batched error-mask path buys on noisy scenarios --
/// before it existed, BER > 0 forced every packet onto the per-bit
/// chain.
void noisy_scenario(benchmark::State& state, bool burst) {
  for (auto _ : state) {
    core::SystemConfig sc;
    sc.num_slaves = 3;
    sc.seed = 7;
    sc.ber = 1.0 / 60.0;
    sc.lc.inquiry_timeout_slots = 65000;
    core::BluetoothSystem sys(sc);
    sys.channel().set_burst_transport_enabled(burst);
    for (int i = 0; i < 3; ++i) sys.slave(i).lc().enable_inquiry_scan();
    sys.master().lc().enable_inquiry();
    sys.run(480_ms);
    benchmark::DoNotOptimize(sys.env().process_activations());
  }
  state.counters["sim_clock_cycles_per_s"] = benchmark::Counter(
      480e3 * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

void BM_NoisyScenario480ms(benchmark::State& state) {
  noisy_scenario(state, /*burst=*/true);
}
BENCHMARK(BM_NoisyScenario480ms)->Unit(benchmark::kMillisecond);

void BM_NoisyScenario480msPerBit(benchmark::State& state) {
  noisy_scenario(state, /*burst=*/false);
}
BENCHMARK(BM_NoisyScenario480msPerBit)->Unit(benchmark::kMillisecond);

/// Full packet codec round trip through the word-packed framing stack:
/// compose a DH5 (access code, header FEC 1/3 + HEC, whitening, CRC),
/// then run every air bit through the receiver's batched sink protocol
/// -- sliding-word sync correlation, bulk assembly, block FEC/whitening
/// removal, table CRC -- exactly as a burst run delivers it.
void BM_PacketDecode(benchmark::State& state) {
  using namespace btsc::baseband;
  const std::uint32_t lap = 0x2A613C;
  const std::uint8_t uap = 0x47;
  PacketHeader h;
  h.type = PacketType::kDh5;
  h.lt_addr = 1;
  LinkParams params;
  params.check_init = uap;
  params.whiten_init = std::uint8_t{0x55};
  const std::vector<std::uint8_t> user(300, 0xA5);
  const std::vector<std::uint8_t> body =
      build_acl_body(PacketType::kDh5, kLlidStart, true, user);

  sim::Environment env;
  Receiver rec(env, "rx");
  std::uint64_t delivered = 0;
  rec.set_handler([&](const Receiver::Result& r) {
    delivered += r.payload_ok ? 1 : 0;
  });

  std::uint64_t bits_total = 0;
  for (auto _ : state) {
    sim::BitVector bits = access_code(lap, /*with_trailer=*/true);
    bits.append(compose_after_access_code(h, body, params));
    rec.configure(sync_word(lap), uap, params.whiten_init,
                  Receiver::Expect::kFull);
    // Deliver the packet the way a burst run does: quiet spans in bulk,
    // effect samples through the per-sample entry.
    std::size_t pos = 0;
    while (pos < bits.size()) {
      const std::size_t q = rec.quiet_prefix(&bits, pos, bits.size() - pos);
      rec.consume_quiet(&bits, pos, q);
      pos += q;
      if (pos < bits.size()) {
        rec.on_sample(phy::from_bit(bits[pos]));
        ++pos;
      }
    }
    bits_total += bits.size();
    benchmark::DoNotOptimize(delivered);
  }
  if (delivered != static_cast<std::uint64_t>(state.iterations())) {
    state.SkipWithError("DH5 round trip failed to decode");
  }
  state.counters["air_bits_per_s"] = benchmark::Counter(
      static_cast<double>(bits_total), benchmark::Counter::kIsRate);
  state.counters["packets_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PacketDecode)->Unit(benchmark::kMicrosecond);

/// Raw kernel: one self-rescheduling timer (event-queue throughput).
void BM_TimerChain(benchmark::State& state) {
  for (auto _ : state) {
    sim::Environment env;
    std::uint64_t count = 0;
    std::function<void()> tick = [&] {
      if (++count < 100000) env.schedule(1_us, tick);
    };
    env.schedule(1_us, tick);
    env.run_until(sim::SimTime::sec(10));
    benchmark::DoNotOptimize(count);
  }
  state.counters["events_per_s"] = benchmark::Counter(
      1e5 * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TimerChain)->Unit(benchmark::kMillisecond);

/// Scheduler churn: the schedule/cancel storm of the paper's 480 ms
/// connection-creation scenario, distilled. Every half-slot tick the
/// link controller arms a handful of guard timers (carrier-sense window
/// closes, backoff, response-dialogue timeouts) and the next state
/// transition cancels them before they fire, while long-lived timeouts
/// (inquiry/page, 2+ s out) sit deep in the queue for the whole run.
/// Counts kernel operations (schedule + cancel + fire) per second; a
/// scheduler that merely forgets the callback on cancel still pays the
/// queue traversal for every dead entry and scores accordingly.
void BM_SchedulerChurn(benchmark::State& state) {
  constexpr int kTicks = 1536;       // 480 ms of 312.5 us half-slots
  constexpr int kGuardsPerTick = 8;  // rx-close / backoff / dialogue arms
  constexpr int kStandingTimers = 64;
  // Kernel operations per iteration: every schedule, every cancel and
  // every dispatched callback (ticks plus the last tick's uncanceled
  // guards; the standing timeouts stay pending for the whole run).
  constexpr std::uint64_t kOpsPerIter =
      (kStandingTimers + kTicks * (kGuardsPerTick + 1)) +  // schedules
      (kTicks - 1) * kGuardsPerTick +                      // cancels
      (kTicks + kGuardsPerTick);                           // fires
  double wheel_hit_ratio = 0.0;
  for (auto _ : state) {
    sim::Environment env;
    std::uint64_t fired = 0;
    std::vector<sim::TimerId> guards;
    guards.reserve(kGuardsPerTick);
    // Standing timeouts that outlive the measurement window: they keep
    // the overflow heap populated so the mixed storm exercises both
    // containers (2..65 s is mostly past the 2.56 s wheel horizon).
    for (int i = 0; i < kStandingTimers; ++i) {
      env.schedule(sim::SimTime::sec(2 + i), [] {});
    }
    int tick = 0;
    std::function<void()> half_slot = [&] {
      // The state moved on: cancel the previous tick's guards (they are
      // armed 700+ us out, so none has fired yet).
      for (sim::TimerId id : guards) env.cancel(id);
      guards.clear();
      for (int g = 0; g < kGuardsPerTick; ++g) {
        guards.push_back(env.schedule(sim::SimTime::us(700 + 40 * g),
                                      [&fired] { ++fired; }));
      }
      if (++tick < kTicks) {
        env.schedule(sim::SimTime::ns(312'500), half_slot);
      }
    };
    env.schedule(sim::SimTime::zero(), half_slot);
    env.run_until(sim::SimTime::sec(1));
    benchmark::DoNotOptimize(fired);
    const auto ks = env.scheduler_stats();
    wheel_hit_ratio = static_cast<double>(ks.wheel_hits) /
                      static_cast<double>(ks.scheduled);
  }
  state.counters["events_per_s"] = benchmark::Counter(
      static_cast<double>(kOpsPerIter) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["wheel_hit_ratio"] = wheel_hit_ratio;
}
BENCHMARK(BM_SchedulerChurn)->Unit(benchmark::kMillisecond);

/// The common case the wheel is built for: the same churn storm with
/// every timer on the Bluetooth native grid -- guards at whole-slot
/// multiples of the 312.5 us half-slot tick, standing timeouts at
/// superframe scale inside the 2.56 s wheel horizon -- so every kernel
/// operation is an O(1) ring-bucket insert/unlink instead of a heap
/// sift. wheel_hit_ratio reports the measured (not assumed) fraction of
/// schedules that took the O(1) path: it must be 1.0 here.
void BM_SchedulerChurnGridAligned(benchmark::State& state) {
  constexpr int kTicks = 1536;       // 480 ms of 312.5 us half-slots
  constexpr int kGuardsPerTick = 8;  // armed 2..9 half-slots out
  constexpr int kStandingTimers = 64;
  constexpr std::uint64_t kOpsPerIter =
      (kStandingTimers + kTicks * (kGuardsPerTick + 1)) +  // schedules
      (kTicks - 1) * kGuardsPerTick +                      // cancels
      (kTicks + kGuardsPerTick);                           // fires
  double wheel_hit_ratio = 0.0;
  for (auto _ : state) {
    sim::Environment env;
    std::uint64_t fired = 0;
    std::vector<sim::TimerId> guards;
    guards.reserve(kGuardsPerTick);
    // Standing timeouts on the even-slot grid (inquiry/page timeout
    // scale): level-2 wheel territory, 1.25..2.5 s out.
    for (int i = 0; i < kStandingTimers; ++i) {
      env.schedule(baseband::kSlotDuration * (2000 + 32 * i), [] {});
    }
    int tick = 0;
    std::function<void()> half_slot = [&] {
      for (sim::TimerId id : guards) env.cancel(id);
      guards.clear();
      for (int g = 0; g < kGuardsPerTick; ++g) {
        guards.push_back(env.schedule(baseband::kTickPeriod * (2 + g),
                                      [&fired] { ++fired; }));
      }
      if (++tick < kTicks) {
        env.schedule(baseband::kTickPeriod, half_slot);
      }
    };
    env.schedule(sim::SimTime::zero(), half_slot);
    env.run_until(sim::SimTime::sec(1));
    benchmark::DoNotOptimize(fired);
    const auto ks = env.scheduler_stats();
    wheel_hit_ratio = static_cast<double>(ks.wheel_hits) /
                      static_cast<double>(ks.scheduled);
  }
  state.counters["events_per_s"] = benchmark::Counter(
      static_cast<double>(kOpsPerIter) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["wheel_hit_ratio"] = wheel_hit_ratio;
}
BENCHMARK(BM_SchedulerChurnGridAligned)->Unit(benchmark::kMillisecond);

/// Checkpoint primitives on the image the Fig. 8 fork caches: the
/// four-device creation system at its settled t = 0 boundary. Reports
/// the serialisation rate and the image size -- the per-replication
/// cost --checkpoint-warmup pays instead of re-running the warm-up.
void BM_SnapshotSave(benchmark::State& state) {
  const auto sys = core::make_creation_system(
      /*ber=*/0.01, /*timeout_slots=*/2048, /*seed=*/7);
  std::vector<std::uint8_t> bytes;
  for (auto _ : state) {
    bytes = sys->save_snapshot();
    benchmark::DoNotOptimize(bytes.data());
  }
  state.counters["snapshot_bytes"] = static_cast<double>(bytes.size());
  state.counters["snapshots_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SnapshotSave)->Unit(benchmark::kMicrosecond);

/// restore_snapshot() into an already-constructed scaffold -- the
/// steady-state fork cost once the per-point image exists (the scaffold
/// construction itself is measured by the sweep wall-clock comparison).
void BM_SnapshotRestore(benchmark::State& state) {
  const auto warm = core::make_creation_system(
      /*ber=*/0.01, /*timeout_slots=*/2048, /*seed=*/7);
  const std::vector<std::uint8_t> bytes = warm->save_snapshot();
  const auto scaffold = core::make_creation_system(
      /*ber=*/0.01, /*timeout_slots=*/2048, /*seed=*/7);
  for (auto _ : state) {
    scaffold->restore_snapshot(bytes);
    benchmark::DoNotOptimize(scaffold.get());
  }
  state.counters["snapshot_bytes"] = static_cast<double>(bytes.size());
  state.counters["restores_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SnapshotRestore)->Unit(benchmark::kMicrosecond);

/// Signal-driven process chain (delta-cycle throughput).
void BM_ClockedProcess(benchmark::State& state) {
  for (auto _ : state) {
    sim::Environment env;
    sim::Clock clk(env, "clk", 1_us);
    std::uint64_t ticks = 0;
    auto& p = env.register_process("count", [&] { ++ticks; });
    clk.posedge_event().add_sensitive(p);
    env.run_until(sim::SimTime::ms(100));
    benchmark::DoNotOptimize(ticks);
  }
  state.counters["posedges_per_s"] = benchmark::Counter(
      1e5 * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ClockedProcess)->Unit(benchmark::kMillisecond);

/// Build type of the btsc library this bench links: "release" only when
/// compiled with NDEBUG from a Release tree. Anything else taints the
/// numbers and run_benches refuses to record them as the baseline.
const char* btsc_build_type() {
#ifndef NDEBUG
  return "debug";
#else
#ifdef BTSC_CMAKE_BUILD_TYPE_RELEASE
  return "release";
#else
  return "optimized-non-release";  // e.g. RelWithDebInfo
#endif
#endif
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::AddCustomContext("btsc_build_type", btsc_build_type());
  benchmark::AddCustomContext(
      "burst_transport",
      btsc::phy::NoisyChannel::burst_transport_default() ? "on" : "off");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
