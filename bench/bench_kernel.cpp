// Simulator performance (google-benchmark).
//
// The paper reports its SystemC model simulating the 0.48 s four-device
// creation scenario in 10'47" of CPU time -- 747 Bluetooth clock cycles
// (1 MHz symbol clock) per wall-clock second. This bench measures the
// same figure for this kernel, plus the raw scheduler throughput.
#include <benchmark/benchmark.h>

#include "core/system.hpp"
#include "sim/clock.hpp"
#include "sim/environment.hpp"

namespace {

using namespace btsc;
using namespace btsc::sim::literals;

/// The paper's scenario: 4 devices, 0.48 s of simulated time during
/// piconet creation. Reports simulated 1 MHz clock cycles per second.
void BM_PaperScenario480ms(benchmark::State& state) {
  for (auto _ : state) {
    core::SystemConfig sc;
    sc.num_slaves = 3;
    sc.seed = 7;
    sc.lc.inquiry_timeout_slots = 65000;
    core::BluetoothSystem sys(sc);
    // Start the creation (inquiry + scans) and run 0.48 s of sim time.
    for (int i = 0; i < 3; ++i) sys.slave(i).lc().enable_inquiry_scan();
    sys.master().lc().enable_inquiry();
    sys.run(480_ms);
    benchmark::DoNotOptimize(sys.env().process_activations());
  }
  // 0.48 s at 1 MHz = 480000 simulated clock cycles per iteration.
  state.counters["sim_clock_cycles_per_s"] = benchmark::Counter(
      480e3 * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PaperScenario480ms)->Unit(benchmark::kMillisecond);

/// Raw kernel: one self-rescheduling timer (event-queue throughput).
void BM_TimerChain(benchmark::State& state) {
  for (auto _ : state) {
    sim::Environment env;
    std::uint64_t count = 0;
    std::function<void()> tick = [&] {
      if (++count < 100000) env.schedule(1_us, tick);
    };
    env.schedule(1_us, tick);
    env.run_until(sim::SimTime::sec(10));
    benchmark::DoNotOptimize(count);
  }
  state.counters["events_per_s"] = benchmark::Counter(
      1e5 * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TimerChain)->Unit(benchmark::kMillisecond);

/// Signal-driven process chain (delta-cycle throughput).
void BM_ClockedProcess(benchmark::State& state) {
  for (auto _ : state) {
    sim::Environment env;
    sim::Clock clk(env, "clk", 1_us);
    std::uint64_t ticks = 0;
    auto& p = env.register_process("count", [&] { ++ticks; });
    clk.posedge_event().add_sensitive(p);
    env.run_until(sim::SimTime::ms(100));
    benchmark::DoNotOptimize(ticks);
  }
  state.counters["posedges_per_s"] = benchmark::Counter(
      1e5 * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ClockedProcess)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
