// Receiver: assembles packets from the sampled channel bit stream.
//
// The radio delivers one Logic4 sample per microsecond while the RX chain
// is enabled; this module runs the sliding sync-word correlator and, once
// synchronised, peels off trailer, FEC-1/3 header (HEC checked) and the
// type-dependent payload (FEC-2/3 decoded block by block, de-whitened,
// CRC checked). Undefined samples are tolerated: 'Z' (no carrier) reads
// as 0 and 'X' (collision) as a random bit, modelling the garbled output
// of a real demodulator during overlap.
//
// Results are pushed to a handler; a separate header hook lets the link
// controller abort payload reception early when a packet is addressed to
// a different slave (the paper's Fig. 5 shows exactly this RX gating).
//
// Burst transport: the receiver also implements phy::BurstRxSink. The
// decode state machine is factored into a small copyable `Machine` whose
// step() reports, instead of performing, every externally visible effect
// (handler/hook invocation, RNG draw). quiet_prefix() dry-runs a scratch
// copy of the machine to locate the next effect, consume_quiet() then
// advances the real machine in bulk -- whole 64-bit words through the
// correlator while searching -- and on_sample()/on_bit() executes effect
// samples through the classic path at exactly their own instants.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "baseband/access_code.hpp"
#include "baseband/packet.hpp"
#include "baseband/whitening.hpp"
#include "phy/logic4.hpp"
#include "phy/radio.hpp"
#include "sim/bitvector.hpp"
#include "sim/environment.hpp"
#include "sim/snapshot.hpp"
#include "sim/time.hpp"
#include "sim/unique_function.hpp"

namespace btsc::baseband {

class Receiver : public phy::BurstRxSink, public sim::Snapshotable {
 public:
  /// What the current state machine phase expects on the air.
  enum class Expect : std::uint8_t {
    kIdOnly,  // bare access code (inquiry/page ID packets)
    kFull,    // access code + header (+ payload)
  };

  struct Result {
    bool is_id = false;        // bare ID packet detected
    bool header_ok = false;    // HEC passed (always false for ID)
    bool payload_ok = false;   // payload CRC passed (or no payload)
    bool fec_failed = false;   // uncorrectable FEC 2/3 block
    PacketHeader header;
    /// Payload body after FEC decode and CRC strip: payload header +
    /// user bytes for ACL packets, the 18 information bytes for FHS.
    std::vector<std::uint8_t> payload_body;
    /// Time the first bit of the packet hit the air (derived from the
    /// sync completion instant).
    sim::SimTime packet_start;
  };

  using Handler = std::function<void(const Result&)>;
  /// Called right after a valid header; return false to abort payload
  /// reception (packet addressed elsewhere).
  using HeaderHook = std::function<bool(const PacketHeader&)>;

  Receiver(sim::Environment& env, std::string name);

  /// Arms the receiver for a sync word / link context. Resets assembly.
  void configure(const sim::BitVector& sync_word, std::uint8_t check_init,
                 std::optional<std::uint8_t> whiten_init, Expect expect);

  void set_handler(Handler h) { handler_ = std::move(h); }
  void set_header_hook(HeaderHook h) { header_hook_ = std::move(h); }

  /// Burst-transport wiring (done by Device): `catch_up` materialises
  /// the radio's pending lazy samples (invoked before carrier_samples()
  /// reads), `state_changed` tells the radio to re-derive its
  /// side-effect barrier after an out-of-band reconfiguration.
  void set_transport_hooks(sim::UniqueFunction catch_up,
                           sim::UniqueFunction state_changed) {
    catch_up_ = std::move(catch_up);
    state_changed_ = std::move(state_changed);
  }

  /// Feed one channel sample (the radio's per-sample entry).
  void on_bit(phy::Logic4 sample);

  // ---- phy::BurstRxSink ----
  std::size_t quiet_prefix(const sim::BitVector* bits, std::size_t first,
                           std::size_t count) const override;
  void consume_quiet(const sim::BitVector* bits, std::size_t first,
                     std::size_t count) override;
  void on_sample(phy::Logic4 v) override { on_bit(v); }

  /// Abandons any in-progress assembly and restarts the sync search.
  void reset();

  /// True once a sync word has been found and the packet is assembling.
  /// Lazy-safe: search->assembly transitions only happen inside effect
  /// samples, which always execute at their own instants.
  bool assembling() const { return machine_.phase != Phase::kSearch; }

  /// Number of samples carrying a real signal (not 'Z') since the
  /// receiver was configured. The link controller compares snapshots of
  /// this counter for carrier sensing: an idle-slot listen window closes
  /// after ~32.5 us when nothing but 'Z' was heard (the paper's 2.6%
  /// active-mode RX duty). Materialises pending lazy samples first.
  std::uint64_t carrier_samples() const {
    if (catch_up_) catch_up_();
    return carrier_samples_;
  }

  // ---- checkpointing ----

  /// Saves/restores the configuration, the full decode machine
  /// (correlator/whitener registers, collected and decoded bits) and the
  /// counters. The receiver owns no timers, so no rearm handler; the
  /// handler/hook wiring is structural and re-created by construction.
  void save_state(sim::SnapshotWriter& w) const override;
  void restore_state(sim::SnapshotReader& r) override;

  // ---- statistics ----
  std::uint64_t syncs_detected() const { return syncs_; }
  std::uint64_t hec_failures() const { return hec_failures_; }
  std::uint64_t crc_failures() const { return crc_failures_; }
  std::uint64_t fec_failures() const { return machine_.fec_failures; }

 private:
  enum class Phase : std::uint8_t { kSearch, kTrailer, kHeader, kPayload };

  /// What executing one more sample would make externally visible.
  enum class Effect : std::uint8_t {
    kNone,         // pure state update
    kSync,         // correlator fired: handler (ID) or assembly start
    kHeaderDone,   // 54 header bits in: HEC check + hook + result path
    kPayloadBad,   // unframeable payload: failure result delivery
    kPayloadDone,  // payload complete: CRC check + result delivery
  };

  /// Copyable decode state. step() performs every *quiet* state change
  /// and reports -- without performing -- the first effect, so a probe
  /// can dry-run a scratch copy bit by bit.
  struct Machine {
    Phase phase = Phase::kSearch;
    Correlator correlator;
    sim::BitVector collected;
    PacketHeader header;
    bool have_whitener = false;
    Whitener whitener{0};
    std::size_t payload_total_coded_bits = 0;  // 0 = unknown yet
    std::size_t payload_body_bytes = 0;
    sim::BitVector payload_data_bits;  // decoded (FEC removed) bits
    bool payload_fec_failed = false;
    /// Cumulative uncorrectable-block count (lives here so quiet block
    /// decodes can bump it and probes on copies stay side-effect-free).
    std::uint64_t fec_failures = 0;
  };

  static Effect step(Machine& m, bool bit);
  static Effect payload_step(Machine& m);
  /// Runs the effectful part of a sample whose step() reported `e`.
  void execute(Effect e);

  void on_sync_found();
  void finish_header();
  void deliver_payload_bad();
  void on_payload_complete();
  void reset_machine();
  void deliver(const Result& r);

  sim::Environment& env_;
  std::string name_;

  // configuration
  bool configured_ = false;
  std::uint8_t check_init_ = kDefaultCheckInit;
  std::optional<std::uint8_t> whiten_init_;
  Expect expect_ = Expect::kIdOnly;

  /// Clears and returns the reusable delivery record (its payload_body
  /// keeps its capacity, so steady-state packet delivery performs no
  /// heap allocation). Handlers must not retain references past the
  /// callback.
  Result& fresh_result();

  Machine machine_;
  mutable Machine scratch_;  // probe dry-run state (capacity reused)
  Result result_;            // reused delivery record
  sim::SimTime sync_done_time_;

  Handler handler_;
  HeaderHook header_hook_;
  mutable sim::UniqueFunction catch_up_;
  sim::UniqueFunction state_changed_;

  std::uint64_t carrier_samples_ = 0;
  std::uint64_t syncs_ = 0;
  std::uint64_t hec_failures_ = 0;
  std::uint64_t crc_failures_ = 0;
};

}  // namespace btsc::baseband
