// Receiver: assembles packets from the sampled channel bit stream.
//
// The radio delivers one Logic4 sample per microsecond while the RX chain
// is enabled; this module runs the sliding sync-word correlator and, once
// synchronised, peels off trailer, FEC-1/3 header (HEC checked) and the
// type-dependent payload (FEC-2/3 decoded block by block, de-whitened,
// CRC checked). Undefined samples are tolerated: 'Z' (no carrier) reads
// as 0 and 'X' (collision) as a random bit, modelling the garbled output
// of a real demodulator during overlap.
//
// Results are pushed to a handler; a separate header hook lets the link
// controller abort payload reception early when a packet is addressed to
// a different slave (the paper's Fig. 5 shows exactly this RX gating).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "baseband/access_code.hpp"
#include "baseband/packet.hpp"
#include "baseband/whitening.hpp"
#include "phy/logic4.hpp"
#include "sim/bitvector.hpp"
#include "sim/environment.hpp"
#include "sim/time.hpp"

namespace btsc::baseband {

class Receiver {
 public:
  /// What the current state machine phase expects on the air.
  enum class Expect : std::uint8_t {
    kIdOnly,  // bare access code (inquiry/page ID packets)
    kFull,    // access code + header (+ payload)
  };

  struct Result {
    bool is_id = false;        // bare ID packet detected
    bool header_ok = false;    // HEC passed (always false for ID)
    bool payload_ok = false;   // payload CRC passed (or no payload)
    bool fec_failed = false;   // uncorrectable FEC 2/3 block
    PacketHeader header;
    /// Payload body after FEC decode and CRC strip: payload header +
    /// user bytes for ACL packets, the 18 information bytes for FHS.
    std::vector<std::uint8_t> payload_body;
    /// Time the first bit of the packet hit the air (derived from the
    /// sync completion instant).
    sim::SimTime packet_start;
  };

  using Handler = std::function<void(const Result&)>;
  /// Called right after a valid header; return false to abort payload
  /// reception (packet addressed elsewhere).
  using HeaderHook = std::function<bool(const PacketHeader&)>;

  Receiver(sim::Environment& env, std::string name);

  /// Arms the receiver for a sync word / link context. Resets assembly.
  void configure(const sim::BitVector& sync_word, std::uint8_t check_init,
                 std::optional<std::uint8_t> whiten_init, Expect expect);

  void set_handler(Handler h) { handler_ = std::move(h); }
  void set_header_hook(HeaderHook h) { header_hook_ = std::move(h); }

  /// Feed one channel sample (wire this to Radio::set_rx_sink).
  void on_bit(phy::Logic4 sample);

  /// Abandons any in-progress assembly and restarts the sync search.
  void reset();

  /// True once a sync word has been found and the packet is assembling.
  bool assembling() const { return phase_ != Phase::kSearch; }

  /// Number of samples carrying a real signal (not 'Z') since the
  /// receiver was configured. The link controller compares snapshots of
  /// this counter for carrier sensing: an idle-slot listen window closes
  /// after ~32.5 us when nothing but 'Z' was heard (the paper's 2.6%
  /// active-mode RX duty).
  std::uint64_t carrier_samples() const { return carrier_samples_; }

  // ---- statistics ----
  std::uint64_t syncs_detected() const { return syncs_; }
  std::uint64_t hec_failures() const { return hec_failures_; }
  std::uint64_t crc_failures() const { return crc_failures_; }
  std::uint64_t fec_failures() const { return fec_failures_; }

 private:
  enum class Phase : std::uint8_t { kSearch, kTrailer, kHeader, kPayload };

  void on_sync_found();
  void finish_header();
  void start_payload();
  void on_payload_complete();
  void deliver(const Result& r);

  sim::Environment& env_;
  std::string name_;

  // configuration
  sim::BitVector sync_word_;
  std::optional<Correlator> correlator_;
  std::uint8_t check_init_ = kDefaultCheckInit;
  std::optional<std::uint8_t> whiten_init_;
  Expect expect_ = Expect::kIdOnly;

  // assembly state
  Phase phase_ = Phase::kSearch;
  sim::BitVector collected_;
  sim::SimTime sync_done_time_;
  PacketHeader header_;
  // Whitener state continues from the header into the payload.
  std::optional<Whitener> whitener_;
  std::size_t payload_total_coded_bits_ = 0;  // 0 = unknown yet
  std::size_t payload_body_bytes_ = 0;
  sim::BitVector payload_data_bits_;  // decoded (FEC removed) payload bits
  bool payload_fec_failed_ = false;

  Handler handler_;
  HeaderHook header_hook_;

  std::uint64_t carrier_samples_ = 0;
  std::uint64_t syncs_ = 0;
  std::uint64_t hec_failures_ = 0;
  std::uint64_t crc_failures_ = 0;
  std::uint64_t fec_failures_ = 0;
};

}  // namespace btsc::baseband
