#include "baseband/fec.hpp"

#include <array>
#include <bit>
#include <stdexcept>

#include "baseband/bit_reverse.hpp"

namespace btsc::baseband {
namespace {

// g(D) = D^5 + D^4 + D^2 + 1 -> 110101b.
constexpr std::uint8_t kGenPoly = 0b110101;
constexpr unsigned kParityBits = 5;

/// Reference systematic encoder (polynomial division); used to build the
/// parity and syndrome tables below and exposed via fec23_encode_block.
constexpr std::uint16_t encode_block_ref(std::uint16_t data10) {
  data10 &= 0x3FF;
  std::uint32_t reg = static_cast<std::uint32_t>(data10) << kParityBits;
  for (int bit = kFec23BlockBits - 1; bit >= static_cast<int>(kParityBits);
       --bit) {
    if ((reg >> bit) & 1u) {
      reg ^= static_cast<std::uint32_t>(kGenPoly) << (bit - kParityBits);
    }
  }
  const auto parity = static_cast<std::uint16_t>(reg & 0x1F);
  return static_cast<std::uint16_t>((data10 << kParityBits) | parity);
}

/// Reference syndrome of a 15-bit block in polynomial order (data
/// MSB..LSB above parity); 0 == no detected error.
constexpr std::uint8_t syndrome_ref(std::uint16_t block15) {
  std::uint32_t reg = block15;
  for (int bit = kFec23BlockBits - 1; bit >= static_cast<int>(kParityBits);
       --bit) {
    if ((reg >> bit) & 1u) {
      reg ^= static_cast<std::uint32_t>(kGenPoly) << (bit - kParityBits);
    }
  }
  return static_cast<std::uint8_t>(reg & 0x1F);
}

/// Parity masks of the linear syndrome map: syndrome bit k of a block is
/// the XOR (popcount parity) of the block bits selected by kSynMask[k].
/// Built from the reference division, used by the word-path decoder.
constexpr std::array<std::uint16_t, kParityBits> make_syndrome_masks() {
  std::array<std::uint16_t, kParityBits> m{};
  for (unsigned pos = 0; pos < kFec23BlockBits; ++pos) {
    const std::uint8_t s = syndrome_ref(static_cast<std::uint16_t>(1u << pos));
    for (unsigned k = 0; k < kParityBits; ++k) {
      if ((s >> k) & 1u) m[k] |= static_cast<std::uint16_t>(1u << pos);
    }
  }
  return m;
}

/// syndrome -> bit index (0..14), or -1 for "not a single-bit pattern".
constexpr std::array<int, 32> make_syndrome_table() {
  std::array<int, 32> t{};
  for (auto& e : t) e = -1;
  for (int pos = 0; pos < static_cast<int>(kFec23BlockBits); ++pos) {
    t[syndrome_ref(static_cast<std::uint16_t>(1u << pos))] = pos;
  }
  return t;
}

/// Five parity bits of every 10-bit data value, in polynomial order.
constexpr std::array<std::uint8_t, 1024> make_parity_table() {
  std::array<std::uint8_t, 1024> t{};
  for (unsigned d = 0; d < 1024; ++d) {
    t[d] = static_cast<std::uint8_t>(
        encode_block_ref(static_cast<std::uint16_t>(d)) & 0x1F);
  }
  return t;
}

/// 5-bit reversal: air order transmits parity MSB first.
constexpr std::array<std::uint8_t, 32> make_rev5() {
  std::array<std::uint8_t, 32> t{};
  for (unsigned v = 0; v < 32; ++v) {
    t[v] = reverse_bits(static_cast<std::uint8_t>(v), kParityBits);
  }
  return t;
}

constexpr std::array<std::uint16_t, kParityBits> kSynMask =
    make_syndrome_masks();
constexpr std::array<int, 32> kSyndromeTable = make_syndrome_table();
constexpr std::array<std::uint8_t, 1024> kParityTable = make_parity_table();
constexpr std::array<std::uint8_t, 32> kRev5 = make_rev5();

/// Word-path syndrome: five masked popcount parities instead of a
/// 10-step polynomial division.
inline std::uint8_t syndrome_of(std::uint16_t block15) {
  std::uint8_t s = 0;
  for (unsigned k = 0; k < kParityBits; ++k) {
    s |= static_cast<std::uint8_t>(
        (std::popcount(static_cast<unsigned>(block15 & kSynMask[k])) & 1)
        << k);
  }
  return s;
}

}  // namespace

sim::BitVector fec13_encode(const sim::BitVector& data) {
  sim::BitVector out;
  out.reserve(3 * data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    out.append_uint(data[i] ? 0x7u : 0x0u, 3);
  }
  return out;
}

sim::BitVector fec13_decode(const sim::BitVector& coded) {
  if (coded.size() % 3 != 0) {
    throw std::invalid_argument("fec13_decode: size not a multiple of 3");
  }
  sim::BitVector out;
  out.reserve(coded.size() / 3);
  for (std::size_t i = 0; i < coded.size(); i += 3) {
    const auto triplet =
        static_cast<unsigned>(coded.extract_word(i, 3));
    out.push_back(std::popcount(triplet) >= 2);
  }
  return out;
}

std::uint16_t fec23_encode_block(std::uint16_t data10) {
  data10 &= 0x3FF;
  return static_cast<std::uint16_t>(
      (static_cast<std::uint32_t>(data10) << kParityBits) |
      kParityTable[data10]);
}

sim::BitVector fec23_encode(const sim::BitVector& data) {
  sim::BitVector out;
  out.reserve((data.size() + kFec23DataBits - 1) / kFec23DataBits *
              kFec23BlockBits);
  for (std::size_t pos = 0; pos < data.size(); pos += kFec23DataBits) {
    const unsigned have = static_cast<unsigned>(
        data.size() - pos < kFec23DataBits ? data.size() - pos
                                           : kFec23DataBits);
    // The last block is zero-padded; callers must know the true payload
    // length (it is carried in the payload header).
    const auto block =
        static_cast<std::uint16_t>(data.extract_word(pos, have));
    // Air order: the 10 information bits first (LSB first), then parity
    // MSB first.
    out.append_uint(block, kFec23DataBits);
    out.append_uint(kRev5[kParityTable[block]], kParityBits);
  }
  return out;
}

Fec23Block fec23_decode_block15(std::uint16_t air15) {
  // Reassemble the block in polynomial order (data above parity; the
  // parity flew MSB first).
  const auto data10 = static_cast<std::uint16_t>(air15 & 0x3FF);
  const std::uint8_t parity = kRev5[(air15 >> kFec23DataBits) & 0x1F];
  auto block = static_cast<std::uint16_t>((data10 << kParityBits) | parity);
  Fec23Block out;
  const std::uint8_t syn = syndrome_of(block);
  if (syn != 0) {
    const int pos_in_block = kSyndromeTable[syn];
    if (pos_in_block < 0) {
      out.failed = true;
    } else {
      block = static_cast<std::uint16_t>(
          block ^ static_cast<std::uint16_t>(1u << pos_in_block));
      out.corrected = true;
    }
  }
  out.data10 = static_cast<std::uint16_t>((block >> kParityBits) & 0x3FF);
  return out;
}

Fec23Result fec23_decode(const sim::BitVector& coded) {
  if (coded.size() % kFec23BlockBits != 0) {
    throw std::invalid_argument("fec23_decode: size not a multiple of 15");
  }
  Fec23Result result;
  result.data.reserve(coded.size() / kFec23BlockBits * kFec23DataBits);
  for (std::size_t pos = 0; pos < coded.size(); pos += kFec23BlockBits) {
    const auto air =
        static_cast<std::uint16_t>(coded.extract_word(pos, kFec23BlockBits));
    const Fec23Block b = fec23_decode_block15(air);
    result.failed = result.failed || b.failed;
    result.corrected_blocks += b.corrected ? 1 : 0;
    result.data.append_uint(b.data10, kFec23DataBits);
  }
  return result;
}

}  // namespace btsc::baseband
