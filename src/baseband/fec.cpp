#include "baseband/fec.hpp"

#include <array>
#include <stdexcept>

namespace btsc::baseband {
namespace {

// g(D) = D^5 + D^4 + D^2 + 1 -> 110101b.
constexpr std::uint8_t kGenPoly = 0b110101;
constexpr unsigned kParityBits = 5;

}  // namespace

sim::BitVector fec13_encode(const sim::BitVector& data) {
  sim::BitVector out;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const bool b = data[i];
    out.push_back(b);
    out.push_back(b);
    out.push_back(b);
  }
  return out;
}

sim::BitVector fec13_decode(const sim::BitVector& coded) {
  if (coded.size() % 3 != 0) {
    throw std::invalid_argument("fec13_decode: size not a multiple of 3");
  }
  sim::BitVector out;
  for (std::size_t i = 0; i < coded.size(); i += 3) {
    const int sum = coded[i] + coded[i + 1] + coded[i + 2];
    out.push_back(sum >= 2);
  }
  return out;
}

std::uint16_t fec23_encode_block(std::uint16_t data10) {
  data10 &= 0x3FF;
  // Systematic encoding: codeword = data(D)*D^5 + remainder.
  std::uint32_t reg = static_cast<std::uint32_t>(data10) << kParityBits;
  for (int bit = kFec23BlockBits - 1; bit >= static_cast<int>(kParityBits);
       --bit) {
    if ((reg >> bit) & 1u) {
      reg ^= static_cast<std::uint32_t>(kGenPoly) << (bit - kParityBits);
    }
  }
  const auto parity = static_cast<std::uint16_t>(reg & 0x1F);
  return static_cast<std::uint16_t>((data10 << kParityBits) | parity);
}

namespace {

/// Syndrome of a received 15-bit block (0 == no detected error).
std::uint8_t syndrome_of(std::uint16_t block15) {
  std::uint32_t reg = block15;
  for (int bit = kFec23BlockBits - 1; bit >= static_cast<int>(kParityBits);
       --bit) {
    if ((reg >> bit) & 1u) {
      reg ^= static_cast<std::uint32_t>(kGenPoly) << (bit - kParityBits);
    }
  }
  return static_cast<std::uint8_t>(reg & 0x1F);
}

/// syndrome -> bit index (0..14), or -1 for "not a single-bit pattern".
/// Built once from the code definition itself.
const std::array<int, 32>& syndrome_table() {
  static const std::array<int, 32> table = [] {
    std::array<int, 32> t{};
    t.fill(-1);
    for (int pos = 0; pos < static_cast<int>(kFec23BlockBits); ++pos) {
      const auto err = static_cast<std::uint16_t>(1u << pos);
      t[syndrome_of(err)] = pos;
    }
    return t;
  }();
  return table;
}

}  // namespace

sim::BitVector fec23_encode(const sim::BitVector& data) {
  sim::BitVector out;
  for (std::size_t pos = 0; pos < data.size(); pos += kFec23DataBits) {
    std::uint16_t block = 0;
    for (std::size_t i = 0; i < kFec23DataBits; ++i) {
      if (pos + i < data.size() && data[pos + i]) {
        block |= static_cast<std::uint16_t>(1u << i);
      }
    }
    // Air order: the 10 information bits first (LSB first), then parity.
    const std::uint16_t coded = fec23_encode_block(block);
    for (std::size_t i = 0; i < kFec23DataBits; ++i) {
      out.push_back((block >> i) & 1u);
    }
    for (unsigned i = 0; i < kParityBits; ++i) {
      out.push_back((coded >> (kParityBits - 1 - i)) & 1u);
    }
  }
  return out;
}

Fec23Result fec23_decode(const sim::BitVector& coded) {
  if (coded.size() % kFec23BlockBits != 0) {
    throw std::invalid_argument("fec23_decode: size not a multiple of 15");
  }
  Fec23Result result;
  for (std::size_t pos = 0; pos < coded.size(); pos += kFec23BlockBits) {
    // Reassemble the block in polynomial order (data MSB..LSB, parity).
    std::uint16_t data10 = 0;
    for (std::size_t i = 0; i < kFec23DataBits; ++i) {
      if (coded[pos + i]) data10 |= static_cast<std::uint16_t>(1u << i);
    }
    std::uint8_t parity = 0;
    for (unsigned i = 0; i < kParityBits; ++i) {
      if (coded[pos + kFec23DataBits + i]) {
        parity |= static_cast<std::uint8_t>(1u << (kParityBits - 1 - i));
      }
    }
    std::uint16_t block =
        static_cast<std::uint16_t>((data10 << kParityBits) | parity);
    const std::uint8_t syn = syndrome_of(block);
    if (syn != 0) {
      const int pos_in_block = syndrome_table()[syn];
      if (pos_in_block < 0) {
        result.failed = true;
      } else {
        block = static_cast<std::uint16_t>(
            block ^ static_cast<std::uint16_t>(1u << pos_in_block));
        ++result.corrected_blocks;
      }
    }
    const auto fixed_data =
        static_cast<std::uint16_t>((block >> kParityBits) & 0x3FF);
    for (std::size_t i = 0; i < kFec23DataBits; ++i) {
      result.data.push_back((fixed_data >> i) & 1u);
    }
  }
  return result;
}

}  // namespace btsc::baseband
