// Link Controller: the paper's "State Machine" module of the baseband.
//
// Implements the main state diagram of a Bluetooth device (the paper's
// Fig. 4): STANDBY, INQUIRY, INQUIRY SCAN, PAGE, PAGE SCAN, the response
// states and CONNECTION, plus the low-power sub-modes of a connected
// slave (active, sniff, hold, park). One LinkController per device; the
// Device class wires it to the clock, radio and receiver.
//
// Timing model
// ------------
// Pre-connection states run on the device's own CLKN half-slot ticks.
// A connected slave instead anchors a 625 us action timer to the master's
// slot grid, whose phase it learns from the page-response FHS packet
// arrival time (the FHS is transmitted at a master even-slot boundary,
// see DESIGN.md). Clocks are drift-free in this model, so the anchor
// stays valid for the life of the connection.
//
// Response-frequency convention
// -----------------------------
// Page/inquiry response packets hop on a deterministic map of the
// frequency that scored the hit: respmap(f, n) = (f + 32 + 7 n) mod 79.
// This replaces the spec's frozen-clock response sub-sequences with an
// equivalent deterministic schedule both sides can compute (documented
// substitution; preserves "response on a different frequency, stepping
// with every retry").
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "baseband/access_code.hpp"
#include "baseband/address.hpp"
#include "baseband/bt_clock.hpp"
#include "baseband/buffer.hpp"
#include "baseband/hop.hpp"
#include "baseband/packet.hpp"
#include "baseband/piconet.hpp"
#include "baseband/receiver.hpp"
#include "phy/radio.hpp"
#include "sim/module.hpp"
#include "sim/snapshot.hpp"

namespace btsc::baseband {

enum class LcState : std::uint8_t {
  kStandby,
  kInquiry,
  kInquiryScan,
  kInquiryResponse,  // transient: backoff / FHS transmission
  kPage,
  kPageScan,
  kMasterResponse,
  kSlaveResponse,
  kConnectionMaster,
  kConnectionSlave,
};

const char* to_string(LcState s);

struct LcConfig {
  /// Inquiry timeout (paper: 1.28 s = 2048 slots for both phases).
  std::uint32_t inquiry_timeout_slots = 2048;
  std::uint32_t page_timeout_slots = 2048;
  /// Carrier-sense window: an idle listen closes after this time when
  /// only 'Z' was sampled. 32.5 us / 1250 us = the paper's 2.6% slave
  /// activity baseline.
  sim::SimTime carrier_sense_window = sim::SimTime::ns(32'500);
  /// Random backoff ceiling between the two inquiry IDs (spec: 0..1023).
  std::uint32_t inquiry_backoff_max_slots = 1023;
  /// Inquiry scan window (slots) per scan interval; 0 = scan
  /// continuously. The spec default (11.25 ms window every 1.28 s) is
  /// what makes the paper's noiseless inquiry take ~1556 slots on
  /// average and fail a quarter of the time against the 1.28 s timeout.
  std::uint32_t inquiry_scan_window_slots = 18;
  std::uint32_t inquiry_scan_interval_slots = 2048;
  /// Interlaced scan (spec 1.2 feature): immediately after the normal
  /// window, open a second one on the complementary train frequency
  /// (X + 16), so discovery does not depend on which train the inquirer
  /// happens to sweep.
  bool interlaced_inquiry_scan = true;
  /// Poll interval guarantee for active slaves.
  std::uint32_t t_poll_slots = kDefaultTPollSlots;
  /// Train switch period: each page/inquiry train is repeated this many
  /// times (spec Npage/Ninquiry = 128/256; one train pass is 10 ms).
  std::uint32_t train_repeats = 256;
  /// FHS transmissions in the page response dialogue before giving up.
  /// The default of 1 (single shot) reproduces the paper's steep page
  /// failure curve: the FHS payload (16 FEC blocks + CRC) is the most
  /// noise-sensitive packet of the handshake.
  int max_response_retries = 1;
  /// When true (paper behaviour), a collapsed page response dialogue
  /// aborts the whole page attempt instead of resuming the ID train.
  bool abort_page_on_dialogue_failure = true;
  /// Whitening on connection-state packets.
  bool whitening = true;
  /// Preferred ACL packet type for user data.
  PacketType data_packet_type = PacketType::kDm1;
  /// Number of FHS responses to collect before inquiry completes.
  std::size_t inquiry_target_responses = 1;
  /// Beacon period for parked slaves (slots).
  std::uint32_t beacon_interval_slots = 64;
  /// Slots a held slave wakes early to reacquire the channel, modelling
  /// the clock uncertainty accumulated while the radio slept. Together
  /// with the master's next-slot resynchronisation poll this costs ~3
  /// slots of full listening per hold, placing the hold-vs-active
  /// crossover of Fig. 12 near the paper's ~120 slots.
  std::uint32_t hold_wake_early_slots = 1;
};

/// A device found during inquiry, with the clock estimate for paging.
struct DiscoveredDevice {
  BdAddr addr;
  /// Offset to add to our CLKN to approximate the device's CLKN.
  std::uint32_t clkn_offset = 0;
  sim::SimTime found_at;
};

/// Aggregate event/packet counters, exposed for experiments.
struct LcStats {
  std::uint64_t id_tx = 0;
  std::uint64_t id_rx = 0;
  std::uint64_t fhs_tx = 0;
  std::uint64_t fhs_rx = 0;
  std::uint64_t data_tx = 0;
  std::uint64_t data_rx_ok = 0;
  std::uint64_t poll_tx = 0;
  std::uint64_t null_tx = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t duplicates_dropped = 0;
  std::uint64_t backoffs = 0;
};

class LinkController final : public sim::Module,
                             public sim::Snapshotable,
                             public sim::RearmHandler {
 public:
  struct Callbacks {
    /// Inquiry finished (success = target responses collected in time).
    std::function<void(bool)> inquiry_complete;
    /// Page finished (success = slave answered the first POLL).
    std::function<void(bool)> page_complete;
    /// Slave side: joined a piconet with this LT_ADDR.
    std::function<void(std::uint8_t)> connected_as_slave;
    /// ACL payload delivered (from slave lt on master; lt = own on slave).
    std::function<void(std::uint8_t lt, std::uint8_t llid,
                       std::vector<std::uint8_t>)>
        acl_rx;
    /// A device answered our inquiry.
    std::function<void(const DiscoveredDevice&)> device_discovered;
  };

  LinkController(sim::Environment& env, std::string name, const BdAddr& addr,
                 NativeClock& clock, phy::Radio& radio, Receiver& receiver,
                 LcConfig config = {});
  ~LinkController() override;

  // ---- commands (the paper's Enable_* methods) ----
  void enable_inquiry();
  void enable_inquiry_scan();
  void enable_page(const BdAddr& target, std::uint32_t clkn_offset_estimate);
  void enable_page_scan();
  void enable_detach_reset();

  // ---- connection services ----
  /// Queues user/LMP data. Master: lt_addr selects the slave. Slave:
  /// lt_addr must be the own assigned address.
  bool send_acl(std::uint8_t lt_addr, std::uint8_t llid,
                std::vector<std::uint8_t> data);

  // ---- low-power mode primitives (LM drives both ends) ----
  // Master side: applies to one slave link.
  void master_set_sniff(std::uint8_t lt_addr, std::uint32_t interval_slots,
                        std::uint32_t offset_slots, int attempt_slots);
  void master_clear_sniff(std::uint8_t lt_addr);
  void master_set_hold(std::uint8_t lt_addr, std::uint32_t hold_slots);
  void master_set_park(std::uint8_t lt_addr, std::uint8_t pm_addr);
  void master_unpark(std::uint8_t pm_addr);
  // Slave side: applies to the own link.
  void slave_set_sniff(std::uint32_t interval_slots,
                       std::uint32_t offset_slots, int attempt_slots);
  void slave_clear_sniff();
  void slave_set_hold(std::uint32_t hold_slots);
  void slave_set_park(std::uint8_t pm_addr);
  void slave_unpark(std::uint8_t lt_addr);

  void set_callbacks(Callbacks cb) { callbacks_ = std::move(cb); }

  // ---- introspection ----
  LcState state() const { return state_; }
  bool is_master() const { return state_ == LcState::kConnectionMaster; }
  bool is_connected_slave() const {
    return state_ == LcState::kConnectionSlave;
  }
  std::uint8_t own_lt_addr() const { return own_lt_addr_; }
  LinkMode slave_mode() const { return my_mode_; }
  const BdAddr& address() const { return addr_; }
  Piconet& piconet() { return piconet_; }
  const Piconet& piconet() const { return piconet_; }
  const std::vector<DiscoveredDevice>& discovered() const {
    return discovered_;
  }
  const LcStats& stats() const { return stats_; }
  const LcConfig& config() const { return config_; }
  LcConfig& config() { return config_; }
  /// Master piconet clock (own CLKN for a master, estimate for a slave).
  std::uint32_t piconet_clock() const;

  // ---- checkpointing ----

  /// Saves/restores the full controller state: state machine, piconet
  /// membership with per-link ARQ/queues, slave context, inquiry/page
  /// dialogue context and the counters. Pending deferred actions are
  /// saved by the kernel as (kind, payload) descriptors and replayed
  /// through rearm_timer().
  void save_state(sim::SnapshotWriter& w) const override;
  void restore_state(sim::SnapshotReader& r) override;
  void rearm_timer(std::uint16_t kind, std::uint64_t payload,
                   sim::SimTime when) override;

 private:
  /// Timer descriptor kinds. Every deferred action of the controller is
  /// one of these; the payload carries its whole capture (beyond `this`),
  /// so a checkpoint can re-create the closure from the descriptor.
  enum Kind : std::uint16_t {
    kCloseRxIfIdle = 1,       // close RX unless a packet is assembling
    kSenseWindowClose = 2,    // payload: carrier_samples() at window open
    kBackoffEnd = 3,          // inquiry-scan backoff elapsed
    kSendInquiryFhs = 4,      // payload: frequency of the second ID hit
    kInquiryFhsDone = 5,      // FHS out; resume inquiry scanning
    kMasterFhsWindow = 6,     // listen for the slave's FHS acknowledgement
    kSlaveIdReply = 7,        // answer a page ID train hit
    kSlaveFhsListen = 8,      // open the continuous FHS listen window
    kSlaveDialogueTimeout = 9,// abort a silent page-response dialogue
    kSlaveAckId = 10,         // acknowledge the master's FHS
    kSlaveEnterConnection = 11,
    kMasterRxWindow = 12,     // payload: CLK of the response slot
    kSlaveSlot = 13,          // connected-slave slot action (master grid)
    kSlaveRespond = 14,       // payload: CLK of the response slot
  };
  // ---- per-tick dispatch (own CLKN grid) ----
  void on_tick();
  void inquiry_tick();
  void inquiry_scan_tick();
  void page_tick();
  void page_scan_tick();
  void master_response_tick();
  void master_tick();

  // ---- connection: master ----
  void master_transmit_to(SlaveLink& link, std::uint32_t clk);
  void master_send_beacon(std::uint32_t clk);
  SlaveLink* master_pick_target(std::uint32_t clk);
  void master_on_packet(const Receiver::Result& r);

  // ---- connection: slave (master-grid timers) ----
  void slave_slot_action();
  void schedule_slave_slot(sim::SimTime at);
  void slave_on_packet(const Receiver::Result& r);
  void slave_respond(std::uint32_t master_clk_even);

  // ---- page/inquiry response dialogues ----
  void inquiry_on_result(const Receiver::Result& r);
  void inquiry_scan_on_result(const Receiver::Result& r);
  void page_on_result(const Receiver::Result& r);
  void page_scan_on_result(const Receiver::Result& r);
  void send_inquiry_fhs(sim::SimTime id_start, int freq);
  void master_send_page_fhs();
  void slave_ack_page_fhs(const Receiver::Result& r);

  // ---- shared helpers ----
  void enter_state(LcState s);
  void arm_receiver(std::uint32_t lap, std::uint8_t check_init,
                    std::optional<std::uint8_t> whiten,
                    Receiver::Expect expect);
  /// Opens an RX window with carrier-sense auto-close after
  /// `sense_window`; keeps listening while a packet is assembling.
  void open_rx_window(int freq, sim::SimTime sense_window);
  void close_rx_if_idle();
  void transmit_id(std::uint32_t lap, int freq);
  void transmit_packet(const PacketHeader& header,
                       const std::vector<std::uint8_t>& body,
                       std::uint32_t lap, std::uint8_t check_init,
                       std::optional<std::uint8_t> whiten, int freq);
  std::optional<std::uint8_t> connection_whiten(std::uint32_t clk) const;
  int connection_freq(std::uint32_t clk) const;
  static int respmap(int freq, int n);
  /// Drops every pending deferred action of this controller (true kernel
  /// cancellation via the owner tag) and shuts the receiver; called on
  /// every enable_* command so a superseded activity leaves nothing
  /// behind in the timed queue.
  void cancel_timers();
  /// Schedules a one-shot action owned by this controller, so the next
  /// cancel_timers() removes it if it has not fired yet. The action is
  /// built from its (kind, payload) descriptor by make_action(), the
  /// same factory rearm_timer() uses after a restore, so deferring stays
  /// allocation-free AND every pending action is checkpointable.
  sim::TimerId defer(sim::SimTime delay, Kind kind,
                     std::uint64_t payload = 0);
  /// The closure for one descriptor (capture = this + payload).
  sim::UniqueFunction make_action(Kind kind, std::uint64_t payload);
  std::uint32_t slots_in_state() const { return ticks_in_state_ / 2; }

  // ---- identity & wiring ----
  BdAddr addr_;
  NativeClock& clock_;
  phy::Radio& radio_;
  Receiver& receiver_;
  LcConfig config_;
  Callbacks callbacks_;

  LcState state_ = LcState::kStandby;
  std::uint32_t ticks_in_state_ = 0;

  // ---- master context ----
  Piconet piconet_;
  BdAddr master_addr_;  // for slave role (== addr_ for a master)
  /// LT_ADDR of a slave we are paging / just admitted and still expect
  /// the first POLL response from (page success criterion).
  std::optional<std::uint8_t> pending_first_poll_lt_;
  std::optional<std::uint8_t> awaiting_response_lt_;
  /// Broadcast (LT_ADDR 0) traffic, delivered at park beacons.
  PacketBuffer broadcast_queue_;

  // ---- slave context ----
  std::uint8_t own_lt_addr_ = 0;
  LinkMode my_mode_ = LinkMode::kActive;
  std::uint32_t my_sniff_interval_ = 0;
  std::uint32_t my_sniff_offset_ = 0;
  int my_sniff_attempt_ = 1;
  std::uint32_t my_hold_until_clk_ = 0;
  bool resyncing_ = false;
  std::uint8_t my_pm_addr_ = 0;
  /// Master slot-grid anchor (learned from the page FHS arrival).
  sim::SimTime grid_anchor_ = sim::SimTime::zero();
  std::uint32_t clk_at_anchor_ = 0;
  // Slave-side ARQ / queue.
  PacketBuffer my_tx_queue_;
  bool my_seqn_out_ = false;
  bool my_arqn_out_ = false;
  std::optional<bool> my_last_seqn_in_;
  std::optional<OutboundMessage> my_in_flight_;
  /// Even-slot clock of the packet we must answer in the next odd slot.
  std::optional<std::uint32_t> respond_at_clk_;

  bool first_response_sent_ = false;

  // ---- inquiry context ----
  std::vector<DiscoveredDevice> discovered_;
  int last_tx_freq_[2] = {-1, -1};  // per half slot of the last TX slot
  int window_src_freq_ = -1;        // TX freq a response window belongs to
  // Scan side.
  bool backoff_armed_ = false;   // waiting for the second ID
  bool in_backoff_ = false;
  int scan_freq_ = -1;
  /// Frequency of the first inquiry ID hit; the post-backoff listen
  /// reuses it (the inquirer keeps sweeping the same train).
  int inquiry_first_hit_freq_ = -1;

  // ---- page context ----
  BdAddr page_target_;
  std::uint32_t page_clkn_offset_ = 0;
  int page_hit_freq_ = -1;
  int response_n_ = 0;
  int response_retries_ = 0;
  std::uint32_t fhs_clk_at_tx_ = 0;

  LcStats stats_;
};

}  // namespace btsc::baseband
