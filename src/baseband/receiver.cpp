#include "baseband/receiver.hpp"

#include "baseband/crc.hpp"
#include "baseband/fec.hpp"
#include "baseband/hec.hpp"
#include "baseband/whitening.hpp"

namespace btsc::baseband {
namespace {

/// The last sync-word bit is air bit 67 for both ID packets and full
/// access codes; it is sampled a quarter bit into its period, 67.25 us
/// after the packet started (exact for even-half-slot transmissions,
/// +0.5 us for odd-half-slot ones -- well inside all window margins).
constexpr sim::SimTime kSyncEndOffset = sim::SimTime::ns(67'250);

}  // namespace

Receiver::Receiver(sim::Environment& env, std::string name)
    : env_(env), name_(std::move(name)) {}

void Receiver::configure(const sim::BitVector& sync_word,
                         std::uint8_t check_init,
                         std::optional<std::uint8_t> whiten_init,
                         Expect expect) {
  sync_word_ = sync_word;
  correlator_.emplace(sync_word_);
  check_init_ = check_init;
  whiten_init_ = whiten_init;
  expect_ = expect;
  reset();
}

void Receiver::reset() {
  phase_ = Phase::kSearch;
  if (correlator_) correlator_->reset();
  collected_ = sim::BitVector();
  payload_data_bits_ = sim::BitVector();
  payload_total_coded_bits_ = 0;
  payload_body_bytes_ = 0;
  payload_fec_failed_ = false;
}

void Receiver::on_bit(phy::Logic4 sample) {
  if (!correlator_) return;  // not configured yet
  if (sample != phy::Logic4::kZ) ++carrier_samples_;
  bool bit;
  switch (sample) {
    case phy::Logic4::kZero:
      bit = false;
      break;
    case phy::Logic4::kOne:
      bit = true;
      break;
    case phy::Logic4::kZ:
      bit = false;  // no carrier: the demodulator slices noise floor
      break;
    default:  // collision: garbled symbol
      bit = env_.rng().bernoulli(0.5);
      break;
  }

  switch (phase_) {
    case Phase::kSearch:
      if (correlator_->push(bit)) on_sync_found();
      break;
    case Phase::kTrailer:
      collected_.push_back(bit);
      if (collected_.size() == 4) {
        collected_ = sim::BitVector();
        phase_ = Phase::kHeader;
      }
      break;
    case Phase::kHeader:
      collected_.push_back(bit);
      if (collected_.size() == 54) finish_header();
      break;
    case Phase::kPayload:
      collected_.push_back(bit);
      if (is_fec23(header_.type)) {
        if (collected_.size() % kFec23BlockBits == 0) {
          const auto block = collected_.slice(
              collected_.size() - kFec23BlockBits, kFec23BlockBits);
          auto decoded = fec23_decode(block);
          if (decoded.failed) {
            payload_fec_failed_ = true;
            ++fec_failures_;
          }
          if (whitener_) whitener_->apply(decoded.data);
          payload_data_bits_.append(decoded.data);
        }
      } else {
        bool data_bit = bit;
        if (whitener_ && whitener_->next()) data_bit = !data_bit;
        payload_data_bits_.push_back(data_bit);
      }
      // Resolve the total length once the payload header is decodable.
      if (payload_total_coded_bits_ == 0) {
        const std::size_t need = 8 * payload_header_bytes(header_.type);
        if (need > 0 && payload_data_bits_.size() >= need) {
          std::uint16_t length = 0;
          if (need == 8) {
            length = static_cast<std::uint16_t>(
                (payload_data_bits_.extract_uint(0, 8) >> 3) & 0x1Fu);
          } else {
            const auto two = payload_data_bits_.extract_uint(0, 16);
            length = static_cast<std::uint16_t>(((two >> 3) & 0x1Fu) |
                                                (((two >> 8) & 0x0Fu) << 5));
          }
          if (length > max_user_bytes(header_.type) || payload_fec_failed_) {
            // Corrupt length field: we cannot frame the payload. Report a
            // failed packet rather than reading a bogus bit count.
            Result r;
            r.header = header_;
            r.header_ok = true;
            r.fec_failed = payload_fec_failed_;
            r.packet_start = sync_done_time_ - kSyncEndOffset;
            ++crc_failures_;
            deliver(r);
            reset();
            return;
          }
          payload_body_bytes_ =
              payload_header_bytes(header_.type) + length +
              (has_crc(header_.type) ? 2u : 0u);
          const std::size_t data_bits = 8 * payload_body_bytes_;
          payload_total_coded_bits_ =
              is_fec23(header_.type)
                  ? (data_bits + kFec23DataBits - 1) / kFec23DataBits *
                        kFec23BlockBits
                  : data_bits;
        }
      }
      if (payload_total_coded_bits_ != 0 &&
          collected_.size() >= payload_total_coded_bits_) {
        on_payload_complete();
      }
      break;
  }
}

void Receiver::on_sync_found() {
  ++syncs_;
  sync_done_time_ = env_.now();
  if (expect_ == Expect::kIdOnly) {
    Result r;
    r.is_id = true;
    r.packet_start = sync_done_time_ - kSyncEndOffset;
    correlator_->reset();
    deliver(r);
    return;
  }
  collected_ = sim::BitVector();
  whitener_.reset();
  if (whiten_init_) whitener_.emplace(*whiten_init_);
  phase_ = Phase::kTrailer;
}

void Receiver::finish_header() {
  sim::BitVector info = fec13_decode(collected_);
  if (whitener_) whitener_->apply(info);
  const auto header10 = static_cast<std::uint16_t>(info.extract_uint(0, 10));
  const auto hec = static_cast<std::uint8_t>(info.extract_uint(10, 8));
  if (hec_compute10(header10, check_init_) != hec) {
    ++hec_failures_;
    Result r;
    r.packet_start = sync_done_time_ - kSyncEndOffset;
    deliver(r);  // header_ok == false
    reset();
    return;
  }
  header_ = PacketHeader::unpack(header10);
  if (header_hook_ && !header_hook_(header_)) {
    // Addressed elsewhere: the link controller told us to stop listening.
    reset();
    return;
  }
  if (!has_payload(header_.type)) {
    Result r;
    r.header = header_;
    r.header_ok = true;
    r.payload_ok = true;
    r.packet_start = sync_done_time_ - kSyncEndOffset;
    deliver(r);
    reset();
    return;
  }
  start_payload();
}

void Receiver::start_payload() {
  phase_ = Phase::kPayload;
  collected_ = sim::BitVector();
  payload_data_bits_ = sim::BitVector();
  payload_fec_failed_ = false;
  payload_body_bytes_ = 0;
  payload_total_coded_bits_ = 0;
  if (header_.type == PacketType::kFhs) {
    payload_body_bytes_ = kFhsBytes + 2;  // + CRC
    payload_total_coded_bits_ =
        (8 * payload_body_bytes_ + kFec23DataBits - 1) / kFec23DataBits *
        kFec23BlockBits;
  }
}

void Receiver::on_payload_complete() {
  Result r;
  r.header = header_;
  r.header_ok = true;
  r.fec_failed = payload_fec_failed_;
  r.packet_start = sync_done_time_ - kSyncEndOffset;

  std::vector<std::uint8_t> bytes;
  bytes.reserve(payload_body_bytes_);
  for (std::size_t i = 0; i + 8 <= payload_data_bits_.size() &&
                          bytes.size() < payload_body_bytes_;
       i += 8) {
    bytes.push_back(
        static_cast<std::uint8_t>(payload_data_bits_.extract_uint(i, 8)));
  }
  if (bytes.size() == payload_body_bytes_ && !payload_fec_failed_) {
    if (has_crc(header_.type)) {
      const auto crc = static_cast<std::uint16_t>(
          bytes[bytes.size() - 2] |
          (static_cast<std::uint16_t>(bytes.back()) << 8));
      bytes.resize(bytes.size() - 2);
      if (crc16_check(bytes, check_init_, crc)) {
        r.payload_ok = true;
        r.payload_body = std::move(bytes);
      } else {
        ++crc_failures_;
      }
    } else {
      r.payload_ok = true;
      r.payload_body = std::move(bytes);
    }
  } else if (payload_fec_failed_) {
    // already counted in fec_failures_
  } else {
    ++crc_failures_;
  }
  deliver(r);
  reset();
}

void Receiver::deliver(const Result& r) {
  if (handler_) handler_(r);
}

}  // namespace btsc::baseband
