#include "baseband/receiver.hpp"

#include <bit>
#include <cassert>

#include "baseband/crc.hpp"
#include "baseband/fec.hpp"
#include "baseband/hec.hpp"

namespace btsc::baseband {
namespace {

/// The last sync-word bit is air bit 67 for both ID packets and full
/// access codes; it is sampled a quarter bit into its period, 67.25 us
/// after the packet started (exact for even-half-slot transmissions,
/// +0.5 us for odd-half-slot ones -- well inside all window margins).
constexpr sim::SimTime kSyncEndOffset = sim::SimTime::ns(67'250);

}  // namespace

Receiver::Receiver(sim::Environment& env, std::string name)
    : env_(env), name_(std::move(name)) {}

void Receiver::configure(const sim::BitVector& sync_word,
                         std::uint8_t check_init,
                         std::optional<std::uint8_t> whiten_init,
                         Expect expect) {
  // Materialise any lazily pending samples into the OLD machine first:
  // the per-bit path delivered them at their own instants before this
  // reconfiguration ran, and the fresh correlator below must start cold
  // (bits_seen 0), not pre-warmed by pre-reconfig bits.
  if (catch_up_) catch_up_();
  machine_.correlator = Correlator(sync_word);
  configured_ = true;
  check_init_ = check_init;
  whiten_init_ = whiten_init;
  expect_ = expect;
  reset_machine();
  if (state_changed_) state_changed_();
}

void Receiver::reset_machine() {
  machine_.phase = Phase::kSearch;
  machine_.correlator.reset();
  machine_.collected.clear();
  machine_.payload_data_bits.clear();
  machine_.payload_total_coded_bits = 0;
  machine_.payload_body_bytes = 0;
  machine_.payload_fec_failed = false;
  machine_.have_whitener = false;
}

void Receiver::reset() {
  // Same ordering contract as configure(): pending samples belong to
  // the state being abandoned.
  if (catch_up_) catch_up_();
  reset_machine();
  if (state_changed_) state_changed_();
}

// ---------------------------------------------------------------------------
// The decode machine. step() makes every quiet state change and reports
// the first externally visible effect instead of performing it.
// ---------------------------------------------------------------------------

Receiver::Effect Receiver::payload_step(Machine& m) {
  if (is_fec23(m.header.type)) {
    if (m.collected.size() % kFec23BlockBits == 0) {
      const auto air = static_cast<std::uint16_t>(m.collected.extract_word(
          m.collected.size() - kFec23BlockBits, kFec23BlockBits));
      const Fec23Block block = fec23_decode_block15(air);
      if (block.failed) {
        m.payload_fec_failed = true;
        ++m.fec_failures;
      }
      std::uint16_t data10 = block.data10;
      if (m.have_whitener) {
        data10 ^= static_cast<std::uint16_t>(
            m.whitener.keystream(kFec23DataBits));
      }
      m.payload_data_bits.append_uint(data10, kFec23DataBits);
    }
  } else {
    bool data_bit = m.collected[m.collected.size() - 1];
    if (m.have_whitener && m.whitener.next()) data_bit = !data_bit;
    m.payload_data_bits.push_back(data_bit);
  }
  // Resolve the total length once the payload header is decodable.
  if (m.payload_total_coded_bits == 0) {
    const std::size_t need = 8 * payload_header_bytes(m.header.type);
    if (need > 0 && m.payload_data_bits.size() >= need) {
      std::uint16_t length = 0;
      if (need == 8) {
        length = static_cast<std::uint16_t>(
            (m.payload_data_bits.extract_word(0, 8) >> 3) & 0x1Fu);
      } else {
        const auto two = m.payload_data_bits.extract_word(0, 16);
        length = static_cast<std::uint16_t>(((two >> 3) & 0x1Fu) |
                                            (((two >> 8) & 0x0Fu) << 5));
      }
      if (length > max_user_bytes(m.header.type) || m.payload_fec_failed) {
        // Corrupt length field: we cannot frame the payload. The caller
        // reports a failed packet rather than reading a bogus bit count.
        return Effect::kPayloadBad;
      }
      m.payload_body_bytes = payload_header_bytes(m.header.type) + length +
                             (has_crc(m.header.type) ? 2u : 0u);
      const std::size_t data_bits = 8 * m.payload_body_bytes;
      m.payload_total_coded_bits =
          is_fec23(m.header.type)
              ? (data_bits + kFec23DataBits - 1) / kFec23DataBits *
                    kFec23BlockBits
              : data_bits;
    }
  }
  if (m.payload_total_coded_bits != 0 &&
      m.collected.size() >= m.payload_total_coded_bits) {
    return Effect::kPayloadDone;
  }
  return Effect::kNone;
}

Receiver::Effect Receiver::step(Machine& m, bool bit) {
  switch (m.phase) {
    case Phase::kSearch:
      return m.correlator.push(bit) ? Effect::kSync : Effect::kNone;
    case Phase::kTrailer:
      m.collected.push_back(bit);
      if (m.collected.size() == 4) {
        m.collected.clear();
        m.phase = Phase::kHeader;
      }
      return Effect::kNone;
    case Phase::kHeader:
      m.collected.push_back(bit);
      return m.collected.size() == 54 ? Effect::kHeaderDone : Effect::kNone;
    case Phase::kPayload:
      m.collected.push_back(bit);
      return payload_step(m);
  }
  return Effect::kNone;
}

void Receiver::execute(Effect e) {
  switch (e) {
    case Effect::kNone:
      return;
    case Effect::kSync:
      on_sync_found();
      return;
    case Effect::kHeaderDone:
      finish_header();
      return;
    case Effect::kPayloadBad:
      deliver_payload_bad();
      return;
    case Effect::kPayloadDone:
      on_payload_complete();
      return;
  }
}

// ---------------------------------------------------------------------------
// Per-sample entry (classic path; also runs every effect sample)
// ---------------------------------------------------------------------------

void Receiver::on_bit(phy::Logic4 sample) {
  if (!configured_) return;  // not configured yet
  if (sample != phy::Logic4::kZ) ++carrier_samples_;
  bool bit;
  switch (sample) {
    case phy::Logic4::kZero:
      bit = false;
      break;
    case phy::Logic4::kOne:
      bit = true;
      break;
    case phy::Logic4::kZ:
      bit = false;  // no carrier: the demodulator slices noise floor
      break;
    default:  // collision: garbled symbol
      bit = env_.draw_bernoulli(0.5);
      break;
  }
  execute(step(machine_, bit));
}

// ---------------------------------------------------------------------------
// Burst-transport sink: probe and bulk consumption
// ---------------------------------------------------------------------------

std::size_t Receiver::quiet_prefix(const sim::BitVector* bits,
                                   std::size_t first,
                                   std::size_t count) const {
  if (!configured_) return count;  // unconfigured: samples are dropped
  if (machine_.phase == Phase::kSearch) {
    // Search only touches the correlator: dry-run a register copy.
    Correlator c = machine_.correlator;
    if (bits == nullptr) {
      // All-'Z' future: after 64 zero shifts the window is stable, so
      // either a fire happens within the first 65 pushes or never (even
      // for a degenerate sync word that correlates with silence).
      const std::size_t limit = count < 65 ? count : 65;
      for (std::size_t i = 0; i < limit; ++i) {
        if (c.push(false)) return i;
      }
      return count;
    }
    for (std::size_t i = 0; i < count; ++i) {
      if (c.push((*bits)[first + i])) return i;
    }
    return count;
  }
  // Assembly phases: dry-run a scratch copy of the whole machine (the
  // copy-assign reuses the scratch buffers' capacity -- no steady-state
  // allocation). Real packet framings complete within a few thousand
  // bits, but a corrupted header that passed HEC can name a reserved
  // type whose payload length never resolves -- the per-bit path just
  // accumulates one bit per microsecond there, so the probe must not
  // chase the full horizon. Capping the answer is always sound: the
  // caller treats the capped position as a barrier and runs that one
  // sample through the exact per-sample path, then re-probes.
  constexpr std::size_t kProbeCap = 8192;  // > any real packet framing
  const std::size_t limit = count < kProbeCap ? count : kProbeCap;
  scratch_ = machine_;
  for (std::size_t i = 0; i < limit; ++i) {
    const bool bit = bits != nullptr && (*bits)[first + i];
    if (step(scratch_, bit) != Effect::kNone) return i;
  }
  return limit;
}

void Receiver::consume_quiet(const sim::BitVector* bits, std::size_t first,
                             std::size_t count) {
  if (!configured_ || count == 0) return;
  if (bits != nullptr) carrier_samples_ += count;
  std::size_t i = 0;
  while (i < count) {
    if (machine_.phase == Phase::kSearch) {
      // Word path: shift up to 64 known-quiet bits into the correlator
      // at once (a prior probe certified no position fires).
      const auto chunk =
          static_cast<unsigned>(count - i < 64 ? count - i : 64);
      const std::uint64_t w =
          bits != nullptr ? bits->extract_word(first + i, chunk) : 0;
#ifndef NDEBUG
      {
        Correlator check = machine_.correlator;
        for (unsigned b = 0; b < chunk; ++b) {
          assert(!check.push((w >> b) & 1u) &&
                 "consume_quiet crossed a sync fire");
        }
      }
#endif
      machine_.correlator.advance(w, chunk);
      i += chunk;
      continue;
    }
    const bool bit = bits != nullptr && (*bits)[first + i];
    [[maybe_unused]] const Effect e = step(machine_, bit);
    assert(e == Effect::kNone && "consume_quiet crossed a side effect");
    ++i;
  }
}

// ---------------------------------------------------------------------------
// Effect execution
// ---------------------------------------------------------------------------

Receiver::Result& Receiver::fresh_result() {
  result_.is_id = false;
  result_.header_ok = false;
  result_.payload_ok = false;
  result_.fec_failed = false;
  result_.header = PacketHeader{};
  result_.payload_body.clear();
  result_.packet_start = sim::SimTime::zero();
  return result_;
}

void Receiver::on_sync_found() {
  ++syncs_;
  sync_done_time_ = env_.now();
  if (expect_ == Expect::kIdOnly) {
    Result& r = fresh_result();
    r.is_id = true;
    r.packet_start = sync_done_time_ - kSyncEndOffset;
    machine_.correlator.reset();
    deliver(r);
    return;
  }
  machine_.collected.clear();
  machine_.have_whitener = whiten_init_.has_value();
  if (whiten_init_) machine_.whitener = Whitener(*whiten_init_);
  machine_.phase = Phase::kTrailer;
}

void Receiver::finish_header() {
  // FEC-1/3 majority vote of the 54 coded header bits into the 18
  // information bits, then de-whitening -- all in one register, no
  // intermediate BitVector.
  std::uint32_t info = 0;
  for (unsigned i = 0; i < 18; ++i) {
    const auto triplet =
        static_cast<unsigned>(machine_.collected.extract_word(3 * i, 3));
    info |= static_cast<std::uint32_t>(std::popcount(triplet) >= 2) << i;
  }
  if (machine_.have_whitener) {
    info ^= static_cast<std::uint32_t>(machine_.whitener.keystream(18));
  }
  const auto header10 = static_cast<std::uint16_t>(info & 0x3FFu);
  const auto hec = static_cast<std::uint8_t>((info >> 10) & 0xFFu);
  if (hec_compute10(header10, check_init_) != hec) {
    ++hec_failures_;
    Result& r = fresh_result();
    r.packet_start = sync_done_time_ - kSyncEndOffset;
    deliver(r);  // header_ok == false
    reset_machine();
    return;
  }
  machine_.header = PacketHeader::unpack(header10);
  if (header_hook_ && !header_hook_(machine_.header)) {
    // Addressed elsewhere: the link controller told us to stop listening.
    reset_machine();
    return;
  }
  if (!has_payload(machine_.header.type)) {
    Result& r = fresh_result();
    r.header = machine_.header;
    r.header_ok = true;
    r.payload_ok = true;
    r.packet_start = sync_done_time_ - kSyncEndOffset;
    deliver(r);
    reset_machine();
    return;
  }
  // Start the payload phase.
  machine_.phase = Phase::kPayload;
  machine_.collected.clear();
  machine_.payload_data_bits.clear();
  machine_.payload_fec_failed = false;
  machine_.payload_body_bytes = 0;
  machine_.payload_total_coded_bits = 0;
  if (machine_.header.type == PacketType::kFhs) {
    machine_.payload_body_bytes = kFhsBytes + 2;  // + CRC
    machine_.payload_total_coded_bits =
        (8 * machine_.payload_body_bytes + kFec23DataBits - 1) /
        kFec23DataBits * kFec23BlockBits;
  }
}

void Receiver::deliver_payload_bad() {
  Result& r = fresh_result();
  r.header = machine_.header;
  r.header_ok = true;
  r.fec_failed = machine_.payload_fec_failed;
  r.packet_start = sync_done_time_ - kSyncEndOffset;
  ++crc_failures_;
  deliver(r);
  reset_machine();
}

void Receiver::on_payload_complete() {
  Result& r = fresh_result();
  r.header = machine_.header;
  r.header_ok = true;
  r.fec_failed = machine_.payload_fec_failed;
  r.packet_start = sync_done_time_ - kSyncEndOffset;

  // Repack the decoded bits into the reusable body buffer (capacity is
  // retained across packets: no steady-state allocation).
  std::vector<std::uint8_t>& bytes = r.payload_body;
  for (std::size_t i = 0;
       i + 8 <= machine_.payload_data_bits.size() &&
       bytes.size() < machine_.payload_body_bytes;
       i += 8) {
    bytes.push_back(static_cast<std::uint8_t>(
        machine_.payload_data_bits.extract_word(i, 8)));
  }
  bool payload_ok = false;
  if (bytes.size() == machine_.payload_body_bytes &&
      !machine_.payload_fec_failed) {
    if (has_crc(machine_.header.type)) {
      const auto crc = static_cast<std::uint16_t>(
          bytes[bytes.size() - 2] |
          (static_cast<std::uint16_t>(bytes.back()) << 8));
      bytes.resize(bytes.size() - 2);
      if (crc16_check(bytes, check_init_, crc)) {
        payload_ok = true;
      } else {
        ++crc_failures_;
      }
    } else {
      payload_ok = true;
    }
  } else if (machine_.payload_fec_failed) {
    // already counted in machine_.fec_failures
  } else {
    ++crc_failures_;
  }
  r.payload_ok = payload_ok;
  if (!payload_ok) bytes.clear();
  deliver(r);
  reset_machine();
}

void Receiver::deliver(const Result& r) {
  if (handler_) handler_(r);
}

// ---------------------------------------------------------------------------
// Checkpointing
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint32_t kRecvTag = sim::snapshot_tag("RECV");

}  // namespace

void Receiver::save_state(sim::SnapshotWriter& w) const {
  w.begin_section(kRecvTag);
  w.b(configured_);
  w.u8(check_init_);
  w.b(whiten_init_.has_value());
  w.u8(whiten_init_.value_or(0));
  w.u8(static_cast<std::uint8_t>(expect_));
  // Decode machine (scratch_ is a probe buffer, result_ a delivery
  // buffer: neither carries state across samples).
  w.u8(static_cast<std::uint8_t>(machine_.phase));
  w.u64(machine_.correlator.expected_word());
  w.u64(machine_.correlator.window_word());
  w.u64(machine_.correlator.bits_seen());
  sim::save_bitvector(w, machine_.collected);
  w.u16(machine_.header.pack());
  w.b(machine_.have_whitener);
  w.u8(machine_.whitener.state());
  w.u64(machine_.payload_total_coded_bits);
  w.u64(machine_.payload_body_bytes);
  sim::save_bitvector(w, machine_.payload_data_bits);
  w.b(machine_.payload_fec_failed);
  w.u64(machine_.fec_failures);
  w.time(sync_done_time_);
  w.u64(carrier_samples_);
  w.u64(syncs_);
  w.u64(hec_failures_);
  w.u64(crc_failures_);
  w.end_section();
}

void Receiver::restore_state(sim::SnapshotReader& r) {
  r.enter_section(kRecvTag);
  configured_ = r.b();
  check_init_ = r.u8();
  const bool have_whiten_init = r.b();
  const std::uint8_t whiten_init = r.u8();
  whiten_init_ = have_whiten_init ? std::optional<std::uint8_t>(whiten_init)
                                  : std::nullopt;
  expect_ = static_cast<Expect>(r.u8());
  machine_.phase = static_cast<Phase>(r.u8());
  const std::uint64_t expected = r.u64();
  const std::uint64_t window = r.u64();
  const std::uint64_t bits_seen = r.u64();
  machine_.correlator.restore_registers(expected, window, bits_seen);
  sim::restore_bitvector(r, machine_.collected);
  machine_.header = PacketHeader::unpack(r.u16());
  machine_.have_whitener = r.b();
  machine_.whitener = Whitener(r.u8());
  machine_.payload_total_coded_bits = static_cast<std::size_t>(r.u64());
  machine_.payload_body_bytes = static_cast<std::size_t>(r.u64());
  sim::restore_bitvector(r, machine_.payload_data_bits);
  machine_.payload_fec_failed = r.b();
  machine_.fec_failures = r.u64();
  sync_done_time_ = r.time();
  carrier_samples_ = r.u64();
  syncs_ = r.u64();
  hec_failures_ = r.u64();
  crc_failures_ = r.u64();
  r.leave_section();
}

}  // namespace btsc::baseband
