#include "baseband/piconet.hpp"

#include <algorithm>

namespace btsc::baseband {

const char* to_string(LinkMode m) {
  switch (m) {
    case LinkMode::kActive:
      return "active";
    case LinkMode::kSniff:
      return "sniff";
    case LinkMode::kHold:
      return "hold";
    case LinkMode::kPark:
      return "park";
  }
  return "?";
}

bool SlaveLink::in_sniff_window(std::uint32_t clk) const {
  if (mode != LinkMode::kSniff || sniff_interval_slots == 0) return false;
  // Compare at slot resolution (clk counts half slots).
  const std::uint32_t slot = clk / 2;
  const std::uint32_t phase =
      (slot + sniff_interval_slots - sniff_offset_slots % sniff_interval_slots) %
      sniff_interval_slots;
  return phase < static_cast<std::uint32_t>(sniff_attempt_slots);
}

std::optional<std::uint8_t> Piconet::add_slave(const BdAddr& addr) {
  if (SlaveLink* existing = find(addr)) return existing->lt_addr;
  for (std::uint8_t lt = 1; lt <= kMaxActiveSlaves; ++lt) {
    if (find(lt) == nullptr) {
      SlaveLink link;
      link.addr = addr;
      link.lt_addr = lt;
      slaves_.push_back(std::move(link));
      return lt;
    }
  }
  return std::nullopt;
}

void Piconet::remove_slave(std::uint8_t lt_addr) {
  std::erase_if(slaves_,
                [lt_addr](const SlaveLink& s) { return s.lt_addr == lt_addr; });
}

SlaveLink* Piconet::find(std::uint8_t lt_addr) {
  auto it = std::find_if(slaves_.begin(), slaves_.end(), [lt_addr](auto& s) {
    return s.lt_addr == lt_addr;
  });
  return it == slaves_.end() ? nullptr : &*it;
}

const SlaveLink* Piconet::find(std::uint8_t lt_addr) const {
  auto it = std::find_if(slaves_.begin(), slaves_.end(), [lt_addr](auto& s) {
    return s.lt_addr == lt_addr;
  });
  return it == slaves_.end() ? nullptr : &*it;
}

SlaveLink* Piconet::find(const BdAddr& addr) {
  auto it = std::find_if(slaves_.begin(), slaves_.end(),
                         [&addr](auto& s) { return s.addr == addr; });
  return it == slaves_.end() ? nullptr : &*it;
}

bool Piconet::has_parked() const {
  return std::any_of(slaves_.begin(), slaves_.end(), [](const SlaveLink& s) {
    return s.mode == LinkMode::kPark;
  });
}

std::size_t Piconet::active_count() const {
  return static_cast<std::size_t>(
      std::count_if(slaves_.begin(), slaves_.end(), [](const SlaveLink& s) {
        return s.mode != LinkMode::kPark;
      }));
}

}  // namespace btsc::baseband
