// Baseband packet types, geometry, composition and parsing.
//
// On-air layout (bit 0 first):
//
//   ID                : access code without trailer (68 bits)
//   everything else   : access code with trailer (72) + header (54) +
//                       optional payload
//
// The 18-bit header (LT_ADDR 3, TYPE 4, FLOW 1, ARQN 1, SEQN 1, HEC 8) is
// whitened and then rate-1/3 repetition coded to 54 bits. Payloads carry
// a payload header (1 byte for single-slot, 2 bytes for multi-slot ACL
// packets), the user data and a CRC-16; DM packets (and FHS) pass through
// the (15,10) FEC 2/3 encoder, DH packets are unprotected. Whitening is
// applied to header and payload *before* FEC encoding, per the spec.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "baseband/address.hpp"
#include "sim/bitvector.hpp"
#include "sim/time.hpp"

namespace btsc::baseband {

/// 4-bit TYPE codes (ACL subset modelled; ID is not a header type).
enum class PacketType : std::uint8_t {
  kNull = 0b0000,
  kPoll = 0b0001,
  kFhs = 0b0010,
  kDm1 = 0b0011,
  kDh1 = 0b0100,
  kAux1 = 0b1001,
  kDm3 = 0b1010,
  kDh3 = 0b1011,
  kDm5 = 0b1110,
  kDh5 = 0b1111,
};

const char* to_string(PacketType t);

/// True for types that carry a payload section.
bool has_payload(PacketType t);
/// True for types whose payload is FEC 2/3 coded (DM family + FHS).
bool is_fec23(PacketType t);
/// True for types protected by a payload CRC (everything with a payload).
bool has_crc(PacketType t);
/// Number of slots the packet occupies (1, 3 or 5).
int slots_occupied(PacketType t);
/// Payload header size in bytes (1 single-slot, 2 multi-slot); 0 for FHS.
std::size_t payload_header_bytes(PacketType t);
/// Maximum user payload in bytes (0 for NULL/POLL/FHS).
std::size_t max_user_bytes(PacketType t);

/// 18-byte FHS information payload (before CRC).
inline constexpr std::size_t kFhsBytes = 18;

/// Packet header fields (HEC handled by compose/parse).
struct PacketHeader {
  std::uint8_t lt_addr = 0;  // 3 bits; 0 = broadcast
  PacketType type = PacketType::kNull;
  bool flow = true;
  bool arqn = false;
  bool seqn = false;

  /// Packs into the 10-bit on-air order (LT_ADDR first).
  std::uint16_t pack() const;
  static PacketHeader unpack(std::uint16_t v);

  friend bool operator==(const PacketHeader&, const PacketHeader&) = default;
};

/// ACL payload header.
struct PayloadHeader {
  std::uint8_t llid = 2;  // 2 bits: 01 continuation, 10 start, 11 LMP
  bool flow = true;
  std::uint16_t length = 0;  // 5 bits (1-byte form) or 9 bits (2-byte form)
};

/// LLID value carrying LMP messages.
inline constexpr std::uint8_t kLlidLmp = 0b11;
/// LLID value for the start of an L2CAP (user data) message.
inline constexpr std::uint8_t kLlidStart = 0b10;
/// LLID continuation fragment.
inline constexpr std::uint8_t kLlidCont = 0b01;

/// FHS packet content: everything a responding/paging device announces so
/// the counterpart can construct the channel (address -> access code and
/// hop sequence; clock -> phase; lt_addr -> the slave's assigned address).
struct FhsPayload {
  BdAddr addr;
  std::uint32_t clk27_2 = 0;       // bits 27..2 of the sender's clock
  std::uint8_t lt_addr = 0;        // AM address assigned to the recipient
  std::uint32_t class_of_device = 0;

  std::vector<std::uint8_t> to_bytes() const;
  static FhsPayload from_bytes(const std::vector<std::uint8_t>& bytes);
  friend bool operator==(const FhsPayload&, const FhsPayload&) = default;
};

/// Total on-air bits for a packet of `type` carrying `user_bytes` of user
/// data (ID excluded; use kIdPacketBits).
std::size_t air_bits(PacketType type, std::size_t user_bytes);

/// On-air duration.
sim::SimTime air_time(PacketType type, std::size_t user_bytes);

/// Composition parameters shared by TX and RX.
struct LinkParams {
  std::uint8_t check_init = kDefaultCheckInit;  // UAP for HEC/CRC
  /// Whitening initial register (7 bits); nullopt disables whitening
  /// (inquiry/page exchanges in this model are sent unwhitened; see
  /// DESIGN.md).
  std::optional<std::uint8_t> whiten_init;
};

/// Composes a full on-air packet (without the access code, which the
/// caller prepends: it depends on CAC/DAC/IAC context).
/// `payload` is the payload *body* for data packets: payload header byte(s)
/// + user data, without CRC (appended here). For FHS pass exactly the 18
/// information bytes. Must be empty for NULL/POLL.
sim::BitVector compose_after_access_code(const PacketHeader& header,
                                         const std::vector<std::uint8_t>& payload,
                                         const LinkParams& params);

/// Convenience: payload body builder for an ACL packet.
std::vector<std::uint8_t> build_acl_body(PacketType type,
                                         std::uint8_t llid, bool flow,
                                         const std::vector<std::uint8_t>& user);

/// Parses the payload *body* (after FEC decode and CRC strip) of an ACL
/// packet back into the payload header + user bytes.
struct ParsedBody {
  PayloadHeader header;
  std::vector<std::uint8_t> user;
};
ParsedBody parse_acl_body(PacketType type,
                          const std::vector<std::uint8_t>& body);

}  // namespace btsc::baseband
