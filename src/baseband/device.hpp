// Device: one complete Bluetooth node (lower layers).
//
// Aggregates the native clock, the radio front-end on the shared channel,
// the packet receiver and the link controller, wiring them exactly as the
// paper's baseband architecture figure does. The Link Manager (lm/) and
// the scenario layer (core/) sit on top of this class.
#pragma once

#include <cstdint>
#include <string>

#include "baseband/address.hpp"
#include "baseband/bt_clock.hpp"
#include "baseband/link_controller.hpp"
#include "baseband/receiver.hpp"
#include "phy/channel.hpp"
#include "phy/radio.hpp"
#include "sim/module.hpp"

namespace btsc::baseband {

struct DeviceConfig {
  BdAddr addr;
  /// Initial CLKN value (devices power up with arbitrary clocks).
  std::uint32_t clkn_init = 0;
  /// Phase of the first CLKN tick. Must be a whole number of
  /// microseconds so all devices share the 1 Mb/s bit grid (see
  /// DESIGN.md timing notes); sub-microsecond phase is not modelled.
  sim::SimTime clkn_phase = kTickPeriod;
  LcConfig lc;
};

class Device final : public sim::Module {
 public:
  Device(sim::Environment& env, std::string name, const DeviceConfig& config,
         phy::NoisyChannel& channel);

  const BdAddr& address() const { return config_.addr; }
  NativeClock& clock() { return clock_; }
  phy::Radio& radio() { return radio_; }
  Receiver& receiver() { return receiver_; }
  LinkController& lc() { return lc_; }
  const LinkController& lc() const { return lc_; }

 private:
  DeviceConfig config_;
  NativeClock clock_;
  phy::Radio radio_;
  Receiver receiver_;
  LinkController lc_;
};

}  // namespace btsc::baseband
