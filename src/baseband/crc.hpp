// Payload CRC.
//
// CRC-16/CCITT, g(D) = D^16 + D^12 + D^5 + 1, initialised with the UAP in
// the most significant byte of the register (spec: UAP appended with 8
// zero bits). Appended to every payload-bearing packet (DM*, DH*, FHS).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/bitvector.hpp"

namespace btsc::baseband {

/// CRC over a bit sequence in transmission order.
std::uint16_t crc16_compute(const sim::BitVector& bits, std::uint8_t uap);

/// CRC over bytes (each byte transmitted LSB first).
std::uint16_t crc16_compute(const std::vector<std::uint8_t>& bytes,
                            std::uint8_t uap);

bool crc16_check(const std::vector<std::uint8_t>& bytes, std::uint8_t uap,
                 std::uint16_t crc);

}  // namespace btsc::baseband
