// Frequency hop selection kernel (79-channel system).
//
// Implements the spec's hop selection box: inputs X/Y1/Y2 derived from the
// relevant clock and phase, address inputs A-F derived from the 28-bit hop
// address (LAP + 4 UAP bits), a first addition, XOR, a 14-control-bit
// butterfly permutation (PERM5), a second addition modulo 79, and the
// even-first register bank mapping onto the 79 RF channels.
//
// Modes:
//   kConnection        : pseudo-random sequence over all 79 channels,
//                        driven by the master clock CLK and master address.
//   kPage / kInquiry   : short 32-hop sequence around a clock estimate;
//                        koffset (24 = train A, 8 = train B) selects the
//                        half of the sequence being swept.
//   kPageScan/kInquiryScan : single frequency changing every 1.28 s
//                        (CLKN bits 16:12).
//   k*Response         : frozen-clock sequences stepped by a response
//                        counter N.
//
// Faithfulness note: the 14 butterfly exchange pairs below follow the
// structure of the spec's PERM5 (seven stages of two conditional
// transpositions) but the exact pair assignment is this model's own.
// Both transmitter and receiver use the same kernel, so all system-level
// behaviour (train structure, coverage, pseudo-randomness) is preserved;
// only over-the-air interoperability with real silicon would need the
// verbatim table.
#pragma once

#include <cstdint>

namespace btsc::baseband {

inline constexpr int kNumRfChannels = 79;

enum class HopMode : std::uint8_t {
  kConnection,
  kPage,
  kPageScan,
  kMasterPageResponse,
  kSlavePageResponse,
  kInquiry,
  kInquiryScan,
  kInquiryResponse,
};

/// Train selector offsets for page/inquiry hopping.
inline constexpr int kTrainA = 24;
inline constexpr int kTrainB = 8;

struct HopInput {
  /// 28-bit hop address of the sequence owner (master for connection,
  /// paged device for page, GIAC for inquiry). See BdAddr::hop_address().
  std::uint32_t address = 0;
  /// 28-bit clock appropriate for the mode (CLK, CLKN or CLKE).
  std::uint32_t clock = 0;
  HopMode mode = HopMode::kConnection;
  /// Train offset for kPage/kInquiry.
  int koffset = kTrainA;
  /// Response counter N for the *Response modes.
  int response_n = 0;
  /// Clock value frozen when the response exchange started (CLK*).
  std::uint32_t frozen_clock = 0;
  /// Added to the phase X modulo 32. Used by the interlaced scan to open
  /// a second window on the complementary train half (X + 16).
  int x_offset = 0;
};

/// Selected RF channel in [0, 79).
int hop_frequency(const HopInput& in);

/// The 5-bit phase input X for the given mode (exposed for tests: the
/// page/inquiry train structure lives here).
int hop_phase_x(const HopInput& in);

}  // namespace btsc::baseband
