// The Bluetooth native clock (CLKN).
//
// A free-running 28-bit counter ticking at 3.2 kHz (every 312.5 us), i.e.
// twice per 625 us time slot: bit 0 distinguishes the two half slots, bit
// 1 the master-to-slave vs slave-to-master slot, and the counter wraps
// roughly once a day. Every device owns an independent CLKN with its own
// start value; the piconet clock CLK of a slave is CLKN plus an offset
// learned during paging.
#pragma once

#include <cstdint>
#include <string>

#include "sim/event.hpp"
#include "sim/module.hpp"
#include "sim/snapshot.hpp"
#include "sim/time.hpp"

namespace btsc::baseband {

inline constexpr std::uint32_t kClockMask = 0x0FFFFFFFu;  // 28 bits
/// Native clock tick period: 312.5 us (half a time slot).
inline constexpr sim::SimTime kTickPeriod = sim::SimTime::ns(312'500);
/// One time slot: 625 us.
inline constexpr sim::SimTime kSlotDuration = sim::SimTime::us(625);

class NativeClock final : public sim::Module,
                          public sim::Snapshotable,
                          public sim::RearmHandler {
 public:
  /// The counter starts at `initial`; the first increment fires after
  /// `first_tick_delay` (use a random phase to model unsynchronised
  /// devices; must be < kTickPeriod for a sensible phase).
  NativeClock(sim::Environment& env, std::string name,
              std::uint32_t initial = 0,
              sim::SimTime first_tick_delay = kTickPeriod);
  ~NativeClock() override;

  /// Current native clock value (updated just before tick_event fires).
  std::uint32_t clkn() const { return clkn_; }

  /// Value of CLKN bit `i`.
  bool bit(int i) const { return (clkn_ >> i) & 1u; }

  /// Notified on every tick, after clkn() has been incremented.
  sim::Event& tick_event() { return tick_; }

  /// Simulation time of the most recent tick (start of current half slot).
  sim::SimTime last_tick_time() const { return last_tick_; }

  std::uint64_t ticks() const { return tick_count_; }

  /// Re-randomisation hook for forked replications: drops the pending
  /// tick, restarts the counter at `initial` and the phase at
  /// `first_tick_delay` from the current time -- the same state a fresh
  /// construction with these arguments would have.
  void reset_phase(std::uint32_t initial, sim::SimTime first_tick_delay);

  // Snapshotable
  void save_state(sim::SnapshotWriter& w) const override;
  void restore_state(sim::SnapshotReader& r) override;

  // RearmHandler
  void rearm_timer(std::uint16_t kind, std::uint64_t payload,
                   sim::SimTime when) override;

 private:
  /// Timer descriptor kinds (see schedule_tagged).
  enum Kind : std::uint16_t { kTick = 1 };

  void schedule_tick(sim::SimTime delay);
  void tick();

  std::uint32_t clkn_;
  sim::Event tick_;
  sim::SimTime last_tick_ = sim::SimTime::zero();
  std::uint64_t tick_count_ = 0;
};

/// Signed clock arithmetic helper: offset such that
/// (clkn + offset) & mask == target.
constexpr std::uint32_t clock_offset(std::uint32_t clkn,
                                     std::uint32_t target) {
  return (target - clkn) & kClockMask;
}

}  // namespace btsc::baseband
