#include "baseband/link_controller.hpp"

#include <algorithm>
#include <cassert>

namespace btsc::baseband {
namespace {

using sim::SimTime;

constexpr SimTime kHalfSlot = kTickPeriod;                    // 312.5 us
constexpr SimTime kIdAirTime = SimTime::us(kIdPacketBits);    // 68 us
/// Extra margin added to handshake listen windows to absorb the sub-bit
/// packet_start reconstruction fuzz (see receiver.cpp).
constexpr SimTime kWindowSlack = SimTime::us(10);

std::uint32_t giac_hop_address() {
  return BdAddr(kGiacLap, kDefaultCheckInit, 0).hop_address();
}

/// Picks a packet type that carries `n` user bytes, preferring the
/// configured type, then larger members of the same FEC family, then any
/// type. Needed when the preferred type changes while larger messages
/// are still queued.
PacketType fit_packet_type(PacketType preferred, std::size_t n) {
  if (n <= max_user_bytes(preferred)) return preferred;
  const bool fec = is_fec23(preferred);
  const PacketType dm[] = {PacketType::kDm1, PacketType::kDm3,
                           PacketType::kDm5};
  const PacketType dh[] = {PacketType::kDh1, PacketType::kDh3,
                           PacketType::kDh5};
  for (PacketType t : fec ? dm : dh) {
    if (n <= max_user_bytes(t)) return t;
  }
  return PacketType::kDh5;  // largest capacity of all ACL types
}

}  // namespace

const char* to_string(LcState s) {
  switch (s) {
    case LcState::kStandby:
      return "standby";
    case LcState::kInquiry:
      return "inquiry";
    case LcState::kInquiryScan:
      return "inquiry_scan";
    case LcState::kInquiryResponse:
      return "inquiry_response";
    case LcState::kPage:
      return "page";
    case LcState::kPageScan:
      return "page_scan";
    case LcState::kMasterResponse:
      return "master_response";
    case LcState::kSlaveResponse:
      return "slave_response";
    case LcState::kConnectionMaster:
      return "connection_master";
    case LcState::kConnectionSlave:
      return "connection_slave";
  }
  return "?";
}

LinkController::LinkController(sim::Environment& env, std::string name,
                               const BdAddr& addr, NativeClock& clock,
                               phy::Radio& radio, Receiver& receiver,
                               LcConfig config)
    : Module(env, std::move(name)),
      addr_(addr),
      clock_(clock),
      radio_(radio),
      receiver_(receiver),
      config_(config),
      master_addr_(addr) {
  sim::Process& tick = method("tick", [this] { on_tick(); });
  clock_.tick_event().add_sensitive(tick);
  receiver_.set_handler([this](const Receiver::Result& r) {
    switch (state_) {
      case LcState::kInquiry:
        inquiry_on_result(r);
        break;
      case LcState::kInquiryScan:
      case LcState::kInquiryResponse:
        inquiry_scan_on_result(r);
        break;
      case LcState::kPage:
      case LcState::kMasterResponse:
        page_on_result(r);
        break;
      case LcState::kPageScan:
      case LcState::kSlaveResponse:
        page_scan_on_result(r);
        break;
      case LcState::kConnectionMaster:
        master_on_packet(r);
        break;
      case LcState::kConnectionSlave:
        slave_on_packet(r);
        break;
      case LcState::kStandby:
        break;
    }
  });
  receiver_.set_header_hook([this](const PacketHeader& h) {
    if (state_ == LcState::kConnectionSlave) {
      if (h.lt_addr != own_lt_addr_ && h.lt_addr != 0) {
        // Addressed to another slave: stop listening after the header,
        // exactly the RX gating visible in the paper's Fig. 5.
        defer(SimTime::zero(), kCloseRxIfIdle);
        return false;
      }
    }
    return true;
  });
  env.register_rearm(this->name(), this, this);
}

LinkController::~LinkController() { env().unregister_rearm(this); }

// ---------------------------------------------------------------------------
// Commands
// ---------------------------------------------------------------------------

void LinkController::enable_detach_reset() {
  cancel_timers();
  radio_.abort_tx();
  radio_.disable_rx();
  piconet_ = Piconet();
  discovered_.clear();
  own_lt_addr_ = 0;
  my_mode_ = LinkMode::kActive;
  my_tx_queue_.clear();
  my_in_flight_.reset();
  my_last_seqn_in_.reset();
  my_seqn_out_ = my_arqn_out_ = false;
  pending_first_poll_lt_.reset();
  awaiting_response_lt_.reset();
  backoff_armed_ = in_backoff_ = false;
  resyncing_ = false;
  enter_state(LcState::kStandby);
}

void LinkController::enable_inquiry() {
  cancel_timers();
  discovered_.clear();
  enter_state(LcState::kInquiry);
  arm_receiver(kGiacLap, kDefaultCheckInit, std::nullopt,
               Receiver::Expect::kFull);
}

void LinkController::enable_inquiry_scan() {
  cancel_timers();
  backoff_armed_ = in_backoff_ = false;
  enter_state(LcState::kInquiryScan);
  arm_receiver(kGiacLap, kDefaultCheckInit, std::nullopt,
               Receiver::Expect::kIdOnly);
  scan_freq_ = -1;  // force retune on the first tick
}

void LinkController::enable_page(const BdAddr& target,
                                 std::uint32_t clkn_offset_estimate) {
  cancel_timers();
  page_target_ = target;
  page_clkn_offset_ = clkn_offset_estimate & kClockMask;
  response_retries_ = 0;
  enter_state(LcState::kPage);
  arm_receiver(target.lap(), target.uap(), std::nullopt,
               Receiver::Expect::kIdOnly);
}

void LinkController::enable_page_scan() {
  cancel_timers();
  enter_state(LcState::kPageScan);
  arm_receiver(addr_.lap(), addr_.uap(), std::nullopt,
               Receiver::Expect::kIdOnly);
  scan_freq_ = -1;
}

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

void LinkController::enter_state(LcState s) {
  state_ = s;
  ticks_in_state_ = 0;
}

void LinkController::cancel_timers() {
  env().cancel_owned(this);
  radio_.disable_rx();
}

sim::TimerId LinkController::defer(SimTime delay, Kind kind,
                                   std::uint64_t payload) {
  return env().schedule_tagged(delay, kind, payload,
                               make_action(kind, payload), /*owner=*/this);
}

sim::UniqueFunction LinkController::make_action(Kind kind,
                                                std::uint64_t payload) {
  switch (kind) {
    case kCloseRxIfIdle:
      return [this] { close_rx_if_idle(); };
    case kSenseWindowClose:
      return [this, payload] {
        if (receiver_.carrier_samples() == payload &&
            !receiver_.assembling()) {
          close_rx_if_idle();
        }
        // Carrier present: the packet handler (or the next window)
        // closes RX.
      };
    case kBackoffEnd:
      return [this] {
        in_backoff_ = false;  // next tick resumes the scan
      };
    case kSendInquiryFhs:
      return [this, payload] {
        send_inquiry_fhs(env().now(), static_cast<int>(payload));
      };
    case kInquiryFhsDone:
      return [this] {
        if (state_ == LcState::kInquiryResponse) {
          enter_state(LcState::kInquiryScan);
          scan_freq_ = -1;
        }
      };
    case kMasterFhsWindow:
      return [this] {
        if (state_ != LcState::kMasterResponse) return;
        arm_receiver(page_target_.lap(), page_target_.uap(), std::nullopt,
                     Receiver::Expect::kIdOnly);
        open_rx_window(respmap(page_hit_freq_, 2), kIdAirTime + kWindowSlack);
      };
    case kSlaveIdReply:
      return [this] {
        transmit_id(addr_.lap(), respmap(page_hit_freq_, 0));
        defer(kIdAirTime, kSlaveFhsListen);
      };
    case kSlaveFhsListen:
      return [this] {
        if (state_ != LcState::kSlaveResponse) return;
        // Listen continuously for the FHS; the master may retry several
        // times on the same response frequency.
        arm_receiver(addr_.lap(), addr_.uap(), std::nullopt,
                     Receiver::Expect::kFull);
        radio_.enable_rx(respmap(page_hit_freq_, 1));
      };
    case kSlaveDialogueTimeout:
      return [this] {
        if (state_ == LcState::kSlaveResponse) {
          radio_.disable_rx();
          enable_page_scan();
        }
      };
    case kSlaveAckId:
      return [this] {
        transmit_id(addr_.lap(), respmap(page_hit_freq_, 2));
        defer(kIdAirTime, kSlaveEnterConnection);
      };
    case kSlaveEnterConnection:
      return [this] {
        enter_state(LcState::kConnectionSlave);
        my_mode_ = LinkMode::kActive;
        arm_receiver(master_addr_.lap(), master_addr_.uap(), std::nullopt,
                     Receiver::Expect::kFull);
        // First listening slot: the next master even slot after the ack.
        const std::uint64_t steps = (env().now() - grid_anchor_) / kHalfSlot;
        const std::uint64_t next_even = (steps / 4 + 1) * 4;
        schedule_slave_slot(grid_anchor_ + kHalfSlot * next_even);
      };
    case kMasterRxWindow:
      return [this, payload] {
        const auto clk_resp = static_cast<std::uint32_t>(payload);
        if (state_ != LcState::kConnectionMaster) return;
        arm_receiver(addr_.lap(), addr_.uap(), connection_whiten(clk_resp),
                     Receiver::Expect::kFull);
        open_rx_window(connection_freq(clk_resp),
                       config_.carrier_sense_window);
      };
    case kSlaveSlot:
      return [this] { slave_slot_action(); };
    case kSlaveRespond:
      return [this, payload] {
        slave_respond(static_cast<std::uint32_t>(payload));
      };
  }
  throw sim::SnapshotError("link controller: unknown timer kind " +
                           std::to_string(kind));
}

void LinkController::rearm_timer(std::uint16_t kind, std::uint64_t payload,
                                 SimTime when) {
  if (kind < kCloseRxIfIdle || kind > kSlaveRespond) {
    throw sim::SnapshotError("link controller: bad timer kind " +
                             std::to_string(kind));
  }
  defer(when - env().now(), static_cast<Kind>(kind), payload);
}

int LinkController::respmap(int freq, int n) {
  return (freq + 32 + 7 * n) % kNumRfChannels;
}

void LinkController::arm_receiver(std::uint32_t lap, std::uint8_t check_init,
                                  std::optional<std::uint8_t> whiten,
                                  Receiver::Expect expect) {
  receiver_.configure(sync_word(lap), check_init, whiten, expect);
}

void LinkController::open_rx_window(int freq, SimTime sense_window) {
  if (radio_.rx_enabled()) {
    radio_.retune_rx(freq);
  } else {
    radio_.enable_rx(freq);
  }
  defer(sense_window, kSenseWindowClose, receiver_.carrier_samples());
}

void LinkController::close_rx_if_idle() {
  if (!receiver_.assembling()) radio_.disable_rx();
}

void LinkController::transmit_id(std::uint32_t lap, int freq) {
  if (radio_.tx_busy()) return;
  ++stats_.id_tx;
  radio_.transmit(freq, access_code(lap, /*with_trailer=*/false));
}

void LinkController::transmit_packet(const PacketHeader& header,
                                     const std::vector<std::uint8_t>& body,
                                     std::uint32_t lap,
                                     std::uint8_t check_init,
                                     std::optional<std::uint8_t> whiten,
                                     int freq) {
  if (radio_.tx_busy()) return;
  sim::BitVector bits = access_code(lap, /*with_trailer=*/true);
  LinkParams params;
  params.check_init = check_init;
  params.whiten_init = whiten;
  bits.append(compose_after_access_code(header, body, params));
  radio_.transmit(freq, std::move(bits));
}

std::optional<std::uint8_t> LinkController::connection_whiten(
    std::uint32_t clk) const {
  if (!config_.whitening) return std::nullopt;
  return Whitener::from_clock(clk).state();
}

int LinkController::connection_freq(std::uint32_t clk) const {
  HopInput in;
  in.address = master_addr_.hop_address();
  in.clock = clk;
  in.mode = HopMode::kConnection;
  return hop_frequency(in);
}

std::uint32_t LinkController::piconet_clock() const {
  if (state_ == LcState::kConnectionSlave) {
    const std::uint64_t steps =
        (env().now() - grid_anchor_) / kHalfSlot;
    return (clk_at_anchor_ + static_cast<std::uint32_t>(steps)) & kClockMask;
  }
  return clock_.clkn();
}

// ---------------------------------------------------------------------------
// Tick dispatch
// ---------------------------------------------------------------------------

void LinkController::on_tick() {
  ++ticks_in_state_;
  switch (state_) {
    case LcState::kInquiry:
      inquiry_tick();
      break;
    case LcState::kInquiryScan:
    case LcState::kInquiryResponse:
      inquiry_scan_tick();
      break;
    case LcState::kPage:
      page_tick();
      break;
    case LcState::kMasterResponse:
      master_response_tick();
      break;
    case LcState::kConnectionMaster:
      master_tick();
      break;
    case LcState::kPageScan:
      page_scan_tick();
      break;
    case LcState::kSlaveResponse:
      // Waiting for the master's FHS; timeout handled by dialogue timer.
      break;
    case LcState::kConnectionSlave:
      // Runs on the master-grid timer instead of own ticks.
      break;
    case LcState::kStandby:
      break;
  }
}

// ---------------------------------------------------------------------------
// Inquiry (discoverer)
// ---------------------------------------------------------------------------

void LinkController::inquiry_tick() {
  if (slots_in_state() >= config_.inquiry_timeout_slots) {
    const bool ok = discovered_.size() >= config_.inquiry_target_responses;
    radio_.disable_rx();
    enter_state(LcState::kStandby);
    if (callbacks_.inquiry_complete) callbacks_.inquiry_complete(ok);
    return;
  }
  const std::uint32_t clkn = clock_.clkn();
  // Train A first; switch every train_repeats passes (32 ticks per pass).
  const int koffset =
      (ticks_in_state_ / (32 * config_.train_repeats)) % 2 == 0 ? kTrainA
                                                                : kTrainB;
  const int half = static_cast<int>(clkn & 1u);
  if (((clkn >> 1) & 1u) == 0) {
    // TX half slot: send an ID on the inquiry train (skip if the previous
    // response is still being assembled).
    if (receiver_.assembling() || radio_.tx_busy()) return;
    radio_.disable_rx();
    HopInput in;
    in.address = giac_hop_address();
    in.clock = clkn;
    in.mode = HopMode::kInquiry;
    in.koffset = koffset;
    const int f = hop_frequency(in);
    last_tx_freq_[half] = f;
    transmit_id(kGiacLap, f);
  } else {
    // Listen half slot: an FHS answering the ID sent 625 us ago arrives
    // now on the response frequency.
    if (receiver_.assembling()) return;  // FHS crossing the slot boundary
    const int src = last_tx_freq_[half];
    if (src < 0) return;
    open_rx_window(respmap(src, 0), kHalfSlot - kWindowSlack);
  }
}

void LinkController::inquiry_on_result(const Receiver::Result& r) {
  if (!r.header_ok || r.header.type != PacketType::kFhs || !r.payload_ok) {
    defer(SimTime::zero(), kCloseRxIfIdle);
    return;
  }
  ++stats_.fhs_rx;
  const FhsPayload fhs = FhsPayload::from_bytes(r.payload_body);
  // Deduplicate: the same device may answer several times.
  for (const DiscoveredDevice& d : discovered_) {
    if (d.addr == fhs.addr) {
      defer(SimTime::zero(), kCloseRxIfIdle);
      return;
    }
  }
  DiscoveredDevice dev;
  dev.addr = fhs.addr;
  dev.clkn_offset =
      clock_offset(clock_.clkn(), (fhs.clk27_2 << 2) & kClockMask);
  dev.found_at = env().now();
  discovered_.push_back(dev);
  if (callbacks_.device_discovered) callbacks_.device_discovered(dev);
  if (discovered_.size() >= config_.inquiry_target_responses) {
    radio_.disable_rx();
    enter_state(LcState::kStandby);
    if (callbacks_.inquiry_complete) callbacks_.inquiry_complete(true);
  } else {
    defer(SimTime::zero(), kCloseRxIfIdle);
  }
}

// ---------------------------------------------------------------------------
// Inquiry scan / inquiry response (discoverable device)
// ---------------------------------------------------------------------------

void LinkController::inquiry_scan_tick() {
  if (in_backoff_ || radio_.tx_busy()) return;
  const std::uint32_t clkn = clock_.clkn();
  // Windowed scan per the spec (continuous when the window is 0, or when
  // re-listening for the second ID after the backoff). With interlaced
  // scanning a second window on the complementary train frequency
  // follows the first.
  int x_offset = 0;
  if (config_.inquiry_scan_window_slots > 0 && !backoff_armed_) {
    const std::uint32_t interval_ticks =
        2 * config_.inquiry_scan_interval_slots;
    const std::uint32_t window_ticks = 2 * config_.inquiry_scan_window_slots;
    const std::uint32_t pos = clkn % interval_ticks;
    if (pos < window_ticks) {
      x_offset = 0;
    } else if (config_.interlaced_inquiry_scan && pos < 2 * window_ticks) {
      x_offset = 16;
    } else {
      if (!receiver_.assembling()) radio_.disable_rx();
      return;
    }
  }
  int f;
  if (backoff_armed_ && inquiry_first_hit_freq_ >= 0) {
    // Waiting for the second ID after the backoff: the inquirer is still
    // sweeping the same train, so listen where the first ID was heard.
    f = inquiry_first_hit_freq_;
  } else {
    HopInput in;
    in.address = giac_hop_address();
    in.clock = clkn;
    in.mode = HopMode::kInquiryScan;
    in.x_offset = x_offset;
    f = hop_frequency(in);
  }
  if (!radio_.rx_enabled()) {
    radio_.enable_rx(f);
    scan_freq_ = f;
  } else if (f != scan_freq_ && !receiver_.assembling()) {
    radio_.retune_rx(f);
    scan_freq_ = f;
  }
}

void LinkController::inquiry_scan_on_result(const Receiver::Result& r) {
  if (!r.is_id) return;
  ++stats_.id_rx;
  if (!backoff_armed_) {
    // First ID: draw the random backoff and go silent (spec 1.2 mandatory
    // backoff of 0..1023 slots before listening for the second ID).
    backoff_armed_ = true;
    in_backoff_ = true;
    inquiry_first_hit_freq_ = scan_freq_;
    ++stats_.backoffs;
    radio_.disable_rx();
    enter_state(LcState::kInquiryResponse);
    const std::uint64_t slots =
        env().draw_uniform(0, config_.inquiry_backoff_max_slots);
    defer(kSlotDuration * slots, kBackoffEnd);
    return;
  }
  // Second ID after backoff: answer with our FHS 625 us after its start.
  const int f_hit = scan_freq_;
  backoff_armed_ = false;
  radio_.disable_rx();
  const SimTime fhs_at = r.packet_start + kSlotDuration;
  const SimTime delay =
      fhs_at > env().now() ? fhs_at - env().now() : SimTime::zero();
  defer(delay, kSendInquiryFhs, static_cast<std::uint64_t>(f_hit));
}

void LinkController::send_inquiry_fhs(SimTime /*now*/, int hit_freq) {
  if (radio_.tx_busy()) return;
  FhsPayload fhs;
  fhs.addr = addr_;
  fhs.clk27_2 = clock_.clkn() >> 2;
  fhs.lt_addr = 0;  // not assigned during inquiry
  PacketHeader h;
  h.type = PacketType::kFhs;
  ++stats_.fhs_tx;
  transmit_packet(h, fhs.to_bytes(), kGiacLap, kDefaultCheckInit,
                  std::nullopt, respmap(hit_freq, 0));
  // Return to scanning once the FHS is out (366 us).
  defer(air_time(PacketType::kFhs, 0), kInquiryFhsDone);
}

// ---------------------------------------------------------------------------
// Page (prospective master)
// ---------------------------------------------------------------------------

void LinkController::page_tick() {
  if (slots_in_state() >= config_.page_timeout_slots) {
    radio_.disable_rx();
    enter_state(LcState::kStandby);
    if (callbacks_.page_complete) callbacks_.page_complete(false);
    return;
  }
  const std::uint32_t clke = (clock_.clkn() + page_clkn_offset_) & kClockMask;
  const int koffset =
      (ticks_in_state_ / (32 * config_.train_repeats)) % 2 == 0 ? kTrainA
                                                                : kTrainB;
  const int half = static_cast<int>(clke & 1u);
  if (((clke >> 1) & 1u) == 0) {
    if (receiver_.assembling() || radio_.tx_busy()) return;
    radio_.disable_rx();
    HopInput in;
    in.address = page_target_.hop_address();
    in.clock = clke;
    in.mode = HopMode::kPage;
    in.koffset = koffset;
    const int f = hop_frequency(in);
    last_tx_freq_[half] = f;
    transmit_id(page_target_.lap(), f);
  } else {
    if (receiver_.assembling()) return;
    const int src = last_tx_freq_[half];
    if (src < 0) return;
    window_src_freq_ = src;
    open_rx_window(respmap(src, 0), kHalfSlot - kWindowSlack);
  }
}

void LinkController::page_on_result(const Receiver::Result& r) {
  if (!r.is_id) return;
  ++stats_.id_rx;
  if (state_ == LcState::kPage) {
    // The slave answered one of our page IDs: enter master response and
    // send the FHS at our next even-slot boundary (CLKN1:0 == 00), which
    // also hands the slave our exact clock phase.
    page_hit_freq_ = window_src_freq_;
    response_retries_ = 0;
    radio_.disable_rx();
    enter_state(LcState::kMasterResponse);
    return;
  }
  // kMasterResponse: this ID is the slave's acknowledgement of our FHS.
  const auto lt = piconet_.add_slave(page_target_);
  if (!lt) {  // piconet full
    enter_state(LcState::kStandby);
    if (callbacks_.page_complete) callbacks_.page_complete(false);
    return;
  }
  SlaveLink* link = piconet_.find(*lt);
  link->t_poll_slots = config_.t_poll_slots;
  link->last_addressed_clk = clock_.clkn();
  pending_first_poll_lt_ = *lt;
  radio_.disable_rx();
  enter_state(LcState::kConnectionMaster);
  arm_receiver(addr_.lap(), addr_.uap(), std::nullopt,
               Receiver::Expect::kFull);
}

void LinkController::master_response_tick() {
  const std::uint32_t clkn = clock_.clkn();
  if ((clkn & 3u) != 0) return;  // wait for an even-slot boundary
  if (radio_.tx_busy() || receiver_.assembling()) return;
  if (response_retries_ >= config_.max_response_retries) {
    if (config_.abort_page_on_dialogue_failure) {
      // The paper's model treats a collapsed response dialogue as fatal:
      // the page phase ends unsuccessfully (this is what makes paging
      // "impossible" at high BER in Fig. 8).
      radio_.disable_rx();
      piconet_.remove_slave(piconet_.find(page_target_) != nullptr
                                ? piconet_.find(page_target_)->lt_addr
                                : 0);
      enter_state(LcState::kStandby);
      if (callbacks_.page_complete) callbacks_.page_complete(false);
      return;
    }
    // Spec-like behaviour: resume paging (the page timeout keeps
    // counting from the original enable_page call).
    enter_state(LcState::kPage);
    arm_receiver(page_target_.lap(), page_target_.uap(), std::nullopt,
                 Receiver::Expect::kIdOnly);
    return;
  }
  ++response_retries_;
  master_send_page_fhs();
}

void LinkController::master_send_page_fhs() {
  radio_.disable_rx();
  // Reserve the LT_ADDR now so the FHS can announce it (idempotent).
  const auto lt = piconet_.add_slave(page_target_);
  if (!lt) {
    enter_state(LcState::kStandby);
    if (callbacks_.page_complete) callbacks_.page_complete(false);
    return;
  }
  // Undo the provisional admission until the slave acknowledges.
  piconet_.remove_slave(*lt);

  FhsPayload fhs;
  fhs.addr = addr_;
  fhs.clk27_2 = clock_.clkn() >> 2;
  fhs.lt_addr = *lt;
  PacketHeader h;
  h.type = PacketType::kFhs;
  ++stats_.fhs_tx;
  fhs_clk_at_tx_ = clock_.clkn();
  transmit_packet(h, fhs.to_bytes(), page_target_.lap(), page_target_.uap(),
                  std::nullopt, respmap(page_hit_freq_, 1));
  // The slave's ID acknowledgement arrives 625 us after the FHS start;
  // open the window a few microseconds early to absorb timing fuzz.
  defer(kSlotDuration - SimTime::us(5), kMasterFhsWindow);
}

// ---------------------------------------------------------------------------
// Page scan / slave response (prospective slave)
// ---------------------------------------------------------------------------

void LinkController::page_scan_tick() {
  if (radio_.tx_busy()) return;
  HopInput in;
  in.address = addr_.hop_address();
  in.clock = clock_.clkn();
  in.mode = HopMode::kPageScan;
  const int f = hop_frequency(in);
  if (!radio_.rx_enabled()) {
    radio_.enable_rx(f);
    scan_freq_ = f;
  } else if (f != scan_freq_ && !receiver_.assembling()) {
    radio_.retune_rx(f);
    scan_freq_ = f;
  }
}

void LinkController::page_scan_on_result(const Receiver::Result& r) {
  if (state_ == LcState::kPageScan) {
    if (!r.is_id) return;
    ++stats_.id_rx;
    // Answer with our ID 625 us after the page ID started, then wait for
    // the master's FHS on the next response frequency.
    page_hit_freq_ = scan_freq_;
    radio_.disable_rx();
    enter_state(LcState::kSlaveResponse);
    const SimTime reply_at = r.packet_start + kSlotDuration;
    const SimTime delay =
        reply_at > env().now() ? reply_at - env().now() : SimTime::zero();
    defer(delay, kSlaveIdReply);
    // Abort the dialogue if the master goes silent.
    defer(kSlotDuration * (4u * (config_.max_response_retries + 2u)),
          kSlaveDialogueTimeout);
    return;
  }
  // kSlaveResponse: expecting the master's FHS.
  if (!r.header_ok || r.header.type != PacketType::kFhs || !r.payload_ok) {
    return;  // keep listening; the master retries
  }
  ++stats_.fhs_rx;
  slave_ack_page_fhs(r);
}

void LinkController::slave_ack_page_fhs(const Receiver::Result& r) {
  const FhsPayload fhs = FhsPayload::from_bytes(r.payload_body);
  master_addr_ = fhs.addr;
  own_lt_addr_ = fhs.lt_addr;
  // The FHS is transmitted at a master even-slot boundary; its start time
  // anchors our copy of the master slot grid and its payload carries the
  // clock value at that instant.
  grid_anchor_ = r.packet_start;
  clk_at_anchor_ = (fhs.clk27_2 << 2) & kClockMask;
  radio_.disable_rx();
  const SimTime ack_at = r.packet_start + kSlotDuration;
  const SimTime delay =
      ack_at > env().now() ? ack_at - env().now() : SimTime::zero();
  defer(delay, kSlaveAckId);
}

// ---------------------------------------------------------------------------
// Connection: master role
// ---------------------------------------------------------------------------

void LinkController::master_tick() {
  const std::uint32_t clk = clock_.clkn();
  if ((clk & 3u) != 0) return;  // act at even-slot starts only
  if (radio_.tx_busy() || receiver_.assembling()) return;
  // Hold expiry bookkeeping (wrap-tolerant "clk >= hold_until" check).
  for (SlaveLink& link : piconet_.slaves()) {
    if (link.mode == LinkMode::kHold &&
        ((clk - link.hold_until_clk) & kClockMask) < (1u << 20)) {
      link.mode = LinkMode::kActive;
      link.needs_resync_poll = true;
    }
  }
  // Park beacon: at beacon instants broadcast to parked slaves (and
  // flush any queued broadcast traffic, e.g. an unpark announcement that
  // must go out even after the master's own link state changed).
  if ((piconet_.has_parked() || !broadcast_queue_.empty()) &&
      (clk / 2) % config_.beacon_interval_slots == 0) {
    master_send_beacon(clk);
    return;
  }
  SlaveLink* target = master_pick_target(clk);
  if (target == nullptr) {
    close_rx_if_idle();
    return;
  }
  master_transmit_to(*target, clk);
}

SlaveLink* LinkController::master_pick_target(std::uint32_t clk) {
  SlaveLink* best = nullptr;
  int best_rank = -1;
  for (SlaveLink& link : piconet_.slaves()) {
    // Mode gates.
    if (link.mode == LinkMode::kPark) continue;
    if (link.mode == LinkMode::kHold) continue;
    if (link.mode == LinkMode::kSniff && !link.in_sniff_window(clk)) continue;

    int rank = -1;
    if (link.needs_resync_poll) {
      rank = 5;  // returning from hold: resynchronise immediately
    } else if (pending_first_poll_lt_ &&
               *pending_first_poll_lt_ == link.lt_addr) {
      rank = 4;  // freshly paged slave: first POLL establishes the link
    } else if (link.in_flight.has_value()) {
      rank = 3;
    } else if (!link.tx_queue.empty()) {
      rank = 2;
    } else if (((clk - link.last_addressed_clk) & kClockMask) >=
               2 * link.t_poll_slots) {
      rank = 1;
    } else if (link.arqn_out) {
      rank = 0;  // deliver a pending ACK opportunistically
    }
    if (rank > best_rank) {
      best_rank = rank;
      best = &link;
    }
  }
  return best;
}

void LinkController::master_transmit_to(SlaveLink& link, std::uint32_t clk) {
  PacketHeader h;
  h.lt_addr = link.lt_addr;
  h.arqn = link.arqn_out;
  std::vector<std::uint8_t> body;

  if (!link.in_flight && !link.tx_queue.empty()) {
    link.in_flight = link.tx_queue.pop();
  }
  if (link.in_flight) {
    h.type = fit_packet_type(config_.data_packet_type,
                             link.in_flight->data.size());
    h.seqn = link.seqn_out;
    body = build_acl_body(h.type, link.in_flight->llid, true,
                          link.in_flight->data);
    ++stats_.data_tx;
    if (link.last_tx_was_retx) {
      ++stats_.retransmissions;
      ++link.retransmissions;
    }
    link.last_tx_was_retx = true;  // until acknowledged
  } else {
    h.type = PacketType::kPoll;
    ++stats_.poll_tx;
  }
  link.arqn_out = false;  // ARQN is consumed by this packet
  link.last_addressed_clk = clk;
  // needs_resync_poll stays set until the slave actually answers; a
  // returning slave listens continuously, so this converges immediately.

  const int freq = connection_freq(clk);
  transmit_packet(h, body, addr_.lap(), addr_.uap(), connection_whiten(clk),
                  freq);
  // Open the response window in the slot following the packet.
  const int slots = slots_occupied(h.type);
  const std::uint32_t clk_resp = (clk + 2u * static_cast<std::uint32_t>(slots)) & kClockMask;
  awaiting_response_lt_ = link.lt_addr;
  defer(kSlotDuration * static_cast<std::uint64_t>(slots), kMasterRxWindow,
        clk_resp);
}

void LinkController::master_send_beacon(std::uint32_t clk) {
  PacketHeader h;
  h.lt_addr = 0;  // broadcast
  std::vector<std::uint8_t> body;
  if (!broadcast_queue_.empty()) {
    const OutboundMessage msg = broadcast_queue_.pop();
    h.type = config_.data_packet_type;
    body = build_acl_body(h.type, msg.llid, true, msg.data);
    ++stats_.data_tx;
  } else {
    h.type = PacketType::kNull;
    ++stats_.null_tx;
  }
  transmit_packet(h, body, addr_.lap(), addr_.uap(), connection_whiten(clk),
                  connection_freq(clk));
  // Broadcast packets solicit no response.
}

void LinkController::master_on_packet(const Receiver::Result& r) {
  defer(SimTime::zero(), kCloseRxIfIdle);
  if (!r.header_ok) return;
  SlaveLink* link = piconet_.find(r.header.lt_addr);
  if (link == nullptr) return;
  link->needs_resync_poll = false;

  // ARQ: the slave's ARQN acknowledges our in-flight packet.
  if (r.header.arqn && link->in_flight) {
    link->in_flight.reset();
    link->seqn_out = !link->seqn_out;
    link->last_tx_was_retx = false;
  }
  if (pending_first_poll_lt_ && *pending_first_poll_lt_ == r.header.lt_addr) {
    pending_first_poll_lt_.reset();
    if (callbacks_.page_complete) callbacks_.page_complete(true);
  }
  if (has_payload(r.header.type) && has_crc(r.header.type)) {
    if (r.payload_ok) {
      link->arqn_out = true;
      if (!link->last_seqn_in || *link->last_seqn_in != r.header.seqn) {
        link->last_seqn_in = r.header.seqn;
        ++stats_.data_rx_ok;
        const ParsedBody parsed = parse_acl_body(r.header.type,
                                                 r.payload_body);
        if (callbacks_.acl_rx) {
          callbacks_.acl_rx(r.header.lt_addr, parsed.header.llid,
                            parsed.user);
        }
      } else {
        ++stats_.duplicates_dropped;
      }
    }
    // On CRC failure arqn_out stays false -> the slave retransmits.
  }
}

// ---------------------------------------------------------------------------
// Connection: slave role
// ---------------------------------------------------------------------------

void LinkController::schedule_slave_slot(SimTime at) {
  const SimTime delay = at > env().now() ? at - env().now() : SimTime::zero();
  defer(delay, kSlaveSlot);
}

void LinkController::slave_slot_action() {
  if (state_ != LcState::kConnectionSlave) return;
  const std::uint32_t clk = piconet_clock();
  const SimTime next = env().now() + kSlotDuration * 2;

  if (radio_.tx_busy() || receiver_.assembling()) {
    schedule_slave_slot(next);
    return;
  }

  bool listen = false;
  SimTime sense = config_.carrier_sense_window;
  switch (my_mode_) {
    case LinkMode::kActive:
      listen = true;
      break;
    case LinkMode::kSniff: {
      const std::uint32_t slot = clk / 2;
      const std::uint32_t phase =
          (slot + my_sniff_interval_ - my_sniff_offset_ % my_sniff_interval_) %
          my_sniff_interval_;
      if (phase < static_cast<std::uint32_t>(my_sniff_attempt_)) {
        listen = true;
        // A sniff attempt keeps the receiver open for the full slot.
        sense = kSlotDuration;
      }
      break;
    }
    case LinkMode::kHold:
      // Wake a couple of slots early: a real slave must re-open its
      // receiver ahead of the nominal instant to absorb the clock
      // uncertainty accumulated while sleeping. This constant sets the
      // resynchronisation cost that positions the hold-vs-active
      // crossover of the paper's Fig. 12 (~120 slots).
      if (((clk + 2 * config_.hold_wake_early_slots - my_hold_until_clk_) &
           kClockMask) < (1u << 20)) {
        my_mode_ = LinkMode::kActive;
        resyncing_ = true;
        listen = true;
      }
      break;
    case LinkMode::kPark: {
      const std::uint32_t slot = clk / 2;
      if (slot % config_.beacon_interval_slots == 0) {
        listen = true;  // beacon window
      }
      break;
    }
  }
  if (resyncing_) {
    listen = true;
    sense = kSlotDuration * 2;  // stay on across the whole slot pair
  }

  if (listen) {
    arm_receiver(master_addr_.lap(), master_addr_.uap(),
                 connection_whiten(clk), Receiver::Expect::kFull);
    open_rx_window(connection_freq(clk), sense);
  }
  schedule_slave_slot(next);
}

void LinkController::slave_on_packet(const Receiver::Result& r) {
  if (!r.header_ok) {
    defer(SimTime::zero(), kCloseRxIfIdle);
    return;
  }
  resyncing_ = false;
  const bool mine = r.header.lt_addr == own_lt_addr_;
  const bool broadcast = r.header.lt_addr == 0;
  if (!mine && !broadcast) {
    defer(SimTime::zero(), kCloseRxIfIdle);
    return;
  }

  // ARQ (only meaningful on packets addressed to us; broadcast traffic
  // carries no acknowledgement and bypasses SEQN duplicate filtering).
  if (mine && r.header.arqn && my_in_flight_) {
    my_in_flight_.reset();
    my_seqn_out_ = !my_seqn_out_;
  }
  if (has_payload(r.header.type) && has_crc(r.header.type) && r.payload_ok) {
    if (broadcast) {
      ++stats_.data_rx_ok;
      const ParsedBody parsed = parse_acl_body(r.header.type, r.payload_body);
      if (callbacks_.acl_rx) {
        callbacks_.acl_rx(0, parsed.header.llid, parsed.user);
      }
    } else {
      my_arqn_out_ = true;
      if (!my_last_seqn_in_ || *my_last_seqn_in_ != r.header.seqn) {
        my_last_seqn_in_ = r.header.seqn;
        ++stats_.data_rx_ok;
        const ParsedBody parsed =
            parse_acl_body(r.header.type, r.payload_body);
        if (callbacks_.acl_rx) {
          callbacks_.acl_rx(r.header.lt_addr, parsed.header.llid,
                            parsed.user);
        }
      } else {
        ++stats_.duplicates_dropped;
      }
    }
  }

  defer(SimTime::zero(), kCloseRxIfIdle);

  // Respond in the slot following the packet (polling discipline): only
  // packets addressed to us solicit a response, and NULL does not.
  if (mine && r.header.type != PacketType::kNull) {
    const int slots = slots_occupied(r.header.type);
    const SimTime respond_at =
        r.packet_start + kSlotDuration * static_cast<std::uint64_t>(slots);
    const std::uint64_t steps = (respond_at - grid_anchor_) / kHalfSlot;
    const std::uint32_t clk_resp =
        (clk_at_anchor_ + static_cast<std::uint32_t>(steps)) & kClockMask;
    const SimTime delay = respond_at > env().now()
                              ? respond_at - env().now()
                              : SimTime::zero();
    defer(delay, kSlaveRespond, clk_resp);
  }
}

void LinkController::slave_respond(std::uint32_t clk_resp) {
  if (state_ != LcState::kConnectionSlave || radio_.tx_busy()) return;
  PacketHeader h;
  h.lt_addr = own_lt_addr_;
  h.arqn = my_arqn_out_;
  std::vector<std::uint8_t> body;
  if (!my_in_flight_ && !my_tx_queue_.empty()) {
    my_in_flight_ = my_tx_queue_.pop();
  }
  if (my_in_flight_) {
    h.type = fit_packet_type(config_.data_packet_type,
                             my_in_flight_->data.size());
    h.seqn = my_seqn_out_;
    body = build_acl_body(h.type, my_in_flight_->llid, true,
                          my_in_flight_->data);
    ++stats_.data_tx;
  } else {
    h.type = PacketType::kNull;
    ++stats_.null_tx;
  }
  my_arqn_out_ = false;
  transmit_packet(h, body, master_addr_.lap(), master_addr_.uap(),
                  connection_whiten(clk_resp), connection_freq(clk_resp));
  if (!first_response_sent_) {
    first_response_sent_ = true;
    if (callbacks_.connected_as_slave) {
      callbacks_.connected_as_slave(own_lt_addr_);
    }
  }
}

// ---------------------------------------------------------------------------
// Data and low-power mode services
// ---------------------------------------------------------------------------

bool LinkController::send_acl(std::uint8_t lt_addr, std::uint8_t llid,
                              std::vector<std::uint8_t> data) {
  if (data.size() > max_user_bytes(PacketType::kDh5)) return false;
  OutboundMessage msg;
  msg.llid = llid;
  msg.data = std::move(data);
  if (state_ == LcState::kConnectionMaster) {
    if (lt_addr == 0) return broadcast_queue_.push(std::move(msg));
    SlaveLink* link = piconet_.find(lt_addr);
    if (link == nullptr) return false;
    return link->tx_queue.push(std::move(msg));
  }
  if (state_ == LcState::kConnectionSlave && lt_addr == own_lt_addr_) {
    return my_tx_queue_.push(std::move(msg));
  }
  return false;
}

namespace {

/// Sniff anchors must land on master-to-slave (even) slots: round the
/// interval up and the offset down to the even-slot grid.
std::uint32_t quantize_even(std::uint32_t v) { return v & ~1u; }


}  // namespace

void LinkController::master_set_sniff(std::uint8_t lt_addr,
                                      std::uint32_t interval_slots,
                                      std::uint32_t offset_slots,
                                      int attempt_slots) {
  if (SlaveLink* link = piconet_.find(lt_addr)) {
    link->mode = LinkMode::kSniff;
    link->sniff_interval_slots = std::max(2u, interval_slots + (interval_slots & 1u));
    link->sniff_offset_slots = quantize_even(offset_slots);
    link->sniff_attempt_slots = attempt_slots;
  }
}

void LinkController::master_clear_sniff(std::uint8_t lt_addr) {
  if (SlaveLink* link = piconet_.find(lt_addr)) {
    link->mode = LinkMode::kActive;
  }
}

void LinkController::master_set_hold(std::uint8_t lt_addr,
                                     std::uint32_t hold_slots) {
  if (SlaveLink* link = piconet_.find(lt_addr)) {
    link->mode = LinkMode::kHold;
    link->hold_until_clk =
        (clock_.clkn() + 2 * hold_slots) & kClockMask;
  }
}

void LinkController::master_set_park(std::uint8_t lt_addr,
                                     std::uint8_t pm_addr) {
  if (SlaveLink* link = piconet_.find(lt_addr)) {
    link->mode = LinkMode::kPark;
    link->pm_addr = pm_addr;
  }
}

void LinkController::master_unpark(std::uint8_t pm_addr) {
  for (SlaveLink& link : piconet_.slaves()) {
    if (link.mode == LinkMode::kPark && link.pm_addr == pm_addr) {
      link.mode = LinkMode::kActive;
      link.needs_resync_poll = true;
    }
  }
}

void LinkController::slave_set_sniff(std::uint32_t interval_slots,
                                     std::uint32_t offset_slots,
                                     int attempt_slots) {
  my_mode_ = LinkMode::kSniff;
  my_sniff_interval_ = std::max(2u, interval_slots + (interval_slots & 1u));
  my_sniff_offset_ = quantize_even(offset_slots);
  my_sniff_attempt_ = attempt_slots;
}

void LinkController::slave_clear_sniff() { my_mode_ = LinkMode::kActive; }

void LinkController::slave_set_hold(std::uint32_t hold_slots) {
  my_mode_ = LinkMode::kHold;
  my_hold_until_clk_ = (piconet_clock() + 2 * hold_slots) & kClockMask;
  radio_.disable_rx();
}

void LinkController::slave_set_park(std::uint8_t pm_addr) {
  my_mode_ = LinkMode::kPark;
  my_pm_addr_ = pm_addr;
  radio_.disable_rx();
}

void LinkController::slave_unpark(std::uint8_t lt_addr) {
  own_lt_addr_ = lt_addr;
  my_mode_ = LinkMode::kActive;
}

// ---------------------------------------------------------------------------
// Checkpointing
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint32_t kLcTag = sim::snapshot_tag("LC  ");

void save_opt_u8(sim::SnapshotWriter& w, const std::optional<std::uint8_t>& v) {
  w.b(v.has_value());
  w.u8(v.value_or(0));
}
std::optional<std::uint8_t> load_opt_u8(sim::SnapshotReader& r) {
  const bool have = r.b();
  const std::uint8_t v = r.u8();
  return have ? std::optional<std::uint8_t>(v) : std::nullopt;
}

void save_opt_bool(sim::SnapshotWriter& w, const std::optional<bool>& v) {
  w.b(v.has_value());
  w.b(v.value_or(false));
}
std::optional<bool> load_opt_bool(sim::SnapshotReader& r) {
  const bool have = r.b();
  const bool v = r.b();
  return have ? std::optional<bool>(v) : std::nullopt;
}

void save_opt_msg(sim::SnapshotWriter& w,
                  const std::optional<OutboundMessage>& v) {
  w.b(v.has_value());
  if (v) {
    w.u8(v->llid);
    w.byte_vec(v->data);
  }
}
std::optional<OutboundMessage> load_opt_msg(sim::SnapshotReader& r) {
  if (!r.b()) return std::nullopt;
  OutboundMessage m;
  m.llid = r.u8();
  m.data = r.byte_vec();
  return m;
}

}  // namespace

void LinkController::save_state(sim::SnapshotWriter& w) const {
  w.begin_section(kLcTag);
  // Config (mutable via config(); experiments may tweak it mid-setup).
  w.u32(config_.inquiry_timeout_slots);
  w.u32(config_.page_timeout_slots);
  w.time(config_.carrier_sense_window);
  w.u32(config_.inquiry_backoff_max_slots);
  w.u32(config_.inquiry_scan_window_slots);
  w.u32(config_.inquiry_scan_interval_slots);
  w.b(config_.interlaced_inquiry_scan);
  w.u32(config_.t_poll_slots);
  w.u32(config_.train_repeats);
  w.u32(static_cast<std::uint32_t>(config_.max_response_retries));
  w.b(config_.abort_page_on_dialogue_failure);
  w.b(config_.whitening);
  w.u8(static_cast<std::uint8_t>(config_.data_packet_type));
  w.u64(config_.inquiry_target_responses);
  w.u32(config_.beacon_interval_slots);
  w.u32(config_.hold_wake_early_slots);
  // State machine.
  w.u8(static_cast<std::uint8_t>(state_));
  w.u32(ticks_in_state_);
  // Master context: piconet membership and per-link state.
  sim::save_seq(w, piconet_.slaves().size(), [&](std::size_t i) {
    const SlaveLink& l = piconet_.slaves()[i];
    w.u64(l.addr.raw());
    w.u8(l.lt_addr);
    w.u8(static_cast<std::uint8_t>(l.mode));
    w.b(l.seqn_out);
    w.b(l.arqn_out);
    save_opt_bool(w, l.last_seqn_in);
    save_opt_msg(w, l.in_flight);
    w.b(l.last_tx_was_retx);
    w.u64(l.retransmissions);
    l.tx_queue.save_state(w);
    w.u32(l.last_addressed_clk);
    w.u32(l.t_poll_slots);
    w.u32(l.sniff_interval_slots);
    w.u32(l.sniff_offset_slots);
    w.u32(static_cast<std::uint32_t>(l.sniff_attempt_slots));
    w.u32(l.hold_until_clk);
    w.b(l.needs_resync_poll);
    w.u8(l.pm_addr);
  });
  w.u64(master_addr_.raw());
  save_opt_u8(w, pending_first_poll_lt_);
  save_opt_u8(w, awaiting_response_lt_);
  broadcast_queue_.save_state(w);
  // Slave context.
  w.u8(own_lt_addr_);
  w.u8(static_cast<std::uint8_t>(my_mode_));
  w.u32(my_sniff_interval_);
  w.u32(my_sniff_offset_);
  w.u32(static_cast<std::uint32_t>(my_sniff_attempt_));
  w.u32(my_hold_until_clk_);
  w.b(resyncing_);
  w.u8(my_pm_addr_);
  w.time(grid_anchor_);
  w.u32(clk_at_anchor_);
  my_tx_queue_.save_state(w);
  w.b(my_seqn_out_);
  w.b(my_arqn_out_);
  save_opt_bool(w, my_last_seqn_in_);
  save_opt_msg(w, my_in_flight_);
  w.b(respond_at_clk_.has_value());
  w.u32(respond_at_clk_.value_or(0));
  w.b(first_response_sent_);
  // Inquiry context.
  sim::save_seq(w, discovered_.size(), [&](std::size_t i) {
    const DiscoveredDevice& d = discovered_[i];
    w.u64(d.addr.raw());
    w.u32(d.clkn_offset);
    w.time(d.found_at);
  });
  w.u32(static_cast<std::uint32_t>(last_tx_freq_[0]));
  w.u32(static_cast<std::uint32_t>(last_tx_freq_[1]));
  w.u32(static_cast<std::uint32_t>(window_src_freq_));
  w.b(backoff_armed_);
  w.b(in_backoff_);
  w.u32(static_cast<std::uint32_t>(scan_freq_));
  w.u32(static_cast<std::uint32_t>(inquiry_first_hit_freq_));
  // Page context.
  w.u64(page_target_.raw());
  w.u32(page_clkn_offset_);
  w.u32(static_cast<std::uint32_t>(page_hit_freq_));
  w.u32(static_cast<std::uint32_t>(response_n_));
  w.u32(static_cast<std::uint32_t>(response_retries_));
  w.u32(fhs_clk_at_tx_);
  // Counters.
  w.u64(stats_.id_tx);
  w.u64(stats_.id_rx);
  w.u64(stats_.fhs_tx);
  w.u64(stats_.fhs_rx);
  w.u64(stats_.data_tx);
  w.u64(stats_.data_rx_ok);
  w.u64(stats_.poll_tx);
  w.u64(stats_.null_tx);
  w.u64(stats_.retransmissions);
  w.u64(stats_.duplicates_dropped);
  w.u64(stats_.backoffs);
  w.end_section();
}

void LinkController::restore_state(sim::SnapshotReader& r) {
  r.enter_section(kLcTag);
  config_.inquiry_timeout_slots = r.u32();
  config_.page_timeout_slots = r.u32();
  config_.carrier_sense_window = r.time();
  config_.inquiry_backoff_max_slots = r.u32();
  config_.inquiry_scan_window_slots = r.u32();
  config_.inquiry_scan_interval_slots = r.u32();
  config_.interlaced_inquiry_scan = r.b();
  config_.t_poll_slots = r.u32();
  config_.train_repeats = r.u32();
  config_.max_response_retries = static_cast<int>(r.u32());
  config_.abort_page_on_dialogue_failure = r.b();
  config_.whitening = r.b();
  config_.data_packet_type = static_cast<PacketType>(r.u8());
  config_.inquiry_target_responses = static_cast<std::size_t>(r.u64());
  config_.beacon_interval_slots = r.u32();
  config_.hold_wake_early_slots = r.u32();
  state_ = static_cast<LcState>(r.u8());
  ticks_in_state_ = r.u32();
  piconet_.slaves().clear();
  sim::restore_seq(r, [&](std::size_t) {
    SlaveLink l;
    l.addr = BdAddr::from_raw(r.u64());
    l.lt_addr = r.u8();
    l.mode = static_cast<LinkMode>(r.u8());
    l.seqn_out = r.b();
    l.arqn_out = r.b();
    l.last_seqn_in = load_opt_bool(r);
    l.in_flight = load_opt_msg(r);
    l.last_tx_was_retx = r.b();
    l.retransmissions = r.u64();
    l.tx_queue.restore_state(r);
    l.last_addressed_clk = r.u32();
    l.t_poll_slots = r.u32();
    l.sniff_interval_slots = r.u32();
    l.sniff_offset_slots = r.u32();
    l.sniff_attempt_slots = static_cast<int>(r.u32());
    l.hold_until_clk = r.u32();
    l.needs_resync_poll = r.b();
    l.pm_addr = r.u8();
    piconet_.slaves().push_back(std::move(l));
  });
  master_addr_ = BdAddr::from_raw(r.u64());
  pending_first_poll_lt_ = load_opt_u8(r);
  awaiting_response_lt_ = load_opt_u8(r);
  broadcast_queue_.restore_state(r);
  own_lt_addr_ = r.u8();
  my_mode_ = static_cast<LinkMode>(r.u8());
  my_sniff_interval_ = r.u32();
  my_sniff_offset_ = r.u32();
  my_sniff_attempt_ = static_cast<int>(r.u32());
  my_hold_until_clk_ = r.u32();
  resyncing_ = r.b();
  my_pm_addr_ = r.u8();
  grid_anchor_ = r.time();
  clk_at_anchor_ = r.u32();
  my_tx_queue_.restore_state(r);
  my_seqn_out_ = r.b();
  my_arqn_out_ = r.b();
  my_last_seqn_in_ = load_opt_bool(r);
  my_in_flight_ = load_opt_msg(r);
  const bool have_respond_clk = r.b();
  const std::uint32_t respond_clk = r.u32();
  respond_at_clk_ = have_respond_clk ? std::optional<std::uint32_t>(respond_clk)
                                     : std::nullopt;
  first_response_sent_ = r.b();
  discovered_.clear();
  sim::restore_seq(r, [&](std::size_t) {
    DiscoveredDevice d;
    d.addr = BdAddr::from_raw(r.u64());
    d.clkn_offset = r.u32();
    d.found_at = r.time();
    discovered_.push_back(d);
  });
  last_tx_freq_[0] = static_cast<int>(r.u32());
  last_tx_freq_[1] = static_cast<int>(r.u32());
  window_src_freq_ = static_cast<int>(r.u32());
  backoff_armed_ = r.b();
  in_backoff_ = r.b();
  scan_freq_ = static_cast<int>(r.u32());
  inquiry_first_hit_freq_ = static_cast<int>(r.u32());
  page_target_ = BdAddr::from_raw(r.u64());
  page_clkn_offset_ = r.u32();
  page_hit_freq_ = static_cast<int>(r.u32());
  response_n_ = static_cast<int>(r.u32());
  response_retries_ = static_cast<int>(r.u32());
  fhs_clk_at_tx_ = r.u32();
  stats_.id_tx = r.u64();
  stats_.id_rx = r.u64();
  stats_.fhs_tx = r.u64();
  stats_.fhs_rx = r.u64();
  stats_.data_tx = r.u64();
  stats_.data_rx_ok = r.u64();
  stats_.poll_tx = r.u64();
  stats_.null_tx = r.u64();
  stats_.retransmissions = r.u64();
  stats_.duplicates_dropped = r.u64();
  stats_.backoffs = r.u64();
  r.leave_section();
}

}  // namespace btsc::baseband
