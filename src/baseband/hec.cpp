#include "baseband/hec.hpp"

namespace btsc::baseband {
namespace {

// g(D) = D^8 + D^7 + D^5 + D^2 + D + 1; the low eight coefficients
// (D^7..D^0) are 1010'0111b.
constexpr std::uint8_t kHecPolyLow = 0xA7;

std::uint8_t feed(std::uint8_t reg, bool bit) {
  const bool feedback = ((reg >> 7) & 1u) != static_cast<std::uint8_t>(bit);
  reg = static_cast<std::uint8_t>(reg << 1);
  if (feedback) reg ^= kHecPolyLow;
  return reg;
}

}  // namespace

std::uint8_t hec_compute(const sim::BitVector& bits, std::uint8_t init) {
  std::uint8_t reg = init;
  for (std::size_t i = 0; i < bits.size(); ++i) reg = feed(reg, bits[i]);
  return reg;
}

std::uint8_t hec_compute10(std::uint16_t header10, std::uint8_t init) {
  std::uint8_t reg = init;
  for (unsigned i = 0; i < 10; ++i) reg = feed(reg, (header10 >> i) & 1u);
  return reg;
}

bool hec_check(const sim::BitVector& bits, std::uint8_t init,
               std::uint8_t hec) {
  return hec_compute(bits, init) == hec;
}

}  // namespace btsc::baseband
