#include "baseband/hec.hpp"

#include <array>

#include "baseband/bit_reverse.hpp"

namespace btsc::baseband {
namespace {

// g(D) = D^8 + D^7 + D^5 + D^2 + D + 1; the low eight coefficients
// (D^7..D^0) are 1010'0111b.
constexpr std::uint8_t kHecPolyLow = 0xA7;

/// Single-bit reference step (oracle for the byte table and sub-byte
/// tails).
constexpr std::uint8_t feed(std::uint8_t reg, bool bit) {
  const bool feedback = ((reg >> 7) & 1u) != static_cast<std::uint8_t>(bit);
  reg = static_cast<std::uint8_t>(reg << 1);
  if (feedback) reg ^= kHecPolyLow;
  return reg;
}

/// Byte-at-a-time update for the 8-bit register: reg' = T[reg ^
/// rev8(byte)] with T[j] = eight zero-input steps from j. The data byte
/// is bit-reversed into the index because bytes transmit LSB first.
constexpr std::array<std::uint8_t, 256> make_table() {
  std::array<std::uint8_t, 256> t{};
  for (unsigned b = 0; b < 256; ++b) {
    auto reg = static_cast<std::uint8_t>(b);
    for (unsigned i = 0; i < 8; ++i) reg = feed(reg, false);
    t[b] = reg;
  }
  return t;
}

constexpr std::array<std::uint8_t, 256> kTable = make_table();

inline std::uint8_t feed_byte(std::uint8_t reg, std::uint8_t byte) {
  return kTable[static_cast<std::uint8_t>(reg ^ kRev8[byte])];
}

}  // namespace

std::uint8_t hec_compute(const sim::BitVector& bits, std::uint8_t init) {
  std::uint8_t reg = init;
  const std::size_t n = bits.size();
  std::size_t pos = 0;
  for (; pos + 8 <= n; pos += 8) {
    reg = feed_byte(reg,
                    static_cast<std::uint8_t>(bits.extract_word(pos, 8)));
  }
  for (; pos < n; ++pos) reg = feed(reg, bits[pos]);
  return reg;
}

std::uint8_t hec_compute10(std::uint16_t header10, std::uint8_t init) {
  std::uint8_t reg = feed_byte(init, static_cast<std::uint8_t>(header10));
  for (unsigned i = 8; i < 10; ++i) reg = feed(reg, (header10 >> i) & 1u);
  return reg;
}

bool hec_check(const sim::BitVector& bits, std::uint8_t init,
               std::uint8_t hec) {
  return hec_compute(bits, init) == hec;
}

}  // namespace btsc::baseband
