// Data whitening (scrambling).
//
// Before transmission, header and payload are XORed with the output of a
// 7-bit LFSR with polynomial g(D) = D^7 + D^4 + 1, initialised from the
// master clock bits CLK[6:1] with the register MSB forced to 1. The same
// operation descrambles, so whitening is an involution for a given clock.
//
// The word path precomputes, for every 7-bit register state, the next 64
// output bits and the register state 64 steps later (a 2 KiB table built
// once from the LFSR definition itself). apply() then XORs whole 64-bit
// keystream words onto the packed BitVector instead of stepping the
// register once per bit.
#pragma once

#include <array>
#include <cstdint>

#include "sim/bitvector.hpp"

namespace btsc::baseband {

class Whitener {
 public:
  /// `init7` is the 7-bit register seed. Use from_clock() for the
  /// spec-defined initialisation.
  explicit Whitener(std::uint8_t init7) : reg_(init7 & 0x7Fu) {}

  /// Spec initialisation: register = 1 (MSB) concatenated with CLK[6:1].
  static Whitener from_clock(std::uint32_t clk) {
    return Whitener(
        static_cast<std::uint8_t>(0x40u | ((clk >> 1) & 0x3Fu)));
  }

  /// Next scrambling bit.
  bool next() {
    const bool out = (reg_ >> 6) & 1u;
    const bool fb = out != static_cast<bool>((reg_ >> 3) & 1u);
    reg_ = static_cast<std::uint8_t>(((reg_ << 1) & 0x7Fu) | fb);
    return out;
  }

  /// Returns the next `nbits` (<= 64) of the keystream, LSB-first (bit i
  /// of the result whitens the i-th upcoming air bit), advancing the
  /// register by `nbits` steps.
  std::uint64_t keystream(unsigned nbits) {
    const Step& s = steps()[reg_];
    if (nbits == 64) {
      reg_ = s.next;
      return s.stream;
    }
    const std::uint64_t out = s.stream & ((1ull << nbits) - 1);
    for (unsigned i = 0; i < nbits; ++i) next();
    return out;
  }

  /// XORs the stream onto `bits` in place, starting from the current
  /// register state, one 64-bit keystream word at a time.
  void apply(sim::BitVector& bits) {
    std::size_t pos = 0;
    const std::size_t n = bits.size();
    while (pos < n) {
      const unsigned chunk =
          static_cast<unsigned>(n - pos < 64 ? n - pos : 64);
      bits.xor_word(pos, keystream(chunk), chunk);
      pos += chunk;
    }
  }

  std::uint8_t state() const { return reg_; }

 private:
  struct Step {
    std::uint64_t stream = 0;  // 64 output bits, LSB first
    std::uint8_t next = 0;     // register state 64 steps later
  };

  /// state -> (64 keystream bits, state after 64 steps); built once from
  /// the single-step definition above.
  static const std::array<Step, 128>& steps() {
    static const std::array<Step, 128> table = [] {
      std::array<Step, 128> t{};
      for (unsigned s = 0; s < 128; ++s) {
        Whitener w(static_cast<std::uint8_t>(s));
        for (unsigned i = 0; i < 64; ++i) {
          t[s].stream |= static_cast<std::uint64_t>(w.next()) << i;
        }
        t[s].next = w.state();
      }
      return t;
    }();
    return table;
  }

  std::uint8_t reg_;
};

}  // namespace btsc::baseband
