// Data whitening (scrambling).
//
// Before transmission, header and payload are XORed with the output of a
// 7-bit LFSR with polynomial g(D) = D^7 + D^4 + 1, initialised from the
// master clock bits CLK[6:1] with the register MSB forced to 1. The same
// operation descrambles, so whitening is an involution for a given clock.
#pragma once

#include <cstdint>

#include "sim/bitvector.hpp"

namespace btsc::baseband {

class Whitener {
 public:
  /// `init7` is the 7-bit register seed. Use from_clock() for the
  /// spec-defined initialisation.
  explicit Whitener(std::uint8_t init7) : reg_(init7 & 0x7Fu) {}

  /// Spec initialisation: register = 1 (MSB) concatenated with CLK[6:1].
  static Whitener from_clock(std::uint32_t clk) {
    return Whitener(
        static_cast<std::uint8_t>(0x40u | ((clk >> 1) & 0x3Fu)));
  }

  /// Next scrambling bit.
  bool next() {
    const bool out = (reg_ >> 6) & 1u;
    const bool fb = out != static_cast<bool>((reg_ >> 3) & 1u);
    reg_ = static_cast<std::uint8_t>(((reg_ << 1) & 0x7Fu) | fb);
    return out;
  }

  /// XORs the stream onto `bits` in place, starting from the current
  /// register state.
  void apply(sim::BitVector& bits) {
    for (std::size_t i = 0; i < bits.size(); ++i) {
      if (next()) bits.flip(i);
    }
  }

  std::uint8_t state() const { return reg_; }

 private:
  std::uint8_t reg_;
};

}  // namespace btsc::baseband
