#include "baseband/address.hpp"

#include <cstdio>

namespace btsc::baseband {

std::string BdAddr::to_string() const {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%04X:%02X:%06X", nap_, uap_, lap_);
  return buf;
}

}  // namespace btsc::baseband
