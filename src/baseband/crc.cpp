#include "baseband/crc.hpp"

namespace btsc::baseband {
namespace {

constexpr std::uint16_t kCrcPolyLow = 0x1021;  // D^12 + D^5 + 1 below D^16

std::uint16_t feed(std::uint16_t reg, bool bit) {
  const bool feedback = ((reg >> 15) & 1u) != static_cast<std::uint16_t>(bit);
  reg = static_cast<std::uint16_t>(reg << 1);
  if (feedback) reg ^= kCrcPolyLow;
  return reg;
}

}  // namespace

std::uint16_t crc16_compute(const sim::BitVector& bits, std::uint8_t uap) {
  auto reg = static_cast<std::uint16_t>(uap << 8);
  for (std::size_t i = 0; i < bits.size(); ++i) reg = feed(reg, bits[i]);
  return reg;
}

std::uint16_t crc16_compute(const std::vector<std::uint8_t>& bytes,
                            std::uint8_t uap) {
  auto reg = static_cast<std::uint16_t>(uap << 8);
  for (std::uint8_t byte : bytes) {
    for (unsigned i = 0; i < 8; ++i) reg = feed(reg, (byte >> i) & 1u);
  }
  return reg;
}

bool crc16_check(const std::vector<std::uint8_t>& bytes, std::uint8_t uap,
                 std::uint16_t crc) {
  return crc16_compute(bytes, uap) == crc;
}

}  // namespace btsc::baseband
