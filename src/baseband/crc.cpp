#include "baseband/crc.hpp"

#include <array>

#include "baseband/bit_reverse.hpp"

namespace btsc::baseband {
namespace {

constexpr std::uint16_t kCrcPolyLow = 0x1021;  // D^12 + D^5 + 1 below D^16

/// Single-bit reference step (kept as the oracle for the byte table and
/// for sub-byte tails): feeds one air bit into the MSB-first register.
constexpr std::uint16_t feed(std::uint16_t reg, bool bit) {
  const bool feedback = ((reg >> 15) & 1u) != static_cast<std::uint16_t>(bit);
  reg = static_cast<std::uint16_t>(reg << 1);
  if (feedback) reg ^= kCrcPolyLow;
  return reg;
}

/// Byte-at-a-time update: reg' = (reg << 8) ^ T[(reg >> 8) ^ rev8(byte)]
/// with T[j] = the register after running 8 zero-input steps from
/// j << 8 (the standard MSB-first table identity). Bluetooth transmits
/// each byte LSB first, so the data byte is bit-reversed into the index.
constexpr std::array<std::uint16_t, 256> make_table() {
  std::array<std::uint16_t, 256> t{};
  for (unsigned b = 0; b < 256; ++b) {
    std::uint16_t reg = static_cast<std::uint16_t>(b << 8);
    for (unsigned i = 0; i < 8; ++i) reg = feed(reg, false);
    t[b] = reg;
  }
  return t;
}

constexpr std::array<std::uint16_t, 256> kTable = make_table();

/// Feeds one data byte (transmitted LSB first) in a single table step.
inline std::uint16_t feed_byte(std::uint16_t reg, std::uint8_t byte) {
  const std::uint8_t idx =
      static_cast<std::uint8_t>((reg >> 8) ^ kRev8[byte]);
  return static_cast<std::uint16_t>((reg << 8) ^ kTable[idx]);
}

}  // namespace

std::uint16_t crc16_compute(const sim::BitVector& bits, std::uint8_t uap) {
  auto reg = static_cast<std::uint16_t>(uap << 8);
  const std::size_t n = bits.size();
  std::size_t pos = 0;
  for (; pos + 8 <= n; pos += 8) {
    reg = feed_byte(reg,
                    static_cast<std::uint8_t>(bits.extract_word(pos, 8)));
  }
  for (; pos < n; ++pos) reg = feed(reg, bits[pos]);
  return reg;
}

std::uint16_t crc16_compute(const std::vector<std::uint8_t>& bytes,
                            std::uint8_t uap) {
  auto reg = static_cast<std::uint16_t>(uap << 8);
  for (std::uint8_t byte : bytes) reg = feed_byte(reg, byte);
  return reg;
}

bool crc16_check(const std::vector<std::uint8_t>& bytes, std::uint8_t uap,
                 std::uint16_t crc) {
  return crc16_compute(bytes, uap) == crc;
}

}  // namespace btsc::baseband
