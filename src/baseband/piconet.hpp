// Piconet membership and per-link state (master side).
//
// Mirrors the paper's PICONET module: it owns the active-member address
// (LT_ADDR) table, the polling bookkeeping (T_poll), the ARQ state per
// link and the low-power mode (active / sniff / hold / park) of every
// slave. Up to seven active slaves share a piconet.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "baseband/address.hpp"
#include "baseband/buffer.hpp"
#include "baseband/packet.hpp"

namespace btsc::baseband {

inline constexpr int kMaxActiveSlaves = 7;
/// Default poll interval (slots): every slave is addressed at least this
/// often while active.
inline constexpr std::uint32_t kDefaultTPollSlots = 40;

enum class LinkMode : std::uint8_t { kActive, kSniff, kHold, kPark };

const char* to_string(LinkMode m);

/// Per-slave link state kept by the master.
struct SlaveLink {
  BdAddr addr;
  std::uint8_t lt_addr = 0;
  LinkMode mode = LinkMode::kActive;

  // ---- ARQ ----
  bool seqn_out = false;       // SEQN of the next new payload packet
  bool arqn_out = false;       // ACK to piggyback on the next packet
  std::optional<bool> last_seqn_in;  // for duplicate rejection
  /// Packet awaiting acknowledgement (retransmitted until ARQN=1).
  std::optional<OutboundMessage> in_flight;
  /// True once in_flight has been sent at least once (the next send of
  /// the same message counts as a retransmission).
  bool last_tx_was_retx = false;
  std::uint64_t retransmissions = 0;

  // ---- scheduling ----
  PacketBuffer tx_queue;
  /// CLK (half-slot units) when this slave was last addressed.
  std::uint32_t last_addressed_clk = 0;
  std::uint32_t t_poll_slots = kDefaultTPollSlots;

  // ---- sniff ----
  std::uint32_t sniff_interval_slots = 0;  // Tsniff
  std::uint32_t sniff_offset_slots = 0;    // Dsniff (anchor phase)
  int sniff_attempt_slots = 1;             // Nsniff-attempt

  // ---- hold ----
  std::uint32_t hold_until_clk = 0;  // CLK at which the hold ends
  /// Set while the returning slave still needs a resynchronising poll.
  bool needs_resync_poll = false;

  // ---- park ----
  std::uint8_t pm_addr = 0;  // parked member address

  /// True when `clk` (half-slot resolution) is this slave's sniff anchor
  /// slot or one of the following attempt slots.
  bool in_sniff_window(std::uint32_t clk) const;
};

/// The master's registry of slaves.
class Piconet {
 public:
  /// Admits a slave, assigning the lowest free LT_ADDR (1..7).
  /// Returns nullopt when the piconet is full.
  std::optional<std::uint8_t> add_slave(const BdAddr& addr);

  /// Removes a slave entirely (detach).
  void remove_slave(std::uint8_t lt_addr);

  SlaveLink* find(std::uint8_t lt_addr);
  const SlaveLink* find(std::uint8_t lt_addr) const;
  SlaveLink* find(const BdAddr& addr);

  std::vector<SlaveLink>& slaves() { return slaves_; }
  const std::vector<SlaveLink>& slaves() const { return slaves_; }
  std::size_t active_count() const;
  bool has_parked() const;
  bool empty() const { return slaves_.empty(); }

 private:
  std::vector<SlaveLink> slaves_;
};

}  // namespace btsc::baseband
