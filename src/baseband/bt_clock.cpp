#include "baseband/bt_clock.hpp"

namespace btsc::baseband {

NativeClock::NativeClock(sim::Environment& env, std::string name,
                         std::uint32_t initial,
                         sim::SimTime first_tick_delay)
    : Module(env, std::move(name)),
      clkn_(initial & kClockMask),
      tick_(env, child_name("tick")) {
  env.register_rearm(this->name(), this, this);
  schedule_tick(first_tick_delay);
}

NativeClock::~NativeClock() { env().unregister_rearm(this); }

void NativeClock::schedule_tick(sim::SimTime delay) {
  env().schedule_tagged(delay, kTick, 0, [this] { tick(); }, this);
}

void NativeClock::tick() {
  clkn_ = (clkn_ + 1u) & kClockMask;
  last_tick_ = env().now();
  ++tick_count_;
  tick_.notify_delta();
  schedule_tick(kTickPeriod);
}

void NativeClock::reset_phase(std::uint32_t initial,
                              sim::SimTime first_tick_delay) {
  env().cancel_owned(this);
  clkn_ = initial & kClockMask;
  last_tick_ = sim::SimTime::zero();
  tick_count_ = 0;
  schedule_tick(first_tick_delay);
}

void NativeClock::save_state(sim::SnapshotWriter& w) const {
  w.begin_section(sim::snapshot_tag("CLKN"));
  w.u32(clkn_);
  w.time(last_tick_);
  w.u64(tick_count_);
  w.end_section();
}

void NativeClock::restore_state(sim::SnapshotReader& r) {
  r.enter_section(sim::snapshot_tag("CLKN"));
  clkn_ = r.u32();
  last_tick_ = r.time();
  tick_count_ = r.u64();
  r.leave_section();
}

void NativeClock::rearm_timer(std::uint16_t kind, std::uint64_t /*payload*/,
                              sim::SimTime when) {
  if (kind != kTick) throw sim::SnapshotError("NativeClock: unknown timer");
  schedule_tick(when - env().now());
}

}  // namespace btsc::baseband
