#include "baseband/bt_clock.hpp"

namespace btsc::baseband {

NativeClock::NativeClock(sim::Environment& env, std::string name,
                         std::uint32_t initial,
                         sim::SimTime first_tick_delay)
    : Module(env, std::move(name)),
      clkn_(initial & kClockMask),
      tick_(env, child_name("tick")) {
  env.schedule(first_tick_delay, [this] { tick(); });
}

void NativeClock::tick() {
  clkn_ = (clkn_ + 1u) & kClockMask;
  last_tick_ = env().now();
  ++tick_count_;
  tick_.notify_delta();
  env().schedule(kTickPeriod, [this] { tick(); });
}

}  // namespace btsc::baseband
