#include "baseband/device.hpp"

#include <stdexcept>

namespace btsc::baseband {

Device::Device(sim::Environment& env, std::string name,
               const DeviceConfig& config, phy::NoisyChannel& channel)
    : Module(env, std::move(name)),
      config_(config),
      clock_(env, child_name("clkn"), config.clkn_init, config.clkn_phase),
      radio_(env, this->name(), channel),
      receiver_(env, child_name("rx")),
      lc_(env, child_name("lc"), config.addr, clock_, radio_, receiver_,
          config.lc) {
  if (config.clkn_phase.as_ns() % 1000 != 0) {
    throw std::invalid_argument(
        "Device: clkn_phase must be a whole number of microseconds");
  }
  // The receiver IS the radio's batched sink: per-bit samples flow
  // through Receiver::on_sample, silent/burst stretches through the
  // quiet_prefix/consume_quiet protocol. The hooks let carrier-sense
  // reads materialise pending samples and receiver reconfigurations
  // re-derive the radio's side-effect barrier.
  radio_.set_burst_rx_sink(&receiver_);
  receiver_.set_transport_hooks([this] { radio_.rx_catch_up(); },
                                [this] { radio_.rx_state_changed(); });
}

}  // namespace btsc::baseband
