#include "baseband/device.hpp"

#include <stdexcept>

namespace btsc::baseband {

Device::Device(sim::Environment& env, std::string name,
               const DeviceConfig& config, phy::NoisyChannel& channel)
    : Module(env, std::move(name)),
      config_(config),
      clock_(env, child_name("clkn"), config.clkn_init, config.clkn_phase),
      radio_(env, this->name(), channel),
      receiver_(env, child_name("rx")),
      lc_(env, child_name("lc"), config.addr, clock_, radio_, receiver_,
          config.lc) {
  if (config.clkn_phase.as_ns() % 1000 != 0) {
    throw std::invalid_argument(
        "Device: clkn_phase must be a whole number of microseconds");
  }
  radio_.set_rx_sink(
      [this](phy::Logic4 sample) { receiver_.on_bit(sample); });
}

}  // namespace btsc::baseband
