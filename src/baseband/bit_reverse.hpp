// Bit-order reversal helpers shared by the table-driven codecs.
//
// Bluetooth transmits every field LSB first while the CRC/HEC registers
// shift MSB first, so the byte-table paths index with the bit-reversed
// data byte; the FEC 2/3 parity flies MSB first for the same reason.
#pragma once

#include <array>
#include <cstdint>

namespace btsc::baseband {

/// Reverses the low `width` (<= 8) bits of `v`; higher bits are dropped.
constexpr std::uint8_t reverse_bits(std::uint8_t v, unsigned width) {
  std::uint8_t r = 0;
  for (unsigned i = 0; i < width; ++i) {
    r = static_cast<std::uint8_t>((r << 1) | ((v >> i) & 1u));
  }
  return r;
}

namespace detail {
constexpr std::array<std::uint8_t, 256> make_rev8_table() {
  std::array<std::uint8_t, 256> t{};
  for (unsigned b = 0; b < 256; ++b) {
    t[b] = reverse_bits(static_cast<std::uint8_t>(b), 8);
  }
  return t;
}
}  // namespace detail

/// Full-byte reversal table (the CRC/HEC hot-loop index transform).
inline constexpr std::array<std::uint8_t, 256> kRev8 =
    detail::make_rev8_table();

}  // namespace btsc::baseband
