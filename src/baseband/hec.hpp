// Header error check (HEC).
//
// 8-bit LFSR with generator g(D) = D^8 + D^7 + D^5 + D^2 + D + 1,
// initialised with the UAP of the device whose access code precedes the
// header (the DCI, 0x00, during inquiry). Covers the 10 header info bits
// (LT_ADDR, TYPE, FLOW, ARQN, SEQN), fed in transmission order.
#pragma once

#include <cstdint>

#include "sim/bitvector.hpp"

namespace btsc::baseband {

/// Computes the HEC over `bits` (transmission order) with the given
/// initialisation byte.
std::uint8_t hec_compute(const sim::BitVector& bits, std::uint8_t init);

/// Convenience for the 10-bit packed header value (bit 0 first on air).
std::uint8_t hec_compute10(std::uint16_t header10, std::uint8_t init);

/// Verifies that `hec` matches the data; equivalent to recomputation.
bool hec_check(const sim::BitVector& bits, std::uint8_t init,
               std::uint8_t hec);

}  // namespace btsc::baseband
