// Forward error correction schemes of the baseband.
//
// FEC 1/3: each bit repeated three times; the decoder takes a bit-wise
// majority vote. Protects packet headers and HV1 voice.
//
// FEC 2/3: (15,10) shortened Hamming code with generator polynomial
// g(D) = (D + 1)(D^4 + D + 1) = D^5 + D^4 + D^2 + 1. Each block carries
// 10 information bits plus 5 parity bits; all single-bit errors per block
// are correctable. Protects DM1/DM3/DM5 payloads and the FHS packet.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/bitvector.hpp"

namespace btsc::baseband {

// ---- FEC 1/3 (repetition) ----

/// Encodes by transmitting every bit three times in a row.
sim::BitVector fec13_encode(const sim::BitVector& data);

/// Majority-decodes; requires size() % 3 == 0.
sim::BitVector fec13_decode(const sim::BitVector& coded);

// ---- FEC 2/3 ((15,10) shortened Hamming) ----

/// Information bits per coded block.
inline constexpr std::size_t kFec23DataBits = 10;
/// Total bits per coded block.
inline constexpr std::size_t kFec23BlockBits = 15;

/// Encodes data into 15-bit blocks (10 data + 5 parity each). The last
/// block is zero-padded; callers must know the true payload length (it is
/// carried in the payload header).
sim::BitVector fec23_encode(const sim::BitVector& data);

struct Fec23Result {
  sim::BitVector data;
  /// Number of blocks in which a single-bit error was corrected.
  std::size_t corrected_blocks = 0;
  /// True if any block had an uncorrectable (multi-bit) error pattern.
  bool failed = false;
};

/// Decodes coded blocks (size() % 15 == 0), correcting one error per
/// block via syndrome lookup.
Fec23Result fec23_decode(const sim::BitVector& coded);

/// One 15-bit block in air order (10 data bits LSB first, then 5 parity
/// bits MSB first), decoded via the popcount-parity syndrome. The
/// receiver's streaming word path consumes blocks with this instead of
/// slicing per-block BitVectors.
struct Fec23Block {
  std::uint16_t data10 = 0;
  bool corrected = false;
  bool failed = false;
};
Fec23Block fec23_decode_block15(std::uint16_t air15);

/// Encodes exactly one 10-bit block into 15 bits (exposed for tests).
std::uint16_t fec23_encode_block(std::uint16_t data10);

}  // namespace btsc::baseband
