// TX/RX buffers between the Link Manager and the baseband.
//
// The paper's architecture has dedicated Buffer_tx / Buffer_rx modules
// storing data crossing the LM <-> baseband boundary. This model keeps a
// bounded FIFO per direction with a priority lane: LMP control messages
// (LLID 11) overtake user data, as required for mode-switch signalling to
// work under load.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <stdexcept>
#include <utility>
#include <vector>

#include "baseband/packet.hpp"
#include "sim/snapshot.hpp"

namespace btsc::baseband {

/// One upper-layer message queued for (re)segmentation into packets.
struct OutboundMessage {
  std::uint8_t llid = kLlidStart;
  std::vector<std::uint8_t> data;
};

class PacketBuffer {
 public:
  explicit PacketBuffer(std::size_t capacity = 64) : capacity_(capacity) {}

  /// Queues a message; LMP traffic goes to the priority lane. Returns
  /// false (and counts a drop) when the buffer is full.
  bool push(OutboundMessage msg) {
    auto& lane = msg.llid == kLlidLmp ? control_ : data_;
    if (size() >= capacity_) {
      ++dropped_;
      return false;
    }
    lane.push_back(std::move(msg));
    return true;
  }

  bool empty() const { return control_.empty() && data_.empty(); }
  std::size_t size() const { return control_.size() + data_.size(); }
  std::size_t dropped() const { return dropped_; }

  /// Next message to transmit (control lane first).
  const OutboundMessage& front() const {
    if (!control_.empty()) return control_.front();
    if (!data_.empty()) return data_.front();
    throw std::logic_error("PacketBuffer::front on empty buffer");
  }

  OutboundMessage pop() {
    auto& lane = !control_.empty() ? control_ : data_;
    if (lane.empty()) throw std::logic_error("PacketBuffer::pop on empty");
    OutboundMessage msg = std::move(lane.front());
    lane.pop_front();
    return msg;
  }

  void clear() {
    control_.clear();
    data_.clear();
  }

  // ---- checkpointing ----
  void save_state(sim::SnapshotWriter& w) const {
    w.u64(capacity_);
    auto lane = [&w](const std::deque<OutboundMessage>& q) {
      sim::save_seq(w, q.size(), [&](std::size_t i) {
        w.u8(q[i].llid);
        w.byte_vec(q[i].data);
      });
    };
    lane(control_);
    lane(data_);
    w.u64(dropped_);
  }
  void restore_state(sim::SnapshotReader& r) {
    capacity_ = static_cast<std::size_t>(r.u64());
    auto lane = [&r](std::deque<OutboundMessage>& q) {
      q.clear();
      sim::restore_seq(r, [&](std::size_t) {
        OutboundMessage m;
        m.llid = r.u8();
        m.data = r.byte_vec();
        q.push_back(std::move(m));
      });
    };
    lane(control_);
    lane(data_);
    dropped_ = static_cast<std::size_t>(r.u64());
  }

 private:
  std::size_t capacity_;
  std::deque<OutboundMessage> control_;
  std::deque<OutboundMessage> data_;
  std::size_t dropped_ = 0;
};

}  // namespace btsc::baseband
