// Bluetooth device addressing.
//
// A BD_ADDR is 48 bits: LAP (lower address part, 24 bits), UAP (upper
// address part, 8 bits) and NAP (non-significant address part, 16 bits).
// The LAP seeds the channel/device access codes and the hop sequence; the
// UAP initialises the HEC and CRC generators. The general inquiry access
// code (GIAC) is the reserved LAP 0x9E8B33 shared by all devices.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace btsc::baseband {

class BdAddr {
 public:
  constexpr BdAddr() = default;
  constexpr BdAddr(std::uint32_t lap, std::uint8_t uap, std::uint16_t nap)
      : lap_(lap & 0xFFFFFFu), uap_(uap), nap_(nap) {}

  /// Builds from the packed 48-bit form (NAP | UAP | LAP).
  static constexpr BdAddr from_raw(std::uint64_t raw) {
    return BdAddr(static_cast<std::uint32_t>(raw & 0xFFFFFFu),
                  static_cast<std::uint8_t>((raw >> 24) & 0xFFu),
                  static_cast<std::uint16_t>((raw >> 32) & 0xFFFFu));
  }

  constexpr std::uint32_t lap() const { return lap_; }
  constexpr std::uint8_t uap() const { return uap_; }
  constexpr std::uint16_t nap() const { return nap_; }

  constexpr std::uint64_t raw() const {
    return (static_cast<std::uint64_t>(nap_) << 32) |
           (static_cast<std::uint64_t>(uap_) << 24) | lap_;
  }

  /// 28-bit input to the hop selection kernel: LAP plus the four least
  /// significant UAP bits (spec part B, hop selection "address input").
  constexpr std::uint32_t hop_address() const {
    return lap_ | (static_cast<std::uint32_t>(uap_ & 0x0Fu) << 24);
  }

  std::string to_string() const;

  friend constexpr auto operator<=>(const BdAddr&, const BdAddr&) = default;

 private:
  std::uint32_t lap_ = 0;
  std::uint8_t uap_ = 0;
  std::uint16_t nap_ = 0;
};

/// General inquiry access code LAP, common to all Bluetooth devices.
inline constexpr std::uint32_t kGiacLap = 0x9E8B33u;
/// First dedicated inquiry access code LAP (DIACs span 0x9E8B00-0x9E8B3F).
inline constexpr std::uint32_t kDiacBaseLap = 0x9E8B00u;

/// Default check initialisation for HEC/CRC when no UAP is known yet
/// (inquiry procedures use the DCI, defined as 0x00).
inline constexpr std::uint8_t kDefaultCheckInit = 0x00;

}  // namespace btsc::baseband
