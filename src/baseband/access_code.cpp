#include "baseband/access_code.hpp"

#include <bit>

namespace btsc::baseband {
namespace {

// 64-bit PN (pseudo-random noise) sequence XORed over the BCH codeword
// (spec part B, access code construction). Bit 0 = first on air.
constexpr std::uint64_t kPnSequence = 0x83848D96BBCC54FCull;

// Generator polynomial of the (64,30) expurgated BCH code, degree 34
// (octal 260534236651 in the specification).
constexpr std::uint64_t kBchGenerator = 0260534236651ull;

/// Barker extension appended to the LAP to form the 30 information bits:
/// 001101b when LAP bit 23 is 0, 110010b otherwise (guarantees good
/// autocorrelation at the sync word edges).
constexpr std::uint32_t barker_for(std::uint32_t lap) {
  return ((lap >> 23) & 1u) ? 0b110010u : 0b001101u;
}

}  // namespace

sim::BitVector sync_word(std::uint32_t lap) {
  lap &= 0xFFFFFFu;
  // 30 information bits: LAP (bits 0..23) then Barker extension (24..29).
  const std::uint64_t info =
      static_cast<std::uint64_t>(lap) |
      (static_cast<std::uint64_t>(barker_for(lap)) << 24);
  // Scramble the information with the upper 30 PN bits before encoding.
  const std::uint64_t info_tilde = info ^ (kPnSequence >> 34);
  // Systematic BCH: codeword = info * D^34 + (info * D^34 mod g).
  std::uint64_t reg = info_tilde << 34;
  for (int bit = 63; bit >= 34; --bit) {
    if ((reg >> bit) & 1u) {
      reg ^= kBchGenerator << (bit - 34);
    }
  }
  const std::uint64_t parity = reg;  // degree < 34
  const std::uint64_t codeword = (info_tilde << 34) | parity;
  // Unscramble the whole word with the PN sequence.
  const std::uint64_t word = codeword ^ kPnSequence;
  sim::BitVector out;
  out.append_uint(word, 64);
  return out;
}

sim::BitVector access_code(std::uint32_t lap, bool with_trailer) {
  const sim::BitVector sync = sync_word(lap);
  sim::BitVector out;
  out.reserve(4 + kSyncWordBits + (with_trailer ? 4 : 0));
  // Preamble 0101/1010: alternating pattern ending opposite to the first
  // sync bit, so the edge keeps alternating into the sync word.
  const bool first = sync[0];
  for (int i = 0; i < 4; ++i) out.push_back(first ? !(i % 2) : (i % 2));
  out.append(sync);
  if (with_trailer) {
    // Trailer extends the alternation after the last sync bit.
    const bool last = sync[kSyncWordBits - 1];
    for (int i = 0; i < 4; ++i) out.push_back(last ? (i % 2 == 0 ? 0 : 1)
                                                   : (i % 2 == 0 ? 1 : 0));
  }
  return out;
}

Correlator::Correlator(const sim::BitVector& sync)
    : expected_(sync.extract_word(0, kSyncWordBits)) {}

bool Correlator::push(bool bit) {
  // window_ bit 63 holds the newest bit; air bit i of the candidate sync
  // word sits at position i after the shift history aligns.
  window_ = (window_ >> 1) | (static_cast<std::uint64_t>(bit) << 63);
  ++bits_seen_;
  return bits_seen_ >= kSyncWordBits && matches(window_);
}

void Correlator::reset() {
  window_ = 0;
  bits_seen_ = 0;
}

}  // namespace btsc::baseband
