#include "baseband/packet.hpp"

#include <stdexcept>

#include "baseband/crc.hpp"
#include "baseband/fec.hpp"
#include "baseband/hec.hpp"
#include "baseband/whitening.hpp"

namespace btsc::baseband {

const char* to_string(PacketType t) {
  switch (t) {
    case PacketType::kNull:
      return "NULL";
    case PacketType::kPoll:
      return "POLL";
    case PacketType::kFhs:
      return "FHS";
    case PacketType::kDm1:
      return "DM1";
    case PacketType::kDh1:
      return "DH1";
    case PacketType::kAux1:
      return "AUX1";
    case PacketType::kDm3:
      return "DM3";
    case PacketType::kDh3:
      return "DH3";
    case PacketType::kDm5:
      return "DM5";
    case PacketType::kDh5:
      return "DH5";
  }
  return "?";
}

bool has_payload(PacketType t) {
  return t != PacketType::kNull && t != PacketType::kPoll;
}

bool is_fec23(PacketType t) {
  switch (t) {
    case PacketType::kFhs:
    case PacketType::kDm1:
    case PacketType::kDm3:
    case PacketType::kDm5:
      return true;
    default:
      return false;
  }
}

bool has_crc(PacketType t) {
  return has_payload(t) && t != PacketType::kAux1;
}

int slots_occupied(PacketType t) {
  switch (t) {
    case PacketType::kDm3:
    case PacketType::kDh3:
      return 3;
    case PacketType::kDm5:
    case PacketType::kDh5:
      return 5;
    default:
      return 1;
  }
}

std::size_t payload_header_bytes(PacketType t) {
  switch (t) {
    case PacketType::kDm1:
    case PacketType::kDh1:
    case PacketType::kAux1:
      return 1;
    case PacketType::kDm3:
    case PacketType::kDh3:
    case PacketType::kDm5:
    case PacketType::kDh5:
      return 2;
    default:
      return 0;  // NULL/POLL/FHS
  }
}

std::size_t max_user_bytes(PacketType t) {
  switch (t) {
    case PacketType::kDm1:
      return 17;
    case PacketType::kDh1:
      return 27;
    case PacketType::kAux1:
      return 29;
    case PacketType::kDm3:
      return 121;
    case PacketType::kDh3:
      return 183;
    case PacketType::kDm5:
      return 224;
    case PacketType::kDh5:
      return 339;
    default:
      return 0;
  }
}

std::uint16_t PacketHeader::pack() const {
  return static_cast<std::uint16_t>(
      (lt_addr & 0x7u) | (static_cast<std::uint16_t>(type) << 3) |
      (static_cast<std::uint16_t>(flow) << 7) |
      (static_cast<std::uint16_t>(arqn) << 8) |
      (static_cast<std::uint16_t>(seqn) << 9));
}

PacketHeader PacketHeader::unpack(std::uint16_t v) {
  PacketHeader h;
  h.lt_addr = static_cast<std::uint8_t>(v & 0x7u);
  h.type = static_cast<PacketType>((v >> 3) & 0xFu);
  h.flow = (v >> 7) & 1u;
  h.arqn = (v >> 8) & 1u;
  h.seqn = (v >> 9) & 1u;
  return h;
}

std::vector<std::uint8_t> FhsPayload::to_bytes() const {
  std::vector<std::uint8_t> b(kFhsBytes, 0);
  const std::uint64_t raw = addr.raw();
  for (int i = 0; i < 6; ++i) {
    b[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((raw >> (8 * i)) & 0xFFu);
  }
  b[6] = static_cast<std::uint8_t>(class_of_device & 0xFFu);
  b[7] = static_cast<std::uint8_t>((class_of_device >> 8) & 0xFFu);
  b[8] = static_cast<std::uint8_t>((class_of_device >> 16) & 0xFFu);
  b[9] = static_cast<std::uint8_t>(lt_addr & 0x7u);
  const std::uint32_t clk = clk27_2 & 0x03FFFFFFu;  // 26 bits
  b[10] = static_cast<std::uint8_t>(clk & 0xFFu);
  b[11] = static_cast<std::uint8_t>((clk >> 8) & 0xFFu);
  b[12] = static_cast<std::uint8_t>((clk >> 16) & 0xFFu);
  b[13] = static_cast<std::uint8_t>((clk >> 24) & 0x03u);
  // Bytes 14..17 reserved (page scan mode, EIR, ... not modelled).
  return b;
}

FhsPayload FhsPayload::from_bytes(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() != kFhsBytes) {
    throw std::invalid_argument("FhsPayload: need exactly 18 bytes");
  }
  FhsPayload f;
  std::uint64_t raw = 0;
  for (int i = 0; i < 6; ++i) {
    raw |= static_cast<std::uint64_t>(bytes[static_cast<std::size_t>(i)])
           << (8 * i);
  }
  f.addr = BdAddr::from_raw(raw);
  f.class_of_device = static_cast<std::uint32_t>(bytes[6]) |
                      (static_cast<std::uint32_t>(bytes[7]) << 8) |
                      (static_cast<std::uint32_t>(bytes[8]) << 16);
  f.lt_addr = static_cast<std::uint8_t>(bytes[9] & 0x7u);
  f.clk27_2 = static_cast<std::uint32_t>(bytes[10]) |
              (static_cast<std::uint32_t>(bytes[11]) << 8) |
              (static_cast<std::uint32_t>(bytes[12]) << 16) |
              (static_cast<std::uint32_t>(bytes[13] & 0x03u) << 24);
  return f;
}

namespace {

constexpr std::size_t kHeaderInfoBits = 18;  // 10 header + 8 HEC
constexpr std::size_t kHeaderCodedBits = 54;

std::size_t payload_body_bytes(PacketType type, std::size_t user_bytes) {
  if (!has_payload(type)) return 0;
  if (type == PacketType::kFhs) return kFhsBytes;
  return payload_header_bytes(type) + user_bytes;
}

}  // namespace

std::size_t air_bits(PacketType type, std::size_t user_bytes) {
  std::size_t bits = 72 + kHeaderCodedBits;  // access code + coded header
  if (has_payload(type)) {
    std::size_t body_bits =
        8 * (payload_body_bytes(type, user_bytes) + (has_crc(type) ? 2 : 0));
    if (is_fec23(type)) {
      const std::size_t blocks =
          (body_bits + kFec23DataBits - 1) / kFec23DataBits;
      body_bits = blocks * kFec23BlockBits;
    }
    bits += body_bits;
  }
  return bits;
}

sim::SimTime air_time(PacketType type, std::size_t user_bytes) {
  return sim::SimTime::us(air_bits(type, user_bytes));
}

sim::BitVector compose_after_access_code(
    const PacketHeader& header, const std::vector<std::uint8_t>& payload,
    const LinkParams& params) {
  if (!has_payload(header.type) && !payload.empty()) {
    throw std::invalid_argument("compose: payload on NULL/POLL packet");
  }
  if (header.type == PacketType::kFhs && payload.size() != kFhsBytes) {
    throw std::invalid_argument("compose: FHS payload must be 18 bytes");
  }
  if (header.type != PacketType::kFhs && has_payload(header.type)) {
    const std::size_t max_body =
        payload_header_bytes(header.type) + max_user_bytes(header.type);
    if (payload.empty() || payload.size() > max_body) {
      throw std::invalid_argument("compose: payload body size out of range");
    }
  }

  Whitener whitener(params.whiten_init.value_or(0));
  const bool whiten = params.whiten_init.has_value();

  // ---- header: 10 info bits + HEC, whitened, FEC 1/3 ----
  sim::BitVector header_bits;
  header_bits.append_uint(header.pack(), 10);
  header_bits.append_uint(hec_compute10(header.pack(), params.check_init), 8);
  if (whiten) whitener.apply(header_bits);
  sim::BitVector out = fec13_encode(header_bits);

  // ---- payload ----
  if (has_payload(header.type)) {
    sim::BitVector body_bits;
    for (std::uint8_t byte : payload) body_bits.append_uint(byte, 8);
    if (has_crc(header.type)) {
      body_bits.append_uint(crc16_compute(payload, params.check_init), 16);
    }
    if (whiten) whitener.apply(body_bits);
    out.append(is_fec23(header.type) ? fec23_encode(body_bits) : body_bits);
  }
  return out;
}

std::vector<std::uint8_t> build_acl_body(
    PacketType type, std::uint8_t llid, bool flow,
    const std::vector<std::uint8_t>& user) {
  if (user.size() > max_user_bytes(type)) {
    throw std::invalid_argument("build_acl_body: user data too large");
  }
  std::vector<std::uint8_t> body;
  const std::size_t hdr = payload_header_bytes(type);
  if (hdr == 1) {
    body.push_back(static_cast<std::uint8_t>(
        (llid & 0x3u) | (static_cast<unsigned>(flow) << 2) |
        ((user.size() & 0x1Fu) << 3)));
  } else if (hdr == 2) {
    const auto len = static_cast<std::uint16_t>(user.size() & 0x1FFu);
    body.push_back(static_cast<std::uint8_t>(
        (llid & 0x3u) | (static_cast<unsigned>(flow) << 2) |
        ((len & 0x1Fu) << 3)));
    body.push_back(static_cast<std::uint8_t>((len >> 5) & 0x0Fu));
  } else {
    throw std::invalid_argument("build_acl_body: not an ACL packet type");
  }
  body.insert(body.end(), user.begin(), user.end());
  return body;
}

ParsedBody parse_acl_body(PacketType type,
                          const std::vector<std::uint8_t>& body) {
  const std::size_t hdr = payload_header_bytes(type);
  if (hdr == 0 || body.size() < hdr) {
    throw std::invalid_argument("parse_acl_body: bad body");
  }
  ParsedBody out;
  out.header.llid = body[0] & 0x3u;
  out.header.flow = (body[0] >> 2) & 1u;
  if (hdr == 1) {
    out.header.length = (body[0] >> 3) & 0x1Fu;
  } else {
    out.header.length = static_cast<std::uint16_t>(((body[0] >> 3) & 0x1Fu) |
                                                   ((body[1] & 0x0Fu) << 5));
  }
  if (body.size() != hdr + out.header.length) {
    throw std::invalid_argument("parse_acl_body: length mismatch");
  }
  out.user.assign(body.begin() + static_cast<std::ptrdiff_t>(hdr),
                  body.end());
  return out;
}

}  // namespace btsc::baseband
