#include "baseband/hop.hpp"

#include <array>

namespace btsc::baseband {
namespace {

constexpr std::uint32_t bits(std::uint32_t v, int hi, int lo) {
  return (v >> lo) & ((1u << (hi - lo + 1)) - 1u);
}

/// CLK bits {4,3,2,0} as the 4-bit fast-sweep counter of the page and
/// inquiry X formulas (bit 0 gives the 3200 hop/s double rate).
constexpr std::uint32_t clk_4_2_0(std::uint32_t clk) {
  return (bits(clk, 4, 2) << 1) | (clk & 1u);
}

/// Page/inquiry phase: X = [CLK16:12 + koffset +
/// (CLK{4-2,0} - CLK16:12) mod 16] mod 32.
int train_phase(std::uint32_t clk, int koffset) {
  const int hi = static_cast<int>(bits(clk, 16, 12));
  const int fast = static_cast<int>(clk_4_2_0(clk));
  const int sweep = ((fast - hi) % 16 + 16) % 16;
  return ((hi + koffset + sweep) % 32 + 32) % 32;
}

/// Address bits {8,6,4,2,0} -> 5-bit value (input C).
constexpr std::uint32_t even_low_bits(std::uint32_t a) {
  return ((a >> 0) & 1u) | (((a >> 2) & 1u) << 1) | (((a >> 4) & 1u) << 2) |
         (((a >> 6) & 1u) << 3) | (((a >> 8) & 1u) << 4);
}

/// Address bits {13,11,9,7,5,3,1} -> 7-bit value (input E).
constexpr std::uint32_t odd_low_bits(std::uint32_t a) {
  std::uint32_t v = 0;
  for (int i = 0; i < 7; ++i) v |= ((a >> (2 * i + 1)) & 1u) << i;
  return v;
}

/// PERM5: fourteen conditional transpositions on a 5-bit word, controlled
/// by P13..P0 (see header note on pair assignment).
constexpr std::array<std::array<int, 2>, 14> kButterflies = {{
    {1, 2},  // P13
    {0, 3},  // P12
    {1, 4},  // P11
    {2, 3},  // P10
    {0, 4},  // P9
    {1, 3},  // P8
    {0, 2},  // P7
    {3, 4},  // P6
    {1, 2},  // P5
    {0, 3},  // P4
    {2, 4},  // P3
    {0, 1},  // P2
    {3, 4},  // P1
    {0, 2},  // P0
}};

int perm5(int z, std::uint32_t control14) {
  for (int k = 13; k >= 0; --k) {
    if ((control14 >> k) & 1u) {
      const auto [i, j] = kButterflies[static_cast<std::size_t>(13 - k)];
      const int bi = (z >> i) & 1;
      const int bj = (z >> j) & 1;
      if (bi != bj) z ^= (1 << i) | (1 << j);
    }
  }
  return z;
}

struct KernelInputs {
  int x = 0;
  int y1 = 0;
  int y2 = 0;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint32_t c = 0;
  std::uint32_t d = 0;
  std::uint32_t e = 0;
  int f = 0;
};

KernelInputs build_inputs(const HopInput& in) {
  KernelInputs k;
  const std::uint32_t addr = in.address & 0x0FFFFFFFu;
  const std::uint32_t clk = in.clock & 0x0FFFFFFFu;

  // Address contributions (clock-free form; connection adds clock terms).
  k.a = bits(addr, 27, 23);
  k.b = bits(addr, 22, 19);
  k.c = even_low_bits(addr);
  k.d = bits(addr, 18, 10);
  k.e = odd_low_bits(addr);
  k.f = 0;

  switch (in.mode) {
    case HopMode::kConnection: {
      k.x = static_cast<int>(bits(clk, 6, 2));
      k.y1 = static_cast<int>((clk >> 1) & 1u);
      k.a ^= bits(clk, 25, 21);
      k.c ^= bits(clk, 20, 16);
      k.d ^= bits(clk, 15, 7);
      k.f = static_cast<int>((16ull * bits(clk, 27, 7)) % kNumRfChannels);
      break;
    }
    case HopMode::kPage:
    case HopMode::kInquiry:
      k.x = train_phase(clk, in.koffset);
      k.y1 = static_cast<int>((clk >> 1) & 1u);
      break;
    case HopMode::kPageScan:
    case HopMode::kInquiryScan:
      k.x = static_cast<int>(bits(clk, 16, 12));
      k.y1 = 0;
      break;
    case HopMode::kMasterPageResponse:
    case HopMode::kSlavePageResponse:
    case HopMode::kInquiryResponse: {
      const std::uint32_t fclk = in.frozen_clock & 0x0FFFFFFFu;
      k.x = static_cast<int>((bits(fclk, 16, 12) +
                              static_cast<std::uint32_t>(in.response_n)) %
                             32u);
      k.y1 = static_cast<int>((clk >> 1) & 1u);
      break;
    }
  }
  k.x = (k.x + in.x_offset % 32 + 32) % 32;
  k.y2 = 32 * k.y1;
  return k;
}

}  // namespace

int hop_phase_x(const HopInput& in) { return build_inputs(in).x; }

int hop_frequency(const HopInput& in) {
  const KernelInputs k = build_inputs(in);
  // First addition and XOR stage.
  const int z1 = (k.x + static_cast<int>(k.a)) % 32;
  int z2 = z1 ^ static_cast<int>(k.b);
  // Y1 is XORed onto every line entering the permutation.
  if (k.y1) z2 ^= 0x1F;
  // Butterfly permutation controlled by {D,C}.
  const std::uint32_t control = (k.d << 5) | k.c;
  const int z3 = perm5(z2 & 0x1F, control & 0x3FFF);
  // Second addition modulo 79.
  const int idx =
      (z3 + static_cast<int>(k.e) + k.f + k.y2) % kNumRfChannels;
  // Register bank: even channels in ascending order, then odd channels.
  return idx < 40 ? 2 * idx : 2 * (idx - 40) + 1;
}

}  // namespace btsc::baseband
