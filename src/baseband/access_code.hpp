// Access code construction and sync-word correlation.
//
// Every packet starts with an access code derived from a LAP: the channel
// access code (CAC, master's LAP) in connection state, the device access
// code (DAC, paged slave's LAP) during paging, and the inquiry access
// codes (GIAC/DIAC) during inquiry.
//
// The 64-bit sync word embeds the 24-bit LAP in a (64,30) expurgated BCH
// block code XORed with a fixed 64-bit PN sequence, giving large Hamming
// distance between sync words of different LAPs and strong resistance to
// false triggers on noise. A 4-bit preamble precedes the sync word and a
// 4-bit trailer follows it whenever a header comes next:
//
//   ID packet          : preamble(4) + sync(64)              = 68 bits
//   packet with header : preamble(4) + sync(64) + trailer(4) = 72 bits
//
// The receiver correlates the incoming bit stream against the expected
// sync word and triggers when at least `kSyncCorrelationThreshold` of the
// 64 positions match (spec-like sliding correlator).
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>

#include "sim/bitvector.hpp"

namespace btsc::baseband {

/// Correlator acceptance threshold: a window matches when at least this
/// many of the 64 sync bits agree (54 allows up to 10 bit errors, the
/// customary choice for Bluetooth correlators).
inline constexpr int kSyncCorrelationThreshold = 54;

inline constexpr std::size_t kSyncWordBits = 64;
inline constexpr std::size_t kIdPacketBits = 68;     // preamble + sync
inline constexpr std::size_t kAccessCodeBits = 72;   // + trailer

/// 64-bit sync word for a LAP ((64,30) BCH codeword XOR PN sequence).
/// Bit 0 of the result is the first bit on air.
sim::BitVector sync_word(std::uint32_t lap);

/// Full access code: preamble + sync word, plus trailer when
/// `with_trailer` (packets that carry a header).
sim::BitVector access_code(std::uint32_t lap, bool with_trailer);

/// Sliding sync-word correlator. The 64-bit shift register holds the
/// last 64 received bits (bit i = air bit i of the candidate window), so
/// one XOR + popcount gives the Hamming match per position, and a whole
/// word of known-quiet bits can be shifted in at once.
class Correlator {
 public:
  Correlator() = default;
  explicit Correlator(const sim::BitVector& sync);

  /// Shifts one received bit in; returns true when the window correlates
  /// above threshold (sync detected at this bit position).
  bool push(bool bit);

  /// Shifts `n` (1..64) bits in at once, LSB of `bits` first, WITHOUT
  /// fire checks: the caller must know (e.g. from a prior probe on a
  /// copy) that no position in the span correlates above threshold.
  void advance(std::uint64_t bits, unsigned n) {
    assert(n >= 1 && n <= 64);
    window_ = n == 64 ? bits : (window_ >> n) | (bits << (64 - n));
    bits_seen_ += n;
  }

  /// Bits observed since construction or reset.
  std::uint64_t bits_seen() const { return bits_seen_; }

  void reset();

  // ---- checkpointing (raw register access; see sim/snapshot.hpp) ----
  std::uint64_t expected_word() const { return expected_; }
  std::uint64_t window_word() const { return window_; }
  void restore_registers(std::uint64_t expected, std::uint64_t window,
                         std::uint64_t bits_seen) {
    expected_ = expected;
    window_ = window;
    bits_seen_ = bits_seen;
  }

 private:
  bool matches(std::uint64_t w) const {
    return 64 - std::popcount(w ^ expected_) >= kSyncCorrelationThreshold;
  }

  std::uint64_t expected_ = 0;  // sync bits packed, bit i = air bit i
  std::uint64_t window_ = 0;
  std::uint64_t bits_seen_ = 0;
};

}  // namespace btsc::baseband
