#include "io/fault.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <utility>

namespace btsc::io {
namespace {

std::atomic<FaultPlan*> g_plan{nullptr};

}  // namespace

FaultPlan::FaultPlan(std::vector<FaultRule> rules)
    : rules_(std::move(rules)) {}

FaultKind FaultPlan::decide(FaultOp op) {
  const std::uint64_t n =
      counts_[static_cast<std::size_t>(op)].fetch_add(1,
                                                      std::memory_order_relaxed);
  for (const FaultRule& r : rules_) {
    if (r.op != op || r.kind == FaultKind::kNone) continue;
    if (r.sticky ? n >= r.at : n == r.at) return r.kind;
  }
  return FaultKind::kNone;
}

std::uint64_t FaultPlan::count(FaultOp op) const {
  return counts_[static_cast<std::size_t>(op)].load(std::memory_order_relaxed);
}

void set_fault_plan(FaultPlan* plan) {
  g_plan.store(plan, std::memory_order_release);
}

FaultPlan* fault_plan() { return g_plan.load(std::memory_order_acquire); }

ssize_t faultable_write(FaultOp op, int fd, const void* buf, std::size_t n) {
  if (FaultPlan* plan = fault_plan()) {
    switch (plan->decide(op)) {
      case FaultKind::kNone:
        break;
      case FaultKind::kEnospc:
        errno = ENOSPC;
        return -1;
      case FaultKind::kShortWrite: {
        // Really write a prefix so the on-disk state is exactly what a
        // device-level short write leaves behind.
        const std::size_t half = n > 1 ? n / 2 : n;
        return ::write(fd, buf, half);
      }
      case FaultKind::kSyncFail:
        errno = EIO;  // nonsensical for write(); treat as generic I/O error
        return -1;
      case FaultKind::kCrash:
        throw InjectedCrash{op, plan->count(op) - 1};
    }
  }
  return ::write(fd, buf, n);
}

namespace {

int faultable_sync_impl(FaultOp op, int fd, int (*sync_fn)(int)) {
  if (FaultPlan* plan = fault_plan()) {
    switch (plan->decide(op)) {
      case FaultKind::kNone:
        break;
      case FaultKind::kSyncFail:
      case FaultKind::kEnospc:
        errno = EIO;
        return -1;
      case FaultKind::kShortWrite:
        break;  // meaningless for sync; behave normally
      case FaultKind::kCrash:
        // Crash BEFORE the sync: data may be in the page cache but was
        // never made durable — the post-crash file can legally hold it
        // or not; our tests model the pessimistic case via truncation.
        throw InjectedCrash{op, plan->count(op) - 1};
    }
  }
  return sync_fn(fd);
}

}  // namespace

int faultable_fsync(FaultOp op, int fd) {
  return faultable_sync_impl(op, fd, &::fsync);
}

int faultable_fdatasync(FaultOp op, int fd) {
  return faultable_sync_impl(op, fd, &::fdatasync);
}

int faultable_rename(FaultOp op, const char* from, const char* to) {
  if (FaultPlan* plan = fault_plan()) {
    switch (plan->decide(op)) {
      case FaultKind::kNone:
        break;
      case FaultKind::kEnospc:
        errno = ENOSPC;
        return -1;
      case FaultKind::kShortWrite:
      case FaultKind::kSyncFail:
        errno = EIO;
        return -1;
      case FaultKind::kCrash: {
        // Crash-after-rename: the rename itself succeeds, then power is
        // lost before the directory fsync. The new name is in place (or
        // would be, modulo an unsynced directory) — recovery must treat
        // the renamed file as potentially present AND potentially
        // absent; either way it validates on load.
        const int rc = ::rename(from, to);
        if (rc != 0) return rc;
        throw InjectedCrash{op, plan->count(op) - 1};
      }
    }
  }
  return ::rename(from, to);
}

}  // namespace btsc::io
