// Deterministic I/O fault injection for the durability layer.
//
// Production code in sim/checkpoint_store and runner/journal routes its
// write/fsync/rename syscalls through the faultable_* wrappers below.
// With no plan installed (the default) each wrapper is one relaxed
// atomic load plus the raw syscall — zero overhead, no locks, nothing
// to configure. Tests install a FaultPlan: a schedule of rules keyed by
// per-operation counters ("the 3rd journal write returns ENOSPC", "every
// checkpoint fsync from the 2nd on fails"), which makes every disk
// failure mode reproducible under ctest instead of requiring a full
// disk or a yanked power cord.
//
// Fault semantics
// ---------------
//   kEnospc      write()/rename() fails with ENOSPC, nothing written.
//   kShortWrite  write() really writes ~half the buffer and returns the
//                short count (compose with kCrash on the next write to
//                model a torn append).
//   kSyncFail    fsync()/fdatasync() fails with EIO.
//   kCrash       throws InjectedCrash at the decide point, leaving file
//                state exactly as a power loss there would. For rename
//                the crash fires AFTER the real rename succeeds —
//                "crash-after-rename": the file is in place but the
//                directory entry was never fsync'd.
//
// InjectedCrash deliberately does NOT derive from std::exception so no
// production catch(const std::exception&) / catch(...) cleanup path can
// misclassify it as a recoverable I/O error; only the test harness
// catches it.
#pragma once

#include <sys/types.h>

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace btsc::io {

/// The instrumented operation sites. Counters are per-op, so a schedule
/// can target "the Nth journal append" independent of checkpoint
/// traffic.
enum class FaultOp : std::uint8_t {
  kCheckpointWrite = 0,
  kCheckpointSync,
  kCheckpointRename,
  kJournalWrite,
  kJournalSync,
};
inline constexpr std::size_t kFaultOpCount = 5;

enum class FaultKind : std::uint8_t {
  kNone = 0,
  kEnospc,
  kShortWrite,
  kSyncFail,
  kCrash,
};

/// One schedule entry: fire `kind` when `op`'s 0-based invocation count
/// reaches `at` (exactly, or for every call >= `at` when sticky — a
/// sticky kEnospc models "the disk is full from now on").
struct FaultRule {
  FaultOp op = FaultOp::kCheckpointWrite;
  std::uint64_t at = 0;
  FaultKind kind = FaultKind::kNone;
  bool sticky = false;
};

/// Test-only crash marker. Intentionally not a std::exception (see file
/// comment). Carries the decide point for assertion messages.
struct InjectedCrash {
  FaultOp op;
  std::uint64_t at;
};

/// A deterministic fault schedule. decide() is thread-safe: counters are
/// atomic and rules are immutable after construction.
class FaultPlan {
 public:
  explicit FaultPlan(std::vector<FaultRule> rules);

  /// Bumps `op`'s counter and returns the fault (if any) scheduled for
  /// this invocation.
  FaultKind decide(FaultOp op);

  /// Invocations of `op` decided so far.
  std::uint64_t count(FaultOp op) const;

 private:
  std::vector<FaultRule> rules_;
  std::array<std::atomic<std::uint64_t>, kFaultOpCount> counts_{};
};

/// Installs `plan` process-wide (nullptr restores the no-op default).
/// The caller keeps ownership; the plan must outlive the installation.
void set_fault_plan(FaultPlan* plan);
FaultPlan* fault_plan();

/// RAII installer for tests: installs on construction, restores the
/// previous plan on destruction.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(std::vector<FaultRule> rules)
      : plan_(std::move(rules)), previous_(fault_plan()) {
    set_fault_plan(&plan_);
  }
  ~ScopedFaultPlan() { set_fault_plan(previous_); }

  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;

  FaultPlan& plan() { return plan_; }

 private:
  FaultPlan plan_;
  FaultPlan* previous_;
};

/// Syscall wrappers used by the durability layer. Behave exactly like
/// the raw syscall unless an installed plan schedules a fault for this
/// invocation.
ssize_t faultable_write(FaultOp op, int fd, const void* buf, std::size_t n);
int faultable_fsync(FaultOp op, int fd);
int faultable_fdatasync(FaultOp op, int fd);
int faultable_rename(FaultOp op, const char* from, const char* to);

}  // namespace btsc::io
