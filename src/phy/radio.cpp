#include "phy/radio.hpp"

#include <stdexcept>
#include <utility>

namespace btsc::phy {

Radio::Radio(sim::Environment& env, std::string name, NoisyChannel& channel)
    : Module(env, std::move(name)),
      channel_(channel),
      port_(channel.attach(this->name())),
      enable_tx_(env, child_name("enable_tx_RF")),
      enable_rx_(env, child_name("enable_rx_RF")) {}

void Radio::transmit(int freq, sim::BitVector bits,
                     sim::UniqueFunction done) {
  if (tx_busy_) {
    throw std::logic_error(name() + ": transmit while TX busy");
  }
  if (bits.empty()) {
    if (done) done();
    return;
  }
  tx_busy_ = true;
  tx_freq_ = freq;
  tx_bits_ = std::move(bits);
  tx_pos_ = 0;
  tx_done_ = std::move(done);
  enable_tx_.write(true);
  account_tx(true);
  tx_next_bit();
}

void Radio::tx_next_bit() {
  if (tx_pos_ < tx_bits_.size()) {
    channel_.drive(port_, tx_freq_, from_bit(tx_bits_[tx_pos_]));
    ++bits_sent_;
    ++tx_pos_;
    tx_timer_ = env().schedule(kBitPeriod, [this] { tx_next_bit(); });
    return;
  }
  // Past the last bit: release the medium and finish.
  channel_.drive(port_, tx_freq_, Logic4::kZ);
  tx_busy_ = false;
  tx_timer_ = sim::kInvalidTimer;
  enable_tx_.write(false);
  account_tx(false);
  if (tx_done_) {
    // Move out first: the callback may start another transmission.
    auto done = std::move(tx_done_);
    tx_done_ = nullptr;
    done();
  }
}

void Radio::abort_tx() {
  if (!tx_busy_) return;
  env().cancel(tx_timer_);
  tx_timer_ = sim::kInvalidTimer;
  channel_.drive(port_, tx_freq_, Logic4::kZ);
  tx_busy_ = false;
  tx_done_ = nullptr;
  enable_tx_.write(false);
  account_tx(false);
}

void Radio::enable_rx(int freq) {
  rx_freq_ = freq;
  if (rx_on_) return;
  rx_on_ = true;
  enable_rx_.write(true);
  account_rx(true);
  // First sample at grid + 250 ns: transmissions start on integer or
  // half-microsecond boundaries (even/odd half slots), so a quarter-bit
  // sampling offset never coincides with a bit edge of either grid.
  const std::uint64_t now_ns = env().now().as_ns();
  const std::uint64_t period = kBitPeriod.as_ns();
  const std::uint64_t grid = (now_ns / period) * period;
  std::uint64_t first = grid + period / 4;
  if (first <= now_ns) first += period;
  rx_timer_ = env().schedule(sim::SimTime::ns(first - now_ns),
                             [this] { rx_sample(); });
}

void Radio::disable_rx() {
  if (!rx_on_) return;
  rx_on_ = false;
  env().cancel(rx_timer_);
  rx_timer_ = sim::kInvalidTimer;
  enable_rx_.write(false);
  account_rx(false);
}

void Radio::retune_rx(int freq) { rx_freq_ = freq; }

void Radio::rx_sample() {
  ++bits_sampled_;
  const Logic4 v = channel_.sense(rx_freq_);
  if (rx_sink_) rx_sink_(v);
  // The sink may have disabled the receiver.
  if (rx_on_) {
    rx_timer_ = env().schedule(kBitPeriod, [this] { rx_sample(); });
  }
}

void Radio::account_tx(bool on) {
  if (on) {
    tx_since_ = env().now();
  } else {
    tx_accum_ += env().now() - tx_since_;
  }
}

void Radio::account_rx(bool on) {
  if (on) {
    rx_since_ = env().now();
  } else {
    rx_accum_ += env().now() - rx_since_;
  }
}

sim::SimTime Radio::tx_on_time() const {
  sim::SimTime t = tx_accum_;
  if (tx_busy_) t += env().now() - tx_since_;
  return t;
}

sim::SimTime Radio::rx_on_time() const {
  sim::SimTime t = rx_accum_;
  if (rx_on_) t += env().now() - rx_since_;
  return t;
}

void Radio::reset_activity() {
  tx_accum_ = sim::SimTime::zero();
  rx_accum_ = sim::SimTime::zero();
  tx_since_ = env().now();
  rx_since_ = env().now();
}

}  // namespace btsc::phy
