#include "phy/radio.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

#include "sim/environment.hpp"

namespace btsc::phy {

namespace {

/// "No side effect within any horizon" probe span for silent-medium
/// receivers: larger than any packet or assembly tail can be.
constexpr std::size_t kProbeHorizon = std::size_t{1} << 30;

}  // namespace

Radio::Radio(sim::Environment& env, std::string name, NoisyChannel& channel)
    : Module(env, std::move(name)),
      channel_(channel),
      port_(channel.attach(this->name())),
      enable_tx_(env, child_name("enable_tx_RF")),
      enable_rx_(env, child_name("enable_rx_RF")) {
  channel_.set_listener(port_, this);
  env.register_rearm(this->name() + ".radio", this, this);
}

Radio::~Radio() { env().unregister_rearm(this); }

// ---------------------------------------------------------------------------
// Transmitter
// ---------------------------------------------------------------------------

void Radio::transmit(int freq, sim::BitVector bits,
                     sim::UniqueFunction done) {
  if (tx_busy_) {
    throw std::logic_error(name() + ": transmit while TX busy");
  }
  if (bits.empty()) {
    if (done) done();
    return;
  }
  tx_busy_ = true;
  tx_freq_ = freq;
  tx_bits_ = std::move(bits);
  tx_pos_ = 0;
  tx_start_ = env().now();
  tx_done_ = std::move(done);
  enable_tx_.write(true);
  account_tx(true);
  if (channel_.begin_burst(port_, freq, tx_bits_, kBitPeriod)) {
    // The whole packet rides as one channel run: a single end-of-packet
    // timer replaces the per-bit chain. The channel calls
    // tx_burst_fallback() if the run degrades mid-flight.
    tx_burst_ = true;
    tx_timer_ = env().schedule_tagged(kBitPeriod * tx_bits_.size(),
                                      kTxFinishBurst, 0,
                                      [this] { tx_finish_burst(); }, this);
    return;
  }
  tx_next_bit();
}

void Radio::tx_next_bit() {
  if (tx_pos_ < tx_bits_.size()) {
    channel_.drive(port_, tx_freq_, from_bit(tx_bits_[tx_pos_]));
    ++bits_sent_;
    ++tx_pos_;
    tx_timer_ = env().schedule_tagged(kBitPeriod, kTxNextBit, 0,
                                      [this] { tx_next_bit(); }, this);
    return;
  }
  // Past the last bit: release the medium and finish.
  channel_.drive(port_, tx_freq_, Logic4::kZ);
  tx_timer_ = sim::kInvalidTimer;
  tx_complete();
}

void Radio::tx_finish_burst() {
  bits_sent_ += channel_.finish_burst(port_);
  tx_burst_ = false;
  tx_timer_ = sim::kInvalidTimer;
  tx_complete();
}

void Radio::tx_complete() {
  tx_busy_ = false;
  enable_tx_.write(false);
  account_tx(false);
  if (tx_done_) {
    // Move out first: the callback may start another transmission.
    auto done = std::move(tx_done_);
    tx_done_ = nullptr;
    done();
  }
}

void Radio::tx_burst_fallback(std::size_t driven) {
  assert(tx_burst_ && driven >= 1);
  tx_burst_ = false;
  bits_sent_ += driven;
  tx_pos_ = driven;
  env().cancel(tx_timer_);
  // Resume the exact per-bit chain at the next undriven bit instant
  // (the channel left bit driven-1 on the air; tx_next_bit at the end
  // of the chain releases the medium as usual).
  const sim::SimTime next = tx_start_ + kBitPeriod * driven;
  const sim::SimTime now = env().now();
  tx_timer_ = env().schedule_tagged(
      next > now ? next - now : sim::SimTime::zero(), kTxNextBit, 0,
      [this] { tx_next_bit(); }, this);
}

void Radio::abort_tx() {
  if (!tx_busy_) return;
  if (tx_burst_) {
    bits_sent_ += channel_.abort_burst(port_);
    tx_burst_ = false;
    env().cancel(tx_timer_);
  } else {
    env().cancel(tx_timer_);
    channel_.drive(port_, tx_freq_, Logic4::kZ);
  }
  tx_timer_ = sim::kInvalidTimer;
  tx_busy_ = false;
  tx_done_ = nullptr;
  enable_tx_.write(false);
  account_tx(false);
}

std::uint64_t Radio::bits_sent() const {
  if (tx_burst_) return bits_sent_ + channel_.burst_elapsed(port_);
  return bits_sent_;
}

// ---------------------------------------------------------------------------
// Receiver
// ---------------------------------------------------------------------------

bool Radio::burst_capable() const {
  return burst_sink_ != nullptr && channel_.burst_transport_enabled() &&
         channel_.config().rf_delay == sim::SimTime::zero();
}

void Radio::enable_rx(int freq) {
  if (rx_on_) {
    retune_rx(freq);
    return;
  }
  rx_freq_ = freq;
  rx_on_ = true;
  enable_rx_.write(true);
  account_rx(true);
  // First sample at grid + 250 ns: transmissions start on integer or
  // half-microsecond boundaries (even/odd half slots), so a quarter-bit
  // sampling offset never coincides with a bit edge of either grid.
  const std::uint64_t now_ns = env().now().as_ns();
  const std::uint64_t period = kBitPeriod.as_ns();
  const std::uint64_t grid = (now_ns / period) * period;
  std::uint64_t first = grid + period / 4;
  if (first <= now_ns) first += period;
  rx_anchor_ = sim::SimTime::ns(first);
  rx_consumed_ = 0;
  channel_.set_listening(port_, rx_freq_);
  rx_evaluate();
}

void Radio::disable_rx() {
  if (!rx_on_) return;
  rx_catch_up();
  rx_on_ = false;
  rx_mode_ = RxMode::kOff;
  cancel_rx_timer();
  channel_.set_listening(port_, -1);
  enable_rx_.write(false);
  account_rx(false);
}

void Radio::retune_rx(int freq) {
  if (!rx_on_) {
    rx_freq_ = freq;
    return;
  }
  // Materialise everything heard on the old frequency first.
  rx_catch_up();
  rx_freq_ = freq;
  channel_.set_listening(port_, freq);
  rx_evaluate();
}

void Radio::cancel_rx_timer() {
  env().cancel(rx_timer_);
  rx_timer_ = sim::kInvalidTimer;
}

std::uint64_t Radio::rx_pending() const {
  // RX materialisation is always inclusive of now(): sample instants
  // live on the +250 ns grid, where the per-bit sample event is ordered
  // before every same-instant observer that can reach this code (see
  // docs/ARCHITECTURE.md, "Word-packed bit transport & burst delivery").
  const sim::SimTime now = env().now();
  if (now < rx_anchor_) return 0;
  const std::uint64_t target =
      (now - rx_anchor_).as_ns() / kBitPeriod.as_ns() + 1;
  return target > rx_consumed_ ? target - rx_consumed_ : 0;
}

std::int64_t Radio::run_index_at(std::uint64_t k,
                                 const NoisyChannel::RxMedium& m) const {
  const sim::SimTime t = sample_time(k);
  if (t <= m.run_start) return -1;
  // The bit visible at a sample instant is the last one whose drive
  // instant precedes it in event order: strictly earlier, or equal when
  // the drive chain started on the sample grid (the sample event fires
  // first there) -- hence the -1 ns.
  return static_cast<std::int64_t>(
      ((t - m.run_start).as_ns() - 1) / m.run_period.as_ns());
}

void Radio::rx_consume(std::uint64_t n) {
  if (n == 0) return;
  assert(rx_mode_ == RxMode::kSkip || rx_mode_ == RxMode::kRun);
  if (rx_mode_ == RxMode::kSkip) {
    burst_sink_->consume_quiet(nullptr, 0, static_cast<std::size_t>(n));
  } else {
    const NoisyChannel::RxMedium m = channel_.rx_medium(rx_freq_);
    assert(m.run_bits != nullptr);
    const std::int64_t idx = run_index_at(rx_consumed_, m);
    assert(idx >= 0 &&
           static_cast<std::size_t>(idx) + n <= m.run_bits->size());
    burst_sink_->consume_quiet(m.run_bits, static_cast<std::size_t>(idx),
                               static_cast<std::size_t>(n));
  }
  rx_consumed_ += n;
  bits_sampled_ += n;
}

void Radio::rx_catch_up() {
  if (rx_mode_ != RxMode::kSkip && rx_mode_ != RxMode::kRun) return;
  std::uint64_t n = rx_pending();
  if (env().pending(rx_timer_) && rx_barrier_index_ >= rx_consumed_) {
    // A side-effect sample is scheduled: stop short of it. Its event is
    // still in the queue (it fires after the event running now), and
    // the effect must execute there, not inside a quiet catch-up.
    const std::uint64_t quiet = rx_barrier_index_ - rx_consumed_;
    if (n > quiet) n = quiet;
  }
  rx_consume(n);
}

void Radio::rx_state_changed() {
  if (!rx_on_) return;
  rx_catch_up();
  rx_evaluate();
}

void Radio::rx_sync() { rx_catch_up(); }

void Radio::rx_reevaluate() {
  if (rx_on_) rx_evaluate();
}

void Radio::rx_evaluate() {
  assert(rx_on_);
  const RxMode old = rx_mode_;
  const NoisyChannel::RxMedium m =
      burst_capable() ? channel_.rx_medium(rx_freq_)
                      : NoisyChannel::RxMedium{};
  if (!burst_capable() || (m.run_bits == nullptr && m.live)) {
    // Classic one-event-per-sample chain: plain sinks always, and burst
    // sinks whenever per-bit transmissions (noise, collisions,
    // fallbacks) are on the air.
    rx_mode_ = RxMode::kPerBit;
    // A pending timer from an earlier lazy mode points at a barrier,
    // not at the next sample; replace it.
    if (old != RxMode::kPerBit) cancel_rx_timer();
    if (!env().pending(rx_timer_)) {
      const sim::SimTime next = sample_time(rx_consumed_);
      assert(next > env().now());
      rx_timer_ = env().schedule_tagged(next - env().now(), kRxSample, 0,
                                        [this] { rx_sample(); }, this);
    }
    return;
  }
  cancel_rx_timer();
  if (m.run_bits != nullptr) {
    // Lazy run consumption: find the earliest sample whose processing
    // has an externally visible effect and wake exactly there. A fully
    // quiet tail needs no timer at all -- the transmitter's end-of-run
    // event re-notifies every listener.
    rx_mode_ = RxMode::kRun;
    const std::int64_t idx = run_index_at(rx_consumed_, m);
    const std::size_t len = m.run_bits->size();
    if (idx >= 0 && static_cast<std::size_t>(idx) < len) {
      const std::size_t avail = len - static_cast<std::size_t>(idx);
      const std::size_t q = burst_sink_->quiet_prefix(
          m.run_bits, static_cast<std::size_t>(idx), avail);
      if (q < avail) {
        rx_barrier_index_ = rx_consumed_ + q;
        rx_timer_ = env().schedule_tagged(
            sample_time(rx_barrier_index_) - env().now(), kRxBarrier, 0,
            [this] { rx_barrier(); }, this);
      }
    }
    return;
  }
  // Silent medium: sleep until a side effect (a warm correlator window
  // or an assembly phase still completing on 'Z' bits) or a medium
  // change, whichever comes first.
  rx_mode_ = RxMode::kSkip;
  const std::size_t q =
      burst_sink_->quiet_prefix(nullptr, 0, kProbeHorizon);
  if (q < kProbeHorizon) {
    rx_barrier_index_ = rx_consumed_ + q;
    rx_timer_ = env().schedule_tagged(
        sample_time(rx_barrier_index_) - env().now(), kRxBarrier, 0,
        [this] { rx_barrier(); }, this);
  }
}

void Radio::rx_sample() {
  ++bits_sampled_;
  ++rx_consumed_;
  rx_timer_ = sim::kInvalidTimer;
  const Logic4 v = channel_.sense(rx_freq_);
  if (burst_sink_ != nullptr) {
    burst_sink_->on_sample(v);
  } else if (rx_sink_) {
    rx_sink_(v);
  }
  // The sink may have disabled the receiver.
  if (rx_on_) rx_evaluate();
}

void Radio::rx_barrier() {
  rx_timer_ = sim::kInvalidTimer;
  assert(rx_barrier_index_ >= rx_consumed_);
  assert(rx_pending() > rx_barrier_index_ - rx_consumed_);
  {
    // Everything before the probed index is quiet by construction; the
    // sample at this instant carries the side effect and goes through
    // the full per-sample path at exactly its own time.
    rx_consume(rx_barrier_index_ - rx_consumed_);
    Logic4 v = Logic4::kZ;
    if (rx_mode_ == RxMode::kRun) {
      const NoisyChannel::RxMedium m = channel_.rx_medium(rx_freq_);
      assert(m.run_bits != nullptr);
      const std::int64_t idx = run_index_at(rx_consumed_, m);
      assert(idx >= 0 &&
             static_cast<std::size_t>(idx) < m.run_bits->size());
      v = from_bit((*m.run_bits)[static_cast<std::size_t>(idx)]);
    }
    ++bits_sampled_;
    ++rx_consumed_;
    burst_sink_->on_sample(v);
  }
  if (rx_on_) rx_evaluate();
}

std::uint64_t Radio::bits_sampled() const {
  if (rx_mode_ == RxMode::kSkip || rx_mode_ == RxMode::kRun) {
    return bits_sampled_ + rx_pending();
  }
  return bits_sampled_;
}

// ---------------------------------------------------------------------------
// Activity accounting
// ---------------------------------------------------------------------------

void Radio::account_tx(bool on) {
  if (on) {
    tx_since_ = env().now();
  } else {
    tx_accum_ += env().now() - tx_since_;
  }
}

void Radio::account_rx(bool on) {
  if (on) {
    rx_since_ = env().now();
  } else {
    rx_accum_ += env().now() - rx_since_;
  }
}

sim::SimTime Radio::tx_on_time() const {
  sim::SimTime t = tx_accum_;
  if (tx_busy_) t += env().now() - tx_since_;
  return t;
}

sim::SimTime Radio::rx_on_time() const {
  sim::SimTime t = rx_accum_;
  if (rx_on_) t += env().now() - rx_since_;
  return t;
}

void Radio::reset_activity() {
  tx_accum_ = sim::SimTime::zero();
  rx_accum_ = sim::SimTime::zero();
  tx_since_ = env().now();
  rx_since_ = env().now();
}

// ---------------------------------------------------------------------------
// Checkpointing
// ---------------------------------------------------------------------------

void Radio::save_state(sim::SnapshotWriter& w) const {
  if (tx_done_) {
    throw sim::SnapshotError(
        name() + ": transmission with a done-callback live at checkpoint");
  }
  w.begin_section(sim::snapshot_tag("RADI"));
  w.b(tx_busy_);
  w.b(tx_burst_);
  w.u32(static_cast<std::uint32_t>(tx_freq_));
  sim::save_bitvector(w, tx_bits_);
  w.u64(tx_pos_);
  w.time(tx_start_);
  w.b(rx_on_);
  w.u32(static_cast<std::uint32_t>(rx_freq_));
  w.u8(static_cast<std::uint8_t>(rx_mode_));
  w.time(rx_anchor_);
  w.u64(rx_consumed_);
  w.u64(rx_barrier_index_);
  w.b(enable_tx_.read());
  w.b(enable_rx_.read());
  w.time(tx_accum_);
  w.time(rx_accum_);
  w.time(tx_since_);
  w.time(rx_since_);
  w.u64(bits_sent_);
  w.u64(bits_sampled_);
  w.end_section();
}

void Radio::restore_state(sim::SnapshotReader& r) {
  r.enter_section(sim::snapshot_tag("RADI"));
  tx_busy_ = r.b();
  tx_burst_ = r.b();
  tx_freq_ = static_cast<int>(r.u32());
  sim::restore_bitvector(r, tx_bits_);
  tx_pos_ = static_cast<std::size_t>(r.u64());
  tx_start_ = r.time();
  rx_on_ = r.b();
  rx_freq_ = static_cast<int>(r.u32());
  rx_mode_ = static_cast<RxMode>(r.u8());
  rx_anchor_ = r.time();
  rx_consumed_ = r.u64();
  rx_barrier_index_ = r.u64();
  enable_tx_.restore_value(r.b());
  enable_rx_.restore_value(r.b());
  tx_accum_ = r.time();
  rx_accum_ = r.time();
  tx_since_ = r.time();
  rx_since_ = r.time();
  bits_sent_ = r.u64();
  bits_sampled_ = r.u64();
  r.leave_section();
  tx_done_ = nullptr;
  tx_timer_ = sim::kInvalidTimer;  // re-set by rearm_timer
  rx_timer_ = sim::kInvalidTimer;
  // An in-flight burst run's packed bits live in this radio; the channel
  // restored the run's geometry with a null bit pointer.
  if (tx_burst_) channel_.rebind_run_bits(port_, &tx_bits_);
}

void Radio::rearm_timer(std::uint16_t kind, std::uint64_t /*payload*/,
                        sim::SimTime when) {
  const sim::SimTime delay = when - env().now();
  switch (kind) {
    case kTxNextBit:
      tx_timer_ = env().schedule_tagged(delay, kTxNextBit, 0,
                                        [this] { tx_next_bit(); }, this);
      break;
    case kTxFinishBurst:
      tx_timer_ = env().schedule_tagged(delay, kTxFinishBurst, 0,
                                        [this] { tx_finish_burst(); }, this);
      break;
    case kRxSample:
      rx_timer_ = env().schedule_tagged(delay, kRxSample, 0,
                                        [this] { rx_sample(); }, this);
      break;
    case kRxBarrier:
      rx_timer_ = env().schedule_tagged(delay, kRxBarrier, 0,
                                        [this] { rx_barrier(); }, this);
      break;
    default:
      throw sim::SnapshotError(name() + ": unknown timer kind");
  }
}

}  // namespace btsc::phy
