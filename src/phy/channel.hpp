// The noisy channel of the paper's Fig. 2.
//
// One module with one input per Bluetooth device and a resolved output:
//   - a device that is not transmitting drives 'Z' (high impedance);
//   - two or more simultaneous transmitters on the same RF channel produce
//     the undefined value 'X' (collision);
//   - channel noise inverts defined bits with probability BER, controlled
//     by the simulation's random number generator;
//   - the modulator/demodulator delay of the RF blocks is modelled as a
//     fixed latency between drive() and the value appearing on the medium.
//
// Unlike the paper's single-wire model, resolution is per RF channel
// (frequency 0..78): transmissions on different hop frequencies do not
// collide. Setting ChannelConfig::per_frequency = false restores the
// paper's stricter single-wire behaviour.
//
// Burst transport
// ---------------
// The per-bit drive()/sense() contract stays the reference semantics,
// but an uncontended single-transmitter packet can be registered as one
// *burst run* (begin_burst): the channel then answers sense() from the
// packed bit vector and run geometry instead of taking one drive event
// per microsecond, and notifies registered Listeners (the radios) when
// the medium changes so idle receivers can stop sampling entirely.
// A run is only accepted when it is provably equivalent to the per-bit
// path -- no RF delay, a silent medium, and (when tracing) a tracer
// that accepts backfill -- and it falls back to per-bit scheduling the
// moment a second transmitter drives, the BER changes, or the
// transmitter aborts.
//
// BER > 0 runs draw the whole packet's noise flips up front as an XOR
// error mask (sim::Rng::fill_error_mask consumes the stream in exactly
// the per-bit order) and expose the corrupted copy as the run's bits; a
// registered sim::RngGuard rewinds/replays the stream if any foreign
// RNG draw lands mid-run, so every seed reproduces the per-bit path
// bit for bit. Traced runs reconstruct the bus waveform afterwards via
// the tracer's time-stamped backfill. docs/ARCHITECTURE.md ("Word-packed
// bit transport & burst delivery" and "Batched error masks") carries
// the full equivalence argument.
#pragma once

#include <array>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "phy/logic4.hpp"
#include "sim/bitvector.hpp"
#include "sim/cross_shard.hpp"
#include "sim/environment.hpp"
#include "sim/module.hpp"
#include "sim/signal.hpp"
#include "sim/snapshot.hpp"
#include "sim/time.hpp"

namespace btsc::sim {
class ShardGroup;
}  // namespace btsc::sim

namespace btsc::phy {

struct ChannelConfig {
  /// Probability that a defined bit on the medium is inverted.
  double ber = 0.0;
  /// Modulator + demodulator latency (paper: "the delay of the modulator
  /// and demodulator RF blocks"). Zero keeps TX and RX bit grids aligned.
  sim::SimTime rf_delay = sim::SimTime::zero();
  /// Resolve collisions per RF channel (true) or on one shared wire as in
  /// the paper's figure (false).
  bool per_frequency = true;
  /// Number of RF channels (79 in the 2.4 GHz ISM band).
  int num_channels = 79;
  /// Enables the burst fast path (word-packed runs + idle-receiver
  /// skipping). Defaults to the process-wide switch; per-instance
  /// override via NoisyChannel::set_burst_transport_enabled(). Purely a
  /// performance mode: results are bit-identical either way.
  bool burst_transport = true;
};

/// Port handle returned by attach(); identifies a device on the channel.
using PortId = int;

class NoisyChannel final : public sim::Module,
                           public sim::Snapshotable,
                           public sim::RngGuard,
                           public sim::RearmHandler,
                           public sim::CrossShardEndpoint {
 public:
  /// Burst-transport callbacks implemented by the Radio that owns a
  /// port. Every medium transition is delivered in two phases so lazy
  /// consumers can materialise pending samples against the *old* medium
  /// state before reacting to the new one: first rx_sync() on every
  /// listening port, then the state change, then rx_reevaluate().
  class Listener {
   public:
    /// Phase 1: consume every sample instant at or before now() under
    /// the medium state as it still is.
    virtual void rx_sync() = 0;
    /// Phase 2: the medium changed; pick a new sampling mode.
    virtual void rx_reevaluate() = 0;
    /// The port's own burst run degraded to per-bit: `driven` bits are
    /// already on the air (the channel holds the last one); the owner
    /// must schedule the remainder as per-bit drives.
    virtual void tx_burst_fallback(std::size_t driven) = 0;

   protected:
    ~Listener() = default;
  };

  NoisyChannel(sim::Environment& env, std::string name,
               ChannelConfig config = {});
  ~NoisyChannel() override;

  const ChannelConfig& config() const { return config_; }

  /// Changing the BER mid-run degrades an active burst run to per-bit
  /// first: the remaining bits need per-instant noise draws.
  void set_ber(double ber);

  // ---- burst transport switches ----

  /// Process-wide default for newly constructed channels (the
  /// "Environment-style" escape hatch; mirrors
  /// Environment::set_timer_wheel_enabled). Thread-safe.
  static void set_burst_transport_default(bool enabled);
  static bool burst_transport_default();

  /// Per-instance switch. Disabling degrades an active run to per-bit.
  void set_burst_transport_enabled(bool enabled);
  bool burst_transport_enabled() const { return config_.burst_transport; }

  /// Registers a device; `device_name` is used for tracing/diagnostics.
  PortId attach(const std::string& device_name);
  int num_ports() const { return static_cast<int>(ports_.size()); }

  // ---- cross-shard coupling (sim/shard.hpp) ----
  //
  // A sharded scenario replicates the medium per shard: every shard's
  // channel holds a local port per local device plus a *ghost* port per
  // remote transmitter. Local drives are published into the coupling
  // domain as portable CrossShardEvents (applied remotely after
  // rf_delay, the group's lookahead); incoming events land on the
  // matching ghost port through a tagged local timer, so ghost drives
  // resolve, collide and trace exactly like local ones. Each replica
  // draws its own noise for the bits it carries (the noise processes
  // of the replicas are independent by construction); local-side
  // accounting (bits_driven, flips) never counts ghost traffic.

  /// Registers a ghost port mirroring remote transmitter `src_port` of
  /// shard `src_shard`. Ghost ports are never listening and must not
  /// be driven locally.
  PortId attach_remote(const std::string& device_name, std::uint32_t src_shard,
                       PortId src_port);

  /// Couples this channel into `domain` of `group`. Requires a positive
  /// group lookahead covered by this channel's rf_delay (the physical
  /// justification of the conservative window). Must be called after
  /// every local port is attached and before the first run.
  void bind_shard(sim::ShardGroup& group, std::uint32_t domain);

  /// True when at least one other shard's channel shares the domain --
  /// i.e. local drives actually cross a boundary.
  bool cross_shard_coupled() const;

  /// CrossShardEndpoint: re-materialises a routed event as a tagged
  /// local timer on the ghost port (fires at ev.when).
  void deliver_cross_shard(const sim::CrossShardEvent& ev) override;

  /// RearmHandler: rebuilds pending (local or ghost) rf_delay apply
  /// timers from their descriptors after a snapshot restore.
  void rearm_timer(std::uint16_t kind, std::uint64_t payload,
                   sim::SimTime when) override;

  /// Wires the burst-transport listener of `port` (done by the Radio).
  void set_listener(PortId port, Listener* listener);

  /// Declares the receiver of `port` tuned to `freq` (-1: not
  /// listening). Listening ports get the two-phase medium
  /// notifications.
  void set_listening(PortId port, int freq);

  /// Drives a value from `port` on RF channel `freq`. kZ releases the
  /// medium. Takes effect after the configured rf_delay. Noise is applied
  /// once per driven bit, matching the paper's "inversion of the bit in
  /// the channel".
  void drive(PortId port, int freq, Logic4 value);

  /// Resolved value seen by a receiver tuned to `freq`.
  Logic4 sense(int freq) const;

  /// True if any port is currently driving a defined value (any freq).
  bool busy() const;

  // ---- burst runs (called by the owning Radio) ----

  /// Registers the whole of `bits` as one uncontended run from `port` on
  /// `freq`, one bit per `period` starting now. Returns false -- and
  /// changes nothing -- when the run cannot be batched (burst transport
  /// off, RF delay, a tracer without backfill support, or a non-silent
  /// medium); the caller must then drive per-bit. `bits` must stay alive
  /// and unchanged until the run ends. On success the first bit is on
  /// the medium immediately (as a per-bit drive would be). BER > 0 runs
  /// pre-apply noise as an error mask drawn in per-bit order; receivers
  /// see the corrupted copy through rx_medium()/sense().
  bool begin_burst(PortId port, int freq, const sim::BitVector& bits,
                   sim::SimTime period);

  /// True while `port` owns the active burst run.
  bool burst_active(PortId port) const {
    return run_.active && run_.port == port;
  }

  /// Bits of `port`'s active run already on the air (event-order exact).
  std::size_t burst_elapsed(PortId port) const {
    assert(burst_active(port));
    (void)port;
    return run_bits_elapsed();
  }

  /// Completes `port`'s run at its natural end (caller's end-of-packet
  /// timer): consumes listeners, releases the medium, reports the number
  /// of bits driven.
  std::size_t finish_burst(PortId port);

  /// Aborts `port`'s run mid-flight and releases the medium; returns the
  /// number of bits that made it onto the air.
  std::size_t abort_burst(PortId port);

  // ---- medium view for receivers ----

  /// What a receiver tuned to `freq` currently faces.
  struct RxMedium {
    /// Some port drives a defined value visible at this frequency
    /// through per-bit drives (collisions and noisy transmissions live
    /// here) -- the receiver must sample per bit.
    bool live = false;
    /// Active burst run visible at this frequency (nullptr when none).
    const sim::BitVector* run_bits = nullptr;
    sim::SimTime run_start;
    sim::SimTime run_period;
  };
  RxMedium rx_medium(int freq) const;

  // ---- checkpointing ----

  /// Saves/restores the mutable channel state: BER and burst switch,
  /// per-port drive/listening state, the active run's geometry and the
  /// noise/collision counters. The run's packed bits are NOT part of the
  /// stream -- they live in the transmitting Radio's tx buffer, and that
  /// radio re-links them via rebind_run_bits() during its own restore
  /// (the restore order guarantees it runs after the channel's). A
  /// masked run stores only the pre-fill RNG state: the error mask is a
  /// pure function of (state, BER, length) and is regenerated on
  /// restore. Throws sim::SnapshotError while a traced run holds the
  /// tracer -- the waveform buffer is not snapshotable.
  void save_state(sim::SnapshotWriter& w) const override;
  void restore_state(sim::SnapshotReader& r) override;

  /// Re-links the active run's bit storage (the transmitter's clean
  /// bits) after a restore; rebuilds the error mask for masked runs.
  /// Only valid while `port` owns the restored run.
  void rebind_run_bits(PortId port, const sim::BitVector* bits);

  // ---- tracing (called by the owning system) ----

  /// Materialises the backfilled bus transitions of a still-active
  /// traced run up to now(). Must be called before the tracer is closed
  /// or detached, or the run's waveform tail is lost.
  void flush_trace_backfill();

  // ---- RngGuard ----

  /// A foreign RNG draw landed while a masked run was in flight: rewind
  /// the upfront mask fill to the per-bit draw position and degrade the
  /// remainder of the run to per-bit scheduling (or, if every bit has
  /// already elapsed, simply stand down -- the stream position matches
  /// the per-bit reference exactly).
  void rng_external_draw() override;

  // ---- diagnostics ----
  std::uint64_t bits_driven() const { return bits_driven_; }
  std::uint64_t bits_flipped() const {
    std::uint64_t flips = bits_flipped_;
    // Flips of an in-flight masked run are accounted lazily: only the
    // elapsed prefix of the mask has "happened" yet.
    if (run_.active && run_.masked) flips += mask_flips_before(run_bits_elapsed());
    return flips;
  }
  std::uint64_t collision_samples() const { return collision_samples_; }
  /// Bits transported through accepted burst runs (perf telemetry).
  std::uint64_t bits_burst() const { return bits_burst_; }
  /// Runs degraded to per-bit by contention/abort/reconfiguration.
  std::uint64_t burst_fallbacks() const { return burst_fallbacks_; }
  /// Ghost-port bits applied from other shards (kept out of
  /// bits_driven/bits_flipped: those count local transmissions only).
  std::uint64_t remote_bits() const { return remote_bits_; }
  std::uint64_t remote_flips() const { return remote_flips_; }

 private:
  struct Run {
    bool active = false;
    /// BER > 0: noise flips pre-applied via mask_, bits points at the
    /// channel-owned corrupted copy (noisy_).
    bool masked = false;
    /// The per-bit RNG draw order has fully caught up with the upfront
    /// mask fill (all bits elapsed when a foreign draw arrived); no
    /// rewind is needed at settle time.
    bool mask_synced = false;
    PortId port = -1;
    int freq = 0;
    /// What the medium shows (noisy_ for masked runs).
    const sim::BitVector* bits = nullptr;
    /// The transmitter's storage, as passed to begin_burst (equal to
    /// `bits` for unmasked runs). Needed for snapshot rebinding.
    const sim::BitVector* clean = nullptr;
    sim::SimTime start;
    sim::SimTime period;
  };

  // Descriptor kinds of the tagged rf_delay apply timers (snapshots
  // carry them; see rearm_timer).
  static constexpr std::uint16_t kTimerApply = 1;        // local drive
  static constexpr std::uint16_t kTimerRemoteApply = 2;  // ghost drive

  static std::uint64_t pack_apply(PortId port, int freq, Logic4 value);
  void schedule_apply(std::uint16_t kind, std::uint64_t payload, sim::SimTime when);
  void apply(PortId port, int freq, Logic4 value);
  void apply_remote(PortId port, int freq, Logic4 value);
  /// Shared tail of apply()/apply_remote(): commits the port value,
  /// maintains defined_ports_ and fires the two-phase notifications.
  void commit_port(PortId port, int freq, Logic4 value);
  void refresh_trace();

  /// Draws the run's error mask (saving the pre-fill RNG state first),
  /// builds the corrupted copy and registers the RNG guard.
  void arm_masked_run(const sim::BitVector& bits);

  /// Rebuilds mask_/noisy_ for `bits` from mask_base_ (shared by
  /// arm_masked_run and the snapshot rebind path).
  void build_masked_buffers(const sim::BitVector& bits, sim::Rng& rng);

  /// Number of set bits in the first `k` mask positions.
  std::size_t mask_flips_before(std::size_t k) const;

  /// Emits the net bus transitions of run bits [backfilled_, k) at their
  /// per-bit instants (Tracer::change_at under the open hold).
  void backfill_to(std::size_t k);

  /// Bits of the active run already on the air, honouring the event
  /// tiebreak: a bit whose drive instant equals now() counts only when
  /// the kernel is not mid-dispatch (outside dispatch every same-instant
  /// event has fired; inside, the virtual drive event is ordered after
  /// the currently running one).
  std::size_t run_bits_elapsed() const;

  /// Current run bit visible to a same-instant observer (sense()).
  Logic4 run_value_now() const;

  /// Degrades the active run to per-bit scheduling (two-phase listener
  /// notification + tx_burst_fallback on the owner).
  void fallback_run();

  /// Tears the run down after consuming listeners; `driven` bits are
  /// accounted and the port is left driving `last` (kZ to release).
  std::size_t settle_run(std::size_t driven, Logic4 last);

  void notify_sync();
  void notify_reevaluate();

  /// True when any port drives a defined value visible at `freq` via
  /// per-bit drives (the run does not count).
  bool live_at(int freq) const;

  ChannelConfig config_;
  struct Port {
    std::string name;
    int freq = -1;
    Logic4 value = Logic4::kZ;
    Listener* listener = nullptr;
    int rx_freq = -1;  // -1: not listening
    bool remote = false;  // ghost port mirroring a remote transmitter
    std::uint32_t src_shard = 0;  // (remote only) publishing shard
    PortId src_port = -1;         // (remote only) port id on that shard
  };
  std::vector<Port> ports_;
  // Cross-shard coupling (null/zero for a standalone channel).
  sim::ShardGroup* group_ = nullptr;
  std::uint32_t domain_ = 0;
  std::uint32_t shard_ = 0;
  bool rearm_registered_ = false;
  Run run_;
  // Masked-run machinery (meaningful only while run_.masked). The
  // buffers keep their capacity across runs, so steady-state masked
  // bursts allocate nothing.
  sim::BitVector mask_;   // XOR error mask of the active masked run
  sim::BitVector noisy_;  // run_.clean ^ mask_, what the medium shows
  std::array<std::uint64_t, 4> mask_base_{};  // RNG state before the fill
  // Traced-run backfill (meaningful only while a hold is open).
  bool trace_hold_ = false;
  std::size_t backfilled_ = 0;  // run bits already backfilled
  int defined_ports_ = 0;  // ports currently driving a defined value
  bool notifying_ = false;
  std::uint64_t bits_driven_ = 0;
  std::uint64_t bits_flipped_ = 0;
  mutable std::uint64_t collision_samples_ = 0;
  std::uint64_t bits_burst_ = 0;
  std::uint64_t burst_fallbacks_ = 0;
  std::uint64_t remote_bits_ = 0;
  std::uint64_t remote_flips_ = 0;
  // Traced view of the fully-resolved wire (all frequencies), matching the
  // "channel" net of the paper's figure.
  std::unique_ptr<sim::Signal<Logic4>> bus_trace_;
};

}  // namespace btsc::phy
