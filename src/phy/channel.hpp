// The noisy channel of the paper's Fig. 2.
//
// One module with one input per Bluetooth device and a resolved output:
//   - a device that is not transmitting drives 'Z' (high impedance);
//   - two or more simultaneous transmitters on the same RF channel produce
//     the undefined value 'X' (collision);
//   - channel noise inverts defined bits with probability BER, controlled
//     by the simulation's random number generator;
//   - the modulator/demodulator delay of the RF blocks is modelled as a
//     fixed latency between drive() and the value appearing on the medium.
//
// Unlike the paper's single-wire model, resolution is per RF channel
// (frequency 0..78): transmissions on different hop frequencies do not
// collide. Setting ChannelConfig::per_frequency = false restores the
// paper's stricter single-wire behaviour.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "phy/logic4.hpp"
#include "sim/module.hpp"
#include "sim/signal.hpp"
#include "sim/time.hpp"

namespace btsc::phy {

struct ChannelConfig {
  /// Probability that a defined bit on the medium is inverted.
  double ber = 0.0;
  /// Modulator + demodulator latency (paper: "the delay of the modulator
  /// and demodulator RF blocks"). Zero keeps TX and RX bit grids aligned.
  sim::SimTime rf_delay = sim::SimTime::zero();
  /// Resolve collisions per RF channel (true) or on one shared wire as in
  /// the paper's figure (false).
  bool per_frequency = true;
  /// Number of RF channels (79 in the 2.4 GHz ISM band).
  int num_channels = 79;
};

/// Port handle returned by attach(); identifies a device on the channel.
using PortId = int;

class NoisyChannel final : public sim::Module {
 public:
  NoisyChannel(sim::Environment& env, std::string name,
               ChannelConfig config = {});

  const ChannelConfig& config() const { return config_; }
  void set_ber(double ber) { config_.ber = ber; }

  /// Registers a device; `device_name` is used for tracing/diagnostics.
  PortId attach(const std::string& device_name);
  int num_ports() const { return static_cast<int>(ports_.size()); }

  /// Drives a value from `port` on RF channel `freq`. kZ releases the
  /// medium. Takes effect after the configured rf_delay. Noise is applied
  /// once per driven bit, matching the paper's "inversion of the bit in
  /// the channel".
  void drive(PortId port, int freq, Logic4 value);

  /// Resolved value seen by a receiver tuned to `freq`.
  Logic4 sense(int freq) const;

  /// True if any port is currently driving a defined value (any freq).
  bool busy() const;

  // ---- diagnostics ----
  std::uint64_t bits_driven() const { return bits_driven_; }
  std::uint64_t bits_flipped() const { return bits_flipped_; }
  std::uint64_t collision_samples() const { return collision_samples_; }

 private:
  void apply(PortId port, int freq, Logic4 value);
  void refresh_trace();

  ChannelConfig config_;
  struct Port {
    std::string name;
    int freq = -1;
    Logic4 value = Logic4::kZ;
  };
  std::vector<Port> ports_;
  std::uint64_t bits_driven_ = 0;
  std::uint64_t bits_flipped_ = 0;
  mutable std::uint64_t collision_samples_ = 0;
  // Traced view of the fully-resolved wire (all frequencies), matching the
  // "channel" net of the paper's figure.
  std::unique_ptr<sim::Signal<Logic4>> bus_trace_;
};

}  // namespace btsc::phy
