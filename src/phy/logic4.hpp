// Four-valued digital logic for the channel model.
//
// The paper's channel (its Fig. 2) abstracts the RF medium as a digital
// wire carrying {0, 1, Z, X}: Z when nobody transmits, X when a collision
// occurs. The resolution rules here implement exactly that channel
// resolver.
#pragma once

#include <cstdint>
#include <string>

#include "sim/signal.hpp"

namespace btsc::phy {

enum class Logic4 : std::uint8_t {
  kZero = 0,
  kOne = 1,
  kZ = 2,  // high impedance: no transmitter on the medium
  kX = 3,  // conflict: two or more simultaneous transmitters
};

constexpr bool is_defined(Logic4 v) {
  return v == Logic4::kZero || v == Logic4::kOne;
}

constexpr Logic4 from_bit(bool b) { return b ? Logic4::kOne : Logic4::kZero; }

/// Value of a defined level; must not be called on Z/X.
constexpr bool to_bit(Logic4 v) { return v == Logic4::kOne; }

/// Wired resolution of two drivers: Z yields to anything; two equal
/// defined values agree; any other combination is a conflict (X).
constexpr Logic4 resolve(Logic4 a, Logic4 b) {
  if (a == Logic4::kZ) return b;
  if (b == Logic4::kZ) return a;
  if (a == b && a != Logic4::kX) return a;
  return Logic4::kX;
}

constexpr char to_char(Logic4 v) {
  switch (v) {
    case Logic4::kZero:
      return '0';
    case Logic4::kOne:
      return '1';
    case Logic4::kZ:
      return 'z';
    default:
      return 'x';
  }
}

/// Inverts a defined level; Z and X are unchanged (noise cannot flip the
/// absence of a signal or make a collision more defined).
constexpr Logic4 invert(Logic4 v) {
  if (v == Logic4::kZero) return Logic4::kOne;
  if (v == Logic4::kOne) return Logic4::kZero;
  return v;
}

}  // namespace btsc::phy

namespace btsc::sim {

/// Trace Logic4 as a single VCD scalar using the native 0/1/z/x states.
template <>
struct TraceEncoder<btsc::phy::Logic4> {
  static constexpr unsigned width() { return 1; }
  static std::string encode(const btsc::phy::Logic4& v) {
    return std::string(1, btsc::phy::to_char(v));
  }
};

}  // namespace btsc::sim
