// Radio front-end model for one Bluetooth device.
//
// Owns the device's port on the NoisyChannel and the two RF enable lines
// the paper plots in its waveform figures (enable_tx_RF, enable_rx_RF).
// The Bluetooth protocol switches the RF blocks on only when necessary;
// the time integrals of these enables are exactly the "RF activity"
// metric of the paper's Figs. 10-12 and the input to the power model.
//
// Bit timing: the symbol rate is 1 Mbit/s, so the transmitter drives one
// bit per microsecond on the channel, and the receiver samples the medium
// at +250 ns past the bit grid -- an offset that stays strictly inside
// the bit period for transmissions aligned to either the even (integer
// microsecond) or odd (half-microsecond) half-slot grid.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "phy/channel.hpp"
#include "phy/logic4.hpp"
#include "sim/bitvector.hpp"
#include "sim/module.hpp"
#include "sim/signal.hpp"
#include "sim/time.hpp"
#include "sim/unique_function.hpp"

namespace btsc::phy {

/// Duration of one transmitted symbol (1 Mbit/s raw rate).
inline constexpr sim::SimTime kBitPeriod = sim::SimTime::us(1);

class Radio final : public sim::Module {
 public:
  Radio(sim::Environment& env, std::string name, NoisyChannel& channel);

  // ---- transmitter ----

  /// Starts transmitting `bits` on RF channel `freq`, one bit per
  /// microsecond starting now. `done` (optional, move-only) runs right
  /// after the last bit ends and the medium is released. Requires the
  /// transmitter to be idle.
  void transmit(int freq, sim::BitVector bits,
                sim::UniqueFunction done = {});

  /// Aborts an in-progress transmission and releases the medium.
  void abort_tx();

  bool tx_busy() const { return tx_busy_; }

  // ---- receiver ----

  /// Sink invoked once per sampled bit while the receiver is enabled.
  void set_rx_sink(std::function<void(Logic4)> sink) {
    rx_sink_ = std::move(sink);
  }

  /// Enables the receiver on `freq`. Sampling starts at the next mid-bit
  /// instant. Disabling stops sampling immediately.
  void enable_rx(int freq);
  void disable_rx();
  bool rx_enabled() const { return rx_on_; }
  int rx_freq() const { return rx_freq_; }

  /// Retunes while enabled (no-op when disabled).
  void retune_rx(int freq);

  // ---- RF enable lines (traced; the paper's waveform signals) ----
  sim::BoolSignal& enable_tx_rf() { return enable_tx_; }
  sim::BoolSignal& enable_rx_rf() { return enable_rx_; }

  // ---- activity accounting (Figs. 10-12) ----

  /// Total time the TX/RX chains were enabled since the last reset,
  /// including any interval still in progress.
  sim::SimTime tx_on_time() const;
  sim::SimTime rx_on_time() const;

  /// Starts a fresh measurement window at the current time.
  void reset_activity();

  std::uint64_t bits_sent() const { return bits_sent_; }
  std::uint64_t bits_sampled() const { return bits_sampled_; }

 private:
  void tx_next_bit();
  void rx_sample();
  void account_tx(bool on);
  void account_rx(bool on);

  NoisyChannel& channel_;
  PortId port_;

  // TX state
  bool tx_busy_ = false;
  int tx_freq_ = 0;
  sim::BitVector tx_bits_;
  std::size_t tx_pos_ = 0;
  sim::UniqueFunction tx_done_;
  sim::TimerId tx_timer_ = sim::kInvalidTimer;

  // RX state
  bool rx_on_ = false;
  int rx_freq_ = 0;
  std::function<void(Logic4)> rx_sink_;
  sim::TimerId rx_timer_ = sim::kInvalidTimer;

  // Enable lines (traced)
  sim::BoolSignal enable_tx_;
  sim::BoolSignal enable_rx_;

  // Activity accounting
  sim::SimTime tx_accum_ = sim::SimTime::zero();
  sim::SimTime rx_accum_ = sim::SimTime::zero();
  sim::SimTime tx_since_ = sim::SimTime::zero();  // valid while tx on
  sim::SimTime rx_since_ = sim::SimTime::zero();  // valid while rx on

  std::uint64_t bits_sent_ = 0;
  std::uint64_t bits_sampled_ = 0;
};

}  // namespace btsc::phy
