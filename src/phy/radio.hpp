// Radio front-end model for one Bluetooth device.
//
// Owns the device's port on the NoisyChannel and the two RF enable lines
// the paper plots in its waveform figures (enable_tx_RF, enable_rx_RF).
// The Bluetooth protocol switches the RF blocks on only when necessary;
// the time integrals of these enables are exactly the "RF activity"
// metric of the paper's Figs. 10-12 and the input to the power model.
//
// Bit timing: the symbol rate is 1 Mbit/s, so the transmitter drives one
// bit per microsecond on the channel, and the receiver samples the medium
// at +250 ns past the bit grid -- an offset that stays strictly inside
// the bit period for transmissions aligned to either the even (integer
// microsecond) or odd (half-microsecond) half-slot grid.
//
// Burst transport
// ---------------
// With burst transport enabled (see NoisyChannel), the radio avoids the
// one-event-per-bit hot path in both directions:
//
//  * TX: an uncontended packet registers as one channel burst run plus a
//    single end-of-packet timer. Noise is pre-drawn as a word-packed
//    error mask and tracing is reconstructed by time-stamped backfill,
//    so neither forces per-bit; the per-bit timer chain only runs as
//    the fallback (contention, mid-run reconfiguration, RF delay, or a
//    tracer without backfill support).
//  * RX: a receiver that implements BurstRxSink is driven lazily. While
//    the medium at its frequency is silent it takes NO sampling events:
//    pending all-'Z' samples are materialised in bulk when something
//    changes. While a burst run is on the air it consumes the run's
//    packed bits in bulk. In both cases the radio first *probes* the
//    sink for the earliest sample whose processing has an externally
//    visible effect (sync detection, packet delivery, an RNG draw) and
//    schedules one timer exactly there, so every handler still fires at
//    precisely the instant the per-bit path would have fired it.
//
// A plain per-sample rx sink (set_rx_sink) always gets classic per-bit
// sampling.
#pragma once

#include <cstdint>
#include <string>

#include "phy/channel.hpp"
#include "phy/logic4.hpp"
#include "sim/bitvector.hpp"
#include "sim/module.hpp"
#include "sim/signal.hpp"
#include "sim/snapshot.hpp"
#include "sim/time.hpp"
#include "sim/unique_function.hpp"

namespace btsc::phy {

/// Duration of one transmitted symbol (1 Mbit/s raw rate).
inline constexpr sim::SimTime kBitPeriod = sim::SimTime::us(1);

/// Batched receiver interface (implemented by baseband::Receiver). The
/// radio feeds it runs of samples: `bits == nullptr` means a run of 'Z'
/// (silent medium, demodulator slices the noise floor); otherwise the
/// samples are the defined bits bits[first..first+count).
class BurstRxSink {
 public:
  /// Some n <= count such that processing samples [first, first+n)
  /// produces NO externally visible effect -- no handler/hook
  /// invocation and no RNG draw. Returning less than the true quiet
  /// prefix is allowed (the radio then runs the sample at n through the
  /// full per-sample path and asks again); returning count promises the
  /// whole span is quiet. Pure: must not change observable sink state.
  virtual std::size_t quiet_prefix(const sim::BitVector* bits,
                                   std::size_t first,
                                   std::size_t count) const = 0;

  /// Processes `n` samples previously certified quiet by quiet_prefix.
  virtual void consume_quiet(const sim::BitVector* bits, std::size_t first,
                             std::size_t n) = 0;

  /// Full per-sample entry; may fire handlers and draw RNG. Must behave
  /// exactly like the per-bit sink path.
  virtual void on_sample(Logic4 v) = 0;

 protected:
  ~BurstRxSink() = default;
};

class Radio final : public sim::Module,
                    public NoisyChannel::Listener,
                    public sim::Snapshotable,
                    public sim::RearmHandler {
 public:
  /// Per-sample sink; allocation-free storage (finishes the PR 4
  /// std::function migration for the per-bit fallback path).
  using RxSink = sim::UniqueCallback<Logic4>;

  Radio(sim::Environment& env, std::string name, NoisyChannel& channel);
  ~Radio() override;

  // ---- transmitter ----

  /// Starts transmitting `bits` on RF channel `freq`, one bit per
  /// microsecond starting now. `done` (optional, move-only) runs right
  /// after the last bit ends and the medium is released. Requires the
  /// transmitter to be idle.
  void transmit(int freq, sim::BitVector bits,
                sim::UniqueFunction done = {});

  /// Aborts an in-progress transmission and releases the medium.
  void abort_tx();

  bool tx_busy() const { return tx_busy_; }

  // ---- receiver ----

  /// Sink invoked once per sampled bit while the receiver is enabled.
  /// A radio with only this sink always samples per bit.
  void set_rx_sink(RxSink sink) { rx_sink_ = std::move(sink); }

  /// Wires the batched sink (and enables lazy/batched reception for
  /// this radio when the channel's burst transport is on). nullptr
  /// reverts to the per-sample sink.
  void set_burst_rx_sink(BurstRxSink* sink) { burst_sink_ = sink; }

  /// Enables the receiver on `freq`. Sampling starts at the next mid-bit
  /// instant. Disabling stops sampling immediately.
  void enable_rx(int freq);
  void disable_rx();
  bool rx_enabled() const { return rx_on_; }
  int rx_freq() const { return rx_freq_; }

  /// Retunes while enabled (no-op when disabled).
  void retune_rx(int freq);

  /// Materialises every pending lazy sample at or before now(). Wired
  /// into Receiver::carrier_samples() so LC carrier-sense reads observe
  /// exactly the per-bit counter value.
  void rx_catch_up();

  /// The sink's decode state changed out-of-band (receiver reconfigured
  /// mid-window): re-derive the side-effect barrier.
  void rx_state_changed();

  // ---- RF enable lines (traced; the paper's waveform signals) ----
  sim::BoolSignal& enable_tx_rf() { return enable_tx_; }
  sim::BoolSignal& enable_rx_rf() { return enable_rx_; }

  // ---- activity accounting (Figs. 10-12) ----

  /// Total time the TX/RX chains were enabled since the last reset,
  /// including any interval still in progress.
  sim::SimTime tx_on_time() const;
  sim::SimTime rx_on_time() const;

  /// Starts a fresh measurement window at the current time.
  void reset_activity();

  std::uint64_t bits_sent() const;
  std::uint64_t bits_sampled() const;

  /// This radio's port on the channel (diagnostics/tests).
  PortId port() const { return port_; }

  // ---- NoisyChannel::Listener ----
  void rx_sync() override;
  void rx_reevaluate() override;
  void tx_burst_fallback(std::size_t driven) override;

  // ---- checkpointing ----

  /// Saves/restores TX/RX state, the enable lines, the activity
  /// accumulators and the bit counters. A transmission with a `done`
  /// callback in flight is not checkpointable (the closure cannot be
  /// serialized; model code never passes one) -- save_state throws.
  /// Restore re-links an in-flight burst run's bits into the channel.
  void save_state(sim::SnapshotWriter& w) const override;
  void restore_state(sim::SnapshotReader& r) override;

  // RearmHandler: rebuilds the TX bit/end-of-burst and RX sample/barrier
  /// timers (and their TimerId members) from descriptors.
  void rearm_timer(std::uint16_t kind, std::uint64_t payload,
                   sim::SimTime when) override;

 private:
  /// How the receiver is being fed.
  enum class RxMode : std::uint8_t {
    kOff,     // receiver disabled
    kPerBit,  // classic one-event-per-sample chain
    kSkip,    // silent medium, lazy 'Z' runs (dormant between barriers)
    kRun,     // consuming a channel burst run lazily
  };

  /// Timer descriptor kinds (see Environment::schedule_tagged). All
  /// radio timers capture only `this`; their state lives in members.
  enum Kind : std::uint16_t {
    kTxNextBit = 1,
    kTxFinishBurst = 2,
    kRxSample = 3,
    kRxBarrier = 4,
  };

  void tx_next_bit();
  void tx_finish_burst();
  void tx_complete();
  void rx_sample();
  void rx_barrier();
  void rx_evaluate();
  void cancel_rx_timer();
  /// Pending lazy sample count at or before now().
  std::uint64_t rx_pending() const;
  /// Feeds `n` lazy samples (mode kSkip/kRun) to the burst sink.
  void rx_consume(std::uint64_t n);
  /// Sample instant of lazy sample index `k` (since enable).
  sim::SimTime sample_time(std::uint64_t k) const {
    return rx_anchor_ + kBitPeriod * k;
  }
  /// Burst-run bit index visible at lazy sample `k` (< 0: before bit 0).
  std::int64_t run_index_at(std::uint64_t k,
                            const NoisyChannel::RxMedium& m) const;
  bool burst_capable() const;
  void account_tx(bool on);
  void account_rx(bool on);

  NoisyChannel& channel_;
  PortId port_;

  // TX state
  bool tx_busy_ = false;
  bool tx_burst_ = false;
  int tx_freq_ = 0;
  sim::BitVector tx_bits_;
  std::size_t tx_pos_ = 0;
  sim::SimTime tx_start_ = sim::SimTime::zero();
  sim::UniqueFunction tx_done_;
  sim::TimerId tx_timer_ = sim::kInvalidTimer;

  // RX state
  bool rx_on_ = false;
  int rx_freq_ = 0;
  RxMode rx_mode_ = RxMode::kOff;
  RxSink rx_sink_;
  BurstRxSink* burst_sink_ = nullptr;
  sim::TimerId rx_timer_ = sim::kInvalidTimer;
  sim::SimTime rx_anchor_ = sim::SimTime::zero();  // sample index 0
  std::uint64_t rx_consumed_ = 0;  // lazy samples fed since enable
  /// Absolute index of the scheduled side-effect sample while a lazy
  /// barrier timer is pending; catch-ups stop short of it so the effect
  /// always goes through the full path inside its own event.
  std::uint64_t rx_barrier_index_ = 0;

  // Enable lines (traced)
  sim::BoolSignal enable_tx_;
  sim::BoolSignal enable_rx_;

  // Activity accounting
  sim::SimTime tx_accum_ = sim::SimTime::zero();
  sim::SimTime rx_accum_ = sim::SimTime::zero();
  sim::SimTime tx_since_ = sim::SimTime::zero();  // valid while tx on
  sim::SimTime rx_since_ = sim::SimTime::zero();  // valid while rx on

  std::uint64_t bits_sent_ = 0;
  std::uint64_t bits_sampled_ = 0;
};

}  // namespace btsc::phy
