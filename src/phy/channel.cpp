#include "phy/channel.hpp"

#include <cassert>
#include <stdexcept>

#include "sim/environment.hpp"

namespace btsc::phy {

namespace {

/// Process-wide default of ChannelConfig::burst_transport (the escape
/// hatch flipped by `--no-burst` style switches before systems are
/// built; sweeps read it once per channel construction).
std::atomic<bool>& burst_default() {
  static std::atomic<bool> enabled{true};
  return enabled;
}

}  // namespace

void NoisyChannel::set_burst_transport_default(bool enabled) {
  burst_default().store(enabled, std::memory_order_relaxed);
}

bool NoisyChannel::burst_transport_default() {
  return burst_default().load(std::memory_order_relaxed);
}

NoisyChannel::NoisyChannel(sim::Environment& env, std::string name,
                           ChannelConfig config)
    : Module(env, std::move(name)), config_(config) {
  if (config_.ber < 0.0 || config_.ber > 1.0) {
    throw std::invalid_argument("NoisyChannel: BER outside [0,1]");
  }
  if (config_.num_channels <= 0) {
    throw std::invalid_argument("NoisyChannel: need at least one RF channel");
  }
  config_.burst_transport =
      config_.burst_transport && burst_transport_default();
  if (env.tracer() != nullptr) {
    bus_trace_ = std::make_unique<sim::Signal<Logic4>>(
        env, child_name("bus"), Logic4::kZ);
  }
}

void NoisyChannel::set_ber(double ber) {
  if (run_.active) fallback_run();
  config_.ber = ber;
}

void NoisyChannel::set_burst_transport_enabled(bool enabled) {
  if (!enabled && run_.active) fallback_run();
  config_.burst_transport = enabled;
}

PortId NoisyChannel::attach(const std::string& device_name) {
  ports_.push_back(Port{device_name, -1, Logic4::kZ, nullptr, -1});
  return static_cast<PortId>(ports_.size() - 1);
}

void NoisyChannel::set_listener(PortId port, Listener* listener) {
  ports_.at(static_cast<std::size_t>(port)).listener = listener;
}

void NoisyChannel::set_listening(PortId port, int freq) {
  ports_.at(static_cast<std::size_t>(port)).rx_freq = freq;
}

void NoisyChannel::drive(PortId port, int freq, Logic4 value) {
  if (port < 0 || port >= num_ports()) {
    throw std::out_of_range("NoisyChannel::drive: bad port");
  }
  if (value != Logic4::kZ &&
      (freq < 0 || freq >= config_.num_channels)) {
    throw std::out_of_range("NoisyChannel::drive: bad frequency");
  }
  if (config_.rf_delay == sim::SimTime::zero()) {
    apply(port, freq, value);
  } else {
    env().schedule(config_.rf_delay,
                   [this, port, freq, value] { apply(port, freq, value); });
  }
}

void NoisyChannel::apply(PortId port, int freq, Logic4 value) {
  assert(!(run_.active && port == run_.port) &&
         "per-bit drive from the port that owns the burst run");
  // A second transmitter while a burst run is in flight: the
  // single-transmitter premise broke, so the run degrades to exact
  // per-bit scheduling before this drive lands.
  if (run_.active && is_defined(value)) fallback_run();

  Logic4 v = value;
  if (is_defined(v)) {
    ++bits_driven_;
    if (config_.ber > 0.0 && env().rng().bernoulli(config_.ber)) {
      v = invert(v);
      ++bits_flipped_;
    }
  }
  Port& p = ports_[static_cast<std::size_t>(port)];
  const bool was_defined = is_defined(p.value);
  const bool now_defined = is_defined(v);
  p.freq = freq;
  p.value = v;
  if (was_defined != now_defined) {
    defined_ports_ += now_defined ? 1 : -1;
    // The medium at this frequency appeared or vanished: let lazy
    // receivers materialise their pending samples against the old state
    // and re-pick their sampling mode.
    notify_sync();
    notify_reevaluate();
  }
  refresh_trace();
}

Logic4 NoisyChannel::sense(int freq) const {
  Logic4 acc = Logic4::kZ;
  if (run_.active && (!config_.per_frequency || freq == run_.freq)) {
    acc = run_value_now();
  }
  for (const Port& p : ports_) {
    if (p.value == Logic4::kZ) continue;
    if (config_.per_frequency && p.freq != freq) continue;
    acc = resolve(acc, p.value);
  }
  if (acc == Logic4::kX) ++collision_samples_;
  return acc;
}

bool NoisyChannel::busy() const {
  if (run_.active) return true;
  return defined_ports_ > 0;
}

bool NoisyChannel::live_at(int freq) const {
  if (defined_ports_ == 0) return false;
  if (!config_.per_frequency) return true;
  for (const Port& p : ports_) {
    if (is_defined(p.value) && p.freq == freq) return true;
  }
  return false;
}

NoisyChannel::RxMedium NoisyChannel::rx_medium(int freq) const {
  RxMedium m;
  m.live = live_at(freq);
  if (run_.active && (!config_.per_frequency || freq == run_.freq)) {
    m.run_bits = run_.bits;
    m.run_start = run_.start;
    m.run_period = run_.period;
  }
  return m;
}

// ---------------------------------------------------------------------------
// Burst runs
// ---------------------------------------------------------------------------

bool NoisyChannel::begin_burst(PortId port, int freq,
                               const sim::BitVector& bits,
                               sim::SimTime period) {
  if (port < 0 || port >= num_ports()) {
    throw std::out_of_range("NoisyChannel::begin_burst: bad port");
  }
  if (freq < 0 || freq >= config_.num_channels) {
    throw std::out_of_range("NoisyChannel::begin_burst: bad frequency");
  }
  // Equivalence gate: a run is accepted only when the batched loop is
  // provably identical to per-bit drives -- no noise draws to reorder
  // (BER 0), aligned drive instants (no RF delay), no per-bit bus trace
  // to emit, and nobody else on the air.
  if (!config_.burst_transport || bits.empty() ||
      config_.ber > 0.0 || config_.rf_delay != sim::SimTime::zero() ||
      env().tracer() != nullptr || bus_trace_ != nullptr ||
      run_.active || defined_ports_ > 0) {
    return false;
  }
  notify_sync();
  run_.active = true;
  run_.port = port;
  run_.freq = freq;
  run_.bits = &bits;
  run_.start = env().now();
  run_.period = period;
  ports_[static_cast<std::size_t>(port)].freq = freq;
  notify_reevaluate();
  return true;
}

std::size_t NoisyChannel::run_bits_elapsed() const {
  assert(run_.active);
  const std::uint64_t d = env().now().as_ns() - run_.start.as_ns();
  const std::uint64_t p = run_.period.as_ns();
  // Bits with a drive instant strictly before now have fired in any
  // event order; a bit exactly at now has fired only when the kernel is
  // not mid-dispatch (its virtual drive event would be ordered after
  // the currently running event). Bit 0 is driven synchronously by
  // begin_burst, so at least one bit is always on the air.
  std::uint64_t n = env().dispatching() ? (d + p - 1) / p : d / p + 1;
  if (n == 0) n = 1;
  const std::size_t len = run_.bits->size();
  return n < len ? static_cast<std::size_t>(n) : len;
}

Logic4 NoisyChannel::run_value_now() const {
  return from_bit((*run_.bits)[run_bits_elapsed() - 1]);
}

std::size_t NoisyChannel::settle_run(std::size_t driven, Logic4 last) {
  bits_driven_ += driven;
  bits_burst_ += driven;
  Port& p = ports_[static_cast<std::size_t>(run_.port)];
  assert(p.value == Logic4::kZ);
  p.value = last;
  p.freq = run_.freq;
  if (is_defined(last)) ++defined_ports_;
  run_ = Run{};
  return driven;
}

std::size_t NoisyChannel::finish_burst(PortId port) {
  assert(burst_active(port));
  (void)port;
  notify_sync();
  const std::size_t driven = settle_run(run_.bits->size(), Logic4::kZ);
  notify_reevaluate();
  refresh_trace();
  return driven;
}

std::size_t NoisyChannel::abort_burst(PortId port) {
  assert(burst_active(port));
  (void)port;
  notify_sync();
  const std::size_t driven = settle_run(run_bits_elapsed(), Logic4::kZ);
  notify_reevaluate();
  refresh_trace();
  return driven;
}

void NoisyChannel::fallback_run() {
  assert(run_.active);
  ++burst_fallbacks_;
  Listener* owner = ports_[static_cast<std::size_t>(run_.port)].listener;
  notify_sync();
  const std::size_t driven = run_bits_elapsed();
  const Logic4 last = from_bit((*run_.bits)[driven - 1]);
  settle_run(driven, last);
  // The owner reschedules the remaining bits as exact per-bit drives
  // before receivers re-pick their modes (they will see a live medium).
  assert(owner != nullptr);
  owner->tx_burst_fallback(driven);
  notify_reevaluate();
  refresh_trace();
}

void NoisyChannel::notify_sync() {
  assert(!notifying_ && "reentrant medium notification");
  notifying_ = true;
  for (Port& p : ports_) {
    if (p.listener != nullptr && p.rx_freq >= 0) p.listener->rx_sync();
  }
  notifying_ = false;
}

void NoisyChannel::notify_reevaluate() {
  for (Port& p : ports_) {
    if (p.listener != nullptr && p.rx_freq >= 0) p.listener->rx_reevaluate();
  }
}

// ---------------------------------------------------------------------------
// Checkpointing
// ---------------------------------------------------------------------------

void NoisyChannel::save_state(sim::SnapshotWriter& w) const {
  w.begin_section(sim::snapshot_tag("CHAN"));
  w.f64(config_.ber);
  w.b(config_.burst_transport);
  sim::save_seq(w, ports_.size(), [&](std::size_t i) {
    const Port& p = ports_[i];
    w.u32(static_cast<std::uint32_t>(p.freq));
    w.u8(static_cast<std::uint8_t>(p.value));
    w.u32(static_cast<std::uint32_t>(p.rx_freq));
  });
  w.b(run_.active);
  if (run_.active) {
    w.u32(static_cast<std::uint32_t>(run_.port));
    w.u32(static_cast<std::uint32_t>(run_.freq));
    w.time(run_.start);
    w.time(run_.period);
  }
  w.u64(bits_driven_);
  w.u64(bits_flipped_);
  w.u64(collision_samples_);
  w.u64(bits_burst_);
  w.u64(burst_fallbacks_);
  w.b(bus_trace_ != nullptr);
  if (bus_trace_ != nullptr) {
    w.u8(static_cast<std::uint8_t>(bus_trace_->read()));
  }
  w.end_section();
}

void NoisyChannel::restore_state(sim::SnapshotReader& r) {
  r.enter_section(sim::snapshot_tag("CHAN"));
  config_.ber = r.f64();
  config_.burst_transport = r.b();
  std::size_t idx = 0;
  defined_ports_ = 0;
  sim::restore_seq(r, [&](std::size_t) {
    if (idx >= ports_.size()) {
      throw sim::SnapshotError("NoisyChannel: port count mismatch");
    }
    Port& p = ports_[idx++];
    p.freq = static_cast<int>(r.u32());
    p.value = static_cast<Logic4>(r.u8());
    p.rx_freq = static_cast<int>(r.u32());
    if (is_defined(p.value)) ++defined_ports_;
  });
  if (idx != ports_.size()) {
    throw sim::SnapshotError("NoisyChannel: port count mismatch");
  }
  run_ = Run{};
  if (r.b()) {
    run_.active = true;
    run_.port = static_cast<PortId>(r.u32());
    run_.freq = static_cast<int>(r.u32());
    run_.start = r.time();
    run_.period = r.time();
    // run_.bits stays null until the owning radio rebinds it.
  }
  bits_driven_ = r.u64();
  bits_flipped_ = r.u64();
  collision_samples_ = r.u64();
  bits_burst_ = r.u64();
  burst_fallbacks_ = r.u64();
  const bool had_trace = r.b();
  if (had_trace != (bus_trace_ != nullptr)) {
    throw sim::SnapshotError("NoisyChannel: bus-trace presence mismatch");
  }
  if (had_trace) bus_trace_->restore_value(static_cast<Logic4>(r.u8()));
  r.leave_section();
}

void NoisyChannel::refresh_trace() {
  if (!bus_trace_) return;
  Logic4 acc = Logic4::kZ;
  for (const Port& p : ports_) acc = resolve(acc, p.value);
  bus_trace_->write(acc);
}

}  // namespace btsc::phy
