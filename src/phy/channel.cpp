#include "phy/channel.hpp"

#include <stdexcept>

namespace btsc::phy {

NoisyChannel::NoisyChannel(sim::Environment& env, std::string name,
                           ChannelConfig config)
    : Module(env, std::move(name)), config_(config) {
  if (config_.ber < 0.0 || config_.ber > 1.0) {
    throw std::invalid_argument("NoisyChannel: BER outside [0,1]");
  }
  if (config_.num_channels <= 0) {
    throw std::invalid_argument("NoisyChannel: need at least one RF channel");
  }
  if (env.tracer() != nullptr) {
    bus_trace_ = std::make_unique<sim::Signal<Logic4>>(
        env, child_name("bus"), Logic4::kZ);
  }
}

PortId NoisyChannel::attach(const std::string& device_name) {
  ports_.push_back(Port{device_name, -1, Logic4::kZ});
  return static_cast<PortId>(ports_.size() - 1);
}

void NoisyChannel::drive(PortId port, int freq, Logic4 value) {
  if (port < 0 || port >= num_ports()) {
    throw std::out_of_range("NoisyChannel::drive: bad port");
  }
  if (value != Logic4::kZ &&
      (freq < 0 || freq >= config_.num_channels)) {
    throw std::out_of_range("NoisyChannel::drive: bad frequency");
  }
  if (config_.rf_delay == sim::SimTime::zero()) {
    apply(port, freq, value);
  } else {
    env().schedule(config_.rf_delay,
                   [this, port, freq, value] { apply(port, freq, value); });
  }
}

void NoisyChannel::apply(PortId port, int freq, Logic4 value) {
  Logic4 v = value;
  if (is_defined(v)) {
    ++bits_driven_;
    if (config_.ber > 0.0 && env().rng().bernoulli(config_.ber)) {
      v = invert(v);
      ++bits_flipped_;
    }
  }
  ports_[static_cast<std::size_t>(port)].freq = freq;
  ports_[static_cast<std::size_t>(port)].value = v;
  refresh_trace();
}

Logic4 NoisyChannel::sense(int freq) const {
  Logic4 acc = Logic4::kZ;
  for (const Port& p : ports_) {
    if (p.value == Logic4::kZ) continue;
    if (config_.per_frequency && p.freq != freq) continue;
    acc = resolve(acc, p.value);
  }
  if (acc == Logic4::kX) ++collision_samples_;
  return acc;
}

bool NoisyChannel::busy() const {
  for (const Port& p : ports_) {
    if (p.value != Logic4::kZ) return true;
  }
  return false;
}

void NoisyChannel::refresh_trace() {
  if (!bus_trace_) return;
  Logic4 acc = Logic4::kZ;
  for (const Port& p : ports_) acc = resolve(acc, p.value);
  bus_trace_->write(acc);
}

}  // namespace btsc::phy
