#include "phy/channel.hpp"

#include <bit>
#include <cassert>
#include <stdexcept>

#include "sim/environment.hpp"
#include "sim/rng.hpp"
#include "sim/shard.hpp"
#include "sim/tracer.hpp"

namespace btsc::phy {

namespace {

/// Process-wide default of ChannelConfig::burst_transport (the escape
/// hatch flipped by `--no-burst` style switches before systems are
/// built; sweeps read it once per channel construction).
std::atomic<bool>& burst_default() {
  static std::atomic<bool> enabled{true};
  return enabled;
}

}  // namespace

void NoisyChannel::set_burst_transport_default(bool enabled) {
  burst_default().store(enabled, std::memory_order_relaxed);
}

bool NoisyChannel::burst_transport_default() {
  return burst_default().load(std::memory_order_relaxed);
}

NoisyChannel::NoisyChannel(sim::Environment& env, std::string name,
                           ChannelConfig config)
    : Module(env, std::move(name)), config_(config) {
  if (config_.ber < 0.0 || config_.ber > 1.0) {
    throw std::invalid_argument("NoisyChannel: BER outside [0,1]");
  }
  if (config_.num_channels <= 0) {
    throw std::invalid_argument("NoisyChannel: need at least one RF channel");
  }
  config_.burst_transport =
      config_.burst_transport && burst_transport_default();
  if (env.tracer() != nullptr) {
    bus_trace_ = std::make_unique<sim::Signal<Logic4>>(
        env, child_name("bus"), Logic4::kZ);
  }
  if (config_.rf_delay != sim::SimTime::zero()) {
    // rf_delay apply timers are scheduled through the tagged descriptor
    // path so a checkpoint can carry them (kTimerApply/kTimerRemoteApply,
    // replayed by rearm_timer). Dispatch semantics are identical to a
    // plain schedule().
    env.register_rearm(this->name() + ".rf", this, this);
    rearm_registered_ = true;
  }
}

NoisyChannel::~NoisyChannel() {
  if (rearm_registered_) env().unregister_rearm(this);
}

void NoisyChannel::set_ber(double ber) {
  if (run_.active) fallback_run();
  config_.ber = ber;
}

void NoisyChannel::set_burst_transport_enabled(bool enabled) {
  if (!enabled && run_.active) fallback_run();
  config_.burst_transport = enabled;
}

PortId NoisyChannel::attach(const std::string& device_name) {
  ports_.push_back(Port{device_name, -1, Logic4::kZ, nullptr, -1});
  return static_cast<PortId>(ports_.size() - 1);
}

void NoisyChannel::set_listener(PortId port, Listener* listener) {
  ports_.at(static_cast<std::size_t>(port)).listener = listener;
}

void NoisyChannel::set_listening(PortId port, int freq) {
  ports_.at(static_cast<std::size_t>(port)).rx_freq = freq;
}

void NoisyChannel::drive(PortId port, int freq, Logic4 value) {
  if (port < 0 || port >= num_ports()) {
    throw std::out_of_range("NoisyChannel::drive: bad port");
  }
  if (ports_[static_cast<std::size_t>(port)].remote) {
    throw std::logic_error("NoisyChannel::drive: ghost ports are driven by "
                           "cross-shard delivery, not locally");
  }
  if (value != Logic4::kZ &&
      (freq < 0 || freq >= config_.num_channels)) {
    throw std::out_of_range("NoisyChannel::drive: bad frequency");
  }
  if (cross_shard_coupled()) {
    // Publish the clean (pre-noise) value: each shard's medium replica
    // corrupts the bits it carries with its own noise process. The
    // application instant source-now + rf_delay is >= the end of the
    // current window because rf_delay covers the group lookahead.
    group_->publish(domain_, shard_, env().now() + config_.rf_delay,
                    kTimerRemoteApply, static_cast<std::uint32_t>(port),
                    static_cast<std::int16_t>(freq),
                    static_cast<std::uint8_t>(value));
  }
  if (config_.rf_delay == sim::SimTime::zero()) {
    apply(port, freq, value);
  } else {
    schedule_apply(kTimerApply, pack_apply(port, freq, value),
                   env().now() + config_.rf_delay);
  }
}

std::uint64_t NoisyChannel::pack_apply(PortId port, int freq, Logic4 value) {
  // [port:32][freq+1:16][value:8]; freq = -1 (release) maps to 0.
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(port)) << 32) |
         (static_cast<std::uint64_t>(static_cast<std::uint16_t>(freq + 1))
          << 8) |
         static_cast<std::uint64_t>(static_cast<std::uint8_t>(value));
}

void NoisyChannel::schedule_apply(std::uint16_t kind, std::uint64_t payload,
                                  sim::SimTime when) {
  const auto port = static_cast<PortId>(
      static_cast<std::uint32_t>(payload >> 32));
  const int freq = static_cast<int>((payload >> 8) & 0xFFFF) - 1;
  const auto value = static_cast<Logic4>(payload & 0xFF);
  if (kind == kTimerApply) {
    env().schedule_tagged(when - env().now(), kind, payload,
                          [this, port, freq, value] {
                            apply(port, freq, value);
                          },
                          this);
  } else {
    env().schedule_tagged(when - env().now(), kind, payload,
                          [this, port, freq, value] {
                            apply_remote(port, freq, value);
                          },
                          this);
  }
}

void NoisyChannel::rearm_timer(std::uint16_t kind, std::uint64_t payload,
                               sim::SimTime when) {
  if (kind != kTimerApply && kind != kTimerRemoteApply) {
    throw sim::SnapshotError("NoisyChannel: bad timer kind " +
                             std::to_string(kind));
  }
  schedule_apply(kind, payload, when);
}

PortId NoisyChannel::attach_remote(const std::string& device_name,
                                   std::uint32_t src_shard, PortId src_port) {
  Port p{device_name, -1, Logic4::kZ, nullptr, -1, true, src_shard, src_port};
  ports_.push_back(std::move(p));
  return static_cast<PortId>(ports_.size() - 1);
}

void NoisyChannel::bind_shard(sim::ShardGroup& group, std::uint32_t domain) {
  if (group_ != nullptr) {
    throw std::logic_error("NoisyChannel: already bound to a shard group");
  }
  if (group.lookahead() == sim::SimTime::zero() ||
      config_.rf_delay < group.lookahead()) {
    // The conservative window is only sound if nothing this channel
    // publishes can take effect before the next rendezvous.
    throw std::invalid_argument(
        "NoisyChannel: rf_delay must cover the shard group lookahead");
  }
  group_ = &group;
  domain_ = domain;
  shard_ = env().shard_id();
  group.bind_endpoint(domain, shard_, this);
}

bool NoisyChannel::cross_shard_coupled() const {
  return group_ != nullptr && group_->coupled(domain_, shard_);
}

void NoisyChannel::deliver_cross_shard(const sim::CrossShardEvent& ev) {
  if (ev.kind != kTimerRemoteApply) {
    throw std::logic_error("NoisyChannel: unknown cross-shard event kind");
  }
  for (std::size_t i = 0; i < ports_.size(); ++i) {
    const Port& p = ports_[i];
    if (p.remote && p.src_shard == ev.src_shard &&
        p.src_port == static_cast<PortId>(ev.port)) {
      schedule_apply(kTimerRemoteApply,
                     pack_apply(static_cast<PortId>(i), ev.freq,
                                static_cast<Logic4>(ev.value)),
                     ev.when);
      return;
    }
  }
  throw std::logic_error("NoisyChannel: cross-shard event for an unknown "
                         "remote transmitter (missing attach_remote)");
}

void NoisyChannel::apply(PortId port, int freq, Logic4 value) {
  assert(!(run_.active && port == run_.port) &&
         "per-bit drive from the port that owns the burst run");
  // A second transmitter while a burst run is in flight: the
  // single-transmitter premise broke, so the run degrades to exact
  // per-bit scheduling before this drive lands.
  if (run_.active && is_defined(value)) fallback_run();

  Logic4 v = value;
  if (is_defined(v)) {
    ++bits_driven_;
    if (config_.ber > 0.0 && env().draw_bernoulli(config_.ber)) {
      v = invert(v);
      ++bits_flipped_;
    }
  }
  commit_port(port, freq, v);
}

void NoisyChannel::apply_remote(PortId port, int freq, Logic4 value) {
  assert(ports_[static_cast<std::size_t>(port)].remote);
  // A ghost drive is a second transmitter by definition; coupled
  // channels never accept burst runs (rf_delay >= lookahead > 0), but
  // keep the degrade path for symmetry with apply().
  if (run_.active && is_defined(value)) fallback_run();

  Logic4 v = value;
  if (is_defined(v)) {
    ++remote_bits_;
    // This replica's own noise process corrupts the bits it carries;
    // the publishing shard sent the clean value.
    if (config_.ber > 0.0 && env().draw_bernoulli(config_.ber)) {
      v = invert(v);
      ++remote_flips_;
    }
  }
  commit_port(port, freq, v);
}

void NoisyChannel::commit_port(PortId port, int freq, Logic4 v) {
  Port& p = ports_[static_cast<std::size_t>(port)];
  const bool was_defined = is_defined(p.value);
  const bool now_defined = is_defined(v);
  p.freq = freq;
  p.value = v;
  if (was_defined != now_defined) {
    defined_ports_ += now_defined ? 1 : -1;
    // The medium at this frequency appeared or vanished: let lazy
    // receivers materialise their pending samples against the old state
    // and re-pick their sampling mode.
    notify_sync();
    notify_reevaluate();
  }
  refresh_trace();
}

Logic4 NoisyChannel::sense(int freq) const {
  Logic4 acc = Logic4::kZ;
  if (run_.active && (!config_.per_frequency || freq == run_.freq)) {
    acc = run_value_now();
  }
  for (const Port& p : ports_) {
    if (p.value == Logic4::kZ) continue;
    if (config_.per_frequency && p.freq != freq) continue;
    acc = resolve(acc, p.value);
  }
  if (acc == Logic4::kX) ++collision_samples_;
  return acc;
}

bool NoisyChannel::busy() const {
  if (run_.active) return true;
  return defined_ports_ > 0;
}

bool NoisyChannel::live_at(int freq) const {
  if (defined_ports_ == 0) return false;
  if (!config_.per_frequency) return true;
  for (const Port& p : ports_) {
    if (is_defined(p.value) && p.freq == freq) return true;
  }
  return false;
}

NoisyChannel::RxMedium NoisyChannel::rx_medium(int freq) const {
  RxMedium m;
  m.live = live_at(freq);
  if (run_.active && (!config_.per_frequency || freq == run_.freq)) {
    m.run_bits = run_.bits;
    m.run_start = run_.start;
    m.run_period = run_.period;
  }
  return m;
}

// ---------------------------------------------------------------------------
// Burst runs
// ---------------------------------------------------------------------------

bool NoisyChannel::begin_burst(PortId port, int freq,
                               const sim::BitVector& bits,
                               sim::SimTime period) {
  if (port < 0 || port >= num_ports()) {
    throw std::out_of_range("NoisyChannel::begin_burst: bad port");
  }
  if (freq < 0 || freq >= config_.num_channels) {
    throw std::out_of_range("NoisyChannel::begin_burst: bad frequency");
  }
  // Equivalence gate: a run is accepted only when the batched loop is
  // provably identical to per-bit drives -- aligned drive instants (no
  // RF delay), a tracer able to take the backfilled bus waveform, and
  // nobody else on the air. BER > 0 is no longer refused: noise is
  // pre-applied as an error mask drawn in exact per-bit order
  // (arm_masked_run), guarded against foreign draws reordering the
  // stream.
  sim::Tracer* tracer = env().tracer();
  if (!config_.burst_transport || bits.empty() ||
      config_.rf_delay != sim::SimTime::zero() ||
      (tracer != nullptr && !tracer->supports_backfill()) ||
      run_.active || defined_ports_ > 0 || cross_shard_coupled()) {
    // The cross-shard refusal is implied by the rf_delay gate (coupling
    // requires rf_delay >= lookahead > 0) but spelled out: a remote
    // packet always travels the exact per-bit chain.
    return false;
  }
  notify_sync();
  run_.active = true;
  run_.port = port;
  run_.freq = freq;
  run_.bits = &bits;
  run_.clean = &bits;
  run_.start = env().now();
  run_.period = period;
  if (config_.ber > 0.0) arm_masked_run(bits);
  if (tracer != nullptr && bus_trace_ != nullptr && bus_trace_->traced()) {
    // Bus transitions for the run's bits are reconstructed after the
    // fact (backfill_to); the hold keeps the tracer from streaming out
    // anything inside the run's window until they have landed.
    tracer->begin_hold();
    trace_hold_ = true;
    backfilled_ = 0;
  }
  ports_[static_cast<std::size_t>(port)].freq = freq;
  notify_reevaluate();
  return true;
}

void NoisyChannel::arm_masked_run(const sim::BitVector& bits) {
  // Our bulk mask fill is a foreign draw for any other masked run in
  // flight on this environment (coexistence setups share one RNG):
  // make its guard stand down before we capture the stream position.
  env().notify_rng_draw();
  sim::Rng& rng = env().rng();
  mask_base_ = rng.state();
  build_masked_buffers(bits, rng);
  run_.bits = &noisy_;
  run_.masked = true;
  if (sim::Rng::bernoulli_draws_per_bit(config_.ber) > 0) {
    run_.mask_synced = false;
    env().set_rng_guard(this);
  } else {
    // BER >= 1 consumes no draws, so the stream position matches the
    // per-bit reference at every bit; no guard needed.
    run_.mask_synced = true;
  }
}

void NoisyChannel::build_masked_buffers(const sim::BitVector& bits,
                                        sim::Rng& rng) {
  const std::size_t n = bits.size();
  mask_.clear();
  mask_.append_zeros(n);
  rng.fill_error_mask(mask_.words_mut(), n, config_.ber);
  noisy_.clear();
  noisy_.append(bits);
  // Both vectors keep their tail bits zero, so whole-word XOR preserves
  // the invariant on the noisy copy.
  std::uint64_t* nw = noisy_.words_mut();
  const std::uint64_t* mw = mask_.words();
  for (std::size_t w = 0; w < noisy_.num_words(); ++w) nw[w] ^= mw[w];
}

std::size_t NoisyChannel::mask_flips_before(std::size_t k) const {
  assert(run_.masked && k <= mask_.size());
  std::size_t flips = 0;
  const std::uint64_t* mw = mask_.words();
  for (std::size_t w = 0; k > 0; ++w) {
    const std::uint64_t word = k >= 64 ? mw[w] : (mw[w] & ((1ull << k) - 1));
    flips += static_cast<std::size_t>(std::popcount(word));
    k -= k >= 64 ? 64 : k;
  }
  return flips;
}

void NoisyChannel::rng_external_draw() {
  assert(run_.active && run_.masked && !run_.mask_synced);
  if (run_bits_elapsed() >= run_.bits->size()) {
    // Every bit of the run is already on the air, so the upfront fill
    // consumed exactly the draws the per-bit reference would have by
    // now: the stream position already matches. Stand down.
    run_.mask_synced = true;
    env().set_rng_guard(nullptr);
    return;
  }
  // A foreign draw landed mid-run: in per-bit order it belongs between
  // the elapsed bits' draws and the remaining ones. settle_run() (via
  // fallback_run) rewinds the stream to the elapsed position; the rest
  // of the packet degrades to per-bit drives with fresh draws.
  fallback_run();
}

std::size_t NoisyChannel::run_bits_elapsed() const {
  assert(run_.active);
  const std::uint64_t d = env().now().as_ns() - run_.start.as_ns();
  const std::uint64_t p = run_.period.as_ns();
  // Bits with a drive instant strictly before now have fired in any
  // event order; a bit exactly at now has fired only when the kernel is
  // not mid-dispatch (its virtual drive event would be ordered after
  // the currently running event). Bit 0 is driven synchronously by
  // begin_burst, so at least one bit is always on the air.
  std::uint64_t n = env().dispatching() ? (d + p - 1) / p : d / p + 1;
  if (n == 0) n = 1;
  const std::size_t len = run_.bits->size();
  return n < len ? static_cast<std::size_t>(n) : len;
}

Logic4 NoisyChannel::run_value_now() const {
  return from_bit((*run_.bits)[run_bits_elapsed() - 1]);
}

void NoisyChannel::backfill_to(std::size_t k) {
  assert(trace_hold_ && run_.active && k >= 1);
  sim::Tracer* tracer = env().tracer();
  if (tracer == nullptr) return;  // detached mid-run; nowhere to write
  const sim::BitVector& bits = *run_.bits;
  const sim::TraceId id = bus_trace_->trace_id();
  // Emit only net transitions at their per-bit instants -- exactly the
  // changes the Signal commit path would have produced bit by bit
  // (bus_trace_ still holds the pre-run value while backfilled_ == 0).
  Logic4 prev = backfilled_ == 0 ? bus_trace_->read()
                                 : from_bit(bits[backfilled_ - 1]);
  const std::uint64_t start_ns = run_.start.as_ns();
  const std::uint64_t period_ns = run_.period.as_ns();
  for (std::size_t i = backfilled_; i < k; ++i) {
    const Logic4 v = from_bit(bits[i]);
    if (v != prev) {
      tracer->change_at(id, sim::TraceEncoder<Logic4>::encode(v),
                        start_ns + period_ns * static_cast<std::uint64_t>(i));
    }
    prev = v;
  }
  backfilled_ = k;
}

void NoisyChannel::flush_trace_backfill() {
  if (!trace_hold_) return;
  backfill_to(run_bits_elapsed());
}

std::size_t NoisyChannel::settle_run(std::size_t driven, Logic4 last) {
  assert(driven >= 1);
  if (run_.masked) {
    if (!run_.mask_synced && driven < run_.bits->size()) {
      // The per-bit reference would have consumed exactly `driven`
      // noise draws by now: rewind the upfront fill to that position so
      // every subsequent draw sees the stream the reference path would.
      sim::Rng& rng = env().rng();
      rng.set_state(mask_base_);
      rng.discard(driven * sim::Rng::bernoulli_draws_per_bit(config_.ber));
    }
    if (env().rng_guard() == this) env().set_rng_guard(nullptr);
    bits_flipped_ += mask_flips_before(driven);
  }
  if (trace_hold_) {
    backfill_to(driven);
    // Leave the bus signal holding the value the per-bit path would
    // hold after bit driven-1, so the settle-time refresh_trace()
    // emits (or suppresses) exactly the same change.
    bus_trace_->restore_value(from_bit((*run_.bits)[driven - 1]));
    if (sim::Tracer* tracer = env().tracer()) tracer->end_hold();
    trace_hold_ = false;
  }
  bits_driven_ += driven;
  bits_burst_ += driven;
  Port& p = ports_[static_cast<std::size_t>(run_.port)];
  assert(p.value == Logic4::kZ);
  p.value = last;
  p.freq = run_.freq;
  if (is_defined(last)) ++defined_ports_;
  run_ = Run{};
  return driven;
}

std::size_t NoisyChannel::finish_burst(PortId port) {
  assert(burst_active(port));
  (void)port;
  notify_sync();
  const std::size_t driven = settle_run(run_.bits->size(), Logic4::kZ);
  notify_reevaluate();
  refresh_trace();
  return driven;
}

std::size_t NoisyChannel::abort_burst(PortId port) {
  assert(burst_active(port));
  (void)port;
  notify_sync();
  const std::size_t driven = settle_run(run_bits_elapsed(), Logic4::kZ);
  notify_reevaluate();
  refresh_trace();
  return driven;
}

void NoisyChannel::fallback_run() {
  assert(run_.active);
  ++burst_fallbacks_;
  Listener* owner = ports_[static_cast<std::size_t>(run_.port)].listener;
  notify_sync();
  const std::size_t driven = run_bits_elapsed();
  const Logic4 last = from_bit((*run_.bits)[driven - 1]);
  settle_run(driven, last);
  // The owner reschedules the remaining bits as exact per-bit drives
  // before receivers re-pick their modes (they will see a live medium).
  assert(owner != nullptr);
  owner->tx_burst_fallback(driven);
  notify_reevaluate();
  refresh_trace();
}

void NoisyChannel::notify_sync() {
  assert(!notifying_ && "reentrant medium notification");
  notifying_ = true;
  for (Port& p : ports_) {
    if (p.listener != nullptr && p.rx_freq >= 0) p.listener->rx_sync();
  }
  notifying_ = false;
}

void NoisyChannel::notify_reevaluate() {
  for (Port& p : ports_) {
    if (p.listener != nullptr && p.rx_freq >= 0) p.listener->rx_reevaluate();
  }
}

// ---------------------------------------------------------------------------
// Checkpointing
// ---------------------------------------------------------------------------

void NoisyChannel::save_state(sim::SnapshotWriter& w) const {
  if (trace_hold_) {
    throw sim::SnapshotError(
        "NoisyChannel: cannot checkpoint while a traced burst run holds "
        "the tracer (combine --trace with checkpoints only under "
        "per-bit transport)");
  }
  w.begin_section(sim::snapshot_tag("CHAN"));
  w.f64(config_.ber);
  w.b(config_.burst_transport);
  sim::save_seq(w, ports_.size(), [&](std::size_t i) {
    const Port& p = ports_[i];
    w.u32(static_cast<std::uint32_t>(p.freq));
    w.u8(static_cast<std::uint8_t>(p.value));
    w.u32(static_cast<std::uint32_t>(p.rx_freq));
  });
  w.b(run_.active);
  if (run_.active) {
    w.u32(static_cast<std::uint32_t>(run_.port));
    w.u32(static_cast<std::uint32_t>(run_.freq));
    w.time(run_.start);
    w.time(run_.period);
    // A masked run stores only the pre-fill RNG state: the mask is a
    // pure function of (state, BER, length) and is rebuilt on restore.
    w.b(run_.masked);
    if (run_.masked) {
      w.b(run_.mask_synced);
      for (std::uint64_t v : mask_base_) w.u64(v);
    }
  }
  w.u64(bits_driven_);
  w.u64(bits_flipped_);
  w.u64(collision_samples_);
  w.u64(bits_burst_);
  w.u64(burst_fallbacks_);
  w.u64(remote_bits_);
  w.u64(remote_flips_);
  w.b(bus_trace_ != nullptr);
  if (bus_trace_ != nullptr) {
    w.u8(static_cast<std::uint8_t>(bus_trace_->read()));
  }
  w.end_section();
}

void NoisyChannel::restore_state(sim::SnapshotReader& r) {
  // In-place restore hygiene: stand down any live masked-run guard or
  // tracer hold belonging to the state being overwritten.
  if (env().rng_guard() == this) env().set_rng_guard(nullptr);
  if (trace_hold_) {
    if (sim::Tracer* tracer = env().tracer()) tracer->end_hold();
    trace_hold_ = false;
  }
  r.enter_section(sim::snapshot_tag("CHAN"));
  config_.ber = r.f64();
  config_.burst_transport = r.b();
  std::size_t idx = 0;
  defined_ports_ = 0;
  sim::restore_seq(r, [&](std::size_t) {
    if (idx >= ports_.size()) {
      throw sim::SnapshotError("NoisyChannel: port count mismatch");
    }
    Port& p = ports_[idx++];
    p.freq = static_cast<int>(r.u32());
    p.value = static_cast<Logic4>(r.u8());
    p.rx_freq = static_cast<int>(r.u32());
    if (is_defined(p.value)) ++defined_ports_;
  });
  if (idx != ports_.size()) {
    throw sim::SnapshotError("NoisyChannel: port count mismatch");
  }
  run_ = Run{};
  if (r.b()) {
    run_.active = true;
    run_.port = static_cast<PortId>(r.u32());
    run_.freq = static_cast<int>(r.u32());
    run_.start = r.time();
    run_.period = r.time();
    run_.masked = r.b();
    if (run_.masked) {
      run_.mask_synced = r.b();
      for (std::uint64_t& v : mask_base_) v = r.u64();
    }
    // run_.bits/clean stay null until the owning radio rebinds them.
  }
  bits_driven_ = r.u64();
  bits_flipped_ = r.u64();
  collision_samples_ = r.u64();
  bits_burst_ = r.u64();
  burst_fallbacks_ = r.u64();
  remote_bits_ = r.u64();
  remote_flips_ = r.u64();
  const bool had_trace = r.b();
  if (had_trace != (bus_trace_ != nullptr)) {
    throw sim::SnapshotError("NoisyChannel: bus-trace presence mismatch");
  }
  if (had_trace) bus_trace_->restore_value(static_cast<Logic4>(r.u8()));
  r.leave_section();
}

void NoisyChannel::rebind_run_bits(PortId port, const sim::BitVector* bits) {
  assert(run_.active && run_.port == port && run_.clean == nullptr &&
         run_.bits == nullptr);
  (void)port;
  run_.clean = bits;
  if (run_.masked) {
    // Regenerate the error mask on a scratch stream from the saved
    // pre-fill state -- it is a pure function of (state, BER, length),
    // so the restored medium is bit-identical to the saved one.
    sim::Rng fill;
    fill.set_state(mask_base_);
    build_masked_buffers(*bits, fill);
    run_.bits = &noisy_;
    if (!run_.mask_synced) env().set_rng_guard(this);
  } else {
    run_.bits = bits;
  }
}

void NoisyChannel::refresh_trace() {
  if (!bus_trace_) return;
  Logic4 acc = Logic4::kZ;
  for (const Port& p : ports_) acc = resolve(acc, p.value);
  bus_trace_->write(acc);
}

}  // namespace btsc::phy
