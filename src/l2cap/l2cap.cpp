#include "l2cap/l2cap.hpp"

#include "baseband/packet.hpp"

namespace btsc::l2cap {

using baseband::kLlidCont;
using baseband::kLlidStart;

L2capMux::L2capMux(lm::LinkManager& link_manager) : lm_(link_manager) {
  lm_.set_user_data_handler(
      [this](std::uint8_t lt, std::uint8_t llid,
             std::vector<std::uint8_t> data) {
        on_user_data(lt, llid, std::move(data));
      });
}

std::size_t L2capMux::fragment_capacity() const {
  return baseband::max_user_bytes(
      lm_.device().lc().config().data_packet_type);
}

bool L2capMux::send(std::uint8_t lt, ChannelId cid,
                    std::vector<std::uint8_t> sdu) {
  if (sdu.size() > 0xFFFF) return false;
  // Basic L2CAP frame: length (of the information payload) + CID + SDU.
  std::vector<std::uint8_t> frame;
  frame.reserve(sdu.size() + 4);
  frame.push_back(static_cast<std::uint8_t>(sdu.size() & 0xFF));
  frame.push_back(static_cast<std::uint8_t>(sdu.size() >> 8));
  frame.push_back(static_cast<std::uint8_t>(cid & 0xFF));
  frame.push_back(static_cast<std::uint8_t>(cid >> 8));
  frame.insert(frame.end(), sdu.begin(), sdu.end());

  const std::size_t cap = fragment_capacity();
  auto& lc = lm_.device().lc();
  bool first = true;
  for (std::size_t pos = 0; pos < frame.size(); pos += cap) {
    const std::size_t n = std::min(cap, frame.size() - pos);
    std::vector<std::uint8_t> fragment(
        frame.begin() + static_cast<std::ptrdiff_t>(pos),
        frame.begin() + static_cast<std::ptrdiff_t>(pos + n));
    if (!lc.send_acl(lt, first ? kLlidStart : kLlidCont,
                     std::move(fragment))) {
      return false;  // queue full
    }
    first = false;
  }
  ++sdus_sent_;
  return true;
}

void L2capMux::on_user_data(std::uint8_t lt, std::uint8_t llid,
                            std::vector<std::uint8_t> data) {
  Reassembly& r = reassembly_[lt];
  if (r.active && llid == kLlidStart) {
    // A new start while a frame is in flight: the previous SDU is dead.
    ++reassembly_errors_;
    r.active = false;
    r.buffer.clear();
  }
  if (!r.active) {
    // Expect a frame start with the 4-byte basic header.
    if (llid != kLlidStart || data.size() < 4) {
      ++reassembly_errors_;
      return;
    }
    const std::uint16_t length =
        static_cast<std::uint16_t>(data[0] | (data[1] << 8));
    r.cid = static_cast<ChannelId>(data[2] | (data[3] << 8));
    r.expected = length;
    r.buffer.assign(data.begin() + 4, data.end());
    r.active = true;
  } else {
    r.buffer.insert(r.buffer.end(), data.begin(), data.end());
  }
  if (r.buffer.size() > r.expected) {
    // Overrun: stream desynchronised (e.g. a lost start fragment).
    ++reassembly_errors_;
    r.active = false;
    r.buffer.clear();
    return;
  }
  if (r.buffer.size() == r.expected) {
    r.active = false;
    ++sdus_delivered_;
    if (handler_) handler_(lt, r.cid, std::move(r.buffer));
    r.buffer = {};
  }
}

// ---------------------------------------------------------------------------
// Checkpointing
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint32_t kL2capTag = sim::snapshot_tag("L2CP");

}  // namespace

void L2capMux::save_state(sim::SnapshotWriter& w) const {
  w.begin_section(kL2capTag);
  sim::save_seq(w, reassembly_.size(), [&, it = reassembly_.begin()](
                                           std::size_t) mutable {
    w.u8(it->first);
    const Reassembly& re = it->second;
    w.b(re.active);
    w.u16(re.expected);
    w.u16(re.cid);
    w.byte_vec(re.buffer);
    ++it;
  });
  w.u64(sdus_sent_);
  w.u64(sdus_delivered_);
  w.u64(reassembly_errors_);
  w.end_section();
}

void L2capMux::restore_state(sim::SnapshotReader& r) {
  r.enter_section(kL2capTag);
  reassembly_.clear();
  sim::restore_seq(r, [&](std::size_t) {
    const std::uint8_t lt = r.u8();
    Reassembly re;
    re.active = r.b();
    re.expected = r.u16();
    re.cid = r.u16();
    re.buffer = r.byte_vec();
    reassembly_[lt] = std::move(re);
  });
  sdus_sent_ = r.u64();
  sdus_delivered_ = r.u64();
  reassembly_errors_ = r.u64();
  r.leave_section();
}

}  // namespace btsc::l2cap
