#include "l2cap/l2cap.hpp"

#include "baseband/packet.hpp"

namespace btsc::l2cap {

using baseband::kLlidCont;
using baseband::kLlidStart;

L2capMux::L2capMux(lm::LinkManager& link_manager) : lm_(link_manager) {
  lm_.set_user_data_handler(
      [this](std::uint8_t lt, std::uint8_t llid,
             std::vector<std::uint8_t> data) {
        on_user_data(lt, llid, std::move(data));
      });
}

std::size_t L2capMux::fragment_capacity() const {
  return baseband::max_user_bytes(
      lm_.device().lc().config().data_packet_type);
}

bool L2capMux::send(std::uint8_t lt, ChannelId cid,
                    std::vector<std::uint8_t> sdu) {
  if (sdu.size() > 0xFFFF) return false;
  // Basic L2CAP frame: length (of the information payload) + CID + SDU.
  std::vector<std::uint8_t> frame;
  frame.reserve(sdu.size() + 4);
  frame.push_back(static_cast<std::uint8_t>(sdu.size() & 0xFF));
  frame.push_back(static_cast<std::uint8_t>(sdu.size() >> 8));
  frame.push_back(static_cast<std::uint8_t>(cid & 0xFF));
  frame.push_back(static_cast<std::uint8_t>(cid >> 8));
  frame.insert(frame.end(), sdu.begin(), sdu.end());

  const std::size_t cap = fragment_capacity();
  auto& lc = lm_.device().lc();
  bool first = true;
  for (std::size_t pos = 0; pos < frame.size(); pos += cap) {
    const std::size_t n = std::min(cap, frame.size() - pos);
    std::vector<std::uint8_t> fragment(
        frame.begin() + static_cast<std::ptrdiff_t>(pos),
        frame.begin() + static_cast<std::ptrdiff_t>(pos + n));
    if (!lc.send_acl(lt, first ? kLlidStart : kLlidCont,
                     std::move(fragment))) {
      return false;  // queue full
    }
    first = false;
  }
  ++sdus_sent_;
  return true;
}

void L2capMux::on_user_data(std::uint8_t lt, std::uint8_t llid,
                            std::vector<std::uint8_t> data) {
  Reassembly& r = reassembly_[lt];
  if (r.active && llid == kLlidStart) {
    // A new start while a frame is in flight: the previous SDU is dead.
    ++reassembly_errors_;
    r.active = false;
    r.buffer.clear();
  }
  if (!r.active) {
    // Expect a frame start with the 4-byte basic header.
    if (llid != kLlidStart || data.size() < 4) {
      ++reassembly_errors_;
      return;
    }
    const std::uint16_t length =
        static_cast<std::uint16_t>(data[0] | (data[1] << 8));
    r.cid = static_cast<ChannelId>(data[2] | (data[3] << 8));
    r.expected = length;
    r.buffer.assign(data.begin() + 4, data.end());
    r.active = true;
  } else {
    r.buffer.insert(r.buffer.end(), data.begin(), data.end());
  }
  if (r.buffer.size() > r.expected) {
    // Overrun: stream desynchronised (e.g. a lost start fragment).
    ++reassembly_errors_;
    r.active = false;
    r.buffer.clear();
    return;
  }
  if (r.buffer.size() == r.expected) {
    r.active = false;
    ++sdus_delivered_;
    if (handler_) handler_(lt, r.cid, std::move(r.buffer));
    r.buffer = {};
  }
}

}  // namespace btsc::l2cap
