// Minimal L2CAP (basic mode): segmentation and reassembly over ACL.
//
// The paper's stack figure places L2CAP directly above the Link Manager;
// this module provides the part of it the lower-layer analyses need: SDUs
// of arbitrary size are carried over the baseband's packet-sized ACL
// fragments using the LLID start/continuation bits, with the standard
// 4-byte basic header (16-bit length + 16-bit channel id) framing each
// SDU. One L2capMux per device handles all remote LT_ADDRs.
//
// Delivery guarantees follow from the baseband ARQ: fragments arrive in
// order and without duplication per link, so reassembly is a simple
// accumulator; a malformed stream (continuation without start, length
// overrun) drops the SDU and counts an error.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "lm/link_manager.hpp"
#include "sim/snapshot.hpp"

namespace btsc::l2cap {

/// Channel identifiers; 0x0040+ are connection-oriented channels.
using ChannelId = std::uint16_t;
inline constexpr ChannelId kSignallingCid = 0x0001;
inline constexpr ChannelId kFirstDynamicCid = 0x0040;

class L2capMux : public sim::Snapshotable {
 public:
  /// Called with every reassembled SDU.
  using SduHandler = std::function<void(std::uint8_t lt, ChannelId cid,
                                        std::vector<std::uint8_t> sdu)>;

  /// Layers the mux over a LinkManager. This claims the LM's user_data
  /// event; forward other LM events before installing the mux if needed.
  explicit L2capMux(lm::LinkManager& link_manager);

  void set_sdu_handler(SduHandler h) { handler_ = std::move(h); }

  /// Segments and queues an SDU to the link `lt` on channel `cid`.
  /// Returns false if the SDU is too large (> 65535 bytes) or the
  /// baseband queue rejected a fragment (nothing partial is left queued
  /// in that case only when the first fragment failed; mid-SDU rejection
  /// is counted and the SDU truncated -- keep SDUs << queue capacity).
  bool send(std::uint8_t lt, ChannelId cid, std::vector<std::uint8_t> sdu);

  // ---- diagnostics ----
  std::uint64_t sdus_sent() const { return sdus_sent_; }
  std::uint64_t sdus_delivered() const { return sdus_delivered_; }
  std::uint64_t reassembly_errors() const { return reassembly_errors_; }

  /// Fragment payload size used for segmentation (from the link's
  /// preferred packet type at call time).
  std::size_t fragment_capacity() const;

  // ---- checkpointing (no timers; reassembly state + counters) ----
  void save_state(sim::SnapshotWriter& w) const override;
  void restore_state(sim::SnapshotReader& r) override;

 private:
  void on_user_data(std::uint8_t lt, std::uint8_t llid,
                    std::vector<std::uint8_t> data);

  struct Reassembly {
    bool active = false;
    std::uint16_t expected = 0;
    ChannelId cid = 0;
    std::vector<std::uint8_t> buffer;
  };

  lm::LinkManager& lm_;
  SduHandler handler_;
  std::map<std::uint8_t, Reassembly> reassembly_;
  std::uint64_t sdus_sent_ = 0;
  std::uint64_t sdus_delivered_ = 0;
  std::uint64_t reassembly_errors_ = 0;
};

}  // namespace btsc::l2cap
