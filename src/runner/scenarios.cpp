#include "runner/scenarios.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>

#include "baseband/packet.hpp"
#include "phy/channel.hpp"
#include "core/coexistence.hpp"
#include "core/experiments.hpp"
#include "core/partition.hpp"
#include "core/report.hpp"
#include "core/system.hpp"
#include "runner/sweep.hpp"
#include "runner/warmup_store.hpp"
#include "sim/checkpoint_store.hpp"
#include "sim/environment.hpp"
#include "stats/accumulator.hpp"

namespace btsc::runner {
namespace {

using baseband::PacketType;

/// Per-point aggregate of the master-activity sweep (Fig. 10): TX/RX
/// duty cycles plus the message count.
struct ActivitySample {
  stats::Accumulator tx;
  stats::Accumulator rx;
  stats::Accumulator messages;

  void merge(const ActivitySample& o) {
    tx.merge(o.tx);
    rx.merge(o.rx);
    messages.merge(o.messages);
  }

  void save_state(sim::SnapshotWriter& w) const {
    tx.save_state(w);
    rx.save_state(w);
    messages.save_state(w);
  }
  void restore_state(sim::SnapshotReader& r) {
    tx.restore_state(r);
    rx.restore_state(r);
    messages.restore_state(r);
  }
};

/// Per-point aggregate of sweeps whose replications yield one scalar
/// (slave activity total, goodput...).
struct ScalarSample {
  stats::Accumulator value;

  void merge(const ScalarSample& o) { value.merge(o.value); }

  void save_state(sim::SnapshotWriter& w) const { value.save_state(w); }
  void restore_state(sim::SnapshotReader& r) { value.restore_state(r); }
};

/// Triple of accumulators for the coexistence study.
struct CoexSample {
  stats::Accumulator goodput;
  stats::Accumulator retx;
  stats::Accumulator collisions;

  void merge(const CoexSample& o) {
    goodput.merge(o.goodput);
    retx.merge(o.retx);
    collisions.merge(o.collisions);
  }

  void save_state(sim::SnapshotWriter& w) const {
    goodput.save_state(w);
    retx.save_state(w);
    collisions.save_state(w);
  }
  void restore_state(sim::SnapshotReader& r) {
    goodput.restore_state(r);
    retx.restore_state(r);
    collisions.restore_state(r);
  }
};

/// Backoff-ablation aggregate: completion time over successful runs plus
/// the success ratio.
struct BackoffPoint {
  stats::Accumulator slots;
  stats::RatioCounter ok;

  void merge(const BackoffPoint& o) {
    slots.merge(o.slots);
    ok.merge(o.ok);
  }

  void save_state(sim::SnapshotWriter& w) const {
    slots.save_state(w);
    ok.save_state(w);
  }
  void restore_state(sim::SnapshotReader& r) {
    slots.restore_state(r);
    ok.restore_state(r);
  }
};

// ---- checkpoint/fork staging -----------------------------------------------

/// Little-endian construction-parameter blobs for checkpoint recipes:
/// the point parameters the warm-up construction depends on, compared
/// verbatim on load so a checkpoint from an edited point list is a cache
/// miss, never a wrong restore.
void blob_u32(std::vector<std::uint8_t>& b, std::uint32_t v) {
  const auto at = b.size();
  b.resize(at + 4);
  std::memcpy(b.data() + at, &v, 4);
}
void blob_f64(std::vector<std::uint8_t>& b, double v) {
  const auto at = b.size();
  b.resize(at + 8);
  std::memcpy(b.data() + at, &v, 8);
}

/// The store for one scenario run, or null when --checkpoint-dir is not
/// in play (the cache then stays purely in-memory). Creates the
/// directory on first use.
std::shared_ptr<const WarmupStore> make_warmup_store(
    const ScenarioInfo& info, const ScenarioRequest& req) {
  if (req.checkpoint_dir.empty() || req.warmup != WarmupMode::kFork) {
    return nullptr;
  }
  std::error_code ec;
  std::filesystem::create_directories(req.checkpoint_dir, ec);
  if (ec) {
    std::cerr << "btsc-sweep: cannot create checkpoint dir "
              << req.checkpoint_dir << ": " << ec.message()
              << "; continuing without spill\n";
    return nullptr;
  }
  return std::make_shared<const WarmupStore>(req.checkpoint_dir, info.id);
}

/// Lazily-built per-point warm-up images, shared by every replication of
/// a point. The first replication to arrive builds the image — loading
/// it from the durable store when one is attached and a valid checkpoint
/// exists, spilling the freshly-built image otherwise; workers on the
/// same point block on the call_once until it is ready. Slots are
/// allocated up front and never moved (std::once_flag is immovable).
class WarmupCache {
 public:
  explicit WarmupCache(std::size_t points,
                       std::shared_ptr<const WarmupStore> store = nullptr)
      : slots_(points), store_(std::move(store)) {}

  template <class Make>
  const SystemImage& get(std::size_t point, std::uint64_t warm_seed,
                         const std::vector<std::uint8_t>& config,
                         Make&& make) {
    Slot& s = slots_.at(point);
    std::call_once(s.once, [&] {
      if (store_ != nullptr) {
        if (auto img = store_->try_load(point, warm_seed, config)) {
          s.image = std::move(*img);
          return;
        }
      }
      s.image = make();
      if (store_ != nullptr) store_->save(point, warm_seed, config, s.image);
    });
    return s.image;
  }

 private:
  struct Slot {
    std::once_flag once;
    SystemImage image;
  };
  std::vector<Slot> slots_;
  std::shared_ptr<const WarmupStore> store_;
};

/// The base seed the sweep will actually run with (mirrors the
/// resolution rule in sweep_points).
std::uint64_t resolved_base_seed(const ScenarioInfo& info,
                                 const ScenarioRequest& req) {
  return req.base_seed != 0 ? req.base_seed : info.default_base_seed;
}

/// The warm-up stage's seed for one point: the same pure derivation the
/// grid uses for replications, at the reserved warm-up index, so it can
/// never collide with a measurement stream and is identical whether the
/// warm-up is re-run cold or forked from a snapshot.
std::uint64_t warm_seed_for(std::uint64_t base_seed, bool crn,
                            std::size_t point_index) {
  return sim::Rng::derive_stream_seed(base_seed, crn ? 0 : point_index,
                                      core::kWarmupReplicationIndex);
}

/// Shared plumbing: resolves request defaults against the registry entry,
/// trims the point list for reduced sweeps, runs and times the sweep, and
/// stamps the result metadata. Each scenario formats its own rows from
/// the returned per-point samples.
template <class Point, class Sample>
std::vector<Sample> sweep_points(
    const ScenarioInfo& info, const ScenarioRequest& req,
    std::vector<Point>& points, SweepResult& out,
    const typename SweepRunner<Point, Sample>::Body& body) {
  SweepOptions opt;
  opt.threads = req.threads;
  opt.replications = req.replications > 0
                         ? req.replications
                         : (req.quick ? info.quick_replications
                                      : info.default_replications);
  opt.base_seed = req.base_seed != 0 ? req.base_seed : info.default_base_seed;
  opt.common_random_numbers = info.common_random_numbers;
  opt.rep_timeout_s = req.rep_timeout_s;
  opt.max_retries = req.max_retries;
  opt.keep_going = req.keep_going;
  if (req.max_points > 0 &&
      static_cast<std::size_t>(req.max_points) < points.size()) {
    points.resize(static_cast<std::size_t>(req.max_points));
  }

  out.id = info.id;
  out.threads = resolve_thread_count(opt.threads);
  out.replications = opt.replications;
  out.base_seed = opt.base_seed;
  out.quick = req.quick;
  out.max_points = req.max_points;
  out.staged_warmup = req.warmup != WarmupMode::kLegacy;
  out.supervised = opt.supervised();

  // The journal binds every result-defining knob of this grid; resuming
  // under any other configuration throws instead of merging foreign
  // samples.
  std::unique_ptr<SweepJournal> journal;
  if (!req.journal_path.empty()) {
    JournalConfig jc;
    jc.scenario = info.id;
    jc.base_seed = opt.base_seed;
    jc.replications = static_cast<std::uint32_t>(opt.replications);
    jc.points = static_cast<std::uint32_t>(points.size());
    jc.quick = req.quick;
    jc.max_points = req.max_points;
    jc.common_random_numbers = opt.common_random_numbers;
    jc.staged_warmup = out.staged_warmup;
    journal =
        std::make_unique<SweepJournal>(req.journal_path, jc, req.resume);
    if (req.on_commit) journal->set_observer(req.on_commit);
  }
  SweepExecution ex;
  ex.journal = journal.get();
  ex.stop = req.stop;

  const auto t0 = std::chrono::steady_clock::now();
  const auto k0 = sim::Environment::global_scheduler_stats();
  auto merged = SweepRunner<Point, Sample>(opt).run(points, body, ex);
  const auto k1 = sim::Environment::global_scheduler_stats();
  out.quarantined = std::move(ex.quarantined);
  out.journal_skipped = ex.journal_skipped;
  out.interrupted = ex.stopped;
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  // Every replication's environment is destroyed inside the grid run, so
  // the counter delta is exactly this sweep's kernel traffic.
  out.kernel.timers_scheduled = k1.scheduled - k0.scheduled;
  out.kernel.timers_fired = k1.fired - k0.fired;
  out.kernel.timers_canceled = k1.canceled - k0.canceled;
  out.kernel.cancels_after_fire = k1.cancels_after_fire - k0.cancels_after_fire;
  out.kernel.live_at_exit = k1.live - k0.live;
  out.kernel.peak_heap = k1.peak_live;
  out.kernel.peak_depth = k1.peak_depth;
  return merged;
}

// ---- Figs. 6-8: creation vs BER ----

const double kCreationBers[] = {0.0,      1.0 / 100, 1.0 / 90,
                                1.0 / 80, 1.0 / 70,  1.0 / 60,
                                1.0 / 50, 1.0 / 40,  1.0 / 30};

std::vector<double> creation_points(bool include_noiseless) {
  std::vector<double> bers;
  for (double b : kCreationBers) {
    if (b == 0.0 && !include_noiseless) continue;
    bers.push_back(b);
  }
  return bers;
}

SweepRunner<double, core::CreationPoint>::Body creation_body(
    const ScenarioInfo& info, const ScenarioRequest& req,
    std::size_t n_points) {
  if (req.warmup == WarmupMode::kLegacy) {
    return [](const double& ber, const Replication& rep) {
      core::CreationPoint p;
      p.ber = ber;
      p.add(core::run_creation_replication(ber, rep.seed, 2048));
      return p;
    };
  }
  // Staged: construction (the warm-up) runs on the point's warm-up seed;
  // the replication seed drives only the measurement stage, applied at
  // the boundary by reseed + slave clock re-randomisation.
  const std::uint64_t base = resolved_base_seed(info, req);
  const bool crn = info.common_random_numbers;
  const bool fork = req.warmup == WarmupMode::kFork;
  auto cache =
      std::make_shared<WarmupCache>(n_points, make_warmup_store(info, req));
  return [base, crn, fork, cache](const double& ber, const Replication& rep) {
    const std::uint64_t warm = warm_seed_for(base, crn, rep.point_index);
    std::unique_ptr<core::BluetoothSystem> sys;
    if (fork) {
      std::vector<std::uint8_t> recipe;
      blob_f64(recipe, ber);
      blob_u32(recipe, 2048);
      const SystemImage& img = cache->get(rep.point_index, warm, recipe, [&] {
        auto warm_sys = core::make_creation_system(ber, 2048, warm);
        return SystemImage{warm_sys->save_snapshot(), warm};
      });
      sys = core::make_creation_system(ber, 2048, img.construction_seed);
      sys->restore_snapshot(img.bytes);
    } else {
      sys = core::make_creation_system(ber, 2048, warm);
    }
    core::CreationPoint p;
    p.ber = ber;
    p.add(core::run_creation_from(*sys, rep.seed));
    return p;
  };
}

SweepResult run_fig06(const ScenarioInfo& info, const ScenarioRequest& req) {
  SweepResult out;
  out.title =
      "Fig. 6: mean slots to complete INQUIRY vs BER (paper: 1556 @ no "
      "noise, ~1800 @ 1/30; successful runs, 1.28 s timeout)";
  out.columns = {"1/BER", "mean_TS", "ci95_TS", "runs_ok", "runs"};
  auto points = creation_points(true);
  const auto merged = sweep_points<double, core::CreationPoint>(
      info, req, points, out, creation_body(info, req, points.size()));
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = merged[i];
    out.rows.push_back({points[i] > 0 ? 1.0 / points[i] : 0.0,
                        p.inquiry_slots.mean(),
                        p.inquiry_slots.ci95_half_width(),
                        static_cast<double>(p.inquiry_ok.successes()),
                        static_cast<double>(p.inquiry_ok.trials())});
  }
  out.notes.push_back("1/BER = 0 denotes the noiseless channel");
  return out;
}

SweepResult run_fig07(const ScenarioInfo& info, const ScenarioRequest& req) {
  SweepResult out;
  out.title =
      "Fig. 7: mean slots to complete PAGE vs BER (paper: 17 @ no noise; "
      "impossible beyond ~1/30)";
  out.columns = {"1/BER", "mean_TS", "ci95_TS", "runs_ok", "attempted"};
  auto points = creation_points(true);
  const auto merged = sweep_points<double, core::CreationPoint>(
      info, req, points, out, creation_body(info, req, points.size()));
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = merged[i];
    out.rows.push_back({points[i] > 0 ? 1.0 / points[i] : 0.0,
                        p.page_slots.mean(), p.page_slots.ci95_half_width(),
                        static_cast<double>(p.page_ok.successes()),
                        static_cast<double>(p.page_ok.trials())});
  }
  out.notes.push_back("page is attempted only after a successful inquiry");
  return out;
}

SweepResult run_fig08(const ScenarioInfo& info, const ScenarioRequest& req) {
  SweepResult out;
  out.title =
      "Fig. 8: piconet creation failure probability vs BER (inquiry and "
      "page curves; paper: page >95% failure beyond 1/40)";
  out.columns = {"1/BER",     "inq_fail", "inq_lo", "inq_hi",
                 "page_fail", "page_lo",  "page_hi"};
  auto points = creation_points(false);
  const auto merged = sweep_points<double, core::CreationPoint>(
      info, req, points, out, creation_body(info, req, points.size()));
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = merged[i];
    const auto [ilo, ihi] = p.inquiry_ok.wilson95();
    const auto [plo, phi] = p.page_ok.wilson95();
    out.rows.push_back({1.0 / points[i], 1.0 - p.inquiry_ok.ratio(),
                        1.0 - ihi, 1.0 - ilo, 1.0 - p.page_ok.ratio(),
                        1.0 - phi, 1.0 - plo});
  }
  out.notes.push_back(
      "page failure is conditional on inquiry success; both phases must "
      "succeed to create the piconet");
  return out;
}

// ---- Fig. 10: master activity vs duty ----

SweepResult run_fig10(const ScenarioInfo& info, const ScenarioRequest& req) {
  SweepResult out;
  out.title =
      "Fig. 10: master RF activity vs duty cycle (paper: linear, TX above "
      "RX, ~0.3% TX at 2% duty with short DM1 packets)";
  out.columns = {"duty_%", "tx_%", "rx_%", "total_%", "messages"};
  std::vector<double> points = {0.0,    0.0025, 0.005, 0.0075, 0.01,
                                0.0125, 0.015,  0.0175, 0.02};
  const std::uint32_t measure_slots = req.quick ? 8000 : 40000;
  const std::uint64_t base = resolved_base_seed(info, req);
  const bool crn = info.common_random_numbers;
  const WarmupMode mode = req.warmup;
  auto cache = std::make_shared<WarmupCache>(points.size(),
                                             make_warmup_store(info, req));
  const auto merged = sweep_points<double, ActivitySample>(
      info, req, points, out,
      [measure_slots, base, crn, mode, cache](const double& duty,
                                              const Replication& rep) {
        core::MasterActivityConfig cfg;
        cfg.seed = rep.seed;
        cfg.measure_slots = measure_slots;
        core::MasterActivityRow row;
        if (mode == WarmupMode::kLegacy) {
          row = core::run_master_activity(duty, cfg);
        } else if (mode == WarmupMode::kCold) {
          auto w = core::master_activity_warmup(
              warm_seed_for(base, crn, rep.point_index));
          row = core::run_master_activity_from(*w.system, duty, cfg);
        } else {
          const std::uint64_t warm = warm_seed_for(base, crn, rep.point_index);
          // The warm-up is duty-independent, so the recipe is the seed alone.
          const SystemImage& img = cache->get(rep.point_index, warm, {}, [&] {
            auto w = core::master_activity_warmup(warm);
            return SystemImage{w.system->save_snapshot(),
                               w.construction_seed};
          });
          auto sys = core::master_activity_scaffold(img.construction_seed);
          sys->restore_snapshot(img.bytes);
          row = core::run_master_activity_from(*sys, duty, cfg);
        }
        ActivitySample s;
        s.tx.add(row.master.tx_fraction);
        s.rx.add(row.master.rx_fraction);
        s.messages.add(static_cast<double>(row.messages));
        return s;
      });
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& s = merged[i];
    out.rows.push_back({100.0 * points[i], 100.0 * s.tx.mean(),
                        100.0 * s.rx.mean(),
                        100.0 * (s.tx.mean() + s.rx.mean()),
                        s.messages.mean()});
  }
  out.notes.push_back(
      "payload: 1-byte DM1 (186 us on air), poll interval 4000 slots to "
      "isolate traffic-driven activity");
  return out;
}

// ---- Figs. 11-12: slave activity in sniff / hold ----

/// Shared shape of the two slave low-power figures: point 0 is the
/// active-mode baseline (nullopt), later points sweep the mode
/// parameter, and every data row pairs its value with the baseline
/// column. The baseline rides along for free, so --max-points N means
/// N *data* rows (baseline excluded).
SweepResult run_baseline_vs_mode(
    const ScenarioInfo& info, const ScenarioRequest& req, std::string title,
    std::vector<std::string> columns,
    std::vector<std::optional<std::uint32_t>> points, std::string note,
    const std::function<double(const std::optional<std::uint32_t>&,
                               const Replication& rep, bool quick)>& measure) {
  SweepResult out;
  out.title = std::move(title);
  out.columns = std::move(columns);
  ScenarioRequest with_baseline = req;
  if (with_baseline.max_points > 0) ++with_baseline.max_points;
  const bool quick = req.quick;
  const auto merged =
      sweep_points<std::optional<std::uint32_t>, ScalarSample>(
          info, with_baseline, points, out,
          [&measure, quick](const std::optional<std::uint32_t>& mode,
                            const Replication& rep) {
            ScalarSample s;
            s.value.add(measure(mode, rep, quick));
            return s;
          });
  out.max_points = req.max_points;  // report the user's value, not the bump
  const double active = merged[0].value.mean();
  for (std::size_t i = 1; i < points.size(); ++i) {
    out.rows.push_back({static_cast<double>(*points[i]), 100.0 * active,
                        100.0 * merged[i].value.mean()});
  }
  out.notes.push_back(std::move(note));
  return out;
}

SweepResult run_fig11(const ScenarioInfo& info, const ScenarioRequest& req) {
  const std::uint64_t base = resolved_base_seed(info, req);
  const bool crn = info.common_random_numbers;
  const WarmupMode mode = req.warmup;
  auto cache = std::make_shared<WarmupCache>(
      9, make_warmup_store(info, req));  // baseline + 8 Tsniff
  return run_baseline_vs_mode(
      info, req,
      "Fig. 11: slave RF activity vs Tsniff, active vs sniff (master data "
      "every 100 slots; paper: crossover ~30, saving at 100)",
      {"Tsniff", "active_%", "sniff_%"},
      {std::nullopt, 10u, 20u, 30u, 40u, 50u, 60u, 80u, 100u},
      "active slave: slot-start carrier sensing + data reception + ACKs + "
      "poll traffic",
      [base, crn, mode, cache](const std::optional<std::uint32_t>& tsniff,
                               const Replication& rep, bool quick) {
        core::SniffActivityConfig cfg;
        cfg.seed = rep.seed;
        cfg.measure_slots = quick ? 8000 : 30000;
        if (mode == WarmupMode::kLegacy) {
          return core::run_sniff_activity(tsniff, cfg).slave.total();
        }
        if (mode == WarmupMode::kCold) {
          auto w = core::sniff_activity_warmup(
              warm_seed_for(base, crn, rep.point_index));
          return core::run_sniff_activity_from(*w.system, tsniff, cfg)
              .slave.total();
        }
        const std::uint64_t warm = warm_seed_for(base, crn, rep.point_index);
        const SystemImage& img = cache->get(rep.point_index, warm, {}, [&] {
          auto w = core::sniff_activity_warmup(warm);
          return SystemImage{w.system->save_snapshot(), w.construction_seed};
        });
        auto sys = core::sniff_activity_scaffold(img.construction_seed);
        sys->restore_snapshot(img.bytes);
        return core::run_sniff_activity_from(*sys, tsniff, cfg)
            .slave.total();
      });
}

SweepResult run_fig12(const ScenarioInfo& info, const ScenarioRequest& req) {
  const std::uint64_t base = resolved_base_seed(info, req);
  const bool crn = info.common_random_numbers;
  const WarmupMode mode = req.warmup;
  auto cache = std::make_shared<WarmupCache>(
      10, make_warmup_store(info, req));  // baseline + 9 Thold
  return run_baseline_vs_mode(
      info, req,
      "Fig. 12: slave RF activity vs Thold, hold vs active (paper: active "
      "flat 2.6%, crossover ~120 slots)",
      {"Thold", "active_%", "hold_%"},
      {std::nullopt, 40u, 80u, 120u, 160u, 200u, 400u, 600u, 800u, 1000u},
      "hold cycles repeat back to back with an 8-slot gap; the resync cost "
      "is ~2.5 slots of full listening per cycle",
      [base, crn, mode, cache](const std::optional<std::uint32_t>& thold,
                               const Replication& rep, bool quick) {
        core::HoldActivityConfig cfg;
        cfg.seed = rep.seed;
        cfg.min_measure_slots = quick ? 8000 : 30000;
        if (mode == WarmupMode::kLegacy) {
          return core::run_hold_activity(thold, cfg).slave.total();
        }
        if (mode == WarmupMode::kCold) {
          auto w = core::hold_activity_warmup(
              warm_seed_for(base, crn, rep.point_index));
          return core::run_hold_activity_from(*w.system, thold, cfg)
              .slave.total();
        }
        const std::uint64_t warm = warm_seed_for(base, crn, rep.point_index);
        const SystemImage& img = cache->get(rep.point_index, warm, {}, [&] {
          auto w = core::hold_activity_warmup(warm);
          return SystemImage{w.system->save_snapshot(), w.construction_seed};
        });
        auto sys = core::hold_activity_scaffold(img.construction_seed);
        sys->restore_snapshot(img.bytes);
        return core::run_hold_activity_from(*sys, thold, cfg).slave.total();
      });
}

// ---- Extension: packet type x BER throughput matrix ----

struct ThroughputPoint {
  PacketType type;
  double ber;
};

SweepResult run_throughput_scenario(const ScenarioInfo& info,
                                    const ScenarioRequest& req) {
  SweepResult out;
  out.title =
      "Extension: ACL goodput (kb/s) per packet type vs BER (saturated "
      "master->slave link with 1-bit ARQ)";
  out.columns = {"1/BER", "DM1", "DH1", "DM3", "DH3", "DM5", "DH5"};
  const PacketType types[] = {PacketType::kDm1, PacketType::kDh1,
                              PacketType::kDm3, PacketType::kDh3,
                              PacketType::kDm5, PacketType::kDh5};
  const double bers[] = {0.0,       1.0 / 5000, 1.0 / 1000,
                         1.0 / 500, 1.0 / 200,  1.0 / 100};
  // Flatten the matrix so every (type, BER) cell is its own sweep point:
  // the whole matrix shards across the pool at once.
  std::vector<ThroughputPoint> points;
  for (double ber : bers) {
    for (PacketType t : types) points.push_back({t, ber});
  }
  const std::uint32_t measure_slots = req.quick ? 3000 : 8000;
  const std::uint64_t base = resolved_base_seed(info, req);
  const bool crn = info.common_random_numbers;
  const WarmupMode mode = req.warmup;
  // Images are keyed per (type, BER) cell: even under common random
  // numbers the warm-up system differs by packet type.
  auto cache = std::make_shared<WarmupCache>(points.size(),
                                             make_warmup_store(info, req));
  const auto merged = sweep_points<ThroughputPoint, ScalarSample>(
      info, req, points, out,
      [measure_slots, base, crn, mode, cache](const ThroughputPoint& p,
                                              const Replication& rep) {
        core::ThroughputConfig cfg;
        cfg.seed = rep.seed;
        cfg.measure_slots = measure_slots;
        core::ThroughputRow row;
        if (mode == WarmupMode::kLegacy) {
          row = core::run_throughput(p.type, p.ber, cfg);
        } else if (mode == WarmupMode::kCold) {
          auto w = core::throughput_warmup(
              p.type, warm_seed_for(base, crn, rep.point_index));
          row = core::run_throughput_from(*w.system, p.type, p.ber, cfg);
        } else {
          const std::uint64_t warm = warm_seed_for(base, crn, rep.point_index);
          std::vector<std::uint8_t> recipe;
          blob_u32(recipe, static_cast<std::uint32_t>(p.type));
          const SystemImage& img =
              cache->get(rep.point_index, warm, recipe, [&] {
                auto w = core::throughput_warmup(p.type, warm);
                return SystemImage{w.system->save_snapshot(),
                                   w.construction_seed};
              });
          auto sys = core::throughput_scaffold(p.type, img.construction_seed);
          sys->restore_snapshot(img.bytes);
          row = core::run_throughput_from(*sys, p.type, p.ber, cfg);
        }
        ScalarSample s;
        s.value.add(row.goodput_kbps);
        return s;
      });
  // A --max-points cut can land mid-row; rows must keep the declared
  // column arity, so only complete BER rows are emitted and the cut is
  // called out in a note instead of being silently swallowed.
  const std::size_t ntypes = std::size(types);
  for (std::size_t b = 0; b + 1 <= merged.size() / ntypes; ++b) {
    const double ber = points[b * ntypes].ber;
    std::vector<double> row = {ber > 0 ? 1.0 / ber : 0.0};
    for (std::size_t t = 0; t < ntypes; ++t) {
      row.push_back(merged[b * ntypes + t].value.mean());
    }
    out.rows.push_back(row);
  }
  if (const std::size_t rem = merged.size() % ntypes; rem != 0) {
    out.notes.push_back("--max-points cut mid-row: dropped " +
                        std::to_string(rem) +
                        " trailing cell(s) of an incomplete BER row");
  }
  out.notes.push_back(
      "expected shape: clean-channel ceilings DH5 723 / DM5 478 kb/s; DM "
      "types overtake DH as BER grows; short packets degrade most "
      "gracefully");
  return out;
}

// ---- Extension: coexistence ----

SweepResult run_coexistence_scenario(const ScenarioInfo& info,
                                     const ScenarioRequest& req) {
  SweepResult out;
  out.title =
      "Extension: victim-link goodput vs neighbour piconet load (DM1 "
      "traffic; independent hop sequences overlap on ~1/79 of slots)";
  out.columns = {"nbr_period", "goodput_kbps", "retx", "collisions"};
  std::vector<std::uint32_t> points = {0, 64, 16, 8, 4, 2};
  const std::uint32_t measure_slots = req.quick ? 8000 : 24000;
  const std::uint64_t base = resolved_base_seed(info, req);
  const bool crn = info.common_random_numbers;
  const WarmupMode mode = req.warmup;
  auto cache = std::make_shared<WarmupCache>(points.size(),
                                             make_warmup_store(info, req));
  const auto merged = sweep_points<std::uint32_t, CoexSample>(
      info, req, points, out,
      [measure_slots, base, crn, mode, cache](const std::uint32_t& period,
                                              const Replication& rep) {
        core::CoexistenceRunConfig cfg;
        cfg.seed = rep.seed;
        cfg.measure_slots = measure_slots;
        core::CoexistenceRow row;
        if (mode == WarmupMode::kLegacy) {
          row = core::run_coexistence(period, cfg);
        } else if (mode == WarmupMode::kCold) {
          auto net = core::coexistence_warmup(
              warm_seed_for(base, crn, rep.point_index));
          row = core::run_coexistence_from(*net, period, cfg);
        } else {
          const std::uint64_t warm =
              warm_seed_for(base, crn, rep.point_index);
          const SystemImage& img = cache->get(rep.point_index, warm, {}, [&] {
            // Both piconets connect via the environment RNG, so the
            // construction seed is the warm-up seed itself (no retry
            // reconstruction as in the single-piconet scenarios).
            return SystemImage{core::coexistence_warmup(warm)->save_snapshot(),
                               warm};
          });
          auto net = core::coexistence_scaffold(img.construction_seed);
          net->restore_snapshot(img.bytes);
          row = core::run_coexistence_from(*net, period, cfg);
        }
        CoexSample s;
        s.goodput.add(row.goodput_kbps);
        s.retx.add(static_cast<double>(row.retransmissions));
        s.collisions.add(static_cast<double>(row.collision_samples));
        return s;
      });
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& s = merged[i];
    out.rows.push_back({static_cast<double>(points[i]), s.goodput.mean(),
                        s.retx.mean(), s.collisions.mean()});
  }
  out.notes.push_back(
      "nbr_period = neighbour's data period in slots (0 = silent); "
      "smaller period = heavier interference");
  return out;
}

// ---- Ablation: inquiry backoff ceiling ----

SweepResult run_backoff_scenario(const ScenarioInfo& info,
                                 const ScenarioRequest& req) {
  SweepResult out;
  out.title =
      "Ablation: inquiry backoff ceiling vs mean inquiry time and success "
      "probability (noiseless, 1.28 s timeout; spec ceiling is 1023)";
  out.columns = {"backoff_max", "mean_TS", "ok", "runs"};
  std::vector<std::uint32_t> points = {0u, 127u, 255u, 511u, 1023u, 2047u};
  const std::uint64_t base = resolved_base_seed(info, req);
  const bool crn = info.common_random_numbers;
  const WarmupMode mode = req.warmup;
  auto cache = std::make_shared<WarmupCache>(points.size(),
                                             make_warmup_store(info, req));
  const auto merged = sweep_points<std::uint32_t, BackoffPoint>(
      info, req, points, out,
      [base, crn, mode, cache](const std::uint32_t& backoff,
                               const Replication& rep) {
        core::BackoffSample r;
        if (mode == WarmupMode::kLegacy) {
          r = core::run_backoff_replication(backoff, rep.seed);
        } else if (mode == WarmupMode::kCold) {
          auto sys = core::make_backoff_system(
              backoff, warm_seed_for(base, crn, rep.point_index));
          r = core::run_backoff_from(*sys, rep.seed);
        } else {
          const std::uint64_t warm =
              warm_seed_for(base, crn, rep.point_index);
          std::vector<std::uint8_t> recipe;
          blob_u32(recipe, backoff);
          const SystemImage& img = cache->get(rep.point_index, warm, recipe,
                                              [&] {
            return SystemImage{
                core::make_backoff_system(backoff, warm)->save_snapshot(),
                warm};
          });
          auto sys = core::make_backoff_system(backoff, img.construction_seed);
          sys->restore_snapshot(img.bytes);
          r = core::run_backoff_from(*sys, rep.seed);
        }
        BackoffPoint p;
        p.ok.add(r.success);
        if (r.success) p.slots.add(static_cast<double>(r.slots));
        return p;
      });
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = merged[i];
    out.rows.push_back({static_cast<double>(points[i]), p.slots.mean(),
                        static_cast<double>(p.ok.successes()),
                        static_cast<double>(p.ok.trials())});
  }
  out.notes.push_back(
      "larger ceilings push completions past the timeout: the backoff "
      "trades collision avoidance against discovery time");
  return out;
}

using ScenarioFn =
    SweepResult (*)(const ScenarioInfo&, const ScenarioRequest&);

struct ScenarioEntry {
  ScenarioInfo info;
  ScenarioFn run;
};

const ScenarioEntry* find_entry(const std::string& id_or_figure);

const std::vector<ScenarioEntry>& registry() {
  static const std::vector<ScenarioEntry> entries = {
      {{"fig06", "6",
        "mean slots to complete the inquiry phase vs channel BER", 40, 8,
        1000},
       &run_fig06},
      {{"fig07", "7", "mean slots to complete the page phase vs channel BER",
        40, 8, 1000},
       &run_fig07},
      {{"fig08", "8",
        "probability of failure of piconet creation (inquiry/page) vs BER",
        40, 10, 1000},
       &run_fig08},
      {{"fig10", "10", "master RF activity (TX/RX) vs channel duty cycle", 1,
        1, 1, true},
       &run_fig10},
      {{"fig11", "11", "slave RF activity vs Tsniff, active vs sniff mode",
        1, 1, 1, true},
       &run_fig11},
      {{"fig12", "12", "slave RF activity vs Thold, hold vs active mode", 1,
        1, 1, true},
       &run_fig12},
      {{"throughput", "",
        "ACL goodput per packet type (DM/DH 1/3/5) vs BER", 1, 1, 1, true},
       &run_throughput_scenario},
      {{"coexistence", "",
        "victim-link goodput vs neighbour piconet offered load", 1, 1, 2030,
        true},
       &run_coexistence_scenario},
      {{"backoff", "",
        "ablation: inquiry random-backoff ceiling vs discovery time", 30, 8,
        500, true},
       &run_backoff_scenario},
  };
  return entries;
}

const ScenarioEntry* find_entry(const std::string& id_or_figure) {
  for (const auto& e : registry()) {
    if (e.info.id == id_or_figure ||
        (!e.info.figure.empty() && e.info.figure == id_or_figure)) {
      return &e;
    }
  }
  return nullptr;
}

}  // namespace

const std::vector<ScenarioInfo>& scenarios() {
  static const std::vector<ScenarioInfo> infos = [] {
    std::vector<ScenarioInfo> v;
    for (const auto& e : registry()) v.push_back(e.info);
    return v;
  }();
  return infos;
}

const ScenarioInfo* find_scenario(const std::string& id_or_figure) {
  const ScenarioEntry* e = find_entry(id_or_figure);
  return e ? &e->info : nullptr;
}

SweepResult run_scenario(const std::string& id_or_figure,
                         const ScenarioRequest& request) {
  const ScenarioEntry* e = find_entry(id_or_figure);
  if (!e) throw std::invalid_argument("unknown scenario: " + id_or_figure);
  if (request.shards > 0) {
    // Scoped override of the process-wide shard request: every system a
    // replication builds consults the default at construction. Restored
    // on every exit path so concurrent-in-sequence scenario runs in one
    // process (tests) cannot leak a request into each other.
    struct ShardDefaultScope {
      int saved = core::shard_request_default();
      ~ShardDefaultScope() { core::set_shard_request_default(saved); }
    } scope;
    core::set_shard_request_default(request.shards);
    return e->run(e->info, request);
  }
  return e->run(e->info, request);
}

void write_result(const SweepResult& result, core::Reporter& reporter) {
  // Deliberately no thread count here: the report must be byte-identical
  // at any parallelism, so only result-defining parameters are recorded
  // (the CLI prints threads and wall time on stdout instead).
  reporter.begin(result.title);
  reporter.meta("scenario", result.id);
  reporter.meta("replications", std::to_string(result.replications));
  reporter.meta("base_seed", std::to_string(result.base_seed));
  reporter.meta("quick", result.quick ? "1" : "0");
  reporter.meta("max_points", std::to_string(result.max_points));
  // "staged" covers both cold and forked runs: the two are bitwise
  // equivalent by contract, so their artifacts must not differ here.
  reporter.meta("warmup", result.staged_warmup ? "staged" : "legacy");
  // Kernel timed-queue diagnostics: sums/maxima of per-replication
  // deterministic counters, so they are thread-count invariant too.
  reporter.meta("kernel_timers_scheduled",
                std::to_string(result.kernel.timers_scheduled));
  reporter.meta("kernel_timers_fired",
                std::to_string(result.kernel.timers_fired));
  reporter.meta("kernel_timers_canceled",
                std::to_string(result.kernel.timers_canceled));
  reporter.meta("kernel_cancels_after_fire",
                std::to_string(result.kernel.cancels_after_fire));
  reporter.meta("kernel_live_at_exit",
                std::to_string(result.kernel.live_at_exit));
  reporter.meta("kernel_peak_heap", std::to_string(result.kernel.peak_heap));
  reporter.meta("kernel_peak_depth",
                std::to_string(result.kernel.peak_depth));
  // Quarantine outcome, emitted ONLY for supervised runs so legacy
  // artifacts stay byte-identical to every pre-supervision run.
  if (result.supervised) {
    reporter.meta("quarantined", std::to_string(result.quarantined.size()));
  }
  reporter.columns(result.columns);
  for (const auto& row : result.rows) reporter.row(row);
  for (const auto& note : result.notes) reporter.note(note);
  for (const auto& q : result.quarantined) {
    reporter.note("quarantined: point=" + std::to_string(q.point_index) +
                  " replication=" + std::to_string(q.replication_index) +
                  " seed=" + std::to_string(q.seed) +
                  " attempts=" + std::to_string(q.attempts) +
                  (q.timed_out ? " timeout: " : " error: ") + q.error);
  }
  reporter.end();
}

std::string quarantine_report(const SweepResult& result) {
  std::string out = "{\"scenario\": \"" + result.id +
                    "\", \"base_seed\": " + std::to_string(result.base_seed) +
                    ", \"quarantined\": [";
  for (std::size_t i = 0; i < result.quarantined.size(); ++i) {
    const QuarantineEntry& q = result.quarantined[i];
    std::string error;
    for (char c : q.error) {  // minimal JSON string escaping
      if (c == '"' || c == '\\') error += '\\';
      if (static_cast<unsigned char>(c) < 0x20) {
        error += ' ';
      } else {
        error += c;
      }
    }
    out += std::string(i ? ", " : "") + "{\"point\": " +
           std::to_string(q.point_index) +
           ", \"replication\": " + std::to_string(q.replication_index) +
           ", \"seed\": " + std::to_string(q.seed) +
           ", \"attempts\": " + std::to_string(q.attempts) +
           ", \"timed_out\": " + (q.timed_out ? "true" : "false") +
           ", \"error\": \"" + error + "\"}";
  }
  out += "]}\n";
  return out;
}

namespace {

std::unique_ptr<core::Reporter> make_reporter(const core::BenchArgs& args,
                                              std::ostream& os) {
  // Explicit --json/--csv flags win; the --out suffix is only a fallback.
  if (args.json) return std::make_unique<core::JsonReporter>(os);
  if (args.csv) return std::make_unique<core::CsvReporter>(os);
  if (args.out.ends_with(".json")) {
    return std::make_unique<core::JsonReporter>(os);
  }
  if (args.out.ends_with(".csv")) {
    return std::make_unique<core::CsvReporter>(os);
  }
  return std::make_unique<core::TextReporter>(os);
}

}  // namespace

int run_scenario_main(const std::string& id, int argc, char** argv) {
  const auto args = core::BenchArgs::parse(argc, argv);
  // Swap-safety escape hatch: force the per-bit reference transport for
  // every channel this process builds. Results are bit-identical either
  // way (ci.sh gates on it); only the kernel telemetry changes.
  phy::NoisyChannel::set_burst_transport_default(!args.no_burst);
  ScenarioRequest req;
  req.threads = args.threads;
  req.replications = args.seeds;
  req.quick = args.quick;
  req.base_seed = args.base_seed;
  req.max_points = args.max_points;
  req.shards = args.shards;
  // --checkpoint-warmup forks replications from per-point snapshots;
  // --cold-warmup is its re-run-everything reference (and escape hatch).
  // Both flags given = cold wins: it is the semantics fork must match.
  if (args.cold_warmup) {
    req.warmup = WarmupMode::kCold;
  } else if (args.checkpoint_warmup) {
    req.warmup = WarmupMode::kFork;
  }
  req.journal_path = args.journal;
  req.resume = args.resume;
  req.checkpoint_dir = args.checkpoint_dir;
  req.rep_timeout_s = args.rep_timeout;
  req.max_retries = args.max_retries;
  req.keep_going = args.keep_going;
  if (req.resume && req.journal_path.empty()) {
    std::cerr << "btsc-sweep: --resume requires --journal FILE\n";
    return 2;
  }
  if (!req.checkpoint_dir.empty() && req.warmup != WarmupMode::kFork) {
    std::cerr << "btsc-sweep: --checkpoint-dir only applies with "
                 "--checkpoint-warmup (the durable store spills the "
                 "per-point fork snapshots)\n";
    return 2;
  }

  SweepResult result;
  try {
    result = run_scenario(id, req);
  } catch (const std::exception& e) {
    std::cerr << "btsc-sweep: " << e.what() << "\n";
    return 1;
  }
  if (!req.journal_path.empty()) {
    std::cout << result.id << ": journal resumed " << result.journal_skipped
              << " completed replication(s) from " << req.journal_path
              << "\n";
  }

  if (args.out.empty()) {
    write_result(result, *make_reporter(args, std::cout));
  } else {
    std::ofstream file(args.out);
    if (!file) {
      std::cerr << "btsc-sweep: cannot open " << args.out << "\n";
      return 1;
    }
    write_result(result, *make_reporter(args, file));
    file.close();
    if (!file) {
      std::cerr << "btsc-sweep: write failed for " << args.out << "\n";
      return 1;
    }
    std::cout << result.id << ": " << result.rows.size() << " points x "
              << result.replications << " replications on " << result.threads
              << " thread(s) in " << result.wall_seconds << " s -> "
              << args.out << "\n";
  }

  // Graceful degradation: completed rows were emitted above; the
  // quarantine report and a distinct exit code tell drivers the result
  // is partial and exactly which replications to chase.
  if (result.supervised) {
    const std::string report = quarantine_report(result);
    if (!args.quarantine_out.empty()) {
      std::ofstream qfile(args.quarantine_out);
      if (!qfile) {
        std::cerr << "btsc-sweep: cannot open " << args.quarantine_out
                  << "\n";
        return 1;
      }
      qfile << report;
    } else if (!result.quarantined.empty()) {
      std::cerr << report;
    }
    if (!result.quarantined.empty()) return 3;
  }
  return 0;
}

}  // namespace btsc::runner
