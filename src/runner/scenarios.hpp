// Scenario registry: every Monte-Carlo figure of the paper (and the
// extension studies) as a named, parameterised sweep over SweepRunner.
//
// A scenario maps a paper figure to (points, replication body, output
// columns). The registry is what the unified `btsc-sweep` CLI and the
// per-figure bench wrappers run; docs/SCENARIOS.md documents each entry.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "runner/sweep.hpp"

namespace btsc::core {
class Reporter;
}

namespace btsc::runner {

/// How each replication reaches its measurement boundary.
///
///  * kLegacy — the historical single-stage replication: construction
///    and measurement draw from one stream seeded by the replication
///    seed. Default; byte-identical to every pre-checkpoint artifact.
///  * kCold — the staged split: a warm-up stage driven by a dedicated
///    per-point warm-up seed is re-run for every replication, then the
///    environment RNG is reseeded with the replication seed at the
///    boundary. The reference semantics of kFork.
///  * kFork — the warm-up runs ONCE per point; every replication
///    restores its in-memory snapshot and reseeds. Produces samples
///    bitwise identical to kCold (the forked-vs-cold CI gate).
enum class WarmupMode { kLegacy, kCold, kFork };

/// Caller-side knobs of one scenario run. Zero-valued fields mean "use
/// the scenario's default".
struct ScenarioRequest {
  /// Worker threads; 0 = hardware concurrency, 1 = serial.
  int threads = 1;
  /// Replications per parameter point; 0 = scenario default.
  int replications = 0;
  /// Use the scenario's reduced (--quick) replication count and windows.
  bool quick = false;
  /// Root seed of the deterministic per-replication derivation;
  /// 0 = scenario default.
  std::uint64_t base_seed = 0;
  /// Keep only the first N parameter points (reduced sweeps for tests
  /// and CI); 0 = all points.
  int max_points = 0;
  /// Replication staging (see WarmupMode). kLegacy keeps the historical
  /// sample streams; kCold/kFork share a per-point warm-up seed and are
  /// bitwise equivalent to each other, not to kLegacy.
  WarmupMode warmup = WarmupMode::kLegacy;
  /// Shard request applied (as the process-wide default, restored
  /// afterwards) while this scenario runs; 0 = leave the current
  /// default. The partition planner fuses/clamps per scenario, so the
  /// result bytes are invariant to this value -- gated in ci.sh.
  int shards = 0;
  /// Append-only results journal (--journal): every completed
  /// replication is fsync'd to this file; empty = no journal. The
  /// journal is bookkeeping, never result-defining: journaled and plain
  /// runs emit byte-identical artifacts (the crash-injection CI gate).
  std::string journal_path;
  /// Resume from an existing journal (--resume): already-journaled
  /// replications are replayed from disk instead of re-run. Requires
  /// journal_path.
  bool resume = false;
  /// Durable warm-up checkpoint directory (--checkpoint-dir): the
  /// per-point warm-up snapshot cache of kFork runs spills to / loads
  /// from CheckpointFiles here, so a fresh process skips warm-ups a
  /// previous one already paid for. Empty = in-memory cache only.
  std::string checkpoint_dir;
  /// Per-replication deadline in seconds (--rep-timeout); overrunning
  /// replications are quarantined as timeouts. <= 0 = no deadline.
  double rep_timeout_s = 0.0;
  /// Extra attempts for a throwing replication before quarantine
  /// (--max-retries).
  int max_retries = 0;
  /// Quarantine failing replications and keep sweeping (--keep-going);
  /// implied by rep_timeout_s/max_retries.
  bool keep_going = false;
  /// Cooperative drain flag (the sweep service's SIGTERM path): when
  /// non-null and set, the grid stops claiming new replications;
  /// in-flight ones finish and journal, and the result comes back with
  /// `interrupted` set instead of being publishable.
  const std::atomic<bool>* stop = nullptr;
  /// Per-replication commit stream: invoked with (point, replication)
  /// after each replication is durably journaled. Only fires on
  /// journaled runs (the journal IS the commit point). Null = none.
  std::function<void(std::uint64_t, std::uint64_t)> on_commit;
};

/// A completed sweep: a titled table plus the metadata needed to
/// reproduce it. Consumed by the core::Reporter backends.
struct SweepResult {
  /// Registry id, e.g. "fig08".
  std::string id;
  /// Human-readable title (the bench header line).
  std::string title;
  /// Column names, one per entry of each row.
  std::vector<std::string> columns;
  /// One row per parameter point, in point order.
  std::vector<std::vector<double>> rows;
  /// Free-form annotations printed after the table.
  std::vector<std::string> notes;
  /// Worker threads actually used.
  int threads = 1;
  /// Replications per point actually used.
  int replications = 1;
  /// Base seed actually used.
  std::uint64_t base_seed = 0;
  /// Whether the reduced (--quick) windows/replications were used; part
  /// of the result-defining configuration (it changes measurement
  /// windows), so it is recorded in report metadata.
  bool quick = false;
  /// --max-points truncation applied to the sweep (0 = full point list);
  /// recorded in metadata so a truncated artifact is distinguishable
  /// from a complete run.
  int max_points = 0;
  /// Whether the replications were staged (kCold or kFork): staged runs
  /// draw from different sample streams than legacy ones, so this is
  /// result-defining and recorded in metadata. Cold vs fork is NOT
  /// recorded -- the two are bitwise equivalent by contract, so their
  /// artifacts must stay byte-identical (like the thread count).
  bool staged_warmup = false;
  /// Wall-clock duration of the sweep (excludes reporting).
  double wall_seconds = 0.0;
  /// Whether the supervisor ran (any of rep_timeout_s / max_retries /
  /// keep_going). Supervised artifacts record their quarantine outcome
  /// in metadata; unsupervised ones stay byte-identical to historical
  /// artifacts.
  bool supervised = false;
  /// Replications the supervisor quarantined, sorted by
  /// (point, replication). Empty on a healthy run.
  std::vector<QuarantineEntry> quarantined;
  /// Replications replayed from the journal instead of executed
  /// (resume bookkeeping; deliberately NOT reported in artifacts so a
  /// resumed artifact stays byte-identical to an uninterrupted one).
  std::size_t journal_skipped = 0;
  /// True when a drain (ScenarioRequest::stop) cut the sweep short: the
  /// rows are partial and the caller must NOT write a final artifact —
  /// the journal holds the committed prefix for a later resume.
  bool interrupted = false;

  /// Timed-queue health of the simulation kernels this sweep ran:
  /// sim::Environment scheduler counters summed over every replication
  /// (peak_heap/peak_depth are process-lifetime high-water maxima).
  /// Every value is a sum or maximum of per-replication deterministic
  /// quantities, so the block is identical at any thread count and safe
  /// for byte-compared reports.
  struct KernelDiag {
    /// Timed entries pushed (one-shot callbacks + event notifications).
    std::uint64_t timers_scheduled = 0;
    /// Entries dispatched at their instant.
    std::uint64_t timers_fired = 0;
    /// Live entries physically removed by cancellation (the population
    /// that would have rotted in the queue as dead entries before the
    /// true-cancel heap).
    std::uint64_t timers_canceled = 0;
    /// cancel() no-ops on already-fired/stale handles.
    std::uint64_t cancels_after_fire = 0;
    /// Entries still pending when their environment was destroyed.
    std::uint64_t live_at_exit = 0;
    /// High-water timed-queue size across all environments so far.
    std::uint64_t peak_heap = 0;
    /// 4-ary heap levels at that high-water mark.
    std::uint64_t peak_depth = 0;
  } kernel;
};

/// Registry metadata of one scenario.
struct ScenarioInfo {
  /// Stable id used on the command line, e.g. "fig08" or "throughput".
  std::string id;
  /// Paper figure number ("8"), empty for extension/ablation studies.
  std::string figure;
  /// One-line description shown by `btsc-sweep --list`.
  std::string summary;
  /// Replications per point when the request does not override them.
  int default_replications = 1;
  /// Replications per point under --quick.
  int quick_replications = 1;
  /// Base seed when the request does not override it.
  std::uint64_t default_base_seed = 1;
  /// Runs every parameter point on the same replication seeds (common
  /// random numbers), pairing cross-point comparisons — used by the
  /// activity/throughput/coexistence figures whose rows are contrasted
  /// against each other.
  bool common_random_numbers = false;
};

/// All registered scenarios, in figure order.
const std::vector<ScenarioInfo>& scenarios();

/// Looks a scenario up by id ("fig08") or by bare figure number ("8");
/// nullptr when unknown.
const ScenarioInfo* find_scenario(const std::string& id_or_figure);

/// Runs one scenario end to end (sharded via SweepRunner) and returns its
/// table. Throws std::invalid_argument for an unknown id.
SweepResult run_scenario(const std::string& id_or_figure,
                         const ScenarioRequest& request);

/// Streams a completed sweep through a reporter backend (begin .. end).
void write_result(const SweepResult& result, core::Reporter& reporter);

/// JSON quarantine report: machine-readable enough for a driver (or the
/// sweep service) to retry or exclude the quarantined replications.
std::string quarantine_report(const SweepResult& result);

/// Complete main() body for a figure bench: parses the shared BenchArgs
/// flags (--seeds/--replications, --quick, --threads, --csv/--json,
/// --out, --base-seed, --max-points, --checkpoint-warmup, --cold-warmup),
/// runs `id`, and writes the result to stdout or the requested file.
/// Returns the process exit code.
int run_scenario_main(const std::string& id, int argc, char** argv);

}  // namespace btsc::runner
