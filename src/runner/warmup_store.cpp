#include "runner/warmup_store.hpp"

#include <fcntl.h>
#include <sys/stat.h>

#include <cstdio>
#include <filesystem>
#include <iostream>
#include <utility>

#include "sim/checkpoint_store.hpp"

namespace btsc::runner {
namespace {

struct StatCounters {
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> spills{0};
  std::atomic<std::uint64_t> spill_failures{0};
};

StatCounters& counters() {
  static StatCounters c;
  return c;
}

}  // namespace

WarmupStoreStats warmup_store_stats() {
  auto& c = counters();
  WarmupStoreStats s;
  s.hits = c.hits.load(std::memory_order_relaxed);
  s.misses = c.misses.load(std::memory_order_relaxed);
  s.spills = c.spills.load(std::memory_order_relaxed);
  s.spill_failures = c.spill_failures.load(std::memory_order_relaxed);
  return s;
}

void reset_warmup_store_stats() {
  auto& c = counters();
  c.hits.store(0, std::memory_order_relaxed);
  c.misses.store(0, std::memory_order_relaxed);
  c.spills.store(0, std::memory_order_relaxed);
  c.spill_failures.store(0, std::memory_order_relaxed);
}

WarmupStore::WarmupStore(std::string dir, std::string scenario)
    : dir_(std::move(dir)), scenario_(std::move(scenario)) {}

std::optional<SystemImage> WarmupStore::try_load(
    std::size_t point, std::uint64_t warm_seed,
    const std::vector<std::uint8_t>& config) const {
  const std::string path = path_for(point, warm_seed);
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) {
    counters().misses.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  try {
    sim::CheckpointFile f = sim::load_checkpoint_file(path);
    if (f.scenario != scenario_ || f.point_index != point ||
        f.warm_seed != warm_seed || f.config != config) {
      std::cerr << "btsc: checkpoint " << path
                << ": recipe mismatch; rebuilding warm-up\n";
      counters().misses.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    // Mark the hit for mtime-ordered LRU eviction. Best effort: an
    // unwritable directory still serves hits, it just can't re-order
    // them.
    ::utimensat(AT_FDCWD, path.c_str(), nullptr, 0);
    counters().hits.fetch_add(1, std::memory_order_relaxed);
    return SystemImage{std::move(f.snapshot), f.construction_seed};
  } catch (const sim::SnapshotError& e) {
    std::cerr << "btsc: checkpoint " << path << ": " << e.what()
              << "; rebuilding warm-up\n";
    counters().misses.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
}

void WarmupStore::save(std::size_t point, std::uint64_t warm_seed,
                       const std::vector<std::uint8_t>& config,
                       const SystemImage& image) const {
  if (disabled_.load(std::memory_order_relaxed)) return;
  sim::CheckpointFile f;
  f.scenario = scenario_;
  f.point_index = point;
  f.warm_seed = warm_seed;
  f.construction_seed = image.construction_seed;
  f.config = config;
  f.snapshot = image.bytes;
  try {
    sim::write_checkpoint_file(path_for(point, warm_seed), f);
    counters().spills.fetch_add(1, std::memory_order_relaxed);
  } catch (const sim::SnapshotError& e) {
    counters().spill_failures.fetch_add(1, std::memory_order_relaxed);
    disabled_.store(true, std::memory_order_relaxed);
    std::call_once(warn_once_, [&] {
      std::cerr << "btsc: checkpoint spill to " << dir_
                << " failed (" << e.what()
                << "); falling back to in-memory warm-ups for the rest of "
                   "this run\n";
    });
  }
}

std::string WarmupStore::path_for(std::size_t point,
                                  std::uint64_t warm_seed) const {
  char seed_hex[17];
  std::snprintf(seed_hex, sizeof(seed_hex), "%016llx",
                static_cast<unsigned long long>(warm_seed));
  return dir_ + "/" + scenario_ + "-p" + std::to_string(point) + "-" +
         seed_hex + ".ckpt";
}

}  // namespace btsc::runner
