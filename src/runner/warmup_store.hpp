// Durable side of the per-point warm-up cache (--checkpoint-dir).
//
// Spills each warm-up image to a sim::CheckpointFile and loads it back
// in later processes (or later jobs of the same sweep service).
// Strictly a cache: every failure path — missing file, corruption,
// stale snapshot version, recipe mismatch, write error — degrades to
// rebuilding the warm-up in memory, never to a wrong restore.
//
// Degradation policy: per-FILE problems (corruption, recipe mismatch)
// warn per file and miss; a STORE-level spill failure (read-only or
// full directory) warns exactly once and disables further spill
// attempts for the rest of the run — loads keep working, because a
// read-only directory can still serve hits.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace btsc::runner {

/// A point's warm-up, frozen: the snapshot bytes plus the seed whose
/// construction path produced the system (creation retries can perturb
/// it), which the per-replication scaffold must replay.
struct SystemImage {
  std::vector<std::uint8_t> bytes;
  std::uint64_t construction_seed = 0;
};

/// Process-global counters over every WarmupStore, for service
/// telemetry (warm-cache hit ratio) and tests.
struct WarmupStoreStats {
  std::uint64_t hits = 0;            // try_load served an image
  std::uint64_t misses = 0;          // no file / mismatch / corrupt
  std::uint64_t spills = 0;          // save wrote a checkpoint
  std::uint64_t spill_failures = 0;  // save failed (store disabled)
};
WarmupStoreStats warmup_store_stats();
void reset_warmup_store_stats();

class WarmupStore {
 public:
  WarmupStore(std::string dir, std::string scenario);

  /// The cached image for (point, warm_seed) with a matching recipe, or
  /// nullopt on any miss. A hit touches the file's mtime so LRU
  /// eviction (sweep service --cache-budget) tracks last use.
  std::optional<SystemImage> try_load(
      std::size_t point, std::uint64_t warm_seed,
      const std::vector<std::uint8_t>& config) const;

  /// Spills one warm-up image; never throws. The first failure warns
  /// once (naming the fallback) and disables the store for the rest of
  /// the run — a full or read-only directory must not produce one
  /// warning per point.
  void save(std::size_t point, std::uint64_t warm_seed,
            const std::vector<std::uint8_t>& config,
            const SystemImage& image) const;

  /// True once a spill failure has disabled further saves.
  bool disabled() const { return disabled_.load(std::memory_order_relaxed); }

  const std::string& dir() const { return dir_; }

 private:
  std::string path_for(std::size_t point, std::uint64_t warm_seed) const;

  std::string dir_;
  std::string scenario_;
  mutable std::atomic<bool> disabled_{false};
  mutable std::once_flag warn_once_;
};

}  // namespace btsc::runner
