// Parallel Monte-Carlo sweep engine.
//
// Every figure of the paper is the same computation: for each parameter
// point (a BER, a duty cycle, a Tsniff...) run N independent replications
// of a simulation and aggregate their samples. SweepRunner factors that
// pattern out once: it shards the (point, replication) task grid across a
// std::thread pool and folds the per-replication samples back into one
// aggregate per point.
//
// Determinism contract: the sample produced by replication r of point p
// depends only on (p, r) — its seed is derived as a pure function
// sim::Rng::derive_stream_seed(base_seed, p, r), never from shared state —
// and samples are folded in replication order after all workers have
// finished. The result is therefore bitwise identical at any thread
// count, which the runner determinism test asserts for 1, 2 and 8
// threads.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <vector>

#include "sim/rng.hpp"

namespace btsc::runner {

/// Identifies one replication of one parameter point within a sweep.
struct Replication {
  /// Index of the parameter point in the sweep's point vector.
  std::size_t point_index = 0;
  /// Index of this replication within the point, 0 <= i < replications.
  std::size_t replication_index = 0;
  /// Deterministically derived seed for this replication: a pure function
  /// of (base_seed, point_index, replication_index). Simulations must draw
  /// all their randomness from it.
  std::uint64_t seed = 0;
};

/// Knobs of a sweep run.
struct SweepOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency(). With 1
  /// the sweep runs inline on the calling thread (no pool is spawned).
  int threads = 1;
  /// Independent replications per parameter point (>= 1).
  int replications = 1;
  /// Root of the per-replication seed derivation.
  std::uint64_t base_seed = 1;
  /// Common random numbers: replication r gets the SAME seed at every
  /// parameter point (stream index 0 instead of the point index), so
  /// cross-point comparisons within one figure are paired on identical
  /// random streams — the variance-reduction scheme the activity and
  /// coexistence figures rely on. Off by default: independent points
  /// (e.g. BER curves with many replications) want distinct streams.
  bool common_random_numbers = false;
};

/// Resolves the effective worker count: `requested` if positive, else the
/// hardware concurrency (at least 1). Defined in sweep.cpp.
int resolve_thread_count(int requested);

namespace detail {

/// Runs `task(i)` for every i in [0, total) on `threads` workers pulling
/// from a shared atomic counter. Rethrows the first task exception on the
/// calling thread after all workers have stopped. Defined in sweep.cpp.
void run_task_grid(std::size_t total, int threads,
                   const std::function<void(std::size_t)>& task);

template <class S>
concept MergeableSample = requires(S a, const S& b) { a.merge(b); };

}  // namespace detail

/// Shards a sweep's replication grid across a thread pool.
///
/// `Sample` is whatever one replication produces — a struct of
/// stats::Accumulator / stats::RatioCounter partials, a plain row of
/// numbers, anything movable. When replications > 1 it must expose
/// `void merge(const Sample&)` (the parallel-reduction contract of
/// stats::Accumulator::merge); with a single replication per point no
/// merge is required.
template <class Point, class Sample>
class SweepRunner {
 public:
  /// point -> replication -> sample functor. Must not touch shared mutable
  /// state: everything the simulation needs has to come from the point and
  /// the replication's derived seed.
  using Body = std::function<Sample(const Point&, const Replication&)>;

  explicit SweepRunner(SweepOptions options = {}) : options_(options) {
    if (options_.replications < 1) {
      throw std::invalid_argument("SweepRunner: replications must be >= 1");
    }
  }

  const SweepOptions& options() const { return options_; }

  /// Runs the full grid and returns one merged sample per point, in point
  /// order. Exceptions thrown by `body` are rethrown here (first wins).
  std::vector<Sample> run(const std::vector<Point>& points,
                          const Body& body) const {
    const auto reps = static_cast<std::size_t>(options_.replications);
    if constexpr (!detail::MergeableSample<Sample>) {
      // Reject up front, before any (possibly expensive) simulation runs.
      if (reps > 1) {
        throw std::logic_error(
            "SweepRunner: Sample lacks merge() but replications > 1");
      }
    }
    const std::size_t total = points.size() * reps;
    std::vector<std::optional<Sample>> samples(total);

    detail::run_task_grid(
        total, resolve_thread_count(options_.threads), [&](std::size_t i) {
          Replication rep;
          rep.point_index = i / reps;
          rep.replication_index = i % reps;
          rep.seed = sim::Rng::derive_stream_seed(
              options_.base_seed,
              options_.common_random_numbers ? 0 : rep.point_index,
              rep.replication_index);
          samples[i].emplace(body(points[rep.point_index], rep));
        });

    // Deterministic reduction: fold each point's replications in index
    // order, independent of which worker computed them.
    std::vector<Sample> merged;
    merged.reserve(points.size());
    for (std::size_t p = 0; p < points.size(); ++p) {
      Sample acc = std::move(*samples[p * reps]);
      if constexpr (detail::MergeableSample<Sample>) {
        for (std::size_t r = 1; r < reps; ++r) {
          acc.merge(*samples[p * reps + r]);
        }
      }
      merged.push_back(std::move(acc));
    }
    return merged;
  }

 private:
  SweepOptions options_;
};

}  // namespace btsc::runner
