// Parallel Monte-Carlo sweep engine.
//
// Every figure of the paper is the same computation: for each parameter
// point (a BER, a duty cycle, a Tsniff...) run N independent replications
// of a simulation and aggregate their samples. SweepRunner factors that
// pattern out once: it shards the (point, replication) task grid across a
// std::thread pool and folds the per-replication samples back into one
// aggregate per point.
//
// Determinism contract: the sample produced by replication r of point p
// depends only on (p, r) — its seed is derived as a pure function
// sim::Rng::derive_stream_seed(base_seed, p, r), never from shared state —
// and samples are folded in replication order after all workers have
// finished. The result is therefore bitwise identical at any thread
// count, which the runner determinism test asserts for 1, 2 and 8
// threads.
//
// Beyond the plain grid the runner layers two robustness features, both
// off by default and both preserving that contract:
//
//  * Journaling/resume (SweepExecution::journal): every completed
//    replication's sample is serialized and fsync'd to an append-only
//    journal; a resumed run deserializes the journaled samples instead
//    of re-running their bodies. Because a sample depends only on
//    (p, r), replay-from-journal merges to bitwise-identical results —
//    the kill-and-resume CI gate byte-compares the final artifacts.
//
//  * Supervision (SweepOptions::{rep_timeout_s, max_retries,
//    keep_going}): a throwing replication is retried with exponential
//    backoff and then quarantined — recorded as (point, replication,
//    seed, error) in SweepExecution::quarantined — instead of aborting
//    the sweep; a replication that overruns the per-attempt deadline is
//    abandoned (its worker thread detached, a replacement spawned) and
//    quarantined as a timeout. The surviving replications still merge
//    deterministically.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "runner/journal.hpp"
#include "sim/rng.hpp"
#include "sim/snapshot.hpp"

namespace btsc::runner {

/// Identifies one replication of one parameter point within a sweep.
struct Replication {
  /// Index of the parameter point in the sweep's point vector.
  std::size_t point_index = 0;
  /// Index of this replication within the point, 0 <= i < replications.
  std::size_t replication_index = 0;
  /// Deterministically derived seed for this replication: a pure function
  /// of (base_seed, point_index, replication_index). Simulations must draw
  /// all their randomness from it.
  std::uint64_t seed = 0;
  /// Cooperative cancellation flag, set by the supervisor when this
  /// replication overruns its deadline (null outside supervised runs).
  /// Long-running bodies SHOULD poll cancelled() and return early — an
  /// abandoned attempt's result is discarded either way, but a
  /// cooperative exit releases the worker thread instead of leaking it
  /// for the process lifetime.
  const std::atomic<bool>* cancel = nullptr;

  bool cancelled() const {
    return cancel != nullptr && cancel->load(std::memory_order_relaxed);
  }
};

/// Knobs of a sweep run.
struct SweepOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency(). With 1
  /// the sweep runs inline on the calling thread (no pool is spawned).
  /// Under supervision the calling thread is the watchdog instead, so
  /// `threads` workers are spawned even for 1.
  int threads = 1;
  /// Independent replications per parameter point (>= 1).
  int replications = 1;
  /// Root of the per-replication seed derivation.
  std::uint64_t base_seed = 1;
  /// Common random numbers: replication r gets the SAME seed at every
  /// parameter point (stream index 0 instead of the point index), so
  /// cross-point comparisons within one figure are paired on identical
  /// random streams — the variance-reduction scheme the activity and
  /// coexistence figures rely on. Off by default: independent points
  /// (e.g. BER curves with many replications) want distinct streams.
  bool common_random_numbers = false;

  // ---- supervision (any non-default value enables the supervisor) ----

  /// Per-attempt deadline in seconds; a replication still running past
  /// it is abandoned and quarantined as a timeout. <= 0 disables the
  /// watchdog.
  double rep_timeout_s = 0.0;
  /// Extra attempts after a throwing replication before it is
  /// quarantined (0 = fail/quarantine on the first throw). Timeouts are
  /// never retried: a deterministic simulation that hung once will hang
  /// again.
  int max_retries = 0;
  /// Base backoff between retry attempts, doubled per attempt.
  double retry_backoff_ms = 10.0;
  /// Quarantine failing replications and keep sweeping instead of
  /// aborting on the first error. Implied by rep_timeout_s/max_retries;
  /// set it alone to get quarantine semantics without deadline or retry.
  bool keep_going = false;

  bool supervised() const {
    return rep_timeout_s > 0.0 || max_retries > 0 || keep_going;
  }
};

/// One replication the supervisor gave up on: everything needed to
/// reproduce the failure standalone (the scenario id travels in the
/// surrounding report/CLI output).
struct QuarantineEntry {
  std::size_t point_index = 0;
  std::size_t replication_index = 0;
  std::uint64_t seed = 0;
  /// what() of the final failing attempt, or the timeout description.
  std::string error;
  /// Attempts consumed (1 = failed first try, no retries granted).
  int attempts = 1;
  /// True when the replication was abandoned on deadline rather than
  /// throwing.
  bool timed_out = false;
};

/// Per-run side channel of SweepRunner::run: the optional journal in,
/// the quarantine list and resume statistics out.
struct SweepExecution {
  /// When set, completed replications are appended to this journal and
  /// already-journaled ones are replayed instead of re-run.
  SweepJournal* journal = nullptr;
  /// Cooperative drain flag (e.g. the sweep service's SIGTERM handler).
  /// When non-null and set, workers stop CLAIMING new replications;
  /// attempts already in flight run to completion and journal normally,
  /// so a drained, journaled run resumes without re-running committed
  /// work.
  const std::atomic<bool>* stop = nullptr;
  /// Replications the supervisor quarantined, sorted by (point,
  /// replication). Empty for unsupervised runs (they abort on failure).
  std::vector<QuarantineEntry> quarantined;
  /// Replications replayed from the journal instead of executed.
  std::size_t journal_skipped = 0;
  /// True when `stop` cut the run short (some replications never ran):
  /// the merged result is partial and must not be published as a final
  /// artifact. False if the stop arrived after the grid had finished.
  bool stopped = false;
};

/// Resolves the effective worker count: `requested` if positive, else the
/// hardware concurrency (at least 1). Defined in sweep.cpp.
int resolve_thread_count(int requested);

namespace detail {

/// Runs `task(i)` for every i in [0, total) on `threads` workers pulling
/// from a shared atomic counter. Rethrows the first task exception on the
/// calling thread after all workers have stopped. When `stop` is non-null
/// and becomes set, workers finish their current task and claim no more.
/// Defined in sweep.cpp.
void run_task_grid(std::size_t total, int threads,
                   const std::function<void(std::size_t)>& task,
                   const std::atomic<bool>* stop = nullptr);

/// Handed to a supervised task attempt: the only way to publish results.
/// commit() runs `publish` under the supervisor lock iff the task has
/// not been abandoned, so a deadline-abandoned attempt can never race
/// its replacement or the final merge. Defined in sweep.cpp.
class CommitToken {
 public:
  CommitToken(void* shared, std::size_t index,
              const std::atomic<bool>* cancel)
      : shared_(shared), index_(index), cancel_(cancel) {}

  /// Returns false (without running `publish`) if the attempt was
  /// abandoned; the caller must then discard its work.
  bool commit(const std::function<void()>& publish);

  /// The per-attempt cancellation flag, valid for this attempt's
  /// lifetime (pass into Replication::cancel).
  const std::atomic<bool>* cancel_flag() const { return cancel_; }

 private:
  void* shared_;
  std::size_t index_;
  const std::atomic<bool>* cancel_;
};

/// One quarantined task of a supervised grid, pre-mapping to
/// (point, replication).
struct TaskFailure {
  std::size_t index = 0;
  std::string error;
  int attempts = 1;
  bool timed_out = false;
};

struct SupervisorConfig {
  int threads = 1;
  double rep_timeout_s = 0.0;
  int max_retries = 0;
  double retry_backoff_ms = 10.0;
  /// Cooperative drain flag (see SweepExecution::stop).
  const std::atomic<bool>* stop = nullptr;
};

/// Supervised grid executor: runs `attempt(i, token)` for every i in
/// [0, total) on `cfg.threads` spawned workers while the calling thread
/// watches per-attempt deadlines. Throwing attempts are retried with
/// exponential backoff up to cfg.max_retries, then quarantined;
/// deadline overruns abandon the worker (detach + replace) and
/// quarantine immediately. Failures come back sorted by index. Defined
/// in sweep.cpp.
void run_supervised_grid(std::size_t total, const SupervisorConfig& cfg,
                         const std::function<void(std::size_t, CommitToken&)>&
                             attempt,
                         std::vector<TaskFailure>& failures);

template <class S>
concept MergeableSample = requires(S a, const S& b) { a.merge(b); };

/// A sample the journal can persist: the save/restore pair mirrors the
/// stats::Accumulator state codec contract.
template <class S>
concept JournalableSample =
    requires(S s, const S& cs, sim::SnapshotWriter& w, sim::SnapshotReader& r) {
      cs.save_state(w);
      s.restore_state(r);
    };

}  // namespace detail

/// Shards a sweep's replication grid across a thread pool.
///
/// `Sample` is whatever one replication produces — a struct of
/// stats::Accumulator / stats::RatioCounter partials, a plain row of
/// numbers, anything movable. When replications > 1 it must expose
/// `void merge(const Sample&)` (the parallel-reduction contract of
/// stats::Accumulator::merge); with a single replication per point no
/// merge is required. Journaled runs additionally need the
/// save_state/restore_state pair (detail::JournalableSample).
template <class Point, class Sample>
class SweepRunner {
 public:
  /// point -> replication -> sample functor. Must not touch shared mutable
  /// state: everything the simulation needs has to come from the point and
  /// the replication's derived seed.
  using Body = std::function<Sample(const Point&, const Replication&)>;

  explicit SweepRunner(SweepOptions options = {}) : options_(options) {
    if (options_.replications < 1) {
      throw std::invalid_argument("SweepRunner: replications must be >= 1");
    }
  }

  const SweepOptions& options() const { return options_; }

  /// Runs the full grid and returns one merged sample per point, in point
  /// order. Unsupervised: exceptions thrown by `body` are rethrown here
  /// (first wins) wrapped with the failing (point, replication, seed).
  /// Supervised: failures land in `ex.quarantined` instead and the
  /// surviving replications merge.
  std::vector<Sample> run(const std::vector<Point>& points, const Body& body,
                          SweepExecution& ex) const {
    const auto reps = static_cast<std::size_t>(options_.replications);
    if constexpr (!detail::MergeableSample<Sample>) {
      // Reject up front, before any (possibly expensive) simulation runs.
      if (reps > 1) {
        throw std::logic_error(
            "SweepRunner: Sample lacks merge() but replications > 1");
      }
    }
    if constexpr (!detail::JournalableSample<Sample>) {
      if (ex.journal != nullptr) {
        throw std::logic_error(
            "SweepRunner: Sample lacks save_state/restore_state but a "
            "journal was requested");
      }
    }
    const std::size_t total = points.size() * reps;

    auto make_rep = [this, reps](std::size_t i) {
      Replication rep;
      rep.point_index = i / reps;
      rep.replication_index = i % reps;
      rep.seed = sim::Rng::derive_stream_seed(
          options_.base_seed,
          options_.common_random_numbers ? 0 : rep.point_index,
          rep.replication_index);
      return rep;
    };

    // Heap-shared so a deadline-abandoned worker (which may outlive this
    // call) keeps the storage alive; its writes are fenced off by
    // CommitToken, never by destruction order.
    auto slots =
        std::make_shared<std::vector<std::optional<Sample>>>(total);

    // Replay journaled replications, then run only the remainder.
    std::vector<std::size_t> pending;
    pending.reserve(total);
    for (std::size_t i = 0; i < total; ++i) {
      const Replication rep = make_rep(i);
      if constexpr (detail::JournalableSample<Sample>) {
        if (ex.journal != nullptr) {
          if (const SweepJournal::Record* rec = ex.journal->completed(
                  rep.point_index, rep.replication_index)) {
            if (rec->seed != rep.seed) {
              throw JournalError(
                  "journal: recorded seed mismatch at point=" +
                  std::to_string(rep.point_index) + " replication=" +
                  std::to_string(rep.replication_index) +
                  " (journal from a different configuration?)");
            }
            sim::SnapshotReader r(rec->sample);
            Sample s{};
            s.restore_state(r);
            if (!r.at_end()) {
              throw sim::SnapshotError("journal: trailing sample bytes");
            }
            (*slots)[i].emplace(std::move(s));
            ++ex.journal_skipped;
            continue;
          }
        }
      }
      pending.push_back(i);
    }

    if (!options_.supervised()) {
      run_plain(points, body, *slots, pending, make_rep, ex.journal,
                ex.stop);
    } else {
      run_supervised(points, body, slots, pending, make_rep, ex);
    }

    // A drain only "stopped" the run if replications are actually
    // missing; a stop that raced the natural end of the grid changes
    // nothing and the result stays publishable.
    if (ex.stop != nullptr && ex.stop->load(std::memory_order_relaxed)) {
      std::size_t have = 0;
      for (const auto& s : *slots) {
        if (s.has_value()) ++have;
      }
      ex.stopped = have + ex.quarantined.size() < total;
    }

    // Deterministic reduction: fold each point's replications in index
    // order, independent of which worker computed them. Quarantined
    // replications leave gaps; a fully-quarantined point degrades to a
    // default (empty-accumulator) sample rather than sinking the sweep.
    std::vector<Sample> merged;
    merged.reserve(points.size());
    for (std::size_t p = 0; p < points.size(); ++p) {
      std::optional<Sample> acc;
      for (std::size_t r = 0; r < reps; ++r) {
        std::optional<Sample>& s = (*slots)[p * reps + r];
        if (!s.has_value()) continue;
        if (!acc.has_value()) {
          acc.emplace(std::move(*s));
        } else if constexpr (detail::MergeableSample<Sample>) {
          acc->merge(*s);
        }
      }
      merged.push_back(acc.has_value() ? std::move(*acc) : Sample{});
    }
    return merged;
  }

  std::vector<Sample> run(const std::vector<Point>& points,
                          const Body& body) const {
    SweepExecution ex;
    return run(points, body, ex);
  }

 private:
  /// Serializes a sample for the journal (guarded by JournalableSample
  /// at the call sites).
  static std::vector<std::uint8_t> encode_sample(const Sample& s)
    requires detail::JournalableSample<Sample>
  {
    sim::SnapshotWriter w;
    s.save_state(w);
    return w.take();
  }

  template <class MakeRep>
  void run_plain(const std::vector<Point>& points, const Body& body,
                 std::vector<std::optional<Sample>>& slots,
                 const std::vector<std::size_t>& pending,
                 const MakeRep& make_rep, SweepJournal* journal,
                 const std::atomic<bool>* stop) const {
    detail::run_task_grid(
        pending.size(), resolve_thread_count(options_.threads),
        [&](std::size_t k) {
          const std::size_t i = pending[k];
          const Replication rep = make_rep(i);
          try {
            Sample s = body(points[rep.point_index], rep);
            if constexpr (detail::JournalableSample<Sample>) {
              if (journal != nullptr) {
                journal->append(rep.point_index, rep.replication_index,
                                rep.seed, encode_sample(s));
              }
            }
            slots[i].emplace(std::move(s));
          } catch (const std::exception& e) {
            throw std::runtime_error(replication_context(rep) + ": " +
                                     e.what());
          } catch (...) {
            throw std::runtime_error(replication_context(rep) +
                                     ": unknown error");
          }
        },
        stop);
  }

  template <class MakeRep>
  void run_supervised(
      const std::vector<Point>& points, const Body& body,
      const std::shared_ptr<std::vector<std::optional<Sample>>>& slots,
      const std::vector<std::size_t>& pending, const MakeRep& make_rep,
      SweepExecution& ex) const {
    // Everything an abandoned worker might still touch is owned by the
    // attempt closure via shared_ptr copies: the closure (and thus the
    // data) outlives run() for exactly as long as the detached thread
    // needs it.
    auto points_copy = std::make_shared<const std::vector<Point>>(points);
    auto body_copy = std::make_shared<const Body>(body);
    SweepJournal* journal = ex.journal;

    detail::SupervisorConfig cfg;
    cfg.threads = resolve_thread_count(options_.threads);
    cfg.rep_timeout_s = options_.rep_timeout_s;
    cfg.max_retries = options_.max_retries;
    cfg.retry_backoff_ms = options_.retry_backoff_ms;
    cfg.stop = ex.stop;

    auto pending_copy = std::make_shared<const std::vector<std::size_t>>(
        pending);
    auto make_rep_copy = make_rep;
    const auto attempt = [slots, points_copy, body_copy, journal,
                          pending_copy, make_rep_copy](
                             std::size_t k, detail::CommitToken& token) {
      const std::size_t i = (*pending_copy)[k];
      Replication rep = make_rep_copy(i);
      rep.cancel = token.cancel_flag();
      Sample s = (*body_copy)((*points_copy)[rep.point_index], rep);
      token.commit([&] {
        if constexpr (detail::JournalableSample<Sample>) {
          if (journal != nullptr) {
            journal->append(rep.point_index, rep.replication_index, rep.seed,
                            encode_sample(s));
          }
        }
        (*slots)[i].emplace(std::move(s));
      });
    };

    std::vector<detail::TaskFailure> failures;
    detail::run_supervised_grid(pending.size(), cfg, attempt, failures);

    for (const detail::TaskFailure& f : failures) {
      const Replication rep = make_rep(pending[f.index]);
      QuarantineEntry q;
      q.point_index = rep.point_index;
      q.replication_index = rep.replication_index;
      q.seed = rep.seed;
      q.error = f.error;
      q.attempts = f.attempts;
      q.timed_out = f.timed_out;
      ex.quarantined.push_back(std::move(q));
    }
  }

  static std::string replication_context(const Replication& rep) {
    return "sweep replication failed: point=" +
           std::to_string(rep.point_index) +
           " replication=" + std::to_string(rep.replication_index) +
           " seed=" + std::to_string(rep.seed);
  }

  SweepOptions options_;
};

}  // namespace btsc::runner
