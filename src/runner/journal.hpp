// Append-only results journal: crash-safe progress for a sweep.
//
// One journal file records one sweep configuration (the header) followed
// by one self-describing, checksummed record per COMPLETED replication.
// Each record is fsync'd before the replication is considered durable,
// so after a SIGKILL the journal holds exactly the replications whose
// samples are safe to reuse; a resumed run deserializes those samples,
// skips their bodies, and merges to output byte-identical to an
// uninterrupted run (the journal is bookkeeping, never result-defining).
//
// File layout
// -----------
//   [u32 len][header stream]  then  ([u32 len][record stream])*
//
// Both payloads are complete SnapshotWriter streams, so every block
// carries the snapshot magic, version and trailing FNV-1a checksum for
// free. The header stream holds a "JHDR" section binding the sweep
// configuration (scenario, base seed, replications, point count, quick,
// max_points, CRN, staged warm-up); resuming under a different
// configuration throws instead of merging foreign samples. A record
// stream holds a "JREC" section: point index, replication index, the
// replication's derived seed (revalidated on resume), and the serialized
// sample bytes.
//
// Torn-tail policy: a crash can sever the final record mid-write. On
// resume the intact prefix is kept and the file is truncated at the
// first block that is short or fails validation — those replications
// simply re-run. Corruption is indistinguishable from a tear by design:
// the journal is append-only, so anything invalid can only be the tail.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace btsc::runner {

/// Journal-layer failure (bad header, configuration mismatch, I/O error).
/// Torn tails are NOT errors — they truncate and resume.
class JournalError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The sweep configuration a journal binds. Every field is
/// result-defining: two runs agreeing on all of them produce the same
/// replication grid, seeds, and samples.
struct JournalConfig {
  std::string scenario;
  std::uint64_t base_seed = 0;
  std::uint32_t replications = 0;
  std::uint32_t points = 0;  // after any --max-points trim
  bool quick = false;
  std::int32_t max_points = 0;
  bool common_random_numbers = false;
  bool staged_warmup = false;

  bool operator==(const JournalConfig&) const = default;
};

/// Append-only journal over one sweep run. Thread-safe: append() may be
/// called concurrently from sweep workers; each call writes and fsyncs
/// one record under an internal lock before returning.
class SweepJournal {
 public:
  /// A replication's durable result, as loaded on resume.
  struct Record {
    std::uint64_t seed = 0;
    std::vector<std::uint8_t> sample;
  };

  /// Opens `path`. With resume=false the file must not already exist
  /// (a stale journal silently skipping replications would be worse than
  /// an error). With resume=true an existing file is validated against
  /// `config`, its intact records are loaded, and any torn tail is
  /// truncated; a missing file starts fresh.
  SweepJournal(const std::string& path, const JournalConfig& config,
               bool resume);
  ~SweepJournal();

  SweepJournal(const SweepJournal&) = delete;
  SweepJournal& operator=(const SweepJournal&) = delete;

  /// The record loaded for (point, replication), or nullptr if that
  /// replication has not been journaled. Only pre-existing (resumed)
  /// records are returned; appends from the current run are not
  /// re-read.
  const Record* completed(std::uint64_t point, std::uint64_t rep) const;

  /// Number of records loaded on open (0 for a fresh journal).
  std::size_t completed_count() const { return loaded_.size(); }

  /// Durably appends one completed replication: the record is written
  /// with one write() and fsync'd before this returns. If the write or
  /// sync fails the journal truncates back to the last durable record
  /// before throwing, so a failed append never leaves a torn block in
  /// the MIDDLE of the file (the torn-tail invariant survives partial
  /// failures, not just crashes). If even that truncation fails the
  /// journal is poisoned: every later append throws immediately.
  void append(std::uint64_t point, std::uint64_t rep, std::uint64_t seed,
              const std::vector<std::uint8_t>& sample);

  /// Observer invoked (under the journal lock) after each successful,
  /// durable append with (point, replication). The sweep service uses
  /// this to stream per-replication progress; null disables it.
  void set_observer(std::function<void(std::uint64_t, std::uint64_t)> fn) {
    observer_ = std::move(fn);
  }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  int fd_ = -1;
  std::mutex mu_;
  std::uint64_t end_ = 0;  // offset one past the last durable block
  bool poisoned_ = false;
  std::function<void(std::uint64_t, std::uint64_t)> observer_;
  std::map<std::pair<std::uint64_t, std::uint64_t>, Record> loaded_;
};

}  // namespace btsc::runner
