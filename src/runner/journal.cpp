#include "runner/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "io/fault.hpp"
#include "sim/snapshot.hpp"

namespace btsc::runner {
namespace {

constexpr std::uint32_t kHeaderTag = sim::snapshot_tag("JHDR");
constexpr std::uint32_t kRecordTag = sim::snapshot_tag("JREC");

[[noreturn]] void throw_io(const std::string& what, const std::string& path) {
  throw JournalError("journal: " + what + " " + path + ": " +
                     std::strerror(errno));
}

std::vector<std::uint8_t> encode_header(const JournalConfig& c) {
  sim::SnapshotWriter w;
  w.begin_section(kHeaderTag);
  w.str(c.scenario);
  w.u64(c.base_seed);
  w.u32(c.replications);
  w.u32(c.points);
  w.b(c.quick);
  w.u32(static_cast<std::uint32_t>(c.max_points));
  w.b(c.common_random_numbers);
  w.b(c.staged_warmup);
  w.end_section();
  return w.take();
}

JournalConfig decode_header(const std::vector<std::uint8_t>& bytes) {
  sim::SnapshotReader r(bytes);
  JournalConfig c;
  r.enter_section(kHeaderTag);
  c.scenario = r.str();
  c.base_seed = r.u64();
  c.replications = r.u32();
  c.points = r.u32();
  c.quick = r.b();
  c.max_points = static_cast<std::int32_t>(r.u32());
  c.common_random_numbers = r.b();
  c.staged_warmup = r.b();
  r.leave_section();
  if (!r.at_end()) throw sim::SnapshotError("journal: trailing header bytes");
  return c;
}

/// One length-prefixed block: [u32 len][payload]. A single write() call
/// keeps the kernel-visible append atomic with respect to our own
/// torn-tail scan (a crash tears at most the final block).
void write_block(int fd, const std::string& path,
                 const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> block(4 + payload.size());
  const auto len = static_cast<std::uint32_t>(payload.size());
  std::memcpy(block.data(), &len, 4);
  std::memcpy(block.data() + 4, payload.data(), payload.size());
  std::size_t off = 0;
  while (off < block.size()) {
    const ssize_t n = io::faultable_write(io::FaultOp::kJournalWrite, fd,
                                          block.data() + off,
                                          block.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_io("write failed for", path);
    }
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

SweepJournal::SweepJournal(const std::string& path,
                           const JournalConfig& config, bool resume)
    : path_(path) {
  const bool exists = ::access(path.c_str(), F_OK) == 0;
  if (exists && !resume) {
    throw JournalError("journal: " + path +
                       " already exists; pass --resume to continue it or "
                       "remove the file to start over");
  }

  if (exists) {
    // Load the whole file, validate the header, keep the intact record
    // prefix, and remember where the first torn/invalid block begins.
    const int rfd = ::open(path.c_str(), O_RDONLY);
    if (rfd < 0) throw_io("cannot open", path);
    std::vector<std::uint8_t> bytes;
    std::uint8_t buf[1 << 16];
    for (;;) {
      const ssize_t n = ::read(rfd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(rfd);
        throw_io("read failed for", path);
      }
      if (n == 0) break;
      bytes.insert(bytes.end(), buf, buf + n);
    }
    ::close(rfd);

    std::size_t pos = 0;
    auto next_block =
        [&](std::vector<std::uint8_t>& payload) -> bool {
      if (bytes.size() - pos < 4) return false;
      std::uint32_t len;
      std::memcpy(&len, bytes.data() + pos, 4);
      if (bytes.size() - pos - 4 < len) return false;
      payload.assign(bytes.begin() + static_cast<std::ptrdiff_t>(pos) + 4,
                     bytes.begin() + static_cast<std::ptrdiff_t>(pos) + 4 +
                         len);
      pos += 4 + len;
      return true;
    };

    std::vector<std::uint8_t> payload;
    if (!next_block(payload)) {
      throw JournalError("journal: " + path + ": missing or torn header");
    }
    JournalConfig on_disk;
    try {
      on_disk = decode_header(payload);
    } catch (const sim::SnapshotError& e) {
      throw JournalError("journal: " + path + ": " + e.what());
    }
    if (!(on_disk == config)) {
      throw JournalError(
          "journal: " + path +
          " was written by a different sweep configuration (scenario/seed/"
          "replications/points/quick/max-points/warmup mismatch); refusing "
          "to merge foreign samples");
    }

    std::size_t good_end = pos;
    while (next_block(payload)) {
      Record rec;
      std::uint64_t point, rep;
      try {
        sim::SnapshotReader r(payload);
        r.enter_section(kRecordTag);
        point = r.u64();
        rep = r.u64();
        rec.seed = r.u64();
        rec.sample = r.byte_vec();
        r.leave_section();
        if (!r.at_end()) {
          throw sim::SnapshotError("journal: trailing record bytes");
        }
      } catch (const sim::SnapshotError&) {
        break;  // tear starts here; everything before it is intact
      }
      loaded_[{point, rep}] = std::move(rec);
      good_end = pos;
    }

    fd_ = ::open(path.c_str(), O_WRONLY, 0644);
    if (fd_ < 0) throw_io("cannot reopen", path);
    if (good_end != bytes.size()) {
      // Sever the torn tail so new appends continue a valid stream.
      if (::ftruncate(fd_, static_cast<off_t>(good_end)) != 0) {
        const int e = errno;
        ::close(fd_);
        fd_ = -1;
        errno = e;
        throw_io("truncate failed for", path);
      }
    }
    if (::lseek(fd_, 0, SEEK_END) < 0) {
      const int e = errno;
      ::close(fd_);
      fd_ = -1;
      errno = e;
      throw_io("seek failed for", path);
    }
    end_ = good_end;
    return;
  }

  // Fresh journal: create, write the header, make it durable before the
  // first record can land.
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (fd_ < 0) throw_io("cannot create", path);
  const std::vector<std::uint8_t> header = encode_header(config);
  try {
    write_block(fd_, path_, header);
  } catch (...) {
    ::close(fd_);
    fd_ = -1;
    throw;
  }
  end_ = 4 + header.size();
  if (::fsync(fd_) != 0) {
    const int e = errno;
    ::close(fd_);
    fd_ = -1;
    errno = e;
    throw_io("fsync failed for", path);
  }
}

SweepJournal::~SweepJournal() {
  if (fd_ >= 0) ::close(fd_);
}

const SweepJournal::Record* SweepJournal::completed(std::uint64_t point,
                                                    std::uint64_t rep) const {
  const auto it = loaded_.find({point, rep});
  return it == loaded_.end() ? nullptr : &it->second;
}

void SweepJournal::append(std::uint64_t point, std::uint64_t rep,
                          std::uint64_t seed,
                          const std::vector<std::uint8_t>& sample) {
  sim::SnapshotWriter w;
  w.begin_section(kRecordTag);
  w.u64(point);
  w.u64(rep);
  w.u64(seed);
  w.byte_vec(sample);
  w.end_section();
  const std::vector<std::uint8_t> payload = w.take();

  std::lock_guard<std::mutex> lock(mu_);
  if (poisoned_) {
    throw JournalError("journal: " + path_ +
                       " is poisoned after an unrecoverable append failure; "
                       "refusing further appends");
  }

  // Restores the file to the last durable block after a failed append
  // so the failure never leaves a torn block in the middle of the
  // stream. Poisons the journal if the rollback itself fails.
  const auto rollback = [&] {
    if (::ftruncate(fd_, static_cast<off_t>(end_)) != 0 ||
        ::lseek(fd_, static_cast<off_t>(end_), SEEK_SET) < 0) {
      poisoned_ = true;
      return;
    }
    // Best effort: make the rollback itself durable. If this fails the
    // tail may persist partially — which the resume-time torn-tail scan
    // handles, because the tail is still the only invalid region.
    ::fdatasync(fd_);
  };

  try {
    write_block(fd_, path_, payload);
  } catch (const JournalError&) {
    rollback();
    throw;
  }
  // The replication is only durable once the record is on stable
  // storage; a crash after this sync never re-runs it. fdatasync
  // suffices: the file size is metadata required to read the appended
  // data back, so POSIX guarantees it is flushed too — what it skips
  // (mtime and friends) is exactly the part the resume scan never
  // looks at, and on journalled filesystems that saves a second
  // metadata write per record.
  if (io::faultable_fdatasync(io::FaultOp::kJournalSync, fd_) != 0) {
    // The record hit the file but was never made durable; drop it so the
    // journal keeps exactly the replications reported as committed.
    rollback();
    throw_io("fdatasync failed for", path_);
  }
  end_ += 4 + payload.size();
  if (observer_) observer_(point, rep);
}

}  // namespace btsc::runner
