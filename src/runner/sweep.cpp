#include "runner/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

namespace btsc::runner {

int resolve_thread_count(int requested) {
  if (requested > 0) return requested;
  if (requested < 0) {
    throw std::invalid_argument(
        "thread count must be >= 0 (0 = hardware concurrency)");
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

namespace detail {

void run_task_grid(std::size_t total, int threads,
                   const std::function<void(std::size_t)>& task,
                   const std::atomic<bool>* stop) {
  if (total == 0) return;

  const auto stopping = [stop] {
    return stop != nullptr && stop->load(std::memory_order_relaxed);
  };

  if (threads <= 1) {
    for (std::size_t i = 0; i < total; ++i) {
      if (stopping()) return;
      task(i);
    }
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&] {
    while (!failed.load(std::memory_order_relaxed) && !stopping()) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) return;
      try {
        task(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  // The calling thread works too, so `threads` is the total parallelism.
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads - 1));
  try {
    for (int t = 0; t < threads - 1; ++t) pool.emplace_back(worker);
  } catch (...) {
    // Thread creation failed mid-spawn (resource exhaustion): stop the
    // workers that did start and join them before surfacing the error,
    // or ~thread on a joinable thread would call std::terminate.
    failed.store(true, std::memory_order_relaxed);
    for (auto& th : pool) th.join();
    throw;
  }
  worker();
  for (auto& th : pool) th.join();

  if (first_error) std::rethrow_exception(first_error);
}

// ---- supervised execution --------------------------------------------------

namespace {

using Clock = std::chrono::steady_clock;

/// State shared between the supervisor (calling thread), its workers,
/// and any abandoned worker that outlives the grid run. Heap-owned via
/// shared_ptr so nothing dangles no matter who exits last. All per-task
/// bookkeeping is guarded by `mu`; `next` alone is lock-free.
struct SupShared {
  enum class St : std::uint8_t { kPending, kRunning, kDone, kFailed,
                                 kAbandoned };

  explicit SupShared(std::size_t n, SupervisorConfig c)
      : total(n), cfg(c), state(n, St::kPending), start(n), attempts(n, 0),
        worker_of(n, 0), cancel(n) {}

  const std::size_t total;
  const SupervisorConfig cfg;
  std::function<void(std::size_t, CommitToken&)> task;

  std::atomic<std::size_t> next{0};

  std::mutex mu;
  std::condition_variable cv;  // signalled on every settle
  std::vector<St> state;
  std::vector<Clock::time_point> start;
  std::vector<int> attempts;
  std::vector<std::size_t> worker_of;
  // Per-task cancellation flags. deque: element addresses are stable and
  // atomics need no move construction.
  std::deque<std::atomic<bool>> cancel;
  std::vector<TaskFailure> failures;
  std::size_t settled = 0;  // kDone + kFailed + kAbandoned
};

void settle_locked(SupShared& sh) {
  ++sh.settled;
  sh.cv.notify_one();
}

/// Worker loop: pull tasks from the shared counter, retry throwing
/// attempts with exponential backoff, and exit immediately if the
/// supervisor abandoned the current task (a replacement worker has
/// already been spawned — continuing would double the pool).
bool sup_stopping(const SupShared& sh) {
  return sh.cfg.stop != nullptr &&
         sh.cfg.stop->load(std::memory_order_relaxed);
}

void supervised_worker(const std::shared_ptr<SupShared>& sh,
                       std::size_t worker_id) {
  for (;;) {
    if (sup_stopping(*sh)) return;
    const std::size_t i = sh->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= sh->total) return;

    int attempt = 0;
    std::string last_error;
    for (;;) {
      ++attempt;
      {
        std::lock_guard<std::mutex> lock(sh->mu);
        sh->state[i] = SupShared::St::kRunning;
        sh->start[i] = Clock::now();
        sh->attempts[i] = attempt;
        sh->worker_of[i] = worker_id;
      }
      CommitToken token(sh.get(), i, &sh->cancel[i]);
      bool threw = false;
      try {
        sh->task(i, token);
      } catch (const std::exception& e) {
        threw = true;
        last_error = e.what();
      } catch (...) {
        threw = true;
        last_error = "unknown error";
      }

      std::unique_lock<std::mutex> lock(sh->mu);
      if (sh->state[i] == SupShared::St::kAbandoned) {
        // The supervisor gave this task (and this thread) up while the
        // attempt ran; it already quarantined the task and spawned a
        // replacement. Nothing left for this thread to do.
        return;
      }
      if (!threw) {
        if (sh->state[i] == SupShared::St::kRunning) {
          // The task returned without committing a result (nothing to
          // publish); still settles.
          sh->state[i] = SupShared::St::kDone;
          settle_locked(*sh);
        }
        break;
      }
      if (attempt <= sh->cfg.max_retries) {
        sh->state[i] = SupShared::St::kPending;
        lock.unlock();
        // Exponential backoff, chunked so an abandon lands promptly.
        double wait_ms =
            sh->cfg.retry_backoff_ms * static_cast<double>(1 << (attempt - 1));
        wait_ms = std::min(wait_ms, 10'000.0);
        const auto until =
            Clock::now() + std::chrono::duration<double, std::milli>(wait_ms);
        while (Clock::now() < until &&
               !sh->cancel[i].load(std::memory_order_relaxed)) {
          // A drain aborts the backoff: the task stays kPending and
          // unsettled; a resumed run simply retries it from scratch.
          if (sup_stopping(*sh)) return;
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        if (sup_stopping(*sh)) return;
        continue;
      }
      sh->state[i] = SupShared::St::kFailed;
      sh->failures.push_back({i, last_error, attempt, false});
      settle_locked(*sh);
      break;
    }
  }
}

}  // namespace

bool CommitToken::commit(const std::function<void()>& publish) {
  auto* sh = static_cast<SupShared*>(shared_);
  std::lock_guard<std::mutex> lock(sh->mu);
  if (sh->state[index_] == SupShared::St::kAbandoned) return false;
  publish();
  sh->state[index_] = SupShared::St::kDone;
  settle_locked(*sh);
  return true;
}

void run_supervised_grid(std::size_t total, const SupervisorConfig& cfg,
                         const std::function<void(std::size_t, CommitToken&)>&
                             attempt,
                         std::vector<TaskFailure>& failures) {
  if (total == 0) return;

  auto sh = std::make_shared<SupShared>(total, cfg);
  sh->task = attempt;

  const int workers = std::max(1, cfg.threads);
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  try {
    for (int w = 0; w < workers; ++w) {
      pool.emplace_back(supervised_worker, sh,
                        static_cast<std::size_t>(pool.size()));
    }
  } catch (...) {
    // Thread creation failed mid-spawn: drain the counter so started
    // workers exit, join them, then surface the error.
    sh->next.store(sh->total, std::memory_order_relaxed);
    for (auto& th : pool) th.join();
    throw;
  }

  const bool watchdog = cfg.rep_timeout_s > 0.0;
  const auto deadline =
      std::chrono::duration<double>(watchdog ? cfg.rep_timeout_s : 0.0);
  {
    std::unique_lock<std::mutex> lock(sh->mu);
    while (sh->settled < sh->total) {
      if (sup_stopping(*sh)) {
        // Drain: let running attempts finish (they still commit and
        // journal), but stop waiting on tasks no worker will ever claim.
        bool any_running = false;
        for (std::size_t i = 0; i < sh->total; ++i) {
          if (sh->state[i] == SupShared::St::kRunning) {
            any_running = true;
            break;
          }
        }
        if (!any_running) break;
      }
      if (!watchdog) {
        // A bounded wait (instead of a bare cv.wait) keeps the drain
        // check live even when no settle ever arrives.
        if (cfg.stop != nullptr) {
          sh->cv.wait_for(lock, std::chrono::milliseconds(10));
        } else {
          sh->cv.wait(lock);
        }
        continue;
      }
      sh->cv.wait_for(lock, std::chrono::milliseconds(2));
      const auto now = Clock::now();
      for (std::size_t i = 0; i < sh->total; ++i) {
        if (sh->state[i] != SupShared::St::kRunning) continue;
        if (now - sh->start[i] < deadline) continue;
        // Deadline overrun: abandon the attempt. The cancel flag asks
        // the body to exit cooperatively; whether or not it does, the
        // commit fence guarantees its result is discarded. The hung
        // worker's thread is detached (it may never return) and a
        // replacement keeps the pool at full strength.
        sh->state[i] = SupShared::St::kAbandoned;
        sh->cancel[i].store(true, std::memory_order_relaxed);
        sh->failures.push_back(
            {i,
             "replication deadline exceeded (" +
                 std::to_string(cfg.rep_timeout_s) + " s)",
             sh->attempts[i], true});
        settle_locked(*sh);
        const std::size_t wid = sh->worker_of[i];
        pool[wid].detach();
        pool.emplace_back(supervised_worker, sh,
                          static_cast<std::size_t>(pool.size()));
      }
    }
  }

  for (auto& th : pool) {
    if (th.joinable()) th.join();
  }

  {
    std::lock_guard<std::mutex> lock(sh->mu);
    failures = sh->failures;
  }
  std::sort(failures.begin(), failures.end(),
            [](const TaskFailure& a, const TaskFailure& b) {
              return a.index < b.index;
            });
}

}  // namespace detail
}  // namespace btsc::runner
