#include "runner/sweep.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace btsc::runner {

int resolve_thread_count(int requested) {
  if (requested > 0) return requested;
  if (requested < 0) {
    throw std::invalid_argument(
        "thread count must be >= 0 (0 = hardware concurrency)");
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

namespace detail {

void run_task_grid(std::size_t total, int threads,
                   const std::function<void(std::size_t)>& task) {
  if (total == 0) return;

  if (threads <= 1) {
    for (std::size_t i = 0; i < total; ++i) task(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&] {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) return;
      try {
        task(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  // The calling thread works too, so `threads` is the total parallelism.
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads - 1));
  try {
    for (int t = 0; t < threads - 1; ++t) pool.emplace_back(worker);
  } catch (...) {
    // Thread creation failed mid-spawn (resource exhaustion): stop the
    // workers that did start and join them before surfacing the error,
    // or ~thread on a joinable thread would call std::terminate.
    failed.store(true, std::memory_order_relaxed);
    for (auto& th : pool) th.join();
    throw;
  }
  worker();
  for (auto& th : pool) th.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace detail
}  // namespace btsc::runner
