#include "lm/link_manager.hpp"

#include "sim/time.hpp"

namespace btsc::lm {

using baseband::kClockMask;
using baseband::kLlidLmp;
using baseband::kSlotDuration;

LinkManager::LinkManager(baseband::Device& device) : device_(device) {
  baseband::LinkController::Callbacks cb;
  cb.acl_rx = [this](std::uint8_t lt, std::uint8_t llid,
                     std::vector<std::uint8_t> data) {
    on_acl(lt, llid, std::move(data));
  };
  cb.inquiry_complete = [this](bool ok) {
    if (events_.inquiry_complete) events_.inquiry_complete(ok);
  };
  cb.page_complete = [this](bool ok) {
    if (events_.page_complete) events_.page_complete(ok);
  };
  cb.connected_as_slave = [this](std::uint8_t lt) {
    if (events_.connected_as_slave) events_.connected_as_slave(lt);
  };
  device_.lc().set_callbacks(cb);
  device_.env().register_rearm(device_.name() + ".lm", this, this);
}

LinkManager::~LinkManager() { device_.env().unregister_rearm(this); }

void LinkManager::send_pdu(std::uint8_t lt, const LmpPdu& pdu) {
  ++pdus_sent_;
  device_.lc().send_acl(lt, kLlidLmp, pdu.encode());
}

void LinkManager::on_acl(std::uint8_t lt, std::uint8_t llid,
                         std::vector<std::uint8_t> data) {
  if (llid != kLlidLmp) {
    if (user_data_override_) {
      user_data_override_(lt, llid, std::move(data));
    } else if (events_.user_data) {
      events_.user_data(lt, std::move(data));
    }
    return;
  }
  const auto pdu = LmpPdu::decode(data);
  if (!pdu) return;  // unknown opcode: dropped, as a real LM would NAK
  ++pdus_received_;
  handle_pdu(lt, *pdu);
}

void LinkManager::begin_setup(std::uint8_t lt) {
  LmpPdu pdu;
  pdu.opcode = LmpOpcode::kSetupComplete;
  pdu.master_initiated = is_master();
  send_pdu(lt, pdu);
}

void LinkManager::request_sniff(std::uint8_t lt, std::uint32_t interval_slots,
                                std::uint32_t offset_slots,
                                int attempt_slots) {
  LmpPdu pdu;
  pdu.opcode = LmpOpcode::kSniffReq;
  pdu.master_initiated = is_master();
  pdu.interval = interval_slots;
  pdu.offset = offset_slots;
  pdu.attempt = static_cast<std::uint16_t>(attempt_slots);
  pending_[lt] = pdu;
  send_pdu(lt, pdu);
}

void LinkManager::request_unsniff(std::uint8_t lt) {
  LmpPdu pdu;
  pdu.opcode = LmpOpcode::kUnsniffReq;
  pdu.master_initiated = is_master();
  pending_[lt] = pdu;
  send_pdu(lt, pdu);
}

void LinkManager::request_hold(std::uint8_t lt, std::uint32_t hold_slots) {
  LmpPdu pdu;
  pdu.opcode = LmpOpcode::kHoldReq;
  pdu.master_initiated = is_master();
  pdu.interval = hold_slots;
  pdu.instant = (now_slot() + kModeChangeLeadSlots) & (kClockMask >> 1);
  pending_[lt] = pdu;
  send_pdu(lt, pdu);
}

void LinkManager::request_park(std::uint8_t lt, std::uint8_t pm_addr) {
  LmpPdu pdu;
  pdu.opcode = LmpOpcode::kParkReq;
  pdu.master_initiated = is_master();
  pdu.pm_addr = pm_addr;
  pdu.instant = (now_slot() + kModeChangeLeadSlots) & (kClockMask >> 1);
  pending_[lt] = pdu;
  send_pdu(lt, pdu);
}

void LinkManager::request_unpark(std::uint8_t pm_addr, std::uint8_t new_lt) {
  LmpPdu pdu;
  pdu.opcode = LmpOpcode::kUnparkReq;
  pdu.master_initiated = true;
  pdu.pm_addr = pm_addr;
  pdu.lt_addr = new_lt;
  // Broadcast twice on consecutive beacons for robustness; the PDU is
  // idempotent on the slave. The master's own link state flips only after
  // the beacons had a chance to go out (unparking immediately would stop
  // the beacon schedule before the announcement is transmitted).
  send_pdu(0, pdu);
  send_pdu(0, pdu);
  const auto beacon =
      device_.lc().config().beacon_interval_slots;
  schedule_action(kSlotDuration * (2 * beacon + 4), kUnparkCommit, pm_addr);
}

void LinkManager::detach(std::uint8_t lt, std::uint8_t reason) {
  LmpPdu pdu;
  pdu.opcode = LmpOpcode::kDetach;
  pdu.master_initiated = is_master();
  pdu.reason = reason;
  send_pdu(lt, pdu);
  if (is_master()) {
    // Remove the link once the ARQ has had time to deliver the PDU.
    schedule_action(kSlotDuration * 64, kDetachRemove, lt);
  }
}

void LinkManager::schedule_action(sim::SimTime delay, Kind kind,
                                  std::uint64_t payload) {
  device_.env().schedule_tagged(delay, kind, payload,
                                make_action(kind, payload), /*owner=*/this);
}

void LinkManager::at_instant(std::uint32_t instant, Kind kind,
                             std::uint64_t payload) {
  const std::uint32_t now = now_slot();
  const std::uint32_t wait_slots =
      (instant - now) & (kClockMask >> 1);  // wrap-tolerant
  schedule_action(kSlotDuration * wait_slots, kind, payload);
}

sim::UniqueFunction LinkManager::make_action(Kind kind,
                                             std::uint64_t payload) {
  switch (kind) {
    case kHoldApply:
      return [this, payload] {
        const auto lt = static_cast<std::uint8_t>(payload & 0xFF);
        const auto interval = static_cast<std::uint32_t>(payload >> 8);
        if (is_master()) {
          device_.lc().master_set_hold(lt, interval);
        } else {
          device_.lc().slave_set_hold(interval);
        }
      };
    case kParkApply:
      return [this, payload] {
        const auto lt = static_cast<std::uint8_t>(payload & 0xFF);
        const auto pm_addr = static_cast<std::uint8_t>(payload >> 8);
        if (is_master()) {
          device_.lc().master_set_park(lt, pm_addr);
        } else {
          device_.lc().slave_set_park(pm_addr);
        }
      };
    case kUnparkCommit:
      return [this, payload] {
        device_.lc().master_unpark(static_cast<std::uint8_t>(payload));
      };
    case kDetachRemove:
      return [this, payload] {
        device_.lc().piconet().remove_slave(
            static_cast<std::uint8_t>(payload));
      };
  }
  throw sim::SnapshotError("link manager: unknown timer kind " +
                           std::to_string(kind));
}

void LinkManager::rearm_timer(std::uint16_t kind, std::uint64_t payload,
                              sim::SimTime when) {
  if (kind < kHoldApply || kind > kDetachRemove) {
    throw sim::SnapshotError("link manager: bad timer kind " +
                             std::to_string(kind));
  }
  schedule_action(when - device_.env().now(), static_cast<Kind>(kind),
                  payload);
}

void LinkManager::accept(std::uint8_t lt, const LmpPdu& request) {
  LmpPdu ack;
  ack.opcode = LmpOpcode::kAccepted;
  ack.master_initiated = request.master_initiated;
  ack.accepted_opcode = request.opcode;
  send_pdu(lt, ack);
}

void LinkManager::apply_my_half(std::uint8_t lt, const LmpPdu& request) {
  auto& lc = device_.lc();
  switch (request.opcode) {
    case LmpOpcode::kSniffReq:
      if (is_master()) {
        lc.master_set_sniff(lt, request.interval, request.offset,
                            request.attempt);
      } else {
        lc.slave_set_sniff(request.interval, request.offset, request.attempt);
      }
      break;
    case LmpOpcode::kUnsniffReq:
      if (is_master()) {
        lc.master_clear_sniff(lt);
      } else {
        lc.slave_clear_sniff();
      }
      break;
    case LmpOpcode::kHoldReq:
      at_instant(request.instant, kHoldApply,
                 lt | (static_cast<std::uint64_t>(request.interval) << 8));
      break;
    case LmpOpcode::kParkReq:
      at_instant(request.instant, kParkApply,
                 lt | (static_cast<std::uint64_t>(request.pm_addr) << 8));
      break;
    default:
      break;
  }
}

void LinkManager::handle_pdu(std::uint8_t lt, const LmpPdu& pdu) {
  switch (pdu.opcode) {
    case LmpOpcode::kSetupComplete: {
      const bool first = !setup_done_[lt];
      setup_done_[lt] = true;
      if (first) begin_setup(lt);  // answer with our own setup_complete
      if (events_.setup_complete) events_.setup_complete(lt);
      break;
    }
    case LmpOpcode::kSniffReq:
    case LmpOpcode::kUnsniffReq:
    case LmpOpcode::kHoldReq:
    case LmpOpcode::kParkReq:
      apply_my_half(lt, pdu);
      accept(lt, pdu);
      break;
    case LmpOpcode::kUnparkReq:
      // Arrives on the broadcast beacon while parked.
      if (!is_master() &&
          device_.lc().slave_mode() == baseband::LinkMode::kPark) {
        device_.lc().slave_unpark(pdu.lt_addr);
      }
      break;
    case LmpOpcode::kAccepted: {
      auto it = pending_.find(lt);
      if (it != pending_.end() &&
          it->second.opcode == pdu.accepted_opcode) {
        apply_my_half(lt, it->second);
        const LmpOpcode op = it->second.opcode;
        pending_.erase(it);
        if (events_.procedure_complete) {
          events_.procedure_complete(op, lt, true);
        }
      }
      break;
    }
    case LmpOpcode::kNotAccepted: {
      auto it = pending_.find(lt);
      if (it != pending_.end() &&
          it->second.opcode == pdu.accepted_opcode) {
        const LmpOpcode op = it->second.opcode;
        pending_.erase(it);
        if (events_.procedure_complete) {
          events_.procedure_complete(op, lt, false);
        }
      }
      break;
    }
    case LmpOpcode::kDetach:
      device_.lc().enable_detach_reset();
      if (events_.detached) events_.detached();
      break;
  }
}

// ---------------------------------------------------------------------------
// Checkpointing
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint32_t kLmTag = sim::snapshot_tag("LM  ");

}  // namespace

void LinkManager::save_state(sim::SnapshotWriter& w) const {
  w.begin_section(kLmTag);
  sim::save_seq(w, pending_.size(), [&, it = pending_.begin()](
                                        std::size_t) mutable {
    w.u8(it->first);
    w.byte_vec(it->second.encode());
    ++it;
  });
  sim::save_seq(w, setup_done_.size(), [&, it = setup_done_.begin()](
                                           std::size_t) mutable {
    w.u8(it->first);
    w.b(it->second);
    ++it;
  });
  w.u64(pdus_sent_);
  w.u64(pdus_received_);
  w.end_section();
}

void LinkManager::restore_state(sim::SnapshotReader& r) {
  r.enter_section(kLmTag);
  pending_.clear();
  sim::restore_seq(r, [&](std::size_t) {
    const std::uint8_t lt = r.u8();
    const auto pdu = LmpPdu::decode(r.byte_vec());
    if (!pdu) {
      throw sim::SnapshotError("link manager: undecodable pending PDU");
    }
    pending_[lt] = *pdu;
  });
  setup_done_.clear();
  sim::restore_seq(r, [&](std::size_t) {
    const std::uint8_t lt = r.u8();
    setup_done_[lt] = r.b();
  });
  pdus_sent_ = r.u64();
  pdus_received_ = r.u64();
  r.leave_section();
}

}  // namespace btsc::lm
