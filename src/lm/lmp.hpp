// LMP (Link Manager Protocol) PDUs.
//
// The subset of LMP needed for the paper's experiments: connection setup
// completion, the low-power mode requests (sniff/unsniff, hold, park/
// unpark) and detach, plus accepted/not-accepted responses. PDUs travel
// in DM1 payloads with LLID 11 and are encoded little-endian with the
// opcode (7 bits) and transaction-initiator bit in the first byte, like
// the real protocol.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace btsc::lm {

enum class LmpOpcode : std::uint8_t {
  kAccepted = 3,
  kNotAccepted = 4,
  kDetach = 7,
  kHoldReq = 21,
  kSniffReq = 23,
  kUnsniffReq = 24,
  kParkReq = 25,
  kUnparkReq = 26,  // model-specific: carried on the park beacon broadcast
  kSetupComplete = 49,
};

const char* to_string(LmpOpcode op);

/// Decoded LMP PDU. Fields beyond `opcode` are meaningful per opcode:
///   kSniffReq           : interval, offset, attempt
///   kHoldReq            : interval (duration), instant (start CLK/2)
///   kParkReq            : pm_addr, instant
///   kUnparkReq          : pm_addr, lt_addr
///   kAccepted/kNotAccepted : accepted_opcode
///   kDetach             : reason
struct LmpPdu {
  LmpOpcode opcode = LmpOpcode::kSetupComplete;
  /// Transaction initiated by the master (TID bit).
  bool master_initiated = true;

  std::uint32_t interval = 0;
  std::uint32_t offset = 0;
  std::uint16_t attempt = 0;
  /// Piconet slot number (CLK/2) at which a mode change takes effect.
  std::uint32_t instant = 0;
  std::uint8_t pm_addr = 0;
  std::uint8_t lt_addr = 0;
  std::uint8_t reason = 0;
  LmpOpcode accepted_opcode = LmpOpcode::kSetupComplete;

  /// Serialises to the on-air payload (fits a DM1 user payload).
  std::vector<std::uint8_t> encode() const;

  /// Parses a payload; nullopt if the opcode is unknown or truncated.
  static std::optional<LmpPdu> decode(const std::vector<std::uint8_t>& bytes);

  friend bool operator==(const LmpPdu&, const LmpPdu&) = default;
};

}  // namespace btsc::lm
