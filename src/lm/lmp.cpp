#include "lm/lmp.hpp"

namespace btsc::lm {
namespace {

void put32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 24) & 0xFF));
}

std::uint32_t get32(const std::vector<std::uint8_t>& b, std::size_t pos) {
  return static_cast<std::uint32_t>(b[pos]) |
         (static_cast<std::uint32_t>(b[pos + 1]) << 8) |
         (static_cast<std::uint32_t>(b[pos + 2]) << 16) |
         (static_cast<std::uint32_t>(b[pos + 3]) << 24);
}

}  // namespace

const char* to_string(LmpOpcode op) {
  switch (op) {
    case LmpOpcode::kAccepted:
      return "LMP_accepted";
    case LmpOpcode::kNotAccepted:
      return "LMP_not_accepted";
    case LmpOpcode::kDetach:
      return "LMP_detach";
    case LmpOpcode::kHoldReq:
      return "LMP_hold_req";
    case LmpOpcode::kSniffReq:
      return "LMP_sniff_req";
    case LmpOpcode::kUnsniffReq:
      return "LMP_unsniff_req";
    case LmpOpcode::kParkReq:
      return "LMP_park_req";
    case LmpOpcode::kUnparkReq:
      return "LMP_unpark_req";
    case LmpOpcode::kSetupComplete:
      return "LMP_setup_complete";
  }
  return "LMP_unknown";
}

std::vector<std::uint8_t> LmpPdu::encode() const {
  std::vector<std::uint8_t> out;
  out.push_back(static_cast<std::uint8_t>(
      (static_cast<std::uint8_t>(opcode) << 1) |
      (master_initiated ? 0u : 1u)));
  switch (opcode) {
    case LmpOpcode::kSniffReq:
      put32(out, interval);
      put32(out, offset);
      out.push_back(static_cast<std::uint8_t>(attempt & 0xFF));
      out.push_back(static_cast<std::uint8_t>((attempt >> 8) & 0xFF));
      break;
    case LmpOpcode::kHoldReq:
      put32(out, interval);
      put32(out, instant);
      break;
    case LmpOpcode::kParkReq:
      out.push_back(pm_addr);
      put32(out, instant);
      break;
    case LmpOpcode::kUnparkReq:
      out.push_back(pm_addr);
      out.push_back(lt_addr);
      break;
    case LmpOpcode::kAccepted:
    case LmpOpcode::kNotAccepted:
      out.push_back(static_cast<std::uint8_t>(accepted_opcode));
      break;
    case LmpOpcode::kDetach:
      out.push_back(reason);
      break;
    case LmpOpcode::kUnsniffReq:
    case LmpOpcode::kSetupComplete:
      break;
  }
  return out;
}

std::optional<LmpPdu> LmpPdu::decode(const std::vector<std::uint8_t>& bytes) {
  if (bytes.empty()) return std::nullopt;
  LmpPdu pdu;
  pdu.opcode = static_cast<LmpOpcode>(bytes[0] >> 1);
  pdu.master_initiated = (bytes[0] & 1u) == 0;
  auto need = [&bytes](std::size_t n) { return bytes.size() >= 1 + n; };
  switch (pdu.opcode) {
    case LmpOpcode::kSniffReq:
      if (!need(10)) return std::nullopt;
      pdu.interval = get32(bytes, 1);
      pdu.offset = get32(bytes, 5);
      pdu.attempt = static_cast<std::uint16_t>(
          bytes[9] | (static_cast<std::uint16_t>(bytes[10]) << 8));
      break;
    case LmpOpcode::kHoldReq:
      if (!need(8)) return std::nullopt;
      pdu.interval = get32(bytes, 1);
      pdu.instant = get32(bytes, 5);
      break;
    case LmpOpcode::kParkReq:
      if (!need(5)) return std::nullopt;
      pdu.pm_addr = bytes[1];
      pdu.instant = get32(bytes, 2);
      break;
    case LmpOpcode::kUnparkReq:
      if (!need(2)) return std::nullopt;
      pdu.pm_addr = bytes[1];
      pdu.lt_addr = bytes[2];
      break;
    case LmpOpcode::kAccepted:
    case LmpOpcode::kNotAccepted:
      if (!need(1)) return std::nullopt;
      pdu.accepted_opcode = static_cast<LmpOpcode>(bytes[1]);
      break;
    case LmpOpcode::kDetach:
      if (!need(1)) return std::nullopt;
      pdu.reason = bytes[1];
      break;
    case LmpOpcode::kUnsniffReq:
    case LmpOpcode::kSetupComplete:
      break;
    default:
      return std::nullopt;
  }
  return pdu;
}

}  // namespace btsc::lm
