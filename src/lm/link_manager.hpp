// Link Manager: negotiates link-level procedures over LMP.
//
// One LinkManager per device, layered on the baseband Device. It owns the
// LC callback surface: LMP traffic (LLID 11) is consumed here, everything
// else is forwarded to the application through Events. Procedures follow
// the LMP transaction pattern: the initiator sends a *_req, the peer
// applies its half of the change and answers LMP_accepted, and the
// initiator applies its half on reception. Timed mode changes (hold,
// park) carry an activation instant so both ends switch on the same slot
// even though the acknowledgement takes a few slots to travel.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "baseband/device.hpp"
#include "lm/lmp.hpp"
#include "sim/snapshot.hpp"

namespace btsc::lm {

/// Lead time between sending a timed mode request and its activation
/// instant; ample for the request/accept round trip under the ARQ.
inline constexpr std::uint32_t kModeChangeLeadSlots = 80;

class LinkManager : public sim::Snapshotable, public sim::RearmHandler {
 public:
  struct Events {
    /// Non-LMP ACL payload (user data).
    std::function<void(std::uint8_t lt, std::vector<std::uint8_t>)> user_data;
    /// LMP channel confirmed in both directions.
    std::function<void(std::uint8_t lt)> setup_complete;
    /// A negotiated procedure concluded (accepted or refused).
    std::function<void(LmpOpcode op, std::uint8_t lt, bool accepted)>
        procedure_complete;
    /// The link was torn down by an LMP_detach.
    std::function<void()> detached;
    // Baseband passthroughs.
    std::function<void(bool)> inquiry_complete;
    std::function<void(bool)> page_complete;
    std::function<void(std::uint8_t)> connected_as_slave;
  };

  explicit LinkManager(baseband::Device& device);
  ~LinkManager() override;

  void set_events(Events ev) { events_ = std::move(ev); }

  /// Dedicated non-LMP ACL handler taking precedence over
  /// Events::user_data; survives set_events() calls (used by the L2CAP
  /// mux so scenario orchestration can keep swapping Events freely).
  void set_user_data_handler(
      std::function<void(std::uint8_t lt, std::uint8_t llid,
                         std::vector<std::uint8_t>)>
          h) {
    user_data_override_ = std::move(h);
  }

  baseband::Device& device() { return device_; }

  // ---- procedures (either role may initiate; `lt` identifies the link:
  //      the slave's LT_ADDR on the master, the own LT_ADDR on a slave) ----

  /// Confirms the LMP channel after the baseband connection forms.
  void begin_setup(std::uint8_t lt);

  void request_sniff(std::uint8_t lt, std::uint32_t interval_slots,
                     std::uint32_t offset_slots, int attempt_slots);
  void request_unsniff(std::uint8_t lt);
  void request_hold(std::uint8_t lt, std::uint32_t hold_slots);
  void request_park(std::uint8_t lt, std::uint8_t pm_addr);
  /// Master only: recalls a parked slave via the beacon broadcast.
  void request_unpark(std::uint8_t pm_addr, std::uint8_t new_lt);
  void detach(std::uint8_t lt, std::uint8_t reason = 0x13);

  // ---- diagnostics ----
  std::uint64_t pdus_sent() const { return pdus_sent_; }
  std::uint64_t pdus_received() const { return pdus_received_; }

  // ---- checkpointing ----

  /// Saves/restores the pending LMP transactions, setup flags and the
  /// PDU counters. Pending timed actions (mode-change instants, the
  /// unpark commit, the detach cleanup) are saved by the kernel as
  /// descriptors and replayed through rearm_timer().
  void save_state(sim::SnapshotWriter& w) const override;
  void restore_state(sim::SnapshotReader& r) override;
  void rearm_timer(std::uint16_t kind, std::uint64_t payload,
                   sim::SimTime when) override;

 private:
  /// Timer descriptor kinds; the payload packs the whole capture.
  enum Kind : std::uint16_t {
    kHoldApply = 1,     // payload: lt | interval << 8
    kParkApply = 2,     // payload: lt | pm_addr << 8
    kUnparkCommit = 3,  // payload: pm_addr
    kDetachRemove = 4,  // payload: lt
  };

  bool is_master() const { return device_.lc().is_master(); }
  void send_pdu(std::uint8_t lt, const LmpPdu& pdu);
  void on_acl(std::uint8_t lt, std::uint8_t llid,
              std::vector<std::uint8_t> data);
  void handle_pdu(std::uint8_t lt, const LmpPdu& pdu);
  void apply_my_half(std::uint8_t lt, const LmpPdu& request);
  void accept(std::uint8_t lt, const LmpPdu& request);
  /// Schedules the (kind, payload) action after `delay` as a re-armable
  /// descriptor timer owned by this link manager.
  void schedule_action(sim::SimTime delay, Kind kind, std::uint64_t payload);
  /// Same, at the piconet slot `instant` (CLK/2 units, wrap-tolerant).
  void at_instant(std::uint32_t instant, Kind kind, std::uint64_t payload);
  sim::UniqueFunction make_action(Kind kind, std::uint64_t payload);
  std::uint32_t now_slot() const {
    return (device_.lc().piconet_clock() & baseband::kClockMask) / 2;
  }

  baseband::Device& device_;
  Events events_;
  std::function<void(std::uint8_t, std::uint8_t, std::vector<std::uint8_t>)>
      user_data_override_;
  /// Outstanding request per link, applied when LMP_accepted arrives.
  std::map<std::uint8_t, LmpPdu> pending_;
  std::map<std::uint8_t, bool> setup_done_;
  std::uint64_t pdus_sent_ = 0;
  std::uint64_t pdus_received_ = 0;
};

}  // namespace btsc::lm
