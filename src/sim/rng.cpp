#include "sim/rng.hpp"

namespace btsc::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) {
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) return next();  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t v = next();
  while (v >= limit) v = next();
  return lo + v % span;
}

double Rng::uniform01() {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

void Rng::fill_error_mask(std::uint64_t* words, std::size_t nbits, double p) {
  const std::size_t nwords = (nbits + 63) / 64;
  if (p <= 0.0 || p >= 1.0) {
    // bernoulli() takes its constant shortcut without consuming a draw;
    // the mask mirrors that: all clear / all set, zero draws.
    const std::uint64_t fill = p >= 1.0 && nbits > 0 ? ~0ull : 0ull;
    for (std::size_t w = 0; w < nwords; ++w) words[w] = fill;
  } else {
    for (std::size_t w = 0; w < nwords; ++w) {
      const std::size_t base = w * 64;
      const unsigned n =
          static_cast<unsigned>(nbits - base < 64 ? nbits - base : 64);
      std::uint64_t m = 0;
      for (unsigned j = 0; j < n; ++j) {
        // Exactly bernoulli(p)'s draw, in per-bit order (bit 0 first).
        if (uniform01() < p) m |= 1ull << j;
      }
      words[w] = m;
    }
  }
  if (nbits % 64 != 0 && nwords > 0) {
    words[nwords - 1] &= (1ull << (nbits % 64)) - 1;
  }
}

std::uint64_t Rng::derive_stream_seed(std::uint64_t base, std::uint64_t stream,
                                      std::uint64_t index) {
  // Chain three splitmix64 steps so every input word is fully mixed before
  // the next one is folded in; distinct (base, stream, index) triples give
  // uncorrelated seeds even for adjacent indices.
  std::uint64_t x = base;
  std::uint64_t s = splitmix64(x);
  x = s ^ (stream * 0xBF58476D1CE4E5B9ull);
  s = splitmix64(x);
  x = s ^ (index * 0x94D049BB133111EBull);
  return splitmix64(x);
}

void Rng::set_state(const std::array<std::uint64_t, 4>& s) {
  s_ = s;
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    reseed(0x9E3779B97F4A7C15ull);
  }
}

Rng Rng::split() {
  Rng child;
  child.s_ = {next(), next(), next(), next()};
  // Guard against the (astronomically unlikely) all-zero state.
  if ((child.s_[0] | child.s_[1] | child.s_[2] | child.s_[3]) == 0) {
    child.reseed(0xDEADBEEFull);
  }
  return child;
}

}  // namespace btsc::sim
