// Snapshot: versioned tagged byte streams for checkpointing a simulation.
//
// A snapshot is the serialized MUTABLE state of a simulation at a settled
// instant (between run() calls, no delta work pending). Restoring never
// rebuilds the object graph: the caller constructs the scenario through
// its ordinary deterministic construction path and then overwrites every
// mutable field from the byte stream. Pointers therefore never enter a
// snapshot -- connections between modules are structural and re-created
// by construction; pending timers are saved as re-armable descriptors
// (see Environment::save_state) rather than as closures.
//
// Stream format
// -------------
//   "BTSC" magic, u32 version, then a sequence of nested sections. Each
//   section is a u32 tag (fourcc, e.g. "ENV ") + u32 byte length + body.
//   All integers are little-endian and fixed-width, doubles travel as
//   their IEEE-754 bit pattern, so a snapshot is byte-stable across runs
//   and platforms of the same endianness class -- the property the
//   round-trip golden tests (save -> restore -> save, byte-equal) and the
//   forked-vs-cold sweep gates assert.
//
// Error model: SnapshotReader throws SnapshotError on any mismatch (bad
// magic/version/tag, short read, trailing bytes in a section, corrupted
// payload). The stream carries a trailing FNV-1a checksum over every
// preceding byte, verified before any field is consumed -- a truncated
// or bit-flipped image always throws instead of silently restoring
// wrong state (property-tested by sim_test_snapshot_fuzz). A snapshot
// is only ever read by the build that wrote it (in-memory fork images),
// so there is no cross-version migration -- the version bump is a guard,
// not a compatibility scheme.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <deque>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/bitvector.hpp"
#include "sim/time.hpp"

namespace btsc::sim {

inline constexpr std::uint32_t kSnapshotMagic = 0x42545343u;    // "BTSC"
inline constexpr std::uint32_t kSnapshotVersion = 2;

/// FNV-1a 64-bit hash of `n` bytes; the snapshot integrity checksum.
inline std::uint64_t snapshot_checksum(const std::uint8_t* p, std::size_t n) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Builds a section tag from a 4-character literal ("ENV ").
constexpr std::uint32_t snapshot_tag(const char (&s)[5]) {
  return static_cast<std::uint32_t>(s[0]) |
         (static_cast<std::uint32_t>(s[1]) << 8) |
         (static_cast<std::uint32_t>(s[2]) << 16) |
         (static_cast<std::uint32_t>(s[3]) << 24);
}

class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Serializes state into a tagged byte stream.
class SnapshotWriter {
 public:
  SnapshotWriter() {
    buf_.reserve(256);  // header + small streams without regrowth
    u32(kSnapshotMagic);
    u32(kSnapshotVersion);
  }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { raw(&v, 2); }
  void u32(std::uint32_t v) { raw(&v, 4); }
  void u64(std::uint64_t v) { raw(&v, 8); }
  void b(bool v) { u8(v ? 1 : 0); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void time(SimTime t) { u64(t.as_ns()); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  void bytes(const std::uint8_t* p, std::size_t n) {
    u32(static_cast<std::uint32_t>(n));
    buf_.insert(buf_.end(), p, p + n);
  }
  void byte_vec(const std::vector<std::uint8_t>& v) {
    bytes(v.data(), v.size());
  }

  /// Opens a tagged section; close with end_section(). Sections nest.
  void begin_section(std::uint32_t tag) {
    u32(tag);
    open_.push_back(buf_.size());
    u32(0);  // length placeholder, patched by end_section
  }
  void end_section() {
    const std::size_t at = open_.back();
    open_.pop_back();
    const auto len = static_cast<std::uint32_t>(buf_.size() - at - 4);
    std::memcpy(buf_.data() + at, &len, 4);
  }

  /// The finished stream, sealed with the trailing integrity checksum.
  /// Every begin_section must have been closed.
  std::vector<std::uint8_t> take() {
    if (!open_.empty()) throw SnapshotError("snapshot: unclosed section");
    u64(snapshot_checksum(buf_.data(), buf_.size()));
    return std::move(buf_);
  }
  const std::vector<std::uint8_t>& buffer() const { return buf_; }

 private:
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  std::vector<std::uint8_t> buf_;
  std::vector<std::size_t> open_;
};

/// Reads a stream produced by SnapshotWriter, validating structure.
class SnapshotReader {
 public:
  explicit SnapshotReader(const std::vector<std::uint8_t>& data)
      : data_(data.data()), size_(data.size()) {
    if (u32() != kSnapshotMagic) throw SnapshotError("snapshot: bad magic");
    if (const std::uint32_t v = u32(); v != kSnapshotVersion) {
      throw SnapshotError("snapshot: version mismatch: " + std::to_string(v));
    }
    // Verify the trailing checksum before any field is consumed, then
    // hide it from the payload view: a truncated or bit-flipped stream
    // must throw here rather than restore corrupted state downstream.
    if (size_ - pos_ < 8) throw SnapshotError("snapshot: short read");
    std::uint64_t want;
    std::memcpy(&want, data_ + size_ - 8, 8);
    if (snapshot_checksum(data_, size_ - 8) != want) {
      throw SnapshotError("snapshot: checksum mismatch");
    }
    size_ -= 8;
  }

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint16_t u16() { return raw16(); }
  std::uint32_t u32() { return raw32(); }
  std::uint64_t u64() { return raw64(); }
  bool b() { return u8() != 0; }
  double f64() { return std::bit_cast<double>(u64()); }
  SimTime time() { return SimTime::ns(u64()); }
  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }
  std::vector<std::uint8_t> byte_vec() {
    const std::uint32_t n = u32();
    need(n);
    std::vector<std::uint8_t> v(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return v;
  }

  /// Enters a section, checking its tag; leave with leave_section(),
  /// which verifies the body was consumed exactly.
  void enter_section(std::uint32_t tag) {
    const std::uint32_t got = u32();
    if (got != tag) {
      throw SnapshotError("snapshot: section tag mismatch (want " +
                          tag_name(tag) + ", got " + tag_name(got) + ")");
    }
    const std::uint32_t len = u32();
    need(len);
    ends_.push_back(pos_ + len);
  }
  void leave_section() {
    const std::size_t end = ends_.back();
    ends_.pop_back();
    if (pos_ != end) {
      throw SnapshotError("snapshot: section length mismatch");
    }
  }

  bool at_end() const { return pos_ == size_; }

 private:
  static std::string tag_name(std::uint32_t tag) {
    std::string s(4, '?');
    for (int i = 0; i < 4; ++i) {
      const char c = static_cast<char>((tag >> (8 * i)) & 0xFF);
      s[static_cast<std::size_t>(i)] = (c >= 32 && c < 127) ? c : '?';
    }
    return s;
  }

  void need(std::size_t n) const {
    if (size_ - pos_ < n) throw SnapshotError("snapshot: short read");
    if (!ends_.empty() && pos_ + n > ends_.back()) {
      throw SnapshotError("snapshot: read past section end");
    }
  }
  std::uint16_t raw16() {
    need(2);
    std::uint16_t v;
    std::memcpy(&v, data_ + pos_, 2);
    pos_ += 2;
    return v;
  }
  std::uint32_t raw32() {
    need(4);
    std::uint32_t v;
    std::memcpy(&v, data_ + pos_, 4);
    pos_ += 4;
    return v;
  }
  std::uint64_t raw64() {
    need(8);
    std::uint64_t v;
    std::memcpy(&v, data_ + pos_, 8);
    pos_ += 8;
    return v;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::vector<std::size_t> ends_;
};

/// A stateful layer that can checkpoint its mutable state. Contract:
/// save_state at a settled instant, restore_state into a freshly
/// constructed twin of the same scenario (same construction path), in
/// the same relative order within the containing aggregate.
class Snapshotable {
 public:
  virtual ~Snapshotable() = default;
  virtual void save_state(SnapshotWriter& w) const = 0;
  virtual void restore_state(SnapshotReader& r) = 0;
};

/// Re-creates pending timers from their saved descriptors. A module that
/// schedules descriptor-tagged timers registers one of these with the
/// Environment under a stable name (Environment::register_rearm); on
/// restore the kernel replays every live descriptor, in the saved seq
/// order, through its owner's handler. The handler must schedule exactly
/// one timer, through the same tagged-schedule path the original call
/// used, to fire at absolute time `when`.
class RearmHandler {
 public:
  virtual ~RearmHandler() = default;
  virtual void rearm_timer(std::uint16_t kind, std::uint64_t payload,
                           SimTime when) = 0;
};

// ---- container codecs ------------------------------------------------------

template <typename F>
void save_seq(SnapshotWriter& w, std::size_t n, F&& per_item) {
  w.u32(static_cast<std::uint32_t>(n));
  for (std::size_t i = 0; i < n; ++i) per_item(i);
}

template <typename F>
void restore_seq(SnapshotReader& r, F&& per_item) {
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) per_item(i);
}

inline void save_u8_vector(SnapshotWriter& w,
                           const std::vector<std::uint8_t>& v) {
  w.byte_vec(v);
}
inline void restore_u8_vector(SnapshotReader& r,
                              std::vector<std::uint8_t>& v) {
  v = r.byte_vec();
}

inline void save_bitvector(SnapshotWriter& w, const BitVector& v) {
  w.u64(v.size());
  for (std::size_t i = 0; i < v.num_words(); ++i) w.u64(v.word(i));
}
inline void restore_bitvector(SnapshotReader& r, BitVector& v) {
  const std::uint64_t n = r.u64();
  v.clear();
  v.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t done = 0; done < n; done += 64) {
    const unsigned chunk = static_cast<unsigned>(n - done < 64 ? n - done : 64);
    v.append_uint(r.u64(), chunk);
  }
}

}  // namespace btsc::sim
