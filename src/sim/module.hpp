// Module: named container of processes and signals, mirroring sc_module.
//
// Modules exist to give processes and signals hierarchical names (visible
// in traces and diagnostics) and a uniform way to register method
// processes with static sensitivity.
#pragma once

#include <initializer_list>
#include <string>
#include <utility>

#include "sim/environment.hpp"
#include "sim/event.hpp"
#include "sim/process.hpp"
#include "sim/unique_function.hpp"

namespace btsc::sim {

class Module {
 public:
  Module(Environment& env, std::string name)
      : env_(env), name_(std::move(name)) {}
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  const std::string& name() const { return name_; }
  Environment& env() { return env_; }
  const Environment& env() const { return env_; }

 protected:
  /// Builds "<module>.<leaf>" names for child signals/events.
  std::string child_name(const std::string& leaf) const {
    return name_ + "." + leaf;
  }

  /// Registers a run-to-completion method process, statically sensitive to
  /// the given events. Additional sensitivity can be added later via
  /// Event::add_sensitive().
  Process& method(const std::string& leaf, UniqueFunction fn,
                  std::initializer_list<Event*> sensitivity = {}) {
    Process& p = env_.register_process(child_name(leaf), std::move(fn));
    for (Event* ev : sensitivity) ev->add_sensitive(p);
    return p;
  }

 private:
  Environment& env_;
  std::string name_;
};

}  // namespace btsc::sim
