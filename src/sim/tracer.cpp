#include "sim/tracer.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "sim/environment.hpp"

namespace btsc::sim {

VcdTracer::VcdTracer(Environment& env, const std::string& path)
    : env_(env), out_(path) {
  if (!out_) throw std::runtime_error("VcdTracer: cannot open " + path);
}

VcdTracer::~VcdTracer() { close(); }

void VcdTracer::close() {
  if (out_.is_open()) {
    flush_before(~0ull);
    if (!header_written_) write_header();
    out_.flush();
    out_.close();
  }
}

std::string VcdTracer::vcd_id(TraceId id) {
  // Printable-ASCII base-94 identifier, as customary in VCD files.
  std::string s;
  do {
    s.push_back(static_cast<char>('!' + id % 94));
    id /= 94;
  } while (id != 0);
  return s;
}

TraceId VcdTracer::declare(const std::string& name, unsigned width,
                           const std::string& initial) {
  if (started_) {
    throw std::logic_error(
        "VcdTracer: declare() after tracing started (construct all modules "
        "before running)");
  }
  vars_.push_back({name, width, initial});
  return static_cast<TraceId>(vars_.size() - 1);
}

void VcdTracer::write_header() {
  out_ << "$date btsc simulation $end\n"
       << "$version btsc bluetooth system-level model $end\n"
       << "$timescale 1ns $end\n"
       << "$scope module top $end\n";
  for (TraceId i = 0; i < vars_.size(); ++i) {
    // Flatten hierarchical names: GTKWave accepts '.' inside identifiers.
    out_ << "$var wire " << vars_[i].width << ' ' << vcd_id(i) << ' '
         << vars_[i].name << " $end\n";
  }
  out_ << "$upscope $end\n$enddefinitions $end\n";
  // Time-zero values for all signals that provided one.
  out_ << "$dumpvars\n";
  for (TraceId i = 0; i < vars_.size(); ++i) {
    if (vars_[i].last.empty()) continue;
    if (vars_[i].width == 1) {
      out_ << vars_[i].last << vcd_id(i) << '\n';
    } else {
      out_ << 'b' << vars_[i].last << ' ' << vcd_id(i) << '\n';
    }
  }
  out_ << "$end\n";
  header_written_ = true;
}

void VcdTracer::flush_before(std::uint64_t limit_ns) {
  if (pending_.empty()) return;
  // Canonical emission order: (time, id), insertion-stable within a
  // pair. Both the per-bit path and the backfilled burst path produce
  // the same (time, id, value) changes, so sorting makes the two files
  // byte-identical regardless of which order the changes arrived in.
  // The explicit seq tie-break makes the order total so plain sort
  // suffices; stable_sort's temporary buffer pairs operator new with
  // free under some allocator interpositions, which ASan rejects.
  std::sort(pending_.begin(), pending_.end(),
            [](const Pending& a, const Pending& b) {
              if (a.time_ns != b.time_ns) return a.time_ns < b.time_ns;
              if (a.id != b.id) return a.id < b.id;
              return a.seq < b.seq;
            });
  std::size_t n = 0;
  while (n < pending_.size() && pending_[n].time_ns < limit_ns) ++n;
  if (n == 0) return;
  if (!header_written_) write_header();
  for (std::size_t i = 0; i < n; ++i) {
    const Pending& p = pending_[i];
    Var& var = vars_.at(p.id);
    // Duplicate suppression in canonical order, so it matches the
    // per-bit reference no matter how the changes were submitted.
    if (var.last == p.value) continue;
    var.last = p.value;
    if (p.time_ns != last_ts_) {
      out_ << '#' << p.time_ns << '\n';
      last_ts_ = p.time_ns;
    }
    if (var.width == 1) {
      out_ << p.value << vcd_id(p.id) << '\n';
    } else {
      out_ << 'b' << p.value << ' ' << vcd_id(p.id) << '\n';
    }
  }
  pending_.erase(pending_.begin(),
                 pending_.begin() + static_cast<std::ptrdiff_t>(n));
}

void VcdTracer::change(TraceId id, const std::string& value) {
  assert(id < vars_.size() && "VcdTracer: change on undeclared id");
  started_ = true;
  pending_.push_back({env_.now().as_ns(), id, value, pending_seq_++});
  // Entries strictly before the current instant are final (no hold is
  // open, so no backfill can still land among them); stream them out.
  if (holds_ == 0) flush_before(env_.now().as_ns());
}

void VcdTracer::change_at(TraceId id, const std::string& value,
                          std::uint64_t time_ns) {
  assert(id < vars_.size() && "VcdTracer: change_at on undeclared id");
  assert(time_ns <= env_.now().as_ns() && "VcdTracer: backfill in the future");
  started_ = true;
  pending_.push_back({time_ns, id, value, pending_seq_++});
}

void VcdTracer::begin_hold() { ++holds_; }

void VcdTracer::end_hold() {
  assert(holds_ > 0 && "VcdTracer: unbalanced end_hold");
  if (--holds_ == 0) flush_before(env_.now().as_ns());
}

TraceId RecordingTracer::declare(const std::string& name, unsigned,
                                 const std::string& initial) {
  names_.push_back(name);
  const auto id = static_cast<TraceId>(names_.size() - 1);
  if (!initial.empty()) records_.push_back({env_.now().as_ns(), name, initial});
  return id;
}

void RecordingTracer::change(TraceId id, const std::string& value) {
  records_.push_back({env_.now().as_ns(), names_.at(id), value});
}

}  // namespace btsc::sim
