#include "sim/tracer.hpp"

#include <stdexcept>

#include "sim/environment.hpp"

namespace btsc::sim {

VcdTracer::VcdTracer(Environment& env, const std::string& path)
    : env_(env), out_(path) {
  if (!out_) throw std::runtime_error("VcdTracer: cannot open " + path);
}

VcdTracer::~VcdTracer() { close(); }

void VcdTracer::close() {
  if (out_.is_open()) {
    if (!header_written_) write_header();
    out_.flush();
    out_.close();
  }
}

std::string VcdTracer::vcd_id(TraceId id) {
  // Printable-ASCII base-94 identifier, as customary in VCD files.
  std::string s;
  do {
    s.push_back(static_cast<char>('!' + id % 94));
    id /= 94;
  } while (id != 0);
  return s;
}

TraceId VcdTracer::declare(const std::string& name, unsigned width,
                           const std::string& initial) {
  if (header_written_) {
    throw std::logic_error(
        "VcdTracer: declare() after tracing started (construct all modules "
        "before running)");
  }
  vars_.push_back({name, width, initial});
  return static_cast<TraceId>(vars_.size() - 1);
}

void VcdTracer::write_header() {
  out_ << "$date btsc simulation $end\n"
       << "$version btsc bluetooth system-level model $end\n"
       << "$timescale 1ns $end\n"
       << "$scope module top $end\n";
  for (TraceId i = 0; i < vars_.size(); ++i) {
    // Flatten hierarchical names: GTKWave accepts '.' inside identifiers.
    out_ << "$var wire " << vars_[i].width << ' ' << vcd_id(i) << ' '
         << vars_[i].name << " $end\n";
  }
  out_ << "$upscope $end\n$enddefinitions $end\n";
  // Time-zero values for all signals that provided one.
  out_ << "$dumpvars\n";
  for (TraceId i = 0; i < vars_.size(); ++i) {
    if (vars_[i].last.empty()) continue;
    if (vars_[i].width == 1) {
      out_ << vars_[i].last << vcd_id(i) << '\n';
    } else {
      out_ << 'b' << vars_[i].last << ' ' << vcd_id(i) << '\n';
    }
  }
  out_ << "$end\n";
  header_written_ = true;
}

void VcdTracer::emit_timestamp() {
  const std::uint64_t ts = env_.now().as_ns();
  if (ts != last_ts_) {
    out_ << '#' << ts << '\n';
    last_ts_ = ts;
  }
}

void VcdTracer::change(TraceId id, const std::string& value) {
  if (!header_written_) write_header();
  Var& var = vars_.at(id);
  if (var.last == value) return;
  var.last = value;
  emit_timestamp();
  if (var.width == 1) {
    out_ << value << vcd_id(id) << '\n';
  } else {
    out_ << 'b' << value << ' ' << vcd_id(id) << '\n';
  }
}

TraceId RecordingTracer::declare(const std::string& name, unsigned,
                                 const std::string& initial) {
  names_.push_back(name);
  const auto id = static_cast<TraceId>(names_.size() - 1);
  if (!initial.empty()) records_.push_back({env_.now().as_ns(), name, initial});
  return id;
}

void RecordingTracer::change(TraceId id, const std::string& value) {
  records_.push_back({env_.now().as_ns(), names_.at(id), value});
}

}  // namespace btsc::sim
