// Portable cross-shard event records.
//
// When a scenario runs as several Environment shards under a
// sim::ShardGroup (sim/shard.hpp), state changes that cross a shard
// boundary are not delivered as direct callbacks: the source side
// publishes a CrossShardEvent -- a plain-data record with no pointers
// into the source shard -- and the destination side receives it at the
// next rendezvous barrier and re-materialises it as a local timed
// callback. Keeping the record portable is what makes the exchange
// order a pure function of the configuration: the group can sort the
// merged inbox by (when, src_shard, seq) before delivery, and a
// snapshot can serialize the re-materialised timer like any other
// tagged timer.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace btsc::sim {

/// One boundary-crossing event. The (src_shard, seq) pair identifies
/// the publication uniquely; `when` is the absolute instant at which
/// the destination shard must apply it (source time + lookahead, so it
/// is always in the destination's future at exchange time). The
/// remaining fields are the payload: `kind` is a discriminator owned
/// by the endpoint, and port/freq/value carry a PHY drive change --
/// the only cross-shard traffic the RF layer produces today.
struct CrossShardEvent {
  std::uint32_t domain = 0;     ///< coupling domain (one replicated medium)
  std::uint32_t src_shard = 0;  ///< publishing shard id
  std::uint64_t seq = 0;        ///< per-shard publication counter
  SimTime when;                 ///< absolute application instant
  std::uint16_t kind = 0;       ///< endpoint-owned payload discriminator
  std::uint32_t port = 0;       ///< source-side port id of the transmitter
  std::int16_t freq = -1;       ///< carrier (-1 = unmodulated / release)
  std::uint8_t value = 0;       ///< encoded phy::Logic4 level
};

/// Destination-side receiver of cross-shard events. An endpoint is
/// bound to (domain, shard) in a ShardGroup; at each rendezvous the
/// group hands it the merged, ordered events addressed to its shard.
/// The endpoint must not mutate foreign-shard state: the contract is
/// to schedule a *local* tagged timer at ev.when that applies the
/// change (tagged so sharded scenarios stay snapshotable).
class CrossShardEndpoint {
 public:
  virtual void deliver_cross_shard(const CrossShardEvent& ev) = 0;

 protected:
  ~CrossShardEndpoint() = default;
};

}  // namespace btsc::sim
