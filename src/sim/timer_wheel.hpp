// Slot-grid timing-wheel timed queue: O(1) ring buckets for the
// Bluetooth native grid, with the slot/generation 4-ary heap as the
// overflow for off-grid and far-horizon timers.
//
// Motivation
// ----------
// The baseband state machines schedule overwhelmingly on the hardware's
// own grid: the 1 us bit period (with its +250 ns sampling offset), the
// 312.5 us CLKN half-slot and the 625 us slot. For those timers a
// comparison-based priority queue pays O(log n) sifts per schedule and
// cancel where a ring bucket indexed by (when / tick) costs O(1). The
// wheel exploits exactly that: three levels of **exact-instant**
// buckets --
//
//   level 0: 250 ns tick x 4096 buckets  -> 1.024 ms horizon
//            (bit timers, RX sampling, carrier-sense windows, half-slot
//            ticks, same/next-slot deferred actions)
//   level 1: 312.5 us tick x 1024 buckets -> 320 ms horizon
//            (multi-slot deferrals: T_poll, sniff/hold wakeups,
//            response-dialogue timeouts)
//   level 2: 625 us tick x 4096 buckets   -> 2.56 s horizon
//            (superframe-scale work: inquiry/page timeouts, beacons,
//            long backoffs that land on the even-slot grid)
//
// A timer enters the finest level whose tick divides its absolute
// `when` and whose horizon covers it; everything else -- off-grid
// instants, or timers farther out than 2.56 s -- overflows into the
// 4-ary min-heap that was previously the whole queue. Because each
// level only ever holds ticks inside the rotating window
// [floor(now/tick), floor(now/tick) + buckets), a bucket never mixes
// two instants: every entry in bucket (q % buckets) has exactly
// when == q * tick. Occupancy is tracked in a two-level bitmap (64-bit
// summary over 64-bit words), so "next non-empty bucket" is a couple of
// countr_zero scans, not a ring walk.
//
// Node storage is split structure-of-arrays: the scan-hot ordering and
// linkage fields (generation, container linkage, seq, when, owner,
// descriptor kind) live in a dense 48-byte `Hot` array that pop_due()
// bucket scans and cancel_owned() sweeps touch, while the payload --
// the type-erased UniqueFunction callback (48-byte SBO), the event
// pointer and the descriptor payload word -- lives in a parallel
// `Payload` array touched only when a timer is created, fired or
// released. Same-instant bucket scans and owner sweeps therefore read
// 48-byte lines instead of dragging callback storage through the cache.
//
// Ordering
// --------
// The dispatch contract is the exact (when, seq) total order of the
// heap-only kernel -- seq is the global schedule counter, so same-time
// entries fire in FIFO order. The wheel preserves it *by construction
// of the drain*, not by keeping buckets sorted: pop_due(t) selects the
// minimum-seq entry due at t across all four containers (three bucket
// levels plus the heap -- the same instant can legitimately live in
// several: a far timer lands in the heap, then a later-scheduled timer
// for the same instant lands in a bucket) by scanning the due buckets
// (same-instant batches are tiny) and comparing against the heap top.
// Entries scheduled *during* the dispatch of instant t carry seqs
// larger than every live one, so popping until the instant is dry
// extends the same total order. See docs/ARCHITECTURE.md for the
// ordering proof sketch.
//
// Cancellation keeps the true-removal semantics of the heap kernel:
// bucket entries unlink in O(1) (intrusive doubly-linked lists through
// the slab), heap entries remove in O(log n), and slot generations make
// stale TimerIds inert. Entries stay in their container until popped,
// so a callback canceling a same-instant sibling removes it before its
// turn, exactly as before.
//
// Checkpointing: timers scheduled through the tagged path carry a
// (kind, payload) descriptor; for_each_live() exposes every live
// entry's (owner, kind, payload, when, seq) so Environment::save_state
// can serialize the queue as re-armable descriptors, and clear() +
// set_next_seq() let restore_state rebuild it replaying the exact seq
// allocation (see docs/ARCHITECTURE.md, "Checkpoint/fork").
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

#include "sim/time.hpp"
#include "sim/unique_function.hpp"

namespace btsc::sim {

class Event;

/// Handle for a scheduled one-shot callback, usable to cancel it.
/// Opaque encoding of (slab slot, generation); never 0 for a live timer.
using TimerId = std::uint64_t;
inline constexpr TimerId kInvalidTimer = 0;

/// The timed queue: slot-grid timing wheel + 4-ary overflow heap over a
/// generation-checked slab of timer nodes. Owned by Environment; all
/// `now` parameters are the environment's current time (live entries
/// always satisfy when >= now).
class TimerWheel {
 public:
  TimerWheel();
  ~TimerWheel();

  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  /// Diagnostics switch: when disabled, every future schedule goes to
  /// the overflow heap (the pre-wheel kernel, bit for bit). Used by the
  /// wheel/heap equivalence tests and benches; entries already in
  /// buckets stay there. Invalidates the due-instant cache: its level-0
  /// flag depends on this switch.
  void set_wheel_enabled(bool enabled) {
    wheel_enabled_ = enabled;
    due_.tns = ~std::uint64_t{0};
  }

  // The schedule/cancel/pop hot path is defined inline below the class:
  // the kernel dispatch loop must flatten into its callers (the
  // pre-wheel kernel lived in one TU and owed real throughput to that).

  /// Schedules a one-shot callback at absolute time `when`. `owner` is
  /// an optional tag for cancel_owned(); it is never dereferenced. The
  /// callable constructs directly into the slab node (templated so no
  /// UniqueFunction temporary is moved through the call). `kind` and
  /// `payload` form the timer's re-arm descriptor: kind 0 marks an
  /// opaque (non-checkpointable) timer, any other kind promises the
  /// owner's RearmHandler can reconstruct the callback from
  /// (kind, payload) alone.
  template <typename F>
  TimerId schedule_callback(SimTime now, SimTime when, F&& fn,
                            const void* owner, std::uint16_t kind = 0,
                            std::uint64_t payload = 0) {
    const std::uint32_t slot = acquire_slot();
    Hot& n = hot_[slot];
    n.owner = owner;
    n.kind = kind;
    Payload& p = payload_[slot];
    p.event = nullptr;
    p.payload = payload;
    p.fn.emplace(std::forward<F>(fn));
    const TimerId id = make_id(slot, n.gen);
    place(slot, now, when);
    return id;
  }

  /// Schedules a timed notification of `ev` (no TimerId is minted;
  /// event notifications are not individually cancelable).
  inline void schedule_event(SimTime now, SimTime when, Event& ev);

  /// Removes the entry in O(1) (bucket) / O(log n) (heap). Returns
  /// false -- and counts a cancel-after-fire -- for stale handles.
  inline bool cancel(TimerId id);

  /// Removes every live timer carrying this owner tag (O(slab) scan).
  void cancel_owned(const void* owner);

  /// True while the timer is scheduled and has neither fired nor been
  /// canceled (claimed-but-undispatched entries count as live).
  bool pending(TimerId id) const { return find_live(id) != nullptr; }

  bool empty() const { return live_ == 0; }
  std::uint64_t live() const { return live_; }

  /// Earliest pending instant across wheel levels and heap. Also primes
  /// the due-instant cache pop_due() draws on, so the per-pop grid
  /// arithmetic is paid once per instant. Precondition: !empty().
  inline SimTime next_time(SimTime now);

  /// Removes the minimum-seq entry due exactly at `t` and moves its
  /// payload out (exactly one of `ev`/`fn` is set), releasing its slot
  /// before the caller dispatches -- the callback may reschedule into
  /// the freed slot and its id goes stale while it runs. Returns false
  /// when nothing (remains) due at `t`.
  inline bool pop_due(SimTime t, Event*& ev, UniqueFunction& fn);

  // ---- checkpoint support ----

  /// The seq the next schedule will be stamped with. Saved in
  /// checkpoints; set_next_seq() replays the allocation on restore
  /// (set it to a descriptor's saved seq immediately before re-arming
  /// it, and to the saved counter once every descriptor is back).
  std::uint64_t next_seq() const { return next_seq_; }
  void set_next_seq(std::uint64_t seq) { next_seq_ = seq; }

  /// Visits every live entry as
  ///   f(owner, kind, payload, when, seq, is_event)
  /// in slab order (callers sort by seq for a canonical ordering).
  template <typename F>
  void for_each_live(F&& f) const {
    for (std::uint32_t s = 0; s < hot_.size(); ++s) {
      const Hot& n = hot_[s];
      if (n.where == kWhereFree) continue;
      f(n.owner, n.kind, payload_[s].payload, n.when, n.seq,
        payload_[s].event != nullptr);
    }
  }

  /// Drops every entry and recycles the slab (outstanding TimerIds go
  /// stale). Does NOT touch next_seq_ or the lifetime counters -- the
  /// restore path overwrites the former and folds the latter into the
  /// usual scheduler stats.
  void clear();

  /// Lifecycle counters (mirrored into Environment::SchedulerStats).
  struct Stats {
    std::uint64_t scheduled = 0;
    std::uint64_t fired = 0;
    std::uint64_t canceled = 0;
    std::uint64_t cancels_after_fire = 0;
    std::uint64_t wheel_hits = 0;
    std::uint64_t heap_overflow = 0;
    std::uint64_t live = 0;
    std::uint64_t peak_live = 0;
  };
  Stats stats() const;

 private:
  // ---- geometry (all powers of two so idx = q & (n-1)) ----
  static constexpr int kLevels = 3;
  static constexpr std::uint64_t kTickNs[kLevels] = {250, 312'500, 625'000};
  static constexpr std::uint32_t kBuckets[kLevels] = {4096, 1024, 4096};

  static constexpr std::uint32_t kNil = ~std::uint32_t{0};
  static constexpr std::size_t kHeapArity = 4;

  enum Where : std::uint8_t {
    kWhereFree = 0,
    kWhereBucket,  // in wheel level `level`, bucket `pos`
    kWhereHeap     // in the overflow heap at index `pos`
  };

  /// Scan-hot half of a slab entry: everything the bucket scans, heap
  /// sifts and owner sweeps read. 48 bytes, no callback storage. Nodes
  /// are recycled through a free list (threaded through `next`); `gen`
  /// distinguishes reuses so stale TimerIds cannot alias a new timer.
  struct Hot {
    std::uint32_t gen = 0;
    std::uint8_t where = kWhereFree;
    std::uint8_t level = 0;
    std::uint16_t kind = 0;  // re-arm descriptor kind (0 = opaque)
    std::uint32_t pos = 0;
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
    std::uint64_t seq = 0;
    SimTime when;
    const void* owner = nullptr;
  };

  /// Cold half, parallel to `Hot`: the dispatch payload (exactly one of
  /// event/fn is set) and the re-arm descriptor payload word. Touched
  /// only at schedule, fire and release.
  struct Payload {
    Event* event = nullptr;
    UniqueFunction fn;
    std::uint64_t payload = 0;
  };

  /// Heap entries carry the ordering key, so sift comparisons stay
  /// inside the heap array instead of chasing slab nodes.
  struct HeapEntry {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  struct Level {
    std::vector<std::uint32_t> heads;  // bucket -> first slot (or kNil)
    std::vector<std::uint64_t> words;  // occupancy bitmap, bit per bucket
    std::uint64_t summary = 0;         // bit per word
    std::uint64_t live = 0;
  };

  /// Grid arithmetic for one instant, computed once (by the first
  /// pop_due of the instant) and reused by every same-instant pop: which
  /// levels can hold entries due at the instant, and the bucket index
  /// there. A level is flagged when its tick divides the instant AND it
  /// can matter: levels 1/2 only while they hold entries (an instant's
  /// *mid-drain* schedules always land in level 0 -- ring distance 0 --
  /// or the heap, so an empty coarse level can never gain entries due at
  /// the instant being drained), level 0 whenever the wheel is enabled
  /// or non-empty. The flags never need invalidation within an instant.
  struct DueContext {
    std::uint64_t tns = ~std::uint64_t{0};  // instant this was built for
    std::uint32_t idx[kLevels] = {0, 0, 0};
    std::uint8_t eligible = 0;  // bit l: scan levels_[l].heads[idx[l]]
  };

  inline void prime_due_context(std::uint64_t tns);

  static bool entry_before(const HeapEntry& a, const HeapEntry& b) {
    return a.when != b.when ? a.when < b.when : a.seq < b.seq;
  }

  /// TimerId layout: generation in the high 32 bits, slot+1 in the low
  /// 32 (the +1 keeps every live id distinct from kInvalidTimer).
  static constexpr TimerId make_id(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<TimerId>(gen) << 32) |
           (static_cast<TimerId>(slot) + 1);
  }

  /// Refreshes cached_cur_ (floor(now/tick) per level) for this `now`.
  /// Callbacks schedule in bursts at one instant, so the quotients are
  /// computed once per distinct now, not once per schedule; the coarser
  /// quotients derive from the finest by nested integer division
  /// (floor(floor(x/250)/1250) == floor(x/312500)).
  inline void refresh_now_cache(std::uint64_t now_ns) {
    if (now_ns == cached_now_ns_) return;
    cached_now_ns_ = now_ns;
    cached_cur_[0] = now_ns / kTickNs[0];
    cached_cur_[1] = cached_cur_[0] / (kTickNs[1] / kTickNs[0]);
    cached_cur_[2] = cached_cur_[1] / (kTickNs[2] / kTickNs[1]);
  }

  inline std::uint32_t acquire_slot();
  inline void release_slot(std::uint32_t slot);
  inline const Hot* find_live(TimerId id) const;
  inline void place(std::uint32_t slot, SimTime now, SimTime when);
  inline void remove_from_container(Hot& n);

  // wheel plumbing
  inline void bucket_insert(int level, std::uint64_t q, std::uint32_t slot);
  inline void bucket_unlink(Hot& n);
  static inline void mark_bucket(Level& lv, std::uint32_t idx);
  static inline void clear_bucket_bit(Level& lv, std::uint32_t idx);
  /// Next occupied bucket position at ring distance >= 0 from `from`,
  /// or kNil when the level is empty.
  inline std::uint32_t next_occupied(int level, std::uint32_t from) const;

  // overflow heap plumbing (identical to the pre-wheel kernel)
  void heap_place(std::size_t pos, const HeapEntry& e);
  void sift_up(std::size_t pos);
  void sift_down(std::size_t pos);
  void heap_push(SimTime when, std::uint64_t seq, std::uint32_t slot);
  void heap_remove_at(std::size_t pos);

  std::vector<Hot> hot_;          // scan-hot halves, indexed by slot
  std::vector<Payload> payload_;  // cold halves, parallel to hot_
  std::uint32_t free_head_ = kNil;
  Level levels_[kLevels];
  std::vector<HeapEntry> heap_;
  std::vector<std::uint32_t> cancel_scratch_;
  DueContext due_;
  std::uint64_t cached_now_ns_ = ~std::uint64_t{0};
  std::uint64_t cached_cur_[kLevels] = {0, 0, 0};
  bool wheel_enabled_ = true;

  std::uint64_t next_seq_ = 1;
  std::uint64_t live_ = 0;
  std::uint64_t fired_ = 0;
  std::uint64_t canceled_ = 0;
  std::uint64_t cancels_after_fire_ = 0;
  std::uint64_t wheel_hits_ = 0;
  std::uint64_t heap_overflow_ = 0;
  std::uint64_t peak_live_ = 0;
};

// ---------------------------------------------------------------------------
// Inline hot path. Everything the per-event cycle touches -- schedule,
// cancel, next_time, pop_due -- lives here so it flattens into the
// Environment dispatch loop and the model call sites.
// ---------------------------------------------------------------------------

inline std::uint32_t TimerWheel::acquire_slot() {
  const std::uint32_t slot = free_head_;
  if (slot != kNil) {
    free_head_ = hot_[slot].next;  // intrusive free list
    return slot;
  }
  hot_.emplace_back();
  payload_.emplace_back();
  return static_cast<std::uint32_t>(hot_.size() - 1);
}

inline void TimerWheel::release_slot(std::uint32_t slot) {
  Hot& n = hot_[slot];
  ++n.gen;  // retire every outstanding TimerId for this slot
  n.where = kWhereFree;
  Payload& p = payload_[slot];
  p.fn.reset();  // destroy the captured state now, not at slot reuse
  p.event = nullptr;
  // The free list threads through `next`; owner/prev/kind/payload are
  // garbage while free -- both schedule paths (and bucket_insert)
  // overwrite every field they rely on.
  n.next = free_head_;
  free_head_ = slot;
  --live_;
}

inline const TimerWheel::Hot* TimerWheel::find_live(TimerId id) const {
  const std::uint32_t lo = static_cast<std::uint32_t>(id);
  if (lo == 0) return nullptr;
  const std::uint32_t slot = lo - 1;
  if (slot >= hot_.size()) return nullptr;
  const Hot& n = hot_[slot];
  if (n.gen != static_cast<std::uint32_t>(id >> 32)) return nullptr;
  assert(n.where != kWhereFree);  // live generation => somewhere
  assert(payload_[slot].event == nullptr);  // ids only minted for callbacks
  return &n;
}

inline void TimerWheel::mark_bucket(Level& lv, std::uint32_t idx) {
  lv.words[idx >> 6] |= std::uint64_t{1} << (idx & 63);
  lv.summary |= std::uint64_t{1} << (idx >> 6);
}

inline void TimerWheel::clear_bucket_bit(Level& lv, std::uint32_t idx) {
  lv.words[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
  if (lv.words[idx >> 6] == 0) {
    lv.summary &= ~(std::uint64_t{1} << (idx >> 6));
  }
}

inline void TimerWheel::bucket_insert(int level, std::uint64_t q,
                                      std::uint32_t slot) {
  Level& lv = levels_[level];
  const std::uint32_t idx =
      static_cast<std::uint32_t>(q) & (kBuckets[level] - 1);
  Hot& n = hot_[slot];
  n.where = kWhereBucket;
  n.level = static_cast<std::uint8_t>(level);
  n.pos = idx;
  n.prev = kNil;
  n.next = lv.heads[idx];
  if (lv.heads[idx] != kNil) {
    hot_[lv.heads[idx]].prev = slot;
  } else {
    mark_bucket(lv, idx);
  }
  lv.heads[idx] = slot;
  ++lv.live;
}

inline void TimerWheel::bucket_unlink(Hot& n) {
  Level& lv = levels_[n.level];
  if (n.prev != kNil) {
    hot_[n.prev].next = n.next;
  } else {
    lv.heads[n.pos] = n.next;
    if (n.next == kNil) clear_bucket_bit(lv, n.pos);
  }
  if (n.next != kNil) hot_[n.next].prev = n.prev;
  --lv.live;
}

inline std::uint32_t TimerWheel::next_occupied(int level,
                                               std::uint32_t from) const {
  const Level& lv = levels_[level];
  const std::uint32_t nwords = kBuckets[level] >> 6;
  const std::uint32_t wi = from >> 6;
  const std::uint32_t bit = from & 63;
  // Ring order from `from`: the rest of its word, the words after it,
  // the words before it (wrapped lap), then its word's low bits.
  std::uint64_t w = lv.words[wi] & (~std::uint64_t{0} << bit);
  if (w != 0) {
    return (wi << 6) + static_cast<std::uint32_t>(std::countr_zero(w));
  }
  const std::uint64_t rest = lv.summary & ~(std::uint64_t{1} << wi);
  const std::uint64_t hi =
      wi + 1 >= nwords ? 0 : rest & (~std::uint64_t{0} << (wi + 1));
  const std::uint64_t lo = rest & ((std::uint64_t{1} << wi) - 1);
  for (const std::uint64_t region : {hi, lo}) {
    if (region != 0) {
      const auto i = static_cast<std::uint32_t>(std::countr_zero(region));
      return (i << 6) +
             static_cast<std::uint32_t>(std::countr_zero(lv.words[i]));
    }
  }
  w = bit == 0 ? 0 : lv.words[wi] & ((std::uint64_t{1} << bit) - 1);
  if (w != 0) {
    return (wi << 6) + static_cast<std::uint32_t>(std::countr_zero(w));
  }
  return kNil;
}

inline void TimerWheel::place(std::uint32_t slot, SimTime now, SimTime when) {
  Hot& n = hot_[slot];
  n.seq = next_seq_++;
  n.when = when;
  ++live_;
  if (live_ > peak_live_) peak_live_ = live_;
  const std::uint64_t w = when.as_ns();
  // Finest level whose tick divides `when` and whose horizon covers it.
  // Divisibility nests (250 | 312500 | 625000), so one failed modulus
  // rules out every coarser level too, and the coarser quotients derive
  // from q0 by small-constant division (w/312500 == (w/250)/1250 --
  // exact here because the divisibility check precedes the use).
  if (wheel_enabled_ && w % kTickNs[0] == 0) {
    refresh_now_cache(now.as_ns());
    const std::uint64_t q0 = w / kTickNs[0];
    if (q0 - cached_cur_[0] < kBuckets[0]) {
      ++wheel_hits_;
      bucket_insert(0, q0, slot);
      return;
    }
    if (q0 % (kTickNs[1] / kTickNs[0]) == 0) {
      const std::uint64_t q1 = q0 / (kTickNs[1] / kTickNs[0]);
      if (q1 - cached_cur_[1] < kBuckets[1]) {
        ++wheel_hits_;
        bucket_insert(1, q1, slot);
        return;
      }
      if (q1 % (kTickNs[2] / kTickNs[1]) == 0) {
        const std::uint64_t q2 = q1 / (kTickNs[2] / kTickNs[1]);
        if (q2 - cached_cur_[2] < kBuckets[2]) {
          ++wheel_hits_;
          bucket_insert(2, q2, slot);
          return;
        }
      }
    }
  }
  ++heap_overflow_;
  heap_push(when, n.seq, slot);
}

inline void TimerWheel::schedule_event(SimTime now, SimTime when, Event& ev) {
  const std::uint32_t slot = acquire_slot();
  hot_[slot].owner = nullptr;
  hot_[slot].kind = 0;
  payload_[slot].event = &ev;
  payload_[slot].payload = 0;
  place(slot, now, when);
}

inline void TimerWheel::remove_from_container(Hot& n) {
  switch (n.where) {
    case kWhereBucket:
      bucket_unlink(n);
      break;
    case kWhereHeap:
      heap_remove_at(n.pos);
      break;
    case kWhereFree:
      assert(false && "removing a free node");
      break;
  }
}

inline bool TimerWheel::cancel(TimerId id) {
  if (id == kInvalidTimer) return false;
  const Hot* found = find_live(id);
  if (found == nullptr) {
    ++cancels_after_fire_;
    return false;
  }
  const auto slot = static_cast<std::uint32_t>(id) - 1;
  remove_from_container(hot_[slot]);
  release_slot(slot);
  ++canceled_;
  return true;
}

inline void TimerWheel::prime_due_context(std::uint64_t tns) {
  due_.tns = tns;
  due_.eligible = 0;
  // Divisibility nests (250 | 312500 | 625000): one failed modulus rules
  // out every coarser level too. Dead levels are skipped without paying
  // the modulus (see the DueContext invariant for why that is sound for
  // levels 1/2 but not for level 0). Levels 1/2 must be flagged on
  // their own occupancy regardless of the level-0 flag: with the wheel
  // disabled and level 0 empty, entries already resident in coarse
  // buckets still have to dispatch.
  if (tns % kTickNs[0] != 0) return;
  if (wheel_enabled_ || levels_[0].live != 0) {
    due_.idx[0] =
        static_cast<std::uint32_t>(tns / kTickNs[0]) & (kBuckets[0] - 1);
    due_.eligible = 1;
  }
  if ((levels_[1].live != 0 || levels_[2].live != 0) &&
      tns % kTickNs[1] == 0) {
    if (levels_[1].live != 0) {
      due_.idx[1] =
          static_cast<std::uint32_t>(tns / kTickNs[1]) & (kBuckets[1] - 1);
      due_.eligible |= 2;
    }
    if (levels_[2].live != 0 && tns % kTickNs[2] == 0) {
      due_.idx[2] =
          static_cast<std::uint32_t>(tns / kTickNs[2]) & (kBuckets[2] - 1);
      due_.eligible |= 4;
    }
  }
}

inline SimTime TimerWheel::next_time(SimTime now) {
  assert(live_ != 0);
  SimTime best = SimTime::max();
  bool found = false;
  if (!heap_.empty()) {
    best = heap_[0].when;
    found = true;
  }
  refresh_now_cache(now.as_ns());
  std::uint64_t best_q0 = 0;   // winning level-0 tick, when best_from_l0
  std::uint32_t best_p0 = 0;   // its bucket position
  bool best_from_l0 = false;
  for (int l = 0; l < kLevels; ++l) {
    const Level& lv = levels_[l];
    if (lv.live == 0) continue;
    const std::uint64_t cur = cached_cur_[l];
    const std::uint32_t mask = kBuckets[l] - 1;
    const std::uint32_t p0 = static_cast<std::uint32_t>(cur) & mask;
    const std::uint32_t p = next_occupied(l, p0);
    assert(p != kNil);
    const std::uint32_t d = (p - p0) & mask;  // ring distance, 0..n-1
    const SimTime t = SimTime::ns((cur + d) * kTickNs[l]);
    assert(t >= now);
    if (!found || t < best) {
      best = t;
      found = true;
      best_from_l0 = l == 0;
      if (best_from_l0) {
        best_q0 = cur + d;
        best_p0 = p;
      }
    } else if (l == 0 && t == best) {
      // Heap holds the same instant; the level-0 context still applies.
      best_q0 = cur + d;
      best_p0 = p;
      best_from_l0 = true;
    }
  }
  assert(found && "live entries exist but no container holds one");
  // Prepay the winner's grid arithmetic for the pops. When the instant
  // came from level 0 its tick and bucket are already in hand, and the
  // coarser-level flags derive from q0 without touching the raw time
  // (t % 312500 == 0 iff (t/250) % 1250 == 0); dead coarse levels skip
  // even that (they cannot gain entries due at this instant mid-drain).
  const std::uint64_t tns = best.as_ns();
  if (best_from_l0) {
    due_.tns = tns;
    due_.idx[0] = best_p0;
    due_.eligible = 1;
    if ((levels_[1].live != 0 || levels_[2].live != 0) &&
        best_q0 % (kTickNs[1] / kTickNs[0]) == 0) {
      if (levels_[1].live != 0) {
        due_.idx[1] =
            static_cast<std::uint32_t>(tns / kTickNs[1]) & (kBuckets[1] - 1);
        due_.eligible |= 2;
      }
      if (levels_[2].live != 0 && tns % kTickNs[2] == 0) {
        due_.idx[2] =
            static_cast<std::uint32_t>(tns / kTickNs[2]) & (kBuckets[2] - 1);
        due_.eligible |= 4;
      }
    }
  } else {
    prime_due_context(tns);
  }
  return best;
}

inline bool TimerWheel::pop_due(SimTime t, Event*& ev, UniqueFunction& fn) {
  const std::uint64_t tns = t.as_ns();
  if (due_.tns != tns) prime_due_context(tns);
  std::uint32_t best = kNil;
  std::uint64_t best_seq = ~std::uint64_t{0};
  for (int l = 0; l < kLevels; ++l) {
    if (!(due_.eligible & (1u << l))) continue;
    const Level& lv = levels_[l];
    if (lv.live == 0) continue;
    std::uint32_t s = lv.heads[due_.idx[l]];
    // The bucket holds exactly one instant; if it is not `t`, the
    // bucket belongs to an in-window tick and `t` is a beyond-horizon
    // heap instant that merely aliases the same ring position.
    if (s == kNil || hot_[s].when != t) continue;
    // Bucket lists are unordered; scan for the minimum seq (due
    // batches are tiny -- usually a single entry).
    for (; s != kNil; s = hot_[s].next) {
      assert(hot_[s].when == t);
      if (hot_[s].seq < best_seq) {
        best_seq = hot_[s].seq;
        best = s;
      }
    }
  }
  bool from_heap = false;
  if (!heap_.empty() && heap_[0].when == t && heap_[0].seq < best_seq) {
    best = heap_[0].slot;
    from_heap = true;
  }
  if (best == kNil) return false;
  Hot& n = hot_[best];
  if (from_heap) {
    heap_remove_at(0);
  } else {
    bucket_unlink(n);
  }
  ev = payload_[best].event;
  if (ev == nullptr) fn = std::move(payload_[best].fn);
  release_slot(best);
  ++fired_;
  return true;
}

}  // namespace btsc::sim
