// Deterministic pseudo-random number generation for simulations.
//
// The kernel deliberately does not use std::mt19937 or std::random_device:
// every experiment must be exactly reproducible from a single integer seed
// across platforms and standard-library versions. xoshiro256** (Blackman &
// Vigna) is small, fast and has well-understood statistical quality.
#pragma once

#include <array>
#include <cstdint>

namespace btsc::sim {

/// xoshiro256** pseudo-random generator with convenience distributions.
///
/// A default-constructed generator is seeded with a fixed constant; pass a
/// seed to get independent deterministic streams.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  /// Re-initialises the state from a 64-bit seed via splitmix64, which
  /// guarantees a non-zero, well-mixed state for any seed value.
  void reseed(std::uint64_t seed);

  /// Raw 64 random bits.
  std::uint64_t next();

  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ull; }
  std::uint64_t operator()() { return next(); }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// True with probability p (clamped to [0, 1]).
  bool bernoulli(double p);

  /// Fills `words` with an error mask of `nbits` bits: bit i is set with
  /// probability p, drawn in exactly the order nbits successive
  /// bernoulli(p) calls would draw it (bit 0 first). The generator
  /// therefore ends in the same state either way, which is what lets a
  /// burst run pre-draw a whole packet's noise flips and still be
  /// byte-identical to the per-bit reference (see phy::NoisyChannel).
  /// Unused high bits of the last word are cleared; words beyond the
  /// mask are not touched. `words` must hold ceil(nbits/64) entries.
  void fill_error_mask(std::uint64_t* words, std::size_t nbits, double p);

  /// Draws a bernoulli(p) sequence consumes per bit: 1 for 0 < p < 1
  /// (one uniform01 each), 0 otherwise (the p<=0 / p>=1 shortcuts).
  static unsigned bernoulli_draws_per_bit(double p) {
    return (p > 0.0 && p < 1.0) ? 1u : 0u;
  }

  /// Advances the stream by `n` raw draws, discarding the values. Used
  /// to replay a known draw count after set_state() when re-synchronising
  /// a pre-drawn error mask with the per-bit draw order.
  void discard(std::uint64_t n) {
    for (std::uint64_t i = 0; i < n; ++i) next();
  }

  /// Derives an independent child stream; used to give each device its own
  /// stream so adding a device never perturbs another device's randomness.
  Rng split();

  /// Derives the seed of an independent stream addressed by a
  /// (stream, index) pair under `base` — e.g. (point index, replication
  /// index) in a Monte-Carlo sweep. Pure function of its arguments: the
  /// result never depends on how many other streams exist or on the order
  /// they are derived in, which is what makes sharded sweeps bitwise
  /// reproducible at any thread count.
  static std::uint64_t derive_stream_seed(std::uint64_t base,
                                          std::uint64_t stream,
                                          std::uint64_t index);

  /// Raw xoshiro256** state, for checkpointing. set_state() resumes the
  /// stream exactly where state() captured it (an all-zero state is
  /// invalid and rejected by re-seeding with the fixed default).
  const std::array<std::uint64_t, 4>& state() const { return s_; }
  void set_state(const std::array<std::uint64_t, 4>& s);

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace btsc::sim
