// BitVector: a sequence of bits in air (transmission) order.
//
// Bluetooth transmits the least significant bit of every field first; all
// composers/parsers in this repository therefore agree on the convention
// that bit 0 of a BitVector is the first bit on air and that
// append_uint()/extract_uint() are LSB-first.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace btsc::sim {

class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(std::size_t n, bool value = false)
      : bits_(n, value ? 1 : 0) {}

  /// Builds from a string of '0'/'1' characters (index 0 = first on air).
  static BitVector from_string(const std::string& s) {
    BitVector v;
    v.bits_.reserve(s.size());
    for (char c : s) {
      if (c != '0' && c != '1') {
        throw std::invalid_argument("BitVector: bad character in bit string");
      }
      v.bits_.push_back(c == '1');
    }
    return v;
  }

  std::size_t size() const { return bits_.size(); }
  bool empty() const { return bits_.empty(); }
  void reserve(std::size_t n) { bits_.reserve(n); }

  bool operator[](std::size_t i) const { return bits_[i] != 0; }
  bool at(std::size_t i) const { return bits_.at(i) != 0; }
  void set(std::size_t i, bool v) { bits_.at(i) = v ? 1 : 0; }
  void flip(std::size_t i) { bits_.at(i) ^= 1; }

  void push_back(bool b) { bits_.push_back(b ? 1 : 0); }

  /// Appends the low `nbits` of `value`, LSB first (air order).
  void append_uint(std::uint64_t value, unsigned nbits) {
    for (unsigned i = 0; i < nbits; ++i) {
      bits_.push_back((value >> i) & 1u);
    }
  }

  void append(const BitVector& other) {
    bits_.insert(bits_.end(), other.bits_.begin(), other.bits_.end());
  }

  /// Reads `nbits` starting at `pos`, first bit = LSB. Requires the range
  /// to be in bounds and nbits <= 64.
  std::uint64_t extract_uint(std::size_t pos, unsigned nbits) const {
    if (nbits > 64 || pos + nbits > bits_.size()) {
      throw std::out_of_range("BitVector::extract_uint");
    }
    std::uint64_t v = 0;
    for (unsigned i = 0; i < nbits; ++i) {
      v |= static_cast<std::uint64_t>(bits_[pos + i]) << i;
    }
    return v;
  }

  /// Copies `len` bits starting at `pos` into a new vector.
  BitVector slice(std::size_t pos, std::size_t len) const {
    if (pos + len > bits_.size()) throw std::out_of_range("BitVector::slice");
    BitVector v;
    v.bits_.assign(bits_.begin() + static_cast<std::ptrdiff_t>(pos),
                   bits_.begin() + static_cast<std::ptrdiff_t>(pos + len));
    return v;
  }

  /// Number of positions where the two vectors differ (sizes must match).
  std::size_t hamming_distance(const BitVector& other) const {
    if (size() != other.size()) {
      throw std::invalid_argument("BitVector::hamming_distance: size");
    }
    std::size_t d = 0;
    for (std::size_t i = 0; i < size(); ++i) d += bits_[i] != other.bits_[i];
    return d;
  }

  std::string to_string() const {
    std::string s;
    s.reserve(size());
    for (auto b : bits_) s.push_back(b ? '1' : '0');
    return s;
  }

  friend bool operator==(const BitVector&, const BitVector&) = default;

 private:
  std::vector<std::uint8_t> bits_;
};

}  // namespace btsc::sim
