// BitVector: a sequence of bits in air (transmission) order, packed into
// 64-bit words.
//
// Bluetooth transmits the least significant bit of every field first; all
// composers/parsers in this repository therefore agree on the convention
// that bit 0 of a BitVector is the first bit on air and that
// append_uint()/extract_uint() are LSB-first. Bit i lives in word i/64 at
// bit position i%64, so a word read IS an LSB-first 64-bit field extract
// -- the layout the whitener, CRC, FEC and sync-correlator word paths
// rely on.
//
// Two accessor families:
//  * checked (at/set/flip, extract_uint, slice): throw on range errors;
//    parser entry points and tests use these.
//  * unchecked (operator[], get_unchecked/set_unchecked/flip_unchecked,
//    word/extract_word, append_range): assert-guarded in debug builds,
//    free in Release; the PHY/baseband hot paths use these.
//
// Invariant: the unused high bits of the last storage word are zero, so
// whole-word equality/Hamming comparisons need no tail masking.
#pragma once

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace btsc::sim {

class BitVector {
 public:
  /// Bits per storage word.
  static constexpr std::size_t kWordBits = 64;

  BitVector() = default;
  explicit BitVector(std::size_t n, bool value = false) { resize(n, value); }

  /// Builds from a string of '0'/'1' characters (index 0 = first on air).
  static BitVector from_string(const std::string& s) {
    BitVector v;
    v.reserve(s.size());
    for (char c : s) {
      if (c != '0' && c != '1') {
        throw std::invalid_argument("BitVector: bad character in bit string");
      }
      v.push_back(c == '1');
    }
    return v;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  void reserve(std::size_t n) { words_.reserve(word_count(n)); }

  /// Drops all bits but keeps the storage capacity (hot-path reset).
  void clear() {
    words_.clear();
    size_ = 0;
  }

  void resize(std::size_t n, bool value = false) {
    const std::uint64_t fill = value ? ~0ull : 0ull;
    words_.resize(word_count(n), fill);
    if (value && n > size_) {
      // Bits [size_, old word end) were zero; set them.
      const std::size_t w = size_ / kWordBits;
      if (w < words_.size()) {
        words_[w] |= ~0ull << (size_ % kWordBits);
      }
    }
    size_ = n;
    mask_tail();
  }

  // ---- unchecked accessors (assert-guarded; the hot path) ----

  bool operator[](std::size_t i) const { return get_unchecked(i); }

  bool get_unchecked(std::size_t i) const {
    assert(i < size_ && "BitVector: index out of range");
    return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
  }

  void set_unchecked(std::size_t i, bool v) {
    assert(i < size_ && "BitVector: index out of range");
    const std::uint64_t mask = 1ull << (i % kWordBits);
    if (v) {
      words_[i / kWordBits] |= mask;
    } else {
      words_[i / kWordBits] &= ~mask;
    }
  }

  void flip_unchecked(std::size_t i) {
    assert(i < size_ && "BitVector: index out of range");
    words_[i / kWordBits] ^= 1ull << (i % kWordBits);
  }

  /// i-th storage word; bit b of the result is bit i*64+b of the vector.
  std::uint64_t word(std::size_t i) const {
    assert(i < words_.size() && "BitVector: word index out of range");
    return words_[i];
  }

  std::size_t num_words() const { return words_.size(); }
  const std::uint64_t* words() const { return words_.data(); }

  /// Mutable word storage for bulk writers (e.g. Rng::fill_error_mask).
  /// The caller must keep the unused high bits of the last word zero.
  std::uint64_t* words_mut() { return words_.data(); }

  /// Unchecked LSB-first read of `nbits` (<= 64) starting at `pos`;
  /// requires the range to be in bounds (debug assert).
  std::uint64_t extract_word(std::size_t pos, unsigned nbits = 64) const {
    assert(nbits <= 64 && pos + nbits <= size_ &&
           "BitVector::extract_word out of range");
    if (nbits == 0) return 0;
    const std::size_t w = pos / kWordBits;
    const unsigned off = static_cast<unsigned>(pos % kWordBits);
    std::uint64_t v = words_[w] >> off;
    if (off != 0 && w + 1 < words_.size()) {
      v |= words_[w + 1] << (kWordBits - off);
    }
    if (nbits < 64) v &= (1ull << nbits) - 1;
    return v;
  }

  // ---- checked accessors (parser entry points) ----

  bool at(std::size_t i) const {
    check_index(i);
    return get_unchecked(i);
  }

  void set(std::size_t i, bool v) {
    check_index(i);
    set_unchecked(i, v);
  }

  void flip(std::size_t i) {
    check_index(i);
    flip_unchecked(i);
  }

  /// Reads `nbits` starting at `pos`, first bit = LSB. Requires the range
  /// to be in bounds and nbits <= 64.
  std::uint64_t extract_uint(std::size_t pos, unsigned nbits) const {
    if (nbits > 64 || pos + nbits > size_ || pos > size_) {
      throw std::out_of_range("BitVector::extract_uint");
    }
    return extract_word(pos, nbits);
  }

  // ---- growth ----

  void push_back(bool b) {
    const unsigned off = static_cast<unsigned>(size_ % kWordBits);
    if (off == 0) words_.push_back(0);
    if (b) words_.back() |= 1ull << off;
    ++size_;
  }

  /// Appends the low `nbits` of `value`, LSB first (air order).
  void append_uint(std::uint64_t value, unsigned nbits) {
    assert(nbits <= 64);
    if (nbits == 0) return;
    if (nbits < 64) value &= (1ull << nbits) - 1;
    const unsigned off = static_cast<unsigned>(size_ % kWordBits);
    if (off == 0) {
      words_.push_back(value);
    } else {
      words_.back() |= value << off;
      if (nbits > kWordBits - off) {
        words_.push_back(value >> (kWordBits - off));
      }
    }
    size_ += nbits;
  }

  void append(const BitVector& other) { append_range(other, 0, other.size_); }

  /// Appends bits [pos, pos+len) of `src` (unchecked; debug assert).
  /// `&src == this` is allowed only for non-overlapping semantics via the
  /// word walk below reading ahead of the write frontier -- callers in
  /// this repository never self-append, so we simply assert.
  void append_range(const BitVector& src, std::size_t pos, std::size_t len) {
    assert(pos + len <= src.size_ && "BitVector::append_range out of range");
    assert(this != &src && "BitVector::append_range: self-append");
    std::size_t done = 0;
    while (done < len) {
      const unsigned chunk =
          static_cast<unsigned>(len - done < 64 ? len - done : 64);
      append_uint(src.extract_word(pos + done, chunk), chunk);
      done += chunk;
    }
  }

  /// Appends `n` zero bits in O(n/64).
  void append_zeros(std::size_t n) {
    size_ += n;
    words_.resize(word_count(size_), 0);
  }

  /// Copies `len` bits starting at `pos` into a new vector.
  BitVector slice(std::size_t pos, std::size_t len) const {
    if (pos + len > size_ || pos > size_) {
      throw std::out_of_range("BitVector::slice");
    }
    BitVector v;
    v.reserve(len);
    v.append_range(*this, pos, len);
    return v;
  }

  /// XORs `stream` (LSB-first, `nbits` <= 64) onto the bits starting at
  /// `pos` (unchecked; debug assert). The whitener word path.
  void xor_word(std::size_t pos, std::uint64_t stream, unsigned nbits) {
    assert(nbits <= 64 && pos + nbits <= size_ &&
           "BitVector::xor_word out of range");
    if (nbits == 0) return;
    if (nbits < 64) stream &= (1ull << nbits) - 1;
    const std::size_t w = pos / kWordBits;
    const unsigned off = static_cast<unsigned>(pos % kWordBits);
    words_[w] ^= stream << off;
    if (off != 0 && nbits > kWordBits - off) {
      words_[w + 1] ^= stream >> (kWordBits - off);
    }
  }

  /// Number of positions where the two vectors differ (sizes must match).
  std::size_t hamming_distance(const BitVector& other) const {
    if (size_ != other.size_) {
      throw std::invalid_argument("BitVector::hamming_distance: size");
    }
    std::size_t d = 0;
    for (std::size_t i = 0; i < words_.size(); ++i) {
      d += static_cast<std::size_t>(
          std::popcount(words_[i] ^ other.words_[i]));
    }
    return d;
  }

  std::string to_string() const {
    std::string s;
    s.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i) {
      s.push_back(get_unchecked(i) ? '1' : '0');
    }
    return s;
  }

  /// Whole-word comparison; valid because tail bits are kept zero.
  friend bool operator==(const BitVector&, const BitVector&) = default;

 private:
  static std::size_t word_count(std::size_t bits) {
    return (bits + kWordBits - 1) / kWordBits;
  }

  void check_index(std::size_t i) const {
    if (i >= size_) throw std::out_of_range("BitVector: index");
  }

  /// Clears the unused high bits of the last word (class invariant).
  void mask_tail() {
    const unsigned off = static_cast<unsigned>(size_ % kWordBits);
    if (off != 0 && !words_.empty()) {
      words_.back() &= (1ull << off) - 1;
    }
  }

  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
};

}  // namespace btsc::sim
