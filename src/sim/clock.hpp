// Free-running clock generator module.
//
// Drives a BoolSignal with a square wave of the given period. The
// Bluetooth models mostly use their own counters clocked from timers, but
// a kernel-level clock is provided for RTL-style modules and tests.
#pragma once

#include <string>

#include "sim/module.hpp"
#include "sim/signal.hpp"
#include "sim/time.hpp"

namespace btsc::sim {

class Clock final : public Module {
 public:
  /// `period` is the full cycle time; the first rising edge occurs at
  /// `start_offset` (default: immediately at t=0 plus one period-half).
  Clock(Environment& env, std::string name, SimTime period,
        SimTime start_offset = SimTime::zero());

  BoolSignal& out() { return out_; }
  Event& posedge_event() { return out_.posedge_event(); }
  SimTime period() const { return period_; }

  /// Stops toggling (no further edges are scheduled).
  void stop() { running_ = false; }

  std::uint64_t posedge_count() const { return posedges_; }

 private:
  void tick();

  BoolSignal out_;
  SimTime period_;
  SimTime half_;
  bool running_ = true;
  std::uint64_t posedges_ = 0;
};

}  // namespace btsc::sim
