#include "sim/clock.hpp"

#include <stdexcept>

namespace btsc::sim {

Clock::Clock(Environment& env, std::string name, SimTime period,
             SimTime start_offset)
    : Module(env, std::move(name)),
      out_(env, child_name("clk")),
      period_(period),
      half_(SimTime::ns(period.as_ns() / 2)) {
  if (period == SimTime::zero()) {
    throw std::invalid_argument("Clock: zero period");
  }
  env.schedule(start_offset, [this] { tick(); });
}

void Clock::tick() {
  if (!running_) return;
  const bool rising = !out_.read();
  out_.write(rising);
  if (rising) ++posedges_;
  env().schedule(rising ? half_ : period_ - half_, [this] { tick(); });
}

}  // namespace btsc::sim
