#include "sim/shard.hpp"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <string>

namespace btsc::sim {

// ---------------------------------------------------------------------------
// ShardBarrier
// ---------------------------------------------------------------------------

struct ShardBarrier::Impl {
  std::mutex mu;
  std::condition_variable cv;
  int waiting = 0;
  std::uint64_t generation = 0;
};

ShardBarrier::ShardBarrier(int parties)
    : impl_(std::make_unique<Impl>()), parties_(parties) {
  if (parties < 1) throw std::invalid_argument("ShardBarrier: parties < 1");
}

ShardBarrier::~ShardBarrier() = default;

void ShardBarrier::arrive_and_wait() {
  std::unique_lock<std::mutex> lock(impl_->mu);
  const std::uint64_t gen = impl_->generation;
  if (++impl_->waiting == parties_) {
    impl_->waiting = 0;
    ++impl_->generation;
    impl_->cv.notify_all();
    return;
  }
  impl_->cv.wait(lock, [this, gen] { return impl_->generation != gen; });
}

// ---------------------------------------------------------------------------
// ShardGroup
// ---------------------------------------------------------------------------

ShardGroup::ShardGroup(SimTime lookahead) : lookahead_(lookahead) {}

ShardGroup::~ShardGroup() { stop_workers(); }

std::uint32_t ShardGroup::add_shard(Environment& env) {
  if (!workers_.empty())
    throw std::logic_error("ShardGroup: add_shard after first parallel run");
  if (env.now() != now_)
    throw std::logic_error("ShardGroup: shard clock differs from group clock");
  const auto id = static_cast<std::uint32_t>(shards_.size());
  env.set_shard_id(id);
  Shard s;
  s.env = &env;
  shards_.push_back(std::move(s));
  return id;
}

Environment& ShardGroup::shard_env(std::uint32_t shard) const {
  return *shards_.at(shard).env;
}

void ShardGroup::bind_endpoint(std::uint32_t domain, std::uint32_t shard,
                               CrossShardEndpoint* endpoint) {
  if (shard >= shards_.size())
    throw std::out_of_range("ShardGroup: bind_endpoint on unknown shard");
  if (endpoint == nullptr)
    throw std::invalid_argument("ShardGroup: null endpoint");
  endpoints_.push_back(Endpoint{domain, shard, endpoint});
}

bool ShardGroup::coupled(std::uint32_t domain, std::uint32_t shard) const {
  for (const auto& e : endpoints_)
    if (e.domain == domain && e.shard != shard) return true;
  return false;
}

void ShardGroup::publish(std::uint32_t domain, std::uint32_t src_shard,
                         SimTime when, std::uint16_t kind, std::uint32_t port,
                         std::int16_t freq, std::uint8_t value) {
  Shard& s = shards_.at(src_shard);
  CrossShardEvent ev;
  ev.domain = domain;
  ev.src_shard = src_shard;
  ev.seq = s.pub_seq++;
  ev.when = when;
  ev.kind = kind;
  ev.port = port;
  ev.freq = freq;
  ev.value = value;
  s.outbox.push_back(ev);
}

void ShardGroup::set_lanes(int lanes) {
  if (lanes < 1) throw std::invalid_argument("ShardGroup: lanes < 1");
  if (!workers_.empty())
    throw std::logic_error("ShardGroup: set_lanes after first parallel run");
  lanes_ = lanes;
}

int ShardGroup::effective_lanes() const {
  const int n = static_cast<int>(shards_.size());
  return lanes_ < n ? lanes_ : n;
}

void ShardGroup::run_until(SimTime until) {
  if (shards_.empty()) throw std::logic_error("ShardGroup: no shards");
  if (shards_.size() > 1 && lookahead_ == SimTime::zero())
    throw std::logic_error(
        "ShardGroup: zero lookahead cannot drive more than one shard "
        "(conservative windows would be empty); fuse the scenario instead");
  while (now_ < until) {
    SimTime window_end =
        shards_.size() > 1 ? now_ + lookahead_ : until;
    if (window_end > until) window_end = until;
    run_window(window_end);
    now_ = window_end;
    exchange(window_end);
  }
}

void ShardGroup::run_window(SimTime window_end) {
  const int lanes = effective_lanes();
  if (lanes <= 1) {
    for (auto& s : shards_) s.env->run_until(window_end);
    return;
  }
  if (workers_.empty()) start_workers(lanes);
  window_end_ = window_end;
  start_barrier_->arrive_and_wait();  // releases workers into the window
  run_lane(0, window_end);
  end_barrier_->arrive_and_wait();  // all lanes done
  for (auto& err : lane_errors_) {
    if (err) {
      std::exception_ptr e = err;
      err = nullptr;
      std::rethrow_exception(e);
    }
  }
}

void ShardGroup::run_lane(int lane, SimTime window_end) {
  const int lanes = effective_lanes();
  try {
    for (std::size_t i = static_cast<std::size_t>(lane); i < shards_.size();
         i += static_cast<std::size_t>(lanes))
      shards_[i].env->run_until(window_end);
  } catch (...) {
    lane_errors_[static_cast<std::size_t>(lane)] = std::current_exception();
  }
}

void ShardGroup::exchange(SimTime window_end) {
  // Route every published event to the other endpoints of its domain.
  // Iterating shards then endpoints in registration order keeps the
  // routing order fixed; the destination inbox is sorted by
  // (when, src_shard, seq) before delivery, so the final dispatch
  // order is value-driven either way.
  for (auto& s : shards_) {
    for (const auto& ev : s.outbox) {
      if (ev.when < window_end)
        throw std::logic_error(
            "ShardGroup: lookahead violated -- event published for an "
            "instant before the window boundary");
      for (const auto& e : endpoints_) {
        if (e.domain != ev.domain || e.shard == ev.src_shard) continue;
        shards_[e.shard].env->post_cross_shard(ev, e.endpoint);
        ++events_exchanged_;
      }
    }
    s.outbox.clear();
  }
  for (auto& s : shards_) s.env->deliver_cross_shard();
}

void ShardGroup::align_now() {
  if (shards_.empty()) throw std::logic_error("ShardGroup: no shards");
  const SimTime t = shards_.front().env->now();
  for (const auto& s : shards_)
    if (s.env->now() != t)
      throw std::logic_error("ShardGroup: shard clocks disagree in align_now");
  now_ = t;
}

Environment::SchedulerStats ShardGroup::scheduler_stats() const {
  Environment::SchedulerStats total;
  for (const auto& s : shards_) {
    const auto st = s.env->scheduler_stats();
    total.scheduled += st.scheduled;
    total.fired += st.fired;
    total.canceled += st.canceled;
    total.cancels_after_fire += st.cancels_after_fire;
    total.wheel_hits += st.wheel_hits;
    total.heap_overflow += st.heap_overflow;
    total.live += st.live;
    total.peak_live = std::max(total.peak_live, st.peak_live);
    total.peak_depth = std::max(total.peak_depth, st.peak_depth);
  }
  return total;
}

void ShardGroup::start_workers(int lanes) {
  start_barrier_ = std::make_unique<ShardBarrier>(lanes);
  end_barrier_ = std::make_unique<ShardBarrier>(lanes);
  lane_errors_.assign(static_cast<std::size_t>(lanes), nullptr);
  stop_ = false;
  for (int lane = 1; lane < lanes; ++lane) {
    workers_.emplace_back([this, lane] {
      for (;;) {
        start_barrier_->arrive_and_wait();
        if (stop_) return;
        run_lane(lane, window_end_);
        end_barrier_->arrive_and_wait();
      }
    });
  }
}

void ShardGroup::stop_workers() {
  if (workers_.empty()) return;
  stop_ = true;
  start_barrier_->arrive_and_wait();
  for (auto& t : workers_) t.join();
  workers_.clear();
}

}  // namespace btsc::sim
