#include "sim/checkpoint_store.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>

#include "io/fault.hpp"

namespace btsc::sim {
namespace {

constexpr std::uint32_t kRecipeTag = snapshot_tag("CKPT");
constexpr std::uint32_t kImageTag = snapshot_tag("IMG ");

[[noreturn]] void throw_io(const std::string& what, const std::string& path) {
  throw SnapshotError("checkpoint: " + what + " " + path + ": " +
                      std::strerror(errno));
}

/// fsync the directory containing `path` so the rename itself is
/// durable. Best effort on filesystems that reject directory fsync.
void fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

std::vector<std::uint8_t> encode_checkpoint_file(const CheckpointFile& file) {
  SnapshotWriter w;
  w.begin_section(kRecipeTag);
  w.str(file.scenario);
  w.u64(file.point_index);
  w.u64(file.warm_seed);
  w.u64(file.construction_seed);
  w.u32(file.snapshot_version);
  w.byte_vec(file.config);
  w.end_section();
  w.begin_section(kImageTag);
  w.byte_vec(file.snapshot);
  w.end_section();
  return w.take();
}

CheckpointFile decode_checkpoint_file(const std::vector<std::uint8_t>& bytes) {
  SnapshotReader r(bytes);
  CheckpointFile f;
  r.enter_section(kRecipeTag);
  f.scenario = r.str();
  f.point_index = r.u64();
  f.warm_seed = r.u64();
  f.construction_seed = r.u64();
  f.snapshot_version = r.u32();
  f.config = r.byte_vec();
  r.leave_section();
  r.enter_section(kImageTag);
  f.snapshot = r.byte_vec();
  r.leave_section();
  if (!r.at_end()) {
    throw SnapshotError("checkpoint: trailing bytes after image section");
  }
  // Version gate BEFORE anyone touches the embedded image: a recipe from
  // another build must fail loudly here, not deep inside restore_state.
  if (f.snapshot_version != kSnapshotVersion) {
    throw SnapshotError("checkpoint: stale snapshot version " +
                        std::to_string(f.snapshot_version) + " (this build: " +
                        std::to_string(kSnapshotVersion) + ")");
  }
  return f;
}

void write_checkpoint_file(const std::string& path,
                           const CheckpointFile& file) {
  const std::vector<std::uint8_t> bytes = encode_checkpoint_file(file);
  // The temp name must be unique per WRITER, not per process: two sweep
  // workers spilling the same point concurrently (same pid, same target
  // path) must not rename each other's temp away, so a per-process
  // sequence number joins the pid.
  static std::atomic<std::uint64_t> tmp_seq{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(tmp_seq.fetch_add(
                              1, std::memory_order_relaxed));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_io("cannot create", tmp);
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = io::faultable_write(io::FaultOp::kCheckpointWrite, fd,
                                          bytes.data() + off,
                                          bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      throw_io("write failed for", tmp);
    }
    off += static_cast<std::size_t>(n);
  }
  if (io::faultable_fsync(io::FaultOp::kCheckpointSync, fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw_io("fsync failed for", tmp);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    throw_io("close failed for", tmp);
  }
  if (io::faultable_rename(io::FaultOp::kCheckpointRename, tmp.c_str(),
                           path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw_io("rename failed onto", path);
  }
  fsync_parent_dir(path);
}

CheckpointFile load_checkpoint_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw_io("cannot open", path);
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw_io("read failed for", path);
    }
    if (n == 0) break;
    bytes.insert(bytes.end(), buf, buf + n);
  }
  ::close(fd);
  return decode_checkpoint_file(bytes);
}

}  // namespace btsc::sim
