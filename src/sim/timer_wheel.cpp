// Cold paths of the timing-wheel timed queue: construction, the 4-ary
// overflow heap's sift machinery (only off-grid / far-horizon timers pay
// it), bulk owner cancellation and the stats snapshot. The per-event hot
// path is inline in timer_wheel.hpp.
#include "sim/timer_wheel.hpp"

#include <algorithm>

namespace btsc::sim {

TimerWheel::TimerWheel() {
  for (int l = 0; l < kLevels; ++l) {
    levels_[l].heads.assign(kBuckets[l], kNil);
    levels_[l].words.assign(kBuckets[l] >> 6, 0);
  }
}

TimerWheel::~TimerWheel() = default;

// ---------------------------------------------------------------------------
// Overflow heap (identical mechanics to the pre-wheel kernel)
// ---------------------------------------------------------------------------

void TimerWheel::heap_place(std::size_t pos, const HeapEntry& e) {
  heap_[pos] = e;
  hot_[e.slot].pos = static_cast<std::uint32_t>(pos);
}

void TimerWheel::sift_up(std::size_t pos) {
  const HeapEntry moving = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / kHeapArity;
    if (!entry_before(moving, heap_[parent])) break;
    heap_place(pos, heap_[parent]);
    pos = parent;
  }
  heap_place(pos, moving);
}

void TimerWheel::sift_down(std::size_t pos) {
  const HeapEntry moving = heap_[pos];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = kHeapArity * pos + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + kHeapArity, n);
    for (std::size_t c = first + 1; c < last; ++c) {
      if (entry_before(heap_[c], heap_[best])) best = c;
    }
    if (!entry_before(heap_[best], moving)) break;
    heap_place(pos, heap_[best]);
    pos = best;
  }
  heap_place(pos, moving);
}

void TimerWheel::heap_push(SimTime when, std::uint64_t seq,
                           std::uint32_t slot) {
  heap_.push_back({when, seq, slot});
  Hot& n = hot_[slot];
  n.where = kWhereHeap;
  n.pos = static_cast<std::uint32_t>(heap_.size() - 1);
  sift_up(heap_.size() - 1);
}

void TimerWheel::heap_remove_at(std::size_t pos) {
  assert(pos < heap_.size());
  const std::size_t last = heap_.size() - 1;
  if (pos == last) {
    heap_.pop_back();
    return;
  }
  heap_[pos] = heap_[last];
  heap_.pop_back();
  // The displaced entry may belong above or below `pos`; both sifts end
  // by re-placing it (fixing its slab pos) even when it does not move.
  if (pos > 0 && entry_before(heap_[pos], heap_[(pos - 1) / kHeapArity])) {
    sift_up(pos);
  } else {
    sift_down(pos);
  }
}

// ---------------------------------------------------------------------------
// Bulk cancellation & diagnostics
// ---------------------------------------------------------------------------

void TimerWheel::cancel_owned(const void* owner) {
  if (owner == nullptr) return;
  cancel_scratch_.clear();
  for (std::uint32_t s = 0; s < hot_.size(); ++s) {
    const Hot& n = hot_[s];
    if (n.where != kWhereFree && n.owner == owner) {
      cancel_scratch_.push_back(s);
    }
  }
  for (const std::uint32_t s : cancel_scratch_) {
    remove_from_container(hot_[s]);
    release_slot(s);
    ++canceled_;
  }
}

void TimerWheel::clear() {
  for (auto& lv : levels_) {
    std::fill(lv.heads.begin(), lv.heads.end(), kNil);
    std::fill(lv.words.begin(), lv.words.end(), 0);
    lv.summary = 0;
    lv.live = 0;
  }
  heap_.clear();
  hot_.clear();
  payload_.clear();
  free_head_ = kNil;
  live_ = 0;
  due_.tns = ~std::uint64_t{0};
  cached_now_ns_ = ~std::uint64_t{0};
}

TimerWheel::Stats TimerWheel::stats() const {
  Stats s;
  s.scheduled = wheel_hits_ + heap_overflow_;
  s.fired = fired_;
  s.canceled = canceled_;
  s.cancels_after_fire = cancels_after_fire_;
  s.wheel_hits = wheel_hits_;
  s.heap_overflow = heap_overflow_;
  s.live = live_;
  s.peak_live = peak_live_;
  return s;
}

}  // namespace btsc::sim
