// Simulation time type for the btsc discrete-event kernel.
//
// Time is an absolute count of nanoseconds held in a 64-bit unsigned
// integer, which covers ~584 years of simulated time -- far beyond any
// Bluetooth scenario. All kernel and model code uses SimTime instead of
// raw integers so that unit mistakes are caught at compile time.
#pragma once

#if (defined(_MSVC_LANG) ? _MSVC_LANG : __cplusplus) < 202002L
#error "btsc requires C++20 (defaulted operator<=>/operator==); build with -std=c++20 or let CMake set it"
#endif

#include <compare>
#include <cstdint>
#include <limits>
#include <ostream>
#include <string>

namespace btsc::sim {

/// Absolute simulation time (or a duration) in nanoseconds.
///
/// SimTime is a regular value type: totally ordered, cheap to copy and
/// supports the arithmetic that is meaningful for time points/durations.
class SimTime {
 public:
  constexpr SimTime() = default;

  /// Named constructors -- the only way to build a SimTime from a number,
  /// so the unit is always spelled out at the call site.
  static constexpr SimTime ns(std::uint64_t v) { return SimTime{v}; }
  static constexpr SimTime us(std::uint64_t v) { return SimTime{v * 1000u}; }
  static constexpr SimTime ms(std::uint64_t v) {
    return SimTime{v * 1'000'000u};
  }
  static constexpr SimTime sec(std::uint64_t v) {
    return SimTime{v * 1'000'000'000u};
  }
  /// Largest representable time; used as the "never" sentinel.
  static constexpr SimTime max() {
    return SimTime{std::numeric_limits<std::uint64_t>::max()};
  }
  static constexpr SimTime zero() { return SimTime{0}; }

  constexpr std::uint64_t as_ns() const { return ns_; }
  constexpr double as_us() const { return static_cast<double>(ns_) / 1e3; }
  constexpr double as_ms() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double as_sec() const { return static_cast<double>(ns_) / 1e9; }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  constexpr SimTime operator+(SimTime o) const { return SimTime{ns_ + o.ns_}; }
  constexpr SimTime operator-(SimTime o) const { return SimTime{ns_ - o.ns_}; }
  constexpr SimTime& operator+=(SimTime o) {
    ns_ += o.ns_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime o) {
    ns_ -= o.ns_;
    return *this;
  }
  constexpr SimTime operator*(std::uint64_t k) const {
    return SimTime{ns_ * k};
  }
  /// Integer division of durations, e.g. number of slots in an interval.
  constexpr std::uint64_t operator/(SimTime o) const { return ns_ / o.ns_; }
  constexpr SimTime operator%(SimTime o) const { return SimTime{ns_ % o.ns_}; }

  /// Human-readable rendering with an auto-selected unit ("12.5 us").
  std::string to_string() const;

 private:
  explicit constexpr SimTime(std::uint64_t v) : ns_(v) {}
  std::uint64_t ns_ = 0;
};

std::ostream& operator<<(std::ostream& os, SimTime t);

namespace literals {
constexpr SimTime operator""_ns(unsigned long long v) {
  return SimTime::ns(v);
}
constexpr SimTime operator""_us(unsigned long long v) {
  return SimTime::us(v);
}
constexpr SimTime operator""_ms(unsigned long long v) {
  return SimTime::ms(v);
}
constexpr SimTime operator""_sec(unsigned long long v) {
  return SimTime::sec(v);
}
}  // namespace literals

}  // namespace btsc::sim
