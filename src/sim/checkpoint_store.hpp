// Durable checkpoints: the file-backed layer over sim/snapshot.hpp.
//
// An in-memory snapshot (PR 6) dies with the process. A CheckpointFile
// wraps one snapshot image together with its *construction recipe* — the
// scenario id, point index, warm-up seed, construction seed and a
// free-form config blob (SystemConfig / CoexistenceConfig parameters) —
// so a FRESH process can rebuild the scaffold through the ordinary
// deterministic construction path and restore the image into it. The
// recipe is the part a restore cannot derive from the bytes alone.
//
// File format
// -----------
// The file is itself one SnapshotWriter stream (magic, version, trailing
// FNV-1a checksum — validated before any field is consumed) holding two
// sections:
//
//   "CKPT"  recipe: str scenario, u64 point_index, u64 warm_seed,
//           u64 construction_seed, u32 snapshot_version (of the embedded
//           image), byte_vec config blob
//   "IMG "  the embedded snapshot image bytes (themselves a complete,
//           independently-checksummed snapshot stream)
//
// Atomic-write protocol: the stream is written to `<path>.tmp.<pid>.<seq>`
// (seq is a per-process counter, so concurrent writers of the SAME
// target — sweep workers spilling one shared warm-up — cannot rename
// each other's temp away), fsync'd, closed, renamed over `path`, and
// the containing directory is fsync'd. A crash at any instant leaves either the old file, the new
// file, or a stale temp file that is never read — never a torn
// checkpoint. load_checkpoint_file throws SnapshotError on truncation,
// corruption, or a stale snapshot_version, and never partially applies:
// the caller's scaffold is untouched on failure.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/snapshot.hpp"

namespace btsc::sim {

/// One durable checkpoint: a snapshot image plus the recipe needed to
/// rebuild the object graph it restores into.
struct CheckpointFile {
  /// Scenario id ("fig08") whose construction path rebuilds the scaffold.
  std::string scenario;
  /// Sweep point index the warm-up belongs to.
  std::uint64_t point_index = 0;
  /// The warm-up stage's derived seed (identifies the warm-up stream).
  std::uint64_t warm_seed = 0;
  /// Seed whose construction path produced the system (creation retries
  /// can perturb it away from warm_seed; the scaffold must replay it).
  std::uint64_t construction_seed = 0;
  /// kSnapshotVersion of the embedded image at write time. A loader on a
  /// build with a different version rejects the file up front instead of
  /// failing deep inside restore.
  std::uint32_t snapshot_version = kSnapshotVersion;
  /// Free-form construction parameters (BER, timeout slots, packet
  /// type...); compared verbatim by the caller so a checkpoint from an
  /// edited point list is treated as a miss, not restored into the
  /// wrong scaffold.
  std::vector<std::uint8_t> config;
  /// The snapshot image itself (a complete SnapshotWriter stream).
  std::vector<std::uint8_t> snapshot;
};

/// Serializes `file` and writes it to `path` via the atomic temp + fsync
/// + rename protocol. Throws SnapshotError (with errno context) if any
/// filesystem step fails; on failure the previous `path` content, if
/// any, is intact.
void write_checkpoint_file(const std::string& path, const CheckpointFile& file);

/// Loads and validates a checkpoint written by write_checkpoint_file.
/// Throws SnapshotError on a missing/unreadable file, bad magic or
/// checksum, torn or truncated stream, or a snapshot_version that does
/// not match this build.
CheckpointFile load_checkpoint_file(const std::string& path);

/// Serialization used by write_checkpoint_file; exposed so tests can
/// craft adversarial variants (stale versions, torn sections) without
/// replicating the layout.
std::vector<std::uint8_t> encode_checkpoint_file(const CheckpointFile& file);

/// Parses bytes in the encode_checkpoint_file layout; same validation
/// (and exceptions) as load_checkpoint_file minus the I/O.
CheckpointFile decode_checkpoint_file(const std::vector<std::uint8_t>& bytes);

}  // namespace btsc::sim
