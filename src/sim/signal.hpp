// Signals: delta-cycle-accurate communication channels between processes.
//
// A Signal<T> holds a current and a next value. write() stores the next
// value and queues an update request; the kernel commits it in the update
// phase of the current delta cycle. Readers therefore never observe a
// value written in the same evaluate phase -- the SystemC sc_signal
// contract, which removes all ordering races between processes.
#pragma once

#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>

#include "sim/environment.hpp"
#include "sim/event.hpp"
#include "sim/tracer.hpp"

namespace btsc::sim {

/// How a value type is rendered into VCD bit strings. Specialise for
/// model-specific types (see phy::Logic4). width() == 0 disables tracing.
template <typename T>
struct TraceEncoder {
  static constexpr unsigned width() {
    if constexpr (std::is_same_v<T, bool>) {
      return 1;
    } else if constexpr (std::is_enum_v<T>) {
      return 8 * sizeof(std::underlying_type_t<T>);
    } else if constexpr (std::is_integral_v<T>) {
      return 8 * sizeof(T) > 64 ? 64 : 8 * sizeof(T);
    } else {
      return 0;  // not traceable by default
    }
  }

  static std::string encode(const T& v) {
    if constexpr (std::is_same_v<T, bool>) {
      return v ? "1" : "0";
    } else if constexpr (std::is_enum_v<T>) {
      using U = std::make_unsigned_t<std::underlying_type_t<T>>;
      return to_bits(static_cast<std::uint64_t>(
          static_cast<U>(static_cast<std::underlying_type_t<T>>(v))));
    } else if constexpr (std::is_integral_v<T>) {
      using U = std::make_unsigned_t<T>;
      return to_bits(static_cast<std::uint64_t>(static_cast<U>(v)));
    } else {
      return {};
    }
  }

 private:
  static std::string to_bits(std::uint64_t u) {
    std::string s(width(), '0');
    for (unsigned i = 0; i < width(); ++i) {
      if ((u >> i) & 1u) s[width() - 1 - i] = '1';
    }
    return s;
  }
};

class SignalBase {
 public:
  SignalBase(Environment& env, std::string name)
      : env_(&env), name_(std::move(name)), changed_(env, name_ + ".changed") {}
  virtual ~SignalBase() = default;

  SignalBase(const SignalBase&) = delete;
  SignalBase& operator=(const SignalBase&) = delete;

  const std::string& name() const { return name_; }

  /// Event notified (next delta) whenever the committed value changes.
  Event& value_changed_event() { return changed_; }

  /// Kernel hook: commits the pending write (update phase).
  virtual void commit() = 0;

 protected:
  Environment* env_;
  std::string name_;
  Event changed_;
  bool update_pending_ = false;
};

template <typename T>
class Signal : public SignalBase {
 public:
  Signal(Environment& env, std::string name, T init = T{})
      : SignalBase(env, std::move(name)), cur_(init), next_(init) {
    if (Tracer* t = env.tracer();
        t != nullptr && TraceEncoder<T>::width() > 0) {
      trace_id_ = t->declare(name_, TraceEncoder<T>::width(),
                             TraceEncoder<T>::encode(cur_));
      traced_ = true;
    }
  }

  const T& read() const { return cur_; }

  /// Whether this signal is wired to the tracer, and under which id.
  /// The burst transport uses these to backfill the traced bus changes
  /// of a batched run directly (Tracer::change_at).
  bool traced() const { return traced_; }
  TraceId trace_id() const { return trace_id_; }

  /// Checkpoint restore: overwrites the committed and pending value in
  /// place, with no delta cycle, change notification, or trace record.
  /// Only valid at a settled instant (no update pending), which the
  /// snapshot layer guarantees.
  void restore_value(const T& v) {
    cur_ = v;
    next_ = v;
    update_pending_ = false;
  }

  void write(const T& v) {
    next_ = v;
    if (!update_pending_) {
      update_pending_ = true;
      env_->request_update(*this);
    }
  }

  void commit() final {
    update_pending_ = false;
    if (next_ == cur_) return;
    const T old = cur_;
    cur_ = next_;
    if (traced_) {
      env_->tracer()->change(trace_id_, TraceEncoder<T>::encode(cur_));
    }
    changed_.notify_delta();
    on_change(old, cur_);
  }

 protected:
  /// Extension point for edge events (see BoolSignal).
  virtual void on_change(const T& /*old_value*/, const T& /*new_value*/) {}

 private:
  T cur_;
  T next_;
  TraceId trace_id_ = 0;
  bool traced_ = false;
};

/// Boolean signal with dedicated edge events, the idiom for clocks and
/// enable lines (e.g. the enable_rx_RF waveforms of the paper).
class BoolSignal final : public Signal<bool> {
 public:
  BoolSignal(Environment& env, std::string name, bool init = false)
      : Signal<bool>(env, std::move(name), init),
        posedge_(env, this->name() + ".posedge"),
        negedge_(env, this->name() + ".negedge") {}

  Event& posedge_event() { return posedge_; }
  Event& negedge_event() { return negedge_; }

 protected:
  void on_change(const bool&, const bool& now_value) override {
    (now_value ? posedge_ : negedge_).notify_delta();
  }

 private:
  Event posedge_;
  Event negedge_;
};

}  // namespace btsc::sim
