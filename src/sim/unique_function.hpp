// Allocation-free move-only callback type for the kernel hot path.
//
// UniqueFunction is the kernel's replacement for std::function<void()>
// in every scheduling path (Environment::schedule, register_process,
// LinkController::defer, the Radio tx/rx timers). It differs from
// std::function in exactly the two ways the timed queue needs:
//
//  * move-only -- captures are never copied, so move-only state
//    (buffers, unique_ptr guards) can ride in a callback, and no
//    accidental capture copy can survive in a bootstrap path;
//  * a 48-byte inline small-buffer -- every kernel/baseband capture in
//    the tree fits, so steady-state scheduling performs zero heap
//    allocations (std::function's libstdc++ buffer is 16 bytes, which
//    the typical [this]+state captures of the link controller exceed).
//    Oversized captures fall back to a single heap allocation; moves of
//    a heap-backed callback just steal the pointer.
//
// Trivially-copyable captures (the common case: [this], references,
// ints) use a dedicated fast path: no manager function is stored, moves
// are a plain buffer copy and destruction is a no-op, so recycling a
// timer slab slot costs nothing beyond the memcpy.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace btsc::sim {

/// Move-only `void(Args...)` callable with small-buffer-optimized
/// storage. `UniqueFunction` (the kernel's timer callback) is the
/// zero-argument alias; `UniqueCallback<T>` carries by-value arguments
/// through to the capture (used by the Radio RX sink so the per-bit
/// fallback path stays allocation-free).
template <typename... Args>
class UniqueCallback {
 public:
  /// Captures up to this size (and max_align_t alignment) are stored
  /// inline; larger ones take one heap allocation at construction.
  static constexpr std::size_t kInlineCapacity = 48;

  /// True when callables of type F live in the inline buffer.
  template <typename F>
  static constexpr bool stores_inline_v =
      sizeof(F) <= kInlineCapacity &&
      alignof(F) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<F>;

  UniqueCallback() = default;
  UniqueCallback(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, UniqueCallback> &&
                std::is_invocable_r_v<void, D&, Args...>>>
  UniqueCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    construct<D>(std::forward<F>(f));
  }

  UniqueCallback(UniqueCallback&& other) noexcept { steal(other); }

  UniqueCallback& operator=(UniqueCallback&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  UniqueCallback& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  UniqueCallback(const UniqueCallback&) = delete;
  UniqueCallback& operator=(const UniqueCallback&) = delete;

  ~UniqueCallback() { reset(); }

  /// Destroys the captured state (frees the heap block for oversized
  /// captures) and leaves the object empty.
  void reset() {
    if (manage_ != nullptr) manage_(storage_, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  /// Destroys the current payload and constructs a new one from `f` in
  /// place -- the kernel's schedule path builds the capture directly in
  /// the timer slab node instead of moving a temporary through.
  template <typename F, typename D = std::decay_t<F>>
  void emplace(F&& f) {
    if constexpr (std::is_same_v<D, UniqueCallback>) {
      *this = std::forward<F>(f);
    } else {
      static_assert(std::is_invocable_r_v<void, D&, Args...>);
      reset();
      construct<D>(std::forward<F>(f));
    }
  }

  explicit operator bool() const { return invoke_ != nullptr; }
  friend bool operator==(const UniqueCallback& f, std::nullptr_t) {
    return !f;
  }

  void operator()(Args... args) {
    assert(invoke_ != nullptr && "invoking an empty UniqueCallback");
    invoke_(storage_, args...);
  }

 private:
  union Storage {
    void* heap;
    alignas(std::max_align_t) unsigned char buf[kInlineCapacity];
  };

  using Invoke = void (*)(Storage&, Args...);
  /// src != nullptr: move-construct src's payload into dst and destroy
  /// src's. src == nullptr: destroy dst's payload.
  using Manage = void (*)(Storage& dst, Storage* src);

  template <typename D, typename F>
  void construct(F&& f) {
    if constexpr (stores_inline_v<D>) {
      ::new (static_cast<void*>(storage_.buf)) D(std::forward<F>(f));
      invoke_ = [](Storage& s, Args... args) {
        (*std::launder(reinterpret_cast<D*>(s.buf)))(args...);
      };
      if constexpr (std::is_trivially_copyable_v<D> &&
                    std::is_trivially_destructible_v<D>) {
        // Fast path: no manager; moves are a buffer copy, destruction
        // is a no-op (see steal()/reset()).
        manage_ = nullptr;
      } else {
        manage_ = [](Storage& dst, Storage* src) {
          if (src != nullptr) {
            D* from = std::launder(reinterpret_cast<D*>(src->buf));
            ::new (static_cast<void*>(dst.buf)) D(std::move(*from));
            from->~D();
          } else {
            std::launder(reinterpret_cast<D*>(dst.buf))->~D();
          }
        };
      }
    } else {
      storage_.heap = new D(std::forward<F>(f));
      invoke_ = [](Storage& s, Args... args) {
        (*static_cast<D*>(s.heap))(args...);
      };
      manage_ = [](Storage& dst, Storage* src) {
        if (src != nullptr) {
          dst.heap = src->heap;  // pointer steal: no allocation on move
        } else {
          delete static_cast<D*>(dst.heap);
        }
      };
    }
  }

  /// Takes other's payload; assumes *this is empty. Leaves other empty.
  void steal(UniqueCallback& other) noexcept {
    if (other.manage_ != nullptr) {
      other.manage_(storage_, &other.storage_);
    } else if (other.invoke_ != nullptr) {
      // Trivial payload: a buffer copy is a valid move.
      std::memcpy(storage_.buf, other.storage_.buf, kInlineCapacity);
    }
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  Storage storage_;
  Invoke invoke_ = nullptr;
  Manage manage_ = nullptr;
};

/// The kernel's zero-argument timer/process callback.
using UniqueFunction = UniqueCallback<>;

}  // namespace btsc::sim
