// The simulation environment: scheduler, time wheel and kernel services.
//
// Scheduling follows the SystemC evaluate/update delta-cycle contract:
//
//   1. evaluate : run every runnable process to completion. Processes may
//                 write signals (queueing update requests), notify events
//                 and schedule timed callbacks.
//   2. update   : commit pending signal writes; signals whose value
//                 actually changed notify their value-changed events.
//   3. delta    : processes made runnable by step 2 (or by notify_delta in
//                 step 1) form the next evaluate set at the *same* time.
//   4. advance  : when no delta work remains, pop the earliest timed
//                 entries and repeat.
//
// The environment also owns the tracer (optional VCD output) and the root
// random stream, so a whole simulation is reproducible from one seed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/event.hpp"
#include "sim/process.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace btsc::sim {

class SignalBase;
class Tracer;

/// Handle for a scheduled one-shot callback, usable to cancel it.
using TimerId = std::uint64_t;
inline constexpr TimerId kInvalidTimer = 0;

class Environment {
 public:
  explicit Environment(std::uint64_t seed = 1);
  ~Environment();

  Environment(const Environment&) = delete;
  Environment& operator=(const Environment&) = delete;

  // ---- time ----
  SimTime now() const { return now_; }

  /// Runs until the timed queue is exhausted or `until` is reached
  /// (whichever comes first). Time ends up at min(until, last event).
  void run_until(SimTime until);

  /// Runs for `duration` from the current time.
  void run(SimTime duration) { run_until(now_ + duration); }

  /// Executes delta cycles at the current time until none remain, without
  /// advancing time. Used by tests and by models that need settled signals.
  void settle();

  /// True if nothing remains to execute.
  bool idle() const;

  // ---- process / event plumbing (used by Event, Signal, Module) ----
  void make_runnable(Process& p);
  void request_update(SignalBase& s);
  void notify_timed(Event& ev, SimTime abs_time);

  /// Schedules a one-shot callback at now()+delay (evaluate phase).
  /// Returns a TimerId that can be passed to cancel().
  TimerId schedule(SimTime delay, std::function<void()> fn);

  /// Cancels a previously scheduled callback; safe to call after it fired.
  void cancel(TimerId id);

  /// Registers a process owned by the caller's module; the environment
  /// stores it so sensitivity lists can reference stable addresses.
  Process& register_process(std::string name, std::function<void()> fn);

  // ---- services ----
  Rng& rng() { return rng_; }

  /// Attaches a VCD tracer (nullptr detaches). The environment does not
  /// own the tracer; it must outlive the simulation.
  void set_tracer(Tracer* t) { tracer_ = t; }
  Tracer* tracer() const { return tracer_; }

  // ---- diagnostics ----
  std::uint64_t delta_count() const { return delta_count_; }
  std::uint64_t process_activations() const { return activations_; }

 private:
  struct TimedEntry {
    SimTime when;
    std::uint64_t seq;  // FIFO order among same-time entries
    Event* event;       // either an event ...
    TimerId timer;      // ... or a callback (timer != 0)
    bool operator>(const TimedEntry& o) const {
      return when != o.when ? when > o.when : seq > o.seq;
    }
  };

  void run_delta();
  void commit_updates();
  void trigger(Event& ev);

  SimTime now_ = SimTime::zero();
  std::vector<Process*> runnable_;
  std::vector<Process*> next_runnable_;
  std::vector<SignalBase*> update_queue_;
  std::priority_queue<TimedEntry, std::vector<TimedEntry>,
                      std::greater<TimedEntry>>
      timed_;
  std::unordered_map<TimerId, std::function<void()>> timers_;
  std::uint64_t next_seq_ = 1;
  TimerId next_timer_ = 1;
  std::vector<std::unique_ptr<Process>> processes_;
  Rng rng_;
  Tracer* tracer_ = nullptr;
  std::uint64_t delta_count_ = 0;
  std::uint64_t activations_ = 0;
};

}  // namespace btsc::sim
