// The simulation environment: scheduler, time wheel and kernel services.
//
// Scheduling follows the SystemC evaluate/update delta-cycle contract:
//
//   1. evaluate : run every runnable process to completion. Processes may
//                 write signals (queueing update requests), notify events
//                 and schedule timed callbacks.
//   2. update   : commit pending signal writes; signals whose value
//                 actually changed notify their value-changed events.
//   3. delta    : processes made runnable by step 2 (or by notify_delta in
//                 step 1) form the next evaluate set at the *same* time.
//   4. advance  : when no delta work remains, pop the earliest timed
//                 entries and repeat.
//
// Timed queue
// -----------
// All timed work (one-shot callbacks and timed event notifications) lives
// in a single index-tracked 4-ary min-heap over a slab of timer nodes,
// ordered by (when, seq): seq is a global schedule counter, so same-time
// entries fire in FIFO order -- the determinism tiebreak every model
// relies on. Each slab node knows its heap position, which makes
// cancel() a true O(log n) *removal*: a canceled timer leaves no dead
// entry behind, so idle() is exact, run_until() never visits the
// timestamp of a fully-canceled instant, and queue memory is reclaimed
// immediately (slab slots are recycled through a free list -- steady-
// state scheduling performs no allocation beyond the callback's own
// captures). TimerId handles encode (slot, generation); the generation
// is bumped on every slot reuse, so a stale handle -- cancel after fire
// -- is recognised and ignored instead of killing an unrelated timer.
//
// Timers may carry an owner tag (see schedule()); cancel_owned() removes
// every live timer of one owner in a single call, which is how module
// state machines drop all their pending deferred actions on a state
// change without epoch-counter workarounds.
//
// The environment also owns the tracer (optional VCD output) and the root
// random stream, so a whole simulation is reproducible from one seed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/event.hpp"
#include "sim/process.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace btsc::sim {

class SignalBase;
class Tracer;

/// Handle for a scheduled one-shot callback, usable to cancel it.
/// Opaque encoding of (slab slot, generation); never 0 for a live timer.
using TimerId = std::uint64_t;
inline constexpr TimerId kInvalidTimer = 0;

class Environment {
 public:
  explicit Environment(std::uint64_t seed = 1);
  ~Environment();

  Environment(const Environment&) = delete;
  Environment& operator=(const Environment&) = delete;

  // ---- time ----
  SimTime now() const { return now_; }

  /// Runs until the timed queue is exhausted or `until` is reached
  /// (whichever comes first). Time ends up at min(until, last event).
  void run_until(SimTime until);

  /// Runs for `duration` from the current time.
  void run(SimTime duration) { run_until(now_ + duration); }

  /// Executes delta cycles at the current time until none remain, without
  /// advancing time. Used by tests and by models that need settled signals.
  void settle();

  /// True if nothing remains to execute. Canceled timers are physically
  /// removed from the queue, so they never hold this false.
  bool idle() const;

  // ---- process / event plumbing (used by Event, Signal, Module) ----
  void make_runnable(Process& p);
  void request_update(SignalBase& s);
  void notify_timed(Event& ev, SimTime abs_time);

  /// Schedules a one-shot callback at now()+delay (evaluate phase).
  /// Returns a TimerId that can be passed to cancel(). `owner` is an
  /// optional tag for bulk cancellation via cancel_owned(); it is never
  /// dereferenced.
  TimerId schedule(SimTime delay, std::function<void()> fn,
                   const void* owner = nullptr);

  /// Cancels a previously scheduled callback: removes its queue entry in
  /// O(log n). Safe (and a no-op) after the callback fired or for
  /// kInvalidTimer -- slot generations make stale handles inert even when
  /// the slot has been reused by a later timer.
  void cancel(TimerId id);

  /// Cancels every live timer scheduled with this owner tag. O(n) scan of
  /// the live queue plus O(log n) per removal; nullptr is a no-op.
  void cancel_owned(const void* owner);

  /// True while the timer is scheduled and has neither fired nor been
  /// canceled.
  bool pending(TimerId id) const;

  /// Registers a process owned by the caller's module; the environment
  /// stores it so sensitivity lists can reference stable addresses.
  Process& register_process(std::string name, std::function<void()> fn);

  // ---- services ----
  Rng& rng() { return rng_; }

  /// Attaches a VCD tracer (nullptr detaches). The environment does not
  /// own the tracer; it must outlive the simulation.
  void set_tracer(Tracer* t) { tracer_ = t; }
  Tracer* tracer() const { return tracer_; }

  // ---- diagnostics ----
  std::uint64_t delta_count() const { return delta_count_; }
  std::uint64_t process_activations() const { return activations_; }

  /// Timed-queue health counters. With true cancellation the queue holds
  /// live entries only, so `live` is the exact amount of pending timed
  /// work (the old kernel's dead-entry population is structurally zero;
  /// `canceled` counts the entries that would have rotted there).
  struct SchedulerStats {
    /// Heap pushes: one-shot callbacks plus timed event notifications.
    std::uint64_t scheduled = 0;
    /// Entries popped and dispatched at their instant.
    std::uint64_t fired = 0;
    /// Live entries physically removed by cancel()/cancel_owned().
    std::uint64_t canceled = 0;
    /// cancel() calls that found nothing (already fired / stale handle).
    std::uint64_t cancels_after_fire = 0;
    /// Current heap size (for the global aggregate: entries still live
    /// when their environment was destroyed).
    std::uint64_t live = 0;
    /// High-water heap size.
    std::uint64_t peak_live = 0;
    /// Levels of the 4-ary heap at the high-water mark.
    std::uint64_t peak_depth = 0;
  };
  SchedulerStats scheduler_stats() const;

  /// Process-wide aggregate over all destroyed environments (counters are
  /// summed, peak_live is the maximum). Thread-safe; used by the sweep
  /// reporter to surface kernel health across a whole Monte-Carlo grid.
  static SchedulerStats global_scheduler_stats();

 private:
  static constexpr std::size_t kHeapArity = 4;
  static constexpr std::uint32_t kNoHeapPos = ~std::uint32_t{0};

  /// One slab entry: a one-shot callback (event == nullptr) or a timed
  /// event notification. Nodes are recycled through a free list; `gen`
  /// distinguishes reuses so stale TimerIds cannot alias a new timer.
  struct TimerNode {
    std::uint32_t gen = 0;
    std::uint32_t heap_pos = kNoHeapPos;
    Event* event = nullptr;
    const void* owner = nullptr;
    std::function<void()> fn;
  };

  /// Heap entries carry the ordering key, so sift comparisons stay inside
  /// the heap array instead of chasing slab nodes.
  struct HeapEntry {
    SimTime when;
    std::uint64_t seq;  // FIFO order among same-time entries
    std::uint32_t slot;
  };

  void run_delta();
  void commit_updates();
  void trigger(Event& ev);

  static bool entry_before(const HeapEntry& a, const HeapEntry& b) {
    return a.when != b.when ? a.when < b.when : a.seq < b.seq;
  }
  static std::uint64_t heap_depth(std::uint64_t n);
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  void heap_place(std::size_t pos, const HeapEntry& e);
  void sift_up(std::size_t pos);
  void sift_down(std::size_t pos);
  void heap_push(SimTime when, std::uint32_t slot);
  void heap_remove_at(std::size_t pos);
  const TimerNode* find_live(TimerId id) const;

  SimTime now_ = SimTime::zero();
  std::vector<Process*> runnable_;
  std::vector<Process*> next_runnable_;
  std::vector<SignalBase*> update_queue_;
  std::vector<TimerNode> slab_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<HeapEntry> heap_;
  std::vector<std::uint32_t> cancel_scratch_;
  std::uint64_t next_seq_ = 1;
  std::vector<std::unique_ptr<Process>> processes_;
  Rng rng_;
  Tracer* tracer_ = nullptr;
  std::uint64_t delta_count_ = 0;
  std::uint64_t activations_ = 0;
  std::uint64_t scheduled_ = 0;
  std::uint64_t fired_ = 0;
  std::uint64_t canceled_ = 0;
  std::uint64_t cancels_after_fire_ = 0;
  std::uint64_t peak_live_ = 0;
};

}  // namespace btsc::sim
