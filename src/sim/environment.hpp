// The simulation environment: scheduler, timing wheel and kernel services.
//
// Scheduling follows the SystemC evaluate/update delta-cycle contract:
//
//   1. evaluate : run every runnable process to completion. Processes may
//                 write signals (queueing update requests), notify events
//                 and schedule timed callbacks.
//   2. update   : commit pending signal writes; signals whose value
//                 actually changed notify their value-changed events.
//   3. delta    : processes made runnable by step 2 (or by notify_delta in
//                 step 1) form the next evaluate set at the *same* time.
//   4. advance  : when no delta work remains, claim the earliest timed
//                 instant and repeat.
//
// Timed queue
// -----------
// All timed work (one-shot callbacks and timed event notifications) lives
// in a sim::TimerWheel (sim/timer_wheel.hpp): a three-level slot-grid
// timing wheel whose ring buckets give O(1) schedule/cancel for timers on
// the Bluetooth native grid (bit period, 312.5 us half-slot, 625 us
// slot), backed by the slot/generation 4-ary min-heap for off-grid and
// far-horizon timers. Dispatch preserves the exact (when, seq) total
// order of the heap-only kernel -- seq is a global schedule counter, so
// same-time entries fire in FIFO order, the determinism tiebreak every
// model relies on. Cancellation is true removal: a canceled timer leaves
// no dead entry behind, so idle() is exact, run_until() never visits the
// timestamp of a fully-canceled instant, and queue memory is reclaimed
// immediately. TimerId handles encode (slot, generation); a stale handle
// -- cancel after fire -- is recognised and ignored.
//
// Callbacks are sim::UniqueFunction (sim/unique_function.hpp): move-only
// with a 48-byte inline buffer, so steady-state scheduling performs zero
// heap allocations end to end -- no std::function capture allocation, no
// queue-node allocation (slab free list), no control-structure growth.
//
// Timers may carry an owner tag (see schedule()); cancel_owned() removes
// every live timer of one owner in a single call, which is how module
// state machines drop all their pending deferred actions on a state
// change without epoch-counter workarounds.
//
// The environment also owns the tracer (optional VCD output) and the root
// random stream, so a whole simulation is reproducible from one seed.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/cross_shard.hpp"
#include "sim/event.hpp"
#include "sim/process.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"
#include "sim/timer_wheel.hpp"
#include "sim/unique_function.hpp"

namespace btsc::sim {

class RearmHandler;
class SignalBase;
class SnapshotReader;
class SnapshotWriter;
class Tracer;

/// Hook fired immediately before any model-level draw from the
/// environment RNG (draw_bernoulli / draw_uniform / notify_rng_draw).
/// A phy::NoisyChannel with a pre-drawn error mask in flight registers
/// one of these: the hook is its chance to rewind the stream to the
/// per-bit draw order before the foreign draw lands (see
/// docs/ARCHITECTURE.md, "Batched error masks").
class RngGuard {
 public:
  virtual void rng_external_draw() = 0;

 protected:
  ~RngGuard() = default;
};

class Environment {
 public:
  explicit Environment(std::uint64_t seed = 1);
  ~Environment();

  Environment(const Environment&) = delete;
  Environment& operator=(const Environment&) = delete;

  // ---- time ----
  SimTime now() const { return now_; }

  /// Runs until the timed queue is exhausted or `until` is reached
  /// (whichever comes first). Time ends up at min(until, last event).
  void run_until(SimTime until);

  /// Runs for `duration` from the current time.
  void run(SimTime duration) { run_until(now_ + duration); }

  /// Executes delta cycles at the current time until none remain, without
  /// advancing time. Used by tests and by models that need settled signals.
  void settle();

  /// True if nothing remains to execute. Canceled timers are physically
  /// removed from the queue, so they never hold this false.
  bool idle() const;

  // ---- process / event plumbing (used by Event, Signal, Module) ----
  void make_runnable(Process& p);
  void request_update(SignalBase& s);
  void notify_timed(Event& ev, SimTime abs_time) {
    assert(abs_time >= now_);
    wheel_.schedule_event(now_, abs_time, ev);
  }

  /// Schedules a one-shot callback at now()+delay (evaluate phase).
  /// Returns a TimerId that can be passed to cancel(). `owner` is an
  /// optional tag for bulk cancellation via cancel_owned(); it is never
  /// dereferenced. The callback becomes a move-only UniqueFunction,
  /// constructed directly in the timer slab: captures up to 48 bytes
  /// are stored inline, so scheduling performs no heap allocation.
  template <typename F>
  TimerId schedule(SimTime delay, F&& fn, const void* owner = nullptr) {
    return wheel_.schedule_callback(now_, now_ + delay, std::forward<F>(fn),
                                    owner);
  }

  /// Schedules a re-armable one-shot callback at now()+delay. Identical
  /// dispatch semantics to schedule(), but the timer additionally
  /// carries a (kind, payload) descriptor (kind != 0) under an owner
  /// that has a RearmHandler registered (register_rearm): save_state()
  /// serializes the timer as that descriptor instead of its closure,
  /// and restore_state() re-creates it through the handler. Every timer
  /// that can be live at a checkpoint boundary must be scheduled
  /// through this path -- save_state() throws on plain schedule()d
  /// timers.
  template <typename F>
  TimerId schedule_tagged(SimTime delay, std::uint16_t kind,
                          std::uint64_t payload, F&& fn, const void* owner) {
    assert(owner != nullptr);
    assert(kind != 0);
    return wheel_.schedule_callback(now_, now_ + delay, std::forward<F>(fn),
                                    owner, kind, payload);
  }

  /// Cancels a previously scheduled callback: removes its queue entry in
  /// O(1) (wheel bucket) or O(log n) (overflow heap). Safe (and a no-op)
  /// after the callback fired or for kInvalidTimer -- slot generations
  /// make stale handles inert even when the slot has been reused by a
  /// later timer.
  void cancel(TimerId id) { wheel_.cancel(id); }

  /// Cancels every live timer scheduled with this owner tag. O(n) scan of
  /// the timer slab plus O(1)/O(log n) per removal; nullptr is a no-op.
  void cancel_owned(const void* owner) { wheel_.cancel_owned(owner); }

  /// True while the timer is scheduled and has neither fired nor been
  /// canceled.
  bool pending(TimerId id) const { return wheel_.pending(id); }

  /// Registers a process owned by the caller's module; the environment
  /// stores it so sensitivity lists can reference stable addresses. The
  /// behaviour is a move-only UniqueFunction -- process bootstrap never
  /// copies a capture.
  Process& register_process(std::string name, UniqueFunction fn);

  // ---- services ----
  Rng& rng() { return rng_; }

  /// Model-level RNG draws go through these wrappers instead of rng()
  /// directly: they fire the registered RngGuard first, so a channel
  /// holding a pre-drawn error mask can re-order its remaining draws
  /// back into per-bit order before this draw consumes the stream.
  bool draw_bernoulli(double p) {
    notify_rng_draw();
    return rng_.bernoulli(p);
  }
  std::uint64_t draw_uniform(std::uint64_t lo, std::uint64_t hi) {
    notify_rng_draw();
    return rng_.uniform(lo, hi);
  }

  /// Fires the guard without drawing — used by a channel about to bulk-
  /// fill its own mask straight from rng() (its fill is a foreign draw
  /// from every *other* guard's point of view).
  void notify_rng_draw() {
    if (rng_guard_ != nullptr) rng_guard_->rng_external_draw();
  }

  /// Registers the single RNG guard slot (nullptr clears). At most one
  /// guard is live at a time: a second masked run cannot start until the
  /// first one's guard has stood down (the notify_rng_draw() the second
  /// channel fires before filling its mask forces exactly that).
  void set_rng_guard(RngGuard* g) {
    assert(g == nullptr || rng_guard_ == nullptr);
    rng_guard_ = g;
  }
  RngGuard* rng_guard() const { return rng_guard_; }

  /// Attaches a VCD tracer (nullptr detaches). The environment does not
  /// own the tracer; it must outlive the simulation.
  void set_tracer(Tracer* t) { tracer_ = t; }
  Tracer* tracer() const { return tracer_; }

  /// Diagnostics switch for the wheel/heap equivalence suites: when
  /// disabled, every *future* schedule bypasses the wheel's ring buckets
  /// and uses the overflow heap alone (the pre-wheel kernel). Dispatch
  /// order is identical either way; only the cost model changes.
  void set_timer_wheel_enabled(bool enabled) {
    wheel_.set_wheel_enabled(enabled);
  }

  /// True while the kernel is executing a timed callback or a process
  /// (i.e. inside event dispatch). Model code uses this to decide
  /// whether an instant that equals now() has already been claimed by
  /// the queue: outside dispatch (between run() calls) every entry at
  /// <= now() has fired; inside dispatch, same-instant entries may still
  /// be pending. The burst transport's lazy catch-up boundaries depend
  /// on this distinction.
  bool dispatching() const { return dispatching_; }

  // ---- conservative parallel shards (sim/shard.hpp) ----

  /// Shard id within a ShardGroup (0 for a standalone environment).
  /// Stamped by ShardGroup::add_shard; carried in every CrossShardEvent
  /// this shard publishes, and the second key of the inbox merge order.
  std::uint32_t shard_id() const { return shard_id_; }
  void set_shard_id(std::uint32_t id) { shard_id_ = id; }

  /// Appends a cross-shard event (with the endpoint that will
  /// re-materialise it) to this shard's inbox. Called by the group's
  /// single-threaded exchange at a rendezvous barrier.
  void post_cross_shard(const CrossShardEvent& ev, CrossShardEndpoint* ep) {
    cross_inbox_.push_back(CrossInboxEntry{ev, ep});
  }

  /// Drains the inbox in (when, src_shard, seq) merge order, handing
  /// each event to its endpoint -- which schedules a local tagged
  /// timer at ev.when. Delivery happens between windows (outside
  /// dispatch), so dispatch order of the re-materialised timers is the
  /// kernel's usual (when, seq) total order with the merge order as
  /// the tiebreak -- a pure function of the configuration.
  void deliver_cross_shard();

  // ---- checkpoint / fork ----

  /// Registers `owner` as a re-armable timer source under a stable
  /// hierarchical name (its module name). The name -- not the pointer --
  /// is what snapshots carry, so a restored twin of the scenario maps
  /// saved descriptors back to its own instances. Throws SnapshotError
  /// on a duplicate name or owner. The handler must stay valid until
  /// unregister_rearm(owner).
  void register_rearm(std::string name, const void* owner,
                      RearmHandler* handler);
  void unregister_rearm(const void* owner);

  /// Serializes the kernel state: now, the RNG stream, and every
  /// pending timer as a re-armable (owner-name, kind, payload, when,
  /// seq) descriptor, in seq order, plus the seq allocator. Must be
  /// called at a settled instant (between run() calls); throws
  /// SnapshotError if delta work is pending, or if any live timer is an
  /// event notification, is untagged (kind 0), or has no registered
  /// owner.
  void save_state(SnapshotWriter& w) const;

  /// Counterpart of save_state() into a freshly constructed twin:
  /// restores now and the RNG, drops every construction-time timer, and
  /// replays the saved descriptors through their owners' RearmHandlers
  /// in saved-seq order, reproducing the exact (when, seq) dispatch
  /// total order of the checkpointed run. Module state must already be
  /// restored when this runs (handlers read it to rebuild callbacks).
  void restore_state(SnapshotReader& r);

  // ---- diagnostics ----
  std::uint64_t delta_count() const { return delta_count_; }
  std::uint64_t process_activations() const { return activations_; }

  /// Timed-queue health counters. With true cancellation the queue holds
  /// live entries only, so `live` is the exact amount of pending timed
  /// work (the old kernel's dead-entry population is structurally zero;
  /// `canceled` counts the entries that would have rotted there).
  struct SchedulerStats {
    /// Timed-queue inserts: one-shot callbacks plus timed event
    /// notifications (wheel_hits + heap_overflow == scheduled).
    std::uint64_t scheduled = 0;
    /// Entries popped and dispatched at their instant.
    std::uint64_t fired = 0;
    /// Live entries physically removed by cancel()/cancel_owned().
    std::uint64_t canceled = 0;
    /// cancel() calls that found nothing (already fired / stale handle).
    std::uint64_t cancels_after_fire = 0;
    /// Inserts that landed in an O(1) wheel bucket (timer on the slot
    /// grid, within a wheel horizon) -- the measured grid assumption.
    std::uint64_t wheel_hits = 0;
    /// Inserts that overflowed to the 4-ary heap (off-grid instant or
    /// beyond the 2.56 s horizon).
    std::uint64_t heap_overflow = 0;
    /// Current live timed entries (for the global aggregate: entries
    /// still live when their environment was destroyed).
    std::uint64_t live = 0;
    /// High-water live-entry count.
    std::uint64_t peak_live = 0;
    /// Levels a 4-ary heap of peak_live entries would span (the
    /// comparison cost the wheel's O(1) buckets avoid).
    std::uint64_t peak_depth = 0;
  };
  SchedulerStats scheduler_stats() const;

  /// Process-wide aggregate over all destroyed environments (counters are
  /// summed, peak_live is the maximum). Thread-safe; used by the sweep
  /// reporter to surface kernel health across a whole Monte-Carlo grid.
  static SchedulerStats global_scheduler_stats();

 private:
  void run_delta();
  void commit_updates();
  void trigger(Event& ev);
  static std::uint64_t heap_depth(std::uint64_t n);
  void require_settled(const char* verb) const;

  struct RearmEntry {
    std::string name;
    const void* owner;
    RearmHandler* handler;
  };
  const RearmEntry* find_rearm(const void* owner) const;
  const RearmEntry* find_rearm(const std::string& name) const;

  struct CrossInboxEntry {
    CrossShardEvent ev;
    CrossShardEndpoint* endpoint;
  };

  SimTime now_ = SimTime::zero();
  std::uint32_t shard_id_ = 0;
  std::vector<CrossInboxEntry> cross_inbox_;
  std::vector<Process*> runnable_;
  std::vector<Process*> next_runnable_;
  std::vector<SignalBase*> update_queue_;
  TimerWheel wheel_;
  std::vector<RearmEntry> rearm_entries_;
  std::vector<std::unique_ptr<Process>> processes_;
  Rng rng_;
  RngGuard* rng_guard_ = nullptr;
  Tracer* tracer_ = nullptr;
  bool dispatching_ = false;
  std::uint64_t delta_count_ = 0;
  std::uint64_t activations_ = 0;
};

}  // namespace btsc::sim
