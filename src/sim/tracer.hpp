// Waveform tracing (VCD).
//
// Signals register themselves with the tracer; every committed value
// change is recorded with the current simulation time. The output is a
// standard IEEE 1364 VCD file loadable in GTKWave -- this is how the
// repository reproduces the waveform figures (Fig. 5 and Fig. 9) of the
// paper.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace btsc::sim {

class Environment;

/// Identifier assigned to each traced signal.
using TraceId = std::uint32_t;

/// Abstract trace sink. SignalBase calls declare() once and change() on
/// every committed value change.
class Tracer {
 public:
  virtual ~Tracer() = default;

  /// Declares a signal. `width` is the bit width (1 => VCD scalar);
  /// `initial` (may be empty) is dumped as the time-zero value.
  /// Hierarchical names use '.' separators (e.g. "master.enable_rx_RF").
  virtual TraceId declare(const std::string& name, unsigned width,
                          const std::string& initial = std::string()) = 0;

  /// Records a value change. `value` is the bit string, MSB first; for
  /// scalars it is a single character from {0,1,x,z}.
  virtual void change(TraceId id, const std::string& value) = 0;
};

/// VCD file writer. Declarations must all happen before the first change
/// (i.e. construct all modules before running the simulation), which is
/// the natural elaboration-then-simulate order.
class VcdTracer final : public Tracer {
 public:
  /// `env` provides timestamps; `path` is the output file. Throws
  /// std::runtime_error if the file cannot be opened.
  VcdTracer(Environment& env, const std::string& path);
  ~VcdTracer() override;

  TraceId declare(const std::string& name, unsigned width,
                  const std::string& initial = std::string()) override;
  void change(TraceId id, const std::string& value) override;

  /// Flushes and closes the file (also done by the destructor).
  void close();

 private:
  void write_header();
  void emit_timestamp();
  static std::string vcd_id(TraceId id);

  struct Var {
    std::string name;
    unsigned width;
    std::string last;  // last emitted value, to suppress no-op changes
  };

  Environment& env_;
  std::ofstream out_;
  std::vector<Var> vars_;
  bool header_written_ = false;
  std::uint64_t last_ts_ = ~0ull;
};

/// In-memory tracer for tests: records (time, name, value) tuples.
class RecordingTracer final : public Tracer {
 public:
  struct Record {
    std::uint64_t time_ns;
    std::string name;
    std::string value;
  };

  explicit RecordingTracer(Environment& env) : env_(env) {}

  TraceId declare(const std::string& name, unsigned width,
                  const std::string& initial = std::string()) override;
  void change(TraceId id, const std::string& value) override;

  const std::vector<Record>& records() const { return records_; }

 private:
  Environment& env_;
  std::vector<std::string> names_;
  std::vector<Record> records_;
};

}  // namespace btsc::sim
