// Waveform tracing (VCD).
//
// Signals register themselves with the tracer; every committed value
// change is recorded with the current simulation time. The output is a
// standard IEEE 1364 VCD file loadable in GTKWave -- this is how the
// repository reproduces the waveform figures (Fig. 5 and Fig. 9) of the
// paper.
//
// Backfill
// --------
// The burst transport (phy::NoisyChannel) drives a whole packet as one
// run instead of one event per bit, so the traced bus transitions for
// the run's bits are generated after the fact, time-stamped from the
// run's geometry (change_at). To keep the file byte-identical to the
// per-bit reference, VcdTracer buffers changes and emits them in a
// canonical order -- sorted by (time, id), stable within a pair -- and
// a producer with backfill pending opens a *hold* (begin_hold/end_hold)
// so nothing at or after the run's start flushes before the backfill
// lands. Per-var duplicate suppression happens at flush time, in the
// canonical order, so it is insensitive to submission order too.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace btsc::sim {

class Environment;

/// Identifier assigned to each traced signal.
using TraceId = std::uint32_t;

/// Abstract trace sink. SignalBase calls declare() once and change() on
/// every committed value change.
class Tracer {
 public:
  virtual ~Tracer() = default;

  /// Declares a signal. `width` is the bit width (1 => VCD scalar);
  /// `initial` (may be empty) is dumped as the time-zero value.
  /// Hierarchical names use '.' separators (e.g. "master.enable_rx_RF").
  virtual TraceId declare(const std::string& name, unsigned width,
                          const std::string& initial = std::string()) = 0;

  /// Records a value change. `value` is the bit string, MSB first; for
  /// scalars it is a single character from {0,1,x,z}.
  virtual void change(TraceId id, const std::string& value) = 0;

  // ---- backfill (burst-run trace reconstruction) ----

  /// True when this tracer accepts time-stamped backfill (change_at under
  /// a hold window). The burst transport only batches traced packets when
  /// the attached tracer can take the reconstructed transitions; a sink
  /// without backfill (e.g. RecordingTracer) keeps the per-bit path.
  virtual bool supports_backfill() const { return false; }

  /// Records a change at an explicit past instant. Only meaningful while
  /// a hold opened at or before `time_ns` is in effect; tracers that do
  /// not support backfill ignore it.
  virtual void change_at(TraceId id, const std::string& value,
                         std::uint64_t time_ns) {
    (void)id;
    (void)value;
    (void)time_ns;
  }

  /// Brackets a window whose past instants may still receive change_at
  /// backfill. Holds nest (refcounted); a tracer must not emit anything
  /// time-stamped inside an open hold window until the hold ends.
  virtual void begin_hold() {}
  virtual void end_hold() {}
};

/// VCD file writer. Declarations must all happen before the first change
/// (i.e. construct all modules before running the simulation), which is
/// the natural elaboration-then-simulate order.
///
/// Changes are buffered and flushed in canonical (time, id) order once
/// simulation time has moved past them (and no hold is open), so
/// burst-run backfill interleaves exactly where the per-bit reference
/// would have written its changes.
class VcdTracer final : public Tracer {
 public:
  /// `env` provides timestamps; `path` is the output file. Throws
  /// std::runtime_error if the file cannot be opened.
  VcdTracer(Environment& env, const std::string& path);
  ~VcdTracer() override;

  TraceId declare(const std::string& name, unsigned width,
                  const std::string& initial = std::string()) override;
  void change(TraceId id, const std::string& value) override;

  bool supports_backfill() const override { return true; }
  void change_at(TraceId id, const std::string& value,
                 std::uint64_t time_ns) override;
  void begin_hold() override;
  void end_hold() override;

  /// Flushes every buffered change (holds notwithstanding) and closes
  /// the file (also done by the destructor). Producers with backfill
  /// pending must materialise it before closing (see
  /// NoisyChannel::flush_trace_backfill).
  void close();

 private:
  struct Pending {
    std::uint64_t time_ns;
    TraceId id;
    std::string value;
    std::uint64_t seq;  // insertion order; makes the flush order total
  };

  void write_header();
  /// Sorts the buffer and emits every entry with time < `limit_ns`.
  void flush_before(std::uint64_t limit_ns);
  static std::string vcd_id(TraceId id);

  struct Var {
    std::string name;
    unsigned width;
    std::string last;  // last emitted value, to suppress no-op changes
  };

  Environment& env_;
  std::ofstream out_;
  std::vector<Var> vars_;
  std::vector<Pending> pending_;
  std::uint64_t pending_seq_ = 0;
  int holds_ = 0;
  bool started_ = false;  // a change has been recorded; declare() closed
  bool header_written_ = false;
  std::uint64_t last_ts_ = ~0ull;
};

/// In-memory tracer for tests: records (time, name, value) tuples.
class RecordingTracer final : public Tracer {
 public:
  struct Record {
    std::uint64_t time_ns;
    std::string name;
    std::string value;
  };

  explicit RecordingTracer(Environment& env) : env_(env) {}

  TraceId declare(const std::string& name, unsigned width,
                  const std::string& initial = std::string()) override;
  void change(TraceId id, const std::string& value) override;

  const std::vector<Record>& records() const { return records_; }

 private:
  Environment& env_;
  std::vector<std::string> names_;
  std::vector<Record> records_;
};

}  // namespace btsc::sim
