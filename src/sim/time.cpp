#include "sim/time.hpp"

#include <cinttypes>
#include <cstdio>

namespace btsc::sim {

std::string SimTime::to_string() const {
  char buf[48];
  if (ns_ % 1'000'000'000u == 0) {
    std::snprintf(buf, sizeof buf, "%" PRIu64 " s", ns_ / 1'000'000'000u);
  } else if (ns_ % 1'000'000u == 0) {
    std::snprintf(buf, sizeof buf, "%" PRIu64 " ms", ns_ / 1'000'000u);
  } else if (ns_ % 1000u == 0) {
    std::snprintf(buf, sizeof buf, "%" PRIu64 " us", ns_ / 1000u);
  } else {
    std::snprintf(buf, sizeof buf, "%" PRIu64 " ns", ns_);
  }
  return buf;
}

std::ostream& operator<<(std::ostream& os, SimTime t) {
  return os << t.to_string();
}

}  // namespace btsc::sim
