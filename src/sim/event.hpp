// Events: the kernel's synchronisation primitive.
//
// Processes are statically sensitive to events; notifying an event makes
// all sensitive processes runnable in the *next* delta cycle (delta
// notification) or at a future time (timed notification). Immediate
// notification is intentionally not supported: it makes results depend on
// process execution order and is discouraged even in SystemC.
#pragma once

#include <string>
#include <vector>

#include "sim/time.hpp"

namespace btsc::sim {

class Environment;
class Process;

class Event {
 public:
  explicit Event(Environment& env, std::string name = "event")
      : env_(&env), name_(std::move(name)) {}

  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  const std::string& name() const { return name_; }

  /// Statically subscribes a process; it becomes runnable on every notify.
  void add_sensitive(Process& p) { waiters_.push_back(&p); }

  /// Makes all sensitive processes runnable in the next delta cycle.
  void notify_delta();

  /// Makes all sensitive processes runnable `delay` after the current time.
  void notify(SimTime delay);

 private:
  friend class Environment;
  Environment* env_;
  std::string name_;
  std::vector<Process*> waiters_;
};

}  // namespace btsc::sim
