// Conservative parallel shard execution.
//
// A ShardGroup runs N Environment shards in lockstep windows of length
// `lookahead`, the classic conservative (no-rollback) parallel DES
// scheme. The lookahead comes from the physics of the model: a drive
// change published at source time t cannot take effect anywhere else
// before t + rf_delay, so as long as every coupled channel's rf_delay
// is at least the group lookahead, a shard can execute a whole window
// [W, W + lookahead) without ever missing an incoming event. At the
// window boundary every shard stops at a rendezvous barrier, the
// group routes each shard's published CrossShardEvents to the other
// shards in the same coupling domain, each destination drains its
// inbox in (when, src_shard, seq) merge order, and the next window
// starts. No shard ever receives an event in its past, so there is no
// rollback machinery anywhere.
//
// Determinism
// -----------
// The exchange is the only point where shards interact, and it is
// driven entirely by values: publication order within a shard is the
// shard's own deterministic execution order (captured in `seq`), and
// the merged inbox is sorted by (when, src_shard, seq) before
// delivery. Same-instant cross-shard events therefore enter the
// destination's timed queue in a fixed order -- a pure function of
// the configuration -- regardless of how many worker lanes executed
// the window or how the OS scheduled them. Lane threads never share
// mutable state: each lane owns a disjoint set of shards for the
// whole run, and the barrier provides the happens-before edges for
// the single-threaded exchange in between.
//
// Zero lookahead
// --------------
// rf_delay == 0 (the paper's default) means zero lookahead, and a
// conservative scheme cannot run coupled shards in parallel with zero
// lookahead -- the window would be empty. ShardGroup refuses to run
// more than one shard in that case; the partitioning layer
// (core/partition.hpp) detects it up front and fuses the scenario
// into a single shard instead, which is exactly what keeps
// `--shards N` byte-identical to `--shards 1` on the paper studies.
#pragma once

#include <cstdint>
#include <exception>
#include <memory>
#include <thread>
#include <vector>

#include "sim/cross_shard.hpp"
#include "sim/environment.hpp"
#include "sim/time.hpp"

namespace btsc::sim {

/// Reusable N-party rendezvous barrier (generation-counting, so the
/// same object serves every window of the run). arrive_and_wait()
/// blocks until all parties of the current generation have arrived.
class ShardBarrier {
 public:
  explicit ShardBarrier(int parties);
  ~ShardBarrier();

  ShardBarrier(const ShardBarrier&) = delete;
  ShardBarrier& operator=(const ShardBarrier&) = delete;

  void arrive_and_wait();
  int parties() const { return parties_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  int parties_;
};

class ShardGroup {
 public:
  /// `lookahead` is the lockstep window length. It must be positive
  /// for any group that will hold more than one shard; a zero
  /// lookahead group can only ever run a single (trivially fused)
  /// shard.
  explicit ShardGroup(SimTime lookahead);
  ~ShardGroup();

  ShardGroup(const ShardGroup&) = delete;
  ShardGroup& operator=(const ShardGroup&) = delete;

  /// Registers `env` as the next shard and stamps its shard id
  /// (Environment::set_shard_id). All shards must be added before the
  /// first run and must sit at the same current time as the group.
  std::uint32_t add_shard(Environment& env);

  std::size_t num_shards() const { return shards_.size(); }
  SimTime lookahead() const { return lookahead_; }
  SimTime now() const { return now_; }
  Environment& shard_env(std::uint32_t shard) const;

  /// Couples `endpoint` (living on `shard`) into coupling `domain`.
  /// Every event published into the domain is delivered to every
  /// *other* bound endpoint of the same domain -- the source never
  /// hears its own publications back.
  void bind_endpoint(std::uint32_t domain, std::uint32_t shard,
                     CrossShardEndpoint* endpoint);

  /// True if `shard` has at least one remote peer in `domain` --
  /// i.e. events published from it will actually cross a boundary.
  bool coupled(std::uint32_t domain, std::uint32_t shard) const;

  /// Publishes a boundary-crossing event from `src_shard`. Called
  /// from inside the source shard's execution (possibly on a lane
  /// thread); appends to the source shard's private outbox, so no
  /// locking is needed. `when` must be at least the end of the
  /// current window (enforced at exchange time): with the rf_delay >=
  /// lookahead precondition this holds by construction.
  void publish(std::uint32_t domain, std::uint32_t src_shard, SimTime when,
               std::uint16_t kind, std::uint32_t port, std::int16_t freq,
               std::uint8_t value);

  /// Number of worker lanes for window execution. Shard i is pinned
  /// to lane i % lanes for the whole run, so results are invariant to
  /// the lane count. 1 (or a single shard) runs everything inline.
  void set_lanes(int lanes);
  int lanes() const { return lanes_; }

  /// Runs every shard to `until` in lockstep lookahead windows with a
  /// cross-shard exchange at each window boundary. Throws
  /// std::logic_error for a multi-shard group with zero lookahead.
  void run_until(SimTime until);
  void run(SimTime duration) { run_until(now_ + duration); }

  /// Re-reads the group clock from the shards after an external time
  /// change (snapshot restore). All shards must agree.
  void align_now();

  /// Sum of every shard's kernel counters, folded in shard order
  /// (stats are additive except peak_live/peak_depth, which take the
  /// max). Shard-count and lane-count invariant for a fixed plan.
  Environment::SchedulerStats scheduler_stats() const;

  /// Cross-shard exchange telemetry: events routed so far.
  std::uint64_t events_exchanged() const { return events_exchanged_; }

 private:
  struct Shard {
    Environment* env = nullptr;
    std::vector<CrossShardEvent> outbox;
    std::uint64_t pub_seq = 0;
  };
  struct Endpoint {
    std::uint32_t domain = 0;
    std::uint32_t shard = 0;
    CrossShardEndpoint* endpoint = nullptr;
  };

  int effective_lanes() const;
  void run_window(SimTime window_end);
  void run_lane(int lane, SimTime window_end);
  void exchange(SimTime window_end);
  void start_workers(int lanes);
  void stop_workers();

  SimTime lookahead_;
  SimTime now_ = SimTime::zero();
  int lanes_ = 1;
  std::vector<Shard> shards_;
  std::vector<Endpoint> endpoints_;
  std::uint64_t events_exchanged_ = 0;

  // Worker-lane machinery (created lazily on the first multi-lane
  // window; lane 0 is the calling thread).
  std::vector<std::thread> workers_;
  std::unique_ptr<ShardBarrier> start_barrier_;
  std::unique_ptr<ShardBarrier> end_barrier_;
  std::vector<std::exception_ptr> lane_errors_;
  SimTime window_end_ = SimTime::zero();
  bool stop_ = false;
};

}  // namespace btsc::sim
