// Method processes: the unit of executable behaviour in the kernel.
//
// A Process wraps a callback that is run (to completion, never suspended)
// whenever one of the events it is sensitive to fires -- the semantics of
// a SystemC SC_METHOD. Modules register processes through Module::method().
#pragma once

#include <string>
#include <utility>

#include "sim/unique_function.hpp"

namespace btsc::sim {

class Environment;

/// A run-to-completion callback triggered by event notifications. The
/// behaviour is a move-only UniqueFunction: registering a process never
/// copies its capture (and the capture may hold move-only state).
class Process {
 public:
  Process(std::string name, UniqueFunction fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  const std::string& name() const { return name_; }

  /// Invoked by the scheduler during the evaluate phase.
  void run() { fn_(); }

 private:
  friend class Environment;
  std::string name_;
  UniqueFunction fn_;
  // True while the process sits in a runnable queue; prevents the same
  // process from being queued twice in one delta when several of its
  // sensitivity events fire together.
  bool queued_ = false;
};

}  // namespace btsc::sim
