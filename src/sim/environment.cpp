#include "sim/environment.hpp"

#include <cassert>

#include "sim/signal.hpp"

namespace btsc::sim {

Environment::Environment(std::uint64_t seed) : rng_(seed) {}

Environment::~Environment() = default;

void Environment::make_runnable(Process& p) {
  if (p.queued_) return;
  p.queued_ = true;
  next_runnable_.push_back(&p);
}

void Environment::request_update(SignalBase& s) { update_queue_.push_back(&s); }

void Environment::notify_timed(Event& ev, SimTime abs_time) {
  assert(abs_time >= now_);
  timed_.push({abs_time, next_seq_++, &ev, kInvalidTimer});
}

TimerId Environment::schedule(SimTime delay, std::function<void()> fn) {
  const TimerId id = next_timer_++;
  timers_.emplace(id, std::move(fn));
  timed_.push({now_ + delay, next_seq_++, nullptr, id});
  return id;
}

void Environment::cancel(TimerId id) { timers_.erase(id); }

Process& Environment::register_process(std::string name,
                                       std::function<void()> fn) {
  processes_.push_back(
      std::make_unique<Process>(std::move(name), std::move(fn)));
  return *processes_.back();
}

void Environment::trigger(Event& ev) {
  for (Process* p : ev.waiters_) make_runnable(*p);
}

void Event::notify_delta() {
  for (Process* p : waiters_) env_->make_runnable(*p);
}

void Event::notify(SimTime delay) {
  env_->notify_timed(*this, env_->now() + delay);
}

void Environment::run_delta() {
  ++delta_count_;
  runnable_.swap(next_runnable_);
  next_runnable_.clear();
  // Evaluate phase.
  for (Process* p : runnable_) {
    p->queued_ = false;
    ++activations_;
    p->run();
  }
  runnable_.clear();
  // Update phase. commit() notifies value-changed events, which enqueue
  // into next_runnable_ for the following delta.
  for (SignalBase* s : update_queue_) s->commit();
  update_queue_.clear();
}

void Environment::commit_updates() {
  for (SignalBase* s : update_queue_) s->commit();
  update_queue_.clear();
}

void Environment::settle() {
  while (!next_runnable_.empty() || !update_queue_.empty()) run_delta();
}

bool Environment::idle() const {
  return next_runnable_.empty() && update_queue_.empty() && timed_.empty();
}

void Environment::run_until(SimTime until) {
  settle();
  while (!timed_.empty()) {
    const SimTime t = timed_.top().when;
    if (t > until) break;
    now_ = t;
    // Pop every entry scheduled for this instant, then settle all deltas.
    while (!timed_.empty() && timed_.top().when == now_) {
      TimedEntry entry = timed_.top();
      timed_.pop();
      if (entry.event != nullptr) {
        trigger(*entry.event);
      } else {
        auto it = timers_.find(entry.timer);
        if (it != timers_.end()) {
          // Move out first: the callback may schedule more timers and
          // invalidate the iterator.
          auto fn = std::move(it->second);
          timers_.erase(it);
          fn();
        }
      }
    }
    // The timed callbacks above form the evaluate phase of the first delta
    // at this instant; commit their signal writes before any process woken
    // by notify_delta() runs, per the evaluate/update contract.
    commit_updates();
    settle();
  }
  if (now_ < until) now_ = until;
}

}  // namespace btsc::sim
