#include "sim/environment.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>

#include "sim/signal.hpp"
#include "sim/snapshot.hpp"

namespace btsc::sim {

namespace {

/// Process-wide scheduler counters, folded in by ~Environment. The sweep
/// engine destroys every replication's environment on a worker thread,
/// hence atomics; sums and maxima of per-environment values are
/// independent of the thread interleaving, so the aggregate stays
/// deterministic at any thread count.
struct GlobalStats {
  std::atomic<std::uint64_t> scheduled{0};
  std::atomic<std::uint64_t> fired{0};
  std::atomic<std::uint64_t> canceled{0};
  std::atomic<std::uint64_t> cancels_after_fire{0};
  std::atomic<std::uint64_t> wheel_hits{0};
  std::atomic<std::uint64_t> heap_overflow{0};
  std::atomic<std::uint64_t> live_at_exit{0};
  std::atomic<std::uint64_t> peak_live{0};
};

GlobalStats& global_stats() {
  static GlobalStats g;
  return g;
}

void atomic_max(std::atomic<std::uint64_t>& a, std::uint64_t v) {
  std::uint64_t cur = a.load(std::memory_order_relaxed);
  while (cur < v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

Environment::Environment(std::uint64_t seed) : rng_(seed) {}

Environment::~Environment() {
  const TimerWheel::Stats w = wheel_.stats();
  GlobalStats& g = global_stats();
  g.scheduled.fetch_add(w.scheduled, std::memory_order_relaxed);
  g.fired.fetch_add(w.fired, std::memory_order_relaxed);
  g.canceled.fetch_add(w.canceled, std::memory_order_relaxed);
  g.cancels_after_fire.fetch_add(w.cancels_after_fire,
                                 std::memory_order_relaxed);
  g.wheel_hits.fetch_add(w.wheel_hits, std::memory_order_relaxed);
  g.heap_overflow.fetch_add(w.heap_overflow, std::memory_order_relaxed);
  g.live_at_exit.fetch_add(w.live, std::memory_order_relaxed);
  atomic_max(g.peak_live, w.peak_live);
}

void Environment::make_runnable(Process& p) {
  if (p.queued_) return;
  p.queued_ = true;
  next_runnable_.push_back(&p);
}

void Environment::request_update(SignalBase& s) { update_queue_.push_back(&s); }

// ---------------------------------------------------------------------------
// Processes, events, delta cycles (the timed queue itself is
// sim::TimerWheel; its hot path is inline in the headers)
// ---------------------------------------------------------------------------

Process& Environment::register_process(std::string name, UniqueFunction fn) {
  processes_.push_back(
      std::make_unique<Process>(std::move(name), std::move(fn)));
  return *processes_.back();
}

void Environment::trigger(Event& ev) {
  for (Process* p : ev.waiters_) make_runnable(*p);
}

void Event::notify_delta() {
  for (Process* p : waiters_) env_->make_runnable(*p);
}

void Event::notify(SimTime delay) {
  env_->notify_timed(*this, env_->now() + delay);
}

void Environment::run_delta() {
  ++delta_count_;
  runnable_.swap(next_runnable_);
  next_runnable_.clear();
  // Evaluate phase.
  dispatching_ = true;
  for (Process* p : runnable_) {
    p->queued_ = false;
    ++activations_;
    p->run();
  }
  dispatching_ = false;
  runnable_.clear();
  // Update phase. commit() notifies value-changed events, which enqueue
  // into next_runnable_ for the following delta.
  for (SignalBase* s : update_queue_) s->commit();
  update_queue_.clear();
}

void Environment::commit_updates() {
  for (SignalBase* s : update_queue_) s->commit();
  update_queue_.clear();
}

void Environment::settle() {
  while (!next_runnable_.empty() || !update_queue_.empty()) run_delta();
}

bool Environment::idle() const {
  return next_runnable_.empty() && update_queue_.empty() && wheel_.empty();
}

void Environment::run_until(SimTime until) {
  settle();
  while (!wheel_.empty()) {
    const SimTime t = wheel_.next_time(now_);
    if (t > until) break;
    now_ = t;
    // Pop-and-dispatch every entry due at this instant in (when, seq)
    // order. Callbacks may schedule more work at the same instant (their
    // seqs are larger than every live one, so they pop last) and may
    // cancel same-instant siblings (a canceled entry leaves its
    // container before its turn). pop_due moves the payload out and
    // releases the slot before dispatch: the callback may schedule more
    // timers, and its slot must be reusable (and its id stale) while it
    // runs.
    Event* ev = nullptr;
    UniqueFunction fn;
    while (wheel_.pop_due(t, ev, fn)) {
      if (ev != nullptr) {
        trigger(*ev);
      } else {
        dispatching_ = true;
        fn();
        dispatching_ = false;
        fn.reset();
      }
    }
    // The timed callbacks above form the evaluate phase of the first delta
    // at this instant; commit their signal writes before any process woken
    // by notify_delta() runs, per the evaluate/update contract.
    commit_updates();
    settle();
  }
  if (now_ < until) now_ = until;
}

// ---------------------------------------------------------------------------
// Conservative parallel shards
// ---------------------------------------------------------------------------

void Environment::deliver_cross_shard() {
  if (cross_inbox_.empty()) return;
  // Merge order: (when, src_shard, seq). Within one source shard the
  // seq order is the shard's own publication order; across shards the
  // shard id breaks same-instant ties. stable_sort keeps the routing
  // order as a final (never reached) tiebreak -- (src_shard, seq) is
  // already unique.
  std::stable_sort(cross_inbox_.begin(), cross_inbox_.end(),
                   [](const CrossInboxEntry& a, const CrossInboxEntry& b) {
                     if (a.ev.when != b.ev.when) return a.ev.when < b.ev.when;
                     if (a.ev.src_shard != b.ev.src_shard)
                       return a.ev.src_shard < b.ev.src_shard;
                     return a.ev.seq < b.ev.seq;
                   });
  // Endpoints schedule timers, never run model code, so draining with
  // a plain loop (no reentrancy guard) is safe: post_cross_shard is
  // only called by the group between windows.
  std::vector<CrossInboxEntry> inbox;
  inbox.swap(cross_inbox_);
  for (const CrossInboxEntry& e : inbox) e.endpoint->deliver_cross_shard(e.ev);
}

// ---------------------------------------------------------------------------
// Checkpoint / fork
// ---------------------------------------------------------------------------

void Environment::require_settled(const char* verb) const {
  if (dispatching_ || !next_runnable_.empty() || !update_queue_.empty()) {
    throw SnapshotError(std::string("environment: cannot ") + verb +
                        " at an unsettled instant (delta work pending)");
  }
}

const Environment::RearmEntry* Environment::find_rearm(
    const void* owner) const {
  for (const RearmEntry& e : rearm_entries_) {
    if (e.owner == owner) return &e;
  }
  return nullptr;
}

const Environment::RearmEntry* Environment::find_rearm(
    const std::string& name) const {
  for (const RearmEntry& e : rearm_entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

void Environment::register_rearm(std::string name, const void* owner,
                                 RearmHandler* handler) {
  assert(owner != nullptr && handler != nullptr);
  if (find_rearm(owner) != nullptr || find_rearm(name) != nullptr) {
    throw SnapshotError("environment: duplicate rearm registration: " + name);
  }
  rearm_entries_.push_back({std::move(name), owner, handler});
}

void Environment::unregister_rearm(const void* owner) {
  std::erase_if(rearm_entries_,
                [owner](const RearmEntry& e) { return e.owner == owner; });
}

void Environment::save_state(SnapshotWriter& w) const {
  require_settled("checkpoint");
  if (!cross_inbox_.empty()) {
    throw SnapshotError(
        "environment: undelivered cross-shard events at checkpoint");
  }
  struct Desc {
    const std::string* name;
    std::uint16_t kind;
    std::uint64_t payload;
    SimTime when;
    std::uint64_t seq;
  };
  std::vector<Desc> descs;
  descs.reserve(wheel_.live());
  wheel_.for_each_live([&](const void* owner, std::uint16_t kind,
                           std::uint64_t payload, SimTime when,
                           std::uint64_t seq, bool is_event) {
    if (is_event) {
      throw SnapshotError(
          "environment: timed event notification live at checkpoint");
    }
    if (kind == 0) {
      throw SnapshotError(
          "environment: opaque (untagged) timer live at checkpoint");
    }
    const RearmEntry* e = find_rearm(owner);
    if (e == nullptr) {
      throw SnapshotError(
          "environment: live timer owner has no rearm registration");
    }
    descs.push_back({&e->name, kind, payload, when, seq});
  });
  std::sort(descs.begin(), descs.end(),
            [](const Desc& a, const Desc& b) { return a.seq < b.seq; });
  w.begin_section(snapshot_tag("ENV "));
  w.time(now_);
  for (const std::uint64_t word : rng_.state()) w.u64(word);
  w.u32(static_cast<std::uint32_t>(descs.size()));
  for (const Desc& d : descs) {
    w.str(*d.name);
    w.u16(d.kind);
    w.u64(d.payload);
    w.time(d.when);
    w.u64(d.seq);
  }
  w.u64(wheel_.next_seq());
  w.end_section();
}

void Environment::restore_state(SnapshotReader& r) {
  require_settled("restore");
  r.enter_section(snapshot_tag("ENV "));
  now_ = r.time();
  std::array<std::uint64_t, 4> s;
  for (std::uint64_t& word : s) word = r.u64();
  rng_.set_state(s);
  // Construction-time timers of the fresh scaffold are superseded by the
  // saved descriptors; replaying each at its saved seq reproduces the
  // checkpointed (when, seq) dispatch total order exactly.
  wheel_.clear();
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::string name = r.str();
    const std::uint16_t kind = r.u16();
    const std::uint64_t payload = r.u64();
    const SimTime when = r.time();
    const std::uint64_t seq = r.u64();
    if (when < now_) throw SnapshotError("environment: timer in the past");
    const RearmEntry* e = find_rearm(name);
    if (e == nullptr) {
      throw SnapshotError("environment: no rearm registration for \"" + name +
                          "\" in the restored scenario");
    }
    wheel_.set_next_seq(seq);
    e->handler->rearm_timer(kind, payload, when);
    if (wheel_.next_seq() != seq + 1) {
      throw SnapshotError(
          "environment: rearm handler for \"" + name +
          "\" did not schedule exactly one timer (kind " +
          std::to_string(kind) + ")");
    }
  }
  wheel_.set_next_seq(r.u64());
  r.leave_section();
}

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

std::uint64_t Environment::heap_depth(std::uint64_t n) {
  std::uint64_t depth = 0, capacity = 0, level = 1;
  while (capacity < n) {
    capacity += level;
    level *= 4;  // the overflow heap's arity
    ++depth;
  }
  return depth;
}

Environment::SchedulerStats Environment::scheduler_stats() const {
  const TimerWheel::Stats w = wheel_.stats();
  SchedulerStats s;
  s.scheduled = w.scheduled;
  s.fired = w.fired;
  s.canceled = w.canceled;
  s.cancels_after_fire = w.cancels_after_fire;
  s.wheel_hits = w.wheel_hits;
  s.heap_overflow = w.heap_overflow;
  s.live = w.live;
  s.peak_live = w.peak_live;
  s.peak_depth = heap_depth(w.peak_live);
  return s;
}

Environment::SchedulerStats Environment::global_scheduler_stats() {
  const GlobalStats& g = global_stats();
  SchedulerStats s;
  s.scheduled = g.scheduled.load(std::memory_order_relaxed);
  s.fired = g.fired.load(std::memory_order_relaxed);
  s.canceled = g.canceled.load(std::memory_order_relaxed);
  s.cancels_after_fire = g.cancels_after_fire.load(std::memory_order_relaxed);
  s.wheel_hits = g.wheel_hits.load(std::memory_order_relaxed);
  s.heap_overflow = g.heap_overflow.load(std::memory_order_relaxed);
  s.live = g.live_at_exit.load(std::memory_order_relaxed);
  s.peak_live = g.peak_live.load(std::memory_order_relaxed);
  s.peak_depth = heap_depth(s.peak_live);
  return s;
}

}  // namespace btsc::sim
