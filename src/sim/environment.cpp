#include "sim/environment.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>

#include "sim/signal.hpp"

namespace btsc::sim {

namespace {

/// Process-wide scheduler counters, folded in by ~Environment. The sweep
/// engine destroys every replication's environment on a worker thread,
/// hence atomics; sums and maxima of per-environment values are
/// independent of the thread interleaving, so the aggregate stays
/// deterministic at any thread count.
struct GlobalStats {
  std::atomic<std::uint64_t> scheduled{0};
  std::atomic<std::uint64_t> fired{0};
  std::atomic<std::uint64_t> canceled{0};
  std::atomic<std::uint64_t> cancels_after_fire{0};
  std::atomic<std::uint64_t> live_at_exit{0};
  std::atomic<std::uint64_t> peak_live{0};
};

GlobalStats& global_stats() {
  static GlobalStats g;
  return g;
}

void atomic_max(std::atomic<std::uint64_t>& a, std::uint64_t v) {
  std::uint64_t cur = a.load(std::memory_order_relaxed);
  while (cur < v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

/// TimerId layout: generation in the high 32 bits, slot+1 in the low 32
/// (the +1 keeps every live id distinct from kInvalidTimer).
constexpr TimerId make_id(std::uint32_t slot, std::uint32_t gen) {
  return (static_cast<TimerId>(gen) << 32) |
         (static_cast<TimerId>(slot) + 1);
}

}  // namespace

Environment::Environment(std::uint64_t seed) : rng_(seed) {}

Environment::~Environment() {
  GlobalStats& g = global_stats();
  g.scheduled.fetch_add(scheduled_, std::memory_order_relaxed);
  g.fired.fetch_add(fired_, std::memory_order_relaxed);
  g.canceled.fetch_add(canceled_, std::memory_order_relaxed);
  g.cancels_after_fire.fetch_add(cancels_after_fire_,
                                 std::memory_order_relaxed);
  g.live_at_exit.fetch_add(heap_.size(), std::memory_order_relaxed);
  atomic_max(g.peak_live, peak_live_);
}

void Environment::make_runnable(Process& p) {
  if (p.queued_) return;
  p.queued_ = true;
  next_runnable_.push_back(&p);
}

void Environment::request_update(SignalBase& s) { update_queue_.push_back(&s); }

// ---------------------------------------------------------------------------
// Timed queue: slab + index-tracked 4-ary min-heap
// ---------------------------------------------------------------------------

std::uint32_t Environment::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  slab_.emplace_back();
  return static_cast<std::uint32_t>(slab_.size() - 1);
}

void Environment::release_slot(std::uint32_t slot) {
  TimerNode& n = slab_[slot];
  ++n.gen;  // retire every outstanding TimerId for this slot
  n.heap_pos = kNoHeapPos;
  n.event = nullptr;
  n.owner = nullptr;
  n.fn = nullptr;
  free_slots_.push_back(slot);
}

void Environment::heap_place(std::size_t pos, const HeapEntry& e) {
  heap_[pos] = e;
  slab_[e.slot].heap_pos = static_cast<std::uint32_t>(pos);
}

void Environment::sift_up(std::size_t pos) {
  const HeapEntry moving = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / kHeapArity;
    if (!entry_before(moving, heap_[parent])) break;
    heap_place(pos, heap_[parent]);
    pos = parent;
  }
  heap_place(pos, moving);
}

void Environment::sift_down(std::size_t pos) {
  const HeapEntry moving = heap_[pos];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = kHeapArity * pos + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + kHeapArity, n);
    for (std::size_t c = first + 1; c < last; ++c) {
      if (entry_before(heap_[c], heap_[best])) best = c;
    }
    if (!entry_before(heap_[best], moving)) break;
    heap_place(pos, heap_[best]);
    pos = best;
  }
  heap_place(pos, moving);
}

void Environment::heap_push(SimTime when, std::uint32_t slot) {
  heap_.push_back({when, next_seq_++, slot});
  slab_[slot].heap_pos = static_cast<std::uint32_t>(heap_.size() - 1);
  sift_up(heap_.size() - 1);
  ++scheduled_;
  if (heap_.size() > peak_live_) peak_live_ = heap_.size();
}

void Environment::heap_remove_at(std::size_t pos) {
  assert(pos < heap_.size());
  const std::size_t last = heap_.size() - 1;
  if (pos == last) {
    heap_.pop_back();
    return;
  }
  heap_[pos] = heap_[last];
  heap_.pop_back();
  // The displaced entry may belong above or below `pos`; both sifts end
  // by re-placing it (fixing its heap_pos) even when it does not move.
  if (pos > 0 && entry_before(heap_[pos], heap_[(pos - 1) / kHeapArity])) {
    sift_up(pos);
  } else {
    sift_down(pos);
  }
}

const Environment::TimerNode* Environment::find_live(TimerId id) const {
  const std::uint32_t lo = static_cast<std::uint32_t>(id);
  if (lo == 0) return nullptr;
  const std::uint32_t slot = lo - 1;
  if (slot >= slab_.size()) return nullptr;
  const TimerNode& n = slab_[slot];
  if (n.gen != static_cast<std::uint32_t>(id >> 32)) return nullptr;
  assert(n.heap_pos != kNoHeapPos);  // live generation => in the heap
  assert(n.event == nullptr);        // ids are only minted for callbacks
  return &n;
}

void Environment::notify_timed(Event& ev, SimTime abs_time) {
  assert(abs_time >= now_);
  const std::uint32_t slot = acquire_slot();
  slab_[slot].event = &ev;
  heap_push(abs_time, slot);
}

TimerId Environment::schedule(SimTime delay, std::function<void()> fn,
                              const void* owner) {
  const std::uint32_t slot = acquire_slot();
  TimerNode& n = slab_[slot];
  n.owner = owner;
  n.fn = std::move(fn);
  const TimerId id = make_id(slot, n.gen);
  heap_push(now_ + delay, slot);
  return id;
}

void Environment::cancel(TimerId id) {
  if (id == kInvalidTimer) return;
  const TimerNode* n = find_live(id);
  if (n == nullptr) {
    ++cancels_after_fire_;
    return;
  }
  heap_remove_at(n->heap_pos);
  release_slot(static_cast<std::uint32_t>(id) - 1);
  ++canceled_;
}

void Environment::cancel_owned(const void* owner) {
  if (owner == nullptr) return;
  cancel_scratch_.clear();
  for (const HeapEntry& e : heap_) {
    if (slab_[e.slot].owner == owner) cancel_scratch_.push_back(e.slot);
  }
  for (const std::uint32_t slot : cancel_scratch_) {
    heap_remove_at(slab_[slot].heap_pos);
    release_slot(slot);
    ++canceled_;
  }
}

bool Environment::pending(TimerId id) const {
  return find_live(id) != nullptr;
}

// ---------------------------------------------------------------------------
// Processes, events, delta cycles
// ---------------------------------------------------------------------------

Process& Environment::register_process(std::string name,
                                       std::function<void()> fn) {
  processes_.push_back(
      std::make_unique<Process>(std::move(name), std::move(fn)));
  return *processes_.back();
}

void Environment::trigger(Event& ev) {
  for (Process* p : ev.waiters_) make_runnable(*p);
}

void Event::notify_delta() {
  for (Process* p : waiters_) env_->make_runnable(*p);
}

void Event::notify(SimTime delay) {
  env_->notify_timed(*this, env_->now() + delay);
}

void Environment::run_delta() {
  ++delta_count_;
  runnable_.swap(next_runnable_);
  next_runnable_.clear();
  // Evaluate phase.
  for (Process* p : runnable_) {
    p->queued_ = false;
    ++activations_;
    p->run();
  }
  runnable_.clear();
  // Update phase. commit() notifies value-changed events, which enqueue
  // into next_runnable_ for the following delta.
  for (SignalBase* s : update_queue_) s->commit();
  update_queue_.clear();
}

void Environment::commit_updates() {
  for (SignalBase* s : update_queue_) s->commit();
  update_queue_.clear();
}

void Environment::settle() {
  while (!next_runnable_.empty() || !update_queue_.empty()) run_delta();
}

bool Environment::idle() const {
  return next_runnable_.empty() && update_queue_.empty() && heap_.empty();
}

void Environment::run_until(SimTime until) {
  settle();
  while (!heap_.empty()) {
    const SimTime t = heap_[0].when;
    if (t > until) break;
    now_ = t;
    // Pop every entry scheduled for this instant, then settle all deltas.
    // Only live entries exist, so every visited instant dispatches work.
    while (!heap_.empty() && heap_[0].when == now_) {
      const std::uint32_t slot = heap_[0].slot;
      heap_remove_at(0);
      TimerNode& node = slab_[slot];
      ++fired_;
      if (node.event != nullptr) {
        Event* ev = node.event;
        release_slot(slot);
        trigger(*ev);
      } else {
        // Move out first: the callback may schedule more timers, and its
        // slot must be reusable (and its id stale) while it runs.
        auto fn = std::move(node.fn);
        release_slot(slot);
        fn();
      }
    }
    // The timed callbacks above form the evaluate phase of the first delta
    // at this instant; commit their signal writes before any process woken
    // by notify_delta() runs, per the evaluate/update contract.
    commit_updates();
    settle();
  }
  if (now_ < until) now_ = until;
}

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

std::uint64_t Environment::heap_depth(std::uint64_t n) {
  std::uint64_t depth = 0, capacity = 0, level = 1;
  while (capacity < n) {
    capacity += level;
    level *= kHeapArity;
    ++depth;
  }
  return depth;
}

Environment::SchedulerStats Environment::scheduler_stats() const {
  SchedulerStats s;
  s.scheduled = scheduled_;
  s.fired = fired_;
  s.canceled = canceled_;
  s.cancels_after_fire = cancels_after_fire_;
  s.live = heap_.size();
  s.peak_live = peak_live_;
  s.peak_depth = heap_depth(peak_live_);
  return s;
}

Environment::SchedulerStats Environment::global_scheduler_stats() {
  const GlobalStats& g = global_stats();
  SchedulerStats s;
  s.scheduled = g.scheduled.load(std::memory_order_relaxed);
  s.fired = g.fired.load(std::memory_order_relaxed);
  s.canceled = g.canceled.load(std::memory_order_relaxed);
  s.cancels_after_fire = g.cancels_after_fire.load(std::memory_order_relaxed);
  s.live = g.live_at_exit.load(std::memory_order_relaxed);
  s.peak_live = g.peak_live.load(std::memory_order_relaxed);
  s.peak_depth = heap_depth(s.peak_live);
  return s;
}

}  // namespace btsc::sim
