#include "service/job.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <sstream>

namespace btsc::service {
namespace {

[[noreturn]] void fail(const std::string& why) { throw JobError(why); }

/// Cursor over one protocol line.
struct Cursor {
  const std::string& s;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t' ||
                              s[pos] == '\r' || s[pos] == '\n')) {
      ++pos;
    }
  }
  bool eof() {
    skip_ws();
    return pos >= s.size();
  }
  char peek() {
    skip_ws();
    if (pos >= s.size()) fail("json: unexpected end of input");
    return s[pos];
  }
  char take() {
    const char c = peek();
    ++pos;
    return c;
  }
  void expect(char c) {
    const char got = take();
    if (got != c) {
      fail(std::string("json: expected '") + c + "', got '" + got + "'");
    }
  }
  bool consume_literal(const char* lit) {
    skip_ws();
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (s.compare(pos, n, lit) != 0) return false;
    pos += n;
    return true;
  }
};

std::string parse_string(Cursor& c) {
  c.expect('"');
  std::string out;
  for (;;) {
    if (c.pos >= c.s.size()) fail("json: unterminated string");
    const char ch = c.s[c.pos++];
    if (ch == '"') return out;
    if (ch != '\\') {
      out.push_back(ch);
      continue;
    }
    if (c.pos >= c.s.size()) fail("json: unterminated escape");
    const char esc = c.s[c.pos++];
    switch (esc) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case '/': out.push_back('/'); break;
      case 'b': out.push_back('\b'); break;
      case 'f': out.push_back('\f'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      case 't': out.push_back('\t'); break;
      case 'u': {
        if (c.pos + 4 > c.s.size()) fail("json: truncated \\u escape");
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
          const char h = c.s[c.pos++];
          code <<= 4;
          if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
          else fail("json: bad \\u escape");
        }
        // The protocol is ASCII in practice; encode BMP code points as
        // UTF-8 so round-trips are lossless anyway.
        if (code < 0x80) {
          out.push_back(static_cast<char>(code));
        } else if (code < 0x800) {
          out.push_back(static_cast<char>(0xC0 | (code >> 6)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
          out.push_back(static_cast<char>(0xE0 | (code >> 12)));
          out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
        break;
      }
      default:
        fail("json: unknown escape");
    }
  }
}

JsonValue parse_value(Cursor& c) {
  JsonValue v;
  const char ch = c.peek();
  if (ch == '"') {
    v.kind = JsonValue::Kind::kString;
    v.text = parse_string(c);
    return v;
  }
  if (ch == '{' || ch == '[') {
    fail("json: nested objects/arrays are not part of the job protocol");
  }
  if (c.consume_literal("true")) {
    v.kind = JsonValue::Kind::kBool;
    v.boolean = true;
    return v;
  }
  if (c.consume_literal("false")) {
    v.kind = JsonValue::Kind::kBool;
    v.boolean = false;
    return v;
  }
  if (c.consume_literal("null")) {
    v.kind = JsonValue::Kind::kNull;
    return v;
  }
  // Number: take the maximal [-+0-9.eE] run and validate lazily in the
  // typed accessors.
  const std::size_t start = c.pos;
  while (c.pos < c.s.size()) {
    const char d = c.s[c.pos];
    if ((d >= '0' && d <= '9') || d == '-' || d == '+' || d == '.' ||
        d == 'e' || d == 'E') {
      ++c.pos;
    } else {
      break;
    }
  }
  if (c.pos == start) fail("json: unexpected character");
  v.kind = JsonValue::Kind::kNumber;
  v.text = c.s.substr(start, c.pos - start);
  return v;
}

}  // namespace

std::uint64_t JsonValue::as_u64(const std::string& key) const {
  if (kind != Kind::kNumber) fail("field '" + key + "' must be a number");
  if (!text.empty() && text[0] == '-') {
    fail("field '" + key + "' must be non-negative");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0') {
    fail("field '" + key + "' must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(v);
}

int JsonValue::as_int(const std::string& key) const {
  if (kind != Kind::kNumber) fail("field '" + key + "' must be a number");
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0' || v < -1000000000 ||
      v > 1000000000) {
    fail("field '" + key + "' must be an integer");
  }
  return static_cast<int>(v);
}

double JsonValue::as_double(const std::string& key) const {
  if (kind != Kind::kNumber) fail("field '" + key + "' must be a number");
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (errno != 0 || end == text.c_str() || *end != '\0') {
    fail("field '" + key + "' must be a number");
  }
  return v;
}

bool JsonValue::as_bool(const std::string& key) const {
  if (kind != Kind::kBool) fail("field '" + key + "' must be true/false");
  return boolean;
}

const std::string& JsonValue::as_string(const std::string& key) const {
  if (kind != Kind::kString) fail("field '" + key + "' must be a string");
  return text;
}

JsonObject parse_json_object(const std::string& line) {
  Cursor c{line};
  c.expect('{');
  JsonObject obj;
  if (c.peek() == '}') {
    c.take();
  } else {
    for (;;) {
      const std::string key = parse_string(c);
      c.expect(':');
      if (!obj.emplace(key, parse_value(c)).second) {
        fail("json: duplicate key '" + key + "'");
      }
      const char sep = c.take();
      if (sep == ',') continue;
      if (sep == '}') break;
      fail("json: expected ',' or '}'");
    }
  }
  if (!c.eof()) fail("json: trailing bytes after object");
  return obj;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  return out;
}

JobSpec job_from_json(const JsonObject& obj, const std::string& allow_extra) {
  JobSpec spec;
  bool have_id = false, have_scenario = false;
  for (const auto& [key, val] : obj) {
    if (key == allow_extra) continue;
    if (key == "id") {
      spec.id = val.as_string(key);
      have_id = true;
    } else if (key == "scenario") {
      spec.scenario = val.as_string(key);
      have_scenario = true;
    } else if (key == "threads") {
      spec.threads = val.as_int(key);
    } else if (key == "replications") {
      spec.replications = val.as_int(key);
    } else if (key == "quick") {
      spec.quick = val.as_bool(key);
    } else if (key == "base_seed") {
      spec.base_seed = val.as_u64(key);
    } else if (key == "max_points") {
      spec.max_points = val.as_int(key);
    } else if (key == "warmup") {
      spec.warmup = val.as_string(key);
    } else if (key == "rep_timeout_s") {
      spec.rep_timeout_s = val.as_double(key);
    } else if (key == "max_retries") {
      spec.max_retries = val.as_int(key);
    } else if (key == "keep_going") {
      spec.keep_going = val.as_bool(key);
    } else {
      fail("unknown job field '" + key + "'");
    }
  }
  if (!have_id || spec.id.empty()) fail("job is missing a non-empty 'id'");
  if (spec.id.size() > 64) fail("job id longer than 64 characters");
  for (const char ch : spec.id) {
    if (!std::isalnum(static_cast<unsigned char>(ch)) && ch != '.' &&
        ch != '_' && ch != '-') {
      fail("job id may only contain [A-Za-z0-9._-]: '" + spec.id + "'");
    }
  }
  if (!have_scenario || spec.scenario.empty()) {
    fail("job '" + spec.id + "' is missing a 'scenario'");
  }
  if (spec.warmup != "legacy" && spec.warmup != "cold" &&
      spec.warmup != "fork") {
    fail("job '" + spec.id + "': warmup must be legacy/cold/fork, got '" +
         spec.warmup + "'");
  }
  if (spec.threads < 0 || spec.replications < 0 || spec.max_points < 0 ||
      spec.max_retries < 0) {
    fail("job '" + spec.id + "': negative counts are invalid");
  }
  return spec;
}

JobSpec parse_job_line(const std::string& line) {
  return job_from_json(parse_json_object(line));
}

std::string format_job_line(const JobSpec& spec) {
  std::ostringstream out;
  out << "{\"id\": \"" << json_escape(spec.id) << "\", \"scenario\": \""
      << json_escape(spec.scenario) << "\", \"threads\": " << spec.threads
      << ", \"replications\": " << spec.replications << ", \"quick\": "
      << (spec.quick ? "true" : "false")
      << ", \"base_seed\": " << spec.base_seed
      << ", \"max_points\": " << spec.max_points << ", \"warmup\": \""
      << json_escape(spec.warmup)
      << "\", \"rep_timeout_s\": " << spec.rep_timeout_s
      << ", \"max_retries\": " << spec.max_retries << ", \"keep_going\": "
      << (spec.keep_going ? "true" : "false") << "}";
  return out.str();
}

}  // namespace btsc::service
