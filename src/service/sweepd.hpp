// btsc-sweepd: the fault-tolerant sweep service.
//
// A long-running job queue over the runner/ sweep engine. Jobs arrive
// as line-delimited JSON (Unix-domain socket or a batch job file), run
// on a bounded worker pool with per-job journals and SweepOptions
// supervision, and emit one JSON artifact per job — byte-identical to
// what `btsc-sweep --scenario X --out job.json` would have written.
//
// Crash-only design
// -----------------
// Every state transition is an atomic filesystem operation in the jobs
// directory; the in-memory queue is a pure cache of it:
//
//   <id>.job             durable accept (temp+fsync+rename BEFORE the
//                        client is acked) — the job now survives SIGKILL
//   <id>.journal         per-replication commits (fsync'd, append-only)
//   <id>.progress.jsonl  advisory per-replication commit stream
//   <id>.json            final artifact (atomic rename: existence ==
//                        completeness)
//   <id>.quarantine.json quarantine report of a supervised job
//   <id>.error.json      terminal job failure (bad scenario, poisoned
//                        journal...) — recovery skips, operators inspect
//
// Recovery is therefore a directory scan: a .job without .json or
// .error.json is incomplete and re-enqueues with resume=true; committed
// replications replay from the journal, so restart never re-runs paid
// work and the final artifact is byte-identical to an uninterrupted run
// (the integration kill matrix gates this at 1/2/8 threads).
//
// Drain (SIGTERM) is cooperative: stop accepting, stop CLAIMING new
// replications, finish+journal the in-flight ones, exit 0 without
// writing partial artifacts. SIGKILL needs no handler at all — that is
// the crash-only argument.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/job.hpp"

namespace btsc::service {

struct ServiceConfig {
  /// Job state directory (created if missing). Required.
  std::string jobs_dir;
  /// Durable warm-up checkpoint cache shared by all fork-warmup jobs.
  /// Empty = <jobs_dir>/checkpoints.
  std::string checkpoint_dir;
  /// Concurrent jobs (each job additionally runs its own sweep threads).
  int workers = 1;
  /// Backpressure: submissions beyond this many queued jobs are rejected
  /// with a reason (never silently dropped or blocked).
  std::size_t queue_limit = 16;
  /// LRU byte budget over checkpoint_dir's .ckpt files; oldest-mtime
  /// checkpoints are evicted after each job while over budget. 0 = no
  /// eviction.
  std::uint64_t cache_budget_bytes = 0;
  /// Optional external terminate flag (the CLI's signal handler sets
  /// it); serve()/wait_idle() poll it and translate it into drain().
  const std::atomic<bool>* terminate = nullptr;
};

enum class JobState : std::uint8_t {
  kQueued,
  kRunning,
  kDone,
  kQuarantined,  // finished, but with quarantined replications
  kFailed,
};
const char* job_state_name(JobState s);

struct JobStatus {
  JobSpec spec;
  JobState state = JobState::kQueued;
  std::string error;          // terminal failure reason (kFailed)
  std::uint64_t committed = 0;  // replications durably journaled this run
  std::uint64_t resumed = 0;    // replications replayed from the journal
  double wall_s = 0.0;          // sweep wall time (finished jobs)
};

class SweepService {
 public:
  explicit SweepService(ServiceConfig cfg);
  ~SweepService();

  SweepService(const SweepService&) = delete;
  SweepService& operator=(const SweepService&) = delete;

  /// Scans the jobs directory: finished jobs are registered as done,
  /// failed ones as failed, and every incomplete .job is re-enqueued
  /// with resume semantics. Unlinks stale atomic-write temp files.
  /// Returns the number of jobs re-enqueued. Call before start().
  std::size_t recover();

  /// Spawns the worker pool.
  void start();

  /// Thread-safe submission. Durably persists the .job file BEFORE
  /// accepting. Returns "" on accept, else the rejection reason (queue
  /// full, duplicate id, draining, already completed, I/O failure).
  std::string submit(const JobSpec& spec);

  /// Snapshot of every known job, sorted by id.
  std::vector<JobStatus> status() const;

  /// Graceful drain: reject new submissions, claim no further jobs or
  /// replications, let in-flight replications finish and journal.
  /// Idempotent, callable from any thread (NOT from a signal handler —
  /// use ServiceConfig::terminate for that).
  void drain();
  bool draining() const {
    return drain_.load(std::memory_order_relaxed);
  }

  /// Blocks until the queue is empty and no job is running, or until a
  /// drain interrupts the wait. Polls ServiceConfig::terminate.
  void wait_idle();

  /// Stops and joins the worker pool (after wait_idle in batch use, or
  /// after drain). Idempotent.
  void shutdown();

  /// Serves line-delimited JSON requests on a Unix-domain socket until
  /// drained. Ops: submit (default), status, drain, ping. Returns when
  /// the listener has shut down; in-flight jobs may still be finishing
  /// (call wait_idle/shutdown next).
  void serve(const std::string& socket_path);

  /// Enforces cache_budget_bytes over checkpoint_dir now; returns the
  /// number of evicted checkpoint files.
  std::size_t enforce_cache_budget();

  const ServiceConfig& config() const { return cfg_; }
  std::string artifact_path(const std::string& id) const;
  std::string journal_path(const std::string& id) const;

 private:
  void worker_loop();
  void run_job(const std::string& id);
  void serve_connection(int fd);
  std::string handle_request_line(const std::string& line);
  std::string job_path(const std::string& id) const;

  ServiceConfig cfg_;
  std::atomic<bool> drain_{false};
  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // queue/drain/stop changes
  std::condition_variable idle_cv_;  // running/queue emptied
  std::deque<std::string> queue_;
  std::map<std::string, JobStatus> jobs_;
  std::size_t running_ = 0;
  bool stopping_ = false;
  bool started_ = false;
  std::vector<std::thread> pool_;
  std::mutex conn_mu_;
  std::vector<std::thread> connections_;
};

}  // namespace btsc::service
