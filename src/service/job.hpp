// Sweep-service job specs and the line-delimited JSON codec they travel
// in (socket protocol, --job-file batch mode, and the durable .job files
// in the jobs directory).
//
// The wire format is one flat JSON object per line. The parser below is
// deliberately minimal — flat objects of string / number / bool / null
// values, no nesting — because that is the entire protocol; a typo'd or
// unknown key is a hard parse error (reject-with-reason beats silently
// running the wrong sweep).
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>

namespace btsc::service {

/// Protocol/spec-layer failure: malformed JSON, unknown key, bad value,
/// invalid job id. Always carries a client-presentable reason.
class JobError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One value of a flat JSON object. Numbers keep their raw text so
/// 64-bit seeds survive without a double round-trip.
struct JsonValue {
  enum class Kind { kString, kNumber, kBool, kNull };
  Kind kind = Kind::kNull;
  std::string text;  // decoded for strings, raw spelling for numbers
  bool boolean = false;

  std::uint64_t as_u64(const std::string& key) const;
  int as_int(const std::string& key) const;
  double as_double(const std::string& key) const;
  bool as_bool(const std::string& key) const;
  const std::string& as_string(const std::string& key) const;
};

using JsonObject = std::map<std::string, JsonValue>;

/// Parses one line holding one flat JSON object. Throws JobError on
/// anything else (nested containers included).
JsonObject parse_json_object(const std::string& line);

/// JSON string escaping for the tiny emitter side of the protocol.
std::string json_escape(const std::string& s);

/// One sweep request. Mirrors the btsc-sweep CLI: the point filter is
/// `max_points` (first N points of the scenario's list) and the
/// replication range is `replications` (replications 0..N-1 of every
/// point) — the same result-defining knobs the journal binds, so a
/// job's journal resumes exactly like a CLI `--resume`.
struct JobSpec {
  std::string id;        // required; [A-Za-z0-9._-], max 64 chars
  std::string scenario;  // required; registry id, e.g. "fig08"
  int threads = 1;       // sweep workers INSIDE this job
  int replications = 0;  // 0 = scenario default
  bool quick = false;
  std::uint64_t base_seed = 0;  // 0 = scenario default
  int max_points = 0;           // 0 = all points
  // Warm-up staging: "legacy", "cold" or "fork". Jobs default to fork so
  // they share the service's durable warm-up cache.
  std::string warmup = "fork";
  double rep_timeout_s = 0.0;
  int max_retries = 0;
  bool keep_going = false;

  bool operator==(const JobSpec&) const = default;
};

/// Decodes a JobSpec from a parsed object. `allow_extra` names keys the
/// caller has already consumed (e.g. "op" on the socket). Validates id
/// and scenario presence/charset; throws JobError with the reason.
JobSpec job_from_json(const JsonObject& obj,
                      const std::string& allow_extra = "");

/// Parses one job line (file or socket payload).
JobSpec parse_job_line(const std::string& line);

/// Canonical one-line JSON encoding (the durable .job format; parsing
/// it back yields an equal JobSpec).
std::string format_job_line(const JobSpec& spec);

}  // namespace btsc::service
