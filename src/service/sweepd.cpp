#include "service/sweepd.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/report.hpp"
#include "runner/scenarios.hpp"

namespace btsc::service {
namespace fs = std::filesystem;
namespace {

[[noreturn]] void throw_io(const std::string& what, const std::string& path) {
  throw std::runtime_error("sweepd: " + what + " " + path + ": " +
                           std::strerror(errno));
}

/// Atomic durable file publication: temp + write + fsync + rename +
/// parent fsync. Existence of `path` therefore implies complete,
/// durable content — the property every recovery decision relies on.
void atomic_write_text(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_io("cannot create", tmp);
  std::size_t off = 0;
  while (off < content.size()) {
    const ssize_t n =
        ::write(fd, content.data() + off, content.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      throw_io("write failed for", tmp);
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw_io("fsync failed for", tmp);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    throw_io("close failed for", tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw_io("rename failed onto", path);
  }
  const std::size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? std::string(".")
                                 : path.substr(0, slash == 0 ? 1 : slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

runner::WarmupMode warmup_mode(const std::string& name) {
  if (name == "legacy") return runner::WarmupMode::kLegacy;
  if (name == "cold") return runner::WarmupMode::kCold;
  return runner::WarmupMode::kFork;
}

}  // namespace

const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kQuarantined: return "quarantined";
    case JobState::kFailed: return "failed";
  }
  return "unknown";
}

SweepService::SweepService(ServiceConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.jobs_dir.empty()) {
    throw std::invalid_argument("sweepd: jobs_dir is required");
  }
  if (cfg_.workers < 1) cfg_.workers = 1;
  if (cfg_.checkpoint_dir.empty()) {
    cfg_.checkpoint_dir = cfg_.jobs_dir + "/checkpoints";
  }
  std::error_code ec;
  fs::create_directories(cfg_.jobs_dir, ec);
  if (ec) {
    throw std::runtime_error("sweepd: cannot create jobs dir " +
                             cfg_.jobs_dir + ": " + ec.message());
  }
  fs::create_directories(cfg_.checkpoint_dir, ec);
  if (ec) {
    std::cerr << "sweepd: cannot create checkpoint dir "
              << cfg_.checkpoint_dir << ": " << ec.message()
              << "; warm-ups stay in-memory\n";
  }
}

SweepService::~SweepService() {
  drain();
  shutdown();
}

std::string SweepService::job_path(const std::string& id) const {
  return cfg_.jobs_dir + "/" + id + ".job";
}
std::string SweepService::journal_path(const std::string& id) const {
  return cfg_.jobs_dir + "/" + id + ".journal";
}
std::string SweepService::artifact_path(const std::string& id) const {
  return cfg_.jobs_dir + "/" + id + ".json";
}

std::size_t SweepService::recover() {
  std::size_t resumed = 0;
  std::vector<fs::path> job_files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(cfg_.jobs_dir, ec)) {
    const std::string name = entry.path().filename().string();
    // Stale atomic-write temps from a crashed publication: the rename
    // never happened, so they are garbage by construction.
    if (name.find(".tmp.") != std::string::npos) {
      fs::remove(entry.path(), ec);
      continue;
    }
    if (entry.path().extension() == ".job") job_files.push_back(entry.path());
  }
  std::sort(job_files.begin(), job_files.end());

  for (const auto& path : job_files) {
    const std::string id = path.stem().string();
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    JobStatus st;
    try {
      st.spec = parse_job_line(line);
      if (st.spec.id != id) {
        throw JobError("job file " + path.string() +
                       " names id '" + st.spec.id + "'");
      }
    } catch (const JobError& e) {
      std::cerr << "sweepd: unreadable job file " << path << ": " << e.what()
                << "; marking failed\n";
      st.spec.id = id;
      st.state = JobState::kFailed;
      st.error = e.what();
      std::lock_guard<std::mutex> lock(mu_);
      jobs_.emplace(id, std::move(st));
      continue;
    }

    if (fs::exists(artifact_path(id))) {
      st.state = fs::exists(cfg_.jobs_dir + "/" + id + ".quarantine.json")
                     ? JobState::kQuarantined
                     : JobState::kDone;
    } else if (fs::exists(cfg_.jobs_dir + "/" + id + ".error.json")) {
      st.state = JobState::kFailed;
      st.error = "failed in a previous run (see " + id + ".error.json)";
    } else {
      st.state = JobState::kQueued;
      ++resumed;
    }

    std::lock_guard<std::mutex> lock(mu_);
    const bool queued = st.state == JobState::kQueued;
    jobs_.emplace(id, std::move(st));
    if (queued) queue_.push_back(id);
  }
  work_cv_.notify_all();
  return resumed;
}

void SweepService::start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return;
  started_ = true;
  pool_.reserve(static_cast<std::size_t>(cfg_.workers));
  for (int w = 0; w < cfg_.workers; ++w) {
    pool_.emplace_back(&SweepService::worker_loop, this);
  }
}

std::string SweepService::submit(const JobSpec& spec) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (drain_.load(std::memory_order_relaxed)) {
      return "service is draining; not accepting jobs";
    }
    if (jobs_.count(spec.id) != 0) {
      return "duplicate job id '" + spec.id + "'";
    }
    if (queue_.size() >= cfg_.queue_limit) {
      return "queue full (" + std::to_string(cfg_.queue_limit) +
             " jobs); retry later";
    }
  }
  if (fs::exists(artifact_path(spec.id))) {
    return "job '" + spec.id + "' already has a completed artifact";
  }
  // Durable accept: the .job file is on disk (fsync'd) before the
  // client hears "ok", so an accepted job survives any crash.
  try {
    atomic_write_text(job_path(spec.id), format_job_line(spec) + "\n");
  } catch (const std::exception& e) {
    return std::string("cannot persist job: ") + e.what();
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Re-check raced submissions of the same id between the two locks.
  if (jobs_.count(spec.id) != 0) return "duplicate job id '" + spec.id + "'";
  if (drain_.load(std::memory_order_relaxed)) {
    return "service is draining; not accepting jobs";
  }
  JobStatus st;
  st.spec = spec;
  st.state = JobState::kQueued;
  jobs_.emplace(spec.id, std::move(st));
  queue_.push_back(spec.id);
  work_cv_.notify_one();
  return "";
}

std::vector<JobStatus> SweepService::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JobStatus> out;
  out.reserve(jobs_.size());
  for (const auto& [id, st] : jobs_) out.push_back(st);
  return out;
}

void SweepService::drain() {
  drain_.store(true, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  work_cv_.notify_all();
  idle_cv_.notify_all();
}

void SweepService::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (cfg_.terminate != nullptr &&
        cfg_.terminate->load(std::memory_order_relaxed) &&
        !drain_.load(std::memory_order_relaxed)) {
      lock.unlock();
      drain();
      lock.lock();
    }
    if (queue_.empty() && running_ == 0) return;
    if (drain_.load(std::memory_order_relaxed) && running_ == 0) return;
    idle_cv_.wait_for(lock, std::chrono::milliseconds(50));
  }
}

void SweepService::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    work_cv_.notify_all();
  }
  for (auto& th : pool_) {
    if (th.joinable()) th.join();
  }
  std::lock_guard<std::mutex> lock(conn_mu_);
  for (auto& th : connections_) {
    if (th.joinable()) th.join();
  }
}

void SweepService::worker_loop() {
  for (;;) {
    std::string id;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stopping_ || drain_.load(std::memory_order_relaxed) ||
               !queue_.empty();
      });
      if (drain_.load(std::memory_order_relaxed)) return;
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      id = queue_.front();
      queue_.pop_front();
      auto it = jobs_.find(id);
      if (it != jobs_.end()) it->second.state = JobState::kRunning;
      ++running_;
    }
    run_job(id);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --running_;
      idle_cv_.notify_all();
    }
  }
}

void SweepService::run_job(const std::string& id) {
  JobSpec spec;
  {
    std::lock_guard<std::mutex> lock(mu_);
    spec = jobs_.at(id).spec;
  }

  // Advisory commit stream: one JSON line per durably journaled
  // replication. Line-buffered, never fsync'd — the journal is the
  // durable record, this is for live consumers (tail -f, dashboards).
  std::ofstream progress(cfg_.jobs_dir + "/" + id + ".progress.jsonl",
                         std::ios::app);

  runner::ScenarioRequest req;
  req.threads = spec.threads;
  req.replications = spec.replications;
  req.quick = spec.quick;
  req.base_seed = spec.base_seed;
  req.max_points = spec.max_points;
  req.warmup = warmup_mode(spec.warmup);
  req.journal_path = journal_path(id);
  req.resume = true;  // a missing journal simply starts fresh
  if (req.warmup == runner::WarmupMode::kFork) {
    req.checkpoint_dir = cfg_.checkpoint_dir;
  }
  req.rep_timeout_s = spec.rep_timeout_s;
  req.max_retries = spec.max_retries;
  req.keep_going = spec.keep_going;
  req.stop = &drain_;
  req.on_commit = [this, id, &progress](std::uint64_t point,
                                        std::uint64_t rep) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = jobs_.find(id);
      if (it != jobs_.end()) ++it->second.committed;
    }
    progress << "{\"job\": \"" << json_escape(id) << "\", \"point\": "
             << point << ", \"replication\": " << rep << "}\n";
    progress.flush();
  };

  runner::SweepResult result;
  try {
    try {
      result = runner::run_scenario(spec.scenario, req);
    } catch (const runner::JournalError& e) {
      // A journal this job cannot continue (torn header, foreign
      // configuration, poisoned). The .job spec is the durable source
      // of truth and the journal is bookkeeping, never result-defining:
      // discard it and re-run the job from scratch.
      std::cerr << "sweepd: job " << id << ": " << e.what()
                << "; discarding journal and re-running\n";
      ::unlink(journal_path(id).c_str());
      result = runner::run_scenario(spec.scenario, req);
    }
  } catch (const std::exception& e) {
    std::cerr << "sweepd: job " << id << " failed: " << e.what() << "\n";
    try {
      atomic_write_text(cfg_.jobs_dir + "/" + id + ".error.json",
                        "{\"job\": \"" + json_escape(id) +
                            "\", \"error\": \"" + json_escape(e.what()) +
                            "\"}\n");
    } catch (const std::exception& write_err) {
      std::cerr << "sweepd: job " << id
                << ": cannot record failure: " << write_err.what() << "\n";
    }
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(id);
    if (it != jobs_.end()) {
      it->second.state = JobState::kFailed;
      it->second.error = e.what();
    }
    return;
  }

  if (result.interrupted) {
    // Drained mid-job: committed replications are in the journal; the
    // next service start resumes from them. No artifact — its absence
    // is what marks the job incomplete.
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(id);
    if (it != jobs_.end()) {
      it->second.state = JobState::kQueued;
      it->second.resumed = result.journal_skipped;
    }
    return;
  }

  try {
    // Identical bytes to `btsc-sweep --scenario <x> --json --out <f>`:
    // same reporter, same %.17g doubles — which is what lets the kill
    // matrix byte-compare service artifacts against uninterrupted runs.
    std::ostringstream artifact;
    core::JsonReporter reporter(artifact);
    runner::write_result(result, reporter);
    if (result.supervised && !result.quarantined.empty()) {
      atomic_write_text(cfg_.jobs_dir + "/" + id + ".quarantine.json",
                        runner::quarantine_report(result));
    }
    atomic_write_text(artifact_path(id), artifact.str());
  } catch (const std::exception& e) {
    std::cerr << "sweepd: job " << id
              << ": artifact write failed: " << e.what() << "\n";
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(id);
    if (it != jobs_.end()) {
      it->second.state = JobState::kFailed;
      it->second.error = e.what();
    }
    return;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(id);
    if (it != jobs_.end()) {
      it->second.state = (result.supervised && !result.quarantined.empty())
                             ? JobState::kQuarantined
                             : JobState::kDone;
      it->second.resumed = result.journal_skipped;
      it->second.wall_s = result.wall_seconds;
    }
  }
  enforce_cache_budget();
}

std::size_t SweepService::enforce_cache_budget() {
  if (cfg_.cache_budget_bytes == 0) return 0;
  struct Entry {
    fs::path path;
    fs::file_time_type mtime;
    std::uint64_t size = 0;
  };
  std::vector<Entry> entries;
  std::uint64_t total = 0;
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(cfg_.checkpoint_dir, ec)) {
    if (e.path().extension() != ".ckpt") continue;
    std::error_code sec;
    const auto size = fs::file_size(e.path(), sec);
    if (sec) continue;
    const auto mtime = fs::last_write_time(e.path(), sec);
    if (sec) continue;
    entries.push_back({e.path(), mtime, size});
    total += size;
  }
  if (total <= cfg_.cache_budget_bytes) return 0;
  // Evict least-recently used first (try_load touches mtime on hits).
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.mtime < b.mtime; });
  std::size_t evicted = 0;
  for (const Entry& e : entries) {
    if (total <= cfg_.cache_budget_bytes) break;
    std::error_code rec;
    if (fs::remove(e.path, rec)) {
      total -= e.size;
      ++evicted;
    }
  }
  return evicted;
}

// ---- socket front end ------------------------------------------------------

std::string SweepService::handle_request_line(const std::string& line) {
  try {
    const JsonObject obj = parse_json_object(line);
    std::string op = "submit";
    if (const auto it = obj.find("op"); it != obj.end()) {
      op = it->second.as_string("op");
    }
    if (op == "ping") return "{\"ok\": true}";
    if (op == "drain") {
      drain();
      return "{\"ok\": true, \"draining\": true}";
    }
    if (op == "status") {
      std::ostringstream out;
      out << "{\"ok\": true, \"draining\": "
          << (draining() ? "true" : "false") << ", \"jobs\": [";
      bool first = true;
      for (const JobStatus& st : status()) {
        if (!first) out << ", ";
        first = false;
        out << "{\"id\": \"" << json_escape(st.spec.id) << "\", \"state\": \""
            << job_state_name(st.state) << "\", \"committed\": "
            << st.committed << ", \"resumed\": " << st.resumed;
        if (!st.error.empty()) {
          out << ", \"error\": \"" << json_escape(st.error) << "\"";
        }
        out << "}";
      }
      out << "]}";
      return out.str();
    }
    if (op == "submit") {
      const JobSpec spec = job_from_json(obj, "op");
      const std::string err = submit(spec);
      if (!err.empty()) {
        return "{\"ok\": false, \"error\": \"" + json_escape(err) + "\"}";
      }
      return "{\"ok\": true, \"id\": \"" + json_escape(spec.id) + "\"}";
    }
    return "{\"ok\": false, \"error\": \"unknown op '" + json_escape(op) +
           "'\"}";
  } catch (const JobError& e) {
    return "{\"ok\": false, \"error\": \"" + json_escape(e.what()) + "\"}";
  }
}

void SweepService::serve_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t nl;
    while ((nl = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      if (line.empty()) continue;
      const std::string reply = handle_request_line(line) + "\n";
      std::size_t off = 0;
      while (off < reply.size()) {
        const ssize_t w = ::write(fd, reply.data() + off, reply.size() - off);
        if (w < 0) {
          if (errno == EINTR) continue;
          ::close(fd);
          return;
        }
        off += static_cast<std::size_t>(w);
      }
    }
  }
  ::close(fd);
}

void SweepService::serve(const std::string& socket_path) {
  if (socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    throw std::invalid_argument("sweepd: socket path too long: " +
                                socket_path);
  }
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) throw_io("cannot create socket", socket_path);
  ::unlink(socket_path.c_str());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ::close(listener);
    throw_io("cannot bind", socket_path);
  }
  if (::listen(listener, 16) != 0) {
    ::close(listener);
    throw_io("cannot listen on", socket_path);
  }

  for (;;) {
    if (cfg_.terminate != nullptr &&
        cfg_.terminate->load(std::memory_order_relaxed)) {
      drain();
    }
    if (draining()) break;
    pollfd pfd{listener, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 200);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (rc == 0 || (pfd.revents & POLLIN) == 0) continue;
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) continue;
    std::lock_guard<std::mutex> lock(conn_mu_);
    connections_.emplace_back(&SweepService::serve_connection, this, conn);
  }
  ::close(listener);
  ::unlink(socket_path.c_str());
}

}  // namespace btsc::service
