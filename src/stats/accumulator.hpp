// Streaming statistics used by the experiment harness.
//
// Accumulator implements Welford's online algorithm, which is numerically
// stable for long Monte-Carlo runs; Histogram provides fixed-width bins
// for distribution plots (e.g. inquiry completion time spread).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "sim/snapshot.hpp"

namespace btsc::stats {

/// Online mean / variance / extrema of a stream of doubles.
class Accumulator {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  /// Mean of the samples; 0 if empty.
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 with fewer than two samples.
  double variance() const;
  double stddev() const;
  /// Standard error of the mean.
  double sem() const;
  /// Half-width of the 95% confidence interval (normal approximation).
  double ci95_half_width() const { return 1.959963985 * sem(); }
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double sum() const { return n_ > 0 ? mean_ * static_cast<double>(n_) : 0.0; }

  /// Merges another accumulator (parallel reduction), preserving exact
  /// mean/variance as if all samples were added to one accumulator.
  void merge(const Accumulator& other);

  // ---- checkpointing ----
  void save_state(sim::SnapshotWriter& w) const {
    w.u64(n_);
    w.f64(mean_);
    w.f64(m2_);
    w.f64(min_);
    w.f64(max_);
  }
  void restore_state(sim::SnapshotReader& r) {
    n_ = static_cast<std::size_t>(r.u64());
    mean_ = r.f64();
    m2_ = r.f64();
    min_ = r.f64();
    max_ = r.f64();
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width binned histogram over [lo, hi); out-of-range samples are
/// counted in saturating edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_low(std::size_t i) const;
  double bin_high(std::size_t i) const { return bin_low(i + 1); }
  /// p in [0,1]; returns the lower edge of the bin containing quantile p.
  double quantile(double p) const;

  std::string to_string(std::size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Ratio counter for success probabilities with a Wilson 95% interval,
/// appropriate for the small sample counts of the failure-probability
/// experiment (Fig. 8).
class RatioCounter {
 public:
  void add(bool success) {
    ++n_;
    if (success) ++k_;
  }
  std::size_t trials() const { return n_; }
  std::size_t successes() const { return k_; }

  /// Merges another counter (parallel reduction); order-independent.
  void merge(const RatioCounter& other) {
    n_ += other.n_;
    k_ += other.k_;
  }

  double ratio() const {
    return n_ > 0 ? static_cast<double>(k_) / static_cast<double>(n_) : 0.0;
  }
  /// Wilson score interval [lo, hi] at 95% confidence.
  std::pair<double, double> wilson95() const;

  // ---- checkpointing ----
  void save_state(sim::SnapshotWriter& w) const {
    w.u64(n_);
    w.u64(k_);
  }
  void restore_state(sim::SnapshotReader& r) {
    n_ = static_cast<std::size_t>(r.u64());
    k_ = static_cast<std::size_t>(r.u64());
  }

 private:
  std::size_t n_ = 0;
  std::size_t k_ = 0;
};

}  // namespace btsc::stats
