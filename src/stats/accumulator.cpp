#include "stats/accumulator.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace btsc::stats {

void Accumulator::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double Accumulator::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::sem() const {
  if (n_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

void Accumulator::merge(const Accumulator& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)) {
  if (bins == 0 || hi <= lo) {
    throw std::invalid_argument("Histogram: bad range or zero bins");
  }
  counts_.assign(bins, 0);
}

void Histogram::add(double x) {
  std::size_t idx;
  if (x < lo_) {
    idx = 0;
  } else if (x >= hi_) {
    idx = counts_.size() - 1;
  } else {
    idx = static_cast<std::size_t>((x - lo_) / width_);
    idx = std::min(idx, counts_.size() - 1);
  }
  ++counts_[idx];
  ++total_;
}

double Histogram::bin_low(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::quantile(double p) const {
  if (total_ == 0) return lo_;
  const double target = p * static_cast<double>(total_);
  double running = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    running += static_cast<double>(counts_[i]);
    if (running >= target) return bin_low(i);
  }
  return hi_;
}

std::string Histogram::to_string(std::size_t max_width) const {
  std::size_t peak = 0;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t bar =
        peak == 0 ? 0 : counts_[i] * max_width / peak;
    os << '[' << bin_low(i) << ", " << bin_high(i) << ") "
       << std::string(bar, '#') << ' ' << counts_[i] << '\n';
  }
  return os.str();
}

std::pair<double, double> RatioCounter::wilson95() const {
  if (n_ == 0) return {0.0, 1.0};
  constexpr double z = 1.959963985;
  const double n = static_cast<double>(n_);
  const double p = ratio();
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double centre = p + z2 / (2.0 * n);
  const double margin = z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  return {std::max(0.0, (centre - margin) / denom),
          std::min(1.0, (centre + margin) / denom)};
}

}  // namespace btsc::stats
