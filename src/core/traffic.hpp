// Application-layer traffic sources used by the activity experiments.
//
// Both sources drive themselves with self-rescheduling timers; those are
// owner-tagged descriptor timers so a checkpoint taken while a source is
// armed can be restored (the kernel replays the descriptor through
// rearm_timer()). Construction parameters (period, payload, backlog) are
// not serialized -- restore assumes an identically constructed source.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "baseband/device.hpp"
#include "sim/snapshot.hpp"
#include "sim/time.hpp"

namespace btsc::core {

/// Queues a fixed-size payload to one link every `period_slots` slots
/// (the paper's Fig. 11 uses a 100-slot period; Fig. 10 sweeps the duty
/// cycle, i.e. the inverse period).
class PeriodicTrafficSource : public sim::Snapshotable,
                              public sim::RearmHandler {
 public:
  PeriodicTrafficSource(baseband::Device& device, std::uint8_t lt_addr,
                        std::uint32_t period_slots,
                        std::size_t payload_bytes = 1)
      : device_(device),
        lt_addr_(lt_addr),
        period_(baseband::kSlotDuration * period_slots),
        payload_(payload_bytes, 0xA5) {
    device_.env().register_rearm(
        device_.name() + ".ptraffic." + std::to_string(lt_addr_), this, this);
    schedule_next(period_);
  }

  ~PeriodicTrafficSource() override { device_.env().unregister_rearm(this); }

  void stop() { running_ = false; }
  std::uint64_t messages_sent() const { return sent_; }

  // ---- checkpointing ----
  void save_state(sim::SnapshotWriter& w) const override {
    w.begin_section(kTag);
    w.b(running_);
    w.u64(sent_);
    w.end_section();
  }
  void restore_state(sim::SnapshotReader& r) override {
    r.enter_section(kTag);
    running_ = r.b();
    sent_ = r.u64();
    r.leave_section();
  }
  void rearm_timer(std::uint16_t kind, std::uint64_t /*payload*/,
                   sim::SimTime when) override {
    if (kind != kSend) {
      throw sim::SnapshotError("periodic traffic: bad timer kind " +
                               std::to_string(kind));
    }
    schedule_next(when - device_.env().now());
  }

 private:
  static constexpr std::uint32_t kTag = sim::snapshot_tag("TRFP");
  enum Kind : std::uint16_t { kSend = 1 };

  void schedule_next(sim::SimTime delay) {
    device_.env().schedule_tagged(
        delay, kSend, 0,
        [this] {
          if (!running_) return;
          if (device_.lc().send_acl(lt_addr_, baseband::kLlidStart,
                                    payload_)) {
            ++sent_;
          }
          schedule_next(period_);
        },
        /*owner=*/this);
  }

  baseband::Device& device_;
  std::uint8_t lt_addr_;
  sim::SimTime period_;
  std::vector<std::uint8_t> payload_;
  bool running_ = true;
  std::uint64_t sent_ = 0;
};

/// Keeps the sender's queue non-empty (saturation source) for throughput
/// experiments: refills up to `backlog` messages each slot.
class SaturatingTrafficSource : public sim::Snapshotable,
                                public sim::RearmHandler {
 public:
  SaturatingTrafficSource(baseband::Device& device, std::uint8_t lt_addr,
                          std::size_t payload_bytes, std::size_t backlog = 4)
      : device_(device),
        lt_addr_(lt_addr),
        payload_(payload_bytes, 0x3C),
        backlog_(backlog) {
    device_.env().register_rearm(
        device_.name() + ".straffic." + std::to_string(lt_addr_), this, this);
    refill();
  }

  ~SaturatingTrafficSource() override { device_.env().unregister_rearm(this); }

  void stop() { running_ = false; }
  std::uint64_t messages_sent() const { return sent_; }

  // ---- checkpointing ----
  void save_state(sim::SnapshotWriter& w) const override {
    w.begin_section(kTag);
    w.b(running_);
    w.u64(sent_);
    w.end_section();
  }
  void restore_state(sim::SnapshotReader& r) override {
    r.enter_section(kTag);
    running_ = r.b();
    sent_ = r.u64();
    r.leave_section();
  }
  void rearm_timer(std::uint16_t kind, std::uint64_t /*payload*/,
                   sim::SimTime when) override {
    if (kind != kRefill) {
      throw sim::SnapshotError("saturating traffic: bad timer kind " +
                               std::to_string(kind));
    }
    schedule_refill(when - device_.env().now());
  }

 private:
  static constexpr std::uint32_t kTag = sim::snapshot_tag("TRFS");
  enum Kind : std::uint16_t { kRefill = 1 };

  void refill() {
    if (!running_) return;
    for (std::size_t i = 0; i < backlog_; ++i) {
      if (!device_.lc().send_acl(lt_addr_, baseband::kLlidStart, payload_)) {
        break;
      }
      ++sent_;
    }
    schedule_refill(baseband::kSlotDuration * 2);
  }

  void schedule_refill(sim::SimTime delay) {
    device_.env().schedule_tagged(delay, kRefill, 0, [this] { refill(); },
                                  /*owner=*/this);
  }

  baseband::Device& device_;
  std::uint8_t lt_addr_;
  std::vector<std::uint8_t> payload_;
  std::size_t backlog_;
  bool running_ = true;
  std::uint64_t sent_ = 0;
};

}  // namespace btsc::core
