// Application-layer traffic sources used by the activity experiments.
#pragma once

#include <cstdint>
#include <vector>

#include "baseband/device.hpp"
#include "sim/time.hpp"

namespace btsc::core {

/// Queues a fixed-size payload to one link every `period_slots` slots
/// (the paper's Fig. 11 uses a 100-slot period; Fig. 10 sweeps the duty
/// cycle, i.e. the inverse period).
class PeriodicTrafficSource {
 public:
  PeriodicTrafficSource(baseband::Device& device, std::uint8_t lt_addr,
                        std::uint32_t period_slots,
                        std::size_t payload_bytes = 1)
      : device_(device),
        lt_addr_(lt_addr),
        period_(baseband::kSlotDuration * period_slots),
        payload_(payload_bytes, 0xA5) {
    schedule_next();
  }

  void stop() { running_ = false; }
  std::uint64_t messages_sent() const { return sent_; }

 private:
  void schedule_next() {
    device_.env().schedule(period_, [this] {
      if (!running_) return;
      if (device_.lc().send_acl(lt_addr_, baseband::kLlidStart, payload_)) {
        ++sent_;
      }
      schedule_next();
    });
  }

  baseband::Device& device_;
  std::uint8_t lt_addr_;
  sim::SimTime period_;
  std::vector<std::uint8_t> payload_;
  bool running_ = true;
  std::uint64_t sent_ = 0;
};

/// Keeps the sender's queue non-empty (saturation source) for throughput
/// experiments: refills up to `backlog` messages each slot.
class SaturatingTrafficSource {
 public:
  SaturatingTrafficSource(baseband::Device& device, std::uint8_t lt_addr,
                          std::size_t payload_bytes, std::size_t backlog = 4)
      : device_(device),
        lt_addr_(lt_addr),
        payload_(payload_bytes, 0x3C),
        backlog_(backlog) {
    refill();
  }

  void stop() { running_ = false; }
  std::uint64_t messages_sent() const { return sent_; }

 private:
  void refill() {
    if (!running_) return;
    for (std::size_t i = 0; i < backlog_; ++i) {
      if (!device_.lc().send_acl(lt_addr_, baseband::kLlidStart, payload_)) {
        break;
      }
      ++sent_;
    }
    device_.env().schedule(baseband::kSlotDuration * 2,
                           [this] { refill(); });
  }

  baseband::Device& device_;
  std::uint8_t lt_addr_;
  std::vector<std::uint8_t> payload_;
  std::size_t backlog_;
  bool running_ = true;
  std::uint64_t sent_ = 0;
};

}  // namespace btsc::core
