#include "core/system.hpp"

#include <stdexcept>

#include "sim/snapshot.hpp"

namespace btsc::core {

using namespace btsc::sim::literals;
using baseband::BdAddr;
using baseband::Device;
using baseband::DeviceConfig;
using baseband::kClockMask;
using baseband::kSlotDuration;
using sim::SimTime;

namespace {

phy::ChannelConfig make_channel_config(const SystemConfig& cfg) {
  phy::ChannelConfig ch;
  ch.ber = cfg.ber;
  ch.rf_delay = cfg.rf_delay;
  return ch;
}

BdAddr device_address(int index) {
  // Distinct LAP/UAP per device; NAP identifies this simulation.
  return BdAddr(0x200000u + static_cast<std::uint32_t>(index) * 0x01057Bu,
                static_cast<std::uint8_t>(0x40 + index * 7), 0xB75C);
}

}  // namespace

BluetoothSystem::BluetoothSystem(const SystemConfig& config)
    : plan_(plan_shards(config.shards, /*num_piconets=*/1, config.rf_delay)),
      env_(config.seed),
      tracer_(config.vcd_path
                  ? std::make_unique<sim::VcdTracer>(env_, *config.vcd_path)
                  : nullptr),
      channel_((env_.set_tracer(tracer_.get()), env_), "channel",
               make_channel_config(config)) {
  if (config.num_slaves < 1 || config.num_slaves > 7) {
    throw std::invalid_argument("BluetoothSystem: 1..7 slaves");
  }
  for (int i = 0; i <= config.num_slaves; ++i) {
    DeviceConfig dc;
    dc.addr = device_address(i);
    dc.lc = config.lc;
    if (i == 0) {
      dc.clkn_init = 0;
      dc.clkn_phase = SimTime::us(1000);
      dc.lc.inquiry_target_responses =
          static_cast<std::size_t>(config.num_slaves);
    } else {
      dc.clkn_init =
          static_cast<std::uint32_t>(env_.rng().uniform(0, kClockMask));
      dc.clkn_phase = SimTime::us(env_.rng().uniform(1, 1249));
    }
    devices_.push_back(std::make_unique<Device>(
        env_, i == 0 ? "master" : "slave" + std::to_string(i), dc,
        channel_));
  }
  for (auto& dev : devices_) {
    lms_.push_back(std::make_unique<lm::LinkManager>(*dev));
  }
  connected_.assign(static_cast<std::size_t>(config.num_slaves), false);
}

BluetoothSystem::~BluetoothSystem() { finish_trace(); }

void BluetoothSystem::finish_trace() {
  if (tracer_) {
    // A burst run still in flight has traced bus transitions that only
    // exist as run geometry; materialise them before the file closes.
    channel_.flush_trace_backfill();
    tracer_->close();
    env_.set_tracer(nullptr);
    tracer_.reset();
  }
}

PhaseResult BluetoothSystem::run_inquiry() {
  std::optional<bool> done;
  SimTime done_at = SimTime::zero();
  lm::LinkManager::Events ev;
  ev.inquiry_complete = [&](bool ok) {
    done = ok;
    done_at = env_.now();
  };
  master_lm().set_events(std::move(ev));

  for (int i = 0; i < num_slaves(); ++i) {
    if (!connected_[static_cast<std::size_t>(i)]) {
      slave(i).lc().enable_inquiry_scan();
    }
  }
  const SimTime start = env_.now();
  master().lc().enable_inquiry();
  const SimTime guard =
      kSlotDuration *
      (static_cast<std::uint64_t>(master().lc().config().inquiry_timeout_slots) + 64);
  const SimTime deadline = env_.now() + guard;
  while (!done && env_.now() < deadline) env_.run(1_ms);

  PhaseResult r;
  r.success = done.value_or(false);
  r.slots = (done.has_value() ? done_at - start : env_.now() - start) /
            kSlotDuration;
  return r;
}

PhaseResult BluetoothSystem::run_page(int slave_index) {
  PhaseResult r;
  const BdAddr target = slave(slave_index).address();
  const baseband::DiscoveredDevice* found = nullptr;
  for (const auto& d : master().lc().discovered()) {
    if (d.addr == target) found = &d;
  }
  if (found == nullptr) return r;  // not discovered: cannot page

  std::optional<bool> done;
  SimTime done_at = SimTime::zero();
  lm::LinkManager::Events ev;
  ev.page_complete = [&](bool ok) {
    done = ok;
    done_at = env_.now();
  };
  master_lm().set_events(std::move(ev));

  slave(slave_index).lc().enable_page_scan();
  const SimTime start = env_.now();
  master().lc().enable_page(found->addr, found->clkn_offset);
  const SimTime guard =
      kSlotDuration *
      (static_cast<std::uint64_t>(master().lc().config().page_timeout_slots) + 64);
  const SimTime deadline = env_.now() + guard;
  while (!done && env_.now() < deadline) env_.run(1_ms);

  r.success = done.value_or(false);
  r.slots = (done.has_value() ? done_at - start : env_.now() - start) /
            kSlotDuration;
  if (r.success) connected_[static_cast<std::size_t>(slave_index)] = true;
  return r;
}

// ---------------------------------------------------------------------------
// Checkpointing
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint32_t kSysTag = sim::snapshot_tag("SYS ");

}  // namespace

std::vector<std::uint8_t> BluetoothSystem::save_snapshot() {
  sim::SnapshotWriter w;
  w.begin_section(kSysTag);
  sim::save_seq(w, connected_.size(),
                [&](std::size_t i) { w.b(connected_[i]); });
  w.end_section();
  channel_.save_state(w);
  for (auto& dev : devices_) {
    dev->clock().save_state(w);
    dev->radio().save_state(w);
    dev->receiver().save_state(w);
    dev->lc().save_state(w);
  }
  for (auto& lm : lms_) lm->save_state(w);
  env_.save_state(w);  // last: timer descriptors reference settled modules
  return w.take();
}

void BluetoothSystem::restore_snapshot(const std::vector<std::uint8_t>& bytes) {
  sim::SnapshotReader r(bytes);
  r.enter_section(kSysTag);
  sim::restore_seq(r, [&](std::size_t i) { connected_.at(i) = r.b(); });
  r.leave_section();
  // Channel before radios: Radio::restore_state re-links in-flight burst
  // run bits into the channel ports. Kernel last: rearm handlers read
  // restored module state to rebuild callbacks.
  channel_.restore_state(r);
  for (auto& dev : devices_) {
    dev->clock().restore_state(r);
    dev->radio().restore_state(r);
    dev->receiver().restore_state(r);
    dev->lc().restore_state(r);
  }
  for (auto& lm : lms_) lm->restore_state(r);
  env_.restore_state(r);
  if (!r.at_end()) {
    throw sim::SnapshotError("system snapshot: trailing bytes");
  }
}

void BluetoothSystem::randomize_slave_clocks() {
  for (std::size_t i = 1; i < devices_.size(); ++i) {
    // Same draw order as construction: clock value first, phase second.
    const auto clkn =
        static_cast<std::uint32_t>(env_.rng().uniform(0, kClockMask));
    const SimTime phase = SimTime::us(env_.rng().uniform(1, 1249));
    devices_[i]->clock().reset_phase(clkn, phase);
  }
}

bool BluetoothSystem::create_piconet() {
  if (!run_inquiry().success) return false;
  for (int i = 0; i < num_slaves(); ++i) {
    if (!run_page(i).success) return false;
  }
  return true;
}

}  // namespace btsc::core
