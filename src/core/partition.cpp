#include "core/partition.hpp"

#include <atomic>
#include <stdexcept>

namespace btsc::core {

namespace {

std::atomic<int>& shard_default() {
  static std::atomic<int> shards{1};
  return shards;
}

}  // namespace

void set_shard_request_default(int shards) {
  if (shards < 1) throw std::invalid_argument("set_shard_request_default: < 1");
  shard_default().store(shards, std::memory_order_relaxed);
}

int shard_request_default() {
  return shard_default().load(std::memory_order_relaxed);
}

ShardPlan plan_shards(int requested, int num_piconets, sim::SimTime rf_delay) {
  if (num_piconets < 1) {
    throw std::invalid_argument("plan_shards: need at least one piconet");
  }
  if (requested <= 0) requested = shard_request_default();

  ShardPlan plan;
  plan.num_shards = requested;
  if (plan.num_shards > num_piconets) {
    // A piconet is the partitioning unit (its master/slave timing is a
    // single tightly-coupled state machine), so extra shards would sit
    // empty; clamping keeps the event streams -- and hence the output
    // bytes -- independent of the requested surplus.
    plan.num_shards = num_piconets;
    plan.fused_reason = "clamped to one shard per piconet";
  }
  if (plan.num_shards > 1 && rf_delay == sim::SimTime::zero()) {
    plan.num_shards = 1;
    plan.fused_reason =
        "rf_delay is zero, so the conservative lookahead is zero; coupled "
        "piconets are fused into one shard (no rollback machinery exists)";
  }
  plan.lookahead =
      plan.num_shards > 1 ? rf_delay : sim::SimTime::zero();
  plan.piconet_shard.resize(static_cast<std::size_t>(num_piconets));
  for (int p = 0; p < num_piconets; ++p) {
    plan.piconet_shard[static_cast<std::size_t>(p)] = p % plan.num_shards;
  }
  return plan;
}

}  // namespace btsc::core
