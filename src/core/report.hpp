// Plain-text table/series output for the figure-regeneration benches.
//
// Every bench prints a header naming the figure it reproduces and rows in
// a fixed-width layout (also valid CSV when `csv` is set), so results can
// be compared side by side with the paper and plotted directly.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace btsc::core {

class Report {
 public:
  explicit Report(std::string title, bool csv = false)
      : title_(std::move(title)), csv_(csv) {
    std::printf("# %s\n", title_.c_str());
  }

  void columns(const std::vector<std::string>& names) {
    names_ = names;
    if (csv_) {
      for (std::size_t i = 0; i < names.size(); ++i) {
        std::printf("%s%s", i ? "," : "", names[i].c_str());
      }
      std::printf("\n");
    } else {
      for (const auto& n : names_) std::printf("%14s", n.c_str());
      std::printf("\n");
      for (std::size_t i = 0; i < names_.size(); ++i) std::printf("%14s", "-----");
      std::printf("\n");
    }
  }

  void row(const std::vector<double>& values) {
    if (csv_) {
      for (std::size_t i = 0; i < values.size(); ++i) {
        std::printf("%s%.6g", i ? "," : "", values[i]);
      }
      std::printf("\n");
    } else {
      for (double v : values) std::printf("%14.4g", v);
      std::printf("\n");
    }
  }

  /// Free-form annotation line (ignored by CSV parsers).
  void note(const std::string& text) { std::printf("# %s\n", text.c_str()); }

 private:
  std::string title_;
  bool csv_;
  std::vector<std::string> names_;
};

/// Shared command-line knobs for the figure benches: --seeds N, --quick,
/// --csv. Unknown arguments are ignored.
struct BenchArgs {
  int seeds = 0;      // 0 = bench default
  bool quick = false;
  bool csv = false;

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs a;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--quick") {
        a.quick = true;
      } else if (arg == "--csv") {
        a.csv = true;
      } else if (arg == "--seeds" && i + 1 < argc) {
        a.seeds = std::atoi(argv[++i]);
      }
    }
    return a;
  }
};

}  // namespace btsc::core
