// Result reporting for the figure benches and the btsc-sweep CLI.
//
// Two layers:
//  * Reporter — an output backend interface with text (fixed-width
//    table), CSV and JSON implementations writing to any std::ostream.
//    JSON prints doubles with %.17g, so two runs producing bitwise-equal
//    doubles serialise to byte-identical files (the determinism test's
//    comparison key).
//  * Report — the legacy stdout convenience wrapper the waveform benches
//    still use; kept for compatibility.
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <climits>
#include <iostream>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace btsc::core {

/// Output backend for one titled table of doubles. Call order contract:
/// begin, meta*, columns, row*, note*, end.
class Reporter {
 public:
  virtual ~Reporter() = default;

  /// Starts a report with a human-readable title.
  virtual void begin(const std::string& title) = 0;
  /// Key/value metadata (threads, base seed, wall seconds...).
  virtual void meta(const std::string& key, const std::string& value) = 0;
  /// Names the columns of the rows that follow.
  virtual void columns(const std::vector<std::string>& names) = 0;
  /// Emits one data row (same arity as the column list).
  virtual void row(const std::vector<double>& values) = 0;
  /// Free-form annotation attached after the table.
  virtual void note(const std::string& text) = 0;
  /// Finishes the report (flushes structural output, e.g. the JSON
  /// closing brace). Must be called exactly once.
  virtual void end() = 0;
};

/// Fixed-width human-readable table (the classic bench stdout format).
class TextReporter : public Reporter {
 public:
  explicit TextReporter(std::ostream& os) : os_(os) {}

  void begin(const std::string& title) override {
    os_ << "# " << title << "\n";
  }
  void meta(const std::string& key, const std::string& value) override {
    os_ << "# " << key << ": " << value << "\n";
  }
  void columns(const std::vector<std::string>& names) override {
    for (const auto& n : names) print_cell(n);
    os_ << "\n";
    for (std::size_t i = 0; i < names.size(); ++i) print_cell("-----");
    os_ << "\n";
  }
  void row(const std::vector<double>& values) override {
    char buf[32];
    for (double v : values) {
      std::snprintf(buf, sizeof(buf), "%14.4g", v);
      os_ << buf;
    }
    os_ << "\n";
  }
  void note(const std::string& text) override {
    os_ << "# " << text << "\n";
  }
  void end() override { os_.flush(); }

 private:
  void print_cell(const std::string& s) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%14s", s.c_str());
    os_ << buf;
  }
  std::ostream& os_;
};

/// Comma-separated values: one header line, one line per row. Title,
/// metadata and notes become '#' comment lines (ignored by CSV parsers).
class CsvReporter : public Reporter {
 public:
  explicit CsvReporter(std::ostream& os) : os_(os) {}

  void begin(const std::string& title) override {
    os_ << "# " << title << "\n";
  }
  void meta(const std::string& key, const std::string& value) override {
    os_ << "# " << key << ": " << value << "\n";
  }
  void columns(const std::vector<std::string>& names) override {
    for (std::size_t i = 0; i < names.size(); ++i) {
      os_ << (i ? "," : "") << names[i];
    }
    os_ << "\n";
  }
  void row(const std::vector<double>& values) override {
    char buf[32];
    for (std::size_t i = 0; i < values.size(); ++i) {
      std::snprintf(buf, sizeof(buf), "%.17g", values[i]);
      os_ << (i ? "," : "") << buf;
    }
    os_ << "\n";
  }
  void note(const std::string& text) override {
    os_ << "# " << text << "\n";
  }
  void end() override { os_.flush(); }

 private:
  std::ostream& os_;
};

/// Single JSON object: {"title", "meta": {...}, "columns": [...],
/// "rows": [[...]], "notes": [...]}. Doubles use %.17g (round-trip
/// exact), so byte-identical output == bitwise-identical results.
class JsonReporter : public Reporter {
 public:
  explicit JsonReporter(std::ostream& os) : os_(os) {}

  void begin(const std::string& title) override {
    os_ << "{\n  \"title\": " << quote(title);
  }
  void meta(const std::string& key, const std::string& value) override {
    meta_.emplace_back(key, value);
  }
  void columns(const std::vector<std::string>& names) override {
    names_ = names;
  }
  void row(const std::vector<double>& values) override {
    rows_.push_back(values);
  }
  void note(const std::string& text) override { notes_.push_back(text); }

  void end() override {
    os_ << ",\n  \"meta\": {";
    for (std::size_t i = 0; i < meta_.size(); ++i) {
      os_ << (i ? ", " : "") << quote(meta_[i].first) << ": "
          << quote(meta_[i].second);
    }
    os_ << "},\n  \"columns\": [";
    for (std::size_t i = 0; i < names_.size(); ++i) {
      os_ << (i ? ", " : "") << quote(names_[i]);
    }
    os_ << "],\n  \"rows\": [";
    char buf[32];
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      os_ << (r ? ",\n    " : "\n    ") << "[";
      for (std::size_t c = 0; c < rows_[r].size(); ++c) {
        std::snprintf(buf, sizeof(buf), "%.17g", rows_[r][c]);
        os_ << (c ? ", " : "") << buf;
      }
      os_ << "]";
    }
    os_ << (rows_.empty() ? "],\n" : "\n  ],\n") << "  \"notes\": [";
    for (std::size_t i = 0; i < notes_.size(); ++i) {
      os_ << (i ? ", " : "") << quote(notes_[i]);
    }
    os_ << "]\n}\n";
    os_.flush();
  }

 private:
  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char esc[8];
            std::snprintf(esc, sizeof(esc), "\\u%04x", c);
            out += esc;
          } else {
            out += c;
          }
      }
    }
    out += '"';
    return out;
  }

  std::ostream& os_;
  std::vector<std::pair<std::string, std::string>> meta_;
  std::vector<std::string> names_;
  std::vector<std::vector<double>> rows_;
  std::vector<std::string> notes_;
};

/// Legacy stdout table writer used by the waveform benches (Figs. 5/9):
/// a thin shell over TextReporter/CsvReporter on std::cout, so all table
/// formatting has one source of truth. New code should use a Reporter
/// backend directly.
class Report {
 public:
  explicit Report(std::string title, bool csv = false)
      : text_(std::cout),
        csv_(std::cout),
        active_(csv ? static_cast<Reporter*>(&csv_) : &text_) {
    active_->begin(title);
  }
  ~Report() { active_->end(); }

  void columns(const std::vector<std::string>& names) {
    active_->columns(names);
  }
  void row(const std::vector<double>& values) { active_->row(values); }
  /// Free-form annotation line (ignored by CSV parsers).
  void note(const std::string& text) { active_->note(text); }

 private:
  TextReporter text_;
  CsvReporter csv_;
  Reporter* active_;
};

/// Shared command-line knobs for the figure benches and btsc-sweep:
/// --seeds/--replications N, --quick, --csv, --json, --threads N,
/// --out FILE, --base-seed S, --max-points N, --shards N,
/// --checkpoint-warmup, --cold-warmup, --checkpoint-dir DIR,
/// --journal FILE, --resume, --rep-timeout S, --max-retries N,
/// --keep-going, --quarantine-out FILE. Unknown arguments are ignored
/// (each main may parse extras of its own).
struct BenchArgs {
  /// Replications per point; 0 = scenario/bench default.
  int seeds = 0;
  /// Use the reduced configuration (fewer replications, shorter windows).
  bool quick = false;
  /// Emit CSV instead of the fixed-width text table.
  bool csv = false;
  /// Emit JSON instead of the fixed-width text table.
  bool json = false;
  /// Worker threads for sweep-backed benches; 0 = hardware concurrency.
  int threads = 1;
  /// Output file; empty = stdout. ".json"/".csv" suffixes select the
  /// format unless --csv/--json already did.
  std::string out;
  /// Root seed override for sweep-backed benches; 0 = default.
  std::uint64_t base_seed = 0;
  /// Keep only the first N sweep points; 0 = all.
  int max_points = 0;
  /// Disable the PHY burst transport (per-bit reference path); the
  /// simulation results are bit-identical either way -- this is the
  /// swap-safety escape hatch, not a modelling knob.
  bool no_burst = false;
  /// Fork every replication from a per-point warm-up snapshot instead of
  /// re-running the warm-up (runner::WarmupMode::kFork). Changes the
  /// sample streams relative to the default single-stage replication,
  /// but is bitwise equivalent to --cold-warmup.
  bool checkpoint_warmup = false;
  /// Staged replications with the warm-up re-run cold every time
  /// (runner::WarmupMode::kCold) -- the reference semantics of, and the
  /// escape hatch from, --checkpoint-warmup.
  bool cold_warmup = false;
  /// Shard request for every scenario system built by this process
  /// (core::set_shard_request_default); 0 = leave the default (1).
  /// The partition planner clamps/fuses per scenario, so the output is
  /// byte-identical at any value -- genuine parallelism needs a
  /// scenario with rf_delay > 0.
  int shards = 0;
  /// Append-only results journal file (--journal); empty = none. Every
  /// completed replication is fsync'd there, enabling --resume.
  std::string journal;
  /// Resume from an existing journal instead of refusing to overwrite
  /// it (--resume; requires --journal).
  bool resume = false;
  /// Durable warm-up checkpoint directory (--checkpoint-dir); empty =
  /// in-memory warm-up cache only. Applies to --checkpoint-warmup runs.
  std::string checkpoint_dir;
  /// Per-replication deadline in seconds (--rep-timeout); <= 0 = none.
  /// Enables the sweep supervisor: overrunning replications are
  /// quarantined instead of hanging the sweep.
  double rep_timeout = 0.0;
  /// Extra attempts for a throwing replication (--max-retries); enables
  /// the supervisor.
  int max_retries = 0;
  /// Quarantine failing replications and keep sweeping (--keep-going);
  /// enables the supervisor.
  bool keep_going = false;
  /// Write the machine-readable quarantine report here
  /// (--quarantine-out); empty = stderr when non-empty quarantine.
  std::string quarantine_out;

  static BenchArgs parse(int argc, char** argv) {
    // Malformed numeric values keep the previous value and warn, rather
    // than being atoi-coerced to a silently different configuration.
    auto parse_int = [](const std::string& flag, const char* text,
                        int fallback) {
      char* end = nullptr;
      errno = 0;
      const long v = std::strtol(text, &end, 10);
      if (end == text || *end != '\0' || errno == ERANGE ||
          v < INT_MIN || v > INT_MAX) {
        std::fprintf(stderr,
                     "warning: ignoring malformed or out-of-range %s "
                     "value: %s\n",
                     flag.c_str(), text);
        return fallback;
      }
      return static_cast<int>(v);
    };
    auto parse_double = [](const std::string& flag, const char* text,
                           double fallback) {
      char* end = nullptr;
      errno = 0;
      const double v = std::strtod(text, &end);
      if (end == text || *end != '\0' || errno == ERANGE) {
        std::fprintf(stderr,
                     "warning: ignoring malformed or out-of-range %s "
                     "value: %s\n",
                     flag.c_str(), text);
        return fallback;
      }
      return v;
    };
    BenchArgs a;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--quick") {
        a.quick = true;
      } else if (arg == "--no-burst") {
        a.no_burst = true;
      } else if (arg == "--checkpoint-warmup") {
        a.checkpoint_warmup = true;
      } else if (arg == "--cold-warmup") {
        a.cold_warmup = true;
      } else if (arg == "--csv") {
        a.csv = true;
      } else if (arg == "--json") {
        a.json = true;
      } else if ((arg == "--seeds" || arg == "--replications") &&
                 i + 1 < argc) {
        a.seeds = parse_int(arg, argv[++i], a.seeds);
      } else if (arg == "--threads" && i + 1 < argc) {
        a.threads = parse_int(arg, argv[++i], a.threads);
      } else if (arg == "--out" && i + 1 < argc) {
        a.out = argv[++i];
      } else if (arg == "--base-seed" && i + 1 < argc) {
        char* end = nullptr;
        const char* text = argv[++i];
        errno = 0;
        const std::uint64_t v = std::strtoull(text, &end, 10);
        // strtoull wraps negatives and saturates past 2^64; both would
        // silently land in a different reproducibility universe.
        if (end == text || *end != '\0' || errno == ERANGE ||
            text[0] == '-') {
          std::fprintf(stderr,
                       "warning: ignoring malformed or out-of-range "
                       "--base-seed value: %s\n",
                       text);
        } else {
          a.base_seed = v;
        }
      } else if (arg == "--max-points" && i + 1 < argc) {
        a.max_points = parse_int(arg, argv[++i], a.max_points);
      } else if (arg == "--shards" && i + 1 < argc) {
        a.shards = parse_int(arg, argv[++i], a.shards);
      } else if (arg == "--journal" && i + 1 < argc) {
        a.journal = argv[++i];
      } else if (arg == "--resume") {
        a.resume = true;
      } else if (arg == "--checkpoint-dir" && i + 1 < argc) {
        a.checkpoint_dir = argv[++i];
      } else if (arg == "--rep-timeout" && i + 1 < argc) {
        a.rep_timeout = parse_double(arg, argv[++i], a.rep_timeout);
      } else if (arg == "--max-retries" && i + 1 < argc) {
        a.max_retries = parse_int(arg, argv[++i], a.max_retries);
      } else if (arg == "--keep-going") {
        a.keep_going = true;
      } else if (arg == "--quarantine-out" && i + 1 < argc) {
        a.quarantine_out = argv[++i];
      }
    }
    return a;
  }
};

}  // namespace btsc::core
