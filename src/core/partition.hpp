// Shard partitioning: decides how a scenario's piconets map onto
// conservative parallel Environment shards (sim/shard.hpp).
//
// The planner is deliberately conservative about conservatism: the
// shard group's lookahead is the channel rf_delay, because that is the
// only physical latency separating a transmitter's decision from its
// remote effect. The paper's studies all run rf_delay = 0, which means
// zero lookahead -- and a conservative scheme cannot execute coupled
// shards in parallel with zero lookahead (every window would be
// empty). plan_shards() therefore *fuses* such a request back to one
// shard and records why; the fused execution is the unchanged legacy
// single-Environment path, which is exactly what makes `--shards N`
// byte-identical to `--shards 1` on every figure. Genuine multi-shard
// execution kicks in for scenarios that model the RF block latency
// (rf_delay > 0), one piconet per shard.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace btsc::core {

/// Stream id under which per-shard root seeds are derived:
/// shard_seed = Rng::derive_stream_seed(scenario_seed, kShardSeedStream, s).
/// Pure function of (seed, s), so shard streams are independent of the
/// shard count actually running and of every sweep stream (which derive
/// under small point indices).
inline constexpr std::uint64_t kShardSeedStream = 0x53484152;  // "SHAR"

struct ShardPlan {
  /// Shards the scenario will actually run with (>= 1).
  int num_shards = 1;
  /// piconet_shard[p] = shard owning piconet p (identity mapping today:
  /// one piconet per shard, extra piconets round-robin).
  std::vector<int> piconet_shard;
  /// Conservative window length (== rf_delay); zero when fused.
  sim::SimTime lookahead;
  /// Why the request was reduced ("" when honoured as asked).
  std::string fused_reason;
};

/// Computes the shard plan for `requested` shards over `num_piconets`
/// piconets coupled through a channel with `rf_delay`. requested <= 0
/// means "use the process-wide default" (shard_request_default()).
/// The result is clamped to the piconet count and fused to one shard
/// when rf_delay is zero.
ShardPlan plan_shards(int requested, int num_piconets, sim::SimTime rf_delay);

/// Process-wide default shard request, the `--shards N` CLI knob
/// (mirrors phy::NoisyChannel::set_burst_transport_default: set before
/// systems are built, read once per construction). Thread-safe.
/// Default 1.
void set_shard_request_default(int shards);
int shard_request_default();

}  // namespace btsc::core
