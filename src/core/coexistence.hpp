// Two co-located piconets on one channel.
//
// The paper's channel resolver exists for exactly this case: "the
// collision between packets ... is possible when the piconet is not
// already created or when two or more piconets coexist". Each piconet
// hops pseudo-randomly over the 79 RF channels under its own master
// address and clock, so two piconets collide on ~1/79 of their slots;
// collided symbols resolve to 'X' and are garbled at the receivers.
// This scenario quantifies the resulting goodput loss (the subject of
// the paper's references [3]-[5]).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "baseband/device.hpp"
#include "lm/link_manager.hpp"
#include "phy/channel.hpp"
#include "sim/environment.hpp"

namespace btsc::core {

struct CoexistenceConfig {
  /// Root seed of the two-piconet system.
  std::uint64_t seed = 1;
  /// Channel bit error rate on the shared medium.
  double ber = 0.0;
  /// ACL packet type used by both links.
  baseband::PacketType data_packet_type = baseband::PacketType::kDm1;
};

/// Two master+slave pairs sharing one NoisyChannel. Piconet 0 and 1 are
/// created sequentially (the second forms while the first is live, so
/// its creation already experiences interference).
class TwoPiconets {
 public:
  explicit TwoPiconets(const CoexistenceConfig& config);
  ~TwoPiconets();

  sim::Environment& env() { return env_; }
  phy::NoisyChannel& channel() { return channel_; }
  baseband::Device& master(int piconet);
  baseband::Device& slave(int piconet);
  lm::LinkManager& master_lm(int piconet);
  lm::LinkManager& slave_lm(int piconet);

  /// Creates piconet `p` (inquiry + page with generous timeouts).
  /// Retries until success or `max_attempts` is exhausted.
  bool create(int piconet, int max_attempts = 4);

  void run(sim::SimTime duration) { env_.run(duration); }

  // ---- checkpoint / fork ----

  /// Serializes all mutable state (channel, devices, link managers,
  /// kernel last) at a settled instant; see BluetoothSystem.
  std::vector<std::uint8_t> save_snapshot();

  /// Restores into an identically constructed twin (same
  /// CoexistenceConfig, including the seed).
  void restore_snapshot(const std::vector<std::uint8_t>& bytes);

 private:
  sim::Environment env_;
  phy::NoisyChannel channel_;
  std::vector<std::unique_ptr<baseband::Device>> devices_;  // m0 s0 m1 s1
  std::vector<std::unique_ptr<lm::LinkManager>> lms_;
};

}  // namespace btsc::core
