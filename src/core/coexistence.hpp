// Two co-located piconets on one channel.
//
// The paper's channel resolver exists for exactly this case: "the
// collision between packets ... is possible when the piconet is not
// already created or when two or more piconets coexist". Each piconet
// hops pseudo-randomly over the 79 RF channels under its own master
// address and clock, so two piconets collide on ~1/79 of their slots;
// collided symbols resolve to 'X' and are garbled at the receivers.
// This scenario quantifies the resulting goodput loss (the subject of
// the paper's references [3]-[5]).
//
// Sharded execution
// -----------------
// TwoPiconets is also the first scenario that can run as conservative
// parallel shards (sim/shard.hpp): with rf_delay > 0 and shards > 1,
// each piconet gets its own Environment + medium replica, coupled
// through cross-shard drive events with rf_delay as the lookahead.
// With rf_delay == 0 (the paper's configuration) the partition planner
// (core/partition.hpp) fuses the request back to the single-
// Environment construction below, byte-identical to every release so
// far. The single-shard construction order (one env seeded with
// config.seed, clock draws in device order from that env's RNG) is
// load-bearing for that byte-compatibility and must not change.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "baseband/device.hpp"
#include "core/partition.hpp"
#include "lm/link_manager.hpp"
#include "phy/channel.hpp"
#include "sim/environment.hpp"
#include "sim/shard.hpp"

namespace btsc::core {

struct CoexistenceConfig {
  /// Root seed of the two-piconet system.
  std::uint64_t seed = 1;
  /// Channel bit error rate on the shared medium.
  double ber = 0.0;
  /// ACL packet type used by both links.
  baseband::PacketType data_packet_type = baseband::PacketType::kDm1;
  /// Modulator/demodulator latency of the medium. Zero (the paper's
  /// value) keeps TX/RX bit grids aligned -- and forces any shard
  /// request to fuse (zero conservative lookahead).
  sim::SimTime rf_delay = sim::SimTime::zero();
  /// Shard request; <= 0 uses the process-wide default (`--shards`).
  /// The effective count comes from plan_shards() (clamped to the two
  /// piconets, fused when rf_delay is zero).
  int shards = 0;
  /// Worker-lane count for a sharded run (0: one lane per shard).
  /// Results are lane-count invariant.
  int lanes = 0;
};

/// Two master+slave pairs sharing one (possibly replicated) medium.
/// Piconet 0 and 1 are created sequentially (the second forms while
/// the first is live, so its creation already experiences
/// interference).
class TwoPiconets {
 public:
  explicit TwoPiconets(const CoexistenceConfig& config);
  ~TwoPiconets();

  /// Shard 0's environment (the only one in a fused run). Scenario
  /// code that reseeds the measurement stream uses this; in a sharded
  /// run the other shards' streams are derived per shard.
  sim::Environment& env() { return *envs_.front(); }
  sim::Environment& shard_env(int shard) { return *envs_.at(shard); }
  /// Shard 0's medium replica (the only one in a fused run).
  phy::NoisyChannel& channel() { return *channels_.front(); }
  phy::NoisyChannel& shard_channel(int shard) { return *channels_.at(shard); }
  baseband::Device& master(int piconet);
  baseband::Device& slave(int piconet);
  lm::LinkManager& master_lm(int piconet);
  lm::LinkManager& slave_lm(int piconet);

  /// The plan the constructor executed (fused_reason records a reduced
  /// request).
  const ShardPlan& shard_plan() const { return plan_; }
  int num_shards() const { return static_cast<int>(envs_.size()); }

  /// Creates piconet `p` (inquiry + page with generous timeouts).
  /// Retries until success or `max_attempts` is exhausted. In a
  /// sharded run the other shard keeps executing in lockstep.
  bool create(int piconet, int max_attempts = 4);

  sim::SimTime now() const { return envs_.front()->now(); }
  void run(sim::SimTime duration);

  /// Collision samples summed over the medium replicas in shard order
  /// (equals channel().collision_samples() in a fused run).
  std::uint64_t collision_samples() const;

  /// Kernel counters aggregated across shards in fixed shard order --
  /// shard- and lane-count invariant for a fixed plan.
  sim::Environment::SchedulerStats scheduler_stats() const;

  // ---- checkpoint / fork ----

  /// Serializes all mutable state (per shard: channel, devices, link
  /// managers; kernels last) at a settled instant; see BluetoothSystem.
  /// A sharded system checkpoints at a rendezvous boundary (any point
  /// between run() calls).
  std::vector<std::uint8_t> save_snapshot();

  /// Restores into an identically constructed twin (same
  /// CoexistenceConfig, including the seed and shard plan).
  void restore_snapshot(const std::vector<std::uint8_t>& bytes);

 private:
  ShardPlan plan_;
  // Destruction order matters: group_ first (parks lane threads), then
  // lms/devices/channels (whose destructors deregister from their
  // environments), envs last.
  std::vector<std::unique_ptr<sim::Environment>> envs_;
  std::vector<std::unique_ptr<phy::NoisyChannel>> channels_;
  std::vector<std::unique_ptr<baseband::Device>> devices_;  // m0 s0 m1 s1
  std::vector<std::unique_ptr<lm::LinkManager>> lms_;
  std::unique_ptr<sim::ShardGroup> group_;
};

}  // namespace btsc::core
