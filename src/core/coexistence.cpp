#include "core/coexistence.hpp"

#include <optional>
#include <stdexcept>

#include "baseband/bt_clock.hpp"
#include "sim/snapshot.hpp"

namespace btsc::core {

using namespace btsc::sim::literals;
using baseband::BdAddr;
using baseband::Device;
using baseband::DeviceConfig;
using baseband::kClockMask;
using sim::SimTime;

namespace {

phy::ChannelConfig channel_config(const CoexistenceConfig& cfg) {
  phy::ChannelConfig ch;
  ch.ber = cfg.ber;
  ch.rf_delay = cfg.rf_delay;
  return ch;
}

constexpr const char* kNames[4] = {"m0", "s0", "m1", "s1"};

// Well-separated addresses -> uncorrelated hop sequences.
const BdAddr kAddrs[4] = {
    BdAddr(0x3A11C5, 0x51, 0xA000), BdAddr(0x7E24D9, 0x62, 0xA001),
    BdAddr(0xB3590E, 0x73, 0xB000), BdAddr(0xC87A63, 0x84, 0xB001)};

DeviceConfig device_config(const CoexistenceConfig& config, int i,
                           sim::Environment& env) {
  DeviceConfig dc;
  dc.addr = kAddrs[i];
  dc.lc.inquiry_timeout_slots = 32768;
  dc.lc.page_timeout_slots = 16384;
  dc.lc.data_packet_type = config.data_packet_type;
  dc.clkn_init =
      i == 0 ? 0
             : static_cast<std::uint32_t>(env.rng().uniform(0, kClockMask));
  dc.clkn_phase = SimTime::us(i == 0 ? 1000 : env.rng().uniform(1, 1249));
  return dc;
}

}  // namespace

TwoPiconets::TwoPiconets(const CoexistenceConfig& config)
    : plan_(plan_shards(config.shards, 2, config.rf_delay)) {
  const phy::ChannelConfig ch = channel_config(config);
  if (plan_.num_shards <= 1) {
    // The legacy single-Environment construction, byte-for-byte: one
    // kernel seeded with the scenario seed, clock draws in device
    // order from its root stream.
    envs_.push_back(std::make_unique<sim::Environment>(config.seed));
    channels_.push_back(
        std::make_unique<phy::NoisyChannel>(*envs_[0], "channel", ch));
    for (int i = 0; i < 4; ++i) {
      devices_.push_back(
          std::make_unique<Device>(*envs_[0], kNames[i],
                                   device_config(config, i, *envs_[0]),
                                   *channels_[0]));
    }
  } else {
    // One Environment + medium replica per shard; root seeds derived
    // per shard so the streams are independent of lane scheduling.
    group_ = std::make_unique<sim::ShardGroup>(plan_.lookahead);
    for (int s = 0; s < plan_.num_shards; ++s) {
      envs_.push_back(std::make_unique<sim::Environment>(
          sim::Rng::derive_stream_seed(config.seed, kShardSeedStream,
                                       static_cast<std::uint64_t>(s))));
      group_->add_shard(*envs_.back());
      channels_.push_back(
          std::make_unique<phy::NoisyChannel>(*envs_.back(), "channel", ch));
    }
    // Local devices first (their radios take the low port ids on their
    // home channel), in global device order; clock draws come from the
    // owning shard's stream.
    for (int i = 0; i < 4; ++i) {
      const int s = plan_.piconet_shard[static_cast<std::size_t>(i / 2)];
      sim::Environment& env = *envs_[static_cast<std::size_t>(s)];
      devices_.push_back(std::make_unique<Device>(
          env, kNames[i], device_config(config, i, env),
          *channels_[static_cast<std::size_t>(s)]));
    }
    // Then a ghost port per remote transmitter on every replica, and
    // the coupling itself (domain 0: the one shared medium).
    for (int s = 0; s < plan_.num_shards; ++s) {
      for (int i = 0; i < 4; ++i) {
        const int home = plan_.piconet_shard[static_cast<std::size_t>(i / 2)];
        if (home == s) continue;
        channels_[static_cast<std::size_t>(s)]->attach_remote(
            kNames[i], static_cast<std::uint32_t>(home),
            devices_[static_cast<std::size_t>(i)]->radio().port());
      }
    }
    for (int s = 0; s < plan_.num_shards; ++s) {
      channels_[static_cast<std::size_t>(s)]->bind_shard(*group_, 0);
    }
    group_->set_lanes(config.lanes > 0 ? config.lanes : plan_.num_shards);
  }
  for (auto& d : devices_) {
    lms_.push_back(std::make_unique<lm::LinkManager>(*d));
  }
}

TwoPiconets::~TwoPiconets() = default;

baseband::Device& TwoPiconets::master(int piconet) {
  return *devices_.at(static_cast<std::size_t>(2 * piconet));
}
baseband::Device& TwoPiconets::slave(int piconet) {
  return *devices_.at(static_cast<std::size_t>(2 * piconet + 1));
}
lm::LinkManager& TwoPiconets::master_lm(int piconet) {
  return *lms_.at(static_cast<std::size_t>(2 * piconet));
}
lm::LinkManager& TwoPiconets::slave_lm(int piconet) {
  return *lms_.at(static_cast<std::size_t>(2 * piconet + 1));
}

void TwoPiconets::run(sim::SimTime duration) {
  if (group_ != nullptr) {
    group_->run(duration);
  } else {
    envs_.front()->run(duration);
  }
}

std::uint64_t TwoPiconets::collision_samples() const {
  std::uint64_t total = 0;
  for (const auto& ch : channels_) total += ch->collision_samples();
  return total;
}

sim::Environment::SchedulerStats TwoPiconets::scheduler_stats() const {
  if (group_ != nullptr) return group_->scheduler_stats();
  return envs_.front()->scheduler_stats();
}

std::vector<std::uint8_t> TwoPiconets::save_snapshot() {
  sim::SnapshotWriter w;
  w.begin_section(sim::snapshot_tag("COEX"));
  w.u32(static_cast<std::uint32_t>(envs_.size()));
  w.end_section();
  for (auto& ch : channels_) ch->save_state(w);
  for (auto& dev : devices_) {
    dev->clock().save_state(w);
    dev->radio().save_state(w);
    dev->receiver().save_state(w);
    dev->lc().save_state(w);
  }
  for (auto& lm : lms_) lm->save_state(w);
  for (auto& env : envs_) env->save_state(w);
  return w.take();
}

void TwoPiconets::restore_snapshot(const std::vector<std::uint8_t>& bytes) {
  sim::SnapshotReader r(bytes);
  r.enter_section(sim::snapshot_tag("COEX"));
  if (r.u32() != envs_.size()) {
    throw sim::SnapshotError("coexistence snapshot: shard count mismatch");
  }
  r.leave_section();
  for (auto& ch : channels_) ch->restore_state(r);
  for (auto& dev : devices_) {
    dev->clock().restore_state(r);
    dev->radio().restore_state(r);
    dev->receiver().restore_state(r);
    dev->lc().restore_state(r);
  }
  for (auto& lm : lms_) lm->restore_state(r);
  for (auto& env : envs_) env->restore_state(r);
  if (group_ != nullptr) group_->align_now();
  if (!r.at_end()) {
    throw sim::SnapshotError("coexistence snapshot: trailing bytes");
  }
}

bool TwoPiconets::create(int piconet, int max_attempts) {
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    std::optional<bool> inquiry_done;
    lm::LinkManager::Events ev;
    ev.inquiry_complete = [&](bool ok) { inquiry_done = ok; };
    master_lm(piconet).set_events(std::move(ev));
    slave(piconet).lc().enable_inquiry_scan();
    master(piconet).lc().enable_inquiry();
    const SimTime inquiry_deadline = now() + 25_sec;
    while (!inquiry_done && now() < inquiry_deadline) run(5_ms);
    if (!inquiry_done.value_or(false)) continue;

    const auto& found = master(piconet).lc().discovered();
    if (found.empty()) continue;
    std::optional<bool> page_done;
    lm::LinkManager::Events pev;
    pev.page_complete = [&](bool ok) { page_done = ok; };
    master_lm(piconet).set_events(std::move(pev));
    slave(piconet).lc().enable_page_scan();
    master(piconet).lc().enable_page(found[0].addr, found[0].clkn_offset);
    const SimTime page_deadline = now() + 12_sec;
    while (!page_done && now() < page_deadline) run(5_ms);
    if (page_done.value_or(false)) return true;
  }
  return false;
}

}  // namespace btsc::core
