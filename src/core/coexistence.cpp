#include "core/coexistence.hpp"

#include <optional>

#include "baseband/bt_clock.hpp"
#include "sim/snapshot.hpp"

namespace btsc::core {

using namespace btsc::sim::literals;
using baseband::BdAddr;
using baseband::Device;
using baseband::DeviceConfig;
using baseband::kClockMask;
using sim::SimTime;

namespace {

phy::ChannelConfig channel_config(const CoexistenceConfig& cfg) {
  phy::ChannelConfig ch;
  ch.ber = cfg.ber;
  return ch;
}

}  // namespace

TwoPiconets::TwoPiconets(const CoexistenceConfig& config)
    : env_(config.seed), channel_(env_, "channel", channel_config(config)) {
  // Well-separated addresses -> uncorrelated hop sequences.
  const BdAddr addrs[4] = {
      BdAddr(0x3A11C5, 0x51, 0xA000), BdAddr(0x7E24D9, 0x62, 0xA001),
      BdAddr(0xB3590E, 0x73, 0xB000), BdAddr(0xC87A63, 0x84, 0xB001)};
  for (int i = 0; i < 4; ++i) {
    DeviceConfig dc;
    dc.addr = addrs[i];
    dc.lc.inquiry_timeout_slots = 32768;
    dc.lc.page_timeout_slots = 16384;
    dc.lc.data_packet_type = config.data_packet_type;
    dc.clkn_init =
        i == 0 ? 0
               : static_cast<std::uint32_t>(env_.rng().uniform(0, kClockMask));
    dc.clkn_phase = SimTime::us(i == 0 ? 1000 : env_.rng().uniform(1, 1249));
    static const char* names[] = {"m0", "s0", "m1", "s1"};
    devices_.push_back(
        std::make_unique<Device>(env_, names[i], dc, channel_));
  }
  for (auto& d : devices_) {
    lms_.push_back(std::make_unique<lm::LinkManager>(*d));
  }
}

TwoPiconets::~TwoPiconets() = default;

baseband::Device& TwoPiconets::master(int piconet) {
  return *devices_.at(static_cast<std::size_t>(2 * piconet));
}
baseband::Device& TwoPiconets::slave(int piconet) {
  return *devices_.at(static_cast<std::size_t>(2 * piconet + 1));
}
lm::LinkManager& TwoPiconets::master_lm(int piconet) {
  return *lms_.at(static_cast<std::size_t>(2 * piconet));
}
lm::LinkManager& TwoPiconets::slave_lm(int piconet) {
  return *lms_.at(static_cast<std::size_t>(2 * piconet + 1));
}

std::vector<std::uint8_t> TwoPiconets::save_snapshot() {
  sim::SnapshotWriter w;
  w.begin_section(sim::snapshot_tag("COEX"));
  w.end_section();  // no scenario-level state beyond the modules
  channel_.save_state(w);
  for (auto& dev : devices_) {
    dev->clock().save_state(w);
    dev->radio().save_state(w);
    dev->receiver().save_state(w);
    dev->lc().save_state(w);
  }
  for (auto& lm : lms_) lm->save_state(w);
  env_.save_state(w);
  return w.take();
}

void TwoPiconets::restore_snapshot(const std::vector<std::uint8_t>& bytes) {
  sim::SnapshotReader r(bytes);
  r.enter_section(sim::snapshot_tag("COEX"));
  r.leave_section();
  channel_.restore_state(r);
  for (auto& dev : devices_) {
    dev->clock().restore_state(r);
    dev->radio().restore_state(r);
    dev->receiver().restore_state(r);
    dev->lc().restore_state(r);
  }
  for (auto& lm : lms_) lm->restore_state(r);
  env_.restore_state(r);
  if (!r.at_end()) {
    throw sim::SnapshotError("coexistence snapshot: trailing bytes");
  }
}

bool TwoPiconets::create(int piconet, int max_attempts) {
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    std::optional<bool> inquiry_done;
    lm::LinkManager::Events ev;
    ev.inquiry_complete = [&](bool ok) { inquiry_done = ok; };
    master_lm(piconet).set_events(std::move(ev));
    slave(piconet).lc().enable_inquiry_scan();
    master(piconet).lc().enable_inquiry();
    const SimTime inquiry_deadline = env_.now() + 25_sec;
    while (!inquiry_done && env_.now() < inquiry_deadline) env_.run(5_ms);
    if (!inquiry_done.value_or(false)) continue;

    const auto& found = master(piconet).lc().discovered();
    if (found.empty()) continue;
    std::optional<bool> page_done;
    lm::LinkManager::Events pev;
    pev.page_complete = [&](bool ok) { page_done = ok; };
    master_lm(piconet).set_events(std::move(pev));
    slave(piconet).lc().enable_page_scan();
    master(piconet).lc().enable_page(found[0].addr, found[0].clkn_offset);
    const SimTime page_deadline = env_.now() + 12_sec;
    while (!page_done && env_.now() < page_deadline) env_.run(5_ms);
    if (page_done.value_or(false)) return true;
  }
  return false;
}

}  // namespace btsc::core
