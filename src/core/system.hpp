// BluetoothSystem: builds a complete simulated network and orchestrates
// the piconet life cycle phases the paper analyses (inquiry, page,
// connection, low-power modes).
//
// One object owns the environment, the optional VCD tracer, the noisy
// channel, every Device and its LinkManager. Device 0 is the prospective
// master; devices 1..N are slaves with random clock values and phases.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "baseband/device.hpp"
#include "core/partition.hpp"
#include "lm/link_manager.hpp"
#include "phy/channel.hpp"
#include "sim/environment.hpp"
#include "sim/tracer.hpp"

namespace btsc::core {

struct SystemConfig {
  /// Slaves to instantiate; device 0 is always the prospective master.
  int num_slaves = 1;
  /// Channel bit error rate applied by the noisy channel.
  double ber = 0.0;
  /// Root seed of the whole system (device streams are split from it).
  std::uint64_t seed = 1;
  /// Link controller configuration applied to every device.
  baseband::LcConfig lc;
  /// When set, a VCD waveform is written here (construct-before-run).
  std::optional<std::string> vcd_path;
  /// Modulator/demodulator latency of the RF blocks.
  sim::SimTime rf_delay = sim::SimTime::zero();
  /// Shard request (<= 0: the process-wide `--shards` default). A
  /// BluetoothSystem is one piconet -- the partitioning unit -- so the
  /// plan always resolves to a single shard; the request is recorded
  /// in shard_plan() and the construction is unchanged at any value.
  int shards = 0;
};

/// Outcome of one creation phase (inquiry or page).
struct PhaseResult {
  bool success = false;
  /// Time slots the phase took (up to the configured timeout).
  std::uint64_t slots = 0;
};

class BluetoothSystem {
 public:
  explicit BluetoothSystem(const SystemConfig& config);
  ~BluetoothSystem();

  BluetoothSystem(const BluetoothSystem&) = delete;
  BluetoothSystem& operator=(const BluetoothSystem&) = delete;

  sim::Environment& env() { return env_; }
  phy::NoisyChannel& channel() { return channel_; }
  baseband::Device& master() { return *devices_.front(); }
  baseband::Device& slave(int i) {
    return *devices_.at(static_cast<std::size_t>(i + 1));
  }
  lm::LinkManager& master_lm() { return *lms_.front(); }
  lm::LinkManager& slave_lm(int i) {
    return *lms_.at(static_cast<std::size_t>(i + 1));
  }
  int num_slaves() const { return static_cast<int>(devices_.size()) - 1; }

  /// The partitioning step's decision for this system (one piconet =>
  /// one shard, with the reduction reason when more were requested).
  const ShardPlan& shard_plan() const { return plan_; }

  /// Master inquires while every not-yet-connected slave scans. Returns
  /// when the configured number of responses arrived or on timeout.
  PhaseResult run_inquiry();

  /// Pages slave `i` (it must have been discovered first).
  PhaseResult run_page(int slave_index);

  /// Full creation: inquiry (expecting all slaves) + sequential pages.
  bool create_piconet();

  /// LT_ADDR a slave ended up with (0 if not connected).
  std::uint8_t lt_addr_of(int slave_index) {
    return slave(slave_index).lc().own_lt_addr();
  }

  void run(sim::SimTime duration) { env_.run(duration); }

  /// Closes the VCD trace (flushes the waveform file).
  void finish_trace();

  // ---- checkpoint / fork ----

  /// Serializes every mutable simulation layer (scenario flags, channel,
  /// per-device clock/radio/receiver/LC, link managers, kernel last) at a
  /// settled instant. Throws sim::SnapshotError if any pending timer is
  /// not re-armable (see Environment::save_state).
  std::vector<std::uint8_t> save_snapshot();

  /// Restores a snapshot into this system. The receiver must have been
  /// constructed through the identical construction path (same
  /// SystemConfig, including the seed) as the system that saved it; only
  /// mutable state is overwritten, the object graph is structural.
  void restore_snapshot(const std::vector<std::uint8_t>& bytes);

  /// Re-randomises every slave's CLKN value and tick phase from the
  /// environment RNG, in construction draw order -- the per-replication
  /// randomness of the creation experiments, applied after reseeding the
  /// RNG at a fork boundary.
  void randomize_slave_clocks();

 private:
  ShardPlan plan_;
  sim::Environment env_;
  std::unique_ptr<sim::VcdTracer> tracer_;
  phy::NoisyChannel channel_;
  std::vector<std::unique_ptr<baseband::Device>> devices_;
  std::vector<std::unique_ptr<lm::LinkManager>> lms_;
  std::vector<bool> connected_;
};

}  // namespace btsc::core
