// RF-activity and power metrics (the y-axes of the paper's Figs. 10-12).
//
// RF activity is the fraction of wall-clock time the TX or RX chain was
// enabled; the paper uses it directly as the power proxy. The PowerModel
// converts activity into an average power draw using per-chain figures
// typical of a 0.18 um Bluetooth radio (the paper's reference [2]).
#pragma once

#include "phy/radio.hpp"
#include "sim/time.hpp"

namespace btsc::core {

struct RfActivity {
  /// Fraction of wall-clock time the TX chain was enabled.
  double tx_fraction = 0.0;
  /// Fraction of wall-clock time the RX chain was enabled.
  double rx_fraction = 0.0;
  /// Combined RF duty cycle (the y-axis of Figs. 11-12).
  double total() const { return tx_fraction + rx_fraction; }
};

/// Snapshot-based probe: construct (or reset()) at the start of the
/// measurement window, call measure() at the end.
class ActivityProbe {
 public:
  explicit ActivityProbe(phy::Radio& radio) : radio_(radio) { reset(); }

  void reset() {
    radio_.reset_activity();
    start_ = radio_.env().now();
  }

  RfActivity measure() const {
    const auto elapsed = radio_.env().now() - start_;
    RfActivity a;
    if (elapsed == sim::SimTime::zero()) return a;
    const double t = static_cast<double>(elapsed.as_ns());
    a.tx_fraction = static_cast<double>(radio_.tx_on_time().as_ns()) / t;
    a.rx_fraction = static_cast<double>(radio_.rx_on_time().as_ns()) / t;
    return a;
  }

 private:
  phy::Radio& radio_;
  sim::SimTime start_;
};

/// Average power from RF duty cycles. Defaults follow a 0.18 um class-1
/// Bluetooth radio: ~30 mW in TX, ~33 mW in RX, tens of microwatts in
/// standby with the RF chains gated off.
struct PowerModel {
  /// Power draw with the transmit chain enabled, in milliwatts.
  double tx_mw = 30.0;
  /// Power draw with the receive chain enabled, in milliwatts.
  double rx_mw = 33.0;
  /// Standby draw with both RF chains gated off, in milliwatts.
  double idle_mw = 0.05;

  double average_mw(const RfActivity& a) const {
    const double idle_fraction =
        1.0 - a.tx_fraction - a.rx_fraction;
    return tx_mw * a.tx_fraction + rx_mw * a.rx_fraction +
           idle_mw * (idle_fraction < 0.0 ? 0.0 : idle_fraction);
  }

  /// Energy over a window, in microjoules.
  double energy_uj(const RfActivity& a, sim::SimTime window) const {
    return average_mw(a) * window.as_sec() * 1000.0;
  }
};

}  // namespace btsc::core
