#include "core/experiments.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "core/coexistence.hpp"
#include "core/system.hpp"
#include "core/traffic.hpp"

namespace btsc::core {

using baseband::kSlotDuration;
using sim::SimTime;

namespace {

/// Generous timeouts for phases that must succeed (activity experiments
/// need a connected piconet regardless of the creation statistics).
baseband::LcConfig reliable_lc() {
  baseband::LcConfig lc;
  lc.inquiry_timeout_slots = 32768;
  lc.page_timeout_slots = 16384;
  return lc;
}

/// A connected system plus the seed whose construction path produced it
/// (creation retries perturb the seed; a snapshot scaffold must replay
/// the successful construction, not the first attempt's).
struct BuiltConnected {
  std::unique_ptr<BluetoothSystem> system;
  std::uint64_t seed = 0;
};

/// Builds a connected 2-device system or throws (seed is perturbed until
/// creation succeeds; noiseless creation with long timeouts practically
/// always succeeds on the first try).
BuiltConnected connected_system_seeded(SystemConfig cfg,
                                       int max_attempts = 5) {
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    auto sys = std::make_unique<BluetoothSystem>(cfg);
    if (sys->create_piconet()) return {std::move(sys), cfg.seed};
    cfg.seed += 7919;
  }
  throw std::runtime_error("connected_system: piconet creation failed");
}

std::unique_ptr<BluetoothSystem> connected_system(SystemConfig cfg,
                                                  int max_attempts = 5) {
  return connected_system_seeded(cfg, max_attempts).system;
}

// ---- per-family system configurations (shared by the legacy one-shot
//      runners and the staged warm-up/scaffold pair, so both construct
//      byte-identical systems) ----

SystemConfig creation_config(double ber, std::uint32_t timeout_slots,
                             std::uint64_t seed) {
  SystemConfig sc;
  sc.num_slaves = 1;
  sc.ber = ber;
  sc.seed = seed;
  sc.lc.inquiry_timeout_slots = timeout_slots;
  sc.lc.page_timeout_slots = timeout_slots;
  return sc;
}

SystemConfig backoff_config(std::uint32_t backoff_max_slots,
                            std::uint64_t seed) {
  SystemConfig sc;
  sc.num_slaves = 1;
  sc.seed = seed;
  sc.lc.inquiry_backoff_max_slots = backoff_max_slots;
  return sc;
}

SystemConfig master_activity_config(std::uint64_t seed) {
  SystemConfig sc;
  sc.num_slaves = 1;
  sc.seed = seed;
  sc.lc = reliable_lc();
  // Poll sparsely so the measured activity is traffic-driven, matching
  // the paper's near-origin curve.
  sc.lc.t_poll_slots = 4000;
  return sc;
}

SystemConfig sniff_activity_config(std::uint64_t seed) {
  SystemConfig sc;
  sc.num_slaves = 1;
  sc.seed = seed;
  sc.lc = reliable_lc();
  return sc;
}

SystemConfig hold_activity_config(std::uint64_t seed) {
  SystemConfig sc;
  sc.num_slaves = 1;
  sc.seed = seed;
  sc.lc = reliable_lc();
  // The paper's Fig. 12 baseline is the pure listening cost (2.6%);
  // poll sparsely so the comparison isolates the hold/active trade-off.
  sc.lc.t_poll_slots = 4000;
  return sc;
}

SystemConfig throughput_system_config(baseband::PacketType type,
                                      std::uint64_t seed) {
  SystemConfig sc;
  sc.num_slaves = 1;
  sc.seed = seed;
  sc.lc = reliable_lc();
  sc.lc.data_packet_type = type;
  // Creation itself must succeed even at high BER: build noiselessly,
  // then dial the BER in (the paper's throughput goal concerns the
  // connected phase, not creation).
  sc.ber = 0.0;
  return sc;
}

// ---- measure stages (everything after the warm-up boundary; shared by
//      the legacy runners, which call them without reseeding, and the
//      staged run_*_from entry points, which reseed first) ----

CreationSample measure_creation(BluetoothSystem& sys) {
  CreationSample out;
  const PhaseResult inquiry = sys.run_inquiry();
  out.inquiry_success = inquiry.success;
  out.inquiry_slots = inquiry.slots;
  if (!inquiry.success) return out;

  out.page_attempted = true;
  const PhaseResult page = sys.run_page(0);
  out.page_success = page.success;
  out.page_slots = page.slots;
  return out;
}

MasterActivityRow measure_master_activity(BluetoothSystem& sys, double duty,
                                          const MasterActivityConfig& cfg) {
  MasterActivityRow row;
  row.duty = duty;
  // duty = used TX slots / available TX slots (one per even slot).
  const auto period_slots = static_cast<std::uint32_t>(
      std::max(2.0, std::round(2.0 / std::max(duty, 1e-6))));
  std::optional<PeriodicTrafficSource> source;
  if (duty > 0.0) {
    source.emplace(sys.master(), sys.lt_addr_of(0), period_slots,
                   cfg.payload_bytes);
  }
  sys.run(kSlotDuration * 64);  // settle
  ActivityProbe probe(sys.master().radio());
  sys.run(kSlotDuration * cfg.measure_slots);
  row.master = probe.measure();
  if (source) row.messages = source->messages_sent();
  return row;
}

SlaveActivityRow measure_sniff_activity(BluetoothSystem& sys,
                                        std::optional<std::uint32_t> tsniff,
                                        const SniffActivityConfig& cfg) {
  const std::uint8_t lt = sys.lt_addr_of(0);
  if (tsniff) {
    sys.master().lc().master_set_sniff(lt, *tsniff, 0, 1);
    sys.slave(0).lc().slave_set_sniff(*tsniff, 0, 1);
  }
  PeriodicTrafficSource source(sys.master(), lt, cfg.data_period_slots,
                               cfg.payload_bytes);
  sys.run(kSlotDuration * 256);  // settle into the sniff schedule
  ActivityProbe probe(sys.slave(0).radio());
  sys.run(kSlotDuration * cfg.measure_slots);

  SlaveActivityRow row;
  row.mode_parameter = tsniff;
  row.slave = probe.measure();
  return row;
}

SlaveActivityRow measure_hold_activity(BluetoothSystem& sys,
                                       std::optional<std::uint32_t> thold,
                                       const HoldActivityConfig& cfg) {
  const std::uint8_t lt = sys.lt_addr_of(0);
  sys.run(kSlotDuration * 64);

  SlaveActivityRow row;
  row.mode_parameter = thold;

  if (!thold) {
    ActivityProbe probe(sys.slave(0).radio());
    sys.run(kSlotDuration * cfg.min_measure_slots);
    row.slave = probe.measure();
    return row;
  }

  const std::uint32_t cycle = *thold + cfg.inter_hold_gap_slots;
  const std::uint32_t cycles = std::max<std::uint32_t>(
      6, (cfg.min_measure_slots + cycle - 1) / cycle);
  ActivityProbe probe(sys.slave(0).radio());
  for (std::uint32_t c = 0; c < cycles; ++c) {
    sys.master().lc().master_set_hold(lt, *thold);
    sys.slave(0).lc().slave_set_hold(*thold);
    sys.run(kSlotDuration * cycle);
  }
  row.slave = probe.measure();
  return row;
}

ThroughputRow measure_throughput(BluetoothSystem& sys,
                                 baseband::PacketType type, double ber,
                                 const ThroughputConfig& cfg) {
  sys.channel().set_ber(ber);

  const std::uint8_t lt = sys.lt_addr_of(0);
  const std::size_t payload = baseband::max_user_bytes(type);
  std::uint64_t delivered_bytes = 0;
  std::uint64_t delivered_msgs = 0;
  lm::LinkManager::Events ev;
  ev.user_data = [&](std::uint8_t, std::vector<std::uint8_t> d) {
    delivered_bytes += d.size();
    ++delivered_msgs;
  };
  sys.slave_lm(0).set_events(std::move(ev));

  SaturatingTrafficSource source(sys.master(), lt, payload);
  const std::uint64_t retx_before = sys.master().lc().stats().retransmissions;
  sys.run(kSlotDuration * 64);
  const SimTime window = kSlotDuration * cfg.measure_slots;
  const std::uint64_t bytes_before = delivered_bytes;
  sys.run(window);

  ThroughputRow row;
  row.type = type;
  row.ber = ber;
  row.delivered_messages = delivered_msgs;
  row.retransmissions =
      sys.master().lc().stats().retransmissions - retx_before;
  row.goodput_kbps = static_cast<double>((delivered_bytes - bytes_before) * 8) /
                     window.as_sec() / 1000.0;
  return row;
}

CoexistenceRow measure_coexistence(TwoPiconets& net,
                                   std::uint32_t neighbour_period_slots,
                                   const CoexistenceRunConfig& cfg) {
  std::uint64_t victim_bytes = 0;
  lm::LinkManager::Events ev;
  ev.user_data = [&](std::uint8_t, std::vector<std::uint8_t> d) {
    victim_bytes += d.size();
  };
  net.slave_lm(0).set_events(std::move(ev));

  SaturatingTrafficSource victim(net.master(0), 1, cfg.payload_bytes);
  std::unique_ptr<PeriodicTrafficSource> neighbour;
  if (neighbour_period_slots > 0) {
    neighbour = std::make_unique<PeriodicTrafficSource>(
        net.master(1), 1, neighbour_period_slots, cfg.payload_bytes);
  }
  const auto retx0 = net.master(0).lc().stats().retransmissions;
  const auto coll0 = net.collision_samples();
  const sim::SimTime window = kSlotDuration * cfg.measure_slots;
  net.run(window);

  CoexistenceRow row;
  row.neighbour_period_slots = neighbour_period_slots;
  row.goodput_kbps =
      static_cast<double>(victim_bytes * 8) / window.as_sec() / 1000.0;
  row.retransmissions =
      net.master(0).lc().stats().retransmissions - retx0;
  row.collision_samples = net.collision_samples() - coll0;
  return row;
}

}  // namespace

void CreationPoint::add(const CreationSample& s) {
  inquiry_ok.add(s.inquiry_success);
  if (s.inquiry_success) {
    inquiry_slots.add(static_cast<double>(s.inquiry_slots));
  }
  if (s.page_attempted) {
    page_ok.add(s.page_success);
    if (s.page_success) {
      page_slots.add(static_cast<double>(s.page_slots));
    }
  }
}

void CreationPoint::merge(const CreationPoint& other) {
  inquiry_slots.merge(other.inquiry_slots);
  page_slots.merge(other.page_slots);
  inquiry_ok.merge(other.inquiry_ok);
  page_ok.merge(other.page_ok);
}

void CreationPoint::save_state(sim::SnapshotWriter& w) const {
  w.f64(ber);
  inquiry_slots.save_state(w);
  page_slots.save_state(w);
  inquiry_ok.save_state(w);
  page_ok.save_state(w);
}

void CreationPoint::restore_state(sim::SnapshotReader& r) {
  ber = r.f64();
  inquiry_slots.restore_state(r);
  page_slots.restore_state(r);
  inquiry_ok.restore_state(r);
  page_ok.restore_state(r);
}

CreationSample run_creation_replication(double ber, std::uint64_t seed,
                                        std::uint32_t timeout_slots) {
  BluetoothSystem sys(creation_config(ber, timeout_slots, seed));
  return measure_creation(sys);
}

CreationPoint run_creation_point(double ber, const CreationConfig& cfg) {
  CreationPoint point;
  point.ber = ber;
  for (int s = 0; s < cfg.seeds; ++s) {
    point.add(run_creation_replication(
        ber, cfg.base_seed + static_cast<std::uint64_t>(s),
        cfg.timeout_slots));
  }
  return point;
}

BackoffSample run_backoff_replication(std::uint32_t backoff_max_slots,
                                      std::uint64_t seed) {
  BluetoothSystem sys(backoff_config(backoff_max_slots, seed));
  const PhaseResult r = sys.run_inquiry();
  return BackoffSample{r.success, r.slots};
}

MasterActivityRow run_master_activity(double duty,
                                      const MasterActivityConfig& cfg) {
  auto sys = connected_system(master_activity_config(cfg.seed));
  return measure_master_activity(*sys, duty, cfg);
}

SlaveActivityRow run_sniff_activity(std::optional<std::uint32_t> tsniff,
                                    const SniffActivityConfig& cfg) {
  auto sys = connected_system(sniff_activity_config(cfg.seed));
  return measure_sniff_activity(*sys, tsniff, cfg);
}

SlaveActivityRow run_hold_activity(std::optional<std::uint32_t> thold,
                                   const HoldActivityConfig& cfg) {
  auto sys = connected_system(hold_activity_config(cfg.seed));
  return measure_hold_activity(*sys, thold, cfg);
}

ThroughputRow run_throughput(baseband::PacketType type, double ber,
                             const ThroughputConfig& cfg) {
  auto sys = connected_system(throughput_system_config(type, cfg.seed));
  return measure_throughput(*sys, type, ber, cfg);
}

CoexistenceRow run_coexistence(std::uint32_t neighbour_period_slots,
                               const CoexistenceRunConfig& cfg) {
  CoexistenceConfig cc;
  cc.seed = cfg.seed;
  TwoPiconets net(cc);
  if (!net.create(0) || !net.create(1)) {
    throw std::runtime_error("run_coexistence: piconet creation failed");
  }
  return measure_coexistence(net, neighbour_period_slots, cfg);
}

// ---------------------------------------------------------------------------
// Staged (checkpoint/fork) variants
// ---------------------------------------------------------------------------

std::unique_ptr<BluetoothSystem> make_creation_system(
    double ber, std::uint32_t timeout_slots, std::uint64_t seed) {
  auto sys = std::make_unique<BluetoothSystem>(
      creation_config(ber, timeout_slots, seed));
  sys->env().settle();  // snapshot boundary: no delta work pending
  return sys;
}

CreationSample run_creation_from(BluetoothSystem& sys,
                                 std::uint64_t replication_seed) {
  sys.env().rng().reseed(replication_seed);
  sys.randomize_slave_clocks();
  return measure_creation(sys);
}

std::unique_ptr<BluetoothSystem> make_backoff_system(
    std::uint32_t backoff_max_slots, std::uint64_t seed) {
  auto sys = std::make_unique<BluetoothSystem>(
      backoff_config(backoff_max_slots, seed));
  sys->env().settle();
  return sys;
}

BackoffSample run_backoff_from(BluetoothSystem& sys,
                               std::uint64_t replication_seed) {
  sys.env().rng().reseed(replication_seed);
  sys.randomize_slave_clocks();
  const PhaseResult r = sys.run_inquiry();
  return BackoffSample{r.success, r.slots};
}

namespace {

/// Shared shape of the connected-phase warm-ups/scaffolds.
ConnectedWarmup connected_warmup(SystemConfig cfg) {
  auto built = connected_system_seeded(std::move(cfg));
  built.system->env().settle();
  return {std::move(built.system), built.seed};
}

std::unique_ptr<BluetoothSystem> connected_scaffold(SystemConfig cfg) {
  auto sys = std::make_unique<BluetoothSystem>(cfg);
  sys->env().settle();  // restore requires a settled kernel
  return sys;
}

}  // namespace

ConnectedWarmup master_activity_warmup(std::uint64_t warm_seed) {
  return connected_warmup(master_activity_config(warm_seed));
}

std::unique_ptr<BluetoothSystem> master_activity_scaffold(
    std::uint64_t construction_seed) {
  return connected_scaffold(master_activity_config(construction_seed));
}

MasterActivityRow run_master_activity_from(BluetoothSystem& sys, double duty,
                                           const MasterActivityConfig& cfg) {
  sys.env().rng().reseed(cfg.seed);
  return measure_master_activity(sys, duty, cfg);
}

ConnectedWarmup sniff_activity_warmup(std::uint64_t warm_seed) {
  return connected_warmup(sniff_activity_config(warm_seed));
}

std::unique_ptr<BluetoothSystem> sniff_activity_scaffold(
    std::uint64_t construction_seed) {
  return connected_scaffold(sniff_activity_config(construction_seed));
}

SlaveActivityRow run_sniff_activity_from(BluetoothSystem& sys,
                                         std::optional<std::uint32_t> tsniff,
                                         const SniffActivityConfig& cfg) {
  sys.env().rng().reseed(cfg.seed);
  return measure_sniff_activity(sys, tsniff, cfg);
}

ConnectedWarmup hold_activity_warmup(std::uint64_t warm_seed) {
  return connected_warmup(hold_activity_config(warm_seed));
}

std::unique_ptr<BluetoothSystem> hold_activity_scaffold(
    std::uint64_t construction_seed) {
  return connected_scaffold(hold_activity_config(construction_seed));
}

SlaveActivityRow run_hold_activity_from(BluetoothSystem& sys,
                                        std::optional<std::uint32_t> thold,
                                        const HoldActivityConfig& cfg) {
  sys.env().rng().reseed(cfg.seed);
  return measure_hold_activity(sys, thold, cfg);
}

ConnectedWarmup throughput_warmup(baseband::PacketType type,
                                  std::uint64_t warm_seed) {
  return connected_warmup(throughput_system_config(type, warm_seed));
}

std::unique_ptr<BluetoothSystem> throughput_scaffold(
    baseband::PacketType type, std::uint64_t construction_seed) {
  return connected_scaffold(throughput_system_config(type, construction_seed));
}

ThroughputRow run_throughput_from(BluetoothSystem& sys,
                                  baseband::PacketType type, double ber,
                                  const ThroughputConfig& cfg) {
  sys.env().rng().reseed(cfg.seed);
  return measure_throughput(sys, type, ber, cfg);
}

std::unique_ptr<TwoPiconets> coexistence_scaffold(std::uint64_t seed) {
  CoexistenceConfig cc;
  cc.seed = seed;
  auto net = std::make_unique<TwoPiconets>(cc);
  net->env().settle();
  return net;
}

std::unique_ptr<TwoPiconets> coexistence_warmup(std::uint64_t warm_seed) {
  auto net = coexistence_scaffold(warm_seed);
  if (!net->create(0) || !net->create(1)) {
    throw std::runtime_error("coexistence warm-up: piconet creation failed");
  }
  return net;
}

CoexistenceRow run_coexistence_from(TwoPiconets& net,
                                    std::uint32_t neighbour_period_slots,
                                    const CoexistenceRunConfig& cfg) {
  net.env().rng().reseed(cfg.seed);
  return measure_coexistence(net, neighbour_period_slots, cfg);
}

}  // namespace btsc::core
