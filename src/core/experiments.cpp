#include "core/experiments.hpp"

#include <algorithm>
#include <cmath>

#include "core/system.hpp"
#include "core/traffic.hpp"

namespace btsc::core {

using baseband::kSlotDuration;
using sim::SimTime;

namespace {

/// Generous timeouts for phases that must succeed (activity experiments
/// need a connected piconet regardless of the creation statistics).
baseband::LcConfig reliable_lc() {
  baseband::LcConfig lc;
  lc.inquiry_timeout_slots = 32768;
  lc.page_timeout_slots = 16384;
  return lc;
}

/// Builds a connected 2-device system or throws (seed is perturbed until
/// creation succeeds; noiseless creation with long timeouts practically
/// always succeeds on the first try).
std::unique_ptr<BluetoothSystem> connected_system(
    SystemConfig cfg, int max_attempts = 5) {
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    auto sys = std::make_unique<BluetoothSystem>(cfg);
    if (sys->create_piconet()) return sys;
    cfg.seed += 7919;
  }
  throw std::runtime_error("connected_system: piconet creation failed");
}

}  // namespace

CreationPoint run_creation_point(double ber, const CreationConfig& cfg) {
  CreationPoint point;
  point.ber = ber;
  for (int s = 0; s < cfg.seeds; ++s) {
    SystemConfig sc;
    sc.num_slaves = 1;
    sc.ber = ber;
    sc.seed = cfg.base_seed + static_cast<std::uint64_t>(s);
    sc.lc.inquiry_timeout_slots = cfg.timeout_slots;
    sc.lc.page_timeout_slots = cfg.timeout_slots;
    BluetoothSystem sys(sc);

    const PhaseResult inquiry = sys.run_inquiry();
    point.inquiry_ok.add(inquiry.success);
    if (!inquiry.success) continue;
    point.inquiry_slots.add(static_cast<double>(inquiry.slots));

    const PhaseResult page = sys.run_page(0);
    point.page_ok.add(page.success);
    if (page.success) {
      point.page_slots.add(static_cast<double>(page.slots));
    }
  }
  return point;
}

MasterActivityRow run_master_activity(double duty,
                                      const MasterActivityConfig& cfg) {
  SystemConfig sc;
  sc.num_slaves = 1;
  sc.seed = cfg.seed;
  sc.lc = reliable_lc();
  // Poll sparsely so the measured activity is traffic-driven, matching
  // the paper's near-origin curve.
  sc.lc.t_poll_slots = 4000;
  auto sys = connected_system(sc);

  MasterActivityRow row;
  row.duty = duty;
  // duty = used TX slots / available TX slots (one per even slot).
  const auto period_slots = static_cast<std::uint32_t>(
      std::max(2.0, std::round(2.0 / std::max(duty, 1e-6))));
  std::optional<PeriodicTrafficSource> source;
  if (duty > 0.0) {
    source.emplace(sys->master(), sys->lt_addr_of(0), period_slots,
                   cfg.payload_bytes);
  }
  sys->run(kSlotDuration * 64);  // settle
  ActivityProbe probe(sys->master().radio());
  sys->run(kSlotDuration * cfg.measure_slots);
  row.master = probe.measure();
  if (source) row.messages = source->messages_sent();
  return row;
}

SlaveActivityRow run_sniff_activity(std::optional<std::uint32_t> tsniff,
                                    const SniffActivityConfig& cfg) {
  SystemConfig sc;
  sc.num_slaves = 1;
  sc.seed = cfg.seed;
  sc.lc = reliable_lc();
  auto sys = connected_system(sc);
  const std::uint8_t lt = sys->lt_addr_of(0);

  if (tsniff) {
    sys->master().lc().master_set_sniff(lt, *tsniff, 0, 1);
    sys->slave(0).lc().slave_set_sniff(*tsniff, 0, 1);
  }
  PeriodicTrafficSource source(sys->master(), lt, cfg.data_period_slots,
                               cfg.payload_bytes);
  sys->run(kSlotDuration * 256);  // settle into the sniff schedule
  ActivityProbe probe(sys->slave(0).radio());
  sys->run(kSlotDuration * cfg.measure_slots);

  SlaveActivityRow row;
  row.mode_parameter = tsniff;
  row.slave = probe.measure();
  return row;
}

SlaveActivityRow run_hold_activity(std::optional<std::uint32_t> thold,
                                   const HoldActivityConfig& cfg) {
  SystemConfig sc;
  sc.num_slaves = 1;
  sc.seed = cfg.seed;
  sc.lc = reliable_lc();
  // The paper's Fig. 12 baseline is the pure listening cost (2.6%);
  // poll sparsely so the comparison isolates the hold/active trade-off.
  sc.lc.t_poll_slots = 4000;
  auto sys = connected_system(sc);
  const std::uint8_t lt = sys->lt_addr_of(0);
  sys->run(kSlotDuration * 64);

  SlaveActivityRow row;
  row.mode_parameter = thold;

  if (!thold) {
    ActivityProbe probe(sys->slave(0).radio());
    sys->run(kSlotDuration * cfg.min_measure_slots);
    row.slave = probe.measure();
    return row;
  }

  const std::uint32_t cycle = *thold + cfg.inter_hold_gap_slots;
  const std::uint32_t cycles = std::max<std::uint32_t>(
      6, (cfg.min_measure_slots + cycle - 1) / cycle);
  ActivityProbe probe(sys->slave(0).radio());
  for (std::uint32_t c = 0; c < cycles; ++c) {
    sys->master().lc().master_set_hold(lt, *thold);
    sys->slave(0).lc().slave_set_hold(*thold);
    sys->run(kSlotDuration * cycle);
  }
  row.slave = probe.measure();
  return row;
}

ThroughputRow run_throughput(baseband::PacketType type, double ber,
                             const ThroughputConfig& cfg) {
  SystemConfig sc;
  sc.num_slaves = 1;
  sc.seed = cfg.seed;
  sc.ber = ber;
  sc.lc = reliable_lc();
  sc.lc.data_packet_type = type;
  // Creation itself must succeed even at high BER: build noiselessly,
  // then dial the BER in (the paper's throughput goal concerns the
  // connected phase, not creation).
  sc.ber = 0.0;
  auto sys = connected_system(sc);
  sys->channel().set_ber(ber);

  const std::uint8_t lt = sys->lt_addr_of(0);
  const std::size_t payload = baseband::max_user_bytes(type);
  std::uint64_t delivered_bytes = 0;
  std::uint64_t delivered_msgs = 0;
  lm::LinkManager::Events ev;
  ev.user_data = [&](std::uint8_t, std::vector<std::uint8_t> d) {
    delivered_bytes += d.size();
    ++delivered_msgs;
  };
  sys->slave_lm(0).set_events(std::move(ev));

  SaturatingTrafficSource source(sys->master(), lt, payload);
  const std::uint64_t retx_before = sys->master().lc().stats().retransmissions;
  sys->run(kSlotDuration * 64);
  const SimTime window = kSlotDuration * cfg.measure_slots;
  const std::uint64_t bytes_before = delivered_bytes;
  sys->run(window);

  ThroughputRow row;
  row.type = type;
  row.ber = ber;
  row.delivered_messages = delivered_msgs;
  row.retransmissions =
      sys->master().lc().stats().retransmissions - retx_before;
  row.goodput_kbps = static_cast<double>((delivered_bytes - bytes_before) * 8) /
                     window.as_sec() / 1000.0;
  return row;
}

}  // namespace btsc::core
