// Experiment runners: one function per figure of the paper, plus the
// packet-type throughput analysis the paper names as a goal of the model.
//
// Three levels of API:
//  * run_*_replication / run_* — ONE independent simulation from ONE
//    seed. These are the bodies handed to runner::SweepRunner, which
//    shards them across threads; they must derive all randomness from
//    the seed they are given and touch no shared state.
//  * run_* point/row functions — serial convenience wrappers aggregating
//    a default replication count, used by the unit tests.
//  * staged (checkpoint/fork) variants — the same replication split into
//    an explicit warm-up stage (driven by a dedicated warm-up seed,
//    shared by every replication of a point) and a measure stage (driven
//    by the replication seed, applied by reseeding the environment RNG
//    at the stage boundary). A cold staged replication re-runs the
//    warm-up; a forked one restores it from a snapshot -- both produce
//    bitwise-identical samples, which the runner's forked-vs-cold gates
//    assert.
//
// Benches print the rows; tests run reduced configurations.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "baseband/packet.hpp"
#include "core/metrics.hpp"
#include "stats/accumulator.hpp"

namespace btsc::core {

class BluetoothSystem;
class TwoPiconets;

/// Reserved replication index of the warm-up seed derivation:
/// warm_seed = Rng::derive_stream_seed(base_seed, stream, kWarmupIndex).
/// Real replication indices are small, so the warm-up stream can never
/// collide with a measurement stream.
inline constexpr std::uint64_t kWarmupReplicationIndex =
    0xFFFFFFFFFFFFFFFFull;

// ---- Figs. 6-8: piconet creation vs BER ----

/// Knobs of the creation experiment (Figs. 6-8).
struct CreationConfig {
  /// Independent replications per BER point.
  int seeds = 20;
  /// Inquiry and page timeout, in slots. Paper: both 1.28 s (2048 slots).
  std::uint32_t timeout_slots = 2048;
  /// First replication seed; replication s runs with base_seed + s.
  std::uint64_t base_seed = 1000;
};

/// Outcome of ONE 2-device creation attempt (one replication).
struct CreationSample {
  /// Inquiry completed before the timeout.
  bool inquiry_success = false;
  /// Slots the inquiry phase took (valid when inquiry_success).
  std::uint64_t inquiry_slots = 0;
  /// Page was attempted (i.e. inquiry succeeded).
  bool page_attempted = false;
  /// Page completed before the timeout.
  bool page_success = false;
  /// Slots the page phase took (valid when page_success).
  std::uint64_t page_slots = 0;
};

/// Aggregate over many creation replications at one BER.
struct CreationPoint {
  /// Channel bit error rate of this parameter point.
  double ber = 0.0;
  /// Slots to complete, successful runs only (the paper's mean).
  stats::Accumulator inquiry_slots;
  /// Slots to complete the page phase, successful runs only.
  stats::Accumulator page_slots;
  /// Success ratios; page is conditional on inquiry having succeeded.
  stats::RatioCounter inquiry_ok;
  /// Page success ratio over the attempts that followed a successful
  /// inquiry.
  stats::RatioCounter page_ok;

  /// Folds one replication into the aggregate.
  void add(const CreationSample& s);
  /// Merges another point's partials (parallel reduction).
  void merge(const CreationPoint& other);

  /// Journal codec (runner sweep resume): serializes the aggregate so a
  /// completed replication can be replayed from disk byte-for-byte.
  void save_state(sim::SnapshotWriter& w) const;
  void restore_state(sim::SnapshotReader& r);
};

/// Runs ONE 2-device creation (inquiry, then page if the inquiry
/// succeeded) at the given BER from the given seed.
CreationSample run_creation_replication(double ber, std::uint64_t seed,
                                        std::uint32_t timeout_slots);

/// Simulates `cfg.seeds` independent 2-device creations at the given BER.
CreationPoint run_creation_point(double ber, const CreationConfig& cfg);

// ---- Ablation: inquiry backoff ceiling ----

/// One noiseless inquiry run with a non-default random-backoff ceiling
/// (the spec fixes 1023; the ablation sweeps it). Returns success and
/// slots against the paper's 1.28 s timeout.
struct BackoffSample {
  bool success = false;
  std::uint64_t slots = 0;
};

BackoffSample run_backoff_replication(std::uint32_t backoff_max_slots,
                                      std::uint64_t seed);

// ---- Fig. 10: master RF activity vs channel duty cycle ----

struct MasterActivityRow {
  /// Fraction of master TX slots carrying traffic.
  double duty = 0.0;
  /// Measured TX/RX duty cycles of the master radio.
  RfActivity master;
  /// Application messages handed to the link during the window.
  std::uint64_t messages = 0;
};

struct MasterActivityConfig {
  /// Simulation seed (sweeps derive one per replication).
  std::uint64_t seed = 1;
  /// Length of the measurement window, in slots.
  std::uint32_t measure_slots = 20000;
  /// Payload per message; 1-byte DM1 packets, as in the paper.
  std::size_t payload_bytes = 1;
};

MasterActivityRow run_master_activity(double duty,
                                      const MasterActivityConfig& cfg);

// ---- Fig. 11: slave RF activity, active vs sniff ----

struct SlaveActivityRow {
  /// Tsniff or Thold in slots; nullopt for the active-mode baseline.
  std::optional<std::uint32_t> mode_parameter;
  /// Measured TX/RX duty cycles of the slave radio.
  RfActivity slave;
};

struct SniffActivityConfig {
  /// Simulation seed (sweeps derive one per replication).
  std::uint64_t seed = 1;
  /// Master sends data to the slave with this fixed period (paper: 100).
  std::uint32_t data_period_slots = 100;
  /// Length of the measurement window, in slots.
  std::uint32_t measure_slots = 20000;
  /// Payload per message; 17 bytes = a full DM1.
  std::size_t payload_bytes = 17;
};

/// tsniff == nullopt measures the active-mode baseline.
SlaveActivityRow run_sniff_activity(std::optional<std::uint32_t> tsniff,
                                    const SniffActivityConfig& cfg);

// ---- Fig. 12: slave RF activity, active vs hold ----

struct HoldActivityConfig {
  /// Simulation seed (sweeps derive one per replication).
  std::uint64_t seed = 1;
  /// Gap between consecutive hold cycles (covers resynchronisation).
  std::uint32_t inter_hold_gap_slots = 8;
  /// Measure at least this many slots (and >= 6 hold cycles).
  std::uint32_t min_measure_slots = 20000;
};

/// thold == nullopt measures the idle active-mode baseline (the paper's
/// flat 2.6% line).
SlaveActivityRow run_hold_activity(std::optional<std::uint32_t> thold,
                                   const HoldActivityConfig& cfg);

// ---- Extension: packet type vs throughput under noise (paper section 2
//      lists this analysis as a design goal of the model) ----

struct ThroughputRow {
  /// ACL packet type under test.
  baseband::PacketType type = baseband::PacketType::kDm1;
  /// Channel bit error rate during the connected phase.
  double ber = 0.0;
  /// Application-layer goodput over the measurement window.
  double goodput_kbps = 0.0;
  /// Messages delivered to the slave's L2CAP during the window.
  std::uint64_t delivered_messages = 0;
  /// Baseband retransmissions during the window.
  std::uint64_t retransmissions = 0;
};

struct ThroughputConfig {
  /// Simulation seed (sweeps derive one per replication).
  std::uint64_t seed = 1;
  /// Length of the measurement window, in slots.
  std::uint32_t measure_slots = 8000;
};

ThroughputRow run_throughput(baseband::PacketType type, double ber,
                             const ThroughputConfig& cfg);

// ---- Extension: coexistence of two piconets on one 79-channel medium ----

struct CoexistenceRow {
  /// Neighbour master's data period in slots (0 = neighbour silent).
  std::uint32_t neighbour_period_slots = 0;
  /// Goodput of the saturated victim link over the window.
  double goodput_kbps = 0.0;
  /// Victim-link retransmissions during the window.
  std::uint64_t retransmissions = 0;
  /// Collided symbol samples observed by the shared channel.
  std::uint64_t collision_samples = 0;
};

struct CoexistenceRunConfig {
  /// Simulation seed (sweeps derive one per replication).
  std::uint64_t seed = 2030;
  /// Length of the measurement window, in slots.
  std::uint32_t measure_slots = 24000;
  /// Payload per message on both links (17 bytes = full DM1).
  std::size_t payload_bytes = 17;
};

/// Builds two coexisting piconets, saturates the victim link and ramps
/// the neighbour's offered load; one call = one replication.
CoexistenceRow run_coexistence(std::uint32_t neighbour_period_slots,
                               const CoexistenceRunConfig& cfg);

// ---- staged (checkpoint/fork) variants ----
//
// Every family splits into:
//   warm-up  — builds the system with the warm-up seed and simulates the
//              replication-independent prefix (for the creation family
//              that is construction only; for the connected-phase
//              studies it is piconet creation). Ends at a settled,
//              snapshotable instant.
//   scaffold — re-runs ONLY the construction path of the warm-up (the
//              structural twin a snapshot restores into).
//   run_*_from — the measure stage: reseeds the environment RNG with the
//              replication seed and simulates the measured window.
//
// Cold fork:  measure(warmup(point, warm_seed), rep_seed)
// Warm fork:  bytes = warmup(...).save_snapshot()  [once per point]
//             sys = scaffold(...); sys.restore_snapshot(bytes);
//             measure(sys, rep_seed)
// Both paths reach the boundary in the identical state, so the samples
// are bitwise equal.

/// Creation family (Figs. 6-8): the warm-up is construction at t = 0.
std::unique_ptr<BluetoothSystem> make_creation_system(
    double ber, std::uint32_t timeout_slots, std::uint64_t seed);
/// Reseeds with `replication_seed`, re-randomises the slave clocks (the
/// per-replication randomness the legacy path drew at construction) and
/// runs inquiry + page.
CreationSample run_creation_from(BluetoothSystem& sys,
                                 std::uint64_t replication_seed);

/// Backoff ablation: same shape as the creation family.
std::unique_ptr<BluetoothSystem> make_backoff_system(
    std::uint32_t backoff_max_slots, std::uint64_t seed);
BackoffSample run_backoff_from(BluetoothSystem& sys,
                               std::uint64_t replication_seed);

/// Connected-phase warm-up result: creation retries perturb the seed, so
/// the scaffold must be constructed from the seed that finally succeeded.
struct ConnectedWarmup {
  std::unique_ptr<BluetoothSystem> system;
  /// Seed of the successful construction (scaffold input).
  std::uint64_t construction_seed = 0;
};

ConnectedWarmup master_activity_warmup(std::uint64_t warm_seed);
std::unique_ptr<BluetoothSystem> master_activity_scaffold(
    std::uint64_t construction_seed);
/// cfg.seed is the replication seed here (reseeds at the boundary).
MasterActivityRow run_master_activity_from(BluetoothSystem& sys, double duty,
                                           const MasterActivityConfig& cfg);

ConnectedWarmup sniff_activity_warmup(std::uint64_t warm_seed);
std::unique_ptr<BluetoothSystem> sniff_activity_scaffold(
    std::uint64_t construction_seed);
SlaveActivityRow run_sniff_activity_from(BluetoothSystem& sys,
                                         std::optional<std::uint32_t> tsniff,
                                         const SniffActivityConfig& cfg);

ConnectedWarmup hold_activity_warmup(std::uint64_t warm_seed);
std::unique_ptr<BluetoothSystem> hold_activity_scaffold(
    std::uint64_t construction_seed);
SlaveActivityRow run_hold_activity_from(BluetoothSystem& sys,
                                        std::optional<std::uint32_t> thold,
                                        const HoldActivityConfig& cfg);

/// The throughput warm-up depends on the packet type (it is part of the
/// link configuration), not on the BER (creation runs noiselessly).
ConnectedWarmup throughput_warmup(baseband::PacketType type,
                                  std::uint64_t warm_seed);
std::unique_ptr<BluetoothSystem> throughput_scaffold(
    baseband::PacketType type, std::uint64_t construction_seed);
ThroughputRow run_throughput_from(BluetoothSystem& sys,
                                  baseband::PacketType type, double ber,
                                  const ThroughputConfig& cfg);

/// Coexistence: creation retries re-enable scanning inside one
/// environment (no reconstruction), so scaffold and warm-up share the
/// seed. The warm-up throws if either piconet fails to form.
std::unique_ptr<TwoPiconets> coexistence_scaffold(std::uint64_t seed);
std::unique_ptr<TwoPiconets> coexistence_warmup(std::uint64_t warm_seed);
CoexistenceRow run_coexistence_from(TwoPiconets& net,
                                    std::uint32_t neighbour_period_slots,
                                    const CoexistenceRunConfig& cfg);

}  // namespace btsc::core
