// Experiment runners: one function per figure of the paper, plus the
// packet-type throughput analysis the paper names as a goal of the model.
// Benches print the rows; tests run reduced configurations.
#pragma once

#include <cstdint>
#include <optional>

#include "baseband/packet.hpp"
#include "core/metrics.hpp"
#include "stats/accumulator.hpp"

namespace btsc::core {

// ---- Figs. 6-8: piconet creation vs BER ----

struct CreationConfig {
  int seeds = 20;
  /// Paper: both timeouts fixed to 1.28 s (2048 slots).
  std::uint32_t timeout_slots = 2048;
  std::uint64_t base_seed = 1000;
};

struct CreationPoint {
  double ber = 0.0;
  /// Slots to complete, successful runs only (the paper's mean).
  stats::Accumulator inquiry_slots;
  stats::Accumulator page_slots;
  /// Success ratios; page is conditional on inquiry having succeeded.
  stats::RatioCounter inquiry_ok;
  stats::RatioCounter page_ok;
};

/// Simulates `seeds` independent 2-device creations at the given BER.
CreationPoint run_creation_point(double ber, const CreationConfig& cfg);

// ---- Fig. 10: master RF activity vs channel duty cycle ----

struct MasterActivityRow {
  double duty = 0.0;  // fraction of master TX slots carrying traffic
  RfActivity master;
  std::uint64_t messages = 0;
};

struct MasterActivityConfig {
  std::uint64_t seed = 1;
  std::uint32_t measure_slots = 20000;
  std::size_t payload_bytes = 1;  // short DM1 packets, as in the paper
};

MasterActivityRow run_master_activity(double duty,
                                      const MasterActivityConfig& cfg);

// ---- Fig. 11: slave RF activity, active vs sniff ----

struct SlaveActivityRow {
  std::optional<std::uint32_t> mode_parameter;  // Tsniff or Thold (slots)
  RfActivity slave;
};

struct SniffActivityConfig {
  std::uint64_t seed = 1;
  /// Master sends data to the slave with this fixed period (paper: 100).
  std::uint32_t data_period_slots = 100;
  std::uint32_t measure_slots = 20000;
  std::size_t payload_bytes = 17;  // full DM1
};

/// tsniff == nullopt measures the active-mode baseline.
SlaveActivityRow run_sniff_activity(std::optional<std::uint32_t> tsniff,
                                    const SniffActivityConfig& cfg);

// ---- Fig. 12: slave RF activity, active vs hold ----

struct HoldActivityConfig {
  std::uint64_t seed = 1;
  /// Gap between consecutive hold cycles (covers resynchronisation).
  std::uint32_t inter_hold_gap_slots = 8;
  /// Measure at least this many slots (and >= 6 hold cycles).
  std::uint32_t min_measure_slots = 20000;
};

/// thold == nullopt measures the idle active-mode baseline (the paper's
/// flat 2.6% line).
SlaveActivityRow run_hold_activity(std::optional<std::uint32_t> thold,
                                   const HoldActivityConfig& cfg);

// ---- Extension: packet type vs throughput under noise (paper section 2
//      lists this analysis as a design goal of the model) ----

struct ThroughputRow {
  baseband::PacketType type = baseband::PacketType::kDm1;
  double ber = 0.0;
  double goodput_kbps = 0.0;
  std::uint64_t delivered_messages = 0;
  std::uint64_t retransmissions = 0;
};

struct ThroughputConfig {
  std::uint64_t seed = 1;
  std::uint32_t measure_slots = 8000;
};

ThroughputRow run_throughput(baseband::PacketType type, double ber,
                             const ThroughputConfig& cfg);

}  // namespace btsc::core
