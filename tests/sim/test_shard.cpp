// Conservative parallel shard kernel: barrier semantics, lockstep
// windows, cross-shard exchange merge order, lane-count invariance and
// the zero-lookahead refusal. These tests drive ShardGroup with toy
// endpoints (no PHY) so the kernel contract is pinned independently of
// the channel layer.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "sim/environment.hpp"
#include "sim/shard.hpp"
#include "sim/snapshot.hpp"
#include "sim/time.hpp"

namespace btsc::sim {
namespace {

using namespace btsc::sim::literals;

/// Records deliveries and re-materialises each as a local timer that
/// logs at its application instant -- the same contract the channel
/// implements, minus the RF semantics.
struct LogEndpoint : CrossShardEndpoint {
  Environment* env = nullptr;
  /// (when fired, src_shard, seq, value) in local dispatch order.
  std::vector<std::tuple<SimTime, std::uint32_t, std::uint64_t, int>> fired;

  void deliver_cross_shard(const CrossShardEvent& ev) override {
    const std::uint32_t src = ev.src_shard;
    const std::uint64_t seq = ev.seq;
    const int value = static_cast<int>(ev.value);
    env->schedule(ev.when - env->now(), [this, src, seq, value] {
      fired.emplace_back(env->now(), src, seq, value);
    });
  }
};

TEST(ShardBarrierTest, ReleasesAllPartiesEachGeneration) {
  constexpr int kParties = 4;
  constexpr int kRounds = 50;
  ShardBarrier barrier(kParties);
  std::atomic<int> counter{0};
  std::vector<std::thread> threads;
  std::atomic<bool> mismatch{false};
  for (int p = 0; p < kParties; ++p) {
    threads.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        counter.fetch_add(1);
        barrier.arrive_and_wait();
        // Between two barrier generations every party incremented once.
        if (counter.load() != kParties * (r + 1)) mismatch = true;
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(mismatch.load());
  EXPECT_EQ(counter.load(), kParties * kRounds);
}

TEST(ShardGroupTest, RefusesMultiShardZeroLookahead) {
  ShardGroup group(SimTime::zero());
  Environment a(1), b(2);
  group.add_shard(a);
  group.add_shard(b);
  EXPECT_THROW(group.run(1_ms), std::logic_error);
}

TEST(ShardGroupTest, SingleShardZeroLookaheadRunsFused) {
  ShardGroup group(SimTime::zero());
  Environment a(1);
  group.add_shard(a);
  bool ran = false;
  a.schedule(100_us, [&] { ran = true; });
  group.run(1_ms);
  EXPECT_TRUE(ran);
  EXPECT_EQ(a.now(), 1_ms);
  EXPECT_EQ(group.now(), 1_ms);
}

TEST(ShardGroupTest, StampsShardIds) {
  ShardGroup group(625_us);
  Environment a(1), b(2), c(3);
  EXPECT_EQ(group.add_shard(a), 0u);
  EXPECT_EQ(group.add_shard(b), 1u);
  EXPECT_EQ(group.add_shard(c), 2u);
  EXPECT_EQ(a.shard_id(), 0u);
  EXPECT_EQ(c.shard_id(), 2u);
}

TEST(ShardGroupTest, EmptyShardAdvancesInLockstep) {
  ShardGroup group(625_us);
  Environment busy(1), empty(2);
  group.add_shard(busy);
  group.add_shard(empty);
  int ticks = 0;
  std::function<void()> tick = [&] {
    ++ticks;
    busy.schedule(100_us, tick);
  };
  busy.schedule(100_us, tick);
  group.run(10_ms);
  EXPECT_EQ(ticks, 100);
  EXPECT_EQ(busy.now(), 10_ms);
  EXPECT_EQ(empty.now(), 10_ms);  // zero devices, still at the barrier
}

/// Builds a 3-shard group where shards 1 and 2 publish interleaved
/// events into shard 0's endpoint; returns the dispatch log.
std::vector<std::tuple<SimTime, std::uint32_t, std::uint64_t, int>>
run_merge_scenario(int lanes) {
  const SimTime la = 625_us;
  ShardGroup group(la);
  Environment e0(10), e1(20), e2(30);
  group.add_shard(e0);
  group.add_shard(e1);
  group.add_shard(e2);
  LogEndpoint sink;
  sink.env = &e0;
  group.bind_endpoint(/*domain=*/0, /*shard=*/0, &sink);
  // Publishing endpoints for shards 1/2 (never receive: same domain,
  // but events are only routed to *other* shards).
  LogEndpoint src1, src2;
  src1.env = &e1;
  src2.env = &e2;
  group.bind_endpoint(0, 1, &src1);
  group.bind_endpoint(0, 2, &src2);

  // Shard 2 publishes before shard 1 in wall-clock window order, at the
  // same application instant: the merge order must still put shard 1
  // first (src_shard is the tiebreak after `when`).
  e2.schedule(10_us, [&] {
    group.publish(0, 2, e2.now() + la, 1, 0, -1, 7);
    group.publish(0, 2, e2.now() + la, 1, 0, -1, 8);  // seq orders these
  });
  e1.schedule(20_us, [&] {
    group.publish(0, 1, e1.now() + la, 1, 0, -1, 5);
  });
  // A later-window publication with an *earlier* application instant
  // than another's cannot exist (lookahead), but a same-window pair
  // with different instants must dispatch by `when` first.
  e1.schedule(30_us, [&] {
    group.publish(0, 1, e1.now() + la + 100_us, 1, 0, -1, 6);
  });
  group.set_lanes(lanes);
  group.run(5_ms);
  return sink.fired;
}

TEST(ShardGroupTest, MergeOrderIsWhenThenShardThenSeq) {
  const auto log = run_merge_scenario(1);
  ASSERT_EQ(log.size(), 4u);
  // t=10/20/30us publications apply at publication+lookahead.
  EXPECT_EQ(std::get<0>(log[0]), 625_us + 10_us);
  EXPECT_EQ(std::get<3>(log[0]), 7);
  EXPECT_EQ(std::get<3>(log[1]), 8);  // same shard: seq order
  EXPECT_EQ(std::get<0>(log[2]), 625_us + 20_us);
  EXPECT_EQ(std::get<3>(log[2]), 5);
  EXPECT_EQ(std::get<0>(log[3]), 625_us + 130_us);
  EXPECT_EQ(std::get<3>(log[3]), 6);
}

TEST(ShardGroupTest, SameInstantMergeBreaksTiesBySrcShard) {
  const SimTime la = 625_us;
  ShardGroup group(la);
  Environment e0(10), e1(20), e2(30);
  group.add_shard(e0);
  group.add_shard(e1);
  group.add_shard(e2);
  LogEndpoint sink;
  sink.env = &e0;
  group.bind_endpoint(0, 0, &sink);
  LogEndpoint src1, src2;
  src1.env = &e1;
  src2.env = &e2;
  group.bind_endpoint(0, 1, &src1);
  group.bind_endpoint(0, 2, &src2);
  // Same application instant from both shards; shard 2 publishes at an
  // earlier local time (and thus earlier in any wall-clock order).
  e2.schedule(10_us, [&] { group.publish(0, 2, 625_us + 50_us, 1, 0, -1, 2); });
  e1.schedule(50_us, [&] { group.publish(0, 1, 625_us + 50_us, 1, 0, -1, 1); });
  group.run(2_ms);
  ASSERT_EQ(sink.fired.size(), 2u);
  EXPECT_EQ(std::get<1>(sink.fired[0]), 1u);  // shard 1 first
  EXPECT_EQ(std::get<1>(sink.fired[1]), 2u);
}

TEST(ShardGroupTest, LaneCountInvariance) {
  const auto one = run_merge_scenario(1);
  const auto two = run_merge_scenario(2);
  const auto three = run_merge_scenario(3);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, three);
}

TEST(ShardGroupTest, EventAtBarrierInstantFiresAfterLocalWork) {
  // An event published for exactly the window boundary is delivered at
  // the rendezvous and fires at that instant -- after every local
  // event of the previous window at the same instant (they already
  // dispatched before the barrier).
  const SimTime la = 625_us;
  ShardGroup group(la);
  Environment e0(1), e1(2);
  group.add_shard(e0);
  group.add_shard(e1);
  LogEndpoint sink;
  sink.env = &e0;
  group.bind_endpoint(0, 0, &sink);
  LogEndpoint src;
  src.env = &e1;
  group.bind_endpoint(0, 1, &src);
  std::vector<int> order;
  // Local work in shard 0 at exactly the barrier instant.
  e0.schedule(la, [&] { order.push_back(0); });
  // Shard 1 publishes at t=0 for t=la (the minimum legal instant).
  e1.schedule(SimTime::zero(), [&] {
    group.publish(0, 1, e1.now() + la, 1, 0, -1, 42);
  });
  group.run(la + la);
  ASSERT_EQ(sink.fired.size(), 1u);
  EXPECT_EQ(std::get<0>(sink.fired[0]), la);
  // The cross-shard timer was scheduled after the barrier, so its seq
  // is above the local timer's: local fires first at the same instant.
  ASSERT_EQ(order.size(), 1u);
}

TEST(ShardGroupTest, LookaheadViolationThrows) {
  const SimTime la = 625_us;
  ShardGroup group(la);
  Environment e0(1), e1(2);
  group.add_shard(e0);
  group.add_shard(e1);
  LogEndpoint sink;
  sink.env = &e0;
  group.bind_endpoint(0, 0, &sink);
  LogEndpoint src;
  src.env = &e1;
  group.bind_endpoint(0, 1, &src);
  // Publishing for an instant inside the current window breaks the
  // conservative premise; the exchange must refuse loudly.
  e1.schedule(100_us, [&] {
    group.publish(0, 1, e1.now() + 1_us, 1, 0, -1, 0);
  });
  EXPECT_THROW(group.run(2_ms), std::logic_error);
}

TEST(ShardGroupTest, PartialTrailingWindow) {
  const SimTime la = 625_us;
  ShardGroup group(la);
  Environment e0(1), e1(2);
  group.add_shard(e0);
  group.add_shard(e1);
  group.run(1500_us);  // 2 full windows + 250us remainder
  EXPECT_EQ(group.now(), 1500_us);
  EXPECT_EQ(e0.now(), 1500_us);
  EXPECT_EQ(e1.now(), 1500_us);
}

TEST(ShardGroupTest, SchedulerStatsSumAcrossShards) {
  ShardGroup group(625_us);
  Environment e0(1), e1(2);
  group.add_shard(e0);
  group.add_shard(e1);
  e0.schedule(10_us, [] {});
  e1.schedule(10_us, [] {});
  e1.schedule(20_us, [] {});
  group.run(1_ms);
  const auto total = group.scheduler_stats();
  EXPECT_EQ(total.scheduled,
            e0.scheduler_stats().scheduled + e1.scheduler_stats().scheduled);
  EXPECT_EQ(total.fired, 3u);
}

TEST(ShardGroupTest, CrossInboxMustBeEmptyAtCheckpoint) {
  Environment env(7);
  CrossShardEvent ev;
  ev.when = 1_ms;
  LogEndpoint sink;
  sink.env = &env;
  env.post_cross_shard(ev, &sink);
  SnapshotWriter w;
  EXPECT_THROW(env.save_state(w), SnapshotError);
  env.deliver_cross_shard();
  EXPECT_EQ(sink.fired.size(), 0u);  // timer scheduled, not yet fired
  env.run(2_ms);
  EXPECT_EQ(sink.fired.size(), 1u);
}

}  // namespace
}  // namespace btsc::sim
