#include "sim/tracer.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/environment.hpp"
#include "sim/signal.hpp"

namespace btsc::sim {
namespace {

using namespace btsc::sim::literals;

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class VcdTracerTest : public ::testing::Test {
 protected:
  // Unique per process: ctest runs each TEST_F as its own process, in
  // parallel, and they must not clobber each other's VCD file.
  std::string path_ = ::testing::TempDir() + "btsc_tracer_test_" +
                      std::to_string(::getpid()) + ".vcd";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(VcdTracerTest, WritesWellFormedHeaderAndChanges) {
  Environment env;
  {
    VcdTracer tracer(env, path_);
    env.set_tracer(&tracer);
    BoolSignal s(env, "dev.enable_rx_RF", false);
    env.schedule(625_us, [&] { s.write(true); });
    env.schedule(1250_us, [&] { s.write(false); });
    env.run_until(2_ms);
    tracer.close();
  }
  const std::string vcd = slurp(path_);
  EXPECT_NE(vcd.find("$timescale 1ns $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 1 ! dev.enable_rx_RF $end"), std::string::npos);
  EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
  EXPECT_NE(vcd.find("#625000\n1!"), std::string::npos);
  EXPECT_NE(vcd.find("#1250000\n0!"), std::string::npos);
}

TEST_F(VcdTracerTest, MultiBitSignalUsesVectorFormat) {
  Environment env;
  {
    VcdTracer tracer(env, path_);
    env.set_tracer(&tracer);
    Signal<std::uint8_t> s(env, "dev.freq", 0);
    env.schedule(1_us, [&] { s.write(0x4E); });
    env.run_until(10_us);
    tracer.close();
  }
  const std::string vcd = slurp(path_);
  EXPECT_NE(vcd.find("$var wire 8"), std::string::npos);
  EXPECT_NE(vcd.find("b01001110 !"), std::string::npos);
}

TEST_F(VcdTracerTest, DuplicateValueSuppressed) {
  Environment env;
  {
    VcdTracer tracer(env, path_);
    env.set_tracer(&tracer);
    const TraceId id = tracer.declare("x", 1);
    tracer.change(id, "1");
    tracer.change(id, "1");  // suppressed
    tracer.change(id, "0");
    tracer.close();
  }
  const std::string vcd = slurp(path_);
  // Exactly one "1!" and one "0!" after the header.
  const auto first = vcd.find("1!");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(vcd.find("1!", first + 1), std::string::npos);
}

TEST_F(VcdTracerTest, DeclareAfterStartThrows) {
  Environment env;
  VcdTracer tracer(env, path_);
  const TraceId id = tracer.declare("x", 1);
  tracer.change(id, "1");
  EXPECT_THROW(tracer.declare("y", 1), std::logic_error);
}

TEST_F(VcdTracerTest, UnopenablePathThrows) {
  Environment env;
  EXPECT_THROW(VcdTracer(env, "/nonexistent_dir_btsc/file.vcd"),
               std::runtime_error);
}

TEST_F(VcdTracerTest, CanceledTimersDoNotPerturbWaveform) {
  // Regression for the old kernel: dead queue entries made run_until
  // advance now_ through canceled instants. The waveform written while a
  // schedule/cancel storm runs alongside must be byte-identical to one
  // with no canceled timers at all.
  auto run = [](Environment& env, const std::string& path,
                bool with_canceled_storm) {
    VcdTracer tracer(env, path);
    env.set_tracer(&tracer);
    BoolSignal s(env, "dev.enable_rx_RF", false);
    std::vector<TimerId> dead;
    if (with_canceled_storm) {
      for (int i = 0; i < 16; ++i) {
        dead.push_back(env.schedule(SimTime::us(100 + 10 * i), [] {}));
      }
    }
    env.schedule(625_us, [&] { s.write(true); });
    env.schedule(1250_us, [&] { s.write(false); });
    for (TimerId id : dead) env.cancel(id);
    env.run_until(2_ms);
    tracer.close();
  };
  const std::string churn_path = ::testing::TempDir() + "btsc_churn.vcd";
  std::string clean, churned;
  {
    Environment env;
    run(env, path_, false);
    clean = slurp(path_);
  }
  {
    Environment env;
    run(env, churn_path, true);
    churned = slurp(churn_path);
    std::remove(churn_path.c_str());
  }
  EXPECT_FALSE(clean.empty());
  EXPECT_EQ(clean, churned);
}

TEST(RecordingTracerTest, KeepsNameAndTime) {
  Environment env;
  RecordingTracer tracer(env);
  const TraceId a = tracer.declare("sig_a", 1);
  const TraceId b = tracer.declare("sig_b", 8);
  env.schedule(3_us, [&] {
    tracer.change(a, "1");
    tracer.change(b, "00000001");
  });
  env.run_until(10_us);
  ASSERT_EQ(tracer.records().size(), 2u);
  EXPECT_EQ(tracer.records()[0].name, "sig_a");
  EXPECT_EQ(tracer.records()[0].time_ns, 3000u);
  EXPECT_EQ(tracer.records()[1].name, "sig_b");
  EXPECT_EQ(tracer.records()[1].value, "00000001");
}

}  // namespace
}  // namespace btsc::sim
