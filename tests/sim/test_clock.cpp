#include "sim/clock.hpp"

#include <gtest/gtest.h>

#include "sim/environment.hpp"

namespace btsc::sim {
namespace {

using namespace btsc::sim::literals;

TEST(ClockTest, GeneratesExpectedEdgeCount) {
  Environment env;
  Clock clk(env, "clk", 1_us);  // 1 MHz, like the Bluetooth bit clock
  env.run_until(100_us);
  // run_until executes events at t <= bound: edges at 0..100 us inclusive.
  EXPECT_EQ(clk.posedge_count(), 101u);
}

TEST(ClockTest, PosedgeTriggersProcess) {
  Environment env;
  Clock clk(env, "clk", 10_us);
  int ticks = 0;
  Process& p = env.register_process("count", [&] { ticks++; });
  clk.posedge_event().add_sensitive(p);
  env.run_until(95_us);
  EXPECT_EQ(ticks, 10);  // edges at 0,10,...,90
}

TEST(ClockTest, StartOffsetDelaysFirstEdge) {
  Environment env;
  Clock clk(env, "clk", 10_us, 3_us);
  SimTime first = SimTime::max();
  Process& p = env.register_process("first", [&] {
    if (first == SimTime::max()) first = env.now();
  });
  clk.posedge_event().add_sensitive(p);
  env.run_until(100_us);
  EXPECT_EQ(first, 3_us);
}

TEST(ClockTest, FiftyPercentDuty) {
  Environment env;
  Clock clk(env, "clk", 10_us);
  std::vector<std::uint64_t> pos, neg;
  Process& pp = env.register_process("p", [&] { pos.push_back(env.now().as_ns()); });
  Process& pn = env.register_process("n", [&] { neg.push_back(env.now().as_ns()); });
  clk.posedge_event().add_sensitive(pp);
  clk.out().negedge_event().add_sensitive(pn);
  env.run_until(30_us);
  ASSERT_GE(pos.size(), 2u);
  ASSERT_GE(neg.size(), 2u);
  EXPECT_EQ(neg[0] - pos[0], 5000u);   // high for half the period
  EXPECT_EQ(pos[1] - pos[0], 10000u);  // full period between posedges
}

TEST(ClockTest, StopHaltsToggling) {
  Environment env;
  Clock clk(env, "clk", 1_us);
  env.run_until(10_us);
  const auto edges = clk.posedge_count();
  clk.stop();
  env.run_until(20_us);
  // At most one already-scheduled toggle may land after stop().
  EXPECT_LE(clk.posedge_count(), edges + 1);
}

TEST(ClockTest, ZeroPeriodThrows) {
  Environment env;
  EXPECT_THROW(Clock(env, "clk", SimTime::zero()), std::invalid_argument);
}

TEST(ClockTest, NegedgeEventAccessor) {
  Environment env;
  Clock clk(env, "clk", 2_us);
  int negs = 0;
  Process& p = env.register_process("n", [&] { negs++; });
  clk.out().negedge_event().add_sensitive(p);
  env.run_until(10_us);
  EXPECT_GE(negs, 4);
}

}  // namespace
}  // namespace btsc::sim
