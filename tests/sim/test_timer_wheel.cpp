// Timing-wheel/heap boundary semantics: which timers take the O(1) ring
// buckets vs the overflow heap, exact (when, seq) ordering across the
// two containers, cancel-in-bucket, and the kernel's zero-allocation
// steady-state contract (counted via a global operator new hook).
//
// The wheel levels under test (see sim/timer_wheel.hpp):
//   L0: 250 ns x 4096   -> 1.024 ms horizon
//   L1: 312.5 us x 1024 -> 320 ms horizon
//   L2: 625 us x 4096   -> 2.56 s horizon
// Off-grid instants and farther-out timers overflow into the 4-ary heap.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "baseband/bt_clock.hpp"
#include "core/system.hpp"
#include "sim/environment.hpp"
#include "sim/time.hpp"
#include "sim/tracer.hpp"

namespace {

std::atomic<std::uint64_t> g_allocs{0};

}  // namespace

// GCC's -Wmismatched-new-delete heuristic flags the malloc/free pair it
// can see through this replaced allocator; the pairing is the standard
// counting-hook idiom and is correct (new -> malloc, delete -> free).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { operator delete(p); }

#pragma GCC diagnostic pop

namespace btsc::sim {
namespace {

using namespace btsc::sim::literals;

std::uint64_t allocs() { return g_allocs.load(std::memory_order_relaxed); }

// ---- wheel/heap placement boundaries ----

TEST(TimerWheelTest, GridAlignedNearTimerHitsWheel) {
  Environment env;
  env.schedule(250_ns, [] {});                      // finest grid
  env.schedule(1_us, [] {});                        // bit grid
  env.schedule(baseband::kTickPeriod, [] {});       // half-slot
  env.schedule(baseband::kSlotDuration * 4, [] {}); // 4 slots (level 1)
  env.schedule(1_sec, [] {});                       // superframe (level 2)
  const auto s = env.scheduler_stats();
  EXPECT_EQ(s.scheduled, 5u);
  EXPECT_EQ(s.wheel_hits, 5u);
  EXPECT_EQ(s.heap_overflow, 0u);
}

TEST(TimerWheelTest, OffGridTimerOverflowsToHeap) {
  Environment env;
  env.schedule(33_ns, [] {});        // off the 250 ns grid
  env.schedule(SimTime::ns(312'501), [] {});
  const auto s = env.scheduler_stats();
  EXPECT_EQ(s.wheel_hits, 0u);
  EXPECT_EQ(s.heap_overflow, 2u);
}

TEST(TimerWheelTest, FarHorizonTimerOverflowsToHeap) {
  Environment env;
  // Grid-aligned but beyond the 2.56 s level-2 horizon.
  env.schedule(10_sec, [] {});
  const auto s = env.scheduler_stats();
  EXPECT_EQ(s.wheel_hits, 0u);
  EXPECT_EQ(s.heap_overflow, 1u);
}

TEST(TimerWheelTest, HorizonBoundaryIsExact) {
  Environment env;
  // From t=0, level 0 covers ticks [0, 4096): the last in-horizon
  // 250 ns-grid instant is 4095*250 ns. 4096*250 ns = 1.024 ms is out of
  // level 0, not slot-aligned, and so overflows to the heap.
  env.schedule(SimTime::ns(4095 * 250), [] {});
  EXPECT_EQ(env.scheduler_stats().wheel_hits, 1u);
  env.schedule(SimTime::ns(4096 * 250), [] {});
  EXPECT_EQ(env.scheduler_stats().heap_overflow, 1u);
  // The same boundary at level 1: 1023 half-slots in, 1024 out (and
  // odd, so not level-2 eligible either).
  env.schedule(baseband::kTickPeriod * 1023, [] {});
  EXPECT_EQ(env.scheduler_stats().wheel_hits, 2u);
  env.schedule(baseband::kTickPeriod * 1025, [] {});
  EXPECT_EQ(env.scheduler_stats().heap_overflow, 2u);
  // Level 2: 1024 half-slots = 512 slots is even-slot aligned -> wheel.
  env.schedule(baseband::kTickPeriod * 1024, [] {});
  EXPECT_EQ(env.scheduler_stats().wheel_hits, 3u);
}

TEST(TimerWheelTest, WheelDisabledSendsEverythingToHeap) {
  Environment env;
  env.set_timer_wheel_enabled(false);
  bool ran = false;
  env.schedule(baseband::kTickPeriod, [&ran] { ran = true; });
  const auto s = env.scheduler_stats();
  EXPECT_EQ(s.wheel_hits, 0u);
  EXPECT_EQ(s.heap_overflow, 1u);
  env.run_until(1_ms);
  EXPECT_TRUE(ran);
}

TEST(TimerWheelTest, CoarseBucketResidentsDispatchAfterWheelDisable) {
  // Regression: entries already resident in level-1/2 buckets must still
  // dispatch after set_timer_wheel_enabled(false) empties nothing --
  // their due-instant eligibility cannot be gated on level 0 being
  // enabled or occupied (this once made run_until spin forever).
  Environment env;
  bool l1 = false, l2 = false;
  env.schedule(baseband::kSlotDuration * 4, [&l1] { l1 = true; });  // level 1
  env.schedule(1_sec, [&l2] { l2 = true; });                        // level 2
  EXPECT_EQ(env.scheduler_stats().wheel_hits, 2u);
  env.set_timer_wheel_enabled(false);
  env.run_until(2_sec);
  EXPECT_TRUE(l1);
  EXPECT_TRUE(l2);
  EXPECT_TRUE(env.idle());
}

// ---- ordering across the wheel/heap boundary ----

TEST(TimerWheelTest, SameInstantAcrossContainersFiresInScheduleOrder) {
  Environment env;
  std::vector<int> order;
  // A lands in the heap (3 s is past every horizon when scheduled from
  // t=0); B and C land in a level-0 bucket for the *same instant* once
  // time has advanced close enough. FIFO (seq) order must hold across
  // the container split.
  env.schedule(3_sec, [&] { order.push_back(1) ; });
  env.schedule(3_sec - 1_ms + 250_ns, [&]
               {  // runs at t = 2.999s + 250ns: 3 s is now in horizon
                 env.schedule(1_ms - 250_ns, [&] { order.push_back(2); });
                 env.schedule(1_ms - 250_ns, [&] { order.push_back(3); });
               });
  env.schedule(3_sec, [&] { order.push_back(4); });
  env.run_until(4_sec);
  // Seq order: 1 (heap), 4 (heap), then 2, 3 (bucket, scheduled later).
  EXPECT_EQ(order, (std::vector<int>{1, 4, 2, 3}));
  EXPECT_TRUE(env.idle());
}

TEST(TimerWheelTest, MixedGridAndOffGridOrderingIsGlobal) {
  Environment env;
  std::vector<std::uint64_t> fired;
  // Interleave on-grid (wheel) and off-grid (heap) timers over a dense
  // window; global time order (with FIFO tiebreak) must emerge.
  for (int i = 0; i < 400; ++i) {
    const std::uint64_t ns = (static_cast<std::uint64_t>(i) * 7919) % 100000;
    env.schedule(SimTime::ns(ns), [&fired, &env] {
      fired.push_back(env.now().as_ns());
    });
  }
  env.run_until(1_ms);
  ASSERT_EQ(fired.size(), 400u);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LE(fired[i - 1], fired[i]);
  }
  const auto s = env.scheduler_stats();
  EXPECT_GT(s.wheel_hits, 0u);
  EXPECT_GT(s.heap_overflow, 0u);
}

TEST(TimerWheelTest, ZeroDelayFromCallbackFiresSameInstantInSeqOrder) {
  Environment env;
  std::vector<int> order;
  env.schedule(baseband::kTickPeriod, [&] {
    order.push_back(1);
    env.schedule(SimTime::zero(), [&] { order.push_back(3); });
  });
  env.schedule(baseband::kTickPeriod, [&] { order.push_back(2); });
  env.run_until(baseband::kTickPeriod);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(env.now(), baseband::kTickPeriod);
}

// ---- cancellation in buckets ----

TEST(TimerWheelTest, CancelInBucketIsTrueRemoval) {
  Environment env;
  bool ran = false;
  const TimerId id = env.schedule(baseband::kTickPeriod, [&] { ran = true; });
  EXPECT_EQ(env.scheduler_stats().wheel_hits, 1u);
  EXPECT_TRUE(env.pending(id));
  env.cancel(id);
  EXPECT_FALSE(env.pending(id));
  EXPECT_TRUE(env.idle());  // no dead entry left in the bucket
  env.run_until(1_ms);
  EXPECT_FALSE(ran);
  EXPECT_EQ(env.scheduler_stats().fired, 0u);
  EXPECT_EQ(env.scheduler_stats().canceled, 1u);
}

TEST(TimerWheelTest, CancelMiddleOfSharedBucketKeepsSiblings) {
  Environment env;
  std::vector<int> order;
  TimerId ids[3];
  for (int i = 0; i < 3; ++i) {
    ids[i] = env.schedule(baseband::kSlotDuration, [&order, i] {
      order.push_back(i);
    });
  }
  env.cancel(ids[1]);  // unlink from the middle of the bucket list
  env.run_until(1_ms);
  EXPECT_EQ(order, (std::vector<int>{0, 2}));
  EXPECT_TRUE(env.idle());
}

TEST(TimerWheelTest, CancelSameInstantSiblingInBucketFromCallback) {
  Environment env;
  bool sibling_ran = false, later_ran = false;
  TimerId sibling = kInvalidTimer;
  env.schedule(baseband::kTickPeriod, [&] { env.cancel(sibling); });
  sibling =
      env.schedule(baseband::kTickPeriod, [&] { sibling_ran = true; });
  env.schedule(baseband::kTickPeriod, [&] { later_ran = true; });
  env.run_until(1_ms);
  EXPECT_FALSE(sibling_ran);
  EXPECT_TRUE(later_ran);
  EXPECT_TRUE(env.idle());
}

TEST(TimerWheelTest, CancelOwnedSpansWheelAndHeap) {
  Environment env;
  int mine = 0, other = 0;
  const int tag = 0;
  env.schedule(baseband::kTickPeriod, [&] { ++mine; }, &tag);  // bucket
  env.schedule(10_sec, [&] { ++mine; }, &tag);                 // heap
  env.schedule(33_ns, [&] { ++mine; }, &tag);                  // heap
  env.schedule(baseband::kTickPeriod, [&] { ++other; });
  env.cancel_owned(&tag);
  env.run_until(11_sec);
  EXPECT_EQ(mine, 0);
  EXPECT_EQ(other, 1);
  EXPECT_EQ(env.scheduler_stats().canceled, 3u);
  EXPECT_TRUE(env.idle());
}

TEST(TimerWheelTest, CanceledBucketEntryDestroysCapturedState) {
  Environment env;
  auto alive = std::make_shared<int>(1);
  std::weak_ptr<int> watch = alive;
  const TimerId id =
      env.schedule(baseband::kTickPeriod, [keep = std::move(alive)] {
        (void)*keep;
      });
  EXPECT_FALSE(watch.expired());
  env.cancel(id);
  // True cancellation destroys the capture immediately, not at slot
  // reuse or environment teardown.
  EXPECT_TRUE(watch.expired());
}

TEST(TimerWheelTest, StaleHandleAfterBucketReuseIsInert) {
  Environment env;
  bool second = false;
  const TimerId id1 = env.schedule(250_ns, [] {});
  env.run_until(1_us);
  const TimerId id2 = env.schedule(250_ns, [&] { second = true; });
  EXPECT_NE(id1, id2);
  env.cancel(id1);  // stale: must not touch id2's slot reuse
  EXPECT_TRUE(env.pending(id2));
  env.run_until(2_us);
  EXPECT_TRUE(second);
  EXPECT_EQ(env.scheduler_stats().cancels_after_fire, 1u);
}

// ---- zero-allocation steady state ----

TEST(TimerWheelTest, SteadyStateChurnPerformsZeroAllocations) {
  Environment env;
  std::uint64_t fired = 0;
  // Warm-up: reach peak slab/heap footprint (slab slots, heap array,
  // free list) so the steady-state loop below reuses everything.
  std::vector<TimerId> guards(8, kInvalidTimer);
  auto churn_round = [&] {
    for (TimerId id : guards) env.cancel(id);
    for (int g = 0; g < 8; ++g) {
      guards[static_cast<std::size_t>(g)] =
          env.schedule(baseband::kTickPeriod * (2 + g), [&fired] { ++fired; });
    }
    env.schedule(33_ns, [&fired] { ++fired; });       // heap path too
    env.run(baseband::kTickPeriod);
  };
  for (int i = 0; i < 64; ++i) churn_round();
  // Steady state: schedule/fire/cancel across both containers must not
  // touch the global allocator at all.
  const auto before = allocs();
  for (int i = 0; i < 1024; ++i) churn_round();
  EXPECT_EQ(allocs(), before);
  EXPECT_GT(fired, 0u);
}

// ---- wheel/heap dispatch equivalence (the swap-safety gate) ----

/// Runs the paper's piconet-creation scenario with a VCD tracer and
/// returns the VCD text. `wheel` selects the timing-wheel or the
/// heap-only (pre-wheel kernel) dispatch path.
std::string creation_vcd(bool wheel, const std::string& path) {
  core::SystemConfig sc;
  sc.num_slaves = 2;
  sc.seed = 1234;
  sc.ber = 1.0 / 80;  // noisy: retries, backoffs, response timeouts
  sc.vcd_path = path;
  core::BluetoothSystem sys(sc);
  sys.env().set_timer_wheel_enabled(wheel);
  for (int i = 0; i < 2; ++i) sys.slave(i).lc().enable_inquiry_scan();
  sys.master().lc().enable_inquiry();
  sys.run(80_ms);
  sys.finish_trace();
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(TimerWheelTest, VcdByteIdenticalAcrossWheelAndHeapDispatch) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  const std::string base = ::testing::TempDir() + info->name();
  const std::string a = creation_vcd(true, base + "_wheel.vcd");
  const std::string b = creation_vcd(false, base + "_heap.vcd");
  ASSERT_FALSE(a.empty());
  // Byte-for-byte: every signal edge of the whole creation scenario at
  // the same timestamp in the same order, wheel or not.
  EXPECT_EQ(a, b);
  std::remove((base + "_wheel.vcd").c_str());
  std::remove((base + "_heap.vcd").c_str());
}

}  // namespace
}  // namespace btsc::sim
