#include "sim/bitvector.hpp"

#include <gtest/gtest.h>

namespace btsc::sim {
namespace {

TEST(BitVectorTest, DefaultEmpty) {
  BitVector v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
}

TEST(BitVectorTest, SizedConstruction) {
  BitVector v(5, true);
  EXPECT_EQ(v.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_TRUE(v[i]);
}

TEST(BitVectorTest, FromStringRoundTrip) {
  const auto v = BitVector::from_string("10110");
  EXPECT_EQ(v.size(), 5u);
  EXPECT_TRUE(v[0]);
  EXPECT_FALSE(v[1]);
  EXPECT_EQ(v.to_string(), "10110");
}

TEST(BitVectorTest, FromStringRejectsBadChars) {
  EXPECT_THROW(BitVector::from_string("10x"), std::invalid_argument);
}

TEST(BitVectorTest, AppendUintIsLsbFirst) {
  BitVector v;
  v.append_uint(0b1101, 4);  // air order: 1,0,1,1
  EXPECT_EQ(v.to_string(), "1011");
}

TEST(BitVectorTest, ExtractUintInverseOfAppend) {
  BitVector v;
  v.append_uint(0xCAFE, 16);
  v.append_uint(0x5, 3);
  EXPECT_EQ(v.extract_uint(0, 16), 0xCAFEu);
  EXPECT_EQ(v.extract_uint(16, 3), 0x5u);
}

TEST(BitVectorTest, ExtractOutOfRangeThrows) {
  BitVector v;
  v.append_uint(0xFF, 8);
  EXPECT_THROW(v.extract_uint(1, 8), std::out_of_range);
  EXPECT_THROW(v.extract_uint(0, 65), std::out_of_range);
}

TEST(BitVectorTest, SetFlipAt) {
  BitVector v(3);
  v.set(1, true);
  EXPECT_FALSE(v.at(0));
  EXPECT_TRUE(v.at(1));
  v.flip(1);
  EXPECT_FALSE(v.at(1));
  EXPECT_THROW(v.set(3, true), std::out_of_range);
}

TEST(BitVectorTest, AppendVector) {
  auto a = BitVector::from_string("101");
  a.append(BitVector::from_string("01"));
  EXPECT_EQ(a.to_string(), "10101");
}

TEST(BitVectorTest, Slice) {
  const auto v = BitVector::from_string("110010");
  EXPECT_EQ(v.slice(2, 3).to_string(), "001");
  EXPECT_THROW(v.slice(4, 3), std::out_of_range);
}

TEST(BitVectorTest, HammingDistance) {
  const auto a = BitVector::from_string("1010");
  const auto b = BitVector::from_string("1001");
  EXPECT_EQ(a.hamming_distance(b), 2u);
  EXPECT_EQ(a.hamming_distance(a), 0u);
  EXPECT_THROW(a.hamming_distance(BitVector::from_string("1")),
               std::invalid_argument);
}

TEST(BitVectorTest, Equality) {
  EXPECT_EQ(BitVector::from_string("01"), BitVector::from_string("01"));
  EXPECT_NE(BitVector::from_string("01"), BitVector::from_string("10"));
  EXPECT_NE(BitVector::from_string("01"), BitVector::from_string("010"));
}

// Property sweep: append/extract round-trips for many widths and values.
class BitVectorRoundTrip : public ::testing::TestWithParam<unsigned> {};

TEST_P(BitVectorRoundTrip, AppendExtractIdentity) {
  const unsigned nbits = GetParam();
  const std::uint64_t mask =
      nbits == 64 ? ~0ull : ((1ull << nbits) - 1);
  for (std::uint64_t seed : {0ull, 1ull, 0xDEADBEEFCAFEBABEull,
                             0x123456789ABCDEFull, ~0ull}) {
    const std::uint64_t value = seed & mask;
    BitVector v;
    v.append_uint(0x2A, 6);  // preceding noise bits
    v.append_uint(value, nbits);
    EXPECT_EQ(v.extract_uint(6, nbits), value) << "nbits=" << nbits;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BitVectorRoundTrip,
                         ::testing::Values(1u, 3u, 8u, 16u, 24u, 28u, 32u,
                                           48u, 64u));

}  // namespace
}  // namespace btsc::sim
