#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace btsc::sim {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a.next());
  a.reseed(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next(), first[i]);
}

TEST(RngTest, UniformStaysInRange) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(RngTest, UniformSingletonRange) {
  Rng r(4);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.uniform(5, 5), 5u);
}

TEST(RngTest, UniformCoversRange) {
  Rng r(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.uniform(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, Uniform01Bounds) {
  Rng r(6);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, Uniform01MeanNearHalf) {
  Rng r(8);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng r(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
    EXPECT_FALSE(r.bernoulli(-1.0));
    EXPECT_TRUE(r.bernoulli(2.0));
  }
}

TEST(RngTest, BernoulliRateMatchesP) {
  Rng r(10);
  const double p = 1.0 / 30.0;  // a BER value used in the paper
  int hits = 0;
  const int n = 300000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(p);
  const double rate = static_cast<double>(hits) / n;
  EXPECT_NEAR(rate, p, 3.0 * std::sqrt(p * (1 - p) / n));
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(11);
  Rng child = parent.split();
  // Child stream should differ from the parent's continued stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (parent.next() == child.next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, SplitIsDeterministic) {
  Rng p1(12), p2(12);
  Rng c1 = p1.split(), c2 = p2.split();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(c1.next(), c2.next());
}

// Property sweep: uniform() respects arbitrary [lo, hi] windows.
class RngUniformRange
    : public ::testing::TestWithParam<std::pair<std::uint64_t, std::uint64_t>> {
};

TEST_P(RngUniformRange, AllValuesWithinAndEndpointsReachable) {
  const auto [lo, hi] = GetParam();
  Rng r(lo * 31 + hi);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 20000; ++i) {
    const auto v = r.uniform(lo, hi);
    ASSERT_GE(v, lo);
    ASSERT_LE(v, hi);
    saw_lo |= (v == lo);
    saw_hi |= (v == hi);
  }
  if (hi - lo < 1000) {
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, RngUniformRange,
    ::testing::Values(std::pair<std::uint64_t, std::uint64_t>{0, 1},
                      std::pair<std::uint64_t, std::uint64_t>{0, 78},
                      std::pair<std::uint64_t, std::uint64_t>{0, 1023},
                      std::pair<std::uint64_t, std::uint64_t>{5, 5},
                      std::pair<std::uint64_t, std::uint64_t>{100, 107},
                      std::pair<std::uint64_t, std::uint64_t>{
                          0, ~std::uint64_t{0}}));

}  // namespace
}  // namespace btsc::sim
