// SnapshotWriter/SnapshotReader primitives: scalar codecs round-trip
// bit-exactly, sections nest and validate their tags and lengths, and
// every malformed stream is rejected with SnapshotError rather than
// silently misread -- the foundation the module-level round-trip goldens
// and the forked-vs-cold sweep gates build on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "sim/bitvector.hpp"
#include "sim/snapshot.hpp"
#include "sim/time.hpp"

namespace btsc::sim {
namespace {

constexpr std::uint32_t kTagA = snapshot_tag("AAAA");
constexpr std::uint32_t kTagB = snapshot_tag("BB  ");

TEST(Snapshot, ScalarsRoundTrip) {
  SnapshotWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.b(true);
  w.b(false);
  w.f64(-1.5e-300);
  w.time(SimTime::ns(123456789));
  w.str("hello \n world");
  w.str("");
  const std::vector<std::uint8_t> blob = {1, 2, 3, 255};
  w.byte_vec(blob);
  const auto bytes = w.take();

  SnapshotReader r(bytes);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_TRUE(r.b());
  EXPECT_FALSE(r.b());
  EXPECT_EQ(r.f64(), -1.5e-300);
  EXPECT_EQ(r.time(), SimTime::ns(123456789));
  EXPECT_EQ(r.str(), "hello \n world");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.byte_vec(), blob);
  EXPECT_TRUE(r.at_end());
}

TEST(Snapshot, DoubleBitPatternsSurvive) {
  // f64 must preserve the exact bit pattern, not the value: the
  // byte-stability contract depends on it (NaN payloads, signed zero).
  const double values[] = {0.0, -0.0, std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::denorm_min()};
  SnapshotWriter w;
  for (double v : values) w.f64(v);
  const auto bytes = w.take();
  SnapshotReader r(bytes);
  for (double v : values) {
    const double got = r.f64();
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got),
              std::bit_cast<std::uint64_t>(v));
  }
}

TEST(Snapshot, SectionsNest) {
  SnapshotWriter w;
  w.begin_section(kTagA);
  w.u32(7);
  w.begin_section(kTagB);
  w.str("inner");
  w.end_section();
  w.u32(9);
  w.end_section();
  const auto bytes = w.take();

  SnapshotReader r(bytes);
  r.enter_section(kTagA);
  EXPECT_EQ(r.u32(), 7u);
  r.enter_section(kTagB);
  EXPECT_EQ(r.str(), "inner");
  r.leave_section();
  EXPECT_EQ(r.u32(), 9u);
  r.leave_section();
  EXPECT_TRUE(r.at_end());
}

TEST(Snapshot, BitVectorRoundTrip) {
  // Cover the word boundary and a non-multiple-of-64 tail.
  for (std::size_t n : {0u, 1u, 63u, 64u, 65u, 200u}) {
    BitVector v;
    for (std::size_t i = 0; i < n; ++i) v.push_back((i * 7 + 3) % 5 < 2);
    SnapshotWriter w;
    save_bitvector(w, v);
    const auto bytes = w.take();
    SnapshotReader r(bytes);
    BitVector out;
    out.push_back(true);  // must be cleared by restore
    restore_bitvector(r, out);
    ASSERT_EQ(out.size(), v.size()) << "n=" << n;
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(out[i], v[i]);
  }
}

TEST(Snapshot, SaveRestoreSeq) {
  std::vector<std::uint32_t> in = {5, 10, 15};
  SnapshotWriter w;
  save_seq(w, in.size(), [&](std::size_t i) { w.u32(in[i]); });
  const auto bytes = w.take();
  SnapshotReader r(bytes);
  std::vector<std::uint32_t> out;
  restore_seq(r, [&](std::size_t) { out.push_back(r.u32()); });
  EXPECT_EQ(out, in);
}

TEST(Snapshot, RejectsBadMagic) {
  SnapshotWriter w;
  auto bytes = w.take();
  bytes[0] ^= 0xFF;
  EXPECT_THROW(SnapshotReader r(bytes), SnapshotError);
}

TEST(Snapshot, RejectsVersionMismatch) {
  SnapshotWriter w;
  auto bytes = w.take();
  bytes[4] += 1;  // version is the second little-endian u32
  EXPECT_THROW(SnapshotReader r(bytes), SnapshotError);
}

TEST(Snapshot, RejectsWrongSectionTag) {
  SnapshotWriter w;
  w.begin_section(kTagA);
  w.end_section();
  const auto bytes = w.take();
  SnapshotReader r(bytes);
  EXPECT_THROW(r.enter_section(kTagB), SnapshotError);
}

TEST(Snapshot, RejectsShortRead) {
  SnapshotWriter w;
  w.u16(42);
  const auto bytes = w.take();
  SnapshotReader r(bytes);
  r.u16();
  EXPECT_THROW(r.u8(), SnapshotError);
}

TEST(Snapshot, RejectsReadPastSectionEnd) {
  SnapshotWriter w;
  w.begin_section(kTagA);
  w.u8(1);
  w.end_section();
  w.u64(0);  // data after the section must be unreachable from inside it
  const auto bytes = w.take();
  SnapshotReader r(bytes);
  r.enter_section(kTagA);
  r.u8();
  EXPECT_THROW(r.u8(), SnapshotError);
}

TEST(Snapshot, RejectsUnderReadSection) {
  SnapshotWriter w;
  w.begin_section(kTagA);
  w.u32(1);
  w.end_section();
  const auto bytes = w.take();
  SnapshotReader r(bytes);
  r.enter_section(kTagA);
  // Leaving with unconsumed body bytes is a structural mismatch.
  EXPECT_THROW(r.leave_section(), SnapshotError);
}

TEST(Snapshot, TakeRejectsUnclosedSection) {
  SnapshotWriter w;
  w.begin_section(kTagA);
  EXPECT_THROW(w.take(), SnapshotError);
}

TEST(Snapshot, WriteIsByteStable) {
  // Two writers fed the same values must produce identical streams --
  // the property every round-trip golden ultimately reduces to.
  auto make = [] {
    SnapshotWriter w;
    w.begin_section(kTagA);
    w.u64(99);
    w.f64(3.25);
    w.str("stable");
    w.end_section();
    return w.take();
  };
  EXPECT_EQ(make(), make());
}

}  // namespace
}  // namespace btsc::sim
