// sim::UniqueFunction semantics: move-only captures, inline small-buffer
// storage (zero allocation), oversized-capture heap fallback, and
// destruction of captured state -- the allocation contract the kernel's
// schedule/fire/cancel hot path is built on.
//
// This TU overrides the global allocator with a counting hook, so every
// test can assert exactly how many heap allocations a construct/move/
// destroy sequence performed. Each test file is its own executable, so
// the override is visible binary-wide but cannot leak into other suites.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <utility>

#include "sim/unique_function.hpp"

namespace {

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_frees{0};

}  // namespace

// GCC's -Wmismatched-new-delete heuristic flags the malloc/free pair it
// can see through this replaced allocator; the pairing is the standard
// counting-hook idiom and is correct (new -> malloc, delete -> free).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept {
  if (p != nullptr) g_frees.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

void operator delete(void* p, std::size_t) noexcept { operator delete(p); }

#pragma GCC diagnostic pop

namespace btsc::sim {
namespace {

std::uint64_t allocs() { return g_allocs.load(std::memory_order_relaxed); }
std::uint64_t frees() { return g_frees.load(std::memory_order_relaxed); }

TEST(UniqueFunctionTest, DefaultIsEmptyAndFalsy) {
  UniqueFunction f;
  EXPECT_FALSE(f);
  EXPECT_TRUE(f == nullptr);
  UniqueFunction g(nullptr);
  EXPECT_FALSE(g);
}

TEST(UniqueFunctionTest, InvokesSmallTrivialCapture) {
  int hits = 0;
  UniqueFunction f([&hits] { ++hits; });
  EXPECT_TRUE(f);
  f();
  f();
  EXPECT_EQ(hits, 2);
}

TEST(UniqueFunctionTest, SmallCaptureDoesNotAllocate) {
  int x = 0;
  const auto before = allocs();
  {
    UniqueFunction f([&x] { ++x; });
    f();
    UniqueFunction g(std::move(f));
    g();
  }
  EXPECT_EQ(allocs(), before);
  EXPECT_EQ(x, 2);
}

TEST(UniqueFunctionTest, CapacityCaptureStaysInline) {
  // A callable of exactly kInlineCapacity bytes must not allocate.
  struct Snug {
    unsigned char bytes[UniqueFunction::kInlineCapacity - sizeof(void*)];
    unsigned char* out;
    void operator()() { *out = bytes[0]; }
  };
  static_assert(sizeof(Snug) == UniqueFunction::kInlineCapacity);
  static_assert(UniqueFunction::stores_inline_v<Snug>);
  unsigned char seen = 0;
  Snug snug{};
  snug.bytes[0] = 9;
  snug.out = &seen;
  const auto before = allocs();
  UniqueFunction f(snug);
  f();
  EXPECT_EQ(allocs(), before);
  EXPECT_EQ(seen, 9);
}

TEST(UniqueFunctionTest, MoveOnlyCaptureWorks) {
  // std::function cannot hold this lambda at all (it requires copyable
  // targets); UniqueFunction must.
  auto p = std::make_unique<int>(42);
  int got = 0;
  UniqueFunction f([p = std::move(p), &got] { got = *p; });
  f();
  EXPECT_EQ(got, 42);
}

TEST(UniqueFunctionTest, OversizedCaptureFallsBackToOneHeapAllocation) {
  struct Big {
    unsigned char bytes[UniqueFunction::kInlineCapacity + 16];
  };
  static_assert(!UniqueFunction::stores_inline_v<Big>);
  Big big{};
  big.bytes[0] = 3;
  unsigned char seen = 0;
  const auto before = allocs();
  {
    UniqueFunction f([big, &seen] { seen = big.bytes[0]; });
    EXPECT_EQ(allocs(), before + 1);  // exactly one block
    f();
    // Moving a heap-backed callback steals the pointer: no new block.
    UniqueFunction g(std::move(f));
    g();
    EXPECT_EQ(allocs(), before + 1);
  }
  EXPECT_EQ(seen, 3);
}

TEST(UniqueFunctionTest, OversizedCaptureBlockIsFreedOnDestruction) {
  struct Big {
    unsigned char bytes[UniqueFunction::kInlineCapacity * 2];
  };
  Big big{};
  const auto a0 = allocs();
  const auto f0 = frees();
  {
    UniqueFunction f([big] { (void)big; });
    EXPECT_EQ(allocs(), a0 + 1);
  }
  EXPECT_EQ(frees(), f0 + 1);
}

TEST(UniqueFunctionTest, MoveTransfersAndEmptiesSource) {
  int hits = 0;
  UniqueFunction f([&hits] { ++hits; });
  UniqueFunction g(std::move(f));
  EXPECT_FALSE(f);  // NOLINT(bugprone-use-after-move): contract under test
  EXPECT_TRUE(g);
  g();
  EXPECT_EQ(hits, 1);
  f = std::move(g);
  EXPECT_FALSE(g);  // NOLINT(bugprone-use-after-move)
  f();
  EXPECT_EQ(hits, 2);
}

TEST(UniqueFunctionTest, MoveAssignDestroysPreviousPayload) {
  auto alive = std::make_shared<int>(1);
  std::weak_ptr<int> watch = alive;
  UniqueFunction f([keep = std::move(alive)] { (void)*keep; });
  EXPECT_FALSE(watch.expired());
  f = UniqueFunction([] {});
  EXPECT_TRUE(watch.expired());  // old capture destroyed by the assign
}

TEST(UniqueFunctionTest, ResetDestroysCapturedState) {
  auto alive = std::make_shared<int>(5);
  std::weak_ptr<int> watch = alive;
  UniqueFunction f([keep = std::move(alive)] { (void)*keep; });
  EXPECT_FALSE(watch.expired());
  f.reset();
  EXPECT_TRUE(watch.expired());
  EXPECT_FALSE(f);
  f = nullptr;  // idempotent
}

TEST(UniqueFunctionTest, DestructorDestroysCapturedState) {
  auto alive = std::make_shared<int>(5);
  std::weak_ptr<int> watch = alive;
  {
    UniqueFunction f([keep = std::move(alive)] { (void)*keep; });
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
}

TEST(UniqueFunctionTest, MovedFromObjectIsReusable) {
  int hits = 0;
  UniqueFunction f([&hits] { ++hits; });
  UniqueFunction g(std::move(f));
  g();
  f = UniqueFunction([&hits] { hits += 10; });
  f();
  EXPECT_EQ(hits, 11);
}

TEST(UniqueFunctionTest, EmplaceConstructsInPlace) {
  int hits = 0;
  UniqueFunction f;
  f.emplace([&hits] { ++hits; });
  f();
  EXPECT_EQ(hits, 1);
  // emplace over an existing payload destroys it first.
  auto alive = std::make_shared<int>(1);
  std::weak_ptr<int> watch = alive;
  f.emplace([keep = std::move(alive)] { (void)*keep; });
  EXPECT_FALSE(watch.expired());
  f.emplace([] {});
  EXPECT_TRUE(watch.expired());
}

TEST(UniqueFunctionTest, WrapsStdFunctionByValue) {
  int hits = 0;
  std::function<void()> sf = [&hits] { ++hits; };
  UniqueFunction f(sf);  // copies the std::function in
  sf = nullptr;
  f();
  EXPECT_EQ(hits, 1);
}

TEST(UniqueFunctionTest, NonTrivialInlineCaptureMovesCorrectly) {
  // A capture with a real destructor but inline size: the managed (non
  // -trivial) inline path must move-construct and destroy properly.
  auto alive = std::make_shared<int>(9);
  std::weak_ptr<int> watch = alive;
  int got = 0;
  UniqueFunction f([keep = std::move(alive), &got] { got = *keep; });
  UniqueFunction g(std::move(f));
  EXPECT_FALSE(watch.expired());
  g();
  EXPECT_EQ(got, 9);
  g.reset();
  EXPECT_TRUE(watch.expired());
}

}  // namespace
}  // namespace btsc::sim
