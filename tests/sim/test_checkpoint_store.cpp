// Durable checkpoint store: atomic write/load round trip, recipe
// validation, and the rejection guarantees of the file-backed layer
// (every corruption mode throws SnapshotError; nothing partially
// applies).
#include "sim/checkpoint_store.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace btsc::sim {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

CheckpointFile sample_file() {
  CheckpointFile f;
  f.scenario = "fig08";
  f.point_index = 3;
  f.warm_seed = 0xDEADBEEFCAFEF00Dull;
  f.construction_seed = 0x1234567890ABCDEFull;
  f.config = {0x01, 0x02, 0x03, 0x04};
  // A realistic embedded image: a complete (checksummed) inner stream.
  SnapshotWriter w;
  w.begin_section(snapshot_tag("ENV "));
  w.u64(42);
  w.str("inner snapshot payload");
  w.end_section();
  f.snapshot = w.take();
  return f;
}

void expect_equal(const CheckpointFile& a, const CheckpointFile& b) {
  EXPECT_EQ(a.scenario, b.scenario);
  EXPECT_EQ(a.point_index, b.point_index);
  EXPECT_EQ(a.warm_seed, b.warm_seed);
  EXPECT_EQ(a.construction_seed, b.construction_seed);
  EXPECT_EQ(a.snapshot_version, b.snapshot_version);
  EXPECT_EQ(a.config, b.config);
  EXPECT_EQ(a.snapshot, b.snapshot);
}

TEST(CheckpointStoreTest, WriteLoadRoundTrip) {
  const std::string path = temp_path("roundtrip.ckpt");
  const CheckpointFile f = sample_file();
  write_checkpoint_file(path, f);
  expect_equal(f, load_checkpoint_file(path));
  std::remove(path.c_str());
}

TEST(CheckpointStoreTest, EncodeDecodeRoundTrip) {
  const CheckpointFile f = sample_file();
  expect_equal(f, decode_checkpoint_file(encode_checkpoint_file(f)));
}

TEST(CheckpointStoreTest, OverwriteIsAtomicAndLoadsLatest) {
  const std::string path = temp_path("overwrite.ckpt");
  CheckpointFile f = sample_file();
  write_checkpoint_file(path, f);
  f.construction_seed = 999;
  f.config = {0xAA};
  write_checkpoint_file(path, f);
  expect_equal(f, load_checkpoint_file(path));
  // The temp file of the atomic protocol must not survive a success.
  std::size_t residue = 0;
  for (const auto& e : fs::directory_iterator(testing::TempDir())) {
    if (e.path().filename().string().find("overwrite.ckpt.tmp") !=
        std::string::npos) {
      ++residue;
    }
  }
  EXPECT_EQ(residue, 0u);
  std::remove(path.c_str());
}

TEST(CheckpointStoreTest, MissingFileThrows) {
  EXPECT_THROW(load_checkpoint_file(temp_path("does-not-exist.ckpt")),
               SnapshotError);
}

TEST(CheckpointStoreTest, StaleSnapshotVersionThrows) {
  CheckpointFile f = sample_file();
  f.snapshot_version = kSnapshotVersion + 1;
  const std::vector<std::uint8_t> bytes = encode_checkpoint_file(f);
  EXPECT_THROW(decode_checkpoint_file(bytes), SnapshotError);
  f.snapshot_version = kSnapshotVersion - 1;
  EXPECT_THROW(decode_checkpoint_file(encode_checkpoint_file(f)),
               SnapshotError);
}

TEST(CheckpointStoreTest, EveryTruncationThrows) {
  const std::vector<std::uint8_t> bytes =
      encode_checkpoint_file(sample_file());
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<std::uint8_t> torn(bytes.begin(),
                                   bytes.begin() +
                                       static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW(decode_checkpoint_file(torn), SnapshotError)
        << "cut at " << cut;
  }
}

TEST(CheckpointStoreTest, EveryBitFlipThrows) {
  const std::vector<std::uint8_t> bytes =
      encode_checkpoint_file(sample_file());
  for (std::size_t byte = 0; byte < bytes.size(); ++byte) {
    std::vector<std::uint8_t> flipped = bytes;
    flipped[byte] ^= 0x10;
    EXPECT_THROW(decode_checkpoint_file(flipped), SnapshotError)
        << "flip at byte " << byte;
  }
}

TEST(CheckpointStoreTest, TrailingGarbageThrows) {
  std::vector<std::uint8_t> bytes = encode_checkpoint_file(sample_file());
  bytes.push_back(0x00);
  EXPECT_THROW(decode_checkpoint_file(bytes), SnapshotError);
}

TEST(CheckpointStoreTest, TruncatedFileOnDiskThrows) {
  const std::string path = temp_path("truncated.ckpt");
  const std::vector<std::uint8_t> bytes =
      encode_checkpoint_file(sample_file());
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size() / 2));
  out.close();
  EXPECT_THROW(load_checkpoint_file(path), SnapshotError);
  std::remove(path.c_str());
}

TEST(CheckpointStoreTest, StaleTempFileDoesNotShadowTheCheckpoint) {
  // A crash between write and rename leaves `<path>.tmp.<pid>` around;
  // loads must keep reading the committed file.
  const std::string path = temp_path("shadow.ckpt");
  const CheckpointFile f = sample_file();
  write_checkpoint_file(path, f);
  std::ofstream stale(path + ".tmp.12345", std::ios::binary);
  stale << "garbage from a dead process";
  stale.close();
  expect_equal(f, load_checkpoint_file(path));
  std::remove(path.c_str());
  std::remove((path + ".tmp.12345").c_str());
}

}  // namespace
}  // namespace btsc::sim
