// Kernel scheduler semantics: timed callbacks, delta cycles, cancellation,
// determinism. These tests pin down the evaluate/update contract that all
// Bluetooth models rely on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/environment.hpp"
#include "sim/event.hpp"
#include "sim/signal.hpp"
#include "sim/time.hpp"

namespace btsc::sim {
namespace {

using namespace btsc::sim::literals;

TEST(SchedulerTest, StartsAtTimeZero) {
  Environment env;
  EXPECT_EQ(env.now(), SimTime::zero());
}

TEST(SchedulerTest, ScheduleRunsAtRequestedTime) {
  Environment env;
  SimTime fired = SimTime::max();
  env.schedule(10_us, [&] { fired = env.now(); });
  env.run_until(1_ms);
  EXPECT_EQ(fired, 10_us);
}

TEST(SchedulerTest, RunUntilAdvancesToBoundWhenIdle) {
  Environment env;
  env.run_until(5_ms);
  EXPECT_EQ(env.now(), 5_ms);
}

TEST(SchedulerTest, EventsFireInTimeOrder) {
  Environment env;
  std::vector<int> order;
  env.schedule(30_us, [&] { order.push_back(3); });
  env.schedule(10_us, [&] { order.push_back(1); });
  env.schedule(20_us, [&] { order.push_back(2); });
  env.run_until(1_ms);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SchedulerTest, SameTimeCallbacksFifoOrder) {
  Environment env;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    env.schedule(10_us, [&, i] { order.push_back(i); });
  }
  env.run_until(1_ms);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SchedulerTest, NestedSchedulingFromCallback) {
  Environment env;
  std::vector<std::uint64_t> times;
  std::function<void()> chain = [&] {
    times.push_back(env.now().as_ns());
    if (times.size() < 4) env.schedule(100_ns, chain);
  };
  env.schedule(0_ns, chain);
  env.run_until(1_us);
  EXPECT_EQ(times, (std::vector<std::uint64_t>{0, 100, 200, 300}));
}

TEST(SchedulerTest, ZeroDelayCallbackRunsAtSameTimeLater) {
  Environment env;
  bool inner = false;
  env.schedule(5_us, [&] {
    env.schedule(0_ns, [&] { inner = true; });
  });
  env.run_until(5_us);
  EXPECT_TRUE(inner);
  EXPECT_EQ(env.now(), 5_us);
}

TEST(SchedulerTest, CancelPreventsExecution) {
  Environment env;
  bool ran = false;
  const TimerId id = env.schedule(10_us, [&] { ran = true; });
  env.cancel(id);
  env.run_until(1_ms);
  EXPECT_FALSE(ran);
}

TEST(SchedulerTest, CancelAfterFireIsSafe) {
  Environment env;
  bool ran = false;
  const TimerId id = env.schedule(10_us, [&] { ran = true; });
  env.run_until(1_ms);
  EXPECT_TRUE(ran);
  env.cancel(id);  // must not crash or affect anything
}

TEST(SchedulerTest, RunUntilDoesNotExecuteBeyondBound) {
  Environment env;
  bool late = false;
  env.schedule(2_ms, [&] { late = true; });
  env.run_until(1_ms);
  EXPECT_FALSE(late);
  EXPECT_EQ(env.now(), 1_ms);
  env.run_until(3_ms);
  EXPECT_TRUE(late);
}

TEST(SchedulerTest, RunDurationIsRelative) {
  Environment env;
  env.run(1_ms);
  env.run(1_ms);
  EXPECT_EQ(env.now(), 2_ms);
}

TEST(SchedulerTest, IdleReflectsPendingWork) {
  Environment env;
  EXPECT_TRUE(env.idle());
  env.schedule(1_us, [] {});
  EXPECT_FALSE(env.idle());
  env.run_until(1_ms);
  EXPECT_TRUE(env.idle());
}

TEST(SchedulerTest, TimedEventNotifiesSensitiveProcess) {
  Environment env;
  Event ev(env, "ev");
  int fired = 0;
  Process& p = env.register_process("p", [&] { fired++; });
  ev.add_sensitive(p);
  ev.notify(100_us);
  env.run_until(1_ms);
  EXPECT_EQ(fired, 1);
}

TEST(SchedulerTest, DeltaNotifyRunsProcessWithoutTimeAdvance) {
  Environment env;
  Event ev(env, "ev");
  SimTime when = SimTime::max();
  Process& p = env.register_process("p", [&] { when = env.now(); });
  ev.add_sensitive(p);
  env.schedule(7_us, [&] { ev.notify_delta(); });
  env.run_until(1_ms);
  EXPECT_EQ(when, 7_us);
}

TEST(SchedulerTest, ProcessNotQueuedTwicePerDelta) {
  Environment env;
  Event a(env, "a"), b(env, "b");
  int runs = 0;
  Process& p = env.register_process("p", [&] { runs++; });
  a.add_sensitive(p);
  b.add_sensitive(p);
  env.schedule(1_us, [&] {
    a.notify_delta();
    b.notify_delta();
  });
  env.run_until(1_ms);
  EXPECT_EQ(runs, 1);
}

TEST(SchedulerTest, ActivationAndDeltaCountersAdvance) {
  Environment env;
  Event ev(env, "ev");
  Process& p = env.register_process("p", [] {});
  ev.add_sensitive(p);
  const auto d0 = env.delta_count();
  const auto a0 = env.process_activations();
  env.schedule(1_us, [&] { ev.notify_delta(); });
  env.run_until(1_ms);
  EXPECT_GT(env.delta_count(), d0);
  EXPECT_EQ(env.process_activations(), a0 + 1);
}

TEST(SchedulerTest, ManyTimersStressOrdering) {
  Environment env;
  std::vector<std::uint64_t> fired;
  // Schedule in a scrambled deterministic order.
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const std::uint64_t t = (i * 7919) % 1000;
    env.schedule(SimTime::us(t), [&fired, &env] {
      fired.push_back(env.now().as_ns());
    });
  }
  env.run_until(1_sec);
  ASSERT_EQ(fired.size(), 1000u);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LE(fired[i - 1], fired[i]);
  }
}

}  // namespace
}  // namespace btsc::sim
