// Kernel scheduler semantics: timed callbacks, delta cycles, cancellation,
// determinism. These tests pin down the evaluate/update contract that all
// Bluetooth models rely on.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "sim/environment.hpp"
#include "sim/event.hpp"
#include "sim/signal.hpp"
#include "sim/time.hpp"

namespace btsc::sim {
namespace {

using namespace btsc::sim::literals;

TEST(SchedulerTest, StartsAtTimeZero) {
  Environment env;
  EXPECT_EQ(env.now(), SimTime::zero());
}

TEST(SchedulerTest, ScheduleRunsAtRequestedTime) {
  Environment env;
  SimTime fired = SimTime::max();
  env.schedule(10_us, [&] { fired = env.now(); });
  env.run_until(1_ms);
  EXPECT_EQ(fired, 10_us);
}

TEST(SchedulerTest, RunUntilAdvancesToBoundWhenIdle) {
  Environment env;
  env.run_until(5_ms);
  EXPECT_EQ(env.now(), 5_ms);
}

TEST(SchedulerTest, EventsFireInTimeOrder) {
  Environment env;
  std::vector<int> order;
  env.schedule(30_us, [&] { order.push_back(3); });
  env.schedule(10_us, [&] { order.push_back(1); });
  env.schedule(20_us, [&] { order.push_back(2); });
  env.run_until(1_ms);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SchedulerTest, SameTimeCallbacksFifoOrder) {
  Environment env;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    env.schedule(10_us, [&, i] { order.push_back(i); });
  }
  env.run_until(1_ms);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SchedulerTest, NestedSchedulingFromCallback) {
  Environment env;
  std::vector<std::uint64_t> times;
  std::function<void()> chain = [&] {
    times.push_back(env.now().as_ns());
    if (times.size() < 4) env.schedule(100_ns, chain);
  };
  env.schedule(0_ns, chain);
  env.run_until(1_us);
  EXPECT_EQ(times, (std::vector<std::uint64_t>{0, 100, 200, 300}));
}

TEST(SchedulerTest, ZeroDelayCallbackRunsAtSameTimeLater) {
  Environment env;
  bool inner = false;
  env.schedule(5_us, [&] {
    env.schedule(0_ns, [&] { inner = true; });
  });
  env.run_until(5_us);
  EXPECT_TRUE(inner);
  EXPECT_EQ(env.now(), 5_us);
}

TEST(SchedulerTest, CancelPreventsExecution) {
  Environment env;
  bool ran = false;
  const TimerId id = env.schedule(10_us, [&] { ran = true; });
  env.cancel(id);
  env.run_until(1_ms);
  EXPECT_FALSE(ran);
}

TEST(SchedulerTest, CancelAfterFireIsSafe) {
  Environment env;
  bool ran = false;
  const TimerId id = env.schedule(10_us, [&] { ran = true; });
  env.run_until(1_ms);
  EXPECT_TRUE(ran);
  env.cancel(id);  // must not crash or affect anything
}

TEST(SchedulerTest, RunUntilDoesNotExecuteBeyondBound) {
  Environment env;
  bool late = false;
  env.schedule(2_ms, [&] { late = true; });
  env.run_until(1_ms);
  EXPECT_FALSE(late);
  EXPECT_EQ(env.now(), 1_ms);
  env.run_until(3_ms);
  EXPECT_TRUE(late);
}

TEST(SchedulerTest, RunDurationIsRelative) {
  Environment env;
  env.run(1_ms);
  env.run(1_ms);
  EXPECT_EQ(env.now(), 2_ms);
}

TEST(SchedulerTest, IdleReflectsPendingWork) {
  Environment env;
  EXPECT_TRUE(env.idle());
  env.schedule(1_us, [] {});
  EXPECT_FALSE(env.idle());
  env.run_until(1_ms);
  EXPECT_TRUE(env.idle());
}

TEST(SchedulerTest, TimedEventNotifiesSensitiveProcess) {
  Environment env;
  Event ev(env, "ev");
  int fired = 0;
  Process& p = env.register_process("p", [&] { fired++; });
  ev.add_sensitive(p);
  ev.notify(100_us);
  env.run_until(1_ms);
  EXPECT_EQ(fired, 1);
}

TEST(SchedulerTest, DeltaNotifyRunsProcessWithoutTimeAdvance) {
  Environment env;
  Event ev(env, "ev");
  SimTime when = SimTime::max();
  Process& p = env.register_process("p", [&] { when = env.now(); });
  ev.add_sensitive(p);
  env.schedule(7_us, [&] { ev.notify_delta(); });
  env.run_until(1_ms);
  EXPECT_EQ(when, 7_us);
}

TEST(SchedulerTest, ProcessNotQueuedTwicePerDelta) {
  Environment env;
  Event a(env, "a"), b(env, "b");
  int runs = 0;
  Process& p = env.register_process("p", [&] { runs++; });
  a.add_sensitive(p);
  b.add_sensitive(p);
  env.schedule(1_us, [&] {
    a.notify_delta();
    b.notify_delta();
  });
  env.run_until(1_ms);
  EXPECT_EQ(runs, 1);
}

TEST(SchedulerTest, ActivationAndDeltaCountersAdvance) {
  Environment env;
  Event ev(env, "ev");
  Process& p = env.register_process("p", [] {});
  ev.add_sensitive(p);
  const auto d0 = env.delta_count();
  const auto a0 = env.process_activations();
  env.schedule(1_us, [&] { ev.notify_delta(); });
  env.run_until(1_ms);
  EXPECT_GT(env.delta_count(), d0);
  EXPECT_EQ(env.process_activations(), a0 + 1);
}

// ---- true-cancellation semantics of the intrusive-heap timed queue ----

TEST(SchedulerTest, IdleTrueWhenOnlyCanceledTimersRemain) {
  Environment env;
  const TimerId id = env.schedule(10_us, [] {});
  EXPECT_FALSE(env.idle());
  env.cancel(id);
  // Regression: the old kernel left a dead queue entry behind, so idle()
  // reported pending work that could never execute.
  EXPECT_TRUE(env.idle());
}

TEST(SchedulerTest, RunUntilSkipsFullyCanceledInstants) {
  Environment env;
  const TimerId id = env.schedule(10_us, [] {});
  env.cancel(id);
  env.run_until(1_ms);
  EXPECT_EQ(env.now(), 1_ms);
  // Regression: the old kernel advanced now_ through the ghost timestamp
  // and dispatched a no-op pop there. Nothing may fire at all now.
  EXPECT_EQ(env.scheduler_stats().fired, 0u);
}

TEST(SchedulerTest, CancelIsNoOpAfterFireEvenWhenSlotIsReused) {
  Environment env;
  bool first = false, second = false;
  const TimerId id1 = env.schedule(1_us, [&] { first = true; });
  env.run_until(2_us);
  EXPECT_TRUE(first);
  // The new timer recycles id1's slab slot; the stale handle must not
  // reach it (slot generations).
  const TimerId id2 = env.schedule(1_us, [&] { second = true; });
  EXPECT_NE(id1, id2);
  env.cancel(id1);
  EXPECT_TRUE(env.pending(id2));
  env.run_until(10_us);
  EXPECT_TRUE(second);
}

TEST(SchedulerTest, CancelSameInstantSiblingFromInsideCallback) {
  Environment env;
  bool sibling_ran = false, later_ran = false;
  TimerId sibling = kInvalidTimer;
  env.schedule(5_us, [&] { env.cancel(sibling); });
  sibling = env.schedule(5_us, [&] { sibling_ran = true; });
  env.schedule(5_us, [&] { later_ran = true; });
  env.run_until(1_ms);
  EXPECT_FALSE(sibling_ran);  // removed mid-instant, before its turn
  EXPECT_TRUE(later_ran);     // FIFO order of the survivors is preserved
  EXPECT_TRUE(env.idle());
}

TEST(SchedulerTest, PendingTracksTimerLifecycle) {
  Environment env;
  EXPECT_FALSE(env.pending(kInvalidTimer));
  const TimerId fires = env.schedule(10_us, [] {});
  const TimerId dies = env.schedule(10_us, [] {});
  EXPECT_TRUE(env.pending(fires));
  EXPECT_TRUE(env.pending(dies));
  env.cancel(dies);
  EXPECT_FALSE(env.pending(dies));
  env.run_until(20_us);
  EXPECT_FALSE(env.pending(fires));
}

TEST(SchedulerTest, CancelOwnedRemovesOnlyThatOwnersTimers) {
  Environment env;
  int mine = 0, other = 0;
  const int owner_a = 0, owner_b = 0;  // distinct addresses as tags
  env.schedule(10_us, [&] { ++mine; }, &owner_a);
  env.schedule(20_us, [&] { ++mine; }, &owner_a);
  const TimerId keep = env.schedule(30_us, [&] { ++other; }, &owner_b);
  env.schedule(40_us, [&] { ++other; });  // untagged
  env.cancel_owned(&owner_a);
  EXPECT_TRUE(env.pending(keep));
  env.run_until(1_ms);
  EXPECT_EQ(mine, 0);
  EXPECT_EQ(other, 2);
  EXPECT_TRUE(env.idle());
}

TEST(SchedulerTest, SchedulerStatsCountLifecycle) {
  Environment env;
  const TimerId canceled = env.schedule(1_us, [] {});
  env.schedule(2_us, [] {});
  env.cancel(canceled);
  env.cancel(canceled);  // stale handle: a counted no-op
  env.run_until(1_ms);
  const Environment::SchedulerStats s = env.scheduler_stats();
  EXPECT_EQ(s.scheduled, 2u);
  EXPECT_EQ(s.fired, 1u);
  EXPECT_EQ(s.canceled, 1u);
  EXPECT_EQ(s.cancels_after_fire, 1u);
  EXPECT_EQ(s.live, 0u);
  EXPECT_EQ(s.peak_live, 2u);
  EXPECT_EQ(s.peak_depth, 2u);  // 4-ary heap: 2 entries span 2 levels
}

TEST(SchedulerTest, ScheduleCancelChurnQueueGrowthBounded) {
  Environment env;
  // 10k schedules in schedule/cancel storms: a kernel that only forgets
  // the callback on cancel grows its queue by one dead entry per cancel
  // and fails the peak assertion below.
  std::uint64_t fired = 0;
  for (int round = 0; round < 2500; ++round) {
    TimerId guards[3];
    for (int g = 0; g < 3; ++g) {
      guards[g] = env.schedule(SimTime::us(50 + g), [] {});
    }
    env.schedule(SimTime::us(10), [&fired] { ++fired; });  // survivor
    for (TimerId id : guards) env.cancel(id);
    env.run(SimTime::us(20));  // survivor fires; guards are gone
  }
  const Environment::SchedulerStats s = env.scheduler_stats();
  EXPECT_EQ(fired, 2500u);
  EXPECT_EQ(s.scheduled, 10000u);
  EXPECT_EQ(s.canceled, 7500u);
  EXPECT_EQ(s.live, 0u);
  EXPECT_LE(s.peak_live, 4u);
  EXPECT_TRUE(env.idle());
}

TEST(SchedulerTest, ManyTimersStressOrdering) {
  Environment env;
  std::vector<std::uint64_t> fired;
  // Schedule in a scrambled deterministic order.
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const std::uint64_t t = (i * 7919) % 1000;
    env.schedule(SimTime::us(t), [&fired, &env] {
      fired.push_back(env.now().as_ns());
    });
  }
  env.run_until(1_sec);
  ASSERT_EQ(fired.size(), 1000u);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LE(fired[i - 1], fired[i]);
  }
}

TEST(SchedulerTest, StressOrderingSurvivesInterleavedCancels) {
  Environment env;
  // Scrambled schedule order with heavy same-time collisions, then every
  // third timer canceled: survivors must still fire in (time, schedule
  // order) -- removal must not disturb the heap's FIFO tiebreak.
  std::vector<std::pair<std::uint64_t, int>> fired;
  std::vector<TimerId> ids;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t t = (static_cast<std::uint64_t>(i) * 7919) % 97;
    ids.push_back(env.schedule(SimTime::us(t), [&fired, &env, i] {
      fired.push_back({env.now().as_ns(), i});
    }));
  }
  for (std::size_t i = 0; i < ids.size(); i += 3) env.cancel(ids[i]);
  env.run_until(1_sec);
  ASSERT_EQ(fired.size(), 666u);
  for (std::size_t k = 1; k < fired.size(); ++k) {
    EXPECT_LE(fired[k - 1].first, fired[k].first);
    if (fired[k - 1].first == fired[k].first) {
      EXPECT_LT(fired[k - 1].second, fired[k].second);
    }
  }
  EXPECT_TRUE(env.idle());
}

}  // namespace
}  // namespace btsc::sim
