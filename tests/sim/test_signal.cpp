// Signal semantics: deferred update, change events, edge events, tracing.
#include "sim/signal.hpp"

#include <gtest/gtest.h>

#include "sim/environment.hpp"
#include "sim/tracer.hpp"

namespace btsc::sim {
namespace {

using namespace btsc::sim::literals;

TEST(SignalTest, InitialValue) {
  Environment env;
  Signal<int> s(env, "s", 42);
  EXPECT_EQ(s.read(), 42);
}

TEST(SignalTest, WriteIsDeferredUntilUpdatePhase) {
  Environment env;
  Signal<int> s(env, "s", 0);
  s.write(5);
  EXPECT_EQ(s.read(), 0);  // not yet committed
  env.settle();
  EXPECT_EQ(s.read(), 5);
}

TEST(SignalTest, LastWriteInDeltaWins) {
  Environment env;
  Signal<int> s(env, "s", 0);
  s.write(1);
  s.write(2);
  s.write(3);
  env.settle();
  EXPECT_EQ(s.read(), 3);
}

TEST(SignalTest, ChangeEventFiresOnRealChangeOnly) {
  Environment env;
  Signal<int> s(env, "s", 7);
  int changes = 0;
  Process& p = env.register_process("watch", [&] { changes++; });
  s.value_changed_event().add_sensitive(p);
  env.schedule(1_us, [&] { s.write(7); });  // same value: no event
  env.schedule(2_us, [&] { s.write(8); });  // change: one event
  env.run_until(1_ms);
  EXPECT_EQ(changes, 1);
}

TEST(SignalTest, ReaderInSameDeltaSeesOldValue) {
  // A process triggered in the same delta as a write must read the
  // pre-write value; after the update phase it sees the new one.
  Environment env;
  Signal<int> s(env, "s", 0);
  Event go(env, "go");
  int observed_during = -1;
  Process& p = env.register_process("reader", [&] {
    observed_during = s.read();
  });
  go.add_sensitive(p);
  env.schedule(1_us, [&] {
    s.write(99);
    go.notify_delta();
  });
  env.run_until(1_ms);
  // The reader ran in the delta *after* the write's evaluate phase, i.e.
  // after commit, so it observes 99; but a same-phase read sees 0:
  EXPECT_EQ(observed_during, 99);
  EXPECT_EQ(s.read(), 99);
}

TEST(SignalTest, ChainOfDependentProcessesSettles) {
  Environment env;
  Signal<int> a(env, "a", 0), b(env, "b", 0), c(env, "c", 0);
  Process& pa = env.register_process("a2b", [&] { b.write(a.read() + 1); });
  Process& pb = env.register_process("b2c", [&] { c.write(b.read() + 1); });
  a.value_changed_event().add_sensitive(pa);
  b.value_changed_event().add_sensitive(pb);
  env.schedule(1_us, [&] { a.write(10); });
  env.run_until(1_ms);
  EXPECT_EQ(b.read(), 11);
  EXPECT_EQ(c.read(), 12);
}

TEST(BoolSignalTest, PosedgeAndNegedgeEvents) {
  Environment env;
  BoolSignal s(env, "s", false);
  int pos = 0, neg = 0;
  Process& pp = env.register_process("pos", [&] { pos++; });
  Process& pn = env.register_process("neg", [&] { neg++; });
  s.posedge_event().add_sensitive(pp);
  s.negedge_event().add_sensitive(pn);
  env.schedule(1_us, [&] { s.write(true); });
  env.schedule(2_us, [&] { s.write(true); });  // no edge
  env.schedule(3_us, [&] { s.write(false); });
  env.run_until(1_ms);
  EXPECT_EQ(pos, 1);
  EXPECT_EQ(neg, 1);
}

TEST(SignalTest, EnumSignalsWork) {
  enum class Color : std::uint8_t { kRed, kGreen, kBlue };
  Environment env;
  Signal<Color> s(env, "color", Color::kRed);
  s.write(Color::kBlue);
  env.settle();
  EXPECT_EQ(s.read(), Color::kBlue);
}

TEST(SignalTraceTest, RecordingTracerSeesCommittedChanges) {
  Environment env;
  RecordingTracer tracer(env);
  env.set_tracer(&tracer);
  Signal<bool> s(env, "top.sig", false);
  env.schedule(5_us, [&] { s.write(true); });
  env.schedule(9_us, [&] { s.write(false); });
  env.run_until(1_ms);
  // First record is the initial value at declaration time.
  ASSERT_EQ(tracer.records().size(), 3u);
  EXPECT_EQ(tracer.records()[1].time_ns, 5000u);
  EXPECT_EQ(tracer.records()[1].value, "1");
  EXPECT_EQ(tracer.records()[2].time_ns, 9000u);
  EXPECT_EQ(tracer.records()[2].value, "0");
}

TEST(SignalTraceTest, IntEncoderProducesBinary) {
  using Enc = TraceEncoder<std::uint8_t>;
  EXPECT_EQ(Enc::width(), 8u);
  EXPECT_EQ(Enc::encode(0xA5), "10100101");
}

TEST(SignalTraceTest, BoolEncoder) {
  using Enc = TraceEncoder<bool>;
  EXPECT_EQ(Enc::width(), 1u);
  EXPECT_EQ(Enc::encode(true), "1");
  EXPECT_EQ(Enc::encode(false), "0");
}

}  // namespace
}  // namespace btsc::sim
