// Property/fuzz corpus for the snapshot codec: a truncated, bit-flipped
// or otherwise mangled image must ALWAYS be rejected with SnapshotError
// -- never crash, never restore wrong state silently. The trailing
// FNV-1a checksum (snapshot_checksum, verified before any field is
// consumed) is what makes the property total: structural validation
// alone cannot see a flipped payload byte. Runs under ASan+UBSan in
// scripts/ci.sh, where "never crash" is actually enforced.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "sim/checkpoint_store.hpp"
#include "sim/rng.hpp"
#include "sim/snapshot.hpp"
#include "sim/time.hpp"

namespace btsc::sim {
namespace {

/// A hand-built stream exercising every writer primitive and nesting.
std::vector<std::uint8_t> crafted_stream() {
  SnapshotWriter w;
  w.begin_section(snapshot_tag("OUTR"));
  w.u8(7);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.b(true);
  w.f64(3.14159);
  w.time(SimTime::us(625));
  w.str("fuzz corpus");
  w.begin_section(snapshot_tag("INNR"));
  BitVector bits;
  for (int i = 0; i < 130; ++i) bits.push_back((i % 3) == 0);
  save_bitvector(w, bits);
  w.end_section();
  w.end_section();
  return w.take();
}

core::SystemConfig fuzz_system_config() {
  core::SystemConfig sc;
  sc.num_slaves = 2;
  sc.ber = 1.0 / 80;
  sc.seed = 424242;
  return sc;
}

/// A real system image: master + 2 slaves under noise, mid-inquiry.
/// A checkpoint is only legal when no completion callback is in flight
/// (Radio::save_state throws); nudge forward until the stream closes.
std::vector<std::uint8_t> system_stream() {
  core::BluetoothSystem sys(fuzz_system_config());
  sys.slave(0).lc().enable_inquiry_scan();
  sys.slave(1).lc().enable_inquiry_scan();
  sys.master().lc().enable_inquiry();
  sys.run(SimTime::ms(100));
  for (int step = 0; step < 64; ++step) {
    try {
      return sys.save_snapshot();
    } catch (const SnapshotError&) {
      sys.run(SimTime::us(25));
    }
  }
  return sys.save_snapshot();
}

/// True when `bytes` is rejected with SnapshotError by both the raw
/// reader and (when a system template is given) a full system restore.
/// Any other outcome -- success, a different exception, a crash -- fails
/// the property.
void expect_rejected(const std::vector<std::uint8_t>& bytes,
                     core::BluetoothSystem* twin) {
  bool threw = false;
  try {
    SnapshotReader r(bytes);
    // If header+checksum somehow validated, structural reads must
    // still throw before the stream is accepted.
    while (!r.at_end()) (void)r.u8();
    // Consuming every byte without error means the reader accepted a
    // mangled image -- only possible if the mutation was a no-op.
  } catch (const SnapshotError&) {
    threw = true;
  }
  EXPECT_TRUE(threw) << "raw reader accepted a mangled image";
  if (twin != nullptr) {
    EXPECT_THROW(twin->restore_snapshot(bytes), SnapshotError)
        << "system restore accepted a mangled image";
  }
}

TEST(SnapshotFuzzTest, IntactStreamsRoundTrip) {
  const auto crafted = crafted_stream();
  SnapshotReader r(crafted);
  r.enter_section(snapshot_tag("OUTR"));
  EXPECT_EQ(r.u8(), 7u);
  EXPECT_EQ(r.u16(), 0x1234u);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_TRUE(r.b());
  EXPECT_EQ(r.f64(), 3.14159);
  EXPECT_EQ(r.time(), SimTime::us(625));
  EXPECT_EQ(r.str(), "fuzz corpus");
  r.enter_section(snapshot_tag("INNR"));
  BitVector bits;
  restore_bitvector(r, bits);
  EXPECT_EQ(bits.size(), 130u);
  r.leave_section();
  r.leave_section();
  EXPECT_TRUE(r.at_end());

  // And the system image restores cleanly into a twin when unmangled.
  const auto snap = system_stream();
  core::BluetoothSystem twin(fuzz_system_config());
  twin.restore_snapshot(snap);
  EXPECT_EQ(twin.save_snapshot(), snap);
}

TEST(SnapshotFuzzTest, EveryTruncationThrows) {
  const auto crafted = crafted_stream();
  for (std::size_t len = 0; len < crafted.size(); ++len) {
    std::vector<std::uint8_t> cut(crafted.begin(),
                                  crafted.begin() +
                                      static_cast<std::ptrdiff_t>(len));
    expect_rejected(cut, nullptr);
  }
}

TEST(SnapshotFuzzTest, SystemImageTruncationsThrow) {
  const auto snap = system_stream();
  core::BluetoothSystem twin(fuzz_system_config());
  // Deterministic sample of cut points (every length would be slow on
  // a multi-KB image under sanitizers): all short prefixes, then a
  // pseudo-random spread across the body.
  Rng rng(1);
  std::vector<std::size_t> cuts;
  for (std::size_t len = 0; len < 24 && len < snap.size(); ++len) {
    cuts.push_back(len);
  }
  for (int i = 0; i < 200; ++i) {
    cuts.push_back(static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::uint64_t>(snap.size() - 1))));
  }
  for (std::size_t len : cuts) {
    std::vector<std::uint8_t> cut(snap.begin(),
                                  snap.begin() +
                                      static_cast<std::ptrdiff_t>(len));
    expect_rejected(cut, &twin);
  }
  // The twin must still be usable after every rejected restore.
  twin.restore_snapshot(snap);
  EXPECT_EQ(twin.save_snapshot(), snap);
}

TEST(SnapshotFuzzTest, EveryBitFlipThrows) {
  const auto crafted = crafted_stream();
  for (std::size_t byte = 0; byte < crafted.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto mangled = crafted;
      mangled[byte] ^= static_cast<std::uint8_t>(1u << bit);
      expect_rejected(mangled, nullptr);
    }
  }
}

TEST(SnapshotFuzzTest, SystemImageBitFlipsThrow) {
  const auto snap = system_stream();
  core::BluetoothSystem twin(fuzz_system_config());
  Rng rng(2);
  for (int i = 0; i < 400; ++i) {
    auto mangled = snap;
    const auto byte = static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::uint64_t>(snap.size() - 1)));
    mangled[byte] ^=
        static_cast<std::uint8_t>(1u << rng.uniform(0, 7));
    expect_rejected(mangled, &twin);
  }
  twin.restore_snapshot(snap);
  EXPECT_EQ(twin.save_snapshot(), snap);
}

// ---- file-backed corpus (sim/checkpoint_store) ------------------------
//
// The durable checkpoint layer wraps a system image in a recipe-carrying
// outer stream and reads it back from disk. The same total-rejection
// property must hold against on-disk damage: truncated files, short
// reads, torn headers, flipped bytes and stale-version recipes all
// surface as SnapshotError, and the in-memory scaffold stays usable.

/// A checkpoint file wrapping the real system image, as the warm-up
/// store writes it.
CheckpointFile fuzz_checkpoint() {
  CheckpointFile f;
  f.scenario = "fuzz";
  f.point_index = 1;
  f.warm_seed = 0xFEEDF00Dull;
  f.construction_seed = 0xBADC0FFEull;
  f.config = {0x10, 0x20, 0x30};
  f.snapshot = system_stream();
  return f;
}

void write_bytes(const std::string& path,
                 const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// True when loading `path` is rejected with SnapshotError and the twin
/// system remains restorable afterwards.
void expect_file_rejected(const std::string& path,
                          core::BluetoothSystem* twin,
                          const std::vector<std::uint8_t>& good_snap) {
  EXPECT_THROW(load_checkpoint_file(path), SnapshotError);
  if (twin != nullptr) {
    twin->restore_snapshot(good_snap);
    EXPECT_EQ(twin->save_snapshot(), good_snap);
  }
}

TEST(SnapshotFuzzTest, FileBackedIntactRoundTrip) {
  const std::string path = testing::TempDir() + "fuzz-intact.ckpt";
  const CheckpointFile f = fuzz_checkpoint();
  write_checkpoint_file(path, f);
  const CheckpointFile loaded = load_checkpoint_file(path);
  EXPECT_EQ(loaded.snapshot, f.snapshot);
  // The embedded image is a real snapshot: it must restore.
  core::BluetoothSystem twin(fuzz_system_config());
  twin.restore_snapshot(loaded.snapshot);
  EXPECT_EQ(twin.save_snapshot(), f.snapshot);
  std::remove(path.c_str());
}

TEST(SnapshotFuzzTest, FileBackedTruncationsThrow) {
  const std::string path = testing::TempDir() + "fuzz-trunc.ckpt";
  const CheckpointFile f = fuzz_checkpoint();
  const std::vector<std::uint8_t> bytes = encode_checkpoint_file(f);
  core::BluetoothSystem twin(fuzz_system_config());
  // All short prefixes (torn header / short read territory), then a
  // deterministic spread of cuts across the body.
  Rng rng(3);
  std::vector<std::size_t> cuts;
  for (std::size_t len = 0; len < 32 && len < bytes.size(); ++len) {
    cuts.push_back(len);
  }
  for (int i = 0; i < 120; ++i) {
    cuts.push_back(static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::uint64_t>(bytes.size() - 1))));
  }
  for (std::size_t len : cuts) {
    write_bytes(path, {bytes.begin(),
                       bytes.begin() + static_cast<std::ptrdiff_t>(len)});
    expect_file_rejected(path, &twin, f.snapshot);
  }
  std::remove(path.c_str());
}

TEST(SnapshotFuzzTest, FileBackedBitFlipsThrow) {
  const std::string path = testing::TempDir() + "fuzz-flip.ckpt";
  const CheckpointFile f = fuzz_checkpoint();
  const std::vector<std::uint8_t> bytes = encode_checkpoint_file(f);
  core::BluetoothSystem twin(fuzz_system_config());
  Rng rng(4);
  for (int i = 0; i < 150; ++i) {
    auto mangled = bytes;
    const auto byte = static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::uint64_t>(bytes.size() - 1)));
    mangled[byte] ^= static_cast<std::uint8_t>(1u << rng.uniform(0, 7));
    write_bytes(path, mangled);
    expect_file_rejected(path, &twin, f.snapshot);
  }
  std::remove(path.c_str());
}

TEST(SnapshotFuzzTest, FileBackedStaleVersionRecipeThrows) {
  const std::string path = testing::TempDir() + "fuzz-stale.ckpt";
  core::BluetoothSystem twin(fuzz_system_config());
  CheckpointFile f = fuzz_checkpoint();
  const std::vector<std::uint8_t> good = f.snapshot;
  for (std::uint32_t version :
       {kSnapshotVersion - 1, kSnapshotVersion + 1, 0u, 0xFFFFFFFFu}) {
    f.snapshot_version = version;
    write_bytes(path, encode_checkpoint_file(f));
    expect_file_rejected(path, &twin, good);
  }
  std::remove(path.c_str());
}

TEST(SnapshotFuzzTest, TrailingGarbageThrows) {
  auto crafted = crafted_stream();
  crafted.push_back(0x5A);
  expect_rejected(crafted, nullptr);
  auto snap = system_stream();
  snap.insert(snap.end(), {1, 2, 3, 4});
  core::BluetoothSystem twin(fuzz_system_config());
  expect_rejected(snap, &twin);
}

}  // namespace
}  // namespace btsc::sim
