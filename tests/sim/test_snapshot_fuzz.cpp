// Property/fuzz corpus for the snapshot codec: a truncated, bit-flipped
// or otherwise mangled image must ALWAYS be rejected with SnapshotError
// -- never crash, never restore wrong state silently. The trailing
// FNV-1a checksum (snapshot_checksum, verified before any field is
// consumed) is what makes the property total: structural validation
// alone cannot see a flipped payload byte. Runs under ASan+UBSan in
// scripts/ci.sh, where "never crash" is actually enforced.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/system.hpp"
#include "sim/rng.hpp"
#include "sim/snapshot.hpp"
#include "sim/time.hpp"

namespace btsc::sim {
namespace {

/// A hand-built stream exercising every writer primitive and nesting.
std::vector<std::uint8_t> crafted_stream() {
  SnapshotWriter w;
  w.begin_section(snapshot_tag("OUTR"));
  w.u8(7);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.b(true);
  w.f64(3.14159);
  w.time(SimTime::us(625));
  w.str("fuzz corpus");
  w.begin_section(snapshot_tag("INNR"));
  BitVector bits;
  for (int i = 0; i < 130; ++i) bits.push_back((i % 3) == 0);
  save_bitvector(w, bits);
  w.end_section();
  w.end_section();
  return w.take();
}

core::SystemConfig fuzz_system_config() {
  core::SystemConfig sc;
  sc.num_slaves = 2;
  sc.ber = 1.0 / 80;
  sc.seed = 424242;
  return sc;
}

/// A real system image: master + 2 slaves under noise, mid-inquiry.
/// A checkpoint is only legal when no completion callback is in flight
/// (Radio::save_state throws); nudge forward until the stream closes.
std::vector<std::uint8_t> system_stream() {
  core::BluetoothSystem sys(fuzz_system_config());
  sys.slave(0).lc().enable_inquiry_scan();
  sys.slave(1).lc().enable_inquiry_scan();
  sys.master().lc().enable_inquiry();
  sys.run(SimTime::ms(100));
  for (int step = 0; step < 64; ++step) {
    try {
      return sys.save_snapshot();
    } catch (const SnapshotError&) {
      sys.run(SimTime::us(25));
    }
  }
  return sys.save_snapshot();
}

/// True when `bytes` is rejected with SnapshotError by both the raw
/// reader and (when a system template is given) a full system restore.
/// Any other outcome -- success, a different exception, a crash -- fails
/// the property.
void expect_rejected(const std::vector<std::uint8_t>& bytes,
                     core::BluetoothSystem* twin) {
  bool threw = false;
  try {
    SnapshotReader r(bytes);
    // If header+checksum somehow validated, structural reads must
    // still throw before the stream is accepted.
    while (!r.at_end()) (void)r.u8();
    // Consuming every byte without error means the reader accepted a
    // mangled image -- only possible if the mutation was a no-op.
  } catch (const SnapshotError&) {
    threw = true;
  }
  EXPECT_TRUE(threw) << "raw reader accepted a mangled image";
  if (twin != nullptr) {
    EXPECT_THROW(twin->restore_snapshot(bytes), SnapshotError)
        << "system restore accepted a mangled image";
  }
}

TEST(SnapshotFuzzTest, IntactStreamsRoundTrip) {
  const auto crafted = crafted_stream();
  SnapshotReader r(crafted);
  r.enter_section(snapshot_tag("OUTR"));
  EXPECT_EQ(r.u8(), 7u);
  EXPECT_EQ(r.u16(), 0x1234u);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_TRUE(r.b());
  EXPECT_EQ(r.f64(), 3.14159);
  EXPECT_EQ(r.time(), SimTime::us(625));
  EXPECT_EQ(r.str(), "fuzz corpus");
  r.enter_section(snapshot_tag("INNR"));
  BitVector bits;
  restore_bitvector(r, bits);
  EXPECT_EQ(bits.size(), 130u);
  r.leave_section();
  r.leave_section();
  EXPECT_TRUE(r.at_end());

  // And the system image restores cleanly into a twin when unmangled.
  const auto snap = system_stream();
  core::BluetoothSystem twin(fuzz_system_config());
  twin.restore_snapshot(snap);
  EXPECT_EQ(twin.save_snapshot(), snap);
}

TEST(SnapshotFuzzTest, EveryTruncationThrows) {
  const auto crafted = crafted_stream();
  for (std::size_t len = 0; len < crafted.size(); ++len) {
    std::vector<std::uint8_t> cut(crafted.begin(),
                                  crafted.begin() +
                                      static_cast<std::ptrdiff_t>(len));
    expect_rejected(cut, nullptr);
  }
}

TEST(SnapshotFuzzTest, SystemImageTruncationsThrow) {
  const auto snap = system_stream();
  core::BluetoothSystem twin(fuzz_system_config());
  // Deterministic sample of cut points (every length would be slow on
  // a multi-KB image under sanitizers): all short prefixes, then a
  // pseudo-random spread across the body.
  Rng rng(1);
  std::vector<std::size_t> cuts;
  for (std::size_t len = 0; len < 24 && len < snap.size(); ++len) {
    cuts.push_back(len);
  }
  for (int i = 0; i < 200; ++i) {
    cuts.push_back(static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::uint64_t>(snap.size() - 1))));
  }
  for (std::size_t len : cuts) {
    std::vector<std::uint8_t> cut(snap.begin(),
                                  snap.begin() +
                                      static_cast<std::ptrdiff_t>(len));
    expect_rejected(cut, &twin);
  }
  // The twin must still be usable after every rejected restore.
  twin.restore_snapshot(snap);
  EXPECT_EQ(twin.save_snapshot(), snap);
}

TEST(SnapshotFuzzTest, EveryBitFlipThrows) {
  const auto crafted = crafted_stream();
  for (std::size_t byte = 0; byte < crafted.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto mangled = crafted;
      mangled[byte] ^= static_cast<std::uint8_t>(1u << bit);
      expect_rejected(mangled, nullptr);
    }
  }
}

TEST(SnapshotFuzzTest, SystemImageBitFlipsThrow) {
  const auto snap = system_stream();
  core::BluetoothSystem twin(fuzz_system_config());
  Rng rng(2);
  for (int i = 0; i < 400; ++i) {
    auto mangled = snap;
    const auto byte = static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::uint64_t>(snap.size() - 1)));
    mangled[byte] ^=
        static_cast<std::uint8_t>(1u << rng.uniform(0, 7));
    expect_rejected(mangled, &twin);
  }
  twin.restore_snapshot(snap);
  EXPECT_EQ(twin.save_snapshot(), snap);
}

TEST(SnapshotFuzzTest, TrailingGarbageThrows) {
  auto crafted = crafted_stream();
  crafted.push_back(0x5A);
  expect_rejected(crafted, nullptr);
  auto snap = system_stream();
  snap.insert(snap.end(), {1, 2, 3, 4});
  core::BluetoothSystem twin(fuzz_system_config());
  expect_rejected(snap, &twin);
}

}  // namespace
}  // namespace btsc::sim
