#include "sim/time.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace btsc::sim {
namespace {

using namespace btsc::sim::literals;

TEST(SimTimeTest, NamedConstructorsConvertUnits) {
  EXPECT_EQ(SimTime::ns(1).as_ns(), 1u);
  EXPECT_EQ(SimTime::us(1).as_ns(), 1000u);
  EXPECT_EQ(SimTime::ms(1).as_ns(), 1'000'000u);
  EXPECT_EQ(SimTime::sec(1).as_ns(), 1'000'000'000u);
}

TEST(SimTimeTest, DefaultIsZero) {
  EXPECT_EQ(SimTime{}.as_ns(), 0u);
  EXPECT_EQ(SimTime{}, SimTime::zero());
}

TEST(SimTimeTest, Ordering) {
  EXPECT_LT(SimTime::ns(1), SimTime::ns(2));
  EXPECT_LE(SimTime::us(1), SimTime::ns(1000));
  EXPECT_GT(SimTime::ms(1), SimTime::us(999));
  EXPECT_EQ(SimTime::sec(2), SimTime::ms(2000));
}

TEST(SimTimeTest, Arithmetic) {
  EXPECT_EQ(SimTime::us(1) + SimTime::us(2), SimTime::us(3));
  EXPECT_EQ(SimTime::ms(1) - SimTime::us(1), SimTime::us(999));
  EXPECT_EQ(SimTime::us(625) * 4, SimTime::us(2500));
  EXPECT_EQ(SimTime::ms(1) / SimTime::us(625), 1u);
  EXPECT_EQ(SimTime::us(2500) / SimTime::us(625), 4u);
  EXPECT_EQ(SimTime::us(1300) % SimTime::us(625), SimTime::us(50));
}

TEST(SimTimeTest, CompoundAssignment) {
  SimTime t = SimTime::us(10);
  t += SimTime::us(5);
  EXPECT_EQ(t, SimTime::us(15));
  t -= SimTime::us(15);
  EXPECT_EQ(t, SimTime::zero());
}

TEST(SimTimeTest, FloatingConversions) {
  EXPECT_DOUBLE_EQ(SimTime::us(625).as_us(), 625.0);
  EXPECT_DOUBLE_EQ(SimTime::us(625).as_ms(), 0.625);
  EXPECT_DOUBLE_EQ(SimTime::ms(480).as_sec(), 0.48);
}

TEST(SimTimeTest, Literals) {
  EXPECT_EQ(625_us, SimTime::us(625));
  EXPECT_EQ(1_sec, SimTime::sec(1));
  EXPECT_EQ(3_ns, SimTime::ns(3));
  EXPECT_EQ(2_ms, SimTime::ms(2));
}

TEST(SimTimeTest, ToStringPicksUnit) {
  EXPECT_EQ(SimTime::sec(2).to_string(), "2 s");
  EXPECT_EQ(SimTime::ms(3).to_string(), "3 ms");
  EXPECT_EQ(SimTime::us(625).to_string(), "625 us");
  EXPECT_EQ(SimTime::ns(7).to_string(), "7 ns");
}

TEST(SimTimeTest, StreamOperator) {
  std::ostringstream os;
  os << SimTime::us(625);
  EXPECT_EQ(os.str(), "625 us");
}

TEST(SimTimeTest, MaxIsSentinel) {
  EXPECT_GT(SimTime::max(), SimTime::sec(1'000'000));
}

}  // namespace
}  // namespace btsc::sim
