// L2CAP segmentation/reassembly over a live link, plus framing edge
// cases (SDUs larger than any baseband packet, multiple channels,
// interleaving with LMP procedures).
#include "l2cap/l2cap.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <optional>

#include "core/system.hpp"

namespace btsc::l2cap {
namespace {

using namespace btsc::sim::literals;

struct L2Bed {
  explicit L2Bed(std::uint64_t seed = 31, double ber = 0.0) {
    core::SystemConfig sc;
    sc.num_slaves = 1;
    sc.seed = seed;
    sc.ber = ber;
    sc.lc.inquiry_timeout_slots = 32768;
    sc.lc.page_timeout_slots = 16384;
    sys = std::make_unique<core::BluetoothSystem>(sc);
    created = sys->create_piconet();
    master_mux = std::make_unique<L2capMux>(sys->master_lm());
    slave_mux = std::make_unique<L2capMux>(sys->slave_lm(0));
  }

  std::unique_ptr<core::BluetoothSystem> sys;
  bool created = false;
  std::unique_ptr<L2capMux> master_mux;
  std::unique_ptr<L2capMux> slave_mux;
};

std::vector<std::uint8_t> pattern(std::size_t n) {
  std::vector<std::uint8_t> v(n);
  std::iota(v.begin(), v.end(), std::uint8_t{1});
  return v;
}

TEST(L2capTest, SmallSduSingleFragment) {
  L2Bed tb;
  ASSERT_TRUE(tb.created);
  std::optional<std::vector<std::uint8_t>> got;
  ChannelId got_cid = 0;
  tb.slave_mux->set_sdu_handler(
      [&](std::uint8_t, ChannelId cid, std::vector<std::uint8_t> sdu) {
        got = std::move(sdu);
        got_cid = cid;
      });
  ASSERT_TRUE(tb.master_mux->send(1, kFirstDynamicCid, pattern(5)));
  tb.sys->run(500_ms);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, pattern(5));
  EXPECT_EQ(got_cid, kFirstDynamicCid);
}

TEST(L2capTest, LargeSduIsSegmentedAndReassembled) {
  L2Bed tb;
  ASSERT_TRUE(tb.created);
  std::optional<std::vector<std::uint8_t>> got;
  tb.slave_mux->set_sdu_handler(
      [&](std::uint8_t, ChannelId, std::vector<std::uint8_t> sdu) {
        got = std::move(sdu);
      });
  // 200 bytes over DM1 fragments (17 bytes each): ~12 fragments.
  const auto sdu = pattern(200);
  ASSERT_TRUE(tb.master_mux->send(1, kFirstDynamicCid, sdu));
  tb.sys->run(2_sec);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, sdu);
  EXPECT_EQ(tb.slave_mux->sdus_delivered(), 1u);
  EXPECT_EQ(tb.slave_mux->reassembly_errors(), 0u);
}

TEST(L2capTest, SlaveToMasterDirection) {
  L2Bed tb;
  ASSERT_TRUE(tb.created);
  std::optional<std::vector<std::uint8_t>> got;
  tb.master_mux->set_sdu_handler(
      [&](std::uint8_t lt, ChannelId, std::vector<std::uint8_t> sdu) {
        EXPECT_EQ(lt, 1);
        got = std::move(sdu);
      });
  const auto sdu = pattern(90);
  ASSERT_TRUE(tb.slave_mux->send(1, kSignallingCid, sdu));
  tb.sys->run(2_sec);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, sdu);
}

TEST(L2capTest, BackToBackSdusStayFramed) {
  L2Bed tb;
  ASSERT_TRUE(tb.created);
  std::vector<std::vector<std::uint8_t>> got;
  tb.slave_mux->set_sdu_handler(
      [&](std::uint8_t, ChannelId, std::vector<std::uint8_t> sdu) {
        got.push_back(std::move(sdu));
      });
  for (std::size_t n : {40u, 1u, 100u, 17u, 64u}) {
    ASSERT_TRUE(tb.master_mux->send(1, kFirstDynamicCid, pattern(n)));
  }
  tb.sys->run(3_sec);
  ASSERT_EQ(got.size(), 5u);
  EXPECT_EQ(got[0].size(), 40u);
  EXPECT_EQ(got[1].size(), 1u);
  EXPECT_EQ(got[2].size(), 100u);
  EXPECT_EQ(got[3].size(), 17u);
  EXPECT_EQ(got[4].size(), 64u);
  for (const auto& s : got) EXPECT_EQ(s, pattern(s.size()));
}

TEST(L2capTest, DistinctChannelsMultiplexed) {
  L2Bed tb;
  ASSERT_TRUE(tb.created);
  std::map<ChannelId, std::vector<std::uint8_t>> got;
  tb.slave_mux->set_sdu_handler(
      [&](std::uint8_t, ChannelId cid, std::vector<std::uint8_t> sdu) {
        got[cid] = std::move(sdu);
      });
  tb.master_mux->send(1, 0x0040, pattern(10));
  tb.sys->run(500_ms);
  tb.master_mux->send(1, 0x0041, pattern(20));
  tb.sys->run(500_ms);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0x0040].size(), 10u);
  EXPECT_EQ(got[0x0041].size(), 20u);
}

TEST(L2capTest, SurvivesModerateNoiseViaArq) {
  L2Bed tb(77, 1.0 / 300.0);
  ASSERT_TRUE(tb.created);
  std::optional<std::vector<std::uint8_t>> got;
  tb.slave_mux->set_sdu_handler(
      [&](std::uint8_t, ChannelId, std::vector<std::uint8_t> sdu) {
        got = std::move(sdu);
      });
  const auto sdu = pattern(150);
  ASSERT_TRUE(tb.master_mux->send(1, kFirstDynamicCid, sdu));
  tb.sys->run(5_sec);
  ASSERT_TRUE(got.has_value()) << "ARQ must deliver all fragments";
  EXPECT_EQ(*got, sdu);
  EXPECT_EQ(tb.slave_mux->reassembly_errors(), 0u);
}

TEST(L2capTest, CoexistsWithLmpProcedures) {
  // LMP (sniff negotiation) and L2CAP data share the link; the control
  // lane must not corrupt reassembly.
  L2Bed tb;
  ASSERT_TRUE(tb.created);
  std::optional<std::vector<std::uint8_t>> got;
  tb.slave_mux->set_sdu_handler(
      [&](std::uint8_t, ChannelId, std::vector<std::uint8_t> sdu) {
        got = std::move(sdu);
      });
  tb.master_mux->send(1, kFirstDynamicCid, pattern(120));
  tb.sys->master_lm().request_sniff(1, 50, 0, 1);
  tb.sys->run(3_sec);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, pattern(120));
  EXPECT_EQ(tb.sys->slave(0).lc().slave_mode(), baseband::LinkMode::kSniff);
}

TEST(L2capTest, RejectsOversizeSdu) {
  L2Bed tb;
  ASSERT_TRUE(tb.created);
  EXPECT_FALSE(
      tb.master_mux->send(1, kFirstDynamicCid,
                          std::vector<std::uint8_t>(0x10000)));
}

TEST(L2capTest, QueueFullReportsFailure) {
  L2Bed tb;
  ASSERT_TRUE(tb.created);
  // Flood without running the simulation: the 64-message baseband queue
  // fills and send() must eventually report failure.
  bool saw_failure = false;
  for (int i = 0; i < 200 && !saw_failure; ++i) {
    saw_failure = !tb.master_mux->send(1, kFirstDynamicCid, pattern(17));
  }
  EXPECT_TRUE(saw_failure);
}

TEST(L2capTest, FragmentCapacityTracksPacketType) {
  L2Bed tb;
  ASSERT_TRUE(tb.created);
  EXPECT_EQ(tb.master_mux->fragment_capacity(), 17u);  // DM1 default
  tb.sys->master().lc().config().data_packet_type =
      baseband::PacketType::kDh5;
  EXPECT_EQ(tb.master_mux->fragment_capacity(), 339u);
}

}  // namespace
}  // namespace btsc::l2cap
