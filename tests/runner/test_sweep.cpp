// SweepRunner: sharding, deterministic seed derivation, in-order merge,
// and error propagation.
#include "runner/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "sim/rng.hpp"

namespace btsc::runner {
namespace {

/// Sample recording which (point, replication, seed) triples were folded,
/// in fold order.
struct TraceSample {
  std::vector<std::uint64_t> seeds;
  std::vector<std::size_t> reps;
  double sum = 0.0;

  void merge(const TraceSample& o) {
    seeds.insert(seeds.end(), o.seeds.begin(), o.seeds.end());
    reps.insert(reps.end(), o.reps.begin(), o.reps.end());
    sum += o.sum;
  }
};

TEST(SeedDerivationTest, PureFunctionOfInputs) {
  const auto a = sim::Rng::derive_stream_seed(42, 3, 7);
  const auto b = sim::Rng::derive_stream_seed(42, 3, 7);
  EXPECT_EQ(a, b);
}

TEST(SeedDerivationTest, DistinctAcrossPointsRepsAndBases) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t base : {1ull, 2ull, 1000ull}) {
    for (std::uint64_t p = 0; p < 16; ++p) {
      for (std::uint64_t r = 0; r < 16; ++r) {
        seen.insert(sim::Rng::derive_stream_seed(base, p, r));
      }
    }
  }
  EXPECT_EQ(seen.size(), 3u * 16u * 16u);  // no collisions
}

TEST(SeedDerivationTest, NotSensitiveToArgumentSwapConfusion) {
  // (stream, index) must not commute, or point 3 / rep 5 would collide
  // with point 5 / rep 3.
  EXPECT_NE(sim::Rng::derive_stream_seed(1, 3, 5),
            sim::Rng::derive_stream_seed(1, 5, 3));
}

TEST(SweepRunnerTest, VisitsEveryPointAndReplicationOnce) {
  SweepOptions opt;
  opt.threads = 4;
  opt.replications = 5;
  opt.base_seed = 99;
  std::atomic<int> calls{0};
  const std::vector<int> points = {10, 20, 30};
  const auto merged = SweepRunner<int, TraceSample>(opt).run(
      points, [&](const int& p, const Replication& rep) {
        ++calls;
        TraceSample s;
        s.seeds.push_back(rep.seed);
        s.reps.push_back(rep.replication_index);
        s.sum = static_cast<double>(p);
        return s;
      });
  EXPECT_EQ(calls.load(), 15);
  ASSERT_EQ(merged.size(), 3u);
  for (std::size_t p = 0; p < merged.size(); ++p) {
    ASSERT_EQ(merged[p].reps.size(), 5u);
    // Folded strictly in replication order, whatever thread ran what.
    for (std::size_t r = 0; r < 5; ++r) {
      EXPECT_EQ(merged[p].reps[r], r);
      EXPECT_EQ(merged[p].seeds[r],
                sim::Rng::derive_stream_seed(99, p, r));
    }
    EXPECT_DOUBLE_EQ(merged[p].sum, 5.0 * points[p]);
  }
}

TEST(SweepRunnerTest, ResultIndependentOfThreadCount) {
  const std::vector<int> points = {1, 2, 3, 4, 5, 6, 7};
  auto body = [](const int& p, const Replication& rep) {
    // Deterministic pseudo-simulation: value depends only on (p, seed).
    sim::Rng rng(rep.seed);
    TraceSample s;
    s.seeds.push_back(rep.seed);
    s.reps.push_back(rep.replication_index);
    s.sum = static_cast<double>(p) * rng.uniform01();
    return s;
  };
  std::vector<std::vector<TraceSample>> results;
  for (int threads : {1, 2, 8}) {
    SweepOptions opt;
    opt.threads = threads;
    opt.replications = 4;
    opt.base_seed = 7;
    results.push_back(SweepRunner<int, TraceSample>(opt).run(points, body));
  }
  for (std::size_t v = 1; v < results.size(); ++v) {
    ASSERT_EQ(results[v].size(), results[0].size());
    for (std::size_t p = 0; p < results[0].size(); ++p) {
      EXPECT_EQ(results[v][p].seeds, results[0][p].seeds);
      EXPECT_EQ(results[v][p].reps, results[0][p].reps);
      // Bitwise: identical fold order must give the identical double.
      EXPECT_EQ(results[v][p].sum, results[0][p].sum);
    }
  }
}

TEST(SweepRunnerTest, CommonRandomNumbersPairSeedsAcrossPoints) {
  SweepOptions opt;
  opt.threads = 2;
  opt.replications = 3;
  opt.base_seed = 55;
  opt.common_random_numbers = true;
  const auto merged = SweepRunner<int, TraceSample>(opt).run(
      {1, 2, 3}, [](const int&, const Replication& rep) {
        TraceSample s;
        s.seeds.push_back(rep.seed);
        s.reps.push_back(rep.replication_index);
        return s;
      });
  ASSERT_EQ(merged.size(), 3u);
  // Every point sees the identical replication seed sequence (the
  // common-random-numbers pairing), which still varies across reps.
  EXPECT_EQ(merged[1].seeds, merged[0].seeds);
  EXPECT_EQ(merged[2].seeds, merged[0].seeds);
  EXPECT_NE(merged[0].seeds[0], merged[0].seeds[1]);
}

TEST(SweepRunnerTest, EmptyPointListYieldsEmptyResult) {
  SweepOptions opt;
  opt.threads = 4;
  const auto merged = SweepRunner<int, TraceSample>(opt).run(
      {}, [](const int&, const Replication&) { return TraceSample{}; });
  EXPECT_TRUE(merged.empty());
}

TEST(SweepRunnerTest, RejectsZeroReplications) {
  SweepOptions opt;
  opt.replications = 0;
  EXPECT_THROW((SweepRunner<int, TraceSample>(opt)), std::invalid_argument);
}

TEST(SweepRunnerTest, PropagatesBodyExceptions) {
  for (int threads : {1, 3}) {
    SweepOptions opt;
    opt.threads = threads;
    opt.replications = 2;
    SweepRunner<int, TraceSample> runner(opt);
    EXPECT_THROW(
        runner.run({1, 2, 3},
                   [](const int& p, const Replication&) -> TraceSample {
                     if (p == 2) throw std::runtime_error("boom");
                     return {};
                   }),
        std::runtime_error);
  }
}

TEST(SweepRunnerTest, NonMergeableSampleWorksWithSingleReplication) {
  SweepOptions opt;
  opt.threads = 2;
  const auto merged = SweepRunner<int, double>(opt).run(
      {2, 4, 6},
      [](const int& p, const Replication&) { return p * 0.5; });
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_DOUBLE_EQ(merged[0], 1.0);
  EXPECT_DOUBLE_EQ(merged[2], 3.0);
}

TEST(SweepRunnerTest, NonMergeableSampleRejectsMultipleReplications) {
  SweepOptions opt;
  opt.replications = 2;
  SweepRunner<int, double> runner(opt);
  EXPECT_THROW(
      runner.run({1}, [](const int&, const Replication&) { return 0.0; }),
      std::logic_error);
}

TEST(ResolveThreadCountTest, PositivePassesThroughZeroMeansHardware) {
  EXPECT_EQ(resolve_thread_count(3), 3);
  EXPECT_GE(resolve_thread_count(0), 1);
  EXPECT_THROW(resolve_thread_count(-8), std::invalid_argument);
}

}  // namespace
}  // namespace btsc::runner
