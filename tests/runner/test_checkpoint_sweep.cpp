// The checkpoint-warmup sweep contract: a forked sweep (every
// replication restored from its point's warm-up snapshot) must be
// bitwise identical to the cold staged sweep (warm-up re-run per
// replication), row for row and byte for byte in the JSON artifact --
// and must stay thread-count invariant like every other sweep. The
// legacy single-stage mode must remain the default.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "runner/scenarios.hpp"

namespace btsc::runner {
namespace {

ScenarioRequest staged_request(WarmupMode mode, int threads = 1) {
  ScenarioRequest req;
  req.threads = threads;
  req.quick = true;
  req.replications = 3;
  req.max_points = 2;
  req.warmup = mode;
  return req;
}

/// JSON artifact with the kernel_* telemetry removed: forking changes
/// how many timers the process schedules (snapshot scaffolds replace
/// re-run warm-ups), so the timed-queue counters legitimately differ --
/// the byte-identity contract covers the results and the result-defining
/// metadata, exactly what the ci.sh gate compares.
std::string to_json_sans_kernel_meta(const SweepResult& result) {
  std::ostringstream os;
  core::JsonReporter reporter(os);
  write_result(result, reporter);
  std::string s = os.str();
  std::size_t pos;
  while ((pos = s.find("\"kernel_")) != std::string::npos) {
    const std::size_t start = s.rfind(", ", pos);         // preceding comma
    const std::size_t colon = s.find(": \"", pos);        // value opener
    const std::size_t end = s.find('"', colon + 3);       // value closer
    s.erase(start, end + 1 - start);
  }
  return s;
}

void expect_rows_bitwise_equal(const SweepResult& a, const SweepResult& b) {
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (std::size_t r = 0; r < a.rows.size(); ++r) {
    ASSERT_EQ(a.rows[r].size(), b.rows[r].size());
    for (std::size_t c = 0; c < a.rows[r].size(); ++c) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(a.rows[r][c]),
                std::bit_cast<std::uint64_t>(b.rows[r][c]))
          << "row " << r << " col " << c;
    }
  }
}

TEST(CheckpointSweep, LegacyModeIsTheDefault) {
  const ScenarioRequest req;
  EXPECT_EQ(req.warmup, WarmupMode::kLegacy);
  // And a default run reports itself as legacy (the result-defining
  // staging flag in the artifact metadata).
  ScenarioRequest quick;
  quick.quick = true;
  quick.replications = 1;
  quick.max_points = 1;
  EXPECT_FALSE(run_scenario("fig08", quick).staged_warmup);
}

TEST(CheckpointSweep, Fig08ForkMatchesColdByteForByte) {
  const SweepResult cold =
      run_scenario("fig08", staged_request(WarmupMode::kCold));
  const SweepResult fork =
      run_scenario("fig08", staged_request(WarmupMode::kFork));
  ASSERT_EQ(cold.rows.size(), 2u);
  expect_rows_bitwise_equal(cold, fork);
  EXPECT_EQ(to_json_sans_kernel_meta(cold), to_json_sans_kernel_meta(fork));
}

TEST(CheckpointSweep, Fig10ForkMatchesCold) {
  const SweepResult cold =
      run_scenario("fig10", staged_request(WarmupMode::kCold));
  const SweepResult fork =
      run_scenario("fig10", staged_request(WarmupMode::kFork));
  expect_rows_bitwise_equal(cold, fork);
  EXPECT_EQ(to_json_sans_kernel_meta(cold), to_json_sans_kernel_meta(fork));
}

TEST(CheckpointSweep, CoexistenceForkMatchesCold) {
  ScenarioRequest req = staged_request(WarmupMode::kCold);
  req.replications = 2;
  const SweepResult cold = run_scenario("coexistence", req);
  req.warmup = WarmupMode::kFork;
  const SweepResult fork = run_scenario("coexistence", req);
  expect_rows_bitwise_equal(cold, fork);
  EXPECT_EQ(to_json_sans_kernel_meta(cold), to_json_sans_kernel_meta(fork));
}

TEST(CheckpointSweep, ForkedSweepThreadCountInvariant) {
  const SweepResult serial =
      run_scenario("fig08", staged_request(WarmupMode::kFork, 1));
  for (int threads : {2, 8}) {
    const SweepResult pooled =
        run_scenario("fig08", staged_request(WarmupMode::kFork, threads));
    expect_rows_bitwise_equal(serial, pooled);
    EXPECT_EQ(to_json_sans_kernel_meta(serial), to_json_sans_kernel_meta(pooled));
  }
}

TEST(CheckpointSweep, StagedStreamsDifferFromLegacy) {
  // The staged split changes which stream drives construction, so staged
  // samples are NOT expected to reproduce legacy ones -- the metadata
  // must make the difference visible.
  const SweepResult legacy =
      run_scenario("fig08", staged_request(WarmupMode::kLegacy));
  const SweepResult cold =
      run_scenario("fig08", staged_request(WarmupMode::kCold));
  EXPECT_FALSE(legacy.staged_warmup);
  EXPECT_TRUE(cold.staged_warmup);
  EXPECT_NE(to_json_sans_kernel_meta(legacy), to_json_sans_kernel_meta(cold));
}

}  // namespace
}  // namespace btsc::runner
