// End-to-end determinism of the sweep engine: a reduced Fig. 8 sweep
// must produce bitwise-identical rows — and byte-identical JSON — at 1,
// 2 and 8 worker threads. This is the contract that makes parallel
// reproduction of the paper's figures trustworthy, and it is the test
// scripts/ci.sh runs under ASan+UBSan as a threaded data-race smoke.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <sstream>
#include <vector>

#include "core/report.hpp"
#include "runner/scenarios.hpp"

namespace btsc::runner {
namespace {

ScenarioRequest reduced_fig08_request(int threads) {
  ScenarioRequest req;
  req.threads = threads;
  req.quick = true;
  req.replications = 4;
  req.max_points = 3;
  return req;
}

std::string to_json(const SweepResult& result) {
  std::ostringstream os;
  core::JsonReporter reporter(os);
  write_result(result, reporter);
  return os.str();
}

TEST(SweepDeterminismTest, Fig08RowsBitwiseIdenticalAcrossThreadCounts) {
  const SweepResult base = run_scenario("fig08", reduced_fig08_request(1));
  ASSERT_EQ(base.rows.size(), 3u);
  for (int threads : {2, 8}) {
    const SweepResult other =
        run_scenario("fig08", reduced_fig08_request(threads));
    ASSERT_EQ(other.rows.size(), base.rows.size());
    for (std::size_t r = 0; r < base.rows.size(); ++r) {
      ASSERT_EQ(other.rows[r].size(), base.rows[r].size());
      for (std::size_t c = 0; c < base.rows[r].size(); ++c) {
        // Compare bit patterns, not values: even a last-ulp difference
        // between thread counts would break reproducibility.
        EXPECT_EQ(std::bit_cast<std::uint64_t>(other.rows[r][c]),
                  std::bit_cast<std::uint64_t>(base.rows[r][c]))
            << "row " << r << " col " << c << " at " << threads
            << " threads";
      }
    }
  }
}

TEST(SweepDeterminismTest, Fig08JsonByteIdenticalAcrossThreadCounts) {
  const std::string json1 = to_json(run_scenario("fig08", reduced_fig08_request(1)));
  const std::string json8 = to_json(run_scenario("fig08", reduced_fig08_request(8)));
  EXPECT_EQ(json1, json8);
  // Sanity: the reduced sweep actually produced data.
  EXPECT_NE(json1.find("\"rows\""), std::string::npos);
  EXPECT_NE(json1.find("\"base_seed\": \"1000\""), std::string::npos);
}

TEST(SweepDeterminismTest, RepeatedRunsAreIdentical) {
  // Same request twice on the same thread count: the engine must be free
  // of any hidden global state (static RNGs, caches...).
  const std::string a = to_json(run_scenario("fig08", reduced_fig08_request(2)));
  const std::string b = to_json(run_scenario("fig08", reduced_fig08_request(2)));
  EXPECT_EQ(a, b);
}

TEST(SweepDeterminismTest, BaseSeedChangesResults) {
  // Different seed universes must give different samples. Fig. 6's
  // noiseless mean inquiry time is a continuous statistic over the
  // 0..1023-slot random backoff, so a collision between two 4-seed means
  // is practically impossible.
  ScenarioRequest req;
  req.threads = 2;
  req.quick = true;
  req.replications = 4;
  req.max_points = 1;  // BER 0 only
  const SweepResult base = run_scenario("fig06", req);
  req.base_seed = 424242;
  const SweepResult reseeded = run_scenario("fig06", req);
  ASSERT_EQ(base.rows.size(), 1u);
  ASSERT_EQ(reseeded.rows.size(), 1u);
  EXPECT_NE(base.rows[0][1], reseeded.rows[0][1]);  // mean_TS column
}

}  // namespace
}  // namespace btsc::runner
