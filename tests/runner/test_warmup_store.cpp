// WarmupStore: durable warm-up cache hit/miss/spill accounting and the
// degradation contract — per-file problems miss (warn per file), a
// store-level spill failure disables further spills after ONE warning
// while loads keep serving hits (a read-only directory is still a
// cache).
#include "runner/warmup_store.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "io/fault.hpp"
#include "sim/checkpoint_store.hpp"
#include "sim/snapshot.hpp"

namespace btsc::runner {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  // Unique per process: ctest runs each TEST() as its own process, in
  // parallel, and they must not clobber each other's directories.
  TempDir()
      : path(testing::TempDir() + "warmup-store-test-" +
             std::to_string(::getpid())) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string path;
};

SystemImage sample_image(std::uint64_t construction_seed) {
  // A realistic image: a complete, checksummed snapshot stream (anything
  // else would be rejected on load as corruption, which is its own
  // test).
  sim::SnapshotWriter w;
  w.begin_section(sim::snapshot_tag("ENV "));
  w.u64(construction_seed);
  w.end_section();
  return SystemImage{w.take(), construction_seed};
}

const std::vector<std::uint8_t> kConfig = {0x10, 0x20, 0x30};

TEST(WarmupStoreTest, SaveThenLoadRoundTripCountsSpillAndHit) {
  TempDir dir;
  reset_warmup_store_stats();
  WarmupStore store(dir.path, "fig08");
  store.save(2, 0xABCD, kConfig, sample_image(777));
  const auto img = store.try_load(2, 0xABCD, kConfig);
  ASSERT_TRUE(img.has_value());
  EXPECT_EQ(img->construction_seed, 777u);
  EXPECT_EQ(img->bytes, sample_image(777).bytes);
  const auto s = warmup_store_stats();
  EXPECT_EQ(s.spills, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 0u);
  EXPECT_EQ(s.spill_failures, 0u);
}

TEST(WarmupStoreTest, MissingFileIsAMiss) {
  TempDir dir;
  reset_warmup_store_stats();
  WarmupStore store(dir.path, "fig08");
  EXPECT_FALSE(store.try_load(0, 0x1, kConfig).has_value());
  EXPECT_EQ(warmup_store_stats().misses, 1u);
}

TEST(WarmupStoreTest, RecipeMismatchIsAMissNotAWrongRestore) {
  TempDir dir;
  reset_warmup_store_stats();
  WarmupStore store(dir.path, "fig08");
  store.save(0, 0x1, kConfig, sample_image(1));
  // Same point and seed, different construction parameters: the cached
  // image belongs to another sweep definition and must not restore.
  const std::vector<std::uint8_t> other_config = {0x99};
  EXPECT_FALSE(store.try_load(0, 0x1, other_config).has_value());
  EXPECT_EQ(warmup_store_stats().misses, 1u);
  // The original recipe still hits — the mismatch did not evict it.
  EXPECT_TRUE(store.try_load(0, 0x1, kConfig).has_value());
}

TEST(WarmupStoreTest, CorruptFileIsAMiss) {
  TempDir dir;
  reset_warmup_store_stats();
  WarmupStore store(dir.path, "fig08");
  store.save(0, 0x1, kConfig, sample_image(1));
  // Flip a byte in the stored checkpoint: the checksum must reject it
  // and the store must degrade to a miss, not a wrong restore.
  std::string victim;
  for (const auto& e : fs::directory_iterator(dir.path)) {
    victim = e.path().string();
  }
  ASSERT_FALSE(victim.empty());
  {
    std::fstream f(victim, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(24);
    char b = 0;
    f.read(&b, 1);
    f.seekp(24);
    b = static_cast<char>(b ^ 0xFF);
    f.write(&b, 1);
  }
  EXPECT_FALSE(store.try_load(0, 0x1, kConfig).has_value());
  EXPECT_EQ(warmup_store_stats().misses, 1u);
}

TEST(WarmupStoreTest, SpillFailureDisablesStoreAfterOneFailure) {
  TempDir dir;
  reset_warmup_store_stats();
  WarmupStore store(dir.path, "fig08");
  // A disk that is full from now on (sticky ENOSPC on checkpoint
  // writes): the first save fails and disables the store; later saves
  // return without even attempting I/O — one warning for the whole run,
  // not one per point.
  io::ScopedFaultPlan sp(
      {{io::FaultOp::kCheckpointWrite, 0, io::FaultKind::kEnospc, true}});
  EXPECT_FALSE(store.disabled());
  store.save(0, 0x1, kConfig, sample_image(1));
  EXPECT_TRUE(store.disabled());
  store.save(1, 0x2, kConfig, sample_image(2));
  store.save(2, 0x3, kConfig, sample_image(3));
  const auto s = warmup_store_stats();
  EXPECT_EQ(s.spills, 0u);
  EXPECT_EQ(s.spill_failures, 1u);  // the short-circuited saves don't count
  // Nothing was spilled, and — critically — nothing corrupt was left
  // behind to shadow a future valid spill.
  std::size_t files = 0;
  for ([[maybe_unused]] const auto& e : fs::directory_iterator(dir.path)) {
    ++files;
  }
  EXPECT_EQ(files, 0u);
}

TEST(WarmupStoreTest, LoadsStillServeHitsAfterSpillDisable) {
  TempDir dir;
  reset_warmup_store_stats();
  WarmupStore store(dir.path, "fig08");
  store.save(0, 0x1, kConfig, sample_image(41));
  {
    // The directory "fills up": spills die, but the read side of a
    // full (or read-only) cache still works, so warm-ups already paid
    // for keep being served.
    io::ScopedFaultPlan sp(
        {{io::FaultOp::kCheckpointWrite, 0, io::FaultKind::kEnospc, true}});
    store.save(1, 0x2, kConfig, sample_image(42));
    EXPECT_TRUE(store.disabled());
    const auto img = store.try_load(0, 0x1, kConfig);
    ASSERT_TRUE(img.has_value());
    EXPECT_EQ(img->construction_seed, 41u);
  }
  const auto s = warmup_store_stats();
  EXPECT_EQ(s.spills, 1u);
  EXPECT_EQ(s.spill_failures, 1u);
  EXPECT_EQ(s.hits, 1u);
}

TEST(WarmupStoreTest, FailedSpillNeverShadowsAValidCheckpoint) {
  TempDir dir;
  reset_warmup_store_stats();
  WarmupStore store(dir.path, "fig08");
  store.save(0, 0x1, kConfig, sample_image(100));
  {
    // Overwrite attempt dies mid-write: the previous valid checkpoint
    // must survive untouched (atomic temp+rename protocol).
    io::ScopedFaultPlan sp(
        {{io::FaultOp::kCheckpointWrite, 0, io::FaultKind::kEnospc, true}});
    store.save(0, 0x1, kConfig, sample_image(200));
  }
  const auto img = store.try_load(0, 0x1, kConfig);
  ASSERT_TRUE(img.has_value());
  EXPECT_EQ(img->construction_seed, 100u);
}

}  // namespace
}  // namespace btsc::runner
