// SweepJournal: fresh/resume open semantics, durable record round trip,
// configuration binding, and torn-tail recovery.
#include "runner/journal.hpp"

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace btsc::runner {
namespace {

std::string temp_path(const std::string& name) {
  const std::string path = testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

JournalConfig sample_config() {
  JournalConfig c;
  c.scenario = "fig08";
  c.base_seed = 1000;
  c.replications = 6;
  c.points = 8;
  c.quick = true;
  c.max_points = 0;
  c.common_random_numbers = false;
  c.staged_warmup = false;
  return c;
}

std::vector<std::uint8_t> sample_bytes(std::uint8_t tag) {
  return {tag, 0x01, 0x02, 0x03};
}

off_t file_size(const std::string& path) {
  struct stat st{};
  EXPECT_EQ(::stat(path.c_str(), &st), 0);
  return st.st_size;
}

TEST(JournalTest, AppendAndResumeRoundTrip) {
  const std::string path = temp_path("roundtrip.journal");
  {
    SweepJournal j(path, sample_config(), /*resume=*/false);
    EXPECT_EQ(j.completed_count(), 0u);
    j.append(2, 5, 0xABCDull, sample_bytes(0x11));
    j.append(0, 0, 0x1234ull, sample_bytes(0x22));
  }
  SweepJournal j(path, sample_config(), /*resume=*/true);
  EXPECT_EQ(j.completed_count(), 2u);
  ASSERT_NE(j.completed(2, 5), nullptr);
  EXPECT_EQ(j.completed(2, 5)->seed, 0xABCDull);
  EXPECT_EQ(j.completed(2, 5)->sample, sample_bytes(0x11));
  ASSERT_NE(j.completed(0, 0), nullptr);
  EXPECT_EQ(j.completed(0, 0)->seed, 0x1234ull);
  EXPECT_EQ(j.completed(1, 1), nullptr);
  std::remove(path.c_str());
}

TEST(JournalTest, FreshOpenRefusesExistingFile) {
  const std::string path = temp_path("exists.journal");
  { SweepJournal j(path, sample_config(), false); }
  EXPECT_THROW(SweepJournal(path, sample_config(), false), JournalError);
  std::remove(path.c_str());
}

TEST(JournalTest, ResumeOfMissingFileStartsFresh) {
  const std::string path = temp_path("fresh-resume.journal");
  SweepJournal j(path, sample_config(), /*resume=*/true);
  EXPECT_EQ(j.completed_count(), 0u);
  std::remove(path.c_str());
}

TEST(JournalTest, ConfigurationMismatchThrows) {
  const std::string path = temp_path("config.journal");
  { SweepJournal j(path, sample_config(), false); }
  for (int field = 0; field < 8; ++field) {
    JournalConfig c = sample_config();
    switch (field) {
      case 0: c.scenario = "fig10"; break;
      case 1: c.base_seed = 1001; break;
      case 2: c.replications = 7; break;
      case 3: c.points = 9; break;
      case 4: c.quick = false; break;
      case 5: c.max_points = 4; break;
      case 6: c.common_random_numbers = true; break;
      case 7: c.staged_warmup = true; break;
    }
    EXPECT_THROW(SweepJournal(path, c, true), JournalError)
        << "field " << field;
  }
  std::remove(path.c_str());
}

TEST(JournalTest, TornTailIsTruncatedAndResumable) {
  const std::string path = temp_path("torn.journal");
  {
    SweepJournal j(path, sample_config(), false);
    j.append(0, 0, 1, sample_bytes(0x01));
    j.append(0, 1, 2, sample_bytes(0x02));
    j.append(0, 2, 3, sample_bytes(0x03));
  }
  const off_t full = file_size(path);

  // Tear the file at every byte boundary inside the final record: the
  // first two records must survive, the torn third must vanish, and the
  // journal must accept appends again afterwards.
  std::vector<char> bytes(static_cast<std::size_t>(full));
  {
    std::ifstream in(path, std::ios::binary);
    in.read(bytes.data(), full);
  }
  off_t two_records = -1;
  for (off_t cut = full - 1; cut > 0; --cut) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), cut);
    out.close();
    SweepJournal j(path, sample_config(), true);
    if (j.completed_count() == 3) break;  // cut landed past record 3
    if (j.completed_count() < 2) {
      two_records = cut;  // reached tears into record 2; stop scanning
      break;
    }
    EXPECT_EQ(j.completed_count(), 2u) << "cut at " << cut;
    EXPECT_NE(j.completed(0, 0), nullptr);
    EXPECT_NE(j.completed(0, 1), nullptr);
    EXPECT_EQ(j.completed(0, 2), nullptr);
  }
  EXPECT_GT(two_records, 0);  // the scan did reach record 2's territory

  // After a torn-tail truncation, appending and re-resuming works.
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), full - 2);
  out.close();
  {
    SweepJournal j(path, sample_config(), true);
    EXPECT_EQ(j.completed_count(), 2u);
    j.append(0, 2, 3, sample_bytes(0x33));
  }
  SweepJournal j(path, sample_config(), true);
  EXPECT_EQ(j.completed_count(), 3u);
  ASSERT_NE(j.completed(0, 2), nullptr);
  EXPECT_EQ(j.completed(0, 2)->sample, sample_bytes(0x33));
  std::remove(path.c_str());
}

TEST(JournalTest, CorruptedRecordTruncatesFromThere) {
  const std::string path = temp_path("corrupt.journal");
  {
    SweepJournal j(path, sample_config(), false);
    j.append(0, 0, 1, sample_bytes(0x01));
  }
  const off_t with_one = file_size(path);
  {
    SweepJournal j(path, sample_config(), true);
    j.append(0, 1, 2, sample_bytes(0x02));
  }
  // Flip a byte inside record 2's payload (past the length prefix).
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(with_one + 8);
    char c;
    f.seekg(with_one + 8);
    f.get(c);
    f.seekp(with_one + 8);
    f.put(static_cast<char>(c ^ 0x40));
  }
  SweepJournal j(path, sample_config(), true);
  EXPECT_EQ(j.completed_count(), 1u);
  EXPECT_NE(j.completed(0, 0), nullptr);
  EXPECT_EQ(j.completed(0, 1), nullptr);
  EXPECT_EQ(file_size(path), with_one);  // corrupt tail severed
  std::remove(path.c_str());
}

TEST(JournalTest, TornHeaderThrows) {
  const std::string path = temp_path("torn-header.journal");
  { SweepJournal j(path, sample_config(), false); }
  const off_t full = file_size(path);
  std::vector<char> bytes(static_cast<std::size_t>(full));
  {
    std::ifstream in(path, std::ios::binary);
    in.read(bytes.data(), full);
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), full / 2);
  out.close();
  EXPECT_THROW(SweepJournal(path, sample_config(), true), JournalError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace btsc::runner
