// Supervised sweep execution: quarantine of throwing and hanging
// replications with full (point, replication, seed) context, bounded
// retry, journal/resume through SweepRunner, and the equivalence of a
// clean supervised run with the plain path.
#include "runner/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace btsc::runner {
namespace {

struct TestPoint {
  double value = 0.0;
};

struct TestSample {
  double sum = 0.0;
  std::uint64_t count = 0;

  void merge(const TestSample& o) {
    sum += o.sum;
    count += o.count;
  }
  void save_state(sim::SnapshotWriter& w) const {
    w.f64(sum);
    w.u64(count);
  }
  void restore_state(sim::SnapshotReader& r) {
    sum = r.f64();
    count = r.u64();
  }
};

std::vector<TestPoint> grid_points() {
  return {{1.0}, {10.0}, {100.0}};
}

/// The well-behaved reference body: sample = point value + replication
/// index, so every (point, replication) cell contributes a recognizable,
/// deterministic amount.
TestSample healthy_body(const TestPoint& p, const Replication& rep) {
  return {p.value + static_cast<double>(rep.replication_index), 1};
}

std::string temp_journal(const std::string& name) {
  const std::string path = testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

TEST(SupervisionTest, UnsupervisedExceptionCarriesReplicationContext) {
  SweepOptions opt;
  opt.replications = 3;
  opt.base_seed = 77;
  SweepRunner<TestPoint, TestSample> runner(opt);
  const auto points = grid_points();
  const std::uint64_t bad_seed = sim::Rng::derive_stream_seed(77, 1, 2);
  try {
    runner.run(points, [&](const TestPoint& p, const Replication& rep) {
      if (rep.point_index == 1 && rep.replication_index == 2) {
        throw std::runtime_error("boom");
      }
      return healthy_body(p, rep);
    });
    FAIL() << "expected the wrapped body exception";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("point=1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("replication=2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("seed=" + std::to_string(bad_seed)),
              std::string::npos)
        << msg;
    EXPECT_NE(msg.find("boom"), std::string::npos) << msg;
  }
}

TEST(SupervisionTest, ThrowingReplicationIsQuarantinedOthersComplete) {
  SweepOptions opt;
  opt.replications = 4;
  opt.base_seed = 42;
  opt.threads = 2;
  opt.keep_going = true;
  SweepRunner<TestPoint, TestSample> runner(opt);
  const auto points = grid_points();

  SweepExecution ex;
  const auto merged = runner.run(
      points,
      [&](const TestPoint& p, const Replication& rep) {
        if (rep.point_index == 2 && rep.replication_index == 1) {
          throw std::runtime_error("boom");
        }
        return healthy_body(p, rep);
      },
      ex);

  ASSERT_EQ(ex.quarantined.size(), 1u);
  const QuarantineEntry& q = ex.quarantined[0];
  EXPECT_EQ(q.point_index, 2u);
  EXPECT_EQ(q.replication_index, 1u);
  EXPECT_EQ(q.seed, sim::Rng::derive_stream_seed(42, 2, 1));
  EXPECT_EQ(q.attempts, 1);
  EXPECT_FALSE(q.timed_out);
  EXPECT_NE(q.error.find("boom"), std::string::npos) << q.error;

  // Healthy points fold all four replications; the wounded point merges
  // the three survivors (replications 0, 2, 3).
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].count, 4u);
  EXPECT_DOUBLE_EQ(merged[0].sum, 4 * 1.0 + (0 + 1 + 2 + 3));
  EXPECT_EQ(merged[1].count, 4u);
  EXPECT_EQ(merged[2].count, 3u);
  EXPECT_DOUBLE_EQ(merged[2].sum, 3 * 100.0 + (0 + 2 + 3));
}

TEST(SupervisionTest, RetryRecoversTransientFailure) {
  SweepOptions opt;
  opt.replications = 2;
  opt.base_seed = 7;
  opt.max_retries = 2;
  opt.retry_backoff_ms = 0.1;
  SweepRunner<TestPoint, TestSample> runner(opt);
  const auto points = grid_points();

  std::atomic<int> flaky_attempts{0};
  SweepExecution ex;
  const auto merged = runner.run(
      points,
      [&](const TestPoint& p, const Replication& rep) {
        if (rep.point_index == 0 && rep.replication_index == 1) {
          if (flaky_attempts.fetch_add(1) < 2) {
            throw std::runtime_error("transient");
          }
        }
        return healthy_body(p, rep);
      },
      ex);

  EXPECT_EQ(flaky_attempts.load(), 3);  // two failures + one success
  EXPECT_TRUE(ex.quarantined.empty());
  ASSERT_EQ(merged.size(), 3u);
  for (const TestSample& s : merged) EXPECT_EQ(s.count, 2u);
}

TEST(SupervisionTest, RetriesExhaustedRecordsAttemptCount) {
  SweepOptions opt;
  opt.replications = 1;
  opt.max_retries = 2;
  opt.retry_backoff_ms = 0.1;
  SweepRunner<TestPoint, TestSample> runner(opt);

  SweepExecution ex;
  const auto merged = runner.run(
      grid_points(),
      [&](const TestPoint& p, const Replication& rep) {
        if (rep.point_index == 1) throw std::runtime_error("always");
        return healthy_body(p, rep);
      },
      ex);

  ASSERT_EQ(ex.quarantined.size(), 1u);
  EXPECT_EQ(ex.quarantined[0].attempts, 3);  // initial try + 2 retries
  EXPECT_FALSE(ex.quarantined[0].timed_out);
  // A fully-quarantined point degrades to a default sample.
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[1].count, 0u);
  EXPECT_EQ(merged[0].count, 1u);
  EXPECT_EQ(merged[2].count, 1u);
}

TEST(SupervisionTest, HangingReplicationIsQuarantinedAsTimeout) {
  SweepOptions opt;
  opt.replications = 2;
  opt.base_seed = 5;
  opt.threads = 2;
  opt.rep_timeout_s = 0.05;
  SweepRunner<TestPoint, TestSample> runner(opt);
  const auto points = grid_points();

  SweepExecution ex;
  const auto merged = runner.run(
      points,
      [&](const TestPoint& p, const Replication& rep) {
        if (rep.point_index == 1 && rep.replication_index == 0) {
          // Simulated hang; polls the supervisor's cancel flag so the
          // abandoned worker exits instead of leaking.
          while (!rep.cancelled()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
          return TestSample{-1.0, 1};  // discarded: commit is fenced
        }
        return healthy_body(p, rep);
      },
      ex);

  ASSERT_EQ(ex.quarantined.size(), 1u);
  const QuarantineEntry& q = ex.quarantined[0];
  EXPECT_EQ(q.point_index, 1u);
  EXPECT_EQ(q.replication_index, 0u);
  EXPECT_EQ(q.seed, sim::Rng::derive_stream_seed(5, 1, 0));
  EXPECT_TRUE(q.timed_out);
  EXPECT_NE(q.error.find("deadline"), std::string::npos) << q.error;

  // Every other replication completed, and the abandoned attempt's
  // late result never landed in the merge.
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].count, 2u);
  EXPECT_EQ(merged[1].count, 1u);
  EXPECT_DOUBLE_EQ(merged[1].sum, 10.0 + 1.0);  // replication 1 only
  EXPECT_EQ(merged[2].count, 2u);
}

TEST(SupervisionTest, CleanSupervisedRunMatchesPlainRun) {
  const auto points = grid_points();
  SweepOptions plain;
  plain.replications = 5;
  plain.base_seed = 99;
  plain.threads = 2;
  const auto want =
      SweepRunner<TestPoint, TestSample>(plain).run(points, healthy_body);

  SweepOptions sup = plain;
  sup.rep_timeout_s = 30.0;
  sup.max_retries = 2;
  sup.keep_going = true;
  SweepExecution ex;
  const auto got = SweepRunner<TestPoint, TestSample>(sup).run(
      points, healthy_body, ex);

  EXPECT_TRUE(ex.quarantined.empty());
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].sum, want[i].sum);
    EXPECT_EQ(got[i].count, want[i].count);
  }
}

TEST(SupervisionTest, JournalRoundTripSkipsCompletedReplications) {
  const std::string path = temp_journal("runner.journal");
  const auto points = grid_points();
  SweepOptions opt;
  opt.replications = 3;
  opt.base_seed = 11;

  JournalConfig cfg;
  cfg.scenario = "test";
  cfg.base_seed = opt.base_seed;
  cfg.replications = 3;
  cfg.points = static_cast<std::uint32_t>(points.size());

  std::vector<TestSample> want;
  {
    SweepJournal journal(path, cfg, /*resume=*/false);
    SweepExecution ex;
    ex.journal = &journal;
    want = SweepRunner<TestPoint, TestSample>(opt).run(points, healthy_body,
                                                       ex);
    EXPECT_EQ(ex.journal_skipped, 0u);
  }

  // Resume replays every sample from the journal: zero body executions,
  // identical merged results.
  SweepJournal journal(path, cfg, /*resume=*/true);
  EXPECT_EQ(journal.completed_count(), points.size() * 3);
  std::atomic<int> executed{0};
  SweepExecution ex;
  ex.journal = &journal;
  const auto got = SweepRunner<TestPoint, TestSample>(opt).run(
      points,
      [&](const TestPoint& p, const Replication& rep) {
        executed.fetch_add(1);
        return healthy_body(p, rep);
      },
      ex);
  EXPECT_EQ(executed.load(), 0);
  EXPECT_EQ(ex.journal_skipped, points.size() * 3);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].sum, want[i].sum);
    EXPECT_EQ(got[i].count, want[i].count);
  }
  std::remove(path.c_str());
}

TEST(SupervisionTest, JournalSeedMismatchThrows) {
  const std::string path = temp_journal("seed-mismatch.journal");
  const auto points = grid_points();
  SweepOptions opt;
  opt.replications = 2;
  opt.base_seed = 1;

  JournalConfig cfg;
  cfg.scenario = "test";
  cfg.base_seed = 1;
  cfg.replications = 2;
  cfg.points = static_cast<std::uint32_t>(points.size());
  {
    SweepJournal journal(path, cfg, false);
    SweepExecution ex;
    ex.journal = &journal;
    SweepRunner<TestPoint, TestSample>(opt).run(points, healthy_body, ex);
  }

  // Same journal, different seed derivation (common random numbers
  // flips the per-point stream index): the recorded seeds no longer
  // match what the runner derives, and replay must refuse.
  SweepOptions crn = opt;
  crn.common_random_numbers = true;
  SweepJournal journal(path, cfg, true);
  SweepExecution ex;
  ex.journal = &journal;
  SweepRunner<TestPoint, TestSample> runner(crn);
  EXPECT_THROW(runner.run(points, healthy_body, ex), JournalError);
  std::remove(path.c_str());
}

TEST(SupervisionTest, QuarantinedReplicationIsAbsentFromJournal) {
  const std::string path = temp_journal("quarantine.journal");
  const auto points = grid_points();
  SweepOptions opt;
  opt.replications = 2;
  opt.base_seed = 3;
  opt.keep_going = true;

  JournalConfig cfg;
  cfg.scenario = "test";
  cfg.base_seed = 3;
  cfg.replications = 2;
  cfg.points = static_cast<std::uint32_t>(points.size());
  {
    SweepJournal journal(path, cfg, false);
    SweepExecution ex;
    ex.journal = &journal;
    SweepRunner<TestPoint, TestSample>(opt).run(
        points,
        [&](const TestPoint& p, const Replication& rep) {
          if (rep.point_index == 0 && rep.replication_index == 0) {
            throw std::runtime_error("boom");
          }
          return healthy_body(p, rep);
        },
        ex);
    ASSERT_EQ(ex.quarantined.size(), 1u);
  }

  // The journal holds exactly the five completed replications; a resumed
  // run re-executes only the quarantined one.
  SweepJournal journal(path, cfg, true);
  EXPECT_EQ(journal.completed_count(), 5u);
  EXPECT_EQ(journal.completed(0, 0), nullptr);
  std::atomic<int> executed{0};
  SweepExecution ex;
  ex.journal = &journal;
  const auto merged = SweepRunner<TestPoint, TestSample>(opt).run(
      points,
      [&](const TestPoint& p, const Replication& rep) {
        executed.fetch_add(1);
        return healthy_body(p, rep);
      },
      ex);
  EXPECT_EQ(executed.load(), 1);
  EXPECT_TRUE(ex.quarantined.empty());
  ASSERT_EQ(merged.size(), 3u);
  for (const TestSample& s : merged) EXPECT_EQ(s.count, 2u);
  std::remove(path.c_str());
}

TEST(SupervisionTest, SupervisedDeterministicAcrossThreadCounts) {
  const auto points = grid_points();
  std::vector<std::vector<TestSample>> runs;
  for (int threads : {1, 2, 8}) {
    SweepOptions opt;
    opt.replications = 6;
    opt.base_seed = 123;
    opt.threads = threads;
    opt.keep_going = true;
    SweepExecution ex;
    runs.push_back(SweepRunner<TestPoint, TestSample>(opt).run(
        points, healthy_body, ex));
    EXPECT_TRUE(ex.quarantined.empty());
  }
  for (std::size_t t = 1; t < runs.size(); ++t) {
    ASSERT_EQ(runs[t].size(), runs[0].size());
    for (std::size_t i = 0; i < runs[0].size(); ++i) {
      EXPECT_EQ(runs[t][i].sum, runs[0][i].sum);
      EXPECT_EQ(runs[t][i].count, runs[0][i].count);
    }
  }
}

}  // namespace
}  // namespace btsc::runner
