#include "phy/channel.hpp"

#include <gtest/gtest.h>

#include "sim/environment.hpp"

namespace btsc::phy {
namespace {

using namespace btsc::sim::literals;
using btsc::sim::Environment;
using btsc::sim::SimTime;

TEST(ChannelTest, IdleChannelIsZ) {
  Environment env;
  NoisyChannel ch(env, "ch");
  ch.attach("a");
  EXPECT_EQ(ch.sense(0), Logic4::kZ);
  EXPECT_FALSE(ch.busy());
}

TEST(ChannelTest, SingleTransmitterVisibleOnItsFrequency) {
  Environment env;
  NoisyChannel ch(env, "ch");
  const PortId a = ch.attach("a");
  ch.drive(a, 17, Logic4::kOne);
  EXPECT_EQ(ch.sense(17), Logic4::kOne);
  EXPECT_EQ(ch.sense(18), Logic4::kZ);  // other RF channels unaffected
  EXPECT_TRUE(ch.busy());
}

TEST(ChannelTest, ReleaseReturnsToZ) {
  Environment env;
  NoisyChannel ch(env, "ch");
  const PortId a = ch.attach("a");
  ch.drive(a, 5, Logic4::kZero);
  ch.drive(a, 5, Logic4::kZ);
  EXPECT_EQ(ch.sense(5), Logic4::kZ);
  EXPECT_FALSE(ch.busy());
}

TEST(ChannelTest, SameFrequencyCollisionIsX) {
  Environment env;
  NoisyChannel ch(env, "ch");
  const PortId a = ch.attach("a");
  const PortId b = ch.attach("b");
  ch.drive(a, 10, Logic4::kOne);
  ch.drive(b, 10, Logic4::kZero);
  EXPECT_EQ(ch.sense(10), Logic4::kX);
  EXPECT_GE(ch.collision_samples(), 1u);
}

TEST(ChannelTest, AgreeingTransmittersStillCollisionFree) {
  // Two devices driving the same value resolve to that value (wired-OR
  // style resolution), matching the Logic4 table.
  Environment env;
  NoisyChannel ch(env, "ch");
  const PortId a = ch.attach("a");
  const PortId b = ch.attach("b");
  ch.drive(a, 10, Logic4::kOne);
  ch.drive(b, 10, Logic4::kOne);
  EXPECT_EQ(ch.sense(10), Logic4::kOne);
}

TEST(ChannelTest, DifferentFrequenciesDoNotCollide) {
  Environment env;
  NoisyChannel ch(env, "ch");
  const PortId a = ch.attach("a");
  const PortId b = ch.attach("b");
  ch.drive(a, 10, Logic4::kOne);
  ch.drive(b, 20, Logic4::kZero);
  EXPECT_EQ(ch.sense(10), Logic4::kOne);
  EXPECT_EQ(ch.sense(20), Logic4::kZero);
}

TEST(ChannelTest, SingleWireModeCollidesAcrossFrequencies) {
  // per_frequency = false restores the paper's Fig. 2 single-wire model.
  Environment env;
  ChannelConfig cfg;
  cfg.per_frequency = false;
  NoisyChannel ch(env, "ch", cfg);
  const PortId a = ch.attach("a");
  const PortId b = ch.attach("b");
  ch.drive(a, 10, Logic4::kOne);
  ch.drive(b, 20, Logic4::kZero);
  EXPECT_EQ(ch.sense(10), Logic4::kX);
}

TEST(ChannelTest, ZeroBerNeverFlips) {
  Environment env;
  NoisyChannel ch(env, "ch");
  const PortId a = ch.attach("a");
  for (int i = 0; i < 1000; ++i) {
    ch.drive(a, 3, Logic4::kOne);
    ASSERT_EQ(ch.sense(3), Logic4::kOne);
  }
  EXPECT_EQ(ch.bits_flipped(), 0u);
  EXPECT_EQ(ch.bits_driven(), 1000u);
}

TEST(ChannelTest, BerFlipsApproximatelyBerFraction) {
  Environment env(1234);
  ChannelConfig cfg;
  cfg.ber = 1.0 / 30.0;  // worst BER studied in the paper
  NoisyChannel ch(env, "ch", cfg);
  const PortId a = ch.attach("a");
  const int n = 60000;
  int ones_seen = 0;
  for (int i = 0; i < n; ++i) {
    ch.drive(a, 0, Logic4::kOne);
    ones_seen += ch.sense(0) == Logic4::kOne;
  }
  const double flip_rate = static_cast<double>(ch.bits_flipped()) / n;
  EXPECT_NEAR(flip_rate, cfg.ber, 0.004);
  EXPECT_EQ(ones_seen, n - static_cast<int>(ch.bits_flipped()));
}

TEST(ChannelTest, NoiseNeverAffectsZ) {
  Environment env;
  ChannelConfig cfg;
  cfg.ber = 1.0;  // every defined bit flips
  NoisyChannel ch(env, "ch", cfg);
  const PortId a = ch.attach("a");
  ch.drive(a, 0, Logic4::kZ);
  EXPECT_EQ(ch.sense(0), Logic4::kZ);
  ch.drive(a, 0, Logic4::kOne);  // will be inverted by noise
  EXPECT_EQ(ch.sense(0), Logic4::kZero);
}

TEST(ChannelTest, RfDelayPostponesVisibility) {
  Environment env;
  ChannelConfig cfg;
  cfg.rf_delay = 2_us;
  NoisyChannel ch(env, "ch", cfg);
  const PortId a = ch.attach("a");
  ch.drive(a, 0, Logic4::kOne);
  EXPECT_EQ(ch.sense(0), Logic4::kZ);  // not yet on the medium
  env.run(1_us);
  EXPECT_EQ(ch.sense(0), Logic4::kZ);
  env.run(1_us);
  EXPECT_EQ(ch.sense(0), Logic4::kOne);
}

TEST(ChannelTest, BadArgumentsThrow) {
  Environment env;
  NoisyChannel ch(env, "ch");
  const PortId a = ch.attach("a");
  EXPECT_THROW(ch.drive(a + 1, 0, Logic4::kOne), std::out_of_range);
  EXPECT_THROW(ch.drive(a, 79, Logic4::kOne), std::out_of_range);
  EXPECT_THROW(ch.drive(a, -1, Logic4::kOne), std::out_of_range);
  // Releasing with an out-of-band frequency is allowed (freq is ignored).
  EXPECT_NO_THROW(ch.drive(a, -1, Logic4::kZ));
}

TEST(ChannelTest, InvalidConfigThrows) {
  Environment env;
  ChannelConfig bad_ber;
  bad_ber.ber = 1.5;
  EXPECT_THROW(NoisyChannel(env, "ch", bad_ber), std::invalid_argument);
  ChannelConfig no_channels;
  no_channels.num_channels = 0;
  EXPECT_THROW(NoisyChannel(env, "ch", no_channels), std::invalid_argument);
}

TEST(ChannelTest, ThreeWayCollision) {
  Environment env;
  NoisyChannel ch(env, "ch");
  const PortId a = ch.attach("a");
  const PortId b = ch.attach("b");
  const PortId c = ch.attach("c");
  ch.drive(a, 0, Logic4::kOne);
  ch.drive(b, 0, Logic4::kOne);
  ch.drive(c, 0, Logic4::kZero);
  EXPECT_EQ(ch.sense(0), Logic4::kX);
  // One device releasing does not clear the conflict between the others.
  ch.drive(b, 0, Logic4::kZ);
  EXPECT_EQ(ch.sense(0), Logic4::kX);
  ch.drive(c, 0, Logic4::kZ);
  EXPECT_EQ(ch.sense(0), Logic4::kOne);
}

}  // namespace
}  // namespace btsc::phy
