// Burst-transport semantics at the phy layer: run acceptance and
// refusal, per-bit fallback on contention/abort/reconfiguration, lazy
// receiver equivalence (every sample stream must match the per-bit
// reference radio bit for bit), and the lazy diagnostics counters.
#include <gtest/gtest.h>

#include <vector>

#include "phy/channel.hpp"
#include "phy/radio.hpp"
#include "sim/bitvector.hpp"
#include "sim/environment.hpp"

namespace btsc::phy {
namespace {

using namespace btsc::sim::literals;
using btsc::sim::BitVector;
using btsc::sim::Environment;
using btsc::sim::SimTime;

/// Burst sink that accepts everything as quiet: records the sample
/// stream (expanded from bulk runs) without ever forcing a barrier.
struct QuietSink final : BurstRxSink {
  std::vector<Logic4> seen;
  std::size_t quiet_prefix(const sim::BitVector*, std::size_t,
                           std::size_t count) const override {
    return count;
  }
  void consume_quiet(const sim::BitVector* bits, std::size_t first,
                     std::size_t count) override {
    for (std::size_t i = 0; i < count; ++i) {
      seen.push_back(bits == nullptr ? Logic4::kZ
                                     : from_bit((*bits)[first + i]));
    }
  }
  void on_sample(Logic4 v) override { seen.push_back(v); }
};

/// Burst sink that declares EVERY sample a side effect: forces one
/// barrier per sample, i.e. per-bit timing through the lazy machinery.
struct EagerSink final : BurstRxSink {
  std::vector<Logic4> seen;
  std::vector<SimTime> at;
  Environment* env = nullptr;
  std::size_t quiet_prefix(const sim::BitVector*, std::size_t,
                           std::size_t) const override {
    return 0;
  }
  void consume_quiet(const sim::BitVector*, std::size_t,
                     std::size_t count) override {
    ASSERT_EQ(count, 0u) << "eager sink must never consume in bulk";
  }
  void on_sample(Logic4 v) override {
    seen.push_back(v);
    if (env != nullptr) at.push_back(env->now());
  }
};

/// Reference: a per-bit lambda radio recording (time, value) pairs.
struct Reference {
  std::vector<Logic4> seen;
  std::vector<SimTime> at;
};

/// Drives `script(sys)` twice -- once against a lazy QuietSink radio,
/// once against a plain per-bit radio -- and requires identical sample
/// streams. The script gets (env, channel, tx radio, rx radio).
template <typename Script>
void expect_stream_equivalence(Script script) {
  std::vector<Logic4> burst_seen;
  std::vector<Logic4> ref_seen;
  {
    Environment env(11);
    NoisyChannel ch(env, "ch");
    Radio tx(env, "tx", ch), rx(env, "rx", ch);
    QuietSink sink;
    rx.set_burst_rx_sink(&sink);
    script(env, ch, tx, rx);
    burst_seen = sink.seen;
  }
  {
    Environment env(11);
    NoisyChannel ch(env, "ch");
    ch.set_burst_transport_enabled(false);
    Radio tx(env, "tx", ch), rx(env, "rx", ch);
    Reference ref;
    rx.set_rx_sink([&](Logic4 v) { ref.seen.push_back(v); });
    script(env, ch, tx, rx);
    ref_seen = ref.seen;
  }
  ASSERT_EQ(burst_seen.size(), ref_seen.size());
  for (std::size_t i = 0; i < ref_seen.size(); ++i) {
    ASSERT_EQ(burst_seen[i], ref_seen[i]) << "sample " << i;
  }
}

TEST(BurstTransportTest, SoleTransmitterRunIsAcceptedAndCounted) {
  Environment env;
  NoisyChannel ch(env, "ch");
  Radio tx(env, "tx", ch);
  tx.transmit(5, BitVector(100, true));
  EXPECT_TRUE(ch.busy());
  EXPECT_EQ(ch.sense(5), Logic4::kOne);
  env.run(200_us);
  EXPECT_EQ(ch.bits_burst(), 100u);
  EXPECT_EQ(ch.bits_driven(), 100u);
  EXPECT_EQ(ch.burst_fallbacks(), 0u);
  EXPECT_FALSE(ch.busy());
  EXPECT_EQ(tx.bits_sent(), 100u);
}

TEST(BurstTransportTest, NoisyPacketsBurstViaErrorMask) {
  // BER > 0 no longer forces the per-bit path: the run pre-draws its
  // noise flips as an error mask and still transports in one burst.
  Environment env;
  ChannelConfig cfg;
  cfg.ber = 0.01;
  NoisyChannel ch(env, "ch", cfg);
  Radio tx(env, "tx", ch);
  tx.transmit(0, BitVector(10, true));
  env.run(20_us);
  EXPECT_EQ(ch.bits_burst(), 10u);
  EXPECT_EQ(ch.bits_driven(), 10u);
  EXPECT_EQ(ch.burst_fallbacks(), 0u);
}

TEST(BurstTransportTest, RefusedWhenDelayedOrDisabled) {
  {
    Environment env;
    ChannelConfig cfg;
    cfg.rf_delay = 2_us;
    NoisyChannel ch(env, "ch", cfg);
    Radio tx(env, "tx", ch);
    tx.transmit(0, BitVector(10, true));
    env.run(20_us);
    EXPECT_EQ(ch.bits_burst(), 0u);
  }
  {
    Environment env;
    NoisyChannel ch(env, "ch");
    ch.set_burst_transport_enabled(false);
    Radio tx(env, "tx", ch);
    tx.transmit(0, BitVector(10, true));
    env.run(20_us);
    EXPECT_EQ(ch.bits_burst(), 0u);
  }
}

TEST(BurstTransportTest, QuietSinkSeesExactPerBitStream) {
  expect_stream_equivalence([](Environment& env, NoisyChannel&, Radio& tx,
                               Radio& rx) {
    rx.enable_rx(7);
    env.run(5_us);  // a few silent samples first
    tx.transmit(7, BitVector::from_string("1011001110001011"));
    env.run(40_us);  // run + trailing silence
    rx.disable_rx();
  });
}

TEST(BurstTransportTest, MidRunEnableAndRetuneSeeTheRun) {
  expect_stream_equivalence([](Environment& env, NoisyChannel&, Radio& tx,
                               Radio& rx) {
    tx.transmit(7, BitVector(64, true));
    env.run(10_us);
    rx.enable_rx(3);   // wrong frequency: silence
    env.run(10_us);
    rx.retune_rx(7);   // joins the run mid-flight
    env.run(20_us);
    rx.retune_rx(4);   // leaves it again
    env.run(30_us);
    rx.disable_rx();
  });
}

TEST(BurstTransportTest, ContentionFallsBackToExactPerBit) {
  std::vector<Logic4> burst_seen;
  std::vector<Logic4> ref_seen;
  for (int mode = 0; mode < 2; ++mode) {
    Environment env(3);
    NoisyChannel ch(env, "ch");
    if (mode == 1) ch.set_burst_transport_enabled(false);
    Radio a(env, "a", ch), b(env, "b", ch), rx(env, "rx", ch);
    QuietSink sink;
    Reference ref;
    if (mode == 0) {
      rx.set_burst_rx_sink(&sink);
    } else {
      rx.set_rx_sink([&](Logic4 v) { ref.seen.push_back(v); });
    }
    rx.enable_rx(9);
    a.transmit(9, BitVector(60, true));
    env.run(20_us);
    b.transmit(9, BitVector(20, false));  // same freq: collision
    env.run(100_us);
    rx.disable_rx();  // materialise any lazily pending trailing silence
    if (mode == 0) {
      EXPECT_EQ(ch.burst_fallbacks(), 1u);
      burst_seen = sink.seen;
    } else {
      ref_seen = ref.seen;
    }
  }
  ASSERT_EQ(burst_seen.size(), ref_seen.size());
  EXPECT_EQ(burst_seen, ref_seen);
  // The overlap must actually have produced collisions.
  int collisions = 0;
  for (Logic4 v : burst_seen) collisions += v == Logic4::kX;
  EXPECT_GT(collisions, 0);
}

TEST(BurstTransportTest, CrossFrequencyContentionAlsoDegradesTheRun) {
  Environment env;
  NoisyChannel ch(env, "ch");
  Radio a(env, "a", ch), b(env, "b", ch);
  a.transmit(10, BitVector(50, true));
  env.run(5_us);
  EXPECT_TRUE(ch.burst_active(0));
  b.transmit(40, BitVector(10, true));  // different RF channel
  EXPECT_FALSE(ch.burst_active(0));     // single-transmitter premise broke
  env.run(100_us);
  EXPECT_EQ(ch.burst_fallbacks(), 1u);
  EXPECT_EQ(a.bits_sent(), 50u);
  EXPECT_EQ(b.bits_sent(), 10u);
  EXPECT_EQ(ch.bits_driven(), 60u);
}

TEST(BurstTransportTest, AbortMidRunStopsAtTheExactBit) {
  Environment env;
  NoisyChannel ch(env, "ch");
  Radio tx(env, "tx", ch);
  tx.transmit(3, BitVector(100, true));
  env.run(5_us);
  EXPECT_TRUE(tx.tx_busy());
  tx.abort_tx();
  EXPECT_FALSE(tx.tx_busy());
  env.settle();
  EXPECT_EQ(ch.sense(3), Logic4::kZ);
  // Outside dispatch, the bit at exactly t=5us has fired: 6 bits on air
  // (matching the per-bit chain under run_until semantics).
  EXPECT_EQ(tx.bits_sent(), 6u);
  const auto sent = tx.bits_sent();
  env.run(10_us);
  EXPECT_EQ(tx.bits_sent(), sent);
}

TEST(BurstTransportTest, SetBerMidRunDegradesWithoutLosingBits) {
  Environment env(17);
  NoisyChannel ch(env, "ch");
  Radio tx(env, "tx", ch);
  tx.transmit(3, BitVector(100, true));
  env.run(10_us);
  ch.set_ber(0.5);  // remaining bits need per-instant noise draws
  EXPECT_EQ(ch.burst_fallbacks(), 1u);
  env.run(200_us);
  EXPECT_EQ(tx.bits_sent(), 100u);
  EXPECT_EQ(ch.bits_driven(), 100u);
  EXPECT_GT(ch.bits_flipped(), 0u);  // noise applied to the tail
}

TEST(BurstTransportTest, EagerSinkGetsEverySampleAtItsExactInstant) {
  Environment env;
  NoisyChannel ch(env, "ch");
  Radio tx(env, "tx", ch), rx(env, "rx", ch);
  EagerSink sink;
  sink.env = &env;
  rx.set_burst_rx_sink(&sink);
  rx.enable_rx(2);
  tx.transmit(2, BitVector::from_string("110101"));
  env.run(10_us);
  ASSERT_GE(sink.seen.size(), 7u);
  // Samples at 0.25, 1.25, ... us; the first six carry the bits.
  const char* expect = "110101";
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(sink.at[static_cast<std::size_t>(i)],
              SimTime::ns(250 + 1000u * static_cast<unsigned>(i)));
    EXPECT_EQ(sink.seen[static_cast<std::size_t>(i)],
              from_bit(expect[i] == '1'));
  }
  EXPECT_EQ(sink.seen[6], Logic4::kZ);
}

TEST(BurstTransportTest, LazySampleCounterMatchesPerBitCounter) {
  Environment env;
  NoisyChannel ch(env, "ch");
  Radio rx(env, "rx", ch);
  QuietSink sink;
  rx.set_burst_rx_sink(&sink);
  rx.enable_rx(0);
  env.run(10_us);
  EXPECT_EQ(rx.bits_sampled(), 10u);  // dormant, but the count is exact
  rx.disable_rx();
  env.run(10_us);
  EXPECT_EQ(rx.bits_sampled(), 10u);
  EXPECT_EQ(sink.seen.size(), 10u);
}

TEST(BurstTransportTest, BackToBackBurstsFromDoneCallback) {
  Environment env;
  NoisyChannel ch(env, "ch");
  Radio tx(env, "tx", ch);
  int sent_packets = 0;
  std::function<void()> send_next = [&] {
    ++sent_packets;
    if (sent_packets < 3) {
      tx.transmit(0, BitVector(10, true), send_next);
    }
  };
  tx.transmit(0, BitVector(10, true), send_next);
  env.run(100_us);
  EXPECT_EQ(sent_packets, 3);
  EXPECT_EQ(tx.bits_sent(), 30u);
  EXPECT_EQ(ch.bits_burst(), 30u);
}

}  // namespace
}  // namespace btsc::phy
