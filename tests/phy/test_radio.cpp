#include "phy/radio.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "phy/channel.hpp"
#include "sim/environment.hpp"

namespace btsc::phy {
namespace {

using namespace btsc::sim::literals;
using btsc::sim::BitVector;
using btsc::sim::Environment;
using btsc::sim::SimTime;

struct Rig {
  Environment env;
  NoisyChannel ch{env, "ch"};
  Radio tx{env, "tx", ch};
  Radio rx{env, "rx", ch};
};

TEST(RadioTest, TransmitDrivesBitsAtOneMicrosecondEach) {
  Rig rig;
  std::vector<Logic4> seen;
  rig.rx.set_rx_sink([&](Logic4 v) { seen.push_back(v); });
  rig.rx.enable_rx(7);
  rig.tx.transmit(7, BitVector::from_string("1011"));
  rig.env.run(10_us);
  // Samples at 0.5, 1.5, 2.5, 3.5 us hit the four bits; later samples Z.
  ASSERT_GE(seen.size(), 5u);
  EXPECT_EQ(seen[0], Logic4::kOne);
  EXPECT_EQ(seen[1], Logic4::kZero);
  EXPECT_EQ(seen[2], Logic4::kOne);
  EXPECT_EQ(seen[3], Logic4::kOne);
  EXPECT_EQ(seen[4], Logic4::kZ);
}

TEST(RadioTest, DoneCallbackAfterLastBit) {
  Rig rig;
  SimTime done_at = SimTime::max();
  rig.tx.transmit(0, BitVector(68), [&] { done_at = rig.env.now(); });
  rig.env.run(100_us);
  EXPECT_EQ(done_at, 68_us);  // ID packet: 68 bits -> 68 us
  EXPECT_FALSE(rig.tx.tx_busy());
}

TEST(RadioTest, TransmitWhileBusyThrows) {
  Rig rig;
  rig.tx.transmit(0, BitVector(10));
  EXPECT_TRUE(rig.tx.tx_busy());
  EXPECT_THROW(rig.tx.transmit(0, BitVector(10)), std::logic_error);
}

TEST(RadioTest, EmptyTransmitCompletesImmediately) {
  Rig rig;
  bool done = false;
  rig.tx.transmit(0, BitVector(), [&] { done = true; });
  EXPECT_TRUE(done);
  EXPECT_FALSE(rig.tx.tx_busy());
}

TEST(RadioTest, AbortReleasesMedium) {
  Rig rig;
  rig.tx.transmit(3, BitVector(100, true));
  rig.env.run(5_us);
  EXPECT_TRUE(rig.tx.tx_busy());
  rig.tx.abort_tx();
  EXPECT_FALSE(rig.tx.tx_busy());
  rig.env.settle();
  EXPECT_EQ(rig.ch.sense(3), Logic4::kZ);
  // No further bits are driven.
  const auto sent = rig.tx.bits_sent();
  rig.env.run(10_us);
  EXPECT_EQ(rig.tx.bits_sent(), sent);
}

TEST(RadioTest, RxOnlySeesTunedFrequency) {
  Rig rig;
  std::vector<Logic4> seen;
  rig.rx.set_rx_sink([&](Logic4 v) { seen.push_back(v); });
  rig.rx.enable_rx(10);
  rig.tx.transmit(40, BitVector(4, true));  // different RF channel
  rig.env.run(6_us);
  for (Logic4 v : seen) EXPECT_EQ(v, Logic4::kZ);
}

TEST(RadioTest, RetuneSwitchesFrequency) {
  Rig rig;
  std::vector<Logic4> seen;
  rig.rx.set_rx_sink([&](Logic4 v) { seen.push_back(v); });
  rig.rx.enable_rx(10);
  rig.tx.transmit(40, BitVector(20, true));
  rig.env.run(5_us);
  rig.rx.retune_rx(40);
  rig.env.run(5_us);
  EXPECT_EQ(seen.front(), Logic4::kZ);
  EXPECT_EQ(seen.back(), Logic4::kOne);
}

TEST(RadioTest, EnableLinesFollowTxRx) {
  Rig rig;
  rig.env.run(1_us);
  rig.tx.transmit(0, BitVector(10));
  rig.rx.enable_rx(0);
  rig.env.settle();
  EXPECT_TRUE(rig.tx.enable_tx_rf().read());
  EXPECT_TRUE(rig.rx.enable_rx_rf().read());
  rig.env.run(15_us);
  EXPECT_FALSE(rig.tx.enable_tx_rf().read());
  rig.rx.disable_rx();
  rig.env.settle();
  EXPECT_FALSE(rig.rx.enable_rx_rf().read());
}

TEST(RadioTest, ActivityAccountingMatchesEnabledTime) {
  Rig rig;
  rig.tx.transmit(0, BitVector(100));  // 100 us of TX
  rig.env.run(200_us);
  EXPECT_EQ(rig.tx.tx_on_time(), 100_us);
  EXPECT_EQ(rig.tx.rx_on_time(), SimTime::zero());

  rig.rx.enable_rx(0);
  rig.env.run(50_us);
  rig.rx.disable_rx();
  rig.env.run(50_us);
  EXPECT_EQ(rig.rx.rx_on_time(), 50_us);
}

TEST(RadioTest, ActivityIncludesOngoingInterval) {
  Rig rig;
  rig.rx.enable_rx(0);
  rig.env.run(30_us);
  EXPECT_EQ(rig.rx.rx_on_time(), 30_us);  // still enabled
}

TEST(RadioTest, ResetActivityStartsFreshWindow) {
  Rig rig;
  rig.rx.enable_rx(0);
  rig.env.run(40_us);
  rig.rx.reset_activity();
  rig.env.run(10_us);
  EXPECT_EQ(rig.rx.rx_on_time(), 10_us);
  rig.rx.disable_rx();
  EXPECT_EQ(rig.rx.rx_on_time(), 10_us);
}

TEST(RadioTest, CollisionVisibleAsX) {
  Environment env;
  NoisyChannel ch(env, "ch");
  Radio t1(env, "t1", ch), t2(env, "t2", ch), rx(env, "rx", ch);
  std::vector<Logic4> seen;
  rx.set_rx_sink([&](Logic4 v) { seen.push_back(v); });
  rx.enable_rx(0);
  t1.transmit(0, BitVector(10, true));
  t2.transmit(0, BitVector(10, false));
  env.run(5_us);
  ASSERT_FALSE(seen.empty());
  for (Logic4 v : seen) EXPECT_EQ(v, Logic4::kX);
}

TEST(RadioTest, BitsSampledCountsWhileEnabled) {
  Rig rig;
  rig.rx.enable_rx(0);
  rig.env.run(10_us);
  rig.rx.disable_rx();
  rig.env.run(10_us);
  EXPECT_EQ(rig.rx.bits_sampled(), 10u);
}

TEST(RadioTest, BackToBackTransmissionsFromDoneCallback) {
  Rig rig;
  int sent_packets = 0;
  std::function<void()> send_next = [&] {
    ++sent_packets;
    if (sent_packets < 3) {
      rig.tx.transmit(0, BitVector(10, true), send_next);
    }
  };
  rig.tx.transmit(0, BitVector(10, true), send_next);
  rig.env.run(100_us);
  EXPECT_EQ(sent_packets, 3);
  EXPECT_EQ(rig.tx.bits_sent(), 30u);
}

}  // namespace
}  // namespace btsc::phy
