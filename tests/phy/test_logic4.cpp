#include "phy/logic4.hpp"

#include <gtest/gtest.h>

#include <array>

namespace btsc::phy {
namespace {

TEST(Logic4Test, FromToBit) {
  EXPECT_EQ(from_bit(true), Logic4::kOne);
  EXPECT_EQ(from_bit(false), Logic4::kZero);
  EXPECT_TRUE(to_bit(Logic4::kOne));
  EXPECT_FALSE(to_bit(Logic4::kZero));
}

TEST(Logic4Test, IsDefined) {
  EXPECT_TRUE(is_defined(Logic4::kZero));
  EXPECT_TRUE(is_defined(Logic4::kOne));
  EXPECT_FALSE(is_defined(Logic4::kZ));
  EXPECT_FALSE(is_defined(Logic4::kX));
}

TEST(Logic4Test, ResolveZIsIdentity) {
  for (Logic4 v : {Logic4::kZero, Logic4::kOne, Logic4::kZ, Logic4::kX}) {
    EXPECT_EQ(resolve(Logic4::kZ, v), v);
    EXPECT_EQ(resolve(v, Logic4::kZ), v);
  }
}

TEST(Logic4Test, ResolveAgreementKeepsValue) {
  EXPECT_EQ(resolve(Logic4::kZero, Logic4::kZero), Logic4::kZero);
  EXPECT_EQ(resolve(Logic4::kOne, Logic4::kOne), Logic4::kOne);
}

TEST(Logic4Test, ResolveConflictIsX) {
  EXPECT_EQ(resolve(Logic4::kZero, Logic4::kOne), Logic4::kX);
  EXPECT_EQ(resolve(Logic4::kOne, Logic4::kZero), Logic4::kX);
  EXPECT_EQ(resolve(Logic4::kX, Logic4::kZero), Logic4::kX);
  EXPECT_EQ(resolve(Logic4::kOne, Logic4::kX), Logic4::kX);
  EXPECT_EQ(resolve(Logic4::kX, Logic4::kX), Logic4::kX);
}

TEST(Logic4Test, ResolveIsCommutative) {
  constexpr std::array<Logic4, 4> all = {Logic4::kZero, Logic4::kOne,
                                         Logic4::kZ, Logic4::kX};
  for (Logic4 a : all) {
    for (Logic4 b : all) {
      EXPECT_EQ(resolve(a, b), resolve(b, a));
    }
  }
}

TEST(Logic4Test, ResolveIsAssociative) {
  constexpr std::array<Logic4, 4> all = {Logic4::kZero, Logic4::kOne,
                                         Logic4::kZ, Logic4::kX};
  for (Logic4 a : all) {
    for (Logic4 b : all) {
      for (Logic4 c : all) {
        EXPECT_EQ(resolve(resolve(a, b), c), resolve(a, resolve(b, c)));
      }
    }
  }
}

TEST(Logic4Test, InvertFlipsDefinedOnly) {
  EXPECT_EQ(invert(Logic4::kZero), Logic4::kOne);
  EXPECT_EQ(invert(Logic4::kOne), Logic4::kZero);
  EXPECT_EQ(invert(Logic4::kZ), Logic4::kZ);
  EXPECT_EQ(invert(Logic4::kX), Logic4::kX);
}

TEST(Logic4Test, ToChar) {
  EXPECT_EQ(to_char(Logic4::kZero), '0');
  EXPECT_EQ(to_char(Logic4::kOne), '1');
  EXPECT_EQ(to_char(Logic4::kZ), 'z');
  EXPECT_EQ(to_char(Logic4::kX), 'x');
}

TEST(Logic4Test, TraceEncoderScalar) {
  using Enc = btsc::sim::TraceEncoder<Logic4>;
  EXPECT_EQ(Enc::width(), 1u);
  EXPECT_EQ(Enc::encode(Logic4::kZ), "z");
  EXPECT_EQ(Enc::encode(Logic4::kX), "x");
  EXPECT_EQ(Enc::encode(Logic4::kOne), "1");
}

}  // namespace
}  // namespace btsc::phy
